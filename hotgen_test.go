package hotgen

import (
	"context"
	"testing"
)

// The facade tests double as end-to-end integration tests across the
// whole library: every major subsystem is exercised through the public
// entry points exactly as the examples use them.

func TestFacadeFKPPipeline(t *testing.T) {
	g, err := FKP(FKPConfig{N: 400, Alpha: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 400 || !g.IsTree() {
		t.Fatal("facade FKP broken")
	}
	if c := Classify(g); c.String() == "" {
		t.Fatal("classification missing")
	}
	prof := ComputeProfile(g, 1)
	if prof.Nodes != 400 {
		t.Fatal("profile nodes mismatch")
	}
}

func TestFacadeAccessPipeline(t *testing.T) {
	in, err := RandomAccessInstance(AccessInstanceConfig{
		N: 200, Seed: 2, DemandMin: 1, DemandMax: 8, RootAtCenter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := MMPIncremental(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	lb := AccessLowerBound(in)
	if net.TotalCost() < lb {
		t.Fatal("cost below lower bound through facade")
	}
	star, err := DirectStar(in)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := SingleCableMST(in)
	if err != nil {
		t.Fatal(err)
	}
	if star.TotalCost() < lb || mst.TotalCost() < lb {
		t.Fatal("baseline below lower bound")
	}
	if added := AugmentTwoEdgeConnected(in, net); added == 0 {
		t.Fatal("augmentation added nothing")
	}
}

func TestFacadeISPAndInternet(t *testing.T) {
	geo, err := GenerateGeography(GeographyConfig{
		NumCities: 12, Seed: 4, ZipfExponent: 1, MinSeparation: 0.04,
	})
	if err != nil {
		t.Fatal(err)
	}
	des, err := BuildISP(ISPConfig{
		Geography: geo, NumPOPs: 4, Customers: 150, Seed: 5,
		PerfWeight: 40, MaxExtraBackboneLinks: 2, DemandMin: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !des.Graph.IsConnected() {
		t.Fatal("ISP not connected")
	}
	inet, err := AssembleInternet(InternetConfig{
		Geography: geo, NumISPs: 4, Seed: 6,
		POPsPerISP: 4, CustomersPerISP: 40, PeeringSetupCost: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inet.AS.NumNodes() != 4 {
		t.Fatal("AS graph wrong size")
	}
}

func TestFacadeRoutingAndRobustness(t *testing.T) {
	g, err := GenBarabasiAlbert(300, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Edges() {
		g.Edge(i).Capacity = 100
	}
	res, err := RouteShortestPaths(g, []Demand{{Src: 0, Dst: 299, Volume: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 5 {
		t.Fatal("demand not delivered")
	}
	if _, err := RouteCapacitated(g, []Demand{{Src: 0, Dst: 10, Volume: 1}}); err != nil {
		t.Fatal(err)
	}
	pts, err := RobustnessSweep(g, DegreeAttack, []float64{0.1}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].LCCFrac <= 0 || pts[0].LCCFrac > 1 {
		t.Fatalf("sweep out of range: %v", pts)
	}
}

func TestFacadeGenerators(t *testing.T) {
	if _, err := GenErdosRenyiGNP(100, 0.05, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenErdosRenyiGNM(100, 200, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenWaxman(100, 0.1, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenGLP(100, 1, 0.3, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenRandomGeometric(100, 0.15, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenTransitStub(TransitStubConfig{
		TransitDomains: 2, TransitSize: 3, StubsPerTransit: 1, StubSize: 4, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	runners := Experiments()
	if len(runners) != 11 {
		t.Fatalf("got %d experiments, want 11", len(runners))
	}
	// Spot check one end to end at tiny scale.
	tbl, err := runners[0].Run(ExperimentOptions{Seed: 1, Scale: 0.05, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "E1" {
		t.Fatalf("first runner is %s, want E1", tbl.ID)
	}
}

func TestFacadeHOTConstraints(t *testing.T) {
	g, st, err := GrowHOT(HOTConfig{
		N:    200,
		Seed: 9,
		Terms: []ObjectiveTerm{
			DistanceTerm{Weight: 4},
			CentralityTerm{Weight: 1},
			LoadTerm{Weight: 0.1},
		},
		Constraints: []Constraint{MaxDegreeConstraint{Max: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 10 && st.ConstraintViolations == 0 {
		t.Fatal("degree cap violated without fallback accounting")
	}
}

func TestFacadeValidationAndAnonymization(t *testing.T) {
	a, err := GenBarabasiAlbert(200, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenErdosRenyiGNM(200, a.NumEdges(), 11)
	if err != nil {
		t.Fatal(err)
	}
	cmp := CompareTopologies(a, b, 1)
	if cmp.Distance <= 0 {
		t.Fatal("BA vs ER should differ")
	}
	if CompareTopologies(a, a, 1).Distance > 1e-9 {
		t.Fatal("self comparison should be ~0")
	}
	iv := ResilienceCI(a, 10, 2)
	if iv.Low > iv.High {
		t.Fatal("bad interval")
	}
	scrubbed := Anonymize(a, AnonymizeOptions{Seed: 3, PermuteIDs: true})
	if SummarizeTopology(scrubbed, 4).MaxDegree != SummarizeTopology(a, 4).MaxDegree {
		t.Fatal("anonymization changed structure")
	}
	if MeasureTopology(a, 5).MeanDegree <= 0 {
		t.Fatal("metric vector broken")
	}
}

func TestFacadeTransitAndRings(t *testing.T) {
	geo, err := GenerateGeography(GeographyConfig{NumCities: 12, Seed: 6, ZipfExponent: 1, MinSeparation: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	inet, err := AssembleInternet(InternetConfig{
		Geography: geo, NumISPs: 8, Seed: 7, POPsPerISP: 8,
		PeeringSetupCost: 1e-7, SizeSkew: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := AssignTransit(inet, TransitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Links) == 0 || tr.ASAll.NumNodes() != 8 {
		t.Fatalf("transit result malformed: %d links", len(tr.Links))
	}
	in, err := RandomAccessInstance(AccessInstanceConfig{N: 60, Seed: 8, DemandMin: 1, RootAtCenter: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CompareRingVsTree(in, 9, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ring2EdgeConn {
		t.Fatal("ring should be 2-edge-connected")
	}
	arr := ArrivalPoints(geo, 30, 0.02, 10)
	if len(arr) != 30 {
		t.Fatal("arrival points wrong count")
	}
}

func TestFacadeTrafficModel(t *testing.T) {
	geo, err := GenerateGeography(GeographyConfig{NumCities: 8, Seed: 10, ZipfExponent: 1})
	if err != nil {
		t.Fatal(err)
	}
	dm := GravityDemand(geo, GravityConfig{Scale: 10, Exponent: 1})
	if dm.Total() <= 0 {
		t.Fatal("no demand generated")
	}
	if ClassifyTail([]int{1, 1, 2, 2, 3}).Kind.String() == "" {
		t.Fatal("tail classification broken")
	}
}

// TestFacadeTrafficRegistry drives the demand-model registry through
// the facade: enumeration, registry generation, graph demands, the
// scenario traffic stage, and a traffic-capable metric evaluation.
func TestFacadeTrafficRegistry(t *testing.T) {
	names := DemandModels()
	if len(names) < 5 {
		t.Fatalf("DemandModels() = %v", names)
	}
	if _, err := LookupDemandModel(""); err != nil {
		t.Fatalf("empty name (gravity alias) failed: %v", err)
	}
	geo, err := GenerateGeography(GeographyConfig{NumCities: 10, Seed: 3, ZipfExponent: 1})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := GenerateDemandMatrix(context.Background(), geo, TrafficSelection{Name: "zipf-hotspot"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Total() <= 0 {
		t.Fatal("registry model generated no demand")
	}
	g, err := GenerateByName(context.Background(), "ba", GenParams{"n": 80, "m": 2})
	if err != nil {
		t.Fatal(err)
	}
	demands, err := GraphTrafficDemands(context.Background(), g, TrafficSelection{}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(demands) == 0 {
		t.Fatal("no graph demands")
	}
	res, err := NewEngine(nil).Run(context.Background(), Scenario{
		Generate: GenerateSpec{Model: "ba", Params: GenParams{"n": 80, "m": 2}},
		Traffic:  &TrafficSpec{Model: "bimodal", Sites: 10},
	}, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ts := res.Reps[0].Traffic; ts == nil || ts.Throughput <= 0 {
		t.Fatalf("traffic stage summary implausible: %+v", res.Reps[0].Traffic)
	}
}

func TestFacadeConnectivityTimeline(t *testing.T) {
	g, err := GenBarabasiAlbert(200, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Freeze()
	events := []TimelineEvent{
		{Op: TimelineFailNode, ID: 5},
		{Op: TimelineFailEdge, ID: 9},
		{Op: TimelineRepairNode, ID: 5},
		{Op: TimelineRepairEdge, ID: 9},
	}
	mode, err := ParseTimelineMode("epoch")
	if err != nil {
		t.Fatal(err)
	}
	curves, err := RunConnectivityTimeline(context.Background(), c, events, nil, mode, 1)
	if err != nil {
		t.Fatal(err)
	}
	vals := curves[0].Values
	if len(vals) != len(events)+1 {
		t.Fatalf("%d rows, want %d", len(vals), len(events)+1)
	}
	if vals[0] != 1 || vals[len(vals)-1] != 1 {
		t.Fatalf("intact/restored rows %v, want 1", vals)
	}
	sc := Scenario{
		Generate: GenerateSpec{Model: "ba", Params: GenParams{"n": 60, "m": 2}},
		Timeline: &ScenarioTimelineSpec{Events: []ScenarioTimelineEvent{
			{Event: "fail-node", Node: &events[0].ID},
			{Event: "repair", Node: &events[0].ID},
		}},
		Reps: 1,
	}
	res, err := NewEngine(nil).Run(context.Background(), sc, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pts := res.Reps[0].Timeline; len(pts) != 2 || pts[1].Metrics["lcc"] != 1 {
		t.Fatalf("scenario timeline points: %+v", res.Reps[0].Timeline)
	}
}
