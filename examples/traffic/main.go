// Traffic-model registry walkthrough: enumerate registered demand
// models, generate demand matrices over a national geography, provision
// an ISP backbone under different traffic assumptions, and run a
// traffic-driven scenario whose volume-aware max-min fair allocation is
// summarized by the CapTraffic registry metrics — the paper's §2.2
// "performance is throughput under the offered demand" as a
// five-minute program.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	hotgen "repro"
)

func main() {
	ctx := context.Background()

	// 1. Demand models are name-addressable, like generators, metrics
	// and attacks.
	fmt.Printf("registered demand models: %s\n\n", strings.Join(hotgen.DemandModels(), ", "))

	// A national geography: Zipf-skewed population centers.
	geo, err := hotgen.GenerateGeography(hotgen.GeographyConfig{
		NumCities: 20, Seed: 1, ZipfExponent: 1, MinSeparation: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The same geography under different traffic assumptions. The
	// zero TrafficSelection is gravity with its defaults — the paper's
	// canonical input.
	for _, sel := range []hotgen.TrafficSelection{
		{},
		{Name: "zipf-hotspot", Params: hotgen.TrafficParams{"exponent": 1.5}},
		{Name: "single-epicenter"},
	} {
		dm, err := hotgen.GenerateDemandMatrix(ctx, geo, sel, 1)
		if err != nil {
			log.Fatal(err)
		}
		name := sel.Name
		if name == "" {
			name = "gravity (default)"
		}
		fmt.Printf("%-22s total demand %.4f, top-pair share %.3f\n",
			name, dm.Total(), dm[0][1]/dm.Total())
	}

	// 3. Provision an ISP backbone against a chosen demand model: the
	// demand model is a first-class stage of the buildout, not a
	// hardcoded gravity call.
	des, err := hotgen.BuildISP(hotgen.ISPConfig{
		Geography: geo, NumPOPs: 6, Customers: 400, Seed: 1,
		PerfWeight: 50, MaxExtraBackboneLinks: 3, DemandMin: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := hotgen.ProvisionBackboneContext(ctx, des, geo, hotgen.DefaultCatalog(), 0,
		hotgen.TrafficSelection{Name: "zipf-hotspot"}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbackbone provisioned for zipf-hotspot demand: %d demands, cost %.2f, max utilization %.3f\n",
		rep.Demands, rep.ProvisionCost, rep.MaxUtilization)

	// 4. A traffic-driven scenario: generate a topology, lift its hubs
	// into traffic sites, allocate the model's demand max-min fairly
	// (volume-aware: a flow frozen at its offered volume frees its
	// unused share), and summarize with the CapTraffic metrics.
	res, err := hotgen.NewEngine(nil).Run(ctx, hotgen.Scenario{
		Name:     "hotspot-traffic",
		Generate: hotgen.GenerateSpec{Model: "ba", Params: hotgen.GenParams{"n": 400, "m": 2}},
		Traffic:  &hotgen.TrafficSpec{Model: "zipf-hotspot", Sites: 16},
		Seeds:    []int64{1, 2},
	}, hotgen.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Format())
}
