// Quickstart: generate an FKP topology in each alpha regime, classify
// the result, and print its degree-tail diagnosis — the paper's §3.1
// star → power-law → exponential spectrum in ~40 lines.
package main

import (
	"fmt"
	"log"

	hotgen "repro"
)

func main() {
	const n = 2000
	cases := []struct {
		label string
		alpha float64
	}{
		{"tiny alpha (centrality dominates)", 0.3},
		{"intermediate alpha (tradeoff)", 8},
		{"huge alpha (distance dominates)", 4 * n},
	}
	for _, c := range cases {
		g, err := hotgen.FKP(hotgen.FKPConfig{N: n, Alpha: c.alpha, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		tail := hotgen.ClassifyTail(g.Degrees())
		fmt.Printf("%-36s alpha=%-8.1f class=%-16s maxDeg=%-4d tail=%s\n",
			c.label, c.alpha, hotgen.Classify(g), g.MaxDegree(), tail.Kind)
	}

	// The same model through the generalized HOT framework, with a router
	// port constraint (§2.1 technology limit): the star regime is now
	// impossible and the optimizer spreads the hub.
	g, stats, err := hotgen.GrowHOT(hotgen.HOTConfig{
		N:    n,
		Seed: 1,
		Terms: []hotgen.ObjectiveTerm{
			hotgen.DistanceTerm{Weight: 0.3},
			hotgen.CentralityTerm{Weight: 1},
		},
		Constraints: []hotgen.Constraint{hotgen.MaxDegreeConstraint{Max: 32}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nport-capped would-be star:           class=%-16s maxDeg=%-4d totalCable=%.1f\n",
		hotgen.Classify(g), g.MaxDegree(), stats.TotalLinkLength)
}
