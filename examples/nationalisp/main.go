// National ISP: the paper's §2.2 programme. Generate a Zipf national
// geography, design an ISP under the cost-based formulation, then redo it
// profit-based across a price sweep and watch buildout stop where
// marginal revenue meets marginal cost. Finally assemble several
// competing ISPs into an internet (§2.3) and print the AS graph.
package main

import (
	"fmt"
	"log"

	hotgen "repro"
)

func main() {
	geo, err := hotgen.GenerateGeography(hotgen.GeographyConfig{
		NumCities:     25,
		Seed:          3,
		ZipfExponent:  1.0,
		MinSeparation: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("geography: %d cities, biggest %.0f households, smallest %.0f\n\n",
		len(geo.Cities), geo.Cities[0].Population, geo.Cities[len(geo.Cities)-1].Population)

	base := hotgen.ISPConfig{
		Geography:             geo,
		NumPOPs:               8,
		Customers:             2500,
		Seed:                  3,
		PerfWeight:            50,
		MaxExtraBackboneLinks: 4,
		MaxPorts:              64,
		DemandMin:             1,
		DemandMax:             8,
	}
	cost, err := hotgen.BuildISP(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost-based ISP: %d nodes, %d edges, %d backbone links, cost %.1f, serves %d/%d customers\n\n",
		cost.Graph.NumNodes(), cost.Graph.NumEdges(), len(cost.BackboneEdges),
		cost.TotalCost(), cost.CustomersServed, cost.CustomersOffered)

	fmt.Println("profit-based buildout vs price (marginal revenue vs marginal cost, §2.2):")
	for _, price := range []float64{0.02, 0.05, 0.1, 0.5, 2.0} {
		cfg := base
		cfg.Formulation = hotgen.ProfitBased
		cfg.PricePerDemand = price
		des, err := hotgen.BuildISP(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  price=%-5.2f served %4d/%d customers, revenue %8.1f, profit %8.1f\n",
			price, des.CustomersServed, des.CustomersOffered, des.Revenue, des.Profit)
	}

	inet, err := hotgen.AssembleInternet(hotgen.InternetConfig{
		Geography:        geo,
		NumISPs:          8,
		Seed:             3,
		POPsPerISP:       6,
		CustomersPerISP:  250,
		PeeringSetupCost: 1e-7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninternet: %d ISPs, %d router nodes, %d peering interconnects\n",
		len(inet.ISPs), inet.Router.NumNodes(), len(inet.Peerings))
	fmt.Printf("AS graph: %d nodes, %d edges (business relationships, §1)\n",
		inet.AS.NumNodes(), inet.AS.NumEdges())
	counts := map[int]int{}
	for _, p := range inet.Peerings {
		counts[p.CityA]++
	}
	top := 0
	for city, n := range counts {
		if city < 5 {
			top += n
		}
	}
	if len(inet.Peerings) > 0 {
		fmt.Printf("peerings in the 5 biggest cities: %d/%d (§2.1: ISPs peer in the big cities)\n",
			top, len(inet.Peerings))
	}
}
