// Comparison: the paper's §1 argument made concrete. Generate a HOT
// topology and a set of descriptive generators (BA, GLP, ER, Waxman,
// transit-stub) matched on size, then print the [30]-style metric suite
// side by side: generators that match the degree tail diverge on
// structure, and vice versa. Ends with the §3.1 robust-yet-fragile
// attack/failure comparison.
package main

import (
	"fmt"
	"log"

	hotgen "repro"
)

func main() {
	const n = 1000
	hot, _, err := hotgen.GrowHOT(hotgen.HOTConfig{
		N:    n,
		Seed: 11,
		Terms: []hotgen.ObjectiveTerm{
			hotgen.DistanceTerm{Weight: 8},
			hotgen.CentralityTerm{Weight: 1},
		},
		LinksPerArrival: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	ba, err := hotgen.GenBarabasiAlbert(n, 2, 11)
	if err != nil {
		log.Fatal(err)
	}
	glp, err := hotgen.GenGLP(n, 2, 0.3, 0.6, 11)
	if err != nil {
		log.Fatal(err)
	}
	er, err := hotgen.GenErdosRenyiGNM(n, hot.NumEdges(), 11)
	if err != nil {
		log.Fatal(err)
	}
	wax, err := hotgen.GenWaxman(n, 0.04, 0.35, 11)
	if err != nil {
		log.Fatal(err)
	}
	cm, _, err := hotgen.GenConfigurationModel(hot.Degrees(), 11)
	if err != nil {
		log.Fatal(err)
	}
	ts, err := hotgen.GenTransitStub(hotgen.TransitStubConfig{
		TransitDomains:  4,
		TransitSize:     4,
		StubsPerTransit: 3,
		StubSize:        20,
		EdgeProb:        0.3,
		Seed:            11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %6s %7s %-13s %8s %8s %9s %9s\n",
		"generator", "edges", "maxDeg", "tail", "expand@3", "resil", "distort", "hierDep")
	for _, e := range []struct {
		name string
		g    *hotgen.Graph
	}{
		{"hot(fkp,m=2)", hot}, {"ba(m=2)", ba}, {"glp", glp},
		{"er(gnm)", er}, {"waxman", wax},
		{"config(hot)", cm}, {"transit-stub", ts},
	} {
		p := hotgen.ComputeProfile(e.g, 11)
		tail := hotgen.ClassifyTail(e.g.Degrees())
		fmt.Printf("%-14s %6d %7d %-13s %8.3f %8.3f %9.2f %9.2f\n",
			e.name, p.Edges, p.MaxDegree, tail.Kind,
			p.ExpansionAt3, p.Resilience, p.Distortion, p.HierarchyDepth)
	}

	// §3.1 robust yet fragile: failure vs attack on the HOT topology and
	// the density-matched random graph.
	fracs := []float64{0.02, 0.05, 0.1}
	fmt.Printf("\n%-14s %12s %12s\n", "topology", "LCC@5%fail", "LCC@5%attack")
	for _, e := range []struct {
		name string
		g    *hotgen.Graph
	}{
		{"hot(fkp,m=2)", hot}, {"er(gnm)", er},
	} {
		fail, err := hotgen.RobustnessSweep(e.g, hotgen.RandomFailure, fracs, 10, 11)
		if err != nil {
			log.Fatal(err)
		}
		atk, err := hotgen.RobustnessSweep(e.g, hotgen.DegreeAttack, fracs, 1, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.3f %12.3f\n", e.name, fail[1].LCCFrac, atk[1].LCCFrac)
	}
}
