// Scenario service walkthrough: host the engine behind the HTTP/JSON
// job API in-process, drive it with the Go client — submit, stream
// incremental results, cancel — and read the cache telemetry that a
// resident daemon accumulates across jobs. The same API is what
// `toposcenariod` serves and `toposcenario -server` consumes.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	hotgen "repro"
)

func main() {
	// 1. One server, one shared engine. Every job submitted to this
	// server runs on the same snapshot cache, so repeated topologies are
	// generated once no matter how many clients ask.
	srv := hotgen.NewScenarioServer(hotgen.ScenarioServiceConfig{
		Executors:  2,
		JobWorkers: 4,
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := hotgen.NewScenarioServiceClient(hs.URL, hs.Client())

	ctx := context.Background()

	// 2. Submit a batch — the same declarative JSON `toposcenario -spec`
	// runs locally. Two scenarios measure the same fkp topology family
	// under different stages, so the second rides the first's snapshots.
	specs := []hotgen.Scenario{
		{
			Name:     "designed-profile",
			Generate: hotgen.GenerateSpec{Model: "fkp", Params: hotgen.GenParams{"n": 400, "alpha": 8}},
			Measure:  &hotgen.MeasureSpec{Profile: true},
			Seeds:    []int64{1, 2, 3},
		},
		{
			Name:     "designed-attacked",
			Generate: hotgen.GenerateSpec{Model: "fkp", Params: hotgen.GenParams{"n": 400, "alpha": 8}},
			Attack:   &hotgen.AttackSpec{Strategy: "degree", Fracs: []float64{0.05, 0.1}},
			Seeds:    []int64{1, 2, 3},
		},
	}
	st, err := client.Submit(ctx, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s: %d scenarios, %d replications\n", st.ID, st.Scenarios, st.Reps)

	// 3. Poll while it runs: a running job streams each scenario's
	// contiguous completed replication prefix, in order, regardless of
	// worker scheduling.
	for {
		cur, err := client.Job(ctx, st.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d/%d units\n", cur.State, cur.Completed, cur.Reps)
		if cur.State != "queued" && cur.State != "running" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 4. The terminal status carries the full results — byte-identical
	// to a local Engine.RunBatch of the same specs.
	final, err := client.Wait(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range final.Results {
		fmt.Println(r.Format())
	}

	// 5. Telemetry: the shared cache generated each (identity, seed)
	// snapshot once — scenario two's replications were all hits or
	// coalesced waits.
	z, err := client.Statusz(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache: %d misses, %d hits, %d coalesced, %d bytes resident\n",
		z.Cache.Misses, z.Cache.Hits, z.Cache.Coalesced, z.Cache.BytesUsed)
	fmt.Printf("jobs: %d submitted, %d done\n", z.Jobs.Submitted, z.Jobs.Done)

	// 6. Graceful drain, the daemon's SIGTERM path: intake stops, queued
	// and running work finishes, then Shutdown returns.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
