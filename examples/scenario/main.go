// Scenario API walkthrough: declare scenarios as data, run them through
// the Engine at any worker count with identical output, and cancel a
// heavy batch mid-flight — the three properties that make the registry
// the repository's serve-many-requests entry point.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"time"

	hotgen "repro"
)

func main() {
	// 1. Scenarios are declarative values. This JSON could equally live
	// in a file and run through `toposcenario -spec`.
	spec := []byte(`[
		{
			"name": "designed",
			"generate": {"model": "fkp", "params": {"n": 300, "alpha": 8}},
			"measure": {"profile": true, "degrees": true},
			"attack": {"strategy": "degree", "fracs": [0.05, 0.1, 0.2]},
			"seeds": [1, 2, 3]
		},
		{
			"name": "descriptive",
			"generate": {"model": "ba", "params": {"n": 300, "m": 2}},
			"measure": {"profile": true, "degrees": true},
			"attack": {"strategy": "degree", "fracs": [0.05, 0.1, 0.2]},
			"seeds": [1, 2, 3]
		}
	]`)
	scs, err := hotgen.ParseScenarioSpec(spec)
	if err != nil {
		log.Fatal(err)
	}

	// 2. One engine, many scenarios: RunBatch fans (scenario, rep) units
	// across the worker pool and reduces in a fixed order — the printed
	// tables are byte-identical whether Workers is 1 or 64.
	eng := hotgen.NewEngine(nil)
	results, err := eng.RunBatch(context.Background(), scs, hotgen.EngineOptions{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r.Format())
	}

	// 3. Scenarios round-trip through JSON (marshal → unmarshal → same
	// run), so specs can be stored, shipped, and replayed.
	blob, _ := json.Marshal(scs)
	var back []hotgen.Scenario
	_ = json.Unmarshal(blob, &back)
	again, err := hotgen.NewEngine(nil).RunBatch(context.Background(), back, hotgen.EngineOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-trip reproduces output: %v\n\n",
		results[0].Format() == again[0].Format())

	// 4. Cancellation: every long-running path checks its context at
	// iteration boundaries, so a heavy batch stops promptly and reports
	// ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	heavy := []hotgen.Scenario{{
		Name:     "too-big-for-today",
		Generate: hotgen.GenerateSpec{Model: "fkp", Params: hotgen.GenParams{"n": 50000}},
		Measure:  &hotgen.MeasureSpec{Profile: true},
		Reps:     8,
	}}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = eng.RunBatch(ctx, heavy, hotgen.EngineOptions{})
	fmt.Printf("heavy batch canceled after %v: err=%v (ErrCanceled=%v)\n",
		time.Since(start).Round(time.Millisecond), err != nil, errors.Is(err, hotgen.ErrCanceled))
}
