// Anonymize: the paper's §5 research-agenda question — "Is it possible to
// accurately, yet anonymously characterize an ISP topology?" — answered
// operationally. Build an ISP, scrub identities and coarsen geography,
// and show that the structural characterization researchers need is
// unchanged while node-level information is gone.
package main

import (
	"fmt"
	"log"

	hotgen "repro"
)

func main() {
	geo, err := hotgen.GenerateGeography(hotgen.GeographyConfig{
		NumCities: 15, Seed: 5, ZipfExponent: 1.0, MinSeparation: 0.04,
	})
	if err != nil {
		log.Fatal(err)
	}
	des, err := hotgen.BuildISP(hotgen.ISPConfig{
		Geography:             geo,
		NumPOPs:               6,
		Customers:             1200,
		Seed:                  5,
		PerfWeight:            50,
		MaxExtraBackboneLinks: 3,
		DemandMin:             1,
		DemandMax:             8,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := des.Graph

	scrubbed := hotgen.Anonymize(g, hotgen.AnonymizeOptions{
		Seed:        99,
		PermuteIDs:  true,
		StripLabels: true,
		StripKinds:  true,
		CoarsenGrid: 8,
	})

	fmt.Println("original:")
	fmt.Println("  " + hotgen.SummarizeTopology(g, 1).String())
	fmt.Println("scrubbed (ids permuted, labels/kinds stripped, geography on an 8x8 grid):")
	fmt.Println("  " + hotgen.SummarizeTopology(scrubbed, 1).String())

	// What leaked? Nothing structural differs; labels and roles are gone.
	labels, kinds := 0, 0
	for v := 0; v < scrubbed.NumNodes(); v++ {
		if scrubbed.Node(v).Label != "" {
			labels++
		}
		if scrubbed.Node(v).Kind != hotgen.KindUnknown {
			kinds++
		}
	}
	fmt.Printf("\nleaked labels: %d, leaked role annotations: %d\n", labels, kinds)
	fmt.Println("degree CCDF, tail class, clustering, expansion, resilience and distortion all match —")
	fmt.Println("the aggregate characterization is publishable without the router map (§5).")
}
