// Attack registry walkthrough: enumerate registered attacks, trace
// robustness curves with the incremental (reverse union-find) sweep
// engine, compare an edge-targeted attack, and summarize robust-yet-
// fragile with the attack gap — the paper's §3.1 claim as a five-minute
// program.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	hotgen "repro"
)

func main() {
	ctx := context.Background()

	// 1. Attacks are name-addressable, like generators and metrics.
	fmt.Printf("registered attacks: %s\n\n", strings.Join(hotgen.AttackNames(), ", "))

	// One optimization-designed topology (FKP tree: geography + hubs).
	g, err := hotgen.FKP(hotgen.FKPConfig{N: 1500, Alpha: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	c := g.Freeze() // one snapshot shared by every sweep below

	// 2. Trace LCC curves for several named attacks. The engine's auto
	// mode rides the incremental path: the whole trajectory costs one
	// near-linear reverse union-find pass per schedule, so a dense
	// fraction grid is effectively free.
	fracs := []float64{0.01, 0.05, 0.1, 0.2, 0.5, 1}
	attacks := []struct {
		name   string
		params hotgen.AttackParams
	}{
		{"random-failure", nil},
		{"degree", nil},
		{"adaptive-degree", nil},
		{"geographic", hotgen.AttackParams{"x": 0.5, "y": 0.5}},
		{"preferential", hotgen.AttackParams{"alpha": 2}},
		{"random-edge", nil},
	}
	fmt.Printf("%-16s", "attack")
	for _, f := range fracs {
		fmt.Printf("  lcc@%-5g", f)
	}
	fmt.Println()
	for _, a := range attacks {
		curves, err := hotgen.RunRobustnessSweep(ctx, g, c, hotgen.RobustnessSweepSpec{
			Attack: a.name,
			Params: a.params,
			Fracs:  fracs,
			Trials: 5,
		}, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s", a.name)
		for _, v := range curves[0].Values {
			fmt.Printf("  %-9.4f", v)
		}
		fmt.Println()
	}

	// 3. The attack gap condenses robust-yet-fragile into one number:
	// how much more a targeted attack hurts than uniform random removal
	// of the same target (nodes or edges). random-edge IS its own
	// baseline, so its gap is exactly zero.
	fmt.Println()
	for _, name := range []string{"degree", "geographic", "random-edge"} {
		gap, err := hotgen.RobustnessAttackGap(ctx, g, c, name, nil,
			[]float64{0.01, 0.05, 0.1, 0.2}, 10, 1, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attack gap vs uniform removal, %-12s %+.4f\n", name+":", gap)
	}

	// 4. The masked path generalizes beyond LCC: trace any masked-capable
	// metric set along the same schedule.
	curves, err := hotgen.RunRobustnessSweep(ctx, g, c, hotgen.RobustnessSweepSpec{
		Attack:  "degree",
		Fracs:   []float64{0.05, 0.2},
		Metrics: []string{"lcc", "mean-degree"},
		Mode:    hotgen.SweepMasked,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, curve := range curves {
		fmt.Printf("degree attack, %-12s %v\n", curve.Name+":", curve.Values)
	}
}
