// Access design: the paper's §4 case study end to end. Build a metro
// access network for 800 customers with the buy-at-bulk cable catalog,
// compare the randomized MMP-style heuristic against both naive extremes
// and the lower bound, inspect the §4.2 degree-tail claim, and then add
// path redundancy (footnote 7) and watch the tree structure break.
package main

import (
	"fmt"
	"log"

	hotgen "repro"
)

func main() {
	in, err := hotgen.RandomAccessInstance(hotgen.AccessInstanceConfig{
		N:            800,
		Seed:         7,
		DemandMin:    1,
		DemandMax:    16,
		Clusters:     6, // customers clump around metro clusters (§2.1)
		RootAtCenter: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d customers, total demand %.1f, catalog %d cable types\n",
		len(in.Customers), in.TotalDemand(), len(in.Catalog))
	lb := hotgen.AccessLowerBound(in)
	fmt.Printf("lower bound: %.1f\n\n", lb)

	mmp, err := hotgen.MMPIncremental(in, 1)
	if err != nil {
		log.Fatal(err)
	}
	sa, err := hotgen.SampleAndAugment(in, 1, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	mst, err := hotgen.SingleCableMST(in)
	if err != nil {
		log.Fatal(err)
	}
	star, err := hotgen.DirectStar(in)
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, net *hotgen.AccessNetwork) {
		tail := hotgen.ClassifyTail(net.Graph.Degrees())
		fmt.Printf("%-22s cost=%8.1f (%.2fx LB)  tree=%-5v  maxDeg=%-3d  tail=%s\n",
			name, net.TotalCost(), net.TotalCost()/lb,
			net.Graph.IsTree(), net.Graph.MaxDegree(), tail.Kind)
	}
	report("mmp-incremental", mmp)
	report("sample-and-augment", sa)
	report("single-cable MST", mst)
	report("direct star", star)

	// Footnote 7: require path redundancy.
	added := hotgen.AugmentTwoEdgeConnected(in, mmp)
	fmt.Printf("\nafter 2-edge-connectivity augmentation: +%d edges, tree=%v, cost=%.1f\n",
		added, mmp.Graph.IsTree(), mmp.TotalCost())
}
