package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/attackreg"
	"repro/internal/errs"
)

func baseConfig() config {
	return config{
		model: "ba", n: 120, seed: 1, attacks: "degree,random-failure",
		fracs: "0.05,0.2,1", metrics: "lcc", trials: 2, mode: "auto",
		workers: 2, format: "table", out: "-",
	}
}

func runToFile(t *testing.T, cfg config) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "out.txt")
	cfg.out = out
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunTable(t *testing.T) {
	cfg := baseConfig()
	cfg.gap = true
	text := runToFile(t, cfg)
	for _, want := range []string{"topoattack ba: 120 nodes", "degree", "random-failure", "@0.05", "@1", "gap", "lcc"} {
		if !strings.Contains(text, want) {
			t.Errorf("table output missing %q:\n%s", want, text)
		}
	}
}

func TestRunJSONAndAttackParams(t *testing.T) {
	cfg := baseConfig()
	cfg.model = "waxman"
	cfg.attacks = "geographic"
	cfg.aparams = []string{"geographic.x=0.1", "geographic.y=0.9"}
	cfg.format = "json"
	text := runToFile(t, cfg)
	for _, want := range []string{`"attack": "geographic"`, `"target": "nodes"`, `"curves"`, `"x": 0.1`} {
		if !strings.Contains(text, want) {
			t.Errorf("json output missing %q:\n%s", want, text)
		}
	}
}

// TestModesAgreeAndWorkersDeterministic pins the CLI-visible halves of
// the engine contract: masked and incremental output bytes are
// identical, as are any two worker counts.
func TestModesAgreeAndWorkersDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.attacks = "degree,random-failure,random-edge,preferential"
	cfg.mode = "masked"
	masked := runToFile(t, cfg)
	cfg.mode = "incremental"
	incr := runToFile(t, cfg)
	if masked != incr {
		t.Fatalf("masked vs incremental output differs:\n--- masked ---\n%s\n--- incremental ---\n%s", masked, incr)
	}
	cfg.mode = "auto"
	cfg.workers = 1
	one := runToFile(t, cfg)
	cfg.workers = 8
	eight := runToFile(t, cfg)
	if one != eight {
		t.Fatalf("workers=1 vs 8 output differs:\n--- 1 ---\n%s\n--- 8 ---\n%s", one, eight)
	}
}

func TestRunMultiMetricMasked(t *testing.T) {
	cfg := baseConfig()
	cfg.attacks = "degree"
	cfg.metrics = "lcc,mean-degree"
	text := runToFile(t, cfg)
	if !strings.Contains(text, "mean-degree") {
		t.Fatalf("multi-metric output missing mean-degree:\n%s", text)
	}
}

// TestGapWithoutLCCMetric pins the -gap fallback: a metric set that
// never traced lcc still reports a gap (via one extra lcc sweep), for
// edge-targeted attacks against the random-edge baseline included.
func TestGapWithoutLCCMetric(t *testing.T) {
	cfg := baseConfig()
	cfg.attacks = "degree,bottleneck-edge"
	cfg.metrics = "lcc" // edge attacks allow only lcc; keep both rows comparable
	cfg.gap = true
	text := runToFile(t, cfg)
	if !strings.Contains(text, "gap") {
		t.Fatalf("gap column missing:\n%s", text)
	}
	cfg = baseConfig()
	cfg.attacks = "degree"
	cfg.metrics = "mean-degree"
	cfg.gap = true
	text = runToFile(t, cfg)
	if !strings.Contains(text, "mean-degree") || !strings.Contains(text, "gap") {
		t.Fatalf("non-lcc gap output malformed:\n%s", text)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := []func(*config){
		func(c *config) { c.attacks = "nope" },
		func(c *config) { c.attacks = "degree,," },
		func(c *config) { c.aparams = []string{"geographic.x=1"} }, // outside selected set
		func(c *config) { c.fracs = "0.1,abc" },
		func(c *config) { c.fracs = "1.5" },
		func(c *config) { c.mode = "teleport" },
		func(c *config) { c.model = "nope" },
		func(c *config) { c.gparams = []string{"bogus=1"} },
		func(c *config) { c.metrics = "nope" },
		func(c *config) { c.metrics = "lcc,mean-degree"; c.attacks = "random-edge" },
		func(c *config) { c.format = "yaml" },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if err := run(context.Background(), cfg); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("case %d: got %v, want ErrBadParam", i, err)
		}
	}
}

func TestListAttacksSortedAndComplete(t *testing.T) {
	var b strings.Builder
	attackreg.Default().FormatAttacks(&b, "-param ")
	out := b.String()
	var listed []string
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, " ") {
			continue
		}
		name, _, _ := strings.Cut(line, " ")
		listed = append(listed, name)
	}
	names := attackreg.Names()
	if len(listed) != len(names) {
		t.Fatalf("-list shows %d attacks, registry has %d", len(listed), len(names))
	}
	for i := range names {
		if listed[i] != names[i] {
			t.Fatalf("-list order %v != registry order %v", listed, names)
		}
	}
	for i := 1; i < len(listed); i++ {
		if listed[i] < listed[i-1] {
			t.Fatalf("-list output not sorted: %v", listed)
		}
	}
}
