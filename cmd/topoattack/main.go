// Command topoattack runs registry-driven robustness sweeps: generate a
// topology with any registered model, then trace metric curves along
// one or more named attack schedules — the attack mirror of
// `topostats`, on the sweep engine whose incremental reverse union-find
// path computes whole LCC trajectories in near-linear time.
//
// Usage:
//
//	topoattack -model ba -n 2000 -gparam m=2 -attacks degree,random-failure
//	topoattack -model fkp -attacks geographic -param geographic.x=0.2 -param geographic.y=0.8
//	topoattack -model waxman -attacks random-edge,bottleneck-edge -fracs 0.1,0.3,0.5,1
//	topoattack -model ba -attacks degree -metrics lcc,mean-degree -mode masked
//	topoattack -gap -model fkp -attacks adaptive-degree,preferential
//	topoattack -list
//
// Attacks are selected like topostats metrics: a comma-separated
// -attacks list plus repeatable -param attack.key=value assignments,
// both validated against the attack registry (run -list for the full
// set with typed parameters). Output is byte-identical for any -workers
// value and either evaluation path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/attackreg"
	"repro/internal/errs"
	"repro/internal/params"
	"repro/internal/robust"
	"repro/internal/scenario"
)

func main() {
	var (
		model   = flag.String("model", "ba", "topology model: any registered generator (see toposcenario -list)")
		n       = flag.Int("n", 1000, "number of nodes (models that declare an \"n\" parameter)")
		seed    = flag.Int64("seed", 1, "random seed (generation and randomized schedules)")
		attacks = flag.String("attacks", "random-failure,degree", "comma-separated attack-registry names")
		fracs   = flag.String("fracs", "0.01,0.05,0.1,0.2,0.5", "comma-separated removal fractions in [0,1]")
		metrics = flag.String("metrics", "lcc", "comma-separated masked metric set traced along each schedule")
		trials  = flag.Int("trials", 3, "trials averaged for randomized attacks (deterministic attacks use one pass)")
		mode    = flag.String("mode", "auto", "evaluation path: auto|masked|incremental")
		gap     = flag.Bool("gap", false, "also report each attack's gap vs the random-failure baseline")
		workers = flag.Int("workers", 0, "worker pool bound (<= 0 = GOMAXPROCS); output is identical for any value")
		format  = flag.String("format", "table", "output format: table|json")
		out     = flag.String("o", "-", "output file ('-' = stdout)")
		list    = flag.Bool("list", false, "list registered attacks with their parameters and exit")
	)
	var gparams, aparams stringList
	flag.Var(&gparams, "gparam", "generator parameter as name=value (repeatable)")
	flag.Var(&aparams, "param", "attack parameter as attack.name=value (repeatable)")
	flag.Parse()

	if *list {
		attackreg.Default().FormatAttacks(os.Stdout, "-param ")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cfg := config{
		model: *model, n: *n, seed: *seed,
		attacks: *attacks, aparams: aparams, gparams: gparams,
		fracs: *fracs, metrics: *metrics, trials: *trials, mode: *mode,
		gap: *gap, workers: *workers, format: *format, out: *out,
	}
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "topoattack: %v\n", err)
		os.Exit(1)
	}
}

// stringList collects a repeatable flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

type config struct {
	model            string
	n                int
	seed             int64
	attacks          string
	aparams, gparams []string
	fracs            string
	metrics          string
	trials           int
	mode             string
	gap              bool
	workers          int
	format           string
	out              string
}

// attackResult is one attack's sweep output in the JSON format.
type attackResult struct {
	Attack string               `json:"attack"`
	Target string               `json:"target"`
	Curves []robust.MetricCurve `json:"curves"`
	Gap    *float64             `json:"gap,omitempty"`
	Params attackreg.Params     `json:"params,omitempty"`
	Fracs  []float64            `json:"fracs"`
}

func run(ctx context.Context, cfg config) error {
	set, err := attackreg.ParseSelections(cfg.attacks, cfg.aparams)
	if err != nil {
		return err
	}
	fracList, err := parseFracs(cfg.fracs)
	if err != nil {
		return err
	}
	evalMode, err := robust.ParseMode(cfg.mode)
	if err != nil {
		return err
	}
	metricNames := strings.Split(cfg.metrics, ",")
	for i := range metricNames {
		metricNames[i] = strings.TrimSpace(metricNames[i])
	}

	// Generate through the scenario registry; the -n/-seed conveniences
	// apply only to models that declare those parameters, -gparam
	// overrides them.
	gen, err := scenario.Lookup(cfg.model)
	if err != nil {
		return err
	}
	p := scenario.Params{}
	for _, spec := range gen.Params() {
		switch spec.Name {
		case "n":
			p["n"] = float64(cfg.n)
		case "seed":
			p["seed"] = float64(cfg.seed)
		}
	}
	for _, kv := range cfg.gparams {
		name, v, err := params.ParseKV(kv)
		if err != nil {
			return err
		}
		p[name] = v
	}
	g, err := scenario.Default().GenerateByName(ctx, cfg.model, p)
	if err != nil {
		return err
	}
	c := g.Freeze()

	// Baseline LCC curves for -gap, computed once per schedule target
	// (random-failure for node attacks, random-edge for edge attacks)
	// and shared across every selected attack.
	baselines := map[string][]float64{}
	baseline := func(target attackreg.Target) ([]float64, error) {
		name := robust.BaselineFor(target)
		if vals, ok := baselines[name]; ok {
			return vals, nil
		}
		curves, err := robust.RunSweepContext(ctx, g, c, robust.SweepSpec{
			Attack: name, Fracs: fracList, Trials: cfg.trials, Workers: cfg.workers,
		}, cfg.seed)
		if err != nil {
			return nil, err
		}
		baselines[name] = curves[0].Values
		return curves[0].Values, nil
	}

	results := make([]attackResult, 0, len(set))
	for _, sel := range set {
		atk, err := attackreg.Lookup(sel.Name)
		if err != nil {
			return err
		}
		spec := robust.SweepSpec{
			Attack:  sel.Name,
			Params:  sel.Params,
			Fracs:   fracList,
			Trials:  cfg.trials,
			Metrics: metricNames,
			Mode:    evalMode,
			Workers: cfg.workers,
		}
		curves, err := robust.RunSweepContext(ctx, g, c, spec, cfg.seed)
		if err != nil {
			return err
		}
		res := attackResult{
			Attack: atk.Name(), Target: atk.Target().String(),
			Curves: curves, Params: sel.Params, Fracs: fracList,
		}
		if cfg.gap {
			base, err := baseline(atk.Target())
			if err != nil {
				return err
			}
			// Reuse the sweep's own LCC curve when the metric set traced
			// it; only a non-LCC set pays for one extra sweep.
			var atkLCC []float64
			for _, curve := range curves {
				if curve.Name == "lcc" {
					atkLCC = curve.Values
				}
			}
			if atkLCC == nil {
				lccSpec := spec
				lccSpec.Metrics, lccSpec.Mode = nil, robust.ModeAuto
				lccCurves, err := robust.RunSweepContext(ctx, g, c, lccSpec, cfg.seed)
				if err != nil {
					return err
				}
				atkLCC = lccCurves[0].Values
			}
			gap := 0.0
			for i := range base {
				gap += base[i] - atkLCC[i]
			}
			gap /= float64(len(base))
			res.Gap = &gap
		}
		results = append(results, res)
	}

	var w io.Writer = os.Stdout
	if cfg.out != "-" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch cfg.format {
	case "table":
		writeTable(w, g.NumNodes(), g.NumEdges(), cfg.model, results)
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	default:
		return errs.BadParamf("topoattack: unknown format %q", cfg.format)
	}
	return nil
}

func parseFracs(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, errs.BadParamf("topoattack: invalid fraction %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// writeTable renders one aligned row per (attack, metric) curve, with a
// column per removal fraction.
func writeTable(w io.Writer, nodes, edges int, model string, results []attackResult) {
	fmt.Fprintf(w, "topoattack %s: %d nodes, %d edges\n", model, nodes, edges)
	if len(results) == 0 {
		return
	}
	header := []string{"attack", "target", "metric"}
	for _, f := range results[0].Fracs {
		header = append(header, "@"+strconv.FormatFloat(f, 'g', -1, 64))
	}
	gapCol := false
	for _, r := range results {
		if r.Gap != nil {
			gapCol = true
		}
	}
	if gapCol {
		header = append(header, "gap")
	}
	var rows [][]string
	for _, r := range results {
		for _, curve := range r.Curves {
			row := []string{r.Attack, r.Target, curve.Name}
			for _, v := range curve.Values {
				row = append(row, strconv.FormatFloat(v, 'f', 4, 64))
			}
			if gapCol {
				cell := "-"
				if r.Gap != nil {
					cell = strconv.FormatFloat(*r.Gap, 'f', 4, 64)
				}
				row = append(row, cell)
			}
			rows = append(rows, row)
		}
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}
