package main

import (
	"testing"
)

func smallParams() genParams {
	return genParams{
		n: 60, seed: 1, alpha: 8, links: 1, m: 2,
		p: 0.1, beta: 0.5, waxmanAlpha: 0.1, radius: 0.15,
		cities: 8, pops: 3, customers: 40, isps: 3,
	}
}

func TestGenerateAllModels(t *testing.T) {
	models := []string{
		"fkp", "hot", "mmp", "ring", "ba", "glp", "er",
		"waxman", "transitstub", "rgg", "isp", "internet",
	}
	for _, m := range models {
		m := m
		t.Run(m, func(t *testing.T) {
			g, err := generate(m, smallParams())
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			if g.NumNodes() == 0 {
				t.Fatalf("%s produced an empty graph", m)
			}
		})
	}
}

func TestGenerateUnknownModel(t *testing.T) {
	if _, err := generate("nope", smallParams()); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestGenerateISPProfitMode(t *testing.T) {
	gp := smallParams()
	gp.price = 0.5
	g, err := generate("isp", gp)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 {
		t.Fatal("profit-mode ISP empty")
	}
}

func TestGenerateWithPorts(t *testing.T) {
	gp := smallParams()
	gp.ports = 6
	g, err := generate("fkp", gp)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 6 {
		t.Fatalf("port cap violated: %d", g.MaxDegree())
	}
	if _, err := generate("hot", gp); err != nil {
		t.Fatal(err)
	}
}

func TestPortConstraintHelper(t *testing.T) {
	if portConstraint(0) != nil {
		t.Fatal("no cap should give nil constraints")
	}
	if len(portConstraint(4)) != 1 {
		t.Fatal("cap should give one constraint")
	}
}
