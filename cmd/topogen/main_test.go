package main

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/errs"
	"repro/internal/scenario"
)

func smallParams() genParams {
	return genParams{
		n: 60, seed: 1, alpha: 8, links: 1, m: 2,
		p: 0.1, beta: 0.5, waxmanAlpha: 0.1, radius: 0.15,
		cities: 8, pops: 3, customers: 40, isps: 3,
	}
}

func TestGenerateAllModels(t *testing.T) {
	models := []string{
		"fkp", "hot", "mmp", "ring", "ba", "glp", "er",
		"waxman", "transitstub", "rgg", "isp", "internet",
	}
	for _, m := range models {
		m := m
		t.Run(m, func(t *testing.T) {
			g, err := generate(m, smallParams())
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			if g.NumNodes() == 0 {
				t.Fatalf("%s produced an empty graph", m)
			}
		})
	}
}

func TestGenerateRegistryOnlyModels(t *testing.T) {
	// Models with no dedicated convenience flags are still reachable:
	// generic flags map onto the parameters they declare, -param covers
	// the rest.
	gp := smallParams()
	for _, m := range []string{"inet", "configmodel", "er-gnm"} {
		g, err := generate(m, gp)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if g.NumNodes() == 0 {
			t.Fatalf("%s produced an empty graph", m)
		}
	}
}

func TestGenerateUnknownModel(t *testing.T) {
	_, err := generate("nope", smallParams())
	if !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown model gave %v, want ErrBadParam", err)
	}
}

func TestGenerateISPProfitMode(t *testing.T) {
	gp := smallParams()
	gp.price = 0.5
	g, err := generate("isp", gp)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 {
		t.Fatal("profit-mode ISP empty")
	}
}

func TestGenerateWithPorts(t *testing.T) {
	gp := smallParams()
	gp.ports = 6
	g, err := generate("fkp", gp)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 6 {
		t.Fatalf("port cap violated: %d", g.MaxDegree())
	}
	if _, err := generate("hot", gp); err != nil {
		t.Fatal(err)
	}
}

func TestParamOverridesWin(t *testing.T) {
	gp := smallParams()
	gp.overrides = scenario.Params{"n": 25}
	g, err := generate("ba", gp)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 25 {
		t.Fatalf("override ignored: %d nodes, want 25", g.NumNodes())
	}
}

func TestParamRejectsUnknownName(t *testing.T) {
	gp := smallParams()
	gp.overrides = scenario.Params{"bogus": 1}
	if _, err := generate("ba", gp); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown -param gave %v, want ErrBadParam", err)
	}
}

func TestParamFlagParsing(t *testing.T) {
	p := paramFlags{}
	if err := p.Set("alpha=2.5"); err != nil {
		t.Fatal(err)
	}
	if p["alpha"] != 2.5 {
		t.Fatalf("parsed %v", p)
	}
	for _, bad := range []string{"alpha", "=1", "alpha=x"} {
		if err := p.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

func TestListModels(t *testing.T) {
	var b strings.Builder
	listModels(&b)
	out := b.String()
	for _, m := range []string{"fkp", "internet", "configmodel"} {
		if !strings.Contains(out, m+"\n") {
			t.Errorf("-list output missing %q:\n%s", m, out)
		}
	}
	if !strings.Contains(out, "-param seed=<int>") {
		t.Errorf("-list output missing parameter lines:\n%s", out)
	}
}

func TestListModelsSorted(t *testing.T) {
	var b strings.Builder
	listModels(&b)
	var names []string
	for _, line := range strings.Split(b.String(), "\n") {
		if line != "" && !strings.HasPrefix(line, " ") {
			names = append(names, line)
		}
	}
	if len(names) < 10 {
		t.Fatalf("suspiciously few models listed: %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("-list output not sorted: %v", names)
	}
}
