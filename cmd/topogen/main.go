// Command topogen generates topologies with any model in the scenario
// registry and writes them as JSON, DOT, or an adjacency list.
//
// Usage:
//
//	topogen -model fkp -n 2000 -alpha 8 -seed 1 -format json -o out.json
//	topogen -model ba -n 5000 -m 2 -format dot
//	topogen -model isp -cities 25 -pops 8 -customers 2000
//	topogen -model internet -isps 8 -pops 5 -customers 300
//	topogen -model inet -param alpha=2.2 -n 3000
//	topogen -list
//
// The documented convenience flags (-n, -alpha, -m, ...) cover the
// classic models: fkp, hot, mmp, ring, ba, glp, er, waxman, transitstub,
// rgg, isp, internet. Every registered model — run `topogen -list` for
// the full set with its typed parameters — is reachable through
// repeatable -param name=value flags, which override the convenience
// flags on conflict.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/export"
	"repro/internal/graph"
	"repro/internal/params"
	"repro/internal/scenario"
)

// paramFlags collects repeatable -param name=value pairs through the
// shared parser (internal/params), so CLI parsing and spec validation
// reject the same inputs.
type paramFlags scenario.Params

func (p paramFlags) String() string { return fmt.Sprintf("%v", scenario.Params(p)) }

func (p paramFlags) Set(s string) error {
	name, v, err := params.ParseKV(s)
	if err != nil {
		return err
	}
	p[name] = v
	return nil
}

func main() {
	var (
		model  = flag.String("model", "fkp", "topology model: any registered generator (see -list); classics: fkp|hot|mmp|ring|ba|glp|er|waxman|transitstub|rgg|isp|internet")
		n      = flag.Int("n", 1000, "number of nodes / customers")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "json", "output format: json|dot|adj")
		out    = flag.String("o", "-", "output file ('-' = stdout)")
		list   = flag.Bool("list", false, "list registered models with their parameters and exit")

		alpha = flag.Float64("alpha", 8, "fkp: distance weight")
		links = flag.Int("links", 1, "hot: links per arrival")
		ports = flag.Int("ports", 0, "fkp/hot/isp: max router degree (0 = unlimited)")

		m    = flag.Int("m", 2, "ba/glp: links per new node")
		p    = flag.Float64("p", 0.3, "glp: internal-link probability; er: edge probability")
		beta = flag.Float64("beta", 0.5, "glp: preference shift; waxman: edge probability scale")
		wa   = flag.Float64("waxman-alpha", 0.1, "waxman: distance decay scale")
		rad  = flag.Float64("radius", 0.1, "rgg: connection radius")

		cities    = flag.Int("cities", 25, "isp/internet: number of cities")
		pops      = flag.Int("pops", 8, "isp/internet: POPs per provider")
		customers = flag.Int("customers", 2000, "isp/internet: customers per provider")
		isps      = flag.Int("isps", 8, "internet: number of providers")
		price     = flag.Float64("price", 0, "isp: per-demand price (>0 switches to profit formulation)")
	)
	overrides := paramFlags{}
	flag.Var(overrides, "param", "extra model parameter as name=value (repeatable; overrides convenience flags)")
	flag.Parse()

	if *list {
		listModels(os.Stdout)
		return
	}

	g, err := generate(*model, genParams{
		n: *n, seed: *seed, alpha: *alpha, links: *links, ports: *ports,
		m: *m, p: *p, beta: *beta, waxmanAlpha: *wa, radius: *rad,
		cities: *cities, pops: *pops, customers: *customers, isps: *isps,
		price: *price, overrides: scenario.Params(overrides),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = export.WriteJSON(w, g, *model)
	case "dot":
		err = export.WriteDOT(w, g, *model)
	case "adj":
		err = export.WriteAdjacency(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "topogen: %s: %d nodes, %d edges\n", *model, g.NumNodes(), g.NumEdges())
}

func listModels(w io.Writer) {
	scenario.Default().FormatModels(w, "-param ")
}

type genParams struct {
	n           int
	seed        int64
	alpha       float64
	links       int
	ports       int
	m           int
	p           float64
	beta        float64
	waxmanAlpha float64
	radius      float64
	cities      int
	pops        int
	customers   int
	isps        int
	price       float64
	overrides   scenario.Params
}

// generate dispatches through the scenario registry: the documented
// convenience flags are mapped onto each classic model's registry
// parameters, any -param overrides are applied last, and the registry
// validates the final set.
func generate(model string, gp genParams) (*graph.Graph, error) {
	name, params, err := registryArgs(model, gp)
	if err != nil {
		return nil, err
	}
	for k, v := range gp.overrides {
		params[k] = v
	}
	return scenario.Default().GenerateByName(context.Background(), name, params)
}

// registryArgs maps topogen's documented flag sets onto registry names
// and parameters. Models outside the documented set pass only the flags
// they declare ("n", "seed"), leaving the rest to -param.
func registryArgs(model string, gp genParams) (string, scenario.Params, error) {
	fn := float64(gp.n)
	fseed := float64(gp.seed)
	switch model {
	case "fkp":
		return model, scenario.Params{"n": fn, "alpha": gp.alpha, "ports": float64(gp.ports), "seed": fseed}, nil
	case "hot":
		return model, scenario.Params{"n": fn, "alpha": gp.alpha, "links": float64(gp.links), "ports": float64(gp.ports), "seed": fseed}, nil
	case "mmp":
		return model, scenario.Params{"n": fn, "seed": fseed}, nil
	case "ring":
		return model, scenario.Params{"n": fn, "seed": fseed}, nil
	case "ba":
		return model, scenario.Params{"n": fn, "m": float64(gp.m), "seed": fseed}, nil
	case "glp":
		return model, scenario.Params{"n": fn, "m": float64(gp.m), "p": gp.p, "beta": gp.beta, "seed": fseed}, nil
	case "er", "er-gnp":
		return "er-gnp", scenario.Params{"n": fn, "p": gp.p, "seed": fseed}, nil
	case "waxman":
		return model, scenario.Params{"n": fn, "alpha": gp.waxmanAlpha, "beta": gp.beta, "seed": fseed}, nil
	case "transitstub":
		stubSize := gp.n / 48
		if stubSize < 2 {
			stubSize = 2
		}
		return model, scenario.Params{
			"domains": 4, "transitsize": 4, "stubs": 3,
			"stubsize": float64(stubSize), "edgeprob": 0.3, "seed": fseed,
		}, nil
	case "rgg":
		return model, scenario.Params{"n": fn, "radius": gp.radius, "seed": fseed}, nil
	case "isp":
		return model, scenario.Params{
			"cities": float64(gp.cities), "pops": float64(gp.pops),
			"customers": float64(gp.customers), "ports": float64(gp.ports),
			"price": gp.price, "seed": fseed,
		}, nil
	case "internet":
		return model, scenario.Params{
			"cities": float64(gp.cities), "pops": float64(gp.pops),
			"customers": float64(gp.customers), "isps": float64(gp.isps),
			"seed": fseed,
		}, nil
	default:
		// Any other registered model: pass the generic flags it
		// declares; everything else comes from -param.
		g, err := scenario.Lookup(model)
		if err != nil {
			return "", nil, err
		}
		params := scenario.Params{}
		for _, s := range g.Params() {
			switch s.Name {
			case "n":
				params["n"] = fn
			case "seed":
				params["seed"] = fseed
			}
		}
		return model, params, nil
	}
}
