// Command topogen generates topologies with any of the repository's
// models and writes them as JSON, DOT, or an adjacency list.
//
// Usage:
//
//	topogen -model fkp -n 2000 -alpha 8 -seed 1 -format json -o out.json
//	topogen -model ba -n 5000 -m 2 -format dot
//	topogen -model isp -cities 25 -pops 8 -customers 2000
//	topogen -model internet -isps 8 -pops 5 -customers 300
//
// Models: fkp, hot, mmp (buy-at-bulk), ba, glp, er, waxman, transitstub,
// rgg, isp, internet.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/isp"
	"repro/internal/peering"
	"repro/internal/traffic"
)

func main() {
	var (
		model  = flag.String("model", "fkp", "topology model: fkp|hot|mmp|ring|ba|glp|er|waxman|transitstub|rgg|isp|internet")
		n      = flag.Int("n", 1000, "number of nodes / customers")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "json", "output format: json|dot|adj")
		out    = flag.String("o", "-", "output file ('-' = stdout)")

		alpha = flag.Float64("alpha", 8, "fkp: distance weight")
		links = flag.Int("links", 1, "hot: links per arrival")
		ports = flag.Int("ports", 0, "fkp/hot/isp: max router degree (0 = unlimited)")

		m    = flag.Int("m", 2, "ba/glp: links per new node")
		p    = flag.Float64("p", 0.3, "glp: internal-link probability; er: edge probability")
		beta = flag.Float64("beta", 0.5, "glp: preference shift; waxman: edge probability scale")
		wa   = flag.Float64("waxman-alpha", 0.1, "waxman: distance decay scale")
		rad  = flag.Float64("radius", 0.1, "rgg: connection radius")

		cities    = flag.Int("cities", 25, "isp/internet: number of cities")
		pops      = flag.Int("pops", 8, "isp/internet: POPs per provider")
		customers = flag.Int("customers", 2000, "isp/internet: customers per provider")
		isps      = flag.Int("isps", 8, "internet: number of providers")
		price     = flag.Float64("price", 0, "isp: per-demand price (>0 switches to profit formulation)")
	)
	flag.Parse()

	g, err := generate(*model, genParams{
		n: *n, seed: *seed, alpha: *alpha, links: *links, ports: *ports,
		m: *m, p: *p, beta: *beta, waxmanAlpha: *wa, radius: *rad,
		cities: *cities, pops: *pops, customers: *customers, isps: *isps,
		price: *price,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = export.WriteJSON(w, g, *model)
	case "dot":
		err = export.WriteDOT(w, g, *model)
	case "adj":
		err = export.WriteAdjacency(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "topogen: %s: %d nodes, %d edges\n", *model, g.NumNodes(), g.NumEdges())
}

type genParams struct {
	n           int
	seed        int64
	alpha       float64
	links       int
	ports       int
	m           int
	p           float64
	beta        float64
	waxmanAlpha float64
	radius      float64
	cities      int
	pops        int
	customers   int
	isps        int
	price       float64
}

func generate(model string, gp genParams) (*graph.Graph, error) {
	switch model {
	case "fkp":
		return core.FKP(core.FKPConfig{
			N: gp.n, Alpha: gp.alpha, Seed: gp.seed, MaxDegree: gp.ports,
		})
	case "hot":
		g, _, err := core.GrowHOT(core.HOTConfig{
			N:    gp.n,
			Seed: gp.seed,
			Terms: []core.ObjectiveTerm{
				core.DistanceTerm{Weight: gp.alpha},
				core.CentralityTerm{Weight: 1},
			},
			LinksPerArrival: gp.links,
			Constraints:     portConstraint(gp.ports),
		})
		return g, err
	case "mmp":
		in, err := access.RandomInstance(access.InstanceConfig{
			N: gp.n, Seed: gp.seed, DemandMin: 1, DemandMax: 16, RootAtCenter: true,
		})
		if err != nil {
			return nil, err
		}
		net, err := access.MMPIncremental(in, gp.seed)
		if err != nil {
			return nil, err
		}
		return net.Graph, nil
	case "ring":
		in, err := access.RandomInstance(access.InstanceConfig{
			N: gp.n, Seed: gp.seed, DemandMin: 1, DemandMax: 16, RootAtCenter: true,
		})
		if err != nil {
			return nil, err
		}
		net, err := access.RingMetro(in, 8)
		if err != nil {
			return nil, err
		}
		return net.Graph, nil
	case "ba":
		return gen.BarabasiAlbert(gp.n, gp.m, gp.seed)
	case "glp":
		return gen.GLP(gp.n, gp.m, gp.p, gp.beta, gp.seed)
	case "er":
		return gen.ErdosRenyiGNP(gp.n, gp.p, gp.seed)
	case "waxman":
		return gen.Waxman(gp.n, gp.waxmanAlpha, gp.beta, gp.seed)
	case "transitstub":
		stubSize := gp.n / 48
		if stubSize < 2 {
			stubSize = 2
		}
		return gen.TransitStub(gen.TransitStubConfig{
			TransitDomains:  4,
			TransitSize:     4,
			StubsPerTransit: 3,
			StubSize:        stubSize,
			EdgeProb:        0.3,
			Seed:            gp.seed,
		})
	case "rgg":
		return gen.RandomGeometric(gp.n, gp.radius, gp.seed)
	case "isp":
		geo, err := traffic.GenerateGeography(traffic.GeographyConfig{
			NumCities: gp.cities, Seed: gp.seed, ZipfExponent: 1, MinSeparation: 0.03,
		})
		if err != nil {
			return nil, err
		}
		cfg := isp.Config{
			Geography:             geo,
			NumPOPs:               gp.pops,
			Customers:             gp.customers,
			Seed:                  gp.seed,
			PerfWeight:            50,
			MaxExtraBackboneLinks: 4,
			MaxPorts:              gp.ports,
			DemandMin:             1,
			DemandMax:             8,
		}
		if gp.price > 0 {
			cfg.Formulation = isp.ProfitBased
			cfg.PricePerDemand = gp.price
		}
		des, err := isp.Build(cfg)
		if err != nil {
			return nil, err
		}
		return des.Graph, nil
	case "internet":
		geo, err := traffic.GenerateGeography(traffic.GeographyConfig{
			NumCities: gp.cities, Seed: gp.seed, ZipfExponent: 1, MinSeparation: 0.03,
		})
		if err != nil {
			return nil, err
		}
		inet, err := peering.Assemble(peering.Config{
			Geography:        geo,
			NumISPs:          gp.isps,
			Seed:             gp.seed,
			POPsPerISP:       gp.pops,
			CustomersPerISP:  gp.customers,
			PeeringSetupCost: 1e-7,
		})
		if err != nil {
			return nil, err
		}
		return inet.Router, nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}

func portConstraint(ports int) []core.Constraint {
	if ports <= 0 {
		return nil
	}
	return []core.Constraint{core.MaxDegreeConstraint{Max: ports}}
}
