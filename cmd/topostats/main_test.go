package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// defaults mirrors main's flag defaults for the non-traffic tests.
func defaults(in string) runConfig {
	return runConfig{in: in, seed: 1, sites: 16, capacity: 1}
}

const tinyJSON = `{
	"name": "tiny",
	"nodes": [{"id": 0}, {"id": 1}, {"id": 2}],
	"edges": [{"u": 0, "v": 1, "weight": 1}, {"u": 1, "v": 2, "weight": 1}]
}`

func TestRunValidJSON(t *testing.T) {
	p := write(t, "topo.json", tinyJSON)
	var b strings.Builder
	if err := run(defaults(p), nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"topology: tiny", "nodes: 3", "edges: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCorruptInputsFailWithoutOutput(t *testing.T) {
	cases := []struct {
		name    string
		adj     bool
		content string
	}{
		{"truncated.json", false, `{"name": "x", "nodes": [{"id": 0}`},
		{"notjson.json", false, "certainly not json"},
		{"trailing.json", false, `{"name": "x", "nodes": [{"id": 0}], "edges": []} trailing garbage`},
		{"badedge.json", false, `{"name": "x", "nodes": [{"id": 0}], "edges": [{"u": 0, "v": 9}]}`},
		{"sparseids.json", false, `{"name": "x", "nodes": [{"id": 0}, {"id": 5}], "edges": []}`},
		{"empty.json", false, `{"name": "x", "nodes": [], "edges": []}`},
		{"badline.txt", true, "0 1 1.0\nnot an edge\n"},
		{"selfloop.txt", true, "3 3\n"},
		{"empty.txt", true, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := write(t, tc.name, tc.content)
			var b strings.Builder
			cfg := defaults(p)
			cfg.adj = tc.adj
			err := run(cfg, nil, &b)
			if err == nil {
				t.Fatalf("corrupt input %q accepted", tc.name)
			}
			if b.Len() != 0 {
				t.Fatalf("corrupt input %q produced partial output:\n%s", tc.name, b.String())
			}
		})
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(defaults(filepath.Join(t.TempDir(), "nope.json")), nil, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunMetricSelection(t *testing.T) {
	p := write(t, "topo.json", tinyJSON)
	var b strings.Builder
	cfg := defaults(p)
	cfg.metrics = "clustering,mean-degree,expansion"
	cfg.mparams = []string{"expansion.maxh=2"}
	err := run(cfg, nil, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Metric lines appear after the 3 header lines, in selection order.
	if len(lines) != 6 {
		t.Fatalf("want 6 output lines, got %d:\n%s", len(lines), out)
	}
	for i, prefix := range []string{"clustering: ", "mean-degree: ", "expansion: "} {
		if !strings.HasPrefix(lines[3+i], prefix) {
			t.Errorf("line %d = %q, want prefix %q", 3+i, lines[3+i], prefix)
		}
	}
	// A path of 3 nodes has mean degree 4/3.
	if !strings.HasPrefix(lines[4], "mean-degree: 1.333333") {
		t.Errorf("mean-degree line = %q", lines[4])
	}
	if !strings.Contains(lines[5], "series=") {
		t.Errorf("expansion line missing series: %q", lines[5])
	}
}

// TestRunTrafficMetrics drives the -traffic path: a demand model from
// the traffic registry feeds the CapTraffic metrics, with unprovisioned
// edges defaulted to unit capacity.
func TestRunTrafficMetrics(t *testing.T) {
	p := write(t, "topo.json", tinyJSON)
	var b strings.Builder
	cfg := defaults(p)
	cfg.metrics = "throughput,jain,delivered-frac,max-utilization"
	cfg.traffic = "gravity"
	cfg.tparams = []string{"gravity.exponent=0"}
	cfg.sites = 3
	err := run(cfg, nil, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "traffic: gravity (3 demands over 3 sites)") {
		t.Errorf("missing traffic header:\n%s", out)
	}
	for _, prefix := range []string{"throughput: ", "jain: ", "delivered-frac: ", "max-utilization: "} {
		found := false
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, prefix) {
				found = true
				if strings.HasPrefix(line, prefix+"0.000000") && prefix != "max-utilization: " {
					t.Errorf("%s evaluated to zero on a unit-capacity path:\n%s", prefix, out)
				}
			}
		}
		if !found {
			t.Errorf("output missing %q line:\n%s", prefix, out)
		}
	}
}

func TestRunTrafficErrors(t *testing.T) {
	p := write(t, "topo.json", tinyJSON)
	cases := []runConfig{
		func() runConfig { c := defaults(p); c.traffic = "gravity"; return c }(), // -traffic without -metrics
		func() runConfig {
			c := defaults(p)
			c.metrics = "throughput"
			c.traffic = "nope"
			return c
		}(),
		func() runConfig {
			c := defaults(p)
			c.metrics = "throughput"
			c.traffic = "gravity,uniform"
			return c
		}(),
		func() runConfig {
			c := defaults(p)
			c.metrics = "throughput"
			c.traffic = "gravity"
			c.tparams = []string{"gravity.bogus=1"}
			return c
		}(),
		func() runConfig { c := defaults(p); c.tparams = []string{"gravity.scale=1"}; return c }(), // -tparam without -traffic
		func() runConfig { c := defaults(p); c.metrics = "throughput"; return c }(),                // CapTraffic metric without -traffic
	}
	for i, cfg := range cases {
		var b strings.Builder
		if err := run(cfg, nil, &b); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if b.Len() != 0 {
			t.Errorf("case %d produced partial output", i)
		}
	}
}

func TestRunMetricSelectionErrors(t *testing.T) {
	p := write(t, "topo.json", tinyJSON)
	cases := []struct {
		metrics string
		params  []string
	}{
		{"nope", nil},
		{"clustering,clustering", nil},
		{"clustering", []string{"clustering.bogus=1"}},
		{"clustering", []string{"expansion.maxh=2"}}, // names a metric outside the set
		{"clustering", []string{"garbage"}},
		{"", []string{"clustering.x=1"}}, // -param without -metrics
	}
	for _, tc := range cases {
		var b strings.Builder
		cfg := defaults(p)
		cfg.metrics = tc.metrics
		cfg.mparams = tc.params
		if err := run(cfg, nil, &b); err == nil {
			t.Errorf("metrics=%q params=%v accepted", tc.metrics, tc.params)
		}
		if b.Len() != 0 {
			t.Errorf("metrics=%q params=%v produced partial output", tc.metrics, tc.params)
		}
	}
}

func TestListMetricsSortedAndComplete(t *testing.T) {
	var b strings.Builder
	listMetrics(&b)
	out := b.String()
	metricSection, trafficSection, found := strings.Cut(out, "traffic models (-traffic):")
	if !found {
		t.Fatalf("-list missing the traffic-model section:\n%s", out)
	}
	sectionNames := func(s string) []string {
		var names []string
		for _, line := range strings.Split(s, "\n") {
			if line != "" && !strings.HasPrefix(line, " ") {
				names = append(names, line)
			}
		}
		return names
	}
	names := sectionNames(metricSection)
	if len(names) < 10 {
		t.Fatalf("suspiciously few metrics listed (%d):\n%s", len(names), out)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("-list metrics not sorted: %v", names)
	}
	tnames := sectionNames(trafficSection)
	if !sort.StringsAreSorted(tnames) {
		t.Fatalf("-list traffic models not sorted: %v", tnames)
	}
	for _, want := range []string{"expansion", "resilience", "clustering", "lcc", "spectral-gap",
		"throughput", "max-utilization", "jain", "delivered-frac"} {
		if !strings.Contains(metricSection, want+"\n") {
			t.Errorf("-list missing metric %q:\n%s", want, out)
		}
	}
	for _, want := range []string{"gravity", "uniform", "zipf-hotspot", "bimodal", "single-epicenter"} {
		if !strings.Contains(trafficSection, want+"\n") {
			t.Errorf("-list missing traffic model %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "-param expansion.maxh=<int>") {
		t.Errorf("-list missing parameter lines:\n%s", out)
	}
	if !strings.Contains(out, "-tparam gravity.exponent=<float>") {
		t.Errorf("-list missing traffic parameter lines:\n%s", out)
	}
}

func TestCCDFConflictsWithMetricSelection(t *testing.T) {
	p := write(t, "topo.json", tinyJSON)
	var b strings.Builder
	cfg := defaults(p)
	cfg.ccdf = true
	cfg.metrics = "clustering"
	if err := run(cfg, nil, &b); err == nil {
		t.Fatal("-ccdf with -metrics accepted")
	}
	if b.Len() != 0 {
		t.Fatal("conflicting flags produced partial output")
	}
}
