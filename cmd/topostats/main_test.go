package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const tinyJSON = `{
	"name": "tiny",
	"nodes": [{"id": 0}, {"id": 1}, {"id": 2}],
	"edges": [{"u": 0, "v": 1, "weight": 1}, {"u": 1, "v": 2, "weight": 1}]
}`

func TestRunValidJSON(t *testing.T) {
	p := write(t, "topo.json", tinyJSON)
	var b strings.Builder
	if err := run(p, false, false, 1, "", nil, nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"topology: tiny", "nodes: 3", "edges: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCorruptInputsFailWithoutOutput(t *testing.T) {
	cases := []struct {
		name    string
		adj     bool
		content string
	}{
		{"truncated.json", false, `{"name": "x", "nodes": [{"id": 0}`},
		{"notjson.json", false, "certainly not json"},
		{"trailing.json", false, `{"name": "x", "nodes": [{"id": 0}], "edges": []} trailing garbage`},
		{"badedge.json", false, `{"name": "x", "nodes": [{"id": 0}], "edges": [{"u": 0, "v": 9}]}`},
		{"sparseids.json", false, `{"name": "x", "nodes": [{"id": 0}, {"id": 5}], "edges": []}`},
		{"empty.json", false, `{"name": "x", "nodes": [], "edges": []}`},
		{"badline.txt", true, "0 1 1.0\nnot an edge\n"},
		{"selfloop.txt", true, "3 3\n"},
		{"empty.txt", true, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := write(t, tc.name, tc.content)
			var b strings.Builder
			err := run(p, tc.adj, false, 1, "", nil, nil, &b)
			if err == nil {
				t.Fatalf("corrupt input %q accepted", tc.name)
			}
			if b.Len() != 0 {
				t.Fatalf("corrupt input %q produced partial output:\n%s", tc.name, b.String())
			}
		})
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.json"), false, false, 1, "", nil, nil, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunMetricSelection(t *testing.T) {
	p := write(t, "topo.json", tinyJSON)
	var b strings.Builder
	err := run(p, false, false, 1, "clustering,mean-degree,expansion", []string{"expansion.maxh=2"}, nil, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Metric lines appear after the 3 header lines, in selection order.
	if len(lines) != 6 {
		t.Fatalf("want 6 output lines, got %d:\n%s", len(lines), out)
	}
	for i, prefix := range []string{"clustering: ", "mean-degree: ", "expansion: "} {
		if !strings.HasPrefix(lines[3+i], prefix) {
			t.Errorf("line %d = %q, want prefix %q", 3+i, lines[3+i], prefix)
		}
	}
	// A path of 3 nodes has mean degree 4/3.
	if !strings.HasPrefix(lines[4], "mean-degree: 1.333333") {
		t.Errorf("mean-degree line = %q", lines[4])
	}
	if !strings.Contains(lines[5], "series=") {
		t.Errorf("expansion line missing series: %q", lines[5])
	}
}

func TestRunMetricSelectionErrors(t *testing.T) {
	p := write(t, "topo.json", tinyJSON)
	cases := []struct {
		metrics string
		params  []string
	}{
		{"nope", nil},
		{"clustering,clustering", nil},
		{"clustering", []string{"clustering.bogus=1"}},
		{"clustering", []string{"expansion.maxh=2"}}, // names a metric outside the set
		{"clustering", []string{"garbage"}},
		{"", []string{"clustering.x=1"}}, // -param without -metrics
	}
	for _, tc := range cases {
		var b strings.Builder
		if err := run(p, false, false, 1, tc.metrics, tc.params, nil, &b); err == nil {
			t.Errorf("metrics=%q params=%v accepted", tc.metrics, tc.params)
		}
		if b.Len() != 0 {
			t.Errorf("metrics=%q params=%v produced partial output", tc.metrics, tc.params)
		}
	}
}

func TestListMetricsSortedAndComplete(t *testing.T) {
	var b strings.Builder
	listMetrics(&b)
	out := b.String()
	var names []string
	for _, line := range strings.Split(out, "\n") {
		if line != "" && !strings.HasPrefix(line, " ") {
			names = append(names, line)
		}
	}
	if len(names) < 10 {
		t.Fatalf("suspiciously few metrics listed (%d):\n%s", len(names), out)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("-list output not sorted: %v", names)
	}
	for _, want := range []string{"expansion", "resilience", "clustering", "lcc", "spectral-gap"} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("-list missing metric %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "-param expansion.maxh=<int>") {
		t.Errorf("-list missing parameter lines:\n%s", out)
	}
}

func TestCCDFConflictsWithMetricSelection(t *testing.T) {
	p := write(t, "topo.json", tinyJSON)
	var b strings.Builder
	if err := run(p, false, true, 1, "clustering", nil, nil, &b); err == nil {
		t.Fatal("-ccdf with -metrics accepted")
	}
	if b.Len() != 0 {
		t.Fatal("conflicting flags produced partial output")
	}
}
