package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunValidJSON(t *testing.T) {
	p := write(t, "topo.json", `{
		"name": "tiny",
		"nodes": [{"id": 0}, {"id": 1}, {"id": 2}],
		"edges": [{"u": 0, "v": 1, "weight": 1}, {"u": 1, "v": 2, "weight": 1}]
	}`)
	var b strings.Builder
	if err := run(p, false, false, 1, nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"topology: tiny", "nodes: 3", "edges: 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCorruptInputsFailWithoutOutput(t *testing.T) {
	cases := []struct {
		name    string
		adj     bool
		content string
	}{
		{"truncated.json", false, `{"name": "x", "nodes": [{"id": 0}`},
		{"notjson.json", false, "certainly not json"},
		{"trailing.json", false, `{"name": "x", "nodes": [{"id": 0}], "edges": []} trailing garbage`},
		{"badedge.json", false, `{"name": "x", "nodes": [{"id": 0}], "edges": [{"u": 0, "v": 9}]}`},
		{"sparseids.json", false, `{"name": "x", "nodes": [{"id": 0}, {"id": 5}], "edges": []}`},
		{"empty.json", false, `{"name": "x", "nodes": [], "edges": []}`},
		{"badline.txt", true, "0 1 1.0\nnot an edge\n"},
		{"selfloop.txt", true, "3 3\n"},
		{"empty.txt", true, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := write(t, tc.name, tc.content)
			var b strings.Builder
			err := run(p, tc.adj, false, 1, nil, &b)
			if err == nil {
				t.Fatalf("corrupt input %q accepted", tc.name)
			}
			if b.Len() != 0 {
				t.Fatalf("corrupt input %q produced partial output:\n%s", tc.name, b.String())
			}
		})
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.json"), false, false, 1, nil, nil); err == nil {
		t.Fatal("missing file accepted")
	}
}
