// Command topostats computes topology metrics on a topology file (JSON
// produced by topogen, or a plain adjacency list), built on the metric
// registry (internal/metricreg).
//
// Usage:
//
//	topogen -model fkp -n 2000 | topostats
//	topostats -in topo.json
//	topostats -in edges.txt -adj
//	topostats -in topo.json -ccdf                  # also print the degree CCDF
//	topostats -list                                 # enumerate registry metrics
//	topostats -in topo.json -metrics clustering,expansion,diameter
//	topostats -in topo.json -metrics expansion -param expansion.maxh=5
//	topostats -in topo.json -metrics throughput,jain -traffic zipf-hotspot -sites 12
//
// Without -metrics the full default report (degree statistics, tail
// classification, the [30]-style comparison profile) is printed. With
// -metrics, exactly the named registry metrics are evaluated — as one
// fused schedule sharing traversals over a single frozen snapshot — and
// printed in selection order; repeatable -param metric.name=value flags
// set metric parameters.
//
// Traffic-capable metrics (throughput, max-utilization, jain,
// delivered-frac) need a demand set: -traffic names a registered demand
// model (internal/trafficreg) that generates demands over the
// topology's -sites top-degree nodes, with repeatable -tparam
// model.name=value parameters; -capacity substitutes a capacity on
// unprovisioned (zero-capacity) edges before allocating.
//
// Malformed input (corrupt JSON, bad adjacency lines, an empty
// topology) exits non-zero with a diagnostic on stderr and writes no
// partial statistics.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/graph"
	"repro/internal/metricreg"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trafficreg"
)

func main() {
	var (
		in       = flag.String("in", "-", "input file ('-' = stdin)")
		adj      = flag.Bool("adj", false, "input is an adjacency list, not JSON")
		ccdf     = flag.Bool("ccdf", false, "print the degree CCDF")
		seed     = flag.Int64("seed", 1, "seed for sampled metrics")
		list     = flag.Bool("list", false, "list registered metrics and traffic models with their parameters and exit")
		metricF  = flag.String("metrics", "", "comma-separated registry metrics to evaluate (empty = full default report)")
		trafficF = flag.String("traffic", "", "demand model generating traffic for the traffic-capable metrics (requires -metrics)")
		sites    = flag.Int("sites", 16, "top-degree traffic sites for -traffic demand generation")
		capacity = flag.Float64("capacity", 1, "capacity substituted on unprovisioned edges before allocating (-traffic; <= 0 keeps raw zeros)")
	)
	var mparams, tparams stringList
	flag.Var(&mparams, "param", "metric parameter as metric.name=value (repeatable; requires -metrics)")
	flag.Var(&tparams, "tparam", "traffic-model parameter as model.name=value (repeatable; requires -traffic)")
	flag.Parse()

	if *list {
		listMetrics(os.Stdout)
		return
	}
	if err := run(runConfig{
		in: *in, adj: *adj, ccdf: *ccdf, seed: *seed,
		metrics: *metricF, mparams: mparams,
		traffic: *trafficF, tparams: tparams, sites: *sites, capacity: *capacity,
	}, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "topostats: %v\n", err)
		os.Exit(1)
	}
}

// stringList collects a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return fmt.Sprintf("%v", []string(*l)) }

func (l *stringList) Set(s string) error {
	*l = append(*l, s)
	return nil
}

// listMetrics prints the metric registry and the traffic-model
// registry, both sorted by name.
func listMetrics(w io.Writer) {
	metricreg.Default().FormatMetrics(w, "-param ")
	fmt.Fprintln(w, "traffic models (-traffic):")
	trafficreg.Default().FormatModels(w, "-tparam ")
}

// runConfig carries the parsed flag set.
type runConfig struct {
	in       string
	adj      bool
	ccdf     bool
	seed     int64
	metrics  string
	mparams  []string
	traffic  string
	tparams  []string
	sites    int
	capacity float64
}

// run reads, validates, and reports on one topology. It writes nothing
// to w until the input has parsed, validated, and (with -metrics) the
// selection has resolved, so a failure never leaves partial output
// behind.
func run(cfg runConfig, stdin io.Reader, w io.Writer) error {
	var set []metricreg.Selection
	if cfg.metrics != "" {
		var err error
		if set, err = metricreg.ParseSelections(cfg.metrics, cfg.mparams); err != nil {
			return err
		}
		if cfg.ccdf {
			return fmt.Errorf("-ccdf applies to the default report, not -metrics")
		}
	} else if len(cfg.mparams) > 0 {
		return fmt.Errorf("-param requires -metrics")
	}
	var tsel *trafficreg.Selection
	if cfg.traffic != "" {
		if set == nil {
			return fmt.Errorf("-traffic requires -metrics")
		}
		sels, err := trafficreg.ParseSelections(cfg.traffic, cfg.tparams)
		if err != nil {
			return err
		}
		if len(sels) != 1 {
			return fmt.Errorf("-traffic takes exactly one demand model, got %q", cfg.traffic)
		}
		if cfg.sites == 1 {
			return fmt.Errorf("-sites must be >= 2 (or <= 0 for all nodes)")
		}
		tsel = &sels[0]
	} else if len(cfg.tparams) > 0 {
		return fmt.Errorf("-tparam requires -traffic")
	} else {
		// Map the library's "no traffic attached" failure to the flag
		// the user actually needs, before any input is read.
		for _, sel := range set {
			if m, err := metricreg.Lookup(sel.Name); err == nil && m.Caps()&metricreg.CapTraffic != 0 {
				return fmt.Errorf("metric %q needs a demand set; pass -traffic <model> (see -list)", sel.Name)
			}
		}
	}
	r := stdin
	if cfg.in != "-" {
		f, err := os.Open(cfg.in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var g *graph.Graph
	var name string
	var err error
	if cfg.adj {
		g, err = export.ReadAdjacency(r)
		name = cfg.in
	} else {
		g, name, err = export.ReadJSON(r)
	}
	if err != nil {
		return err
	}
	if g.NumNodes() == 0 {
		return fmt.Errorf("input %q holds an empty topology (no nodes)", cfg.in)
	}

	if set != nil {
		return runMetricSet(w, g, name, set, tsel, cfg)
	}
	ccdf, seed := cfg.ccdf, cfg.seed

	fmt.Fprintf(w, "topology: %s\n", name)
	fmt.Fprintf(w, "nodes: %d\nedges: %d\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(w, "connected: %v\ntree: %v\nforest: %v\n", g.IsConnected(), g.IsTree(), g.IsForest())
	ds := stats.AnalyzeDegrees(g)
	fmt.Fprintf(w, "mean degree: %.3f\nmax degree: %d (%.4f of n-1)\n",
		ds.MeanDegree, ds.MaxDegree, ds.TopDegreeFrac)
	fmt.Fprintf(w, "degree tail: %s (power-law alpha=%.2f xmin=%d KS=%.3f; exp lambda=%.3f KS=%.3f; llr=%.2f)\n",
		ds.Classification.Kind,
		ds.Classification.PowerLaw.Alpha, ds.Classification.PowerLaw.XMin, ds.Classification.PowerLaw.KS,
		ds.Classification.Exponential.Lambda, ds.Classification.Exponential.KS,
		ds.Classification.LogLikRatio)
	fmt.Fprintf(w, "classification: %s\n", core.Classify(g))
	fmt.Fprintf(w, "clustering: %.4f\nassortativity: %.4f\n",
		stats.ClusteringCoefficient(g), stats.DegreeAssortativity(g))
	prof := metrics.ComputeProfile(g, seed)
	fmt.Fprintf(w, "expansion@3: %.4f\nresilience: %.4f\ndistortion: %.3f\nhierarchy depth: %.3f\nspectral gap: %.4f\n",
		prof.ExpansionAt3, prof.Resilience, prof.Distortion, prof.HierarchyDepth, prof.SpectralGap)
	if g.NumNodes() <= 2000 {
		fmt.Fprintf(w, "hop diameter: %d\n", g.HopDiameter())
	}
	if ccdf {
		fmt.Fprintln(w, "degree CCDF (k  P[D>=k]):")
		for _, pt := range stats.DegreeCCDF(g.Degrees()) {
			fmt.Fprintf(w, "  %4d  %.6f\n", pt.Value, pt.Frac)
		}
	}
	return nil
}

// runMetricSet evaluates the selected metrics as one fused schedule and
// prints them in selection order. With a traffic selection, the demand
// model's demands over the topology's top-degree sites are attached so
// traffic-capable metrics evaluate.
func runMetricSet(w io.Writer, g *graph.Graph, name string, set []metricreg.Selection, tsel *trafficreg.Selection, cfg runConfig) error {
	demandCount, siteCount := 0, 0
	src := metricreg.NewSource(g, nil)
	if tsel != nil {
		eval, demands, sites, err := trafficreg.PrepareGraphTraffic(
			context.Background(), g, *tsel, cfg.sites, cfg.capacity, cfg.seed)
		if err != nil {
			return err
		}
		demandCount, siteCount = len(demands), sites
		src = metricreg.NewSource(eval, nil)
		src.SetTraffic(demands)
	}
	vals, err := metricreg.Evaluate(context.Background(), src, set,
		metricreg.Options{Seed: cfg.seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "topology: %s\n", name)
	fmt.Fprintf(w, "nodes: %d\nedges: %d\n", g.NumNodes(), g.NumEdges())
	if tsel != nil {
		fmt.Fprintf(w, "traffic: %s (%d demands over %d sites)\n",
			trafficreg.Canonical(tsel.Name), demandCount, siteCount)
	}
	for _, sel := range set {
		v := vals[sel.Name]
		fmt.Fprintf(w, "%s: %.6f", sel.Name, v.Scalar)
		if len(v.Series) > 0 {
			fmt.Fprintf(w, "  series=")
			for i, s := range v.Series {
				if i > 0 {
					fmt.Fprintf(w, ",")
				}
				fmt.Fprintf(w, "%.6f", s)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
