// Command topostats computes the full metric suite on a topology file
// (JSON produced by topogen, or a plain adjacency list).
//
// Usage:
//
//	topogen -model fkp -n 2000 | topostats
//	topostats -in topo.json
//	topostats -in edges.txt -adj
//	topostats -in topo.json -ccdf        # also print the degree CCDF
//
// Malformed input (corrupt JSON, bad adjacency lines, an empty
// topology) exits non-zero with a diagnostic on stderr and writes no
// partial statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stats"
)

func main() {
	var (
		in   = flag.String("in", "-", "input file ('-' = stdin)")
		adj  = flag.Bool("adj", false, "input is an adjacency list, not JSON")
		ccdf = flag.Bool("ccdf", false, "print the degree CCDF")
		seed = flag.Int64("seed", 1, "seed for sampled metrics")
	)
	flag.Parse()

	if err := run(*in, *adj, *ccdf, *seed, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "topostats: %v\n", err)
		os.Exit(1)
	}
}

// run reads, validates, and reports on one topology. It writes nothing
// to w until the input has parsed and validated, so a failure never
// leaves partial output behind.
func run(in string, adj, ccdf bool, seed int64, stdin io.Reader, w io.Writer) error {
	r := stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var g *graph.Graph
	var name string
	var err error
	if adj {
		g, err = export.ReadAdjacency(r)
		name = in
	} else {
		g, name, err = export.ReadJSON(r)
	}
	if err != nil {
		return err
	}
	if g.NumNodes() == 0 {
		return fmt.Errorf("input %q holds an empty topology (no nodes)", in)
	}

	fmt.Fprintf(w, "topology: %s\n", name)
	fmt.Fprintf(w, "nodes: %d\nedges: %d\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(w, "connected: %v\ntree: %v\nforest: %v\n", g.IsConnected(), g.IsTree(), g.IsForest())
	ds := stats.AnalyzeDegrees(g)
	fmt.Fprintf(w, "mean degree: %.3f\nmax degree: %d (%.4f of n-1)\n",
		ds.MeanDegree, ds.MaxDegree, ds.TopDegreeFrac)
	fmt.Fprintf(w, "degree tail: %s (power-law alpha=%.2f xmin=%d KS=%.3f; exp lambda=%.3f KS=%.3f; llr=%.2f)\n",
		ds.Classification.Kind,
		ds.Classification.PowerLaw.Alpha, ds.Classification.PowerLaw.XMin, ds.Classification.PowerLaw.KS,
		ds.Classification.Exponential.Lambda, ds.Classification.Exponential.KS,
		ds.Classification.LogLikRatio)
	fmt.Fprintf(w, "classification: %s\n", core.Classify(g))
	fmt.Fprintf(w, "clustering: %.4f\nassortativity: %.4f\n",
		stats.ClusteringCoefficient(g), stats.DegreeAssortativity(g))
	prof := metrics.ComputeProfile(g, seed)
	fmt.Fprintf(w, "expansion@3: %.4f\nresilience: %.4f\ndistortion: %.3f\nhierarchy depth: %.3f\nspectral gap: %.4f\n",
		prof.ExpansionAt3, prof.Resilience, prof.Distortion, prof.HierarchyDepth, prof.SpectralGap)
	if g.NumNodes() <= 2000 {
		fmt.Fprintf(w, "hop diameter: %d\n", g.HopDiameter())
	}
	if ccdf {
		fmt.Fprintln(w, "degree CCDF (k  P[D>=k]):")
		for _, pt := range stats.DegreeCCDF(g.Degrees()) {
			fmt.Fprintf(w, "  %4d  %.6f\n", pt.Value, pt.Frac)
		}
	}
	return nil
}
