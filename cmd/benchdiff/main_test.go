package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func failures(lines []diffLine) []string {
	var out []string
	for _, l := range lines {
		if l.fail {
			out = append(out, l.text)
		}
	}
	return out
}

func TestCompareGates(t *testing.T) {
	baseline := map[string]benchResult{
		"BenchmarkFast":  {Name: "BenchmarkFast", NsPerOp: 1000, AllocsOp: fp(0)},
		"BenchmarkSlow":  {Name: "BenchmarkSlow", NsPerOp: 1000},
		"BenchmarkGone":  {Name: "BenchmarkGone", NsPerOp: 500},
		"BenchmarkAlloc": {Name: "BenchmarkAlloc", NsPerOp: 1000, AllocsOp: fp(3)},
	}
	fresh := map[string]benchResult{
		"BenchmarkFast":  {Name: "BenchmarkFast", NsPerOp: 1100, AllocsOp: fp(0)}, // +10%: ok
		"BenchmarkSlow":  {Name: "BenchmarkSlow", NsPerOp: 1300},                  // +30%: fail at 25%
		"BenchmarkAlloc": {Name: "BenchmarkAlloc", NsPerOp: 900, AllocsOp: fp(5)}, // alloc growth, not 0-gated
		"BenchmarkNew":   {Name: "BenchmarkNew", NsPerOp: 10},
	}
	fails := failures(compare(baseline, fresh, 0.25, false))
	if len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkSlow") {
		t.Fatalf("want exactly the ns/op regression, got %q", fails)
	}

	// The allocation-free gate is exact: one alloc fails even when faster.
	fresh["BenchmarkFast"] = benchResult{Name: "BenchmarkFast", NsPerOp: 500, AllocsOp: fp(1)}
	fails = failures(compare(baseline, fresh, 0.25, false))
	if len(fails) != 2 {
		t.Fatalf("want alloc + ns regressions, got %q", fails)
	}
	found := false
	for _, f := range fails {
		if strings.Contains(f, "BenchmarkFast") && strings.Contains(f, "allocation-free") {
			found = true
		}
	}
	if !found {
		t.Fatalf("allocation-free gate did not fire: %q", fails)
	}

	// Missing benchmarks warn by default, fail under -require-all.
	if fails := failures(compare(baseline, fresh, 10, false)); len(fails) != 1 {
		t.Fatalf("missing bench failed without -require-all: %q", fails)
	}
	fails = failures(compare(baseline, fresh, 10, true))
	hasMissing := false
	for _, f := range fails {
		if strings.Contains(f, "BenchmarkGone") {
			hasMissing = true
		}
	}
	if !hasMissing {
		t.Fatalf("-require-all did not gate the missing bench: %q", fails)
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	baseline := map[string]benchResult{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 1000}}
	at := map[string]benchResult{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 1250}}
	if fails := failures(compare(baseline, at, 0.25, false)); len(fails) != 0 {
		t.Fatalf("exactly-at-limit failed: %q", fails)
	}
	over := map[string]benchResult{"BenchmarkX": {Name: "BenchmarkX", NsPerOp: 1251}}
	if fails := failures(compare(baseline, over, 0.25, false)); len(fails) != 1 {
		t.Fatalf("over-limit passed: %q", fails)
	}
}

func TestParseBenchText(t *testing.T) {
	raw := `goos: linux
goarch: amd64
pkg: repro
BenchmarkBFSCSRPooled-8     	    1221	    983124 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem-8            	     100	     12345 ns/op
BenchmarkOdd not a bench line
PASS
ok  	repro	2.153s
`
	got, err := parseBenchText([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := got["BenchmarkBFSCSRPooled"]
	if !ok {
		t.Fatalf("pooled bench not parsed (suffix not stripped?): %v", got)
	}
	if r.NsPerOp != 983124 || r.AllocsOp == nil || *r.AllocsOp != 0 {
		t.Fatalf("parsed %+v", r)
	}
	if r2 := got["BenchmarkNoMem"]; r2.NsPerOp != 12345 || r2.AllocsOp != nil {
		t.Fatalf("parsed %+v", r2)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(got))
	}
}

func TestParseKeepsWorstOfCPUDuplicates(t *testing.T) {
	// A `go test -cpu 1,4` run emits one line per GOMAXPROCS value; both
	// normalize to the same name and the gate must keep the worst of the
	// set so a single-thread regression can't hide behind a parallel win.
	raw := `BenchmarkPar-1  10  2000 ns/op  0 B/op  0 allocs/op
BenchmarkPar-4  40   500 ns/op  64 B/op  2 allocs/op
`
	got, err := parseBenchText([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d entries, want 1 merged: %v", len(got), got)
	}
	r := got["BenchmarkPar"]
	if r.NsPerOp != 2000 || r.Iteration != 10 {
		t.Fatalf("kept ns/op %v (iters %d), want the slower leg 2000 (10)", r.NsPerOp, r.Iteration)
	}
	if r.AllocsOp == nil || *r.AllocsOp != 2 || r.BytesOp == nil || *r.BytesOp != 64 {
		t.Fatalf("kept allocs %v bytes %v, want max of legs (2, 64)", r.AllocsOp, r.BytesOp)
	}

	// Same merge on the JSON path, and nil alloc fields survive a merge
	// with a measured leg.
	out := map[string]benchResult{}
	keep(out, benchResult{Name: "BenchmarkJ-4", NsPerOp: 100, AllocsOp: fp(1)})
	keep(out, benchResult{Name: "BenchmarkJ-1", NsPerOp: 300})
	j := out["BenchmarkJ"]
	if j.NsPerOp != 300 || j.AllocsOp == nil || *j.AllocsOp != 1 {
		t.Fatalf("json merge kept %+v, want ns 300 allocs 1", j)
	}
}

func TestParseFileJSONAndText(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(jsonPath, []byte(`[
  {"name": "BenchmarkA-8", "iterations": 10, "ns_per_op": 100.5, "allocs_per_op": 0}
]`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, baseMeta, err := parseFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if baseMeta != nil {
		t.Fatalf("legacy array baseline produced a meta stamp: %+v", baseMeta)
	}
	if r, ok := base["BenchmarkA"]; !ok || r.NsPerOp != 100.5 || *r.AllocsOp != 0 {
		t.Fatalf("json parse: %+v", base)
	}

	txtPath := filepath.Join(dir, "fresh.txt")
	if err := os.WriteFile(txtPath, []byte("BenchmarkA-4  20  99 ns/op  0 B/op  0 allocs/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, freshMeta, err := parseFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if freshMeta != nil {
		t.Fatalf("raw text produced a meta stamp: %+v", freshMeta)
	}
	if fails := failures(compare(base, fresh, 0.25, true)); len(fails) != 0 {
		t.Fatalf("cross-format compare failed: %q", fails)
	}
}

func TestParseFileObjectFormWithMeta(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := os.WriteFile(path, []byte(`{
  "meta": {"commit": "abc123", "go_version": "go1.24.0", "gomaxprocs": 4, "goos": "linux", "goarch": "amd64", "date": "2026-08-07"},
  "benchmarks": [
    {"name": "BenchmarkA-4", "iterations": 10, "ns_per_op": 100, "allocs_per_op": 0}
  ]
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, meta, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta == nil || meta.Commit != "abc123" || meta.GoVersion != "go1.24.0" || meta.GoMaxProcs != 4 {
		t.Fatalf("meta = %+v", meta)
	}
	if r, ok := got["BenchmarkA"]; !ok || r.NsPerOp != 100 {
		t.Fatalf("benchmarks = %+v", got)
	}
}

func TestMachineMismatch(t *testing.T) {
	a := &benchMeta{GoVersion: "go1.24.0", GoMaxProcs: 4, GOOS: "linux", GOARCH: "amd64"}
	same := &benchMeta{GoVersion: "go1.24.0", GoMaxProcs: 4, GOOS: "linux", GOARCH: "amd64"}
	if why := machineMismatch(a, same); why != "" {
		t.Fatalf("matching stamps flagged: %q", why)
	}
	if why := machineMismatch(nil, same); why != "" {
		t.Fatalf("nil baseline meta flagged: %q", why)
	}
	diffGo := &benchMeta{GoVersion: "go1.23.1", GoMaxProcs: 4, GOOS: "linux", GOARCH: "amd64"}
	if why := machineMismatch(a, diffGo); !strings.Contains(why, "go version") {
		t.Fatalf("go version mismatch not flagged: %q", why)
	}
	diffProcs := &benchMeta{GoVersion: "go1.24.0", GoMaxProcs: 16, GOOS: "linux", GOARCH: "amd64"}
	if why := machineMismatch(a, diffProcs); !strings.Contains(why, "GOMAXPROCS") {
		t.Fatalf("GOMAXPROCS mismatch not flagged: %q", why)
	}
	// Empty fields are treated as unknown, not as a mismatch.
	sparse := &benchMeta{GoMaxProcs: 4}
	if why := machineMismatch(a, sparse); why != "" {
		t.Fatalf("unknown fields flagged: %q", why)
	}
}

func TestGeomeanLine(t *testing.T) {
	baseline := map[string]benchResult{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 100},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 400},
		"BenchmarkC": {Name: "BenchmarkC", NsPerOp: 50}, // not in fresh: excluded
	}
	fresh := map[string]benchResult{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 200},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 800},
	}
	line := geomeanLine(baseline, fresh)
	// geomean(100,400)=200, geomean(200,800)=400: exactly +100%.
	if !strings.Contains(line, "200 old -> 400 new") || !strings.Contains(line, "+100.0%") ||
		!strings.Contains(line, "2 common") {
		t.Fatalf("geomean line = %q", line)
	}
	if line := geomeanLine(baseline, map[string]benchResult{}); line != "" {
		t.Fatalf("no-overlap geomean = %q", line)
	}
}
