// Command benchdiff gates benchmark regressions against a committed
// baseline. It compares a fresh benchmark run (either raw `go test
// -bench` text output or a scripts/bench.sh JSON file) with a baseline
// JSON file and fails when:
//
//   - a kernel the baseline records as allocation-free (allocs/op == 0)
//     now allocates — gated exactly, any alloc is a regression;
//   - a benchmark's ns/op exceeds baseline * (1 + tolerance).
//
// Improvements and new benchmarks never fail. Benchmarks present in the
// baseline but missing from the fresh run only warn (the per-commit CI
// run skips the scaling tier that the recorded baseline includes) unless
// -require-all is set.
//
// Usage:
//
//	benchdiff -baseline BENCH_20260807.json -fresh out.txt [-tolerance 0.25] [-require-all]
//
// Exit status 1 on any regression, 0 otherwise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark measurement, matching the field names
// scripts/bench.sh records.
type benchResult struct {
	Name      string   `json:"name"`
	NsPerOp   float64  `json:"ns_per_op"`
	BytesOp   *float64 `json:"bytes_per_op"`
	AllocsOp  *float64 `json:"allocs_per_op"`
	Iteration int64    `json:"iterations"`
}

// parseFile loads benchmark results from either a bench.sh JSON file or
// raw `go test -bench` text output, keyed by benchmark name (with the
// -N GOMAXPROCS suffix stripped so runs from different machines align).
func parseFile(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var list []benchResult
		if err := json.Unmarshal(data, &list); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out := make(map[string]benchResult, len(list))
		for _, r := range list {
			keep(out, r)
		}
		return out, nil
	}
	return parseBenchText(data)
}

// keep records r under its normalized name. A `go test -cpu 1,4` run
// produces one line per GOMAXPROCS value that normalize to the same
// name; the gate keeps the WORST measurement of the set (max ns/op, max
// allocations), so a single-thread regression cannot hide behind a
// faster parallel leg and an allocation picked up at any width still
// trips the exact allocs gate.
func keep(out map[string]benchResult, r benchResult) {
	name := normalizeName(r.Name)
	r.Name = name
	prev, ok := out[name]
	if !ok {
		out[name] = r
		return
	}
	if r.NsPerOp > prev.NsPerOp {
		prev.NsPerOp = r.NsPerOp
		prev.Iteration = r.Iteration
	}
	prev.BytesOp = maxPtr(prev.BytesOp, r.BytesOp)
	prev.AllocsOp = maxPtr(prev.AllocsOp, r.AllocsOp)
	out[name] = prev
}

func maxPtr(a, b *float64) *float64 {
	if a == nil {
		return b
	}
	if b != nil && *b > *a {
		return b
	}
	return a
}

// parseBenchText parses raw `go test -bench -benchmem` output lines of
// the form:
//
//	BenchmarkX-8   100   12345 ns/op   64 B/op   2 allocs/op
func parseBenchText(data []byte) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := benchResult{Name: fields[0]}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r.Iteration = iters
		ok := false
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
				ok = true
			case "B/op":
				b := v
				r.BytesOp = &b
			case "allocs/op":
				a := v
				r.AllocsOp = &a
			}
		}
		if ok {
			keep(out, r)
		}
	}
	return out, sc.Err()
}

// normalizeName strips the trailing -N parallelism suffix go test
// appends to benchmark names.
func normalizeName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// diffLine is one comparison verdict.
type diffLine struct {
	text string
	fail bool
}

// compare applies the gate to every baseline benchmark. tolerance is
// the allowed fractional ns/op growth (0.25 = +25%).
func compare(baseline, fresh map[string]benchResult, tolerance float64, requireAll bool) []diffLine {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []diffLine
	for _, name := range names {
		base := baseline[name]
		got, ok := fresh[name]
		if !ok {
			out = append(out, diffLine{
				text: fmt.Sprintf("MISSING %s (in baseline, not in fresh run)", name),
				fail: requireAll,
			})
			continue
		}
		if base.AllocsOp != nil && *base.AllocsOp == 0 && got.AllocsOp != nil && *got.AllocsOp > 0 {
			out = append(out, diffLine{
				text: fmt.Sprintf("FAIL    %s: allocs/op %g, baseline 0 (allocation-free kernel regressed)", name, *got.AllocsOp),
				fail: true,
			})
			continue
		}
		limit := base.NsPerOp * (1 + tolerance)
		switch {
		case got.NsPerOp > limit:
			out = append(out, diffLine{
				text: fmt.Sprintf("FAIL    %s: %.0f ns/op exceeds baseline %.0f +%d%% (limit %.0f)",
					name, got.NsPerOp, base.NsPerOp, int(tolerance*100), limit),
				fail: true,
			})
		default:
			out = append(out, diffLine{
				text: fmt.Sprintf("ok      %s: %.0f ns/op (baseline %.0f)", name, got.NsPerOp, base.NsPerOp),
			})
		}
	}
	for name := range fresh {
		if _, ok := baseline[name]; !ok {
			out = append(out, diffLine{text: fmt.Sprintf("NEW     %s (not in baseline)", name)})
		}
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline JSON file (scripts/bench.sh output)")
	freshPath := flag.String("fresh", "", "fresh results: bench.sh JSON or raw `go test -bench` output")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op growth before failing")
	requireAll := flag.Bool("require-all", false, "fail when a baseline benchmark is missing from the fresh run")
	quiet := flag.Bool("quiet", false, "print only failures and warnings")
	flag.Parse()
	if *baselinePath == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -fresh are required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := parseFile(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	lines := compare(baseline, fresh, *tolerance, *requireAll)
	failed := 0
	for _, l := range lines {
		if l.fail {
			failed++
		}
		if l.fail || !*quiet || !strings.HasPrefix(l.text, "ok") {
			fmt.Println(l.text)
		}
	}
	if failed > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond tolerance %.0f%%\n", failed, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmark(s) within tolerance %.0f%%\n", len(lines), *tolerance*100)
}
