// Command benchdiff gates benchmark regressions against a committed
// baseline. It compares a fresh benchmark run (either raw `go test
// -bench` text output or a scripts/bench.sh JSON file) with a baseline
// JSON file and fails when:
//
//   - a kernel the baseline records as allocation-free (allocs/op == 0)
//     now allocates — gated exactly, any alloc is a regression;
//   - a benchmark's ns/op exceeds baseline * (1 + tolerance).
//
// Improvements and new benchmarks never fail. Benchmarks present in the
// baseline but missing from the fresh run only warn (the per-commit CI
// run skips the scaling tier that the recorded baseline includes) unless
// -require-all is set.
//
// Baselines recorded by scripts/bench.sh carry a meta stamp (commit, go
// version, GOMAXPROCS, platform). When it disagrees with the fresh
// side's environment the comparison is refused (exit 2) rather than
// silently gated on numbers from a different machine; pass
// -allow-cross-machine to compare anyway with a warning. A one-line
// geomean ns/op summary over the common benchmarks closes every run.
//
// Usage:
//
//	benchdiff -baseline BENCH_20260807.json -fresh out.txt [-tolerance 0.25] [-require-all]
//
// Exit status 1 on any regression, 0 otherwise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark measurement, matching the field names
// scripts/bench.sh records.
type benchResult struct {
	Name      string   `json:"name"`
	NsPerOp   float64  `json:"ns_per_op"`
	BytesOp   *float64 `json:"bytes_per_op"`
	AllocsOp  *float64 `json:"allocs_per_op"`
	Iteration int64    `json:"iterations"`
}

// benchMeta is the recording-environment stamp scripts/bench.sh embeds
// in its JSON output. Comparing ns/op across different machines (or go
// toolchains, or GOMAXPROCS settings) is meaningless, so benchdiff uses
// it to refuse such comparisons instead of silently gating on them.
type benchMeta struct {
	Commit     string `json:"commit"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Date       string `json:"date"`
}

// benchFile is the object form of a bench.sh recording.
type benchFile struct {
	Meta       *benchMeta    `json:"meta"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// parseFile loads benchmark results from a bench.sh JSON file (the
// current {"meta": ..., "benchmarks": [...]} object form or the legacy
// bare array) or raw `go test -bench` text output, keyed by benchmark
// name (with the -N GOMAXPROCS suffix stripped so -cpu legs align). The
// meta stamp is nil for the legacy and raw-text forms.
func parseFile(path string) (map[string]benchResult, *benchMeta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && (trimmed[0] == '[' || trimmed[0] == '{') {
		var list []benchResult
		var meta *benchMeta
		if trimmed[0] == '[' {
			if err := json.Unmarshal(data, &list); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
		} else {
			var f benchFile
			if err := json.Unmarshal(data, &f); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			list, meta = f.Benchmarks, f.Meta
		}
		out := make(map[string]benchResult, len(list))
		for _, r := range list {
			keep(out, r)
		}
		return out, meta, nil
	}
	out, err := parseBenchText(data)
	return out, nil, err
}

// keep records r under its normalized name. A `go test -cpu 1,4` run
// produces one line per GOMAXPROCS value that normalize to the same
// name; the gate keeps the WORST measurement of the set (max ns/op, max
// allocations), so a single-thread regression cannot hide behind a
// faster parallel leg and an allocation picked up at any width still
// trips the exact allocs gate.
func keep(out map[string]benchResult, r benchResult) {
	name := normalizeName(r.Name)
	r.Name = name
	prev, ok := out[name]
	if !ok {
		out[name] = r
		return
	}
	if r.NsPerOp > prev.NsPerOp {
		prev.NsPerOp = r.NsPerOp
		prev.Iteration = r.Iteration
	}
	prev.BytesOp = maxPtr(prev.BytesOp, r.BytesOp)
	prev.AllocsOp = maxPtr(prev.AllocsOp, r.AllocsOp)
	out[name] = prev
}

func maxPtr(a, b *float64) *float64 {
	if a == nil {
		return b
	}
	if b != nil && *b > *a {
		return b
	}
	return a
}

// parseBenchText parses raw `go test -bench -benchmem` output lines of
// the form:
//
//	BenchmarkX-8   100   12345 ns/op   64 B/op   2 allocs/op
func parseBenchText(data []byte) (map[string]benchResult, error) {
	out := map[string]benchResult{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := benchResult{Name: fields[0]}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r.Iteration = iters
		ok := false
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
				ok = true
			case "B/op":
				b := v
				r.BytesOp = &b
			case "allocs/op":
				a := v
				r.AllocsOp = &a
			}
		}
		if ok {
			keep(out, r)
		}
	}
	return out, sc.Err()
}

// normalizeName strips the trailing -N parallelism suffix go test
// appends to benchmark names.
func normalizeName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// diffLine is one comparison verdict.
type diffLine struct {
	text string
	fail bool
}

// compare applies the gate to every baseline benchmark. tolerance is
// the allowed fractional ns/op growth (0.25 = +25%).
func compare(baseline, fresh map[string]benchResult, tolerance float64, requireAll bool) []diffLine {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []diffLine
	for _, name := range names {
		base := baseline[name]
		got, ok := fresh[name]
		if !ok {
			out = append(out, diffLine{
				text: fmt.Sprintf("MISSING %s (in baseline, not in fresh run)", name),
				fail: requireAll,
			})
			continue
		}
		if base.AllocsOp != nil && *base.AllocsOp == 0 && got.AllocsOp != nil && *got.AllocsOp > 0 {
			out = append(out, diffLine{
				text: fmt.Sprintf("FAIL    %s: allocs/op %g, baseline 0 (allocation-free kernel regressed)", name, *got.AllocsOp),
				fail: true,
			})
			continue
		}
		limit := base.NsPerOp * (1 + tolerance)
		switch {
		case got.NsPerOp > limit:
			out = append(out, diffLine{
				text: fmt.Sprintf("FAIL    %s: %.0f ns/op exceeds baseline %.0f +%d%% (limit %.0f)",
					name, got.NsPerOp, base.NsPerOp, int(tolerance*100), limit),
				fail: true,
			})
		default:
			out = append(out, diffLine{
				text: fmt.Sprintf("ok      %s: %.0f ns/op (baseline %.0f)", name, got.NsPerOp, base.NsPerOp),
			})
		}
	}
	for name := range fresh {
		if _, ok := baseline[name]; !ok {
			out = append(out, diffLine{text: fmt.Sprintf("NEW     %s (not in baseline)", name)})
		}
	}
	return out
}

// machineMismatch reports why comparing against the baseline would be a
// cross-machine/toolchain comparison, or "" when the environments match
// (or cannot be checked). A nil freshMeta means the fresh side is a raw
// `go test` run from THIS process's environment, so the runtime's own
// go version and GOMAXPROCS stand in for it.
func machineMismatch(base, fresh *benchMeta) string {
	if base == nil {
		return "" // legacy baseline without a meta stamp: nothing to check
	}
	fv, fp := runtime.Version(), runtime.GOMAXPROCS(0)
	fos, farch := runtime.GOOS, runtime.GOARCH
	if fresh != nil {
		fv, fp, fos, farch = fresh.GoVersion, fresh.GoMaxProcs, fresh.GOOS, fresh.GOARCH
	}
	var why []string
	if base.GoVersion != "" && fv != "" && base.GoVersion != fv {
		why = append(why, fmt.Sprintf("go version %s vs baseline %s", fv, base.GoVersion))
	}
	if base.GoMaxProcs > 0 && fp > 0 && base.GoMaxProcs != fp {
		why = append(why, fmt.Sprintf("GOMAXPROCS %d vs baseline %d", fp, base.GoMaxProcs))
	}
	if base.GOOS != "" && fos != "" && base.GOOS != fos {
		why = append(why, fmt.Sprintf("GOOS %s vs baseline %s", fos, base.GOOS))
	}
	if base.GOARCH != "" && farch != "" && base.GOARCH != farch {
		why = append(why, fmt.Sprintf("GOARCH %s vs baseline %s", farch, base.GOARCH))
	}
	return strings.Join(why, ", ")
}

// geomeanLine summarizes the run in one line: the geometric mean ns/op
// of the benchmarks common to both sides, old vs new, with the ratio.
// Returns "" when no benchmark overlaps.
func geomeanLine(baseline, fresh map[string]benchResult) string {
	var logOld, logNew float64
	n := 0
	for name, base := range baseline {
		got, ok := fresh[name]
		if !ok || base.NsPerOp <= 0 || got.NsPerOp <= 0 {
			continue
		}
		logOld += math.Log(base.NsPerOp)
		logNew += math.Log(got.NsPerOp)
		n++
	}
	if n == 0 {
		return ""
	}
	gOld := math.Exp(logOld / float64(n))
	gNew := math.Exp(logNew / float64(n))
	return fmt.Sprintf("geomean ns/op: %.0f old -> %.0f new (%+.1f%%) over %d common benchmark(s)",
		gOld, gNew, (gNew/gOld-1)*100, n)
}

func main() {
	baselinePath := flag.String("baseline", "", "baseline JSON file (scripts/bench.sh output)")
	freshPath := flag.String("fresh", "", "fresh results: bench.sh JSON or raw `go test -bench` output")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op growth before failing")
	requireAll := flag.Bool("require-all", false, "fail when a baseline benchmark is missing from the fresh run")
	quiet := flag.Bool("quiet", false, "print only failures and warnings")
	allowCross := flag.Bool("allow-cross-machine", false,
		"compare despite a go version/GOMAXPROCS/platform mismatch with the baseline's meta stamp")
	flag.Parse()
	if *baselinePath == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -fresh are required")
		flag.Usage()
		os.Exit(2)
	}
	baseline, baseMeta, err := parseFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, freshMeta, err := parseFile(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if why := machineMismatch(baseMeta, freshMeta); why != "" {
		if !*allowCross {
			fmt.Fprintf(os.Stderr, "benchdiff: refusing cross-machine comparison (%s); re-record the baseline with scripts/bench.sh or pass -allow-cross-machine\n", why)
			os.Exit(2)
		}
		fmt.Printf("WARN    cross-machine comparison (%s); ns/op deltas are not meaningful\n", why)
	}
	lines := compare(baseline, fresh, *tolerance, *requireAll)
	failed := 0
	for _, l := range lines {
		if l.fail {
			failed++
		}
		if l.fail || !*quiet || !strings.HasPrefix(l.text, "ok") {
			fmt.Println(l.text)
		}
	}
	if g := geomeanLine(baseline, fresh); g != "" {
		fmt.Println(g)
	}
	if failed > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond tolerance %.0f%%\n", failed, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmark(s) within tolerance %.0f%%\n", len(lines), *tolerance*100)
}
