// Command experiments runs the paper-reproduction experiments E1–E9 from
// DESIGN.md and prints their tables. EXPERIMENTS.md records a
// representative full-scale run.
//
// Usage:
//
//	experiments                  # run everything at full scale
//	experiments -only E2,E3      # a subset
//	experiments -scale 0.2       # smaller/faster
//	experiments -seed 7 -reps 3
//	experiments -workers 1       # one replication at a time (tables are identical for any -workers)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		only    = flag.String("only", "", "comma-separated experiment IDs (e.g. E1,E7); empty = all")
		seed    = flag.Int64("seed", 42, "master seed")
		scale   = flag.Float64("scale", 1.0, "instance scale in (0,1]")
		reps    = flag.Int("reps", 0, "Monte Carlo replications (0 = per-experiment default)")
		workers = flag.Int("workers", 0, "worker goroutines for replication fan-out (0 = all cores)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	opts := experiments.Options{Seed: *seed, Scale: *scale, Reps: *reps, Workers: *workers}
	failed := false
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		tbl, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			failed = true
			continue
		}
		fmt.Println(tbl.Format())
		fmt.Printf("(%s completed in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
