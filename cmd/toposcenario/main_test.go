package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/errs"
)

func TestRunSmokeSpecTable(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.txt")
	if err := run(context.Background(), "testdata/smoke.json", 4, "table", out, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"designed-vs-blind", "descriptive-baseline", "waxman-throughput", "localized-disaster", "lcc@fracs", "hotspot-traffic", "tmodel", "zipf-hotspot"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunSmokeSpecJSONAndWorkerDeterminism(t *testing.T) {
	read := func(workers int, format string) string {
		out := filepath.Join(t.TempDir(), "out")
		if err := run(context.Background(), "testdata/smoke.json", workers, format, out, 0); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := read(1, "table"), read(8, "table"); a != b {
		t.Fatalf("table output differs between -workers 1 and 8:\n--- 1 ---\n%s\n--- 8 ---\n%s", a, b)
	}
	j := read(4, "json")
	if !strings.Contains(j, `"scenario"`) || !strings.Contains(j, `"reps"`) {
		t.Fatalf("json output malformed:\n%s", j)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), bad, 0, "table", "-", 0); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("corrupt spec gave %v, want ErrBadParam", err)
	}
	if err := run(context.Background(), filepath.Join(dir, "missing.json"), 0, "table", "-", 0); err == nil {
		t.Fatal("missing spec file accepted")
	}
	if err := run(context.Background(), "", 0, "table", "-", 0); err == nil {
		t.Fatal("empty -spec accepted")
	}
	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"generate": {"model": "nope"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), unknown, 0, "table", "-", 0); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown model gave %v, want ErrBadParam", err)
	}
}

func TestListShowsModelsAttacksAndMetrics(t *testing.T) {
	var b strings.Builder
	listModels(&b)
	out := b.String()
	for _, want := range []string{
		"models:", "traffic:", "attacks:", "metrics:",
		"fkp", "geographic", "random-edge", "lcc", "expansion",
		"gravity", "zipf-hotspot", "single-epicenter", "throughput", "delivered-frac",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunHonorsCanceledContext(t *testing.T) {
	big := filepath.Join(t.TempDir(), "big.json")
	spec := `{"generate": {"model": "fkp", "params": {"n": 20000}}, "reps": 4}`
	if err := os.WriteFile(big, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := run(ctx, big, 4, "table", "-", 0)
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("canceled run gave %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
