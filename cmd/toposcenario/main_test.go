package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/service"
)

func runLocal(ctx context.Context, spec string, workers int, format, out string, timeout time.Duration) error {
	return run(ctx, runConfig{spec: spec, workers: workers, format: format, out: out, timeout: timeout})
}

func TestRunSmokeSpecTable(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.txt")
	if err := runLocal(context.Background(), "testdata/smoke.json", 4, "table", out, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"designed-vs-blind", "descriptive-baseline", "waxman-throughput", "localized-disaster", "lcc@fracs", "hotspot-traffic", "tmodel", "zipf-hotspot"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "PARTIAL") {
		t.Error("complete run carries a partial marker")
	}
}

func TestRunSmokeSpecJSONAndWorkerDeterminism(t *testing.T) {
	read := func(workers int, format string) string {
		out := filepath.Join(t.TempDir(), "out")
		if err := runLocal(context.Background(), "testdata/smoke.json", workers, format, out, 0); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := read(1, "table"), read(8, "table"); a != b {
		t.Fatalf("table output differs between -workers 1 and 8:\n--- 1 ---\n%s\n--- 8 ---\n%s", a, b)
	}
	j := read(4, "json")
	if !strings.Contains(j, `"scenario"`) || !strings.Contains(j, `"reps"`) {
		t.Fatalf("json output malformed:\n%s", j)
	}
	if strings.Contains(j, `"partial"`) {
		t.Fatalf("complete json output carries a partial wrapper:\n%s", j)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{ not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runLocal(context.Background(), bad, 0, "table", "-", 0); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("corrupt spec gave %v, want ErrBadParam", err)
	}
	if err := runLocal(context.Background(), filepath.Join(dir, "missing.json"), 0, "table", "-", 0); err == nil {
		t.Fatal("missing spec file accepted")
	}
	if err := runLocal(context.Background(), "", 0, "table", "-", 0); err == nil {
		t.Fatal("empty -spec accepted")
	}
	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"generate": {"model": "nope"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runLocal(context.Background(), unknown, 0, "table", "-", 0); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown model gave %v, want ErrBadParam", err)
	}
	if err := run(context.Background(), runConfig{statusz: true}); err == nil {
		t.Fatal("-statusz without -server accepted")
	}
}

func TestListShowsModelsAttacksAndMetrics(t *testing.T) {
	var b strings.Builder
	listModels(&b)
	out := b.String()
	for _, want := range []string{
		"models:", "traffic:", "attacks:", "metrics:",
		"fkp", "geographic", "random-edge", "lcc", "expansion",
		"gravity", "zipf-hotspot", "single-epicenter", "throughput", "delivered-frac",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

// TestRunHonorsCanceledContext pins the Ctrl-C satellite: a canceled
// run exits non-zero (ErrCanceled from run -> os.Exit(1) in main) and
// the JSON output carries the partial-results marker.
func TestRunHonorsCanceledContext(t *testing.T) {
	dir := t.TempDir()
	big := filepath.Join(dir, "big.json")
	spec := `{"generate": {"model": "fkp", "params": {"n": 20000}}, "reps": 4}`
	if err := os.WriteFile(big, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	out := filepath.Join(dir, "partial.json")
	err := runLocal(ctx, big, 4, "json", out, 0)
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("canceled run gave %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var wrapped struct {
		Partial bool            `json:"partial"`
		Error   string          `json:"error"`
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &wrapped); err != nil {
		t.Fatalf("partial output not JSON: %v\n%s", err, data)
	}
	if !wrapped.Partial || wrapped.Error == "" || wrapped.Results == nil {
		t.Fatalf("partial wrapper malformed: %s", data)
	}

	// Table output marks the cut the same way.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel2()
	}()
	tblOut := filepath.Join(dir, "partial.txt")
	if err := runLocal(ctx2, big, 4, "table", tblOut, 0); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("canceled table run gave %v, want ErrCanceled", err)
	}
	tbl, err := os.ReadFile(tblOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tbl), "# PARTIAL:") {
		t.Fatalf("table output missing the partial trailer:\n%s", tbl)
	}
}

// TestServerModeMatchesLocalRun is the acceptance criterion end to end:
// -server output for the smoke spec is byte-identical to the local run.
func TestServerModeMatchesLocalRun(t *testing.T) {
	srv := service.New(service.Config{})
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		hs.Close()
	})

	dir := t.TempDir()
	for _, format := range []string{"json", "table"} {
		local := filepath.Join(dir, "local."+format)
		remote := filepath.Join(dir, "remote."+format)
		if err := runLocal(context.Background(), "testdata/smoke.json", 4, format, local, 0); err != nil {
			t.Fatal(err)
		}
		err := run(context.Background(), runConfig{
			spec: "testdata/smoke.json", format: format, out: remote, server: hs.URL,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := os.ReadFile(local)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(remote)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s output differs between local and -server runs:\n--- local ---\n%s\n--- remote ---\n%s", format, a, b)
		}
	}

	// -statusz against the same daemon.
	zOut := filepath.Join(dir, "statusz.json")
	if err := run(context.Background(), runConfig{server: hs.URL, statusz: true, out: zOut}); err != nil {
		t.Fatal(err)
	}
	zData, err := os.ReadFile(zOut)
	if err != nil {
		t.Fatal(err)
	}
	var z service.Statusz
	if err := json.Unmarshal(zData, &z); err != nil {
		t.Fatalf("statusz output not JSON: %v\n%s", err, zData)
	}
	if z.Jobs.Done != 2 {
		t.Fatalf("statusz after two jobs: %+v", z.Jobs)
	}
}
