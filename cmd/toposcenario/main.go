// Command toposcenario runs declarative scenario specs end-to-end: each
// scenario names a registered generator plus optional measure, route,
// and attack stages, and the engine executes the whole batch on the CSR
// kernel with a shared worker pool — the repository's serve-many-
// requests entry point.
//
// Usage:
//
//	toposcenario -spec scenario.json
//	toposcenario -spec batch.json -workers 8 -format json
//	topogen-like pipelines: cat spec.json | toposcenario -spec -
//	toposcenario -list
//
// The spec file holds one scenario object, a JSON array of them, or
// {"scenarios": [...]}. A -timeout bounds the whole batch; Ctrl-C
// cancels it cleanly (the engine returns as soon as every in-flight
// stage observes the cancellation). Output is byte-identical for any
// -workers value.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/attackreg"
	"repro/internal/metricreg"
	"repro/internal/scenario"
	"repro/internal/trafficreg"
)

func main() {
	var (
		spec    = flag.String("spec", "", "scenario spec file ('-' = stdin; required)")
		workers = flag.Int("workers", 0, "worker pool bound (<= 0 = GOMAXPROCS); output is identical for any value")
		format  = flag.String("format", "table", "output format: table|json")
		out     = flag.String("o", "-", "output file ('-' = stdout)")
		timeout = flag.Duration("timeout", 0, "abort the batch after this long (0 = no limit)")
		list    = flag.Bool("list", false, "list registered models, traffic models, attacks, and metrics with their parameters and exit")
	)
	flag.Parse()

	if *list {
		listModels(os.Stdout)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *spec, *workers, *format, *out, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "toposcenario: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, spec string, workers int, format, out string, timeout time.Duration) error {
	if spec == "" {
		return fmt.Errorf("missing -spec (a file path, or '-' for stdin)")
	}
	var data []byte
	var err error
	if spec == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(spec)
	}
	if err != nil {
		return err
	}
	scs, err := scenario.ParseSpec(data)
	if err != nil {
		return err
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	results, err := scenario.NewEngine(nil).RunBatch(ctx, scs, scenario.Options{Workers: workers})
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "table":
		for i, r := range results {
			if i > 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprint(w, r.Format())
		}
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}

// listModels enumerates everything a scenario spec can name: generator
// models (generate.model), traffic demand models (traffic.model),
// attack strategies (attack.strategy), and registry metrics
// (measure.metrics).
func listModels(w io.Writer) {
	fmt.Fprintln(w, "models:")
	scenario.Default().FormatModels(w, "  ")
	fmt.Fprintln(w, "traffic:")
	trafficreg.Default().FormatModels(w, "  ")
	fmt.Fprintln(w, "attacks:")
	attackreg.Default().FormatAttacks(w, "  ")
	fmt.Fprintln(w, "metrics:")
	metricreg.Default().FormatMetrics(w, "  ")
}
