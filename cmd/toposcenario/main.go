// Command toposcenario runs declarative scenario specs end-to-end: each
// scenario names a registered generator plus optional measure, route,
// and attack stages, and the engine executes the whole batch on the CSR
// kernel with a shared worker pool — the repository's serve-many-
// requests entry point.
//
// Usage:
//
//	toposcenario -spec scenario.json
//	toposcenario -spec batch.json -workers 8 -format json
//	topogen-like pipelines: cat spec.json | toposcenario -spec -
//	toposcenario -server http://127.0.0.1:8080 -spec batch.json
//	toposcenario -server http://127.0.0.1:8080 -statusz
//	toposcenario -list
//
// The spec file holds one scenario object, a JSON array of them, or
// {"scenarios": [...]}. A -timeout bounds the whole batch; Ctrl-C
// cancels it cleanly (the engine returns as soon as every in-flight
// stage observes the cancellation) and exits non-zero with the partial
// results emitted: JSON output wraps them as {"partial": true, ...} and
// table output appends a "# PARTIAL:" trailer, so a cut-short run is
// never mistaken for a complete one. Output is byte-identical for any
// -workers value.
//
// With -server the spec is submitted to a toposcenariod daemon instead
// of running in-process: the job is polled to completion and the
// results printed in the same formats — byte-identical to a local run
// of the same spec. Ctrl-C cancels the remote job before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/attackreg"
	"repro/internal/errs"
	"repro/internal/metricreg"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/trafficreg"
)

type runConfig struct {
	spec    string
	workers int
	format  string
	out     string
	timeout time.Duration
	server  string
	statusz bool
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.spec, "spec", "", "scenario spec file ('-' = stdin; required)")
	flag.IntVar(&cfg.workers, "workers", 0, "worker pool bound (<= 0 = GOMAXPROCS); output is identical for any value")
	flag.StringVar(&cfg.format, "format", "table", "output format: table|json")
	flag.StringVar(&cfg.out, "o", "-", "output file ('-' = stdout)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the batch after this long (0 = no limit)")
	flag.StringVar(&cfg.server, "server", "", "run on a toposcenariod daemon at this base URL instead of in-process")
	flag.BoolVar(&cfg.statusz, "statusz", false, "with -server: print the daemon's statusz snapshot and exit")
	list := flag.Bool("list", false, "list registered models, traffic models, attacks, and metrics with their parameters and exit")
	flag.Parse()

	if *list {
		listModels(os.Stdout)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "toposcenario: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg runConfig) error {
	if cfg.statusz {
		if cfg.server == "" {
			return fmt.Errorf("-statusz needs -server")
		}
		return printStatusz(ctx, cfg)
	}
	if cfg.spec == "" {
		return fmt.Errorf("missing -spec (a file path, or '-' for stdin)")
	}
	var data []byte
	var err error
	if cfg.spec == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(cfg.spec)
	}
	if err != nil {
		return err
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	if cfg.server != "" {
		return runRemote(ctx, cfg, data)
	}

	scs, err := scenario.ParseSpec(data)
	if err != nil {
		return err
	}
	results, err := scenario.NewEngine(nil).RunBatch(ctx, scs, scenario.Options{Workers: cfg.workers})
	return emit(cfg, results, err)
}

// runRemote submits the raw spec bytes to a daemon, waits for the
// terminal state, and renders the results exactly like a local run. A
// canceled local context cancels the job server-side and the partial
// results come back with the non-zero exit.
func runRemote(ctx context.Context, cfg runConfig, spec []byte) error {
	c := service.NewClient(cfg.server, nil)
	st, err := c.SubmitSpec(ctx, spec)
	if err != nil {
		return err
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		if !errors.Is(err, errs.ErrCanceled) {
			return err
		}
		// The local context died: cancel server-side and fetch the
		// job's partial state with a fresh context.
		fctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if _, cerr := c.Cancel(fctx, st.ID); cerr != nil {
			return fmt.Errorf("%w (remote cancel failed: %v)", err, cerr)
		}
		if final, _ = c.Wait(fctx, st.ID); final == nil {
			return err
		}
		return emit(cfg, final.Results, err)
	}
	switch final.State {
	case service.StateDone:
		return emit(cfg, final.Results, nil)
	case service.StateCanceled:
		return emit(cfg, final.Results, fmt.Errorf("remote job %s: %s: %w", final.ID, final.Error, errs.ErrCanceled))
	default:
		return emit(cfg, final.Results, fmt.Errorf("remote job %s failed: %s", final.ID, final.Error))
	}
}

func printStatusz(ctx context.Context, cfg runConfig) error {
	z, err := service.NewClient(cfg.server, nil).Statusz(ctx)
	if err != nil {
		return err
	}
	w, closeOut, err := openOut(cfg.out)
	if err != nil {
		return err
	}
	defer closeOut()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(z)
}

// emit renders results and returns runErr (so a cut-short batch still
// prints what completed before the non-zero exit). A complete run's
// output bytes are exactly the formatted results — the partial wrapper
// and trailer appear only alongside an error.
func emit(cfg runConfig, results []*scenario.Result, runErr error) error {
	if results == nil {
		return runErr
	}
	w, closeOut, err := openOut(cfg.out)
	if err != nil {
		return errors.Join(runErr, err)
	}
	defer closeOut()
	switch cfg.format {
	case "table":
		for i, r := range results {
			if i > 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprint(w, r.Format())
		}
		if runErr != nil {
			fmt.Fprintf(w, "\n# PARTIAL: %v\n", runErr)
		}
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if runErr != nil {
			wrapped := struct {
				Partial bool               `json:"partial"`
				Error   string             `json:"error"`
				Results []*scenario.Result `json:"results"`
			}{true, runErr.Error(), results}
			if err := enc.Encode(wrapped); err != nil {
				return errors.Join(runErr, err)
			}
			return runErr
		}
		if err := enc.Encode(results); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", cfg.format)
	}
	return runErr
}

func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// listModels enumerates everything a scenario spec can name: generator
// models (generate.model), traffic demand models (traffic.model),
// attack strategies (attack.strategy), and registry metrics
// (measure.metrics).
func listModels(w io.Writer) {
	fmt.Fprintln(w, "models:")
	scenario.Default().FormatModels(w, "  ")
	fmt.Fprintln(w, "traffic:")
	trafficreg.Default().FormatModels(w, "  ")
	fmt.Fprintln(w, "attacks:")
	attackreg.Default().FormatAttacks(w, "  ")
	fmt.Fprintln(w, "metrics:")
	metricreg.Default().FormatMetrics(w, "  ")
}
