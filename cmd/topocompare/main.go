// Command topocompare scores how structurally similar two topology files
// are — the paper's §5 validation workflow: compare a generated
// ("candidate") topology against a measured ("reference") one across the
// full metric suite.
//
// Usage:
//
//	topogen -model fkp -n 1000 -o ref.json
//	topogen -model ba -n 1000 -o cand.json
//	topocompare -ref ref.json -cand cand.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/export"
	"repro/internal/graph"
	"repro/internal/validate"
)

func main() {
	var (
		ref  = flag.String("ref", "", "reference topology (JSON)")
		cand = flag.String("cand", "", "candidate topology (JSON)")
		adj  = flag.Bool("adj", false, "inputs are adjacency lists, not JSON")
		seed = flag.Int64("seed", 1, "seed for sampled metrics")
	)
	flag.Parse()
	if *ref == "" || *cand == "" {
		fmt.Fprintln(os.Stderr, "topocompare: both -ref and -cand are required")
		os.Exit(2)
	}
	rg, err := load(*ref, *adj)
	if err != nil {
		fatal(err)
	}
	cg, err := load(*cand, *adj)
	if err != nil {
		fatal(err)
	}
	cmp := validate.Compare(rg, cg, *seed)
	fmt.Print(cmp.Format())
}

func load(path string, adj bool) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if adj {
		return export.ReadAdjacency(f)
	}
	g, _, err := export.ReadJSON(f)
	return g, err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "topocompare: %v\n", err)
	os.Exit(1)
}
