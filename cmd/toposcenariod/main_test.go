package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/service"
)

// syncBuffer lets the daemon goroutine and the test read/write the log
// concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitForAddr polls the log for the "listening on" line and extracts
// the bound address.
func waitForAddr(t *testing.T, log *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		sc := bufio.NewScanner(strings.NewReader(log.String()))
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			for i, f := range fields {
				if f == "on" && i+1 < len(fields) {
					return fields[i+1]
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never logged its address:\n%s", log.String())
	return ""
}

// TestDaemonServesJobsAndDrains starts the daemon on a random port,
// drives a job through the Go client, then cancels the run context and
// checks the graceful drain exits nil.
func TestDaemonServesJobsAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var log syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, &log, config{addr: "127.0.0.1:0", drainTimeout: 10 * time.Second})
	}()
	addr := waitForAddr(t, &log)

	c := service.NewClient("http://"+addr, nil)
	c.PollInterval = 5 * time.Millisecond
	st, err := c.Submit(ctx, []scenario.Scenario{{
		Generate: scenario.GenerateSpec{Model: "ba", Params: scenario.Params{"n": 60}},
		Measure:  &scenario.MeasureSpec{Degrees: true},
		Reps:     2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateDone || len(final.Results) != 1 || len(final.Results[0].Reps) != 2 {
		t.Fatalf("job finished as %+v", final)
	}
	if _, err := json.Marshal(final.Results); err != nil {
		t.Fatal(err)
	}
	z, err := c.Statusz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if z.Jobs.Done != 1 {
		t.Fatalf("statusz jobs %+v", z.Jobs)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v, want clean drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never exited after cancel")
	}
	if !strings.Contains(log.String(), "drained cleanly") {
		t.Fatalf("drain not logged:\n%s", log.String())
	}
}

// TestDaemonRejectsBadListenAddr pins the error path so a typo'd -addr
// exits instead of hanging.
func TestDaemonRejectsBadListenAddr(t *testing.T) {
	var log syncBuffer
	err := run(context.Background(), &log, config{addr: "999.999.999.999:1", drainTimeout: time.Second})
	if err == nil {
		t.Fatal("bogus listen address accepted")
	}
}
