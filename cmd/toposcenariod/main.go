// Command toposcenariod hosts one shared scenario engine behind the
// HTTP/JSON job API in internal/service: submit spec documents (the
// same JSON the toposcenario CLI runs locally), poll incremental
// results, cancel jobs, and read registry and cache/job telemetry.
//
// Usage:
//
//	toposcenariod -addr 127.0.0.1:8080
//	toposcenariod -addr :0 -cache-budget-mb 256 -executors 4
//	toposcenario -server http://127.0.0.1:8080 -spec batch.json
//
// Endpoints: POST/GET /v1/jobs, GET/DELETE /v1/jobs/{id},
// GET /v1/registry, GET /v1/statusz. SIGINT/SIGTERM starts a graceful
// drain: intake stops (503), queued and running jobs finish, then the
// process exits 0; jobs still running past -drain-timeout are canceled
// through their contexts.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/scenario"
	"repro/internal/service"
)

type config struct {
	addr          string
	cacheBudgetMB int
	maxQueue      int
	executors     int
	jobWorkers    int
	jobTimeout    time.Duration
	drainTimeout  time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
	flag.IntVar(&cfg.cacheBudgetMB, "cache-budget-mb", 0, "snapshot cache budget in MiB (0 = engine default, negative disables retention)")
	flag.IntVar(&cfg.maxQueue, "queue", 0, "max queued jobs before 429 (0 = default 64)")
	flag.IntVar(&cfg.executors, "executors", 0, "jobs run concurrently (0 = default 2)")
	flag.IntVar(&cfg.jobWorkers, "job-workers", 0, "engine workers per job (<= 0 = GOMAXPROCS)")
	flag.DurationVar(&cfg.jobTimeout, "job-timeout", 0, "per-job execution bound (0 = no limit)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful-drain bound after SIGINT/SIGTERM")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Stderr, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "toposcenariod: %v\n", err)
		os.Exit(1)
	}
}

// run listens, serves until ctx is canceled, then drains. The
// "listening on" line goes to out as soon as the port is bound, so
// scripts starting the daemon on :0 can parse the resolved address.
func run(ctx context.Context, out io.Writer, cfg config) error {
	eng := scenario.NewEngine(nil)
	if cfg.cacheBudgetMB != 0 {
		eng.SetCacheBudget(int64(cfg.cacheBudgetMB) << 20)
	}
	srv := service.New(service.Config{
		Engine:     eng,
		MaxQueue:   cfg.maxQueue,
		Executors:  cfg.executors,
		JobWorkers: cfg.jobWorkers,
		JobTimeout: cfg.jobTimeout,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "toposcenariod: listening on %s (queue=%d executors=%d cache_budget=%d)\n",
		ln.Addr(), cfg.maxQueue, cfg.executors, eng.CacheStats().Budget)

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "toposcenariod: draining (bound %s)\n", cfg.drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(dctx)
	if err := hs.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintln(out, "toposcenariod: drained cleanly")
	return nil
}
