//go:build slowbench

package hotgen

// The million-node and heaviest HOT-grown slices of the scaling tier,
// behind the slowbench build tag because topology construction alone
// takes tens of seconds:
//
//	go test -tags slowbench -run '^$' -bench BenchmarkScale -benchtime 1x .
//
// The grid-index growth path is ~O(n log n), which pulls HOT topologies
// up to the full 10^6 nodes the int32 CSR tier targets (the 25k slice is
// kept for continuity with older baselines, and the 100k slice lives in
// the weekly tier). The exhaustive-scan growth reference stays O(n^2)
// and is only benchmarked at 25k.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
)

func ba1m(b *testing.B) *scaleTopo {
	return scaleTopoFor(b, "ba-1m", func() (*graph.Graph, error) { return gen.BarabasiAlbert(1_000_000, 2, 1) })
}

func er1m(b *testing.B) *scaleTopo {
	return scaleTopoFor(b, "er-1m", func() (*graph.Graph, error) { return gen.ErdosRenyiGNM(1_000_000, 2_000_000, 1) })
}

// ba10m is the 10^7-node slice of the scaling tier. At m=2 the snapshot
// is ~10M nodes / ~20M edges: roughly 0.5 GB for the CSR arrays plus the
// builder graph — the regime ROADMAP item 2 targets. Construction takes
// minutes; the benchmarks below exist primarily to prove the int32 CSR
// path and both traversal kernels hold up there, not for per-commit
// gating.
func ba10m(b *testing.B) *scaleTopo {
	return scaleTopoFor(b, "ba-10m", func() (*graph.Graph, error) { return gen.BarabasiAlbert(10_000_000, 2, 1) })
}

func hot25k(b *testing.B) *scaleTopo {
	return scaleTopoFor(b, "hot-25k", func() (*graph.Graph, error) {
		g, _, err := core.GrowHOT(core.HOTConfig{
			N:               25_000,
			Seed:            1,
			Terms:           []core.ObjectiveTerm{core.DistanceTerm{Weight: 8}, core.CentralityTerm{Weight: 1}},
			LinksPerArrival: 2,
		})
		return g, err
	})
}

func hot1m(b *testing.B) *scaleTopo {
	return scaleTopoFor(b, "hot-1m", func() (*graph.Graph, error) {
		g, _, err := core.GrowHOT(core.HOTConfig{
			N:               1_000_000,
			Seed:            1,
			Terms:           []core.ObjectiveTerm{core.DistanceTerm{Weight: 8}, core.CentralityTerm{Weight: 1}},
			LinksPerArrival: 2,
		})
		return g, err
	})
}

func BenchmarkScaleBFSDirOptBA1M(b *testing.B)   { benchBFS(b, ba1m(b), false) }
func BenchmarkScaleBFSTopDownBA1M(b *testing.B)  { benchBFS(b, ba1m(b), true) }
func BenchmarkScaleBFSDirOptER1M(b *testing.B)   { benchBFS(b, er1m(b), false) }
func BenchmarkScaleBFSTopDownER1M(b *testing.B)  { benchBFS(b, er1m(b), true) }
func BenchmarkScaleBFSDirOptHOT25k(b *testing.B) { benchBFS(b, hot25k(b), false) }
func BenchmarkScaleBFSTopDownHOT25k(b *testing.B) {
	benchBFS(b, hot25k(b), true)
}
func BenchmarkScaleBFSDirOptHOT1M(b *testing.B)  { benchBFS(b, hot1m(b), false) }
func BenchmarkScaleBFSTopDownHOT1M(b *testing.B) { benchBFS(b, hot1m(b), true) }

// BenchmarkScaleBFSParallelBA1M pairs with BenchmarkScaleBFSDirOptBA1M:
// the same traversal with the bottom-up levels sharded over GOMAXPROCS
// workers (the width CSR.BFS auto-engages at this size).
func BenchmarkScaleBFSParallelBA1M(b *testing.B) { benchBFSParallel(b, ba1m(b), 0) }

// BenchmarkScaleHOTGrow1M grows a million-node HOT topology per
// iteration on the grid-index path — infeasible on the O(n^2)
// exhaustive scan, which is exactly the point.
func BenchmarkScaleHOTGrow1M(b *testing.B) { benchHOTGrow(b, 1_000_000, core.SearchGrid) }

func BenchmarkScaleDijkstraBucketBA1M(b *testing.B) { benchDijkstra(b, ba1m(b), false) }
func BenchmarkScaleDijkstraHeapBA1M(b *testing.B)   { benchDijkstra(b, ba1m(b), true) }

// BenchmarkScaleDijkstraParallelBA1M pairs with
// BenchmarkScaleDijkstraBucketBA1M: the same traversal with each bucket
// window's frontier settled in parallel shards at GOMAXPROCS width (the
// width CSR.Dijkstra auto-engages at this size).
func BenchmarkScaleDijkstraParallelBA1M(b *testing.B) { benchDijkstraParallel(b, ba1m(b), 0) }

// The 10M slices: both kernels at the top of the int32 CSR range.
func BenchmarkScaleBFSDirOptBA10M(b *testing.B)      { benchBFS(b, ba10m(b), false) }
func BenchmarkScaleBFSParallelBA10M(b *testing.B)    { benchBFSParallel(b, ba10m(b), 0) }
func BenchmarkScaleDijkstraBucketBA10M(b *testing.B) { benchDijkstra(b, ba10m(b), false) }
func BenchmarkScaleDijkstraParallelBA10M(b *testing.B) {
	benchDijkstraParallel(b, ba10m(b), 0)
}

func BenchmarkScaleRoutingFanoutBA1M(b *testing.B) {
	t := ba1m(b)
	// 64 demands (~64 distinct sources): enough to exercise the
	// per-worker workspace fan-out without hour-long single-core runs.
	demands := scaleDemands(t.c.NumNodes(), 64, 44)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.RouteShortestPathsContext(context.Background(), t.g, t.c, demands); err != nil {
			b.Fatal(err)
		}
	}
}
