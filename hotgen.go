// Package hotgen is the public facade of this repository: an
// optimization-driven framework for designing and generating realistic
// Internet topologies, reproducing Alderson, Doyle, Govindan &
// Willinger, "Toward an Optimization-Driven Framework for Designing and
// Generating Realistic Internet Topologies" (HotNets-II, 2003).
//
// The primary entry point is the scenario API: every topology model in
// the repository is registered by name in a Generator registry with
// typed, validated, JSON-serializable parameters, and a declarative
// Scenario (generate + measure + route + attack stages, replicated over
// seeds) runs through an Engine that plumbs context.Context through
// every long-running path, caches frozen CSR snapshots by scenario
// identity, and reduces batches in a fixed order so output is
// byte-identical at any worker count. See Generator, Scenario,
// NewEngine, and cmd/toposcenario; `topogen -list` enumerates the
// registry. Measurement mirrors generation: every metric is registered
// by name in a metric registry with typed parameters, and named metric
// sets are evaluated as one fused schedule over a shared frozen
// snapshot — see Metric, MetricSelection, EvaluateMetrics, and
// `topostats -list`. Attacks mirror both: every failure/attack strategy
// (node- or edge-removal, deterministic or randomized) is registered by
// name with typed parameters, and the robustness sweep engine traces
// metric curves along each schedule — via masked re-evaluation or a
// reverse union-find incremental path that computes whole LCC
// trajectories in near-linear time — see Attack, RunRobustnessSweep,
// and `topoattack -list`. Traffic completes the registry quartet: every
// demand model (§2.2 makes population-gravity demand the canonical
// evaluation input) is registered by name with typed parameters, feeds
// the ISP provisioner and the peering optimizer, and drives the
// scenario engine's traffic stage, whose volume-aware max-min fair
// allocator reports throughput/fairness through traffic-capable
// registry metrics — see DemandModel, GenerateDemandMatrix,
// TrafficSpec, and `toposcenario -list`. The free functions below
// remain as direct, stable wrappers over the same internals.
//
// The library is organized as the paper is:
//
//   - FKP and the generalized HOT growth framework (the paper's §3.1
//     theoretical support and the core modeling idea) — see FKP, GrowHOT,
//     ObjectiveTerm, Constraint.
//   - Buy-at-bulk access network design with a randomized incremental
//     approximation and baselines (§4) — see AccessInstance,
//     MMPIncremental, SampleAndAugment.
//   - Single-ISP design from population centers with cost- or
//     profit-based formulations (§2.2) — see BuildISP.
//   - Multi-ISP assembly with optimized peering and AS-graph extraction
//     (§2.3) — see AssembleInternet.
//   - The comparison metric suite and descriptive baseline generators the
//     paper argues against (§1) — see ComputeProfile and the Gen*
//     functions.
//
// Under all of it sits a high-performance graph kernel: Freeze snapshots
// a Graph into an immutable CSR (compressed sparse row) layout, and
// pooled Workspace buffers make the Dijkstra/BFS/eccentricity kernels
// allocation-free and safe to fan out across goroutines. Both traversal
// kernels parallelize inside a single source above 2^18 nodes — sharded
// bottom-up BFS levels and sharded Dijkstra bucket windows
// (CSR.BFSParallel / CSR.DijkstraParallel force a width) — and the
// per-source fan-outs split the worker budget with the intra-source
// shards so the two levels compose without oversubscription. The
// routing, metric, robustness and experiment layers all run on this
// kernel, with every parallel reduction performed in a fixed order and
// deterministic tie-breaks inside each traversal, so results are
// byte-identical at any worker count (see ExperimentOptions.Workers).
//
// Everything is deterministic given explicit seeds and uses only the Go
// standard library.
package hotgen

import (
	"context"
	"net/http"

	"repro/internal/access"
	"repro/internal/anonymize"
	"repro/internal/attackreg"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/isp"
	"repro/internal/metricreg"
	"repro/internal/metrics"
	"repro/internal/peering"
	"repro/internal/robust"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/trafficreg"
	"repro/internal/validate"
)

// Sentinel errors shared by every layer; test with errors.Is.
var (
	// ErrBadParam marks an invalid or out-of-range parameter value.
	ErrBadParam = errs.ErrBadParam
	// ErrCanceled marks work abandoned because its context was canceled.
	ErrCanceled = errs.ErrCanceled
	// ErrInfeasible marks a well-formed instance with no solution.
	ErrInfeasible = errs.ErrInfeasible
)

// Scenario API: the registry-driven pipeline over the CSR kernel.
type (
	// Generator is one registered topology model: name, typed parameter
	// specs, and a context-aware generation function.
	Generator = scenario.Generator
	// FuncGenerator adapts a function plus specs into a Generator.
	FuncGenerator = scenario.FuncGenerator
	// GeneratorRegistry maps model names to Generators.
	GeneratorRegistry = scenario.Registry
	// ParamSpec declares one generator parameter (kind, default, bounds).
	ParamSpec = scenario.ParamSpec
	// GenParams carries generator arguments by name (JSON numbers).
	GenParams = scenario.Params
	// Scenario is one declarative generate/measure/route/attack unit,
	// replicated over seeds; it round-trips through JSON.
	Scenario = scenario.Scenario
	// GenerateSpec names the scenario's generator and parameters.
	GenerateSpec = scenario.GenerateSpec
	// MeasureSpec selects measurement families.
	MeasureSpec = scenario.MeasureSpec
	// RouteSpec evaluates the topology under a random traffic matrix.
	RouteSpec = scenario.RouteSpec
	// TrafficSpec evaluates the topology under a registry demand model
	// (sites, demand matrix, volume-aware max-min fair allocation).
	TrafficSpec = scenario.TrafficSpec
	// TrafficSummary is the traffic stage's allocation summary.
	TrafficSummary = scenario.TrafficSummary
	// AttackSpec runs a robustness sweep.
	AttackSpec = scenario.AttackSpec
	// ScenarioTimelineSpec replays an ordered failure/repair/traffic
	// event schedule against the generated topology — the temporal
	// stage.
	ScenarioTimelineSpec = scenario.TimelineSpec
	// ScenarioTimelineEvent is one ordered event of a scenario timeline
	// (fail-node, fail-edge, repair, capacity-set, demand-switch).
	ScenarioTimelineEvent = scenario.TimelineEventSpec
	// ScenarioTimelinePoint is one timeline event's output row.
	ScenarioTimelinePoint = scenario.TimelinePoint
	// Engine executes scenarios with cancellation, a frozen-snapshot
	// cache, and order-reduced (worker-count-independent) batches.
	Engine = scenario.Engine
	// EngineOptions tune a batch run.
	EngineOptions = scenario.Options
	// ScenarioResult is one scenario's replicated output.
	ScenarioResult = scenario.Result
	// ScenarioRepResult is one replication's output.
	ScenarioRepResult = scenario.RepResult
	// EngineCacheStats is a point-in-time snapshot of the engine's
	// byte-budgeted snapshot cache (hits, coalesced waits, misses,
	// evictions, resident bytes) — see Engine.CacheStats and
	// Engine.SetCacheBudget.
	EngineCacheStats = scenario.CacheStats
)

// Scenario service: the resident counterpart of the Engine. One shared
// engine is hosted behind an HTTP/JSON job API (submit spec documents,
// poll incremental results, cancel through the threaded context, read
// registry and cache/job telemetry) — see cmd/toposcenariod for the
// daemon and `toposcenario -server` for the CLI client mode.
type (
	// ScenarioServiceConfig tunes a server: engine, queue depth,
	// executor count, per-job workers and timeout.
	ScenarioServiceConfig = service.Config
	// ScenarioServer is the http.Handler hosting the job API.
	ScenarioServer = service.Server
	// ScenarioServiceClient is the Go client for a running daemon.
	ScenarioServiceClient = service.Client
	// ScenarioJobStatus is one job's wire status (state, progress,
	// results).
	ScenarioJobStatus = service.JobStatus
	// ScenarioServiceStatusz is the daemon's monitoring snapshot.
	ScenarioServiceStatusz = service.Statusz
	// ScenarioRegistryInfo enumerates every component a spec can name.
	ScenarioRegistryInfo = service.RegistryInfo
)

// NewScenarioServer builds a scenario service over cfg and starts its
// executor pool; drain it with its Shutdown method.
func NewScenarioServer(cfg ScenarioServiceConfig) *ScenarioServer { return service.New(cfg) }

// NewScenarioServiceClient returns a client for the daemon at baseURL
// (nil hc uses http.DefaultClient).
func NewScenarioServiceClient(baseURL string, hc *http.Client) *ScenarioServiceClient {
	return service.NewClient(baseURL, hc)
}

// Metric registry: the measurement mirror of the generator registry.
// Every metric is registered by name with typed parameters, and a set
// of metrics is evaluated as one fused schedule — BFS-consuming metrics
// share a single sweep over one frozen CSR snapshot.
type (
	// Metric is one registered measurement: name, typed parameter
	// specs, declared capabilities, and an accumulator factory.
	Metric = metricreg.Metric
	// FuncMetric adapts specs plus an accumulator factory into a Metric.
	FuncMetric = metricreg.FuncMetric
	// MetricRegistry maps metric names to Metrics.
	MetricRegistry = metricreg.Registry
	// MetricSelection names one metric of a set with optional params.
	MetricSelection = metricreg.Selection
	// MetricValue is one metric's result (scalar + optional series).
	MetricValue = metricreg.Value
	// MetricSource is what a metric set is evaluated against: a frozen
	// CSR, optionally its graph, and a shared connectivity bit.
	MetricSource = metricreg.Source
	// MetricEvalOptions tune one evaluation (workers, seed, stats).
	MetricEvalOptions = metricreg.Options
	// MetricEvalStats reports the fused schedule's traversal accounting.
	MetricEvalStats = metricreg.EvalStats
	// MetricCaps declares what a metric needs from its source.
	MetricCaps = metricreg.Caps
)

// Metric capability flags.
const (
	// MetricCapGraph marks metrics needing the mutable *Graph.
	MetricCapGraph = metricreg.CapGraph
	// MetricCapConnected marks metrics consuming the shared
	// connectivity bit.
	MetricCapConnected = metricreg.CapConnected
	// MetricCapMasked marks metrics supporting masked (node-removal)
	// re-evaluation — the robustness-sweep contract.
	MetricCapMasked = metricreg.CapMasked
	// MetricCapTraffic marks metrics evaluating a traffic allocation;
	// the source must carry a demand set (MetricSource.SetTraffic).
	MetricCapTraffic = metricreg.CapTraffic
)

// MetricNames lists every registered metric name, sorted.
func MetricNames() []string { return metricreg.Names() }

// RegisterMetric adds a custom metric to the default registry.
func RegisterMetric(m Metric) error { return metricreg.Register(m) }

// LookupMetric resolves a metric name in the default registry.
func LookupMetric(name string) (Metric, error) { return metricreg.Lookup(name) }

// NewMetricSource builds an evaluation source: pass both to reuse an
// existing CSR, g alone to freeze internally, or c alone for a
// CSR-only source.
func NewMetricSource(g *Graph, c *CSR) *MetricSource { return metricreg.NewSource(g, c) }

// EvaluateMetrics computes a named metric set against src as one fused
// schedule on the default registry; results are keyed by metric name
// and byte-identical for any worker count.
func EvaluateMetrics(ctx context.Context, src *MetricSource, set []MetricSelection, opt MetricEvalOptions) (map[string]MetricValue, error) {
	return metricreg.Evaluate(ctx, src, set, opt)
}

// ProfileMetricSet is the metric set ComputeProfile evaluates, as a
// starting point for custom sets.
func ProfileMetricSet() []MetricSelection { return metrics.ProfileSet() }

// NewEngine returns a scenario engine over reg (nil = the default
// registry holding every built-in model).
func NewEngine(reg *GeneratorRegistry) *Engine { return scenario.NewEngine(reg) }

// Generators lists every registered model name, sorted.
func Generators() []string { return scenario.Names() }

// RegisterGenerator adds a custom model to the default registry.
func RegisterGenerator(g Generator) error { return scenario.Register(g) }

// LookupGenerator resolves a model name in the default registry.
func LookupGenerator(name string) (Generator, error) { return scenario.Lookup(name) }

// GenerateByName validates params against the named model's specs and
// generates a topology, honoring ctx.
func GenerateByName(ctx context.Context, name string, p GenParams) (*Graph, error) {
	return scenario.Default().GenerateByName(ctx, name, p)
}

// ParseScenarioSpec decodes a scenario spec document: one Scenario
// object, a JSON array, or {"scenarios": [...]}.
func ParseScenarioSpec(data []byte) ([]Scenario, error) { return scenario.ParseSpec(data) }

// Graph and topology substrate.
type (
	// Graph is the undirected weighted topology representation shared by
	// all generators.
	Graph = graph.Graph
	// Node is a graph node annotation (role, coordinates, capacity).
	Node = graph.Node
	// Edge is an undirected link with weight, capacity and cable type.
	Edge = graph.Edge
	// NodeKind labels a node's role in the ISP hierarchy.
	NodeKind = graph.NodeKind
	// Point is a planar location.
	Point = geom.Point
	// Rect is an axis-aligned region.
	Rect = geom.Rect
)

// Node kinds.
const (
	KindUnknown  = graph.KindUnknown
	KindCore     = graph.KindCore
	KindPOP      = graph.KindPOP
	KindConc     = graph.KindConc
	KindCustomer = graph.KindCustomer
	KindPeering  = graph.KindPeering
)

// NewGraph returns an empty graph with a capacity hint.
func NewGraph(n int) *Graph { return graph.New(n) }

// Compute kernel: immutable snapshots plus pooled scratch buffers.
type (
	// CSR is an immutable compressed-sparse-row snapshot of a Graph,
	// produced by Graph.Freeze; its traversal kernels are safe to share
	// across goroutines.
	CSR = graph.CSR
	// Workspace owns the scratch buffers (distances, parents, heap,
	// queue, visited epochs) one goroutine's kernel calls run in.
	Workspace = graph.Workspace
	// FreezeOptions tune Graph.FreezeWithOptions (cache-conscious
	// traversal reordering); the zero value is a plain Freeze.
	FreezeOptions = graph.FreezeOptions
	// ReorderMode selects the internal traversal-layout permutation of a
	// reordered snapshot. Every exported result (parents, distances,
	// Neighbors, all metrics) stays in original node ids, bit-identical
	// to an unreordered snapshot.
	ReorderMode = graph.ReorderMode
)

// Reorder modes for FreezeOptions.
const (
	// ReorderNone keeps arrival order (identical to Graph.Freeze).
	ReorderNone = graph.ReorderNone
	// ReorderDegree lays nodes out by descending degree (hub locality).
	ReorderDegree = graph.ReorderDegree
	// ReorderRCM lays nodes out in reverse Cuthill–McKee order
	// (bandwidth reduction).
	ReorderRCM = graph.ReorderRCM
)

// GetWorkspace takes a pooled Workspace sized for n-node graphs; pair
// with its Release method.
func GetWorkspace(n int) *Workspace { return graph.GetWorkspace(n) }

// NewWorkspace returns an unpooled Workspace sized for n-node graphs.
func NewWorkspace(n int) *Workspace { return graph.NewWorkspace(n) }

// UnitSquare is the canonical generation region.
var UnitSquare = geom.UnitSquare

// Core contribution: FKP and the generalized HOT framework.
type (
	// FKPConfig parameterizes the Fabrikant–Koutsoupias–Papadimitriou
	// incremental tradeoff model.
	FKPConfig = core.FKPConfig
	// HOTConfig parameterizes the generalized optimization-driven growth.
	HOTConfig = core.HOTConfig
	// ObjectiveTerm is one weighted component of the attachment cost.
	ObjectiveTerm = core.ObjectiveTerm
	// Constraint filters infeasible attachments.
	Constraint = core.Constraint
	// GrowthStats summarizes a GrowHOT run.
	GrowthStats = core.GrowthStats
	// TopologyClass is the star / power-law tree / exponential tree
	// classification.
	TopologyClass = core.TopologyClass
	// CentralityMode selects the FKP centrality definition.
	CentralityMode = core.CentralityMode
	// DistanceTerm prices last-mile distance.
	DistanceTerm = core.DistanceTerm
	// CentralityTerm prices hops to the network core.
	CentralityTerm = core.CentralityTerm
	// LoadTerm prices attachment-target congestion.
	LoadTerm = core.LoadTerm
	// MaxDegreeConstraint is the router port limit.
	MaxDegreeConstraint = core.MaxDegreeConstraint
	// MaxLengthConstraint is the link reach limit.
	MaxLengthConstraint = core.MaxLengthConstraint
	// GrowthSearch selects the candidate-scan implementation of the
	// growth loops (FKPConfig.Search, HOTConfig.Search); results are
	// bit-identical whichever scan runs.
	GrowthSearch = core.GrowthSearch
)

// Growth candidate-scan implementations.
const (
	// SearchAuto (the zero value) uses the grid index when eligible and
	// large enough to amortize it.
	SearchAuto = core.SearchAuto
	// SearchExhaustive forces the O(n) per-arrival reference scan.
	SearchExhaustive = core.SearchExhaustive
	// SearchGrid forces the ~O(log n) per-arrival grid index where
	// eligible.
	SearchGrid = core.SearchGrid
)

// FKP grows a tree per the FKP model.
func FKP(cfg FKPConfig) (*Graph, error) { return core.FKP(cfg) }

// FKPContext is FKP with cancellation checked at every arrival.
func FKPContext(ctx context.Context, cfg FKPConfig) (*Graph, error) {
	return core.FKPContext(ctx, cfg)
}

// GrowHOT runs the generalized incremental optimization growth.
func GrowHOT(cfg HOTConfig) (*Graph, *GrowthStats, error) { return core.GrowHOT(cfg) }

// GrowHOTContext is GrowHOT with cancellation checked at every arrival.
func GrowHOTContext(ctx context.Context, cfg HOTConfig) (*Graph, *GrowthStats, error) {
	return core.GrowHOTContext(ctx, cfg)
}

// Classify assigns a TopologyClass to a generated graph.
func Classify(g *Graph) TopologyClass { return core.Classify(g) }

// Buy-at-bulk access design (§4).
type (
	// CableType is one {capacity, cost} catalog entry.
	CableType = access.CableType
	// Catalog is an economies-of-scale-ordered cable list.
	Catalog = access.Catalog
	// AccessInstance is one access design problem.
	AccessInstance = access.Instance
	// AccessNetwork is a solved access design.
	AccessNetwork = access.Network
	// AccessInstanceConfig parameterizes random instances.
	AccessInstanceConfig = access.InstanceConfig
	// AccessCustomer is a demand point.
	AccessCustomer = access.Customer
)

// DefaultCatalog returns the paper-footnote-8 style cable catalog.
func DefaultCatalog() Catalog { return access.DefaultCatalog() }

// RandomAccessInstance draws a random access design instance.
func RandomAccessInstance(cfg AccessInstanceConfig) (*AccessInstance, error) {
	return access.RandomInstance(cfg)
}

// MMPIncremental solves an instance with the randomized incremental
// cost-distance heuristic (paper reference [24]).
func MMPIncremental(in *AccessInstance, seed int64) (*AccessNetwork, error) {
	return access.MMPIncremental(in, seed)
}

// SampleAndAugment solves an instance with stage-based randomized
// sample-and-augment.
func SampleAndAugment(in *AccessInstance, seed int64, p float64) (*AccessNetwork, error) {
	return access.SampleAndAugment(in, seed, p)
}

// SingleCableMST is the economies-of-scale-blind baseline.
func SingleCableMST(in *AccessInstance) (*AccessNetwork, error) {
	return access.SingleCableMST(in)
}

// DirectStar is the no-sharing baseline.
func DirectStar(in *AccessInstance) (*AccessNetwork, error) {
	return access.DirectStar(in)
}

// AccessLowerBound returns a valid lower bound on optimal instance cost.
func AccessLowerBound(in *AccessInstance) float64 { return access.LowerBound(in) }

// AugmentTwoEdgeConnected adds redundancy per the paper's footnote 7.
func AugmentTwoEdgeConnected(in *AccessInstance, net *AccessNetwork) int {
	return access.AugmentTwoEdgeConnected(in, net)
}

// RingMetro solves an access instance under a SONET-style Level-2 ring
// technology (§2.4): customers join protected rings through the core.
func RingMetro(in *AccessInstance, ringSize int) (*AccessNetwork, error) {
	return access.RingMetro(in, ringSize)
}

// RingVsTreeReport quantifies the Level-2 technology tradeoff of §2.4.
type RingVsTreeReport = access.RingVsTreeReport

// CompareRingVsTree solves an instance as an MMP tree and as SONET rings
// and reports the cost/shape tradeoff.
func CompareRingVsTree(in *AccessInstance, seed int64, ringSize int) (*RingVsTreeReport, error) {
	return access.CompareRingVsTree(in, seed, ringSize)
}

// Traffic and economy substrate (§2.2 inputs).
type (
	// Geography is a set of population centers.
	Geography = traffic.Geography
	// GeographyConfig parameterizes synthetic geography.
	GeographyConfig = traffic.GeographyConfig
	// City is one population center.
	City = traffic.City
	// DemandMatrix is symmetric city-to-city demand.
	DemandMatrix = traffic.DemandMatrix
	// GravityConfig parameterizes the gravity demand model.
	GravityConfig = traffic.GravityConfig
)

// Traffic-model registry: the demand mirror of the generator, metric
// and attack registries. Every demand model (gravity, uniform,
// zipf-hotspot, bimodal, single-epicenter) is registered by name with
// typed parameters; the ISP provisioner, the peering optimizer, and the
// scenario engine's traffic stage all generate demand through it.
type (
	// DemandModel is one registered traffic model: name, typed
	// parameter specs, and a matrix-generation function.
	DemandModel = trafficreg.DemandModel
	// FuncDemandModel adapts specs plus a generation function into a
	// DemandModel.
	FuncDemandModel = trafficreg.FuncModel
	// TrafficRegistry maps demand-model names to DemandModels.
	TrafficRegistry = trafficreg.Registry
	// TrafficSelection names one demand model with optional params; the
	// zero value is gravity with its defaults.
	TrafficSelection = trafficreg.Selection
	// TrafficParams carries demand-model arguments by name (JSON
	// numbers).
	TrafficParams = trafficreg.Params
)

// DemandModels lists every registered demand-model name, sorted.
func DemandModels() []string { return trafficreg.Names() }

// RegisterDemandModel adds a custom demand model to the default
// registry.
func RegisterDemandModel(m DemandModel) error { return trafficreg.Register(m) }

// LookupDemandModel resolves a demand-model name ("" is gravity) in the
// default registry.
func LookupDemandModel(name string) (DemandModel, error) { return trafficreg.Lookup(name) }

// GenerateDemandMatrix validates sel against the named model's specs
// and generates the city-to-city demand matrix for geo, honoring ctx.
func GenerateDemandMatrix(ctx context.Context, geo *Geography, sel TrafficSelection, seed int64) (DemandMatrix, error) {
	return trafficreg.GenerateDemand(ctx, geo, sel, seed)
}

// GraphTrafficDemands lifts a topology's top-degree nodes into traffic
// sites and generates sel's demand between them — the demand set the
// scenario traffic stage allocates, also usable directly with
// MaxMinFair or MetricSource.SetTraffic.
func GraphTrafficDemands(ctx context.Context, g *Graph, sel TrafficSelection, sites int, seed int64) ([]Demand, error) {
	return trafficreg.GraphDemands(ctx, g, sel, sites, seed)
}

// GenerateGeography draws a synthetic national geography.
func GenerateGeography(cfg GeographyConfig) (*Geography, error) {
	return traffic.GenerateGeography(cfg)
}

// GravityDemand builds the gravity-model demand matrix.
func GravityDemand(g *Geography, cfg GravityConfig) DemandMatrix {
	return traffic.GravityDemand(g, cfg)
}

// ArrivalPoints draws population-weighted arrival locations from a
// geography, for use as HOTConfig.Arrivals (§2.1: customers concentrate
// in the big cities).
func ArrivalPoints(g *Geography, n int, spread float64, seed int64) []Point {
	return traffic.ArrivalPoints(g, n, spread, seed)
}

// ISP design (§2.2).
type (
	// ISPConfig parameterizes the single-ISP designer.
	ISPConfig = isp.Config
	// ISPDesign is a built ISP.
	ISPDesign = isp.Design
	// Formulation selects cost-based vs profit-based design.
	Formulation = isp.Formulation
)

// ISP formulations.
const (
	CostBased   = isp.CostBased
	ProfitBased = isp.ProfitBased
)

// BuildISP designs a single ISP's router-level topology.
func BuildISP(cfg ISPConfig) (*ISPDesign, error) { return isp.Build(cfg) }

// BackboneReport describes routed load and cable provisioning on the WAN.
type BackboneReport = isp.BackboneReport

// ProvisionBackbone routes inter-metro gravity demand over a built ISP
// and installs adequate cable configurations on the backbone links
// (footnote 1: topology = connectivity + capacity).
func ProvisionBackbone(des *ISPDesign, geo *Geography, cat Catalog, demandScale float64) (*BackboneReport, error) {
	return isp.ProvisionBackbone(des, geo, cat, demandScale)
}

// ProvisionBackboneContext is ProvisionBackbone under any registered
// demand model (the zero TrafficSelection is gravity with its
// defaults), with cancellation; seed feeds seed-dependent demand models
// (pass the ISPConfig.Seed the design was built with).
func ProvisionBackboneContext(ctx context.Context, des *ISPDesign, geo *Geography, cat Catalog, demandScale float64, model TrafficSelection, seed int64) (*BackboneReport, error) {
	return isp.ProvisionBackboneContext(ctx, des, geo, cat, demandScale, model, seed)
}

// Internet assembly (§2.3).
type (
	// InternetConfig parameterizes multi-ISP assembly.
	InternetConfig = peering.Config
	// Internet is the assembled multi-ISP topology.
	Internet = peering.Internet
	// PeeringLink is one inter-ISP interconnect.
	PeeringLink = peering.PeeringLink
	// TransitConfig parameterizes customer-provider assignment.
	TransitConfig = peering.TransitConfig
	// TransitResult is the tiered customer-provider structure.
	TransitResult = peering.TransitResult
	// TransitLink is one customer-provider relationship.
	TransitLink = peering.TransitLink
)

// AssembleInternet builds the multi-ISP internet model.
func AssembleInternet(cfg InternetConfig) (*Internet, error) {
	return peering.Assemble(cfg)
}

// AssignTransit layers customer-provider relationships (and tiers) onto
// an assembled internet, extending the AS graph with transit edges.
func AssignTransit(inet *Internet, cfg TransitConfig) (*TransitResult, error) {
	return peering.AssignTransit(inet, cfg)
}

// ValleyFreeResult reports Gao–Rexford policy reachability on an AS
// relationship graph.
type ValleyFreeResult = peering.ValleyFreeResult

// ValleyFree computes valley-free (customer/provider/peer policy)
// reachability and AS path lengths over a transit result.
func ValleyFree(tr *TransitResult) (*ValleyFreeResult, error) {
	return peering.ValleyFree(tr)
}

// Descriptive baseline generators (§1).
var (
	// GenErdosRenyiGNP samples G(n,p).
	GenErdosRenyiGNP = gen.ErdosRenyiGNP
	// GenErdosRenyiGNM samples G(n,m).
	GenErdosRenyiGNM = gen.ErdosRenyiGNM
	// GenWaxman samples the Waxman geographic random graph.
	GenWaxman = gen.Waxman
	// GenBarabasiAlbert grows a preferential-attachment graph.
	GenBarabasiAlbert = gen.BarabasiAlbert
	// GenGLP grows a generalized-linear-preference graph.
	GenGLP = gen.GLP
	// GenTransitStub builds a GT-ITM style hierarchy.
	GenTransitStub = gen.TransitStub
	// GenRandomGeometric connects points within a radius.
	GenRandomGeometric = gen.RandomGeometric
	// GenConfigurationModel rewires a given degree sequence at random —
	// the purest descriptive generator.
	GenConfigurationModel = gen.ConfigurationModel
	// GenInetLike samples a power-law degree sequence and realizes it,
	// patching connectivity (the paper's reference [21] pipeline).
	GenInetLike = gen.InetLike
)

// TransitStubConfig parameterizes GenTransitStub.
type TransitStubConfig = gen.TransitStubConfig

// Metrics, statistics, routing, robustness.
type (
	// Profile bundles the comparison metrics of one topology.
	Profile = metrics.Profile
	// TailClassification is the power-law vs exponential verdict.
	TailClassification = stats.TailClassification
	// Demand is one traffic requirement.
	Demand = routing.Demand
	// RouteResult reports a routing evaluation.
	RouteResult = routing.Result
	// AttackStrategy orders node removals (the four original attacks;
	// the attack registry below generalizes it).
	AttackStrategy = robust.Strategy
)

// Attack strategies.
const (
	RandomFailure        = robust.RandomFailure
	DegreeAttack         = robust.DegreeAttack
	BetweennessAttack    = robust.BetweennessAttack
	AdaptiveDegreeAttack = robust.AdaptiveDegreeAttack
)

// Attack registry: the failure/attack mirror of the generator and
// metric registries. Every node- or edge-removal strategy is registered
// by name with typed parameters, and the sweep engine traces metric
// curves along each schedule — via masked re-evaluation or the reverse
// union-find incremental path (bit-for-bit identical, near-linear in
// the whole schedule).
type (
	// Attack is one registered removal strategy: name, typed parameter
	// specs, a node/edge target, and a schedule function.
	Attack = attackreg.Attack
	// FuncAttack adapts specs plus a schedule function into an Attack.
	FuncAttack = attackreg.FuncAttack
	// AttackRegistry maps attack names to Attacks.
	AttackRegistry = attackreg.Registry
	// AttackSelection names one attack with optional params.
	AttackSelection = attackreg.Selection
	// AttackParams carries attack arguments by name (JSON numbers).
	AttackParams = attackreg.Params
	// AttackTarget reports whether schedules index nodes or edges.
	AttackTarget = attackreg.Target
	// AttackCaps declares schedule properties (randomized, adaptive).
	AttackCaps = attackreg.Caps
	// RobustnessSweepSpec declares one registry-driven robustness sweep.
	RobustnessSweepSpec = robust.SweepSpec
	// RobustnessMode selects the sweep evaluation path (auto, masked,
	// incremental).
	RobustnessMode = robust.Mode
	// TimelineEvent is one connectivity event of a failure/repair
	// timeline: an op applied to a node or edge id.
	TimelineEvent = robust.TimelineEvent
	// TimelineOp is a timeline event kind (fail/repair × node/edge).
	TimelineOp = robust.TimelineOp
	// TimelineMode selects the timeline evaluation path (auto, masked,
	// epoch).
	TimelineMode = robust.TimelineMode
)

// Attack targets and capability flags.
const (
	// AttackNodes marks node-removal schedules.
	AttackNodes = attackreg.Nodes
	// AttackEdges marks edge-removal schedules.
	AttackEdges = attackreg.Edges
	// AttackCapRandomized marks seed-dependent schedules (averaged over
	// sweep trials).
	AttackCapRandomized = attackreg.CapRandomized
	// AttackCapAdaptive marks attacks that re-score the residual graph.
	AttackCapAdaptive = attackreg.CapAdaptive
)

// Sweep evaluation modes.
const (
	// SweepAuto picks the incremental path for plain LCC curves and the
	// masked path otherwise.
	SweepAuto = robust.ModeAuto
	// SweepMasked re-evaluates masked accumulators at every fraction.
	SweepMasked = robust.ModeMasked
	// SweepIncremental replays the schedule backwards through a reverse
	// union-find (LCC only).
	SweepIncremental = robust.ModeIncremental
)

// Timeline event kinds and evaluation modes.
const (
	// TimelineFailNode removes a node and its incident edges.
	TimelineFailNode = robust.OpFailNode
	// TimelineFailEdge removes one edge; endpoints stay present.
	TimelineFailEdge = robust.OpFailEdge
	// TimelineRepairNode restores a failed node.
	TimelineRepairNode = robust.OpRepairNode
	// TimelineRepairEdge restores a failed edge.
	TimelineRepairEdge = robust.OpRepairEdge
	// TimelineAuto picks the epoch engine for plain LCC trajectories
	// and the masked path otherwise.
	TimelineAuto = robust.TimelineAuto
	// TimelineMasked re-evaluates every metric from scratch per event.
	TimelineMasked = robust.TimelineMasked
	// TimelineEpoch forces the epoch-based dynamic-connectivity engine
	// (LCC only).
	TimelineEpoch = robust.TimelineEpoch
)

// AttackNames lists every registered attack name, sorted.
func AttackNames() []string { return attackreg.Names() }

// RegisterAttack adds a custom attack to the default registry.
func RegisterAttack(a Attack) error { return attackreg.Register(a) }

// LookupAttack resolves an attack name (legacy aliases included) in the
// default registry.
func LookupAttack(name string) (Attack, error) { return attackreg.Lookup(name) }

// RunRobustnessSweep executes one registry-driven sweep spec: the named
// attack's schedule is computed per trial and the metric set traced
// along it, with curves byte-identical for any worker count and either
// evaluation path. Pass a pre-frozen CSR to skip re-freezing (nil
// freezes internally).
func RunRobustnessSweep(ctx context.Context, g *Graph, c *CSR, spec RobustnessSweepSpec, seed int64) ([]RobustnessMetricCurve, error) {
	return robust.RunSweepContext(ctx, g, c, spec, seed)
}

// RunConnectivityTimeline traces a metric set along a failure/repair
// timeline over a frozen snapshot: Values[0] is the intact topology,
// Values[k] the state after the first k events. Monotone runs of fails
// or repairs are replayed through one near-linear reverse union-find
// pass each (the epoch-based dynamic-connectivity engine), pinned
// bit-identical to per-event from-scratch evaluation by the parity
// tests. See also ScenarioTimelineSpec for the declarative surface.
func RunConnectivityTimeline(ctx context.Context, c *CSR, events []TimelineEvent, metrics []string, mode TimelineMode, seed int64) ([]RobustnessMetricCurve, error) {
	return robust.RunTimelineContext(ctx, c, events, metrics, mode, seed)
}

// ParseTimelineMode maps a timeline mode name ("auto", "masked",
// "epoch") to its TimelineMode.
func ParseTimelineMode(name string) (TimelineMode, error) {
	return robust.ParseTimelineMode(name)
}

// RobustnessAttackGap summarizes robust-yet-fragile for any registered
// attack: the mean gap between the random-failure curve and the named
// attack's curve over the given fractions.
func RobustnessAttackGap(ctx context.Context, g *Graph, c *CSR, attack string, p AttackParams, fracs []float64, trials int, seed int64, workers int) (float64, error) {
	return robust.AttackGapContext(ctx, g, c, attack, p, fracs, trials, seed, workers)
}

// ComputeProfile evaluates the full [30]-style metric suite.
func ComputeProfile(g *Graph, seed int64) Profile { return metrics.ComputeProfile(g, seed) }

// ComputeProfileContext is ComputeProfile with cancellation and an
// optional pre-frozen snapshot (nil freezes internally).
func ComputeProfileContext(ctx context.Context, g *Graph, c *CSR, seed int64, workers int) (Profile, error) {
	return metrics.ProfileContext(ctx, g, c, seed, workers)
}

// ClassifyTail decides power-law vs exponential on a degree sample.
func ClassifyTail(degrees []int) TailClassification { return stats.ClassifyTail(degrees) }

// RouteShortestPaths routes demands ignoring capacity.
func RouteShortestPaths(g *Graph, demands []Demand) (*RouteResult, error) {
	return routing.RouteShortestPaths(g, demands)
}

// RouteShortestPathsContext is RouteShortestPaths with cancellation and
// an optional pre-frozen snapshot (nil freezes internally).
func RouteShortestPathsContext(ctx context.Context, g *Graph, c *CSR, demands []Demand) (*RouteResult, error) {
	return routing.RouteShortestPathsContext(ctx, g, c, demands)
}

// RouteCapacitated routes demands with greedy admission control.
func RouteCapacitated(g *Graph, demands []Demand) (*RouteResult, error) {
	return routing.RouteCapacitated(g, demands)
}

// RouteCapacitatedContext is RouteCapacitated with cancellation and an
// optional pre-frozen snapshot (nil freezes internally).
func RouteCapacitatedContext(ctx context.Context, g *Graph, c *CSR, demands []Demand) (*RouteResult, error) {
	return routing.RouteCapacitatedContext(ctx, g, c, demands)
}

// MaxMinResult is the outcome of fair rate allocation.
type MaxMinResult = routing.MaxMinResult

// MaxMinFair computes the max-min fair (water-filling) rate allocation
// of elastic demands over their shortest paths.
func MaxMinFair(g *Graph, demands []Demand) (*MaxMinResult, error) {
	return routing.MaxMinFair(g, demands)
}

// MaxMinFairContext is MaxMinFair with cancellation and an optional
// pre-frozen snapshot (nil freezes internally).
func MaxMinFairContext(ctx context.Context, g *Graph, c *CSR, demands []Demand) (*MaxMinResult, error) {
	return routing.MaxMinFairContext(ctx, g, c, demands)
}

// ExactAccessOPT computes the exact optimal buy-at-bulk tree cost for a
// tiny instance (<= access.MaxExactCustomers customers) by exhaustive
// Prüfer enumeration — the ground truth the heuristics are validated
// against.
func ExactAccessOPT(in *AccessInstance) (float64, []int, error) {
	return access.ExactTreeOPT(in)
}

// RobustnessSweep reports the largest-component curve under removals.
func RobustnessSweep(g *Graph, strat AttackStrategy, fracs []float64, trials int, seed int64) ([]robust.SweepPoint, error) {
	return robust.Sweep(g, strat, fracs, trials, seed)
}

// RobustnessSweepContext is RobustnessSweep with cancellation, an
// optional pre-frozen snapshot (nil freezes internally), and an
// explicit worker bound (<= 0 = GOMAXPROCS).
func RobustnessSweepContext(ctx context.Context, g *Graph, c *CSR, strat AttackStrategy, fracs []float64, trials int, seed int64, workers int) ([]robust.SweepPoint, error) {
	return robust.SweepContext(ctx, g, c, strat, fracs, trials, seed, workers)
}

// RobustnessMetricCurve is one masked metric's values across a sweep's
// removal fractions.
type RobustnessMetricCurve = robust.MetricCurve

// RobustnessMetricSweep generalizes the robustness sweep to any set of
// masked-capable registry metrics (MetricCapMasked, e.g. "lcc",
// "mean-degree"): each metric is re-evaluated under the same mask
// schedule, reusing one accumulator per trial across attack steps.
func RobustnessMetricSweep(ctx context.Context, g *Graph, c *CSR, strat AttackStrategy, fracs []float64, trials int, seed int64, workers int, metricNames []string) ([]RobustnessMetricCurve, error) {
	return robust.MetricSweepContext(ctx, g, c, strat, fracs, trials, seed, workers, metricNames)
}

// ParseAttackStrategy maps a strategy name ("random", "degree",
// "betweenness", "adaptive-degree", with or without the
// "-attack"/"-failure" suffix) to its AttackStrategy.
func ParseAttackStrategy(name string) (AttackStrategy, error) {
	return robust.ParseStrategy(name)
}

// Experiments: the E1–E9 harness used by cmd/experiments and the benches.
type (
	// ExperimentOptions tunes experiment scale and seeds.
	ExperimentOptions = experiments.Options
	// ExperimentTable is one experiment's formatted result.
	ExperimentTable = experiments.Table
	// ExperimentRunner is one experiment entry point.
	ExperimentRunner = experiments.Runner
)

// Experiments returns all experiment runners E1–E10 in order.
func Experiments() []ExperimentRunner { return experiments.All() }

// Anonymization (§5 research agenda).
type (
	// AnonymizeOptions configure topology scrubbing.
	AnonymizeOptions = anonymize.Options
	// TopologySummary is the aggregate, identity-free characterization of
	// a topology a provider could publish.
	TopologySummary = anonymize.Summary
)

// Anonymize returns an identity-scrubbed copy of g; connectivity (and so
// every structural metric) is preserved exactly.
func Anonymize(g *Graph, opts AnonymizeOptions) *Graph { return anonymize.Scrub(g, opts) }

// SummarizeTopology computes the publishable aggregate characterization.
func SummarizeTopology(g *Graph, seed int64) TopologySummary { return anonymize.Summarize(g, seed) }

// Validation (§5 research agenda).
type (
	// MetricVector is the standardized topology characterization used
	// for model validation.
	MetricVector = validate.MetricVector
	// TopologyComparison scores a candidate against a reference.
	TopologyComparison = validate.Comparison
	// Interval is a bootstrap confidence interval.
	Interval = validate.Interval
)

// MeasureTopology computes the validation metric vector.
func MeasureTopology(g *Graph, seed int64) MetricVector { return validate.Measure(g, seed) }

// CompareTopologies scores how structurally dissimilar two topologies
// are across the full metric suite (plus degree-distribution KS).
func CompareTopologies(ref, cand *Graph, seed int64) TopologyComparison {
	return validate.Compare(ref, cand, seed)
}

// ResilienceCI bootstraps a confidence interval for the resilience
// metric, so comparisons can be judged against sampling noise.
func ResilienceCI(g *Graph, reps int, seed int64) Interval {
	return validate.ResilienceCI(g, reps, seed)
}
