package hotgen

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Kernel parity suite: the direction-optimizing BFS and the bucketed
// Dijkstra must be bit-for-bit interchangeable with the reference
// kernels (BFSTopDown, DijkstraHeap) on every topology model of the
// repository — including masked variants, i.e. the subgraphs the
// robustness sweeps actually traverse after an attack has removed the
// highest-degree nodes. Run under -race -shuffle=on in CI.

type parityModel struct {
	name  string
	build func(seed int64) (*graph.Graph, error)
}

func parityModels() []parityModel {
	return []parityModel{
		{"ba", func(seed int64) (*graph.Graph, error) { return gen.BarabasiAlbert(400, 2, seed) }},
		{"er-gnm", func(seed int64) (*graph.Graph, error) { return gen.ErdosRenyiGNM(400, 900, seed) }},
		{"waxman", func(seed int64) (*graph.Graph, error) { return gen.Waxman(300, 0.1, 0.5, seed) }},
		{"fkp", func(seed int64) (*graph.Graph, error) { return core.FKP(core.FKPConfig{N: 300, Alpha: 8, Seed: seed}) }},
	}
}

// degreeMask returns the ids of the ceil(frac*n) highest-degree nodes
// (ties by id), the schedule a degree-targeted attack removes first.
func degreeMask(g *graph.Graph, frac float64) []int {
	n := g.NumNodes()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	deg := g.Degrees()
	sort.Slice(ids, func(a, b int) bool {
		if deg[ids[a]] != deg[ids[b]] {
			return deg[ids[a]] > deg[ids[b]]
		}
		return ids[a] < ids[b]
	})
	k := int(math.Ceil(frac * float64(n)))
	return append([]int(nil), ids[:k]...)
}

func checkKernelParity(t *testing.T, label string, g *graph.Graph) {
	t.Helper()
	c := g.Freeze()
	n := c.NumNodes()
	ref := graph.GetWorkspace(n)
	defer ref.Release()
	ws := graph.GetWorkspace(n)
	defer ws.Release()
	stride := n/12 + 1
	for src := 0; src < n; src += stride {
		c.BFSTopDown(ref, src)
		c.BFS(ws, src)
		refReach, reach := 0, 0
		for v := 0; v < n; v++ {
			if ref.Hop[v] != ws.Hop[v] {
				t.Fatalf("%s src %d: hop[%d] = %d dir-opt vs %d top-down", label, src, v, ws.Hop[v], ref.Hop[v])
			}
			if ref.Parent[v] != ws.Parent[v] {
				t.Fatalf("%s src %d: bfs parent[%d] = %d dir-opt vs %d top-down", label, src, v, ws.Parent[v], ref.Parent[v])
			}
			if ref.Hop[v] >= 0 {
				refReach++
			}
			if ws.Hop[v] >= 0 {
				reach++
			}
		}
		if refReach != reach {
			t.Fatalf("%s src %d: component size %d dir-opt vs %d top-down", label, src, reach, refReach)
		}

		c.DijkstraHeap(ref, src)
		c.Dijkstra(ws, src)
		for v := 0; v < n; v++ {
			if ref.Dist[v] != ws.Dist[v] {
				t.Fatalf("%s src %d: dist[%d] = %v bucketed vs %v heap", label, src, v, ws.Dist[v], ref.Dist[v])
			}
			if ref.Parent[v] != ws.Parent[v] || ref.ParentEdge[v] != ws.ParentEdge[v] {
				t.Fatalf("%s src %d: sp tree at %d = (%d,%d) bucketed vs (%d,%d) heap",
					label, src, v, ws.Parent[v], ws.ParentEdge[v], ref.Parent[v], ref.ParentEdge[v])
			}
		}
	}
}

func TestKernelParityAcrossModels(t *testing.T) {
	for _, m := range parityModels() {
		for _, seed := range []int64{1, 2} {
			g, err := m.build(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", m.name, seed, err)
			}
			checkKernelParity(t, m.name, g)

			// Masked variant: the post-attack residual graph after the top
			// 10% of nodes by degree are gone — typically fragmented, so
			// this also covers multi-component traversal.
			sub, _ := g.RemoveNodes(degreeMask(g, 0.10))
			checkKernelParity(t, m.name+"/masked", sub)
		}
	}
}

// checkBFSVariantsParity pins every BFS execution strategy — the sharded
// parallel bottom-up at worker counts 1/2/8 and cache-reordered
// snapshots (degree-descending and RCM) — to the serial
// direction-optimizing traversal on the plain snapshot: hops, parents,
// and the bottom-up level count, bit for bit.
func checkBFSVariantsParity(t *testing.T, label string, g *graph.Graph) {
	t.Helper()
	c := g.Freeze()
	n := c.NumNodes()
	if n == 0 {
		return
	}
	ref := graph.GetWorkspace(n)
	defer ref.Release()
	ws := graph.GetWorkspace(n)
	defer ws.Release()

	type variant struct {
		name string
		run  func(ws *graph.Workspace, src int)
	}
	var variants []variant
	for _, w := range []int{1, 2, 8} {
		w := w
		variants = append(variants, variant{
			name: fmt.Sprintf("par%d", w),
			run:  func(ws *graph.Workspace, src int) { c.BFSParallel(ws, src, w) },
		})
	}
	for _, m := range []struct {
		name string
		mode graph.ReorderMode
	}{{"degree", graph.ReorderDegree}, {"rcm", graph.ReorderRCM}} {
		rc := g.FreezeWithOptions(graph.FreezeOptions{Reorder: m.mode})
		variants = append(variants, variant{
			name: "reorder-" + m.name,
			run:  rc.BFS,
		})
	}

	stride := n/10 + 1
	for src := 0; src < n; src += stride {
		c.BFS(ref, src)
		for _, v := range variants {
			v.run(ws, src)
			if ws.BFSBottomUpLevels != ref.BFSBottomUpLevels {
				t.Fatalf("%s/%s src %d: %d bottom-up levels, serial dir-opt %d",
					label, v.name, src, ws.BFSBottomUpLevels, ref.BFSBottomUpLevels)
			}
			for u := 0; u < n; u++ {
				if ref.Hop[u] != ws.Hop[u] || ref.Parent[u] != ws.Parent[u] {
					t.Fatalf("%s/%s src %d: node %d = (hop %d, parent %d), serial dir-opt (%d, %d)",
						label, v.name, src, u, ws.Hop[u], ws.Parent[u], ref.Hop[u], ref.Parent[u])
				}
			}
		}
	}
}

func TestParallelReorderedBFSParityAcrossModels(t *testing.T) {
	for _, m := range parityModels() {
		for _, seed := range []int64{1, 2} {
			g, err := m.build(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", m.name, seed, err)
			}
			checkBFSVariantsParity(t, m.name, g)
			sub, _ := g.RemoveNodes(degreeMask(g, 0.10))
			checkBFSVariantsParity(t, m.name+"/masked", sub)
		}
	}
}

// checkDijkstraVariantsParity pins every Dijkstra execution strategy to
// the heap reference on the plain snapshot: the parallel bucketed
// kernel at worker counts 1/2/8 on the plain, degree-reordered, and
// RCM-reordered snapshots (the weighted kernels read the original-order
// arrays, so a reordering must be invisible to them), plus the serial
// bucketed kernel. dist, parent, and parentEdge, bit for bit.
func checkDijkstraVariantsParity(t *testing.T, label string, g *graph.Graph, stride int) {
	t.Helper()
	c := g.Freeze()
	n := c.NumNodes()
	if n == 0 {
		return
	}
	ref := graph.GetWorkspace(n)
	defer ref.Release()
	ws := graph.GetWorkspace(n)
	defer ws.Release()

	type variant struct {
		name string
		run  func(ws *graph.Workspace, src int)
	}
	variants := []variant{{"bucket-serial", func(ws *graph.Workspace, src int) { c.DijkstraParallel(ws, src, 1) }}}
	snaps := []struct {
		name string
		c    *graph.CSR
	}{
		{"plain", c},
		{"degree", g.FreezeWithOptions(graph.FreezeOptions{Reorder: graph.ReorderDegree})},
		{"rcm", g.FreezeWithOptions(graph.FreezeOptions{Reorder: graph.ReorderRCM})},
	}
	for _, s := range snaps {
		for _, w := range []int{2, 8} {
			s, w := s, w
			variants = append(variants, variant{
				name: fmt.Sprintf("%s/par%d", s.name, w),
				run:  func(ws *graph.Workspace, src int) { s.c.DijkstraParallel(ws, src, w) },
			})
		}
	}

	if stride <= 0 {
		stride = n/10 + 1
	}
	for src := 0; src < n; src += stride {
		c.DijkstraHeap(ref, src)
		for _, v := range variants {
			v.run(ws, src)
			for u := 0; u < n; u++ {
				if ref.Dist[u] != ws.Dist[u] || ref.Parent[u] != ws.Parent[u] || ref.ParentEdge[u] != ws.ParentEdge[u] {
					t.Fatalf("%s/%s src %d: node %d = (%v, %d, %d), heap (%v, %d, %d)",
						label, v.name, src, u, ws.Dist[u], ws.Parent[u], ws.ParentEdge[u],
						ref.Dist[u], ref.Parent[u], ref.ParentEdge[u])
				}
			}
		}
	}
}

func TestParallelDijkstraParityAcrossModels(t *testing.T) {
	for _, m := range parityModels() {
		for _, seed := range []int64{1, 2} {
			g, err := m.build(seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", m.name, seed, err)
			}
			checkDijkstraVariantsParity(t, m.name, g, 0)
			sub, _ := g.RemoveNodes(degreeMask(g, 0.10))
			checkDijkstraVariantsParity(t, m.name+"/masked", sub, 0)
		}
	}
}

// TestParallelDijkstraParityLargeFrontier runs the same pin on a
// 30k-node unit-weight BA graph: with unit weights a whole BFS level
// lands in one bucket window, so the peak frontier comfortably exceeds
// the parallel kernel's minimum-frontier floor and the sharded
// scan/merge path — not just the serial per-window fallback — is what
// actually executes.
func TestParallelDijkstraParityLargeFrontier(t *testing.T) {
	g, err := gen.BarabasiAlbert(30_000, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkDijkstraVariantsParity(t, "ba-30k-unit", g, 7001)
}

// TestMaskedLCCTrajectoryMatchesSubgraphs walks a degree-attack removal
// schedule on each model and pins the masked LCC kernel (what the
// robustness sweeps measure) to materialized residual subgraphs.
func TestMaskedLCCTrajectoryMatchesSubgraphs(t *testing.T) {
	for _, m := range parityModels() {
		g, err := m.build(1)
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		c := g.Freeze()
		ws := graph.GetWorkspace(c.NumNodes())
		defer ws.Release()
		removed := make([]bool, g.NumNodes())
		for _, frac := range []float64{0, 0.05, 0.2, 0.5} {
			ids := degreeMask(g, frac)
			for i := range removed {
				removed[i] = false
			}
			for _, u := range ids {
				removed[u] = true
			}
			sub, _ := g.RemoveNodes(ids)
			want := 0
			if sub.NumNodes() > 0 {
				want = sub.LargestComponentSize()
			}
			if got := c.LargestComponentMasked(ws, removed); got != want {
				t.Fatalf("%s frac %v: masked LCC %d vs subgraph %d", m.name, frac, got, want)
			}
		}
	}
}
