package hotgen

// Benchmark harness: one benchmark per experiment table in DESIGN.md §4
// (BenchmarkE1... through BenchmarkE11...), each regenerating the
// corresponding paper claim at reduced-but-representative scale, plus
// micro-benchmarks of the algorithmic hot paths.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benches report the same rows that cmd/experiments
// prints, so `-bench E2 -v` doubles as a quick reproduction check.

import (
	"runtime"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/robust"
	"repro/internal/routing"
	"repro/internal/stats"
)

// benchOpts scales experiments so each bench iteration is ~100ms-1s.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 7, Scale: 0.25, Reps: 2}
}

func runExperiment(b *testing.B, run func(experiments.Options) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1FKPSweep(b *testing.B)     { runExperiment(b, experiments.E1FKPSweep) }
func BenchmarkE2BuyAtBulk(b *testing.B)    { runExperiment(b, experiments.E2BuyAtBulk) }
func BenchmarkE3CostRatios(b *testing.B)   { runExperiment(b, experiments.E3CostRatios) }
func BenchmarkE4CostVsProfit(b *testing.B) { runExperiment(b, experiments.E4CostVsProfit) }
func BenchmarkE5NationalISP(b *testing.B)  { runExperiment(b, experiments.E5NationalISP) }
func BenchmarkE6Peering(b *testing.B)      { runExperiment(b, experiments.E6Peering) }
func BenchmarkE7GeneratorComparison(b *testing.B) {
	runExperiment(b, experiments.E7GeneratorComparison)
}
func BenchmarkE8Robustness(b *testing.B)   { runExperiment(b, experiments.E8Robustness) }
func BenchmarkE9Redundancy(b *testing.B)   { runExperiment(b, experiments.E9Redundancy) }
func BenchmarkE10Level2Rings(b *testing.B) { runExperiment(b, experiments.E10Level2Rings) }
func BenchmarkE11Performance(b *testing.B) { runExperiment(b, experiments.E11Performance) }

// --- Micro-benchmarks of the algorithmic hot paths ----------------------

func BenchmarkFKPGrowth1k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.FKP(core.FKPConfig{N: 1000, Alpha: 8, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFKPGrowth4k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.FKP(core.FKPConfig{N: 4000, Alpha: 8, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMMPIncremental1k(b *testing.B) {
	in, err := access.RandomInstance(access.InstanceConfig{
		N: 1000, Seed: 1, DemandMin: 1, DemandMax: 8, RootAtCenter: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := access.MMPIncremental(in, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleAndAugment1k(b *testing.B) {
	in, err := access.RandomInstance(access.InstanceConfig{
		N: 1000, Seed: 1, DemandMin: 1, DemandMax: 8, RootAtCenter: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := access.SampleAndAugment(in, int64(i), 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarabasiAlbert10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.BarabasiAlbert(10000, 2, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTailClassification(b *testing.B) {
	g, err := gen.BarabasiAlbert(5000, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	deg := g.Degrees()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.ClassifyTail(deg)
	}
}

func BenchmarkBetweenness500(b *testing.B) {
	g, err := gen.BarabasiAlbert(500, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Betweenness()
	}
}

func BenchmarkMetricProfile(b *testing.B) {
	g, err := gen.BarabasiAlbert(800, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.ComputeProfile(g, 1)
	}
}

func BenchmarkMaxFlowBackbone(b *testing.B) {
	g, err := gen.ErdosRenyiGNM(300, 900, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := range g.Edges() {
		g.Edge(i).Capacity = 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaxFlow(0, 299)
	}
}

func BenchmarkMaxMinFair(b *testing.B) {
	g, err := gen.BarabasiAlbert(400, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := range g.Edges() {
		g.Edge(i).Capacity = 10
	}
	demands := make([]routing.Demand, 0, 200)
	for i := 0; i < 200; i++ {
		demands = append(demands, routing.Demand{Src: i, Dst: 399 - i, Volume: 5})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.MaxMinFair(g, demands); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactAccessOPT(b *testing.B) {
	in, err := access.RandomInstance(access.InstanceConfig{
		N: 6, Seed: 1, DemandMin: 1, DemandMax: 8, RootAtCenter: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := access.ExactTreeOPT(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRobustnessSweep(b *testing.B) {
	g, err := gen.BarabasiAlbert(800, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	fracs := []float64{0.05, 0.1, 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := robust.Sweep(g, robust.DegreeAttack, fracs, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- CSR kernel micro-benchmarks ----------------------------------------
//
// These pairs quantify the two tentpole effects: the CSR layout vs the
// slice-of-slices adjacency, and pooled workspaces vs per-call
// allocation. The pooled variants must report 0 allocs/op.

// benchGraph is a 4k-node weighted graph shared by the kernel benches.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.BarabasiAlbert(4000, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := range g.Edges() {
		g.Edge(i).Weight = float64(i%17) + 1
	}
	return g
}

func BenchmarkDijkstraAdjacencyAlloc(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(i % g.NumNodes())
	}
}

func BenchmarkDijkstraCSRPooled(b *testing.B) {
	g := benchGraph(b)
	c := g.Freeze()
	ws := graph.GetWorkspace(c.NumNodes())
	defer ws.Release()
	c.Dijkstra(ws, 0) // warm the heap buffers before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Dijkstra(ws, i%c.NumNodes())
	}
}

func BenchmarkBFSAdjacencyAlloc(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % g.NumNodes())
	}
}

func BenchmarkBFSCSRPooled(b *testing.B) {
	g := benchGraph(b)
	c := g.Freeze()
	ws := graph.GetWorkspace(c.NumNodes())
	defer ws.Release()
	c.BFS(ws, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BFS(ws, i%c.NumNodes())
	}
}

// --- Worker-pool scaling benches ----------------------------------------
//
// Sequential vs all-cores variants of the profile suite and a full
// experiment; on a multi-core runner the parallel variants should scale
// with GOMAXPROCS while producing byte-identical results (asserted by
// TestWorkersDeterminism). The profile pair is the clean comparison: its
// workers value reaches every metric family. The E11 pair varies only
// the replication fan-out — routing parallelism inside each policy is
// always on — so its ratio understates the kernel's scaling.

func BenchmarkProfileSequential(b *testing.B) {
	g, err := gen.BarabasiAlbert(800, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.ComputeProfileParallel(g, 1, 1)
	}
}

func BenchmarkProfileParallel(b *testing.B) {
	g, err := gen.BarabasiAlbert(800, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.ComputeProfileParallel(g, 1, runtime.NumCPU())
	}
}

func BenchmarkE11Workers1(b *testing.B) {
	opts := benchOpts()
	opts.Workers = 1
	runWorkersExperiment(b, opts)
}

func BenchmarkE11WorkersAll(b *testing.B) {
	opts := benchOpts()
	opts.Workers = runtime.NumCPU()
	runWorkersExperiment(b, opts)
}

func runWorkersExperiment(b *testing.B, opts experiments.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E11Performance(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}
