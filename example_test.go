package hotgen_test

import (
	"fmt"
	"log"

	hotgen "repro"
)

// The FKP model in its three alpha regimes — the §3.1 spectrum.
func Example_fkpRegimes() {
	for _, alpha := range []float64{0.3, 8, 8000} {
		g, err := hotgen.FKP(hotgen.FKPConfig{N: 2000, Alpha: alpha, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alpha=%-6g %s\n", alpha, hotgen.Classify(g))
	}
	// Output:
	// alpha=0.3    star
	// alpha=8      power-law tree
	// alpha=8000   exponential tree
}

// Buy-at-bulk access design beats both naive extremes (§4.1).
func Example_buyAtBulk() {
	in, err := hotgen.RandomAccessInstance(hotgen.AccessInstanceConfig{
		N: 500, Seed: 7, DemandMin: 1, DemandMax: 16, RootAtCenter: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	mmp, err := hotgen.MMPIncremental(in, 1)
	if err != nil {
		log.Fatal(err)
	}
	star, err := hotgen.DirectStar(in)
	if err != nil {
		log.Fatal(err)
	}
	mst, err := hotgen.SingleCableMST(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree:", mmp.Graph.IsTree())
	fmt.Println("beats star:", mmp.TotalCost() < star.TotalCost())
	fmt.Println("beats thin-MST:", mmp.TotalCost() < mst.TotalCost())
	// Output:
	// tree: true
	// beats star: true
	// beats thin-MST: true
}

// The generalized HOT framework: objectives + constraints ⇒ topology.
func Example_hotFramework() {
	g, _, err := hotgen.GrowHOT(hotgen.HOTConfig{
		N:    1000,
		Seed: 3,
		Terms: []hotgen.ObjectiveTerm{
			hotgen.DistanceTerm{Weight: 0.3}, // star-inducing tradeoff...
			hotgen.CentralityTerm{Weight: 1},
		},
		Constraints: []hotgen.Constraint{
			hotgen.MaxDegreeConstraint{Max: 16}, // ...vetoed by router ports
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("max degree:", g.MaxDegree())
	fmt.Println("still a tree:", g.IsTree())
	// Output:
	// max degree: 16
	// still a tree: true
}
