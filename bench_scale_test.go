package hotgen

// Scaling benchmark tier: the 100k-node slice of the million-node kernel
// benchmarks (BenchmarkScale*). These are too heavy for the per-commit
// bench smoke, so they skip themselves under -short; CI runs them in the
// scheduled bench-scale job, and scripts/bench.sh includes them in the
// recorded baseline. The 1M-node and HOT-grown slices are heavier still
// and live behind the slowbench build tag (bench_scale_slow_test.go).
//
// Each kernel pair (direction-optimizing vs top-down BFS, bucketed vs
// heap Dijkstra) is benchmarked on the same cached topology, so the
// recorded baseline doubles as the measured speedup of the optimized
// kernel at scale.

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/routing"
)

// scaleTopo is a cached benchmark topology: graphs this size take longer
// to generate than to traverse, so they are built once per process and
// shared by every benchmark that asks for the same key.
type scaleTopo struct {
	g *graph.Graph
	c *graph.CSR
}

var (
	scaleMu    sync.Mutex
	scaleTopos = map[string]*scaleTopo{}
)

func scaleTopoFor(b *testing.B, key string, build func() (*graph.Graph, error)) *scaleTopo {
	b.Helper()
	scaleMu.Lock()
	defer scaleMu.Unlock()
	if t, ok := scaleTopos[key]; ok {
		return t
	}
	g, err := build()
	if err != nil {
		b.Fatalf("build %s: %v", key, err)
	}
	t := &scaleTopo{g: g, c: g.Freeze()}
	scaleTopos[key] = t
	return t
}

func skipUnlessScale(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("scale tier skipped in -short mode")
	}
}

func ba100k(b *testing.B) *scaleTopo {
	return scaleTopoFor(b, "ba-100k", func() (*graph.Graph, error) { return gen.BarabasiAlbert(100_000, 2, 1) })
}

func er100k(b *testing.B) *scaleTopo {
	return scaleTopoFor(b, "er-100k", func() (*graph.Graph, error) { return gen.ErdosRenyiGNM(100_000, 200_000, 1) })
}

// hot100k is an optimization-grown topology at the 100k tier — feasible
// here (rather than behind slowbench) because growth runs on the grid
// index's ~O(n log n) path.
func hot100k(b *testing.B) *scaleTopo {
	return scaleTopoFor(b, "hot-100k", func() (*graph.Graph, error) {
		g, _, err := core.GrowHOT(core.HOTConfig{
			N:               100_000,
			Seed:            1,
			Terms:           []core.ObjectiveTerm{core.DistanceTerm{Weight: 8}, core.CentralityTerm{Weight: 1}},
			LinksPerArrival: 2,
		})
		return g, err
	})
}

// reorderedCSR caches cache-reordered snapshots of a benchmark topology
// alongside the plain ones.
var (
	scaleReorderMu sync.Mutex
	scaleReorders  = map[string]*graph.CSR{}
)

func reorderedCSR(b *testing.B, key string, t *scaleTopo, mode graph.ReorderMode) *graph.CSR {
	b.Helper()
	scaleReorderMu.Lock()
	defer scaleReorderMu.Unlock()
	if c, ok := scaleReorders[key]; ok {
		return c
	}
	c := t.g.FreezeWithOptions(graph.FreezeOptions{Reorder: mode})
	scaleReorders[key] = c
	return c
}

// benchSources picks a deterministic rotation of BFS/SSSP sources so
// successive iterations do not hit one warm source.
func benchSources(n int, seed int64) [64]int {
	var srcs [64]int
	r := rand.New(rand.NewSource(seed))
	for i := range srcs {
		srcs[i] = r.Intn(n)
	}
	return srcs
}

func benchBFS(b *testing.B, t *scaleTopo, topDown bool) {
	srcs := benchSources(t.c.NumNodes(), 42)
	ws := graph.GetWorkspace(t.c.NumNodes())
	defer ws.Release()
	// Untimed warmup: fault in the workspace pages and the CSR arrays so
	// -benchtime 1x numbers compare kernels, not first-touch costs.
	t.c.BFS(ws, srcs[0])
	t.c.BFSTopDown(ws, srcs[0])
	b.ReportAllocs()
	b.ResetTimer()
	bottomUp := 0
	for i := 0; i < b.N; i++ {
		src := srcs[i%len(srcs)]
		if topDown {
			t.c.BFSTopDown(ws, src)
		} else {
			t.c.BFS(ws, src)
			bottomUp += ws.BFSBottomUpLevels
		}
	}
	if !topDown {
		b.ReportMetric(float64(bottomUp)/float64(b.N), "bu-levels/op")
	}
}

// benchBFSParallel measures the sharded parallel bottom-up BFS on the
// same source rotation as benchBFS. workers = 0 uses GOMAXPROCS, so a
// `-cpu 1,4` run produces one serial and one 4-worker leg; the output
// is bit-identical to the serial traversal either way.
func benchBFSParallel(b *testing.B, t *scaleTopo, workers int) {
	srcs := benchSources(t.c.NumNodes(), 42)
	ws := graph.GetWorkspace(t.c.NumNodes())
	defer ws.Release()
	t.c.BFSParallel(ws, srcs[0], workers)
	b.ReportAllocs()
	b.ResetTimer()
	bottomUp := 0
	for i := 0; i < b.N; i++ {
		t.c.BFSParallel(ws, srcs[i%len(srcs)], workers)
		bottomUp += ws.BFSBottomUpLevels
	}
	b.ReportMetric(float64(bottomUp)/float64(b.N), "bu-levels/op")
}

// benchBFSOn is benchBFS against an explicit (e.g. reordered) snapshot.
func benchBFSOn(b *testing.B, c *graph.CSR) {
	srcs := benchSources(c.NumNodes(), 42)
	ws := graph.GetWorkspace(c.NumNodes())
	defer ws.Release()
	c.BFS(ws, srcs[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.BFS(ws, srcs[i%len(srcs)])
	}
}

// benchHOTGrow measures whole-topology growth (the generator hot path)
// with a forced candidate-scan implementation; the Grid/Exhaustive pair
// at the same N records the grid index's measured speedup.
func benchHOTGrow(b *testing.B, n int, search core.GrowthSearch) {
	cfg := core.HOTConfig{
		N:               n,
		Seed:            1,
		Terms:           []core.ObjectiveTerm{core.DistanceTerm{Weight: 8}, core.CentralityTerm{Weight: 1}},
		LinksPerArrival: 2,
		Search:          search,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.GrowHOT(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDijkstra(b *testing.B, t *scaleTopo, heap bool) {
	srcs := benchSources(t.c.NumNodes(), 43)
	ws := graph.GetWorkspace(t.c.NumNodes())
	defer ws.Release()
	// Workers pinned to 1: this pair is the serial bucketed-vs-heap
	// comparison, so the bucket leg must not drift into the parallel
	// kernel when the snapshot crosses the auto-engagement threshold.
	t.c.DijkstraParallel(ws, srcs[0], 1)
	t.c.DijkstraHeap(ws, srcs[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if heap {
			t.c.DijkstraHeap(ws, srcs[i%len(srcs)])
		} else {
			t.c.DijkstraParallel(ws, srcs[i%len(srcs)], 1)
		}
	}
}

// benchDijkstraParallel measures the sharded parallel bucketed Dijkstra
// at a forced width (0 = GOMAXPROCS, the width CSR.Dijkstra auto-engages
// above dijkstraParallelMinNodes). Pairs with benchDijkstra's serial
// bucket leg for the speedup ratio.
func benchDijkstraParallel(b *testing.B, t *scaleTopo, workers int) {
	srcs := benchSources(t.c.NumNodes(), 43)
	ws := graph.GetWorkspace(t.c.NumNodes())
	defer ws.Release()
	t.c.DijkstraParallel(ws, srcs[0], workers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.c.DijkstraParallel(ws, srcs[i%len(srcs)], workers)
	}
}

func BenchmarkScaleBFSDirOptBA100k(b *testing.B) {
	skipUnlessScale(b)
	benchBFS(b, ba100k(b), false)
}

func BenchmarkScaleBFSTopDownBA100k(b *testing.B) {
	skipUnlessScale(b)
	benchBFS(b, ba100k(b), true)
}

func BenchmarkScaleBFSDirOptER100k(b *testing.B) {
	skipUnlessScale(b)
	benchBFS(b, er100k(b), false)
}

func BenchmarkScaleBFSTopDownER100k(b *testing.B) {
	skipUnlessScale(b)
	benchBFS(b, er100k(b), true)
}

func BenchmarkScaleBFSParallelBA100k(b *testing.B) {
	skipUnlessScale(b)
	benchBFSParallel(b, ba100k(b), 0)
}

func BenchmarkScaleBFSDirOptBA100kRCM(b *testing.B) {
	skipUnlessScale(b)
	benchBFSOn(b, reorderedCSR(b, "ba-100k-rcm", ba100k(b), graph.ReorderRCM))
}

func BenchmarkScaleBFSDirOptER100kRCM(b *testing.B) {
	skipUnlessScale(b)
	benchBFSOn(b, reorderedCSR(b, "er-100k-rcm", er100k(b), graph.ReorderRCM))
}

func BenchmarkScaleBFSDirOptHOT100k(b *testing.B) {
	skipUnlessScale(b)
	benchBFS(b, hot100k(b), false)
}

func BenchmarkScaleBFSTopDownHOT100k(b *testing.B) {
	skipUnlessScale(b)
	benchBFS(b, hot100k(b), true)
}

func BenchmarkScaleHOTGrow25kGrid(b *testing.B) {
	skipUnlessScale(b)
	benchHOTGrow(b, 25_000, core.SearchGrid)
}

func BenchmarkScaleHOTGrow25kExhaustive(b *testing.B) {
	skipUnlessScale(b)
	benchHOTGrow(b, 25_000, core.SearchExhaustive)
}

func BenchmarkScaleDijkstraBucketBA100k(b *testing.B) {
	skipUnlessScale(b)
	benchDijkstra(b, ba100k(b), false)
}

func BenchmarkScaleDijkstraHeapBA100k(b *testing.B) {
	skipUnlessScale(b)
	benchDijkstra(b, ba100k(b), true)
}

// BenchmarkScaleDijkstraParallelBA100k pairs with
// BenchmarkScaleDijkstraBucketBA100k: the same traversal with each
// bucket window's frontier sharded over GOMAXPROCS workers.
func BenchmarkScaleDijkstraParallelBA100k(b *testing.B) {
	skipUnlessScale(b)
	benchDijkstraParallel(b, ba100k(b), 0)
}

// scaleDemands draws a deterministic random demand set for the routing
// fan-out benchmarks.
func scaleDemands(n, k int, seed int64) []routing.Demand {
	r := rand.New(rand.NewSource(seed))
	out := make([]routing.Demand, 0, k)
	for len(out) < k {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		out = append(out, routing.Demand{Src: u, Dst: v, Volume: 1 + r.Float64()})
	}
	return out
}

func BenchmarkScaleRoutingFanoutBA100k(b *testing.B) {
	skipUnlessScale(b)
	t := ba100k(b)
	demands := scaleDemands(t.c.NumNodes(), 256, 44)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.RouteShortestPathsContext(context.Background(), t.g, t.c, demands); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleLCCMaskedSweepBA100k(b *testing.B) {
	skipUnlessScale(b)
	t := ba100k(b)
	n := t.c.NumNodes()
	// Degree-attack mask at 5% removed: what one robustness sweep step
	// measures at this scale.
	deg := t.g.Degrees()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if deg[ids[a]] != deg[ids[b]] {
			return deg[ids[a]] > deg[ids[b]]
		}
		return ids[a] < ids[b]
	})
	removed := make([]bool, n)
	for _, u := range ids[:n/20] {
		removed[u] = true
	}
	ws := graph.GetWorkspace(n)
	defer ws.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.c.LargestComponentMasked(ws, removed)
	}
}
