#!/usr/bin/env bash
# Gate benchmark regressions against the committed baseline.
#
# Runs the benchmark suite once (smoke mode: -benchtime 1x, -short so the
# scaling tier is skipped), then compares against the lexically-latest
# BENCH_*.json in the repo root with cmd/benchdiff. Fails when a kernel
# recorded as allocation-free now allocates, or when ns/op regresses
# beyond the tolerance.
#
# Usage:
#   scripts/benchdiff.sh [baseline.json]
#
# Environment:
#   BENCHDIFF_TOLERANCE   fractional ns/op growth allowed (default 0.25;
#                         CI uses a generous value because -benchtime 1x
#                         numbers on shared runners are noisy — the exact
#                         allocs/op gate is the load-bearing check there)
#   BENCHDIFF_BENCH       benchmark filter regexp (default: all)
#   BENCHDIFF_ALLOW_CROSS set to 1 to compare against a baseline recorded
#                         on a different machine/toolchain (benchdiff
#                         refuses by default when the meta stamps
#                         disagree; CI runners differ from the recording
#                         machine, so CI sets this explicitly)
set -euo pipefail

cd "$(dirname "$0")/.."
BASELINE="${1:-}"
if [[ -z "$BASELINE" ]]; then
    BASELINE="$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)"
fi
if [[ -z "$BASELINE" || ! -f "$BASELINE" ]]; then
    echo "benchdiff.sh: no baseline BENCH_*.json found (run scripts/bench.sh first)" >&2
    exit 2
fi
TOLERANCE="${BENCHDIFF_TOLERANCE:-0.25}"
BENCH="${BENCHDIFF_BENCH:-.}"
FRESH="$(mktemp)"
trap 'rm -f "$FRESH"' EXIT

echo "benchdiff.sh: baseline $BASELINE, tolerance $TOLERANCE"
# -cpu 1,4 runs every benchmark at both widths; benchdiff normalizes the
# two lines to one name and keeps the worst measurement, so a
# single-thread regression cannot hide behind a faster parallel leg.
# -benchtime 20x (not 1x): switching GOMAXPROCS between legs makes the
# runtime allocate a handful of objects one time, which a 1-iteration
# run would misreport as allocs/op and trip the exact gate; 20
# iterations amortize one-time noise to 0 while any real per-op
# allocation still reads >= 1.
go test -run '^$' -bench "$BENCH" -benchtime 20x -benchmem -short -cpu 1,4 ./... | tee "$FRESH"

CROSS_FLAG=""
if [[ "${BENCHDIFF_ALLOW_CROSS:-0}" == "1" ]]; then
    CROSS_FLAG="-allow-cross-machine"
fi
go run ./cmd/benchdiff -baseline "$BASELINE" -fresh "$FRESH" -tolerance "$TOLERANCE" -quiet $CROSS_FLAG
