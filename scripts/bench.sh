#!/usr/bin/env bash
# Run the full benchmark suite and record the results as JSON so the
# performance trajectory is trackable across PRs.
#
# Usage:
#   scripts/bench.sh [benchtime]           # default 1x (smoke); use e.g. 5x or 1s for real numbers
#
# Environment:
#   BENCH_TAGS    extra build tags, e.g. BENCH_TAGS=slowbench to include
#                 the million-node/HOT scaling slice in the baseline
#
# Output: BENCH_<yyyymmdd>.json in the repo root, an array of
#   {"name": ..., "iterations": N, "ns_per_op": ..., "bytes_per_op": ..., "allocs_per_op": ...}
# (bytes/allocs present only for benchmarks that report them).
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${1:-1x}"
OUT="BENCH_$(date +%Y%m%d).json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# -timeout 90m: with BENCH_TAGS=slowbench the root package alone grows
# and traverses several million-node topologies, well past go test's
# default 10m.
go test ${BENCH_TAGS:+-tags "$BENCH_TAGS"} -run '^$' -bench . -benchtime "$BENCHTIME" -benchmem -timeout 90m ./... | tee "$RAW"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2; ns = ""
    bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!first) printf(",\n")
    first = 0
    printf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (bytes != "")  printf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    printf("}")
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
