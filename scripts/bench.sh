#!/usr/bin/env bash
# Run the full benchmark suite and record the results as JSON so the
# performance trajectory is trackable across PRs.
#
# Usage:
#   scripts/bench.sh [benchtime]           # default 1x (smoke); use e.g. 5x or 1s for real numbers
#
# Environment:
#   BENCH_TAGS    extra build tags, e.g. BENCH_TAGS=slowbench to include
#                 the million-node/HOT scaling slice in the baseline
#   BENCH_CPU     -cpu list for the per-commit tier, e.g. BENCH_CPU=1,4
#   BENCH_COUNT   -count for the per-commit tier (default 1). cmd/benchdiff
#                 keeps the WORST line per benchmark name, so -count 3
#                 records each baseline entry at its observed noise
#                 ceiling — a fresh single-sample run then only trips the
#                 gate on a real regression, not on scheduler jitter.
#
# Two passes: the per-commit tier (-short, what scripts/benchdiff.sh
# re-runs on every commit) at the requested benchtime/BENCH_CPU, then
# the scaling tier (BenchmarkScale*) at -benchtime 1x serial — those
# numbers are informational (the gate's -short fresh run never sees
# them) and a 20-iteration 10M-node sweep would take hours. To record a
# baseline the gate can hold to its tolerance, match its conditions:
#
#   BENCH_TAGS=slowbench BENCH_CPU=1,4 BENCH_COUNT=3 scripts/bench.sh 20x
#
# (-cpu 1,4 matters on small machines: the worst-leg normalization in
# cmd/benchdiff keeps the GOMAXPROCS=4 measurement, which a
# single-width baseline can never match when cores < 4.)
#
# Output: BENCH_<yyyymmdd>.json in the repo root:
#   {"meta": {commit, go_version, gomaxprocs, goos, goarch, date},
#    "benchmarks": [{"name": ..., "iterations": N, "ns_per_op": ...,
#                    "bytes_per_op": ..., "allocs_per_op": ...}, ...]}
# (bytes/allocs present only for benchmarks that report them). The meta
# stamp lets cmd/benchdiff refuse cross-machine comparisons.
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${1:-1x}"
OUT="BENCH_$(date +%Y%m%d).json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

COMMIT="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
GO_VERSION="$(go env GOVERSION)"
GOOS="$(go env GOOS)"
GOARCH="$(go env GOARCH)"
# The effective GOMAXPROCS of the run: the env override when set, the
# core count otherwise (the Go runtime's default).
MAXPROCS="${GOMAXPROCS:-$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)}"

CPU_ARGS=()
if [[ -n "${BENCH_CPU:-}" ]]; then
    CPU_ARGS=(-cpu "$BENCH_CPU")
fi

# Pass 1: the per-commit tier under the same conditions the benchdiff
# gate re-runs it (-short skips the scaling tier).
go test -run '^$' -bench . -benchtime "$BENCHTIME" -benchmem -short -count "${BENCH_COUNT:-1}" ${CPU_ARGS[@]+"${CPU_ARGS[@]}"} -timeout 90m ./... | tee "$RAW"

# Pass 2: the scaling tier, 1x serial. -timeout 90m: with
# BENCH_TAGS=slowbench the root package alone grows and traverses
# several million-node topologies, well past go test's default 10m.
go test ${BENCH_TAGS:+-tags "$BENCH_TAGS"} -run '^$' -bench 'BenchmarkScale' -benchtime 1x -benchmem -timeout 90m ./... | tee -a "$RAW"

awk -v commit="$COMMIT" -v gover="$GO_VERSION" -v maxprocs="$MAXPROCS" \
    -v goos="$GOOS" -v goarch="$GOARCH" -v date="$(date +%Y-%m-%d)" '
BEGIN {
    print "{"
    printf("  \"meta\": {\"commit\": \"%s\", \"go_version\": \"%s\", \"gomaxprocs\": %s, \"goos\": \"%s\", \"goarch\": \"%s\", \"date\": \"%s\"},\n",
           commit, gover, maxprocs, goos, goarch, date)
    print "  \"benchmarks\": ["
    first = 1
}
/^Benchmark/ {
    name = $1; iters = $2; ns = ""
    bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!first) printf(",\n")
    first = 0
    printf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (bytes != "")  printf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    printf("}")
}
END { print "\n  ]\n}" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
