#!/usr/bin/env bash
# End-to-end smoke of the scenario service: start toposcenariod on a
# random port, submit the CLI smoke spec through `toposcenario -server`,
# diff the JSON against a direct local run (they must be byte-identical),
# check statusz, and exercise the SIGTERM graceful drain.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/toposcenariod" ./cmd/toposcenariod
go build -o "$workdir/toposcenario" ./cmd/toposcenario

echo "== start daemon"
"$workdir/toposcenariod" -addr 127.0.0.1:0 -drain-timeout 30s \
    2>"$workdir/daemon.log" &
daemon_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr="$(awk '/listening on/ {print $4; exit}' "$workdir/daemon.log" 2>/dev/null || true)"
    [ -n "$addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "daemon died during startup:" >&2
        cat "$workdir/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "daemon never logged its address:" >&2
    cat "$workdir/daemon.log" >&2
    exit 1
fi
echo "daemon at $addr"

spec=cmd/toposcenario/testdata/smoke.json

echo "== remote run via -server"
"$workdir/toposcenario" -server "http://$addr" -spec "$spec" \
    -format json -o "$workdir/remote.json"

echo "== local run"
"$workdir/toposcenario" -spec "$spec" -workers 4 \
    -format json -o "$workdir/local.json"

echo "== diff remote vs local"
diff "$workdir/remote.json" "$workdir/local.json"
echo "byte-identical"

echo "== statusz"
"$workdir/toposcenario" -server "http://$addr" -statusz -o "$workdir/statusz.json"
grep -q '"done": 1' "$workdir/statusz.json" || {
    echo "statusz does not report the finished job:" >&2
    cat "$workdir/statusz.json" >&2
    exit 1
}

echo "== graceful drain (SIGTERM)"
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "daemon exited $rc after SIGTERM:" >&2
    cat "$workdir/daemon.log" >&2
    exit 1
fi
grep -q "drained cleanly" "$workdir/daemon.log" || {
    echo "daemon log missing the drain marker:" >&2
    cat "$workdir/daemon.log" >&2
    exit 1
}
echo "service smoke OK"
