package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed produced diverging streams at step %d", i)
		}
	}
}

func TestNewDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs out of 64", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := Derive(7, i)
		if seen[s] {
			t.Fatalf("Derive collision at i=%d", i)
		}
		seen[s] = true
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical splitmix64 implementation
	// (Vigna), state starting at 0 and advancing by the golden gamma.
	got := SplitMix64(0)
	if got == 0 {
		t.Fatal("SplitMix64(0) should not be 0")
	}
	if SplitMix64(0) != SplitMix64(0) {
		t.Fatal("SplitMix64 must be a pure function")
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Fatal("distinct states must map to distinct outputs (whp)")
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(3)
	const rate = 2.5
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Exponential(r, rate)
	}
	mean := sum / n
	want := 1 / rate
	if math.Abs(mean-want) > 0.01 {
		t.Fatalf("Exponential mean = %v, want ~%v", mean, want)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate=0")
		}
	}()
	Exponential(New(1), 0)
}

func TestParetoSupport(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := Pareto(r, 2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto sample %v below xmin", v)
		}
	}
}

func TestParetoMean(t *testing.T) {
	// For alpha > 1, E[X] = alpha*xmin/(alpha-1).
	r := New(5)
	const xmin, alpha = 1.0, 3.0
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Pareto(r, xmin, alpha)
	}
	mean := sum / n
	want := alpha * xmin / (alpha - 1)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("Pareto mean = %v, want ~%v", mean, want)
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		v := BoundedPareto(r, 1, 100, 1.2)
		if v < 1 || v > 100 {
			t.Fatalf("BoundedPareto sample %v outside [1,100]", v)
		}
	}
}

func TestPoissonMeanSmall(t *testing.T) {
	r := New(7)
	const mean = 4.2
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += Poisson(r, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean) > 0.05 {
		t.Fatalf("Poisson mean = %v, want ~%v", got, mean)
	}
}

func TestPoissonMeanLarge(t *testing.T) {
	r := New(8)
	const mean = 200.0
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += Poisson(r, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean)/mean > 0.01 {
		t.Fatalf("Poisson(large) mean = %v, want ~%v", got, mean)
	}
}

func TestPoissonZero(t *testing.T) {
	if got := Poisson(New(1), 0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestZipfWeightsSumToOne(t *testing.T) {
	z := NewZipf(50, 1.0)
	sum := 0.0
	for k := 1; k <= z.N(); k++ {
		sum += z.Weight(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf weights sum to %v, want 1", sum)
	}
}

func TestZipfRankOrdering(t *testing.T) {
	z := NewZipf(20, 1.3)
	for k := 1; k < z.N(); k++ {
		if z.Weight(k) < z.Weight(k+1) {
			t.Fatalf("Zipf weight not monotone at rank %d", k)
		}
	}
}

func TestZipfSampleFrequencies(t *testing.T) {
	z := NewZipf(10, 1.0)
	r := New(9)
	counts := make([]int, 11)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for k := 1; k <= 10; k++ {
		got := float64(counts[k]) / n
		want := z.Weight(k)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("rank %d frequency %v, want ~%v", k, got, want)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(5, 0)
	for k := 1; k <= 5; k++ {
		if math.Abs(z.Weight(k)-0.2) > 1e-12 {
			t.Fatalf("s=0 should be uniform, got weight(%d)=%v", k, z.Weight(k))
		}
	}
}

func TestWeightedChoiceRespectWeights(t *testing.T) {
	r := New(10)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(r, w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceAllZeroUniform(t *testing.T) {
	r := New(11)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[WeightedChoice(r, []float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("all-zero weights not uniform: counts[%d]=%d", i, c)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		p := Shuffle(New(seed), n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoundedParetoWithinPareto(t *testing.T) {
	// Property: bounded samples are stochastically dominated by unbounded
	// at the top: all samples respect the cap.
	err := quick.Check(func(seed int64) bool {
		r := New(seed)
		v := BoundedPareto(r, 1, 10, 2)
		return v >= 1 && v <= 10
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}
