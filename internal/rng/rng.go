// Package rng provides deterministic, seedable randomness and the
// distributions used throughout the topology generators.
//
// Every randomized algorithm in this repository takes an explicit seed so
// that experiments are exactly reproducible. Seeds are expanded with
// SplitMix64 before being handed to math/rand, which keeps nearby integer
// seeds (0, 1, 2, ...) from producing correlated streams.
package rng

import (
	"math"
	"math/rand"
)

// SplitMix64 advances the SplitMix64 state and returns the next value.
// It is used to whiten user-provided seeds and to derive independent
// sub-seeds from a master seed.
func SplitMix64(state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a deterministic *rand.Rand for the given seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(SplitMix64(uint64(seed)))))
}

// Derive deterministically derives the i-th sub-seed from a master seed.
// Sub-seeds are independent enough for Monte Carlo replication: replica i
// of an experiment uses Derive(seed, i).
func Derive(seed int64, i int) int64 {
	return int64(SplitMix64(SplitMix64(uint64(seed)) + uint64(i)*0x9e3779b97f4a7c15))
}

// Exponential samples an exponential random variable with the given rate
// (mean 1/rate). It panics if rate <= 0.
func Exponential(r *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential rate must be positive")
	}
	return r.ExpFloat64() / rate
}

// Pareto samples a Pareto random variable with scale xmin > 0 and shape
// alpha > 0. The density is alpha*xmin^alpha / x^(alpha+1) for x >= xmin.
func Pareto(r *rand.Rand, xmin, alpha float64) float64 {
	if xmin <= 0 || alpha <= 0 {
		panic("rng: Pareto parameters must be positive")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xmin * math.Pow(u, -1/alpha)
}

// BoundedPareto samples a Pareto(xmin, alpha) truncated to [xmin, xmax]
// by inverse transform, so no rejection loop is needed.
func BoundedPareto(r *rand.Rand, xmin, xmax, alpha float64) float64 {
	if xmin <= 0 || xmax <= xmin || alpha <= 0 {
		panic("rng: BoundedPareto requires 0 < xmin < xmax and alpha > 0")
	}
	u := r.Float64()
	la := math.Pow(xmin, -alpha)
	ha := math.Pow(xmax, -alpha)
	return math.Pow(la-u*(la-ha), -1/alpha)
}

// Poisson samples a Poisson random variable with the given mean using
// Knuth's method for small means and a normal approximation with
// continuity correction for large means.
func Poisson(r *rand.Rand, mean float64) int {
	if mean < 0 {
		panic("rng: Poisson mean must be non-negative")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation: Poisson(m) ~ N(m, m) for large m.
	n := r.NormFloat64()*math.Sqrt(mean) + mean + 0.5
	if n < 0 {
		return 0
	}
	return int(n)
}

// Zipf holds precomputed state for sampling ranks 1..N with probability
// proportional to rank^(-s). Unlike rand.Zipf it supports s <= 1 and small
// N, which the city-population model needs.
type Zipf struct {
	cdf []float64 // cumulative, normalized
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s >= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf needs n >= 1")
	}
	if s < 0 {
		panic("rng: Zipf exponent must be non-negative")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Weight returns the normalized probability of rank k (1-based).
func (z *Zipf) Weight(k int) float64 {
	if k < 1 || k > len(z.cdf) {
		panic("rng: Zipf rank out of range")
	}
	if k == 1 {
		return z.cdf[0]
	}
	return z.cdf[k-1] - z.cdf[k-2]
}

// Sample draws a rank in [1, N].
func (z *Zipf) Sample(r *rand.Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// WeightedChoice picks an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights panic; an all-zero weight
// vector yields a uniform draw.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		panic("rng: WeightedChoice on empty slice")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: WeightedChoice weight must be non-negative")
		}
		total += w
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes ints [0, n) uniformly at random and returns the slice.
func Shuffle(r *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
