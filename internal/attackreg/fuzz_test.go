package attackreg

import (
	"errors"
	"testing"

	"repro/internal/errs"
)

// FuzzParseSelections: the topoattack -attacks/-param surface must
// reject malformed input with errs.ErrBadParam and never panic,
// matching the params and metricreg fuzzers.
func FuzzParseSelections(f *testing.F) {
	f.Add("degree,geographic", "geographic.x=0.5")
	f.Add("a,,b", "x")
	f.Add("", "")
	f.Add("degree", "degree.=1")
	f.Add("degree", ".x=1")
	f.Add("preferential", "preferential.alpha=1e999")
	f.Add("a,a", "a.b=c")
	f.Add("random-failure", "random-failure.seed=-1")
	f.Fuzz(func(t *testing.T, names, kv string) {
		set, err := ParseSelections(names, []string{kv})
		if err != nil {
			if !errors.Is(err, errs.ErrBadParam) {
				t.Fatalf("ParseSelections(%q, %q) error %v does not wrap ErrBadParam", names, kv, err)
			}
			return
		}
		if len(set) == 0 {
			t.Fatalf("ParseSelections(%q, %q) returned an empty set without error", names, kv)
		}
		// A syntactically valid selection naming a registered attack
		// must then resolve or reject through the registry without
		// panicking.
		for _, sel := range set {
			a, err := Lookup(sel.Name)
			if err != nil {
				if !errors.Is(err, errs.ErrBadParam) {
					t.Fatalf("Lookup(%q) error %v does not wrap ErrBadParam", sel.Name, err)
				}
				continue
			}
			if _, err := Resolve(a, sel.Params); err != nil && !errors.Is(err, errs.ErrBadParam) {
				t.Fatalf("Resolve(%q, %v) error %v does not wrap ErrBadParam", sel.Name, sel.Params, err)
			}
		}
	})
}
