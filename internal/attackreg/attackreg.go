// Package attackreg is the failure/attack mirror of the generator and
// metric registries (internal/scenario, internal/metricreg): every
// node- or edge-removal strategy the robustness harness can run is
// registered by name with typed, validated, JSON-serializable
// parameters, so "as many scenarios as you can imagine" extends to the
// attack axis — the paper's "robust yet fragile" claim (§3.1) only
// shows its shape under many different perturbation models.
//
// An Attack turns a topology into a complete removal schedule — a
// permutation of node ids or edge ids, deterministically from its
// resolved parameters and a seed. The sweep engine (internal/robust)
// consumes schedules two ways: re-evaluating masked metrics at each
// removal fraction, or replaying the whole schedule backwards through a
// reverse union-find for the near-linear incremental LCC trajectory.
package attackreg

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/params"
)

// Params carries attack arguments by name (the shared internal/params
// machinery, also under the generator and metric registries). Values
// are float64 — the JSON number type — so a Params map round-trips
// through JSON verbatim.
type Params = params.Params

// ParamSpec declares one named attack parameter: its kind, default, and
// optional closed bounds.
type ParamSpec = params.Spec

// Target declares what a schedule's entries index: nodes or edges.
type Target uint8

// Schedule targets.
const (
	// Nodes: schedule entries are node ids; removing a node removes its
	// incident edges.
	Nodes Target = iota
	// Edges: schedule entries are edge ids; all nodes stay present.
	Edges
)

// String names the target.
func (t Target) String() string {
	if t == Edges {
		return "edges"
	}
	return "nodes"
}

// Caps declares schedule properties the sweep engine plans around.
type Caps uint32

// Capability flags.
const (
	// CapRandomized: the schedule depends on the seed, so sweeps average
	// over trials. Deterministic attacks always use a single pass.
	CapRandomized Caps = 1 << iota
	// CapAdaptive: the attack re-scores the residual topology as
	// removals proceed (strictly deadlier than its static counterpart on
	// hub topologies).
	CapAdaptive
)

// Attack is one registered removal strategy: a name, a typed parameter
// interface, a target (nodes or edges), and a schedule function.
type Attack interface {
	// Name is the registry key (e.g. "degree", "geographic").
	Name() string
	// Params declares the accepted parameters with kinds, defaults and
	// bounds.
	Params() []params.Spec
	// Target reports whether schedules index nodes or edges.
	Target() Target
	// Caps declares schedule properties (randomized, adaptive).
	Caps() Caps
	// Schedule returns the complete removal order for g — a permutation
	// of node ids (Nodes) or edge ids (Edges) — deterministically from
	// the resolved params and seed. Adaptive attacks simulate removals
	// internally; the returned schedule is still a fixed order.
	// Implementations check ctx at iteration boundaries of superlinear
	// work and return an errs.ErrCanceled-wrapping error once it is done.
	Schedule(ctx context.Context, g *graph.Graph, p params.Params, seed int64) ([]int, error)
}

// Selection names one attack with optional parameters; it round-trips
// through JSON and is the unit scenario.AttackSpec and the CLIs
// validate against the registry (the shared internal/params shape,
// also under the metric and traffic registries).
type Selection = params.Selection

// Resolve validates user-supplied params against the attack's specs and
// returns a complete parameter set with defaults filled in, wrapping
// errs.ErrBadParam on unknown names, non-integral Int values and
// out-of-bounds values.
func Resolve(a Attack, p params.Params) (params.Params, error) {
	return params.Resolve(fmt.Sprintf("attackreg: attack %q", a.Name()), a.Params(), p)
}

// aliases maps the historical strategy spellings (robust.Strategy
// String() output and the short forms scenario specs used) onto the
// canonical registry names, so every spec that validated before the
// registry existed still validates.
var aliases = map[string]string{
	"":                       "random-failure",
	"random":                 "random-failure",
	"degree-attack":          "degree",
	"betweenness-attack":     "betweenness",
	"adaptive-degree-attack": "adaptive-degree",
}

// Canonical maps a possibly-aliased attack name to its registry key.
// Unknown names pass through unchanged (Lookup reports them).
func Canonical(name string) string {
	if c, ok := aliases[name]; ok {
		return c
	}
	return name
}

// Registry maps attack names to Attacks. The zero value is ready to
// use; Default() holds every built-in attack.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Attack
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds an attack, rejecting duplicate or empty names.
func (r *Registry) Register(a Attack) error {
	name := a.Name()
	if name == "" {
		return errs.BadParamf("attackreg: attack with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = map[string]Attack{}
	}
	if _, dup := r.byName[name]; dup {
		return errs.BadParamf("attackreg: attack %q already registered", name)
	}
	r.byName[name] = a
	return nil
}

// Lookup resolves an attack by name (aliases included), wrapping
// errs.ErrBadParam for unknown names.
func (r *Registry) Lookup(name string) (Attack, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.byName[Canonical(name)]
	if !ok {
		return nil, errs.BadParamf("attackreg: unknown attack %q (have %v)", name, r.namesLocked())
	}
	return a, nil
}

// Names lists every registered attack name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry holding every built-in
// attack (and anything added through Register).
func Default() *Registry { return defaultRegistry }

// Register adds an attack to the default registry.
func Register(a Attack) error { return defaultRegistry.Register(a) }

// Lookup resolves a name (aliases included) in the default registry.
func Lookup(name string) (Attack, error) { return defaultRegistry.Lookup(name) }

// Names lists the default registry, sorted.
func Names() []string { return defaultRegistry.Names() }

// FuncAttack adapts a parameter-spec list plus a schedule function into
// an Attack; it is how every built-in attack is registered and the
// easiest way to add external ones.
type FuncAttack struct {
	AttackName   string
	AttackParams []params.Spec
	AttackTarget Target
	AttackCaps   Caps
	Fn           func(ctx context.Context, g *graph.Graph, p params.Params, seed int64) ([]int, error)
}

// Name implements Attack.
func (f *FuncAttack) Name() string { return f.AttackName }

// Params implements Attack.
func (f *FuncAttack) Params() []params.Spec {
	out := make([]params.Spec, len(f.AttackParams))
	copy(out, f.AttackParams)
	return out
}

// Target implements Attack.
func (f *FuncAttack) Target() Target { return f.AttackTarget }

// Caps implements Attack.
func (f *FuncAttack) Caps() Caps { return f.AttackCaps }

// Schedule implements Attack.
func (f *FuncAttack) Schedule(ctx context.Context, g *graph.Graph, p params.Params, seed int64) ([]int, error) {
	return f.Fn(ctx, g, p, seed)
}

// FormatAttacks writes a human-readable listing of every registered
// attack and its parameters (sorted by name), prefixing each parameter
// line with paramPrefix — CLIs share this for their -list flags.
func (r *Registry) FormatAttacks(w io.Writer, paramPrefix string) {
	for _, name := range r.Names() {
		a, err := r.Lookup(name)
		if err != nil {
			continue
		}
		traits := []string{a.Target().String()}
		if a.Caps()&CapRandomized != 0 {
			traits = append(traits, "randomized")
		}
		if a.Caps()&CapAdaptive != 0 {
			traits = append(traits, "adaptive")
		}
		fmt.Fprintf(w, "%s  [%s]\n", name, strings.Join(traits, ", "))
		specs := a.Params()
		sort.Slice(specs, func(x, y int) bool { return specs[x].Name < specs[y].Name })
		for _, s := range specs {
			fmt.Fprintf(w, "  %s%s.%s=<%s>  (default %g)  %s\n", paramPrefix, name, s.Name, s.Kind, s.Default, s.Help)
		}
	}
}

// ParseSelections builds an attack set from a comma-separated name list
// plus "attack.param=value" assignments (the cmd/topoattack flag
// syntax, via the shared internal/params parser; the index is keyed by
// canonical name, so an alias and its canonical spelling are caught as
// duplicates and a param assignment reaches its attack through either
// spelling). Every failure wraps errs.ErrBadParam; assignments naming
// an attack outside the selected set are rejected so typos fail loudly.
func ParseSelections(names string, kvs []string) ([]Selection, error) {
	return params.ParseSelections("attackreg", "attack", Canonical, names, kvs)
}
