package attackreg

import (
	"context"
	"math"
	"sort"

	"repro/internal/errs"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/params"
	"repro/internal/rng"
)

func init() {
	for _, a := range builtins() {
		if err := Register(a); err != nil {
			panic(err)
		}
	}
}

func builtins() []Attack {
	return []Attack{
		&FuncAttack{
			AttackName:   "random-failure",
			AttackTarget: Nodes,
			AttackCaps:   CapRandomized,
			Fn: func(ctx context.Context, g *graph.Graph, _ params.Params, seed int64) ([]int, error) {
				if err := errs.Ctx(ctx); err != nil {
					return nil, err
				}
				return rng.Shuffle(rng.New(seed), g.NumNodes()), nil
			},
		},
		&FuncAttack{
			AttackName:   "degree",
			AttackTarget: Nodes,
			Fn: func(ctx context.Context, g *graph.Graph, _ params.Params, _ int64) ([]int, error) {
				if err := errs.Ctx(ctx); err != nil {
					return nil, err
				}
				deg := g.Degrees()
				return orderByScoreDesc(len(deg), func(v int) float64 { return float64(deg[v]) }), nil
			},
		},
		&FuncAttack{
			AttackName:   "adaptive-degree",
			AttackTarget: Nodes,
			AttackCaps:   CapAdaptive,
			Fn: func(ctx context.Context, g *graph.Graph, _ params.Params, _ int64) ([]int, error) {
				return adaptiveDegreeOrder(ctx, g)
			},
		},
		&FuncAttack{
			AttackName:   "betweenness",
			AttackTarget: Nodes,
			Fn: func(ctx context.Context, g *graph.Graph, _ params.Params, _ int64) ([]int, error) {
				if err := errs.Ctx(ctx); err != nil {
					return nil, err
				}
				bc := g.Betweenness()
				return orderByScoreDesc(len(bc), func(v int) float64 { return bc[v] }), nil
			},
		},
		&FuncAttack{
			AttackName:   "random-edge",
			AttackTarget: Edges,
			AttackCaps:   CapRandomized,
			Fn: func(ctx context.Context, g *graph.Graph, _ params.Params, seed int64) ([]int, error) {
				if err := errs.Ctx(ctx); err != nil {
					return nil, err
				}
				return rng.Shuffle(rng.New(seed), g.NumEdges()), nil
			},
		},
		&FuncAttack{
			AttackName:   "bottleneck-edge",
			AttackTarget: Edges,
			Fn: func(ctx context.Context, g *graph.Graph, _ params.Params, _ int64) ([]int, error) {
				bc, err := edgeBetweenness(ctx, g)
				if err != nil {
					return nil, err
				}
				return orderByScoreDesc(len(bc), func(e int) float64 { return bc[e] }), nil
			},
		},
		&FuncAttack{
			AttackName: "geographic",
			AttackParams: []params.Spec{
				{Name: "x", Kind: params.Float, Default: 0.5, Help: "epicenter x coordinate"},
				{Name: "y", Kind: params.Float, Default: 0.5, Help: "epicenter y coordinate"},
			},
			AttackTarget: Nodes,
			Fn: func(ctx context.Context, g *graph.Graph, p params.Params, _ int64) ([]int, error) {
				if err := errs.Ctx(ctx); err != nil {
					return nil, err
				}
				epi := geom.Point{X: p.Float("x"), Y: p.Float("y")}
				n := g.NumNodes()
				// A localized disaster: nodes fall in growing distance from
				// the epicenter, so removing the first k is knocking out the
				// k geographically nearest routers.
				return orderByScoreDesc(n, func(v int) float64 {
					nd := g.Node(v)
					return -epi.Dist(geom.Point{X: nd.X, Y: nd.Y})
				}), nil
			},
		},
		&FuncAttack{
			AttackName: "preferential",
			AttackParams: []params.Spec{
				{Name: "alpha", Kind: params.Float, Default: 1, Min: ptr(0.0), Max: ptr(16.0),
					Help: "degree bias exponent: failure probability ~ (degree+1)^alpha (0 = uniform)"},
			},
			AttackTarget: Nodes,
			AttackCaps:   CapRandomized,
			Fn: func(ctx context.Context, g *graph.Graph, p params.Params, seed int64) ([]int, error) {
				if err := errs.Ctx(ctx); err != nil {
					return nil, err
				}
				return preferentialOrder(g, p.Float("alpha"), seed), nil
			},
		},
	}
}

func ptr(v float64) *float64 { return &v }

// orderByScoreDesc returns ids [0, n) sorted by descending score with
// ties broken by ascending id — an explicit total order, so schedules
// never depend on sort stability or input permutation.
func orderByScoreDesc(n int, score func(int) float64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := score(order[a]), score(order[b])
		if sa != sb {
			return sa > sb
		}
		return order[a] < order[b]
	})
	return order
}

// adaptiveDegreeOrder greedily removes the currently highest-degree node
// (ties to the lowest id), maintaining residual degrees incrementally.
func adaptiveDegreeOrder(ctx context.Context, g *graph.Graph) ([]int, error) {
	n := g.NumNodes()
	deg := g.Degrees()
	removed := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		if len(order)%1024 == 0 {
			if err := errs.Ctx(ctx); err != nil {
				return nil, err
			}
		}
		best := -1
		for v := 0; v < n; v++ {
			if removed[v] {
				continue
			}
			if best == -1 || deg[v] > deg[best] {
				best = v
			}
		}
		removed[best] = true
		order = append(order, best)
		g.Neighbors(best, func(u, _ int) {
			if !removed[u] {
				deg[u]--
			}
		})
	}
	return order, nil
}

// preferentialOrder samples a removal order without replacement with
// per-node weight (degree+1)^alpha, via the Efraimidis–Spirakis
// exponential-key trick: one uniform draw per node (in id order, so the
// stream is schedule-independent), key = ln(u)/w, sort descending. The
// hubs a preferential process built are the ones a preferential failure
// process takes out first — probabilistically, unlike the deterministic
// degree attack.
func preferentialOrder(g *graph.Graph, alpha float64, seed int64) []int {
	n := g.NumNodes()
	r := rng.New(seed)
	key := make([]float64, n)
	for v := 0; v < n; v++ {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		w := math.Pow(float64(g.Degree(v)+1), alpha)
		key[v] = math.Log(u) / w
	}
	return orderByScoreDesc(n, func(v int) float64 { return key[v] })
}

// edgeBetweenness computes exact edge betweenness centrality on the
// unweighted graph with Brandes' algorithm (each unordered pair counted
// once), the edge analogue of graph.Betweenness. Cancellation is
// checked between source expansions.
func edgeBetweenness(ctx context.Context, g *graph.Graph) ([]float64, error) {
	n := g.NumNodes()
	bc := make([]float64, g.NumEdges())
	sigma := make([]float64, n)
	dist := make([]int, n)
	delta := make([]float64, n)
	type pred struct{ v, e int }
	preds := make([][]pred, n)
	stack := make([]int, 0, n)
	queue := make([]int, 0, n)

	for s := 0; s < n; s++ {
		if s%64 == 0 {
			if err := errs.Ctx(ctx); err != nil {
				return nil, err
			}
		}
		for i := 0; i < n; i++ {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		stack = stack[:0]
		queue = queue[:0]
		sigma[s] = 1
		dist[s] = 0
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			stack = append(stack, u)
			g.Neighbors(u, func(v, e int) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], pred{u, e})
				}
			})
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, pr := range preds[w] {
				c := sigma[pr.v] / sigma[w] * (1 + delta[w])
				bc[pr.e] += c
				delta[pr.v] += c
			}
		}
	}
	// Each unordered pair was counted twice (once per endpoint as source).
	for i := range bc {
		bc[i] /= 2
	}
	return bc, nil
}
