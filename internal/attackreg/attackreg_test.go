package attackreg

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/params"
)

func schedule(t *testing.T, name string, g *graph.Graph, p params.Params, seed int64) []int {
	t.Helper()
	a, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := Resolve(a, p)
	if err != nil {
		t.Fatal(err)
	}
	order, err := a.Schedule(context.Background(), g, resolved, seed)
	if err != nil {
		t.Fatal(err)
	}
	return order
}

func checkPermutation(t *testing.T, order []int, n int) {
	t.Helper()
	if len(order) != n {
		t.Fatalf("schedule length %d, want %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("schedule is not a permutation: %v", order)
		}
		seen[v] = true
	}
}

func TestBuiltinsRegisteredAndSorted(t *testing.T) {
	names := Names()
	want := []string{"adaptive-degree", "betweenness", "bottleneck-edge", "degree",
		"geographic", "preferential", "random-edge", "random-failure"}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin %q not registered (have %v)", w, names)
		}
	}
	if !sortedStrings(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestAliasesResolve(t *testing.T) {
	for alias, canonical := range map[string]string{
		"":                       "random-failure",
		"random":                 "random-failure",
		"degree-attack":          "degree",
		"betweenness-attack":     "betweenness",
		"adaptive-degree-attack": "adaptive-degree",
	} {
		a, err := Lookup(alias)
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		if a.Name() != canonical {
			t.Fatalf("alias %q resolved to %q, want %q", alias, a.Name(), canonical)
		}
	}
	if _, err := Lookup("nope"); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown attack gave %v, want ErrBadParam", err)
	}
}

// TestTieBreakIsStableByNodeID is the regression test for score ties:
// on a k-regular topology every node has the same degree (and, by
// symmetry on a cycle, the same betweenness), so the schedule must be
// exactly ascending node ids — any dependence on sort internals or
// input permutation would scramble it.
func TestTieBreakIsStableByNodeID(t *testing.T) {
	n := 64
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for i := 0; i < n; i++ {
		g.AddEdge(graph.Edge{U: i, V: (i + 1) % n, Weight: 1})
	}
	for _, name := range []string{"degree", "betweenness"} {
		order := schedule(t, name, g, nil, 1)
		for i, v := range order {
			if v != i {
				t.Fatalf("%s: tied scores not ordered by node id: order[%d] = %d", name, i, v)
			}
		}
	}
	// Edge scores tie on the cycle too: bottleneck-edge must yield
	// ascending edge ids.
	order := schedule(t, "bottleneck-edge", g, nil, 1)
	for i, e := range order {
		if e != i {
			t.Fatalf("bottleneck-edge: tied scores not ordered by edge id: order[%d] = %d", i, e)
		}
	}
}

func TestDegreeAttackOrdersHubsFirst(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	order := schedule(t, "degree", g, nil, 1)
	checkPermutation(t, order, 200)
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		if deg[a] < deg[b] || (deg[a] == deg[b] && a > b) {
			t.Fatalf("order not (degree desc, id asc) at %d: node %d (deg %d) before %d (deg %d)",
				i, a, deg[a], b, deg[b])
		}
	}
}

func TestRandomSchedulesArePermutationsAndSeedDeterministic(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		total int
	}{
		{"random-failure", g.NumNodes()},
		{"random-edge", g.NumEdges()},
		{"preferential", g.NumNodes()},
	} {
		a := schedule(t, tc.name, g, nil, 42)
		checkPermutation(t, a, tc.total)
		b := schedule(t, tc.name, g, nil, 42)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different schedules", tc.name)
		}
		c := schedule(t, tc.name, g, nil, 43)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("%s: different seeds produced identical schedules", tc.name)
		}
	}
}

func TestGeographicAttackRadiatesFromEpicenter(t *testing.T) {
	// Nodes on a line: epicenter at the left end must remove left-to-
	// right; at the right end, right-to-left.
	n := 10
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{X: float64(i), Y: 0})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.Edge{U: i - 1, V: i, Weight: 1})
	}
	left := schedule(t, "geographic", g, params.Params{"x": 0, "y": 0}, 1)
	for i, v := range left {
		if v != i {
			t.Fatalf("epicenter at left: order %v", left)
		}
	}
	right := schedule(t, "geographic", g, params.Params{"x": float64(n - 1), "y": 0}, 1)
	for i, v := range right {
		if v != n-1-i {
			t.Fatalf("epicenter at right: order %v", right)
		}
	}
}

func TestPreferentialBiasTowardHubs(t *testing.T) {
	// On a star, the hub carries nearly all the degree weight at high
	// alpha: it must land in the first few removals for most seeds.
	n := 50
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.Edge{U: 0, V: i, Weight: 1})
	}
	early := 0
	for seed := int64(0); seed < 20; seed++ {
		order := schedule(t, "preferential", g, params.Params{"alpha": 4}, seed)
		for pos, v := range order {
			if v == 0 {
				if pos < n/5 {
					early++
				}
				break
			}
		}
	}
	if early < 15 {
		t.Fatalf("hub removed early in only %d/20 seeds under alpha=4", early)
	}
}

func TestBottleneckEdgeCutsBridgeFirst(t *testing.T) {
	// Two cliques joined by one bridge edge: the bridge carries all
	// cross-clique shortest paths, so it must top the schedule.
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddNode(graph.Node{})
	}
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
		}
	}
	for u := 4; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
		}
	}
	bridge := g.AddEdge(graph.Edge{U: 3, V: 4, Weight: 1})
	order := schedule(t, "bottleneck-edge", g, nil, 1)
	checkPermutation(t, order, g.NumEdges())
	if order[0] != bridge {
		t.Fatalf("bottleneck-edge removed edge %d first, want bridge %d", order[0], bridge)
	}
}

func TestResolveRejectsBadParams(t *testing.T) {
	a, err := Lookup("preferential")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(a, params.Params{"nope": 1}); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown param gave %v, want ErrBadParam", err)
	}
	if _, err := Resolve(a, params.Params{"alpha": -1}); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("out-of-bounds param gave %v, want ErrBadParam", err)
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	r := NewRegistry()
	a := &FuncAttack{AttackName: "x", Fn: nil}
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(a); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("duplicate gave %v, want ErrBadParam", err)
	}
	if err := r.Register(&FuncAttack{}); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("empty name gave %v, want ErrBadParam", err)
	}
}

func TestFormatAttacksListsParamsAndTraits(t *testing.T) {
	var b strings.Builder
	Default().FormatAttacks(&b, "-param ")
	out := b.String()
	for _, want := range []string{
		"geographic  [nodes]",
		"-param geographic.x=<float>",
		"random-edge  [edges, randomized]",
		"adaptive-degree  [nodes, adaptive]",
		"preferential  [nodes, randomized]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatAttacks output missing %q:\n%s", want, out)
		}
	}
}

func TestParseSelections(t *testing.T) {
	set, err := ParseSelections("degree,geographic", []string{"geographic.x=0.2", "geographic.y=0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0].Name != "degree" || set[1].Name != "geographic" {
		t.Fatalf("set = %+v", set)
	}
	if set[1].Params["x"] != 0.2 || set[1].Params["y"] != 0.9 {
		t.Fatalf("params = %+v", set[1].Params)
	}
	// Aliases dedup against their canonical spelling, and a param
	// assignment reaches its attack through either spelling.
	if _, err := ParseSelections("random,random-failure", nil); !errors.Is(err, errs.ErrBadParam) {
		t.Errorf("alias+canonical duplicate gave %v, want ErrBadParam", err)
	}
	set, err = ParseSelections("degree-attack", []string{"degree.k=1"})
	if err != nil {
		t.Fatal(err)
	}
	if set[0].Params["k"] != 1 {
		t.Fatalf("cross-spelling param assignment lost: %+v", set)
	}
	for _, tc := range []struct{ names, kv string }{
		{"degree,,x", ""},
		{"degree", "geographic.x=1"},
		{"degree", "degree.=1"},
		{"degree", "notakv"},
		{"degree,degree", ""},
	} {
		kvs := []string{}
		if tc.kv != "" {
			kvs = append(kvs, tc.kv)
		}
		if _, err := ParseSelections(tc.names, kvs); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("ParseSelections(%q, %q) gave %v, want ErrBadParam", tc.names, tc.kv, err)
		}
	}
}

func TestScheduleHonorsCanceledContext(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		a, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		resolved, err := Resolve(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Schedule(ctx, g, resolved, 1); !errors.Is(err, errs.ErrCanceled) {
			t.Errorf("%s: canceled ctx gave %v, want ErrCanceled", name, err)
		}
	}
}
