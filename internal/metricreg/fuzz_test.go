package metricreg

import (
	"errors"
	"testing"

	"repro/internal/errs"
)

// FuzzParseSelections: the topostats -metrics/-param surface must
// reject malformed input with errs.ErrBadParam and never panic.
func FuzzParseSelections(f *testing.F) {
	f.Add("expansion,clustering", "expansion.maxh=5")
	f.Add("a,,b", "x")
	f.Add("", "")
	f.Add("lcc", "lcc.=1")
	f.Add("lcc", ".x=1")
	f.Add("lcc", "lcc.steps=1e999")
	f.Add("a,a", "a.b=c")
	f.Fuzz(func(t *testing.T, names, kv string) {
		set, err := ParseSelections(names, []string{kv})
		if err != nil {
			if !errors.Is(err, errs.ErrBadParam) {
				t.Fatalf("ParseSelections(%q, %q) error %v does not wrap ErrBadParam", names, kv, err)
			}
			return
		}
		if len(set) == 0 {
			t.Fatalf("ParseSelections(%q, %q) returned an empty set without error", names, kv)
		}
	})
}
