package metricreg

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/params"
)

// ladder builds a connected test graph: a path 0-1-...-n-1 plus chords
// every k nodes, deterministic and non-trivial for every metric.
func ladder(n, k int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.Edge{U: i - 1, V: i, Weight: 1})
	}
	for i := k; i < n; i += k {
		g.AddEdge(graph.Edge{U: i - k, V: i, Weight: 1})
	}
	return g
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("suspiciously few built-in metrics: %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, want := range []string{"expansion", "resilience", "distortion", "hierarchy-depth",
		"spectral-gap", "clustering", "assortativity", "lcc", "mean-degree", "diameter"} {
		if _, err := Lookup(want); err != nil {
			t.Errorf("built-in metric %q missing: %v", want, err)
		}
	}
}

func TestRegistryRejectsDuplicatesAndUnknown(t *testing.T) {
	r := NewRegistry()
	m := &FuncMetric{MetricName: "x", NewFn: func(params.Params, int64) Accumulator { return &sizeAcc{} }}
	if err := r.Register(m); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(m); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("duplicate registration gave %v", err)
	}
	if err := r.Register(&FuncMetric{}); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("empty name gave %v", err)
	}
	if _, err := r.Lookup("nope"); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown lookup gave %v", err)
	}
}

func TestEvaluateValidation(t *testing.T) {
	g := ladder(30, 5)
	src := NewSource(g, nil)
	ctx := context.Background()
	cases := []struct {
		name string
		src  *Source
		set  []Selection
	}{
		{"nil source", nil, []Selection{{Name: "nodes"}}},
		{"empty set", src, nil},
		{"unknown metric", src, []Selection{{Name: "nope"}}},
		{"duplicate", src, []Selection{{Name: "nodes"}, {Name: "nodes"}}},
		{"bad param name", src, []Selection{{Name: "expansion", Params: params.Params{"bogus": 1}}}},
		{"bad param value", src, []Selection{{Name: "expansion", Params: params.Params{"maxh": 0}}}},
		{"non-integral", src, []Selection{{Name: "expansion", Params: params.Params{"maxh": 2.5}}}},
		{"graph metric on CSR-only source", NewSource(nil, g.Freeze()), []Selection{{Name: "distortion"}}},
	}
	for _, tc := range cases {
		if _, err := Default().Evaluate(ctx, tc.src, tc.set, Options{}); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("%s: got %v, want ErrBadParam", tc.name, err)
		}
	}
}

func TestEvaluateWorkerDeterminism(t *testing.T) {
	g := ladder(220, 7)
	set := []Selection{
		{Name: "expansion", Params: params.Params{"maxh": 4, "sources": 40}},
		{Name: "avg-hop-length", Params: params.Params{"sources": 60}},
		{Name: "diameter"},
		{Name: "resilience", Params: params.Params{"steps": 6, "trials": 4}},
		{Name: "distortion", Params: params.Params{"sample": 150}},
		{Name: "clustering"},
		{Name: "assortativity"},
		{Name: "spectral-gap", Params: params.Params{"iters": 80}},
		{Name: "mean-degree"},
		{Name: "degree-cv"},
	}
	one, err := Default().Evaluate(context.Background(), NewSource(g, nil), set, Options{Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Default().Evaluate(context.Background(), NewSource(g, nil), set, Options{Workers: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("Workers=1 vs Workers=8 diverged:\n%v\nvs\n%v", one, eight)
	}
}

func TestFusedSweepSharesTraversals(t *testing.T) {
	g := ladder(150, 6)
	n := g.NumNodes()
	// Three BFS-consuming metrics over all sources: fused they cost n
	// traversals, independently 3n.
	set := []Selection{
		{Name: "expansion", Params: params.Params{"sources": 0}},
		{Name: "avg-hop-length"},
		{Name: "diameter"},
	}
	var fused EvalStats
	if _, err := Default().Evaluate(context.Background(), NewSource(g, nil), set, Options{Stats: &fused, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if fused.BFSRuns != n {
		t.Fatalf("fused sweep ran %d BFS, want %d", fused.BFSRuns, n)
	}
	if fused.BFSRequested != 3*n {
		t.Fatalf("requested = %d, want %d", fused.BFSRequested, 3*n)
	}
	independent := 0
	for _, sel := range set {
		var st EvalStats
		if _, err := Default().Evaluate(context.Background(), NewSource(g, nil), []Selection{sel}, Options{Stats: &st, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		independent += st.BFSRuns
	}
	if independent != 3*n {
		t.Fatalf("independent evaluation ran %d BFS, want %d", independent, 3*n)
	}
	if fused.BFSRuns >= independent {
		t.Fatalf("fusion saved nothing: fused %d vs independent %d", fused.BFSRuns, independent)
	}
}

func TestFusedMatchesIndependent(t *testing.T) {
	g := ladder(180, 9)
	set := []Selection{
		{Name: "expansion", Params: params.Params{"maxh": 3, "sources": 25}},
		{Name: "avg-hop-length", Params: params.Params{"sources": 70}},
		{Name: "diameter"},
	}
	fused, err := Default().Evaluate(context.Background(), NewSource(g, nil), set, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range set {
		solo, err := Default().Evaluate(context.Background(), NewSource(g, nil), []Selection{sel}, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fused[sel.Name], solo[sel.Name]) {
			t.Errorf("%s: fused %v != independent %v", sel.Name, fused[sel.Name], solo[sel.Name])
		}
	}
}

func TestEvaluateCancellation(t *testing.T) {
	g := ladder(300, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Default().Evaluate(ctx, NewSource(g, nil), []Selection{{Name: "resilience"}}, Options{})
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("canceled evaluation gave %v, want ErrCanceled", err)
	}
}

func TestMaskedEvaluation(t *testing.T) {
	g := ladder(40, 40) // pure path: removing the middle halves the LCC
	c := g.Freeze()
	for _, name := range []string{"lcc", "mean-degree"} {
		m, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Caps()&CapMasked == 0 {
			t.Fatalf("%s lost CapMasked", name)
		}
		resolved, err := Resolve(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		acc, ok := m.New(resolved, 1).(MaskedAccumulator)
		if !ok {
			t.Fatalf("%s accumulator not masked-capable", name)
		}
		ws := graph.GetWorkspace(40)
		defer ws.Release()
		full := acc.EvaluateMasked(ws, c, make([]bool, 40))
		removed := make([]bool, 40)
		removed[20] = true
		cut := acc.EvaluateMasked(ws, c, removed)
		if cut >= full {
			t.Errorf("%s: masked value %v not below unmasked %v", name, cut, full)
		}
	}
}

func TestValueSanityOnPath(t *testing.T) {
	g := ladder(64, 64) // path graph: known structure
	vals, err := Default().Evaluate(context.Background(), NewSource(g, nil), []Selection{
		{Name: "diameter"},
		{Name: "lcc"},
		{Name: "nodes"},
		{Name: "edges"},
		{Name: "max-degree"},
		{Name: "distortion"},
	}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := vals["diameter"].Scalar; got != 63 {
		t.Errorf("path diameter = %v, want 63", got)
	}
	if got := vals["lcc"].Scalar; got != 1 {
		t.Errorf("connected lcc = %v, want 1", got)
	}
	if got := vals["nodes"].Scalar; got != 64 {
		t.Errorf("nodes = %v", got)
	}
	if got := vals["edges"].Scalar; got != 63 {
		t.Errorf("edges = %v", got)
	}
	if got := vals["max-degree"].Scalar; got != 2 {
		t.Errorf("path max degree = %v", got)
	}
	if got := vals["distortion"].Scalar; got != 1 {
		t.Errorf("tree distortion = %v, want exactly 1", got)
	}
}

func TestSourceConnectedCSROnly(t *testing.T) {
	g := ladder(10, 3)
	if !NewSource(nil, g.Freeze()).Connected() {
		t.Fatal("connected graph reported disconnected from CSR")
	}
	d := graph.New(2)
	d.AddNode(graph.Node{})
	d.AddNode(graph.Node{})
	if NewSource(nil, d.Freeze()).Connected() {
		t.Fatal("disconnected graph reported connected from CSR")
	}
	if NewSource(nil, graph.New(0).Freeze()).Connected() != true {
		t.Fatal("empty graph should count as connected (matching graph.IsConnected)")
	}
}

func TestParseSelections(t *testing.T) {
	set, err := ParseSelections("expansion,clustering", []string{"expansion.maxh=5", "expansion.sources=10"})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0].Name != "expansion" || set[1].Name != "clustering" {
		t.Fatalf("parsed %+v", set)
	}
	if set[0].Params["maxh"] != 5 || set[0].Params["sources"] != 10 {
		t.Fatalf("params not applied: %+v", set[0])
	}
	bad := []struct {
		names string
		kvs   []string
	}{
		{"", nil},
		{"a,,b", nil},
		{"a,a", nil},
		{"expansion", []string{"maxh=5"}}, // missing metric prefix
		{"expansion", []string{"clustering.x=1"}},   // outside the set
		{"expansion", []string{"expansion.maxh=x"}}, // non-numeric
		{"expansion", []string{".maxh=1"}},          // empty metric
		{"expansion", []string{"expansion.=1"}},     // empty param
	}
	for _, tc := range bad {
		if _, err := ParseSelections(tc.names, tc.kvs); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("ParseSelections(%q, %v) gave %v, want ErrBadParam", tc.names, tc.kvs, err)
		}
	}
}

func TestFormatMetricsListsParams(t *testing.T) {
	var b strings.Builder
	Default().FormatMetrics(&b, "-param ")
	out := b.String()
	if !strings.Contains(out, "resilience\n") || !strings.Contains(out, "-param resilience.trials=<int>") {
		t.Fatalf("FormatMetrics output incomplete:\n%s", out)
	}
}
