package metricreg

import (
	"repro/internal/errs"
)

// MaskedSet is a metric set resolved for masked (node-removal)
// evaluation — the robustness-sweep contract. Resolution validates once
// up front (unknown names, missing CapMasked, bad params all wrap
// errs.ErrBadParam); NewAccumulators then builds one accumulator per
// metric per sweep trial, and each accumulator is reused across every
// step of that trial's removal schedule.
type MaskedSet struct {
	names     []string
	factories []func() (MaskedAccumulator, error)
}

// ResolveMasked resolves a named metric set for masked evaluation with
// default (nil) parameters. Metrics that do not declare CapMasked are
// rejected.
func (r *Registry) ResolveMasked(names []string, seed int64) (*MaskedSet, error) {
	if len(names) == 0 {
		return nil, errs.BadParamf("metricreg: empty masked metric set")
	}
	set := &MaskedSet{
		names:     append([]string(nil), names...),
		factories: make([]func() (MaskedAccumulator, error), len(names)),
	}
	for i, name := range names {
		name := name
		m, err := r.Lookup(name)
		if err != nil {
			return nil, err
		}
		if m.Caps()&CapMasked == 0 {
			return nil, errs.BadParamf("metricreg: metric %q does not support masked evaluation", name)
		}
		resolved, err := Resolve(m, nil)
		if err != nil {
			return nil, err
		}
		set.factories[i] = func() (MaskedAccumulator, error) {
			// A metric that declares CapMasked but whose accumulator
			// cannot evaluate masked is a registration bug surfaced as
			// ErrBadParam, not a panic.
			acc, ok := m.New(resolved, seed).(MaskedAccumulator)
			if !ok {
				return nil, errs.BadParamf("metricreg: metric %q accumulator cannot evaluate masked", name)
			}
			return acc, nil
		}
	}
	return set, nil
}

// ResolveMasked resolves names in the default registry.
func ResolveMasked(names []string, seed int64) (*MaskedSet, error) {
	return defaultRegistry.ResolveMasked(names, seed)
}

// Names returns the set's metric names in selection order.
func (s *MaskedSet) Names() []string { return append([]string(nil), s.names...) }

// Len returns the number of metrics in the set.
func (s *MaskedSet) Len() int { return len(s.names) }

// NewAccumulators builds one fresh accumulator per metric, in set
// order.
func (s *MaskedSet) NewAccumulators() ([]MaskedAccumulator, error) {
	accs := make([]MaskedAccumulator, len(s.factories))
	for i, f := range s.factories {
		acc, err := f()
		if err != nil {
			return nil, err
		}
		accs[i] = acc
	}
	return accs, nil
}
