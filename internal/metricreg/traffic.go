package metricreg

import (
	"context"
	"math"

	"repro/internal/params"
)

// Traffic metrics: the performance half of the paper's cost/performance
// tradeoff, evaluated against a demand set attached to the Source
// (SetTraffic) — offered volumes routed on shortest paths and allocated
// max-min fairly with volume ceilings. All four declare CapTraffic (the
// source must carry demands) and CapGraph (routing needs edge
// capacities), and share one routing/allocation pass per Source.
func init() {
	stats := []struct {
		name string
		stat trafficStat
	}{
		{"throughput", tsThroughput},
		{"max-utilization", tsMaxUtil},
		{"jain", tsJain},
		{"delivered-frac", tsDeliveredFrac},
	}
	for _, s := range stats {
		s := s
		m := &FuncMetric{
			MetricName: s.name,
			MetricCaps: CapTraffic | CapGraph,
			NewFn: func(params.Params, int64) Accumulator {
				return &trafficAcc{stat: s.stat}
			},
		}
		if err := Register(m); err != nil {
			panic(err)
		}
	}
}

type trafficStat int

const (
	// tsThroughput: total volume-aware max-min fair allocated rate.
	tsThroughput trafficStat = iota
	// tsMaxUtil: max over edges of shortest-path load / capacity; -1
	// when a loaded edge has no capacity (keeps JSON finite).
	tsMaxUtil
	// tsJain: Jain's fairness index over the routable demands'
	// allocated rates.
	tsJain
	// tsDeliveredFrac: allocated throughput over total offered volume.
	tsDeliveredFrac
)

type trafficAcc struct {
	stat trafficStat
	val  Value
}

func (a *trafficAcc) Run(ctx context.Context, src *Source, _ int) error {
	ev, err := src.traffic(ctx)
	if err != nil {
		return err
	}
	switch a.stat {
	case tsThroughput:
		a.val = Value{Scalar: ev.mm.Throughput}
	case tsMaxUtil:
		u := ev.sp.MaxUtilization
		if math.IsInf(u, 0) || math.IsNaN(u) {
			u = -1
		}
		a.val = Value{Scalar: u}
	case tsJain:
		a.val = Value{Scalar: ev.mm.JainIndex}
	case tsDeliveredFrac:
		if ev.offered > 0 {
			a.val = Value{Scalar: ev.mm.Throughput / ev.offered}
		}
	}
	return nil
}

func (a *trafficAcc) Finalize() Value { return a.val }
