package metricreg

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/routing"
)

func trafficSet() []Selection {
	return []Selection{
		{Name: "throughput"}, {Name: "max-utilization"},
		{Name: "jain"}, {Name: "delivered-frac"},
	}
}

// TestTrafficMetricsHandComputed evaluates the four CapTraffic metrics
// on the hand-checked volume-aware instance: a capacity-6 edge shared
// by volumes 1 and 100 allocates [1 5].
func TestTrafficMetricsHandComputed(t *testing.T) {
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 6})
	g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 100})
	src := NewSource(g, nil)
	src.SetTraffic([]routing.Demand{
		{Src: 0, Dst: 1, Volume: 1},
		{Src: 0, Dst: 2, Volume: 100},
	})
	vals, err := Evaluate(context.Background(), src, trafficSet(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := vals["throughput"].Scalar; math.Abs(got-6) > 1e-9 {
		t.Errorf("throughput = %v, want 6", got)
	}
	// Shortest-path routing of the full offered volumes loads the
	// shared edge with 101 over capacity 6.
	if got := vals["max-utilization"].Scalar; math.Abs(got-101.0/6.0) > 1e-9 {
		t.Errorf("max-utilization = %v, want %v", got, 101.0/6.0)
	}
	if got := vals["jain"].Scalar; math.Abs(got-36.0/52.0) > 1e-9 {
		t.Errorf("jain = %v, want %v", got, 36.0/52.0)
	}
	if got := vals["delivered-frac"].Scalar; math.Abs(got-6.0/101.0) > 1e-9 {
		t.Errorf("delivered-frac = %v, want %v", got, 6.0/101.0)
	}
}

// TestTrafficMetricsNeedDemands pins the CapTraffic contract: a source
// without SetTraffic rejects traffic metrics as ErrBadParam.
func TestTrafficMetricsNeedDemands(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 1})
	for _, sel := range trafficSet() {
		_, err := Evaluate(context.Background(), NewSource(g, nil), []Selection{sel}, Options{})
		if !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("%s without traffic gave %v, want ErrBadParam", sel.Name, err)
		}
	}
	// A CSR-only source cannot route either (CapGraph).
	src := NewSource(nil, g.Freeze())
	src.SetTraffic([]routing.Demand{{Src: 0, Dst: 1, Volume: 1}})
	if _, err := Evaluate(context.Background(), src, trafficSet(), Options{}); !errors.Is(err, errs.ErrBadParam) {
		t.Errorf("CSR-only source gave %v, want ErrBadParam", err)
	}
}

// TestTrafficMetricsEmptyAndInfinite covers the degenerate values: an
// empty demand set reports zeros, and a loaded zero-capacity edge
// clamps max-utilization to -1 so results stay JSON-safe.
func TestTrafficMetricsEmptyAndInfinite(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 0})

	src := NewSource(g, nil)
	src.SetTraffic([]routing.Demand{})
	vals, err := Evaluate(context.Background(), src, trafficSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range trafficSet() {
		if got := vals[sel.Name].Scalar; got != 0 {
			t.Errorf("%s on empty demands = %v, want 0", sel.Name, got)
		}
	}

	loaded := NewSource(g, nil)
	loaded.SetTraffic([]routing.Demand{{Src: 0, Dst: 1, Volume: 2}})
	vals, err = Evaluate(context.Background(), loaded, trafficSet(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := vals["max-utilization"].Scalar; got != -1 {
		t.Errorf("max-utilization over a zero-capacity edge = %v, want the -1 clamp", got)
	}
	if got := vals["throughput"].Scalar; got != 0 {
		t.Errorf("throughput over a zero-capacity edge = %v, want 0", got)
	}
}
