package metricreg

import (
	"context"
	"testing"

	"repro/internal/params"
)

// The fused-schedule claim, measured: evaluating three BFS-consuming
// metrics as one set shares a single sweep over the union of their
// sources, where independent evaluation re-walks the graph per metric.
// Run with -benchmem: the fused variant does ~1/3 the traversals and
// allocations of the unfused one on the same metric set.

func BenchmarkEvaluateFusedBFSSet(b *testing.B) {
	g := ladder(2000, 13)
	set := []Selection{
		{Name: "expansion", Params: params.Params{"maxh": 4, "sources": 0}},
		{Name: "avg-hop-length"},
		{Name: "diameter"},
	}
	src := NewSource(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Default().Evaluate(context.Background(), src, set, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateUnfusedBFSSet(b *testing.B) {
	g := ladder(2000, 13)
	set := []Selection{
		{Name: "expansion", Params: params.Params{"maxh": 4, "sources": 0}},
		{Name: "avg-hop-length"},
		{Name: "diameter"},
	}
	src := NewSource(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sel := range set {
			if _, err := Default().Evaluate(context.Background(), src, []Selection{sel}, Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEvaluateProfileSet times the scenario engine's default
// Measure workload through the registry.
func BenchmarkEvaluateProfileSet(b *testing.B) {
	g := ladder(1000, 11)
	src := NewSource(g, nil)
	set := []Selection{
		{Name: "expansion", Params: params.Params{"maxh": 3, "sources": 50}},
		{Name: "resilience", Params: params.Params{"steps": 10, "trials": 3}},
		{Name: "distortion", Params: params.Params{"sample": 2000}},
		{Name: "hierarchy-depth"},
		{Name: "spectral-gap", Params: params.Params{"iters": 150}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Default().Evaluate(context.Background(), src, set, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
