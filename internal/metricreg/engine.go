package metricreg

import (
	"context"
	"sort"
	"sync"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/routing"
)

// Accumulator is the streaming state of one metric during one
// evaluation. Finalize reduces whatever the engine fed it — always in a
// fixed (slot) order, so results are identical for any worker count —
// into the metric's Value. Every accumulator must additionally
// implement BFSAccumulator or BulkAccumulator so the engine can
// schedule it.
type Accumulator interface {
	Finalize() Value
}

// BFSAccumulator subscribes to the fused BFS sweep: the engine unions
// the sources of every subscribed accumulator, runs one BFS per
// distinct source, and hands each result to every accumulator that
// asked for that source — N metrics over shared sources cost one
// traversal each, not N.
type BFSAccumulator interface {
	Accumulator
	// Sources returns the BFS source nodes this accumulator needs for
	// an n-node snapshot, deterministically from its params and seed.
	// The engine calls it exactly once, before any Observe.
	Sources(n int) []int
	// Observe records the finished BFS from src — Sources(n)[slot] —
	// whose hop distances are in ws.Hop. Distinct slots may be observed
	// concurrently; implementations keep per-slot state and reduce in
	// Finalize.
	Observe(slot, src int, ws *graph.Workspace)
}

// BulkAccumulator runs as one standalone task of the evaluation
// schedule, parallelizing internally up to the engine's worker bound.
type BulkAccumulator interface {
	Accumulator
	Run(ctx context.Context, src *Source, workers int) error
}

// MaskedAccumulator re-evaluates the metric with a node-removal mask
// applied — the robustness-sweep contract. Implementations are pure in
// (ws, c, removed), so one accumulator is reused across every step of
// an attack schedule.
type MaskedAccumulator interface {
	Accumulator
	EvaluateMasked(ws *graph.Workspace, c *graph.CSR, removed []bool) float64
}

// Source is what a metric set is evaluated against: a frozen CSR
// snapshot, optionally the graph it came from (CapGraph metrics), and a
// lazily computed, shared connectivity bit (CapConnected metrics). The
// snapshot is frozen lazily — an evaluation whose metrics only read the
// graph (e.g. assortativity) never pays for a freeze.
type Source struct {
	g *graph.Graph

	csrOnce sync.Once
	c       *graph.CSR

	connOnce sync.Once
	conn     bool

	// Traffic state (CapTraffic metrics): the attached demand set and
	// the routing/allocation results computed from it, once per Source
	// and shared by every traffic metric of the set.
	demands     []routing.Demand
	trafficOnce sync.Once
	alloc       *trafficEval
	trafficErr  error
}

// trafficEval bundles the shared traffic evaluation: the volume-aware
// max-min fair allocation, the uncapacitated shortest-path routing of
// the full offered volumes (the provisioning-quality view), and the
// total offered volume.
type trafficEval struct {
	mm      *routing.MaxMinResult
	sp      *routing.Result
	offered float64
}

// NewSource builds a Source from a graph and/or its frozen snapshot:
// pass both to reuse an existing CSR, g alone to freeze lazily on first
// CSR use, or c alone for a CSR-only source (CapGraph metrics are then
// rejected).
func NewSource(g *graph.Graph, c *graph.CSR) *Source {
	return &Source{g: g, c: c}
}

// Graph returns the mutable graph, or nil for a CSR-only source.
func (s *Source) Graph() *graph.Graph { return s.g }

// CSR returns the frozen snapshot, freezing the graph on first use if
// none was supplied. Safe for concurrent callers.
func (s *Source) CSR() *graph.CSR {
	s.csrOnce.Do(func() {
		if s.c == nil && s.g != nil {
			s.c = s.g.Freeze()
		}
	})
	return s.c
}

// NumNodes returns the topology's node count without forcing a freeze.
func (s *Source) NumNodes() int {
	if s.c != nil {
		return s.c.NumNodes()
	}
	return s.g.NumNodes()
}

// SetTraffic attaches a demand set to the source, enabling CapTraffic
// metrics (throughput, max-utilization, jain, delivered-frac). Call it
// before Evaluate; the demands are routed and allocated lazily, once,
// on first use by any traffic metric. The slice is retained.
func (s *Source) SetTraffic(demands []routing.Demand) { s.demands = demands }

// HasTraffic reports whether a demand set is attached (an empty,
// non-nil demand set counts: the traffic metrics then report zeros).
func (s *Source) HasTraffic() bool { return s.demands != nil }

// traffic computes the shared traffic evaluation once: the volume-aware
// max-min fair allocation and the shortest-path routing of the attached
// demands, from a single path-pinning pass over the snapshot. Safe for
// concurrent traffic metrics.
func (s *Source) traffic(ctx context.Context) (*trafficEval, error) {
	s.trafficOnce.Do(func() {
		ev := &trafficEval{}
		for _, d := range s.demands {
			ev.offered += d.Volume
		}
		ev.sp, ev.mm, s.trafficErr = routing.RouteAndAllocateContext(ctx, s.g, s.CSR(), s.demands)
		if s.trafficErr != nil {
			return
		}
		s.alloc = ev
	})
	return s.alloc, s.trafficErr
}

// Connected reports whether the topology is connected (the empty
// topology counts as connected, matching graph.IsConnected). The bit is
// computed once per Source and shared by every metric that declares
// CapConnected.
func (s *Source) Connected() bool {
	s.connOnce.Do(func() {
		if s.g != nil {
			s.conn = s.g.IsConnected()
			return
		}
		n := s.CSR().NumNodes()
		if n == 0 {
			s.conn = true
			return
		}
		ws := graph.GetWorkspace(n)
		defer ws.Release()
		s.c.BFS(ws, 0)
		s.conn = true
		for _, d := range ws.Hop[:n] {
			if d < 0 {
				s.conn = false
				break
			}
		}
	})
	return s.conn
}

// Options tune one Evaluate call.
type Options struct {
	// Workers bounds each fan-out level of the schedule (<= 0 means
	// GOMAXPROCS). All reductions happen in fixed order, so results are
	// byte-identical for any value.
	Workers int
	// Seed drives every sampled decision (BFS source choice, resilience
	// trials) deterministically.
	Seed int64
	// Stats, when non-nil, receives the planned schedule's shape — the
	// fused-vs-independent pass accounting.
	Stats *EvalStats
}

// EvalStats describes the traversal schedule one Evaluate planned.
type EvalStats struct {
	// BFSRuns is the number of BFS traversals the fused sweep executed:
	// the size of the union of every subscriber's source set.
	BFSRuns int
	// BFSRequested is the sum of the subscribers' source-set sizes —
	// what the same set would have cost evaluated independently.
	BFSRequested int
	// BulkTasks is the number of standalone metric tasks.
	BulkTasks int
}

// Evaluate computes a metric set against src as one fused schedule:
// selections are resolved and validated (unknown metrics, duplicate
// names, bad params, and missing capabilities wrap errs.ErrBadParam),
// BFS-consuming accumulators share a single sweep over the union of
// their sources, and remaining accumulators run as parallel standalone
// tasks. The context is checked at iteration boundaries; the first
// (lowest-task-index) failure is returned. Results are keyed by metric
// name and byte-identical for any Options.Workers.
func (r *Registry) Evaluate(ctx context.Context, src *Source, set []Selection, opt Options) (map[string]Value, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if src == nil || (src.g == nil && src.c == nil) {
		return nil, errs.BadParamf("metricreg: evaluation needs a source with a graph or CSR snapshot")
	}
	if len(set) == 0 {
		return nil, errs.BadParamf("metricreg: empty metric set")
	}
	n := src.NumNodes()
	accs := make([]Accumulator, len(set))
	seen := make(map[string]bool, len(set))
	for i, sel := range set {
		m, err := r.Lookup(sel.Name)
		if err != nil {
			return nil, err
		}
		if seen[sel.Name] {
			return nil, errs.BadParamf("metricreg: duplicate metric %q in set", sel.Name)
		}
		seen[sel.Name] = true
		if m.Caps()&CapGraph != 0 && src.g == nil {
			return nil, errs.BadParamf("metricreg: metric %q needs the full graph, source holds only a CSR snapshot", sel.Name)
		}
		if m.Caps()&CapTraffic != 0 && !src.HasTraffic() {
			return nil, errs.BadParamf("metricreg: metric %q needs a demand set, source has no traffic attached (SetTraffic)", sel.Name)
		}
		resolved, err := Resolve(m, sel.Params)
		if err != nil {
			return nil, err
		}
		accs[i] = m.New(resolved, opt.Seed)
	}

	// Plan the fused BFS sweep: union the subscribers' sources so each
	// distinct source is traversed exactly once, whatever the overlap.
	type sub struct {
		acc  BFSAccumulator
		slot int
	}
	bySrc := make(map[int][]sub)
	var union []int
	requested := 0
	var bulks []BulkAccumulator
	for i, a := range accs {
		if ba, ok := a.(BFSAccumulator); ok {
			srcs := ba.Sources(n)
			requested += len(srcs)
			for slot, s := range srcs {
				if len(bySrc[s]) == 0 {
					union = append(union, s)
				}
				bySrc[s] = append(bySrc[s], sub{ba, slot})
			}
			continue
		}
		if bu, ok := a.(BulkAccumulator); ok {
			bulks = append(bulks, bu)
			continue
		}
		return nil, errs.BadParamf("metricreg: metric %q accumulator implements neither sweep nor bulk role", set[i].Name)
	}
	sort.Ints(union)
	if opt.Stats != nil {
		*opt.Stats = EvalStats{BFSRuns: len(union), BFSRequested: requested, BulkTasks: len(bulks)}
	}

	// Execute: the sweep and every bulk task are peers of one parallel
	// schedule; each bounds its internal fan-out by the same worker
	// count. Errors are selected by task index, deterministically.
	tasks := make([]func() error, 0, len(bulks)+1)
	if len(union) > 0 {
		tasks = append(tasks, func() error {
			c := src.CSR()
			// One pooled workspace per sweep worker: the fused sweep then
			// runs allocation-free at any node count. The worker budget is
			// split between the source fan-out and each traversal's
			// bottom-up shards (outer*inner <= budget), so a sweep with few
			// sources over a large snapshot still saturates the machine.
			workers, inner := par.Split(opt.Workers, len(union))
			inner = c.IntraWorkers(inner)
			wss := make([]*graph.Workspace, workers)
			for w := range wss {
				wss[w] = graph.GetWorkspace(n)
				defer wss[w].Release()
			}
			return par.ForEachWorkerErr(workers, len(union), func(w, i int) error {
				if err := errs.Ctx(ctx); err != nil {
					return err
				}
				u := union[i]
				ws := wss[w]
				c.BFSParallel(ws, u, inner)
				for _, sb := range bySrc[u] {
					sb.acc.Observe(sb.slot, u, ws)
				}
				return nil
			})
		})
	}
	for _, b := range bulks {
		b := b
		tasks = append(tasks, func() error { return b.Run(ctx, src, opt.Workers) })
	}
	taskErr := make([]error, len(tasks))
	par.ForEach(opt.Workers, len(tasks), func(i int) { taskErr[i] = tasks[i]() })
	for _, err := range taskErr {
		if err != nil {
			return nil, err
		}
	}

	out := make(map[string]Value, len(set))
	for i, sel := range set {
		out[sel.Name] = accs[i].Finalize()
	}
	return out, nil
}

// Evaluate computes a metric set with the default registry.
func Evaluate(ctx context.Context, src *Source, set []Selection, opt Options) (map[string]Value, error) {
	return defaultRegistry.Evaluate(ctx, src, set, opt)
}

// Scalar evaluates one parameterless metric of the default registry on
// g, sequentially with seed 0 — the convenience path under the thin
// internal/stats wrappers. Metrics whose evaluation can fail should use
// Evaluate; Scalar returns 0 on error.
func Scalar(name string, g *graph.Graph) float64 {
	vals, err := defaultRegistry.Evaluate(context.Background(), NewSource(g, nil),
		[]Selection{{Name: name}}, Options{Workers: 1})
	if err != nil {
		return 0
	}
	return vals[name].Scalar
}
