// Package metricreg is the measurement mirror of the generator registry
// (internal/scenario): every structural/performance metric the paper's
// comparison battery needs is registered by name with typed, validated,
// JSON-serializable parameters, and a fused evaluation engine computes a
// named metric set in shared passes over one frozen CSR snapshot.
//
// Three pieces compose:
//
//   - A Metric interface: name, parameter specs (internal/params), and
//     the capabilities it needs from the evaluation source (CapGraph,
//     CapConnected, CapMasked).
//   - Streaming Accumulators: a metric's New builds one accumulator per
//     evaluation; accumulators that consume breadth-first sweeps
//     (BFSAccumulator) subscribe to a single fused BFS pass — metrics
//     sharing sources share traversals instead of each re-walking the
//     graph — while BulkAccumulators run as standalone tasks and
//     MaskedAccumulators re-evaluate under node-removal masks (the
//     robustness sweep contract).
//   - Registry.Evaluate: plans the fused traversal schedule, fans it out
//     across pooled workspaces, and finalizes every accumulator in set
//     order, so results are byte-identical for any worker count.
package metricreg

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/errs"
	"repro/internal/params"
)

// Caps declares what a metric needs from the evaluation source beyond
// the frozen CSR snapshot every metric gets.
type Caps uint32

// Capability flags.
const (
	// CapGraph: the metric needs the mutable *graph.Graph (edge lists,
	// MST, betweenness) — a CSR-only source cannot evaluate it.
	CapGraph Caps = 1 << iota
	// CapConnected: the metric consumes the source's connectivity bit,
	// computed once and shared across the set.
	CapConnected
	// CapMasked: the metric's accumulator supports masked
	// (node-removal) re-evaluation, the robustness-sweep contract.
	CapMasked
	// CapTraffic: the metric evaluates a traffic allocation, so the
	// source must carry a demand set (Source.SetTraffic). The shared
	// routing/allocation results are computed once per Source and
	// reused by every traffic metric in the set.
	CapTraffic
)

// Value is one metric's result: a scalar, plus an optional series for
// curve-valued metrics (the expansion profile). For those, Scalar is
// the curve's headline point (its last entry).
type Value struct {
	Scalar float64   `json:"scalar"`
	Series []float64 `json:"series,omitempty"`
}

// Metric is one registered measurement: a name, a typed parameter
// interface, declared capabilities, and a streaming-accumulator
// factory.
type Metric interface {
	// Name is the registry key (e.g. "expansion", "clustering").
	Name() string
	// Params declares the accepted parameters with kinds, defaults and
	// bounds.
	Params() []params.Spec
	// Caps declares what the metric needs from the evaluation source.
	Caps() Caps
	// New builds an accumulator for one evaluation. The given Params
	// have been resolved against the declared specs; seed drives every
	// sampled decision deterministically. The returned accumulator must
	// implement BFSAccumulator or BulkAccumulator (or both roles via
	// MaskedAccumulator for sweep reuse).
	New(p params.Params, seed int64) Accumulator
}

// Selection names one metric of a set with optional parameters; a
// []Selection is the unit Registry.Evaluate plans as one fused
// schedule. It round-trips through JSON (the shared internal/params
// shape, also under the attack and traffic registries).
type Selection = params.Selection

// Resolve validates user-supplied params against the metric's specs
// and returns a complete parameter set with defaults filled in,
// wrapping errs.ErrBadParam on unknown names, non-integral Int values
// and out-of-bounds values.
func Resolve(m Metric, p params.Params) (params.Params, error) {
	return params.Resolve(fmt.Sprintf("metricreg: metric %q", m.Name()), m.Params(), p)
}

// Registry maps metric names to Metrics. The zero value is ready to
// use; Default() holds every built-in metric.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a metric, rejecting duplicate or empty names.
func (r *Registry) Register(m Metric) error {
	name := m.Name()
	if name == "" {
		return errs.BadParamf("metricreg: metric with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = map[string]Metric{}
	}
	if _, dup := r.byName[name]; dup {
		return errs.BadParamf("metricreg: metric %q already registered", name)
	}
	r.byName[name] = m
	return nil
}

// Lookup resolves a metric by name, wrapping errs.ErrBadParam for
// unknown names.
func (r *Registry) Lookup(name string) (Metric, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.byName[name]
	if !ok {
		return nil, errs.BadParamf("metricreg: unknown metric %q (have %v)", name, r.namesLocked())
	}
	return m, nil
}

// Names lists every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry holding every built-in
// metric (and anything added through Register).
func Default() *Registry { return defaultRegistry }

// Register adds a metric to the default registry.
func Register(m Metric) error { return defaultRegistry.Register(m) }

// Lookup resolves a name in the default registry.
func Lookup(name string) (Metric, error) { return defaultRegistry.Lookup(name) }

// Names lists the default registry, sorted.
func Names() []string { return defaultRegistry.Names() }

// FuncMetric adapts a parameter-spec list plus an accumulator factory
// into a Metric; it is how every built-in metric is registered and the
// easiest way to add external ones.
type FuncMetric struct {
	MetricName   string
	MetricParams []params.Spec
	MetricCaps   Caps
	NewFn        func(p params.Params, seed int64) Accumulator
}

// Name implements Metric.
func (f *FuncMetric) Name() string { return f.MetricName }

// Params implements Metric.
func (f *FuncMetric) Params() []params.Spec {
	out := make([]params.Spec, len(f.MetricParams))
	copy(out, f.MetricParams)
	return out
}

// Caps implements Metric.
func (f *FuncMetric) Caps() Caps { return f.MetricCaps }

// New implements Metric.
func (f *FuncMetric) New(p params.Params, seed int64) Accumulator { return f.NewFn(p, seed) }

// FormatMetrics writes a human-readable listing of every registered
// metric and its parameters (sorted by name), prefixing each parameter
// line with paramPrefix — CLIs share this for their -list flags.
func (r *Registry) FormatMetrics(w io.Writer, paramPrefix string) {
	for _, name := range r.Names() {
		m, err := r.Lookup(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%s\n", name)
		specs := m.Params()
		sort.Slice(specs, func(a, b int) bool { return specs[a].Name < specs[b].Name })
		for _, s := range specs {
			fmt.Fprintf(w, "  %s%s.%s=<%s>  (default %g)  %s\n", paramPrefix, name, s.Name, s.Kind, s.Default, s.Help)
		}
	}
}

// ParseSelections builds a metric set from a comma-separated name list
// plus "metric.param=value" assignments (the cmd/topostats flag syntax,
// via the shared internal/params parser). Every failure wraps
// errs.ErrBadParam; assignments naming a metric outside the selected
// set are rejected so typos fail loudly.
func ParseSelections(names string, kvs []string) ([]Selection, error) {
	return params.ParseSelections("metricreg", "metric", nil, names, kvs)
}
