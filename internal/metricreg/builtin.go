package metricreg

import (
	"context"
	"math"
	"sort"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/params"
	"repro/internal/rng"
)

// Built-in metrics. The traversal-heavy implementations moved here
// verbatim from internal/metrics and internal/stats (which now wrap the
// registry), so registry evaluation is numerically identical to the
// pre-registry free functions — the golden parity test in
// internal/metrics pins that.
func init() {
	for _, m := range builtins() {
		if err := Register(m); err != nil {
			panic(err)
		}
	}
}

func intSpec(name string, def float64, min *float64, help string) params.Spec {
	return params.Spec{Name: name, Kind: params.Int, Default: def, Min: min, Help: help}
}

func fptr(v float64) *float64 { return &v }

func builtins() []Metric {
	return []Metric{
		&FuncMetric{
			MetricName: "expansion",
			MetricParams: []params.Spec{
				intSpec("maxh", 3, fptr(1), "hop horizon of the expansion curve"),
				intSpec("sources", 50, nil, "BFS sample sources (<= 0 = all nodes)"),
			},
			NewFn: func(p params.Params, seed int64) Accumulator {
				return &expansionAcc{maxH: p.Int("maxh"), sample: p.Int("sources"), seed: seed}
			},
		},
		&FuncMetric{
			MetricName: "avg-hop-length",
			MetricParams: []params.Spec{
				intSpec("sources", 0, nil, "BFS sample sources (<= 0 = all nodes)"),
			},
			NewFn: func(p params.Params, seed int64) Accumulator {
				return &hopStatsAcc{sample: p.Int("sources"), seed: seed}
			},
		},
		&FuncMetric{
			MetricName: "diameter",
			MetricParams: []params.Spec{
				intSpec("sources", 0, nil, "BFS sample sources (<= 0 = all nodes; sampling lower-bounds the result)"),
			},
			NewFn: func(p params.Params, seed int64) Accumulator {
				return &hopStatsAcc{sample: p.Int("sources"), seed: seed, wantMax: true}
			},
		},
		&FuncMetric{
			MetricName: "resilience",
			MetricParams: []params.Spec{
				intSpec("steps", 10, fptr(1), "removal fractions sampled per trial"),
				intSpec("trials", 3, fptr(1), "random removal orders averaged"),
			},
			NewFn: func(p params.Params, seed int64) Accumulator {
				return &resilienceAcc{steps: p.Int("steps"), trials: p.Int("trials"), seed: seed}
			},
		},
		&FuncMetric{
			MetricName: "lcc",
			MetricCaps: CapMasked,
			NewFn: func(params.Params, int64) Accumulator {
				return &lccAcc{}
			},
		},
		&FuncMetric{
			MetricName: "distortion",
			MetricParams: []params.Spec{
				intSpec("sample", 2000, nil, "graph edges sampled for tree-distance queries (<= 0 = all)"),
			},
			MetricCaps: CapGraph,
			NewFn: func(p params.Params, seed int64) Accumulator {
				return &distortionAcc{sample: p.Int("sample"), seed: seed}
			},
		},
		&FuncMetric{
			MetricName: "hierarchy-depth",
			MetricParams: []params.Spec{
				intSpec("root", -1, fptr(-1), "root node id (-1 = maximum-betweenness node)"),
			},
			MetricCaps: CapGraph,
			NewFn: func(p params.Params, _ int64) Accumulator {
				return &hierarchyAcc{root: p.Int("root")}
			},
		},
		&FuncMetric{
			MetricName: "spectral-gap",
			MetricParams: []params.Spec{
				intSpec("iters", 150, nil, "power-iteration steps (<= 0 = 200)"),
			},
			MetricCaps: CapConnected,
			NewFn: func(p params.Params, _ int64) Accumulator {
				return &spectralAcc{iters: p.Int("iters")}
			},
		},
		&FuncMetric{
			MetricName: "clustering",
			NewFn: func(params.Params, int64) Accumulator {
				return &clusteringAcc{}
			},
		},
		&FuncMetric{
			MetricName: "assortativity",
			MetricCaps: CapGraph,
			NewFn: func(params.Params, int64) Accumulator {
				return &assortativityAcc{}
			},
		},
		&FuncMetric{
			MetricName: "mean-degree",
			MetricCaps: CapMasked,
			NewFn: func(params.Params, int64) Accumulator {
				return &degreeAcc{stat: degMean}
			},
		},
		&FuncMetric{
			MetricName: "max-degree",
			NewFn: func(params.Params, int64) Accumulator {
				return &degreeAcc{stat: degMax}
			},
		},
		&FuncMetric{
			MetricName: "top-degree-frac",
			NewFn: func(params.Params, int64) Accumulator {
				return &degreeAcc{stat: degTopFrac}
			},
		},
		&FuncMetric{
			MetricName: "degree-cv",
			NewFn: func(params.Params, int64) Accumulator {
				return &degreeAcc{stat: degCV}
			},
		},
		&FuncMetric{
			MetricName: "nodes",
			NewFn: func(params.Params, int64) Accumulator {
				return &sizeAcc{edges: false}
			},
		},
		&FuncMetric{
			MetricName: "edges",
			NewFn: func(params.Params, int64) Accumulator {
				return &sizeAcc{edges: true}
			},
		},
	}
}

// chooseSources picks k deterministic BFS sources (all nodes when k <= 0
// or k >= n).
func chooseSources(n, k int, seed int64) []int {
	if k <= 0 || k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	r := rng.New(seed)
	return rng.Shuffle(r, n)[:k]
}

// expansionAcc measures how rapidly BFS balls grow: the average, over
// sample source nodes, of the fraction of nodes reachable within h
// hops, for each h up to maxH. High expansion ⇒ the graph "spreads"
// quickly (low diameter); trees expand slowly, well-connected meshes
// fast. Value: Series is the curve over h = 0..maxH, Scalar its last
// point (the fraction within maxH hops).
type expansionAcc struct {
	maxH, sample int
	seed         int64
	n            int
	sources      []int
	rows         [][]int
}

func (a *expansionAcc) Sources(n int) []int {
	a.n = n
	a.sources = chooseSources(n, a.sample, a.seed)
	a.rows = make([][]int, len(a.sources))
	return a.sources
}

func (a *expansionAcc) Observe(slot, _ int, ws *graph.Workspace) {
	row := make([]int, a.maxH+1)
	for _, d := range ws.Hop[:a.n] {
		if d >= 0 && int(d) <= a.maxH {
			row[d]++
		}
	}
	a.rows[slot] = row
}

func (a *expansionAcc) Finalize() Value {
	if a.n == 0 || len(a.sources) == 0 {
		return Value{}
	}
	out := make([]float64, a.maxH+1)
	for _, row := range a.rows {
		acc := 0
		for h := 0; h <= a.maxH; h++ {
			acc += row[h]
			out[h] += float64(acc) / float64(a.n)
		}
	}
	for h := range out {
		out[h] /= float64(len(a.sources))
	}
	return Value{Scalar: out[len(out)-1], Series: out}
}

// hopStatsAcc consumes the shared BFS sweep for the hop-distance
// statistics: mean finite hop distance over the sampled sources
// (avg-hop-length) or the maximum finite eccentricity seen (diameter —
// with sources <= 0 this is the exact diameter of a connected graph
// and the largest within-component eccentricity of a disconnected one;
// sampling lower-bounds it). Unreachable pairs are excluded from both.
type hopStatsAcc struct {
	sample  int
	seed    int64
	wantMax bool
	n       int
	sums    []float64
	counts  []int
	maxes   []int32
}

func (a *hopStatsAcc) Sources(n int) []int {
	a.n = n
	srcs := chooseSources(n, a.sample, a.seed)
	a.sums = make([]float64, len(srcs))
	a.counts = make([]int, len(srcs))
	a.maxes = make([]int32, len(srcs))
	return srcs
}

func (a *hopStatsAcc) Observe(slot, _ int, ws *graph.Workspace) {
	sum := 0.0
	count := 0
	max := int32(0)
	for _, d := range ws.Hop[:a.n] {
		if d > 0 {
			sum += float64(d)
			count++
			if d > max {
				max = d
			}
		}
	}
	a.sums[slot], a.counts[slot], a.maxes[slot] = sum, count, max
}

func (a *hopStatsAcc) Finalize() Value {
	if a.wantMax {
		best := int32(0)
		for _, m := range a.maxes {
			if m > best {
				best = m
			}
		}
		return Value{Scalar: float64(best)}
	}
	total := 0.0
	count := 0
	for i, s := range a.sums {
		total += s
		count += a.counts[i]
	}
	if count == 0 {
		return Value{}
	}
	return Value{Scalar: total / float64(count)}
}

// lccFrac is the shared masked-LCC kernel call: the largest surviving
// connected component as a fraction of the original node count. The
// resilience metric and every robustness sweep go through it.
func lccFrac(ws *graph.Workspace, c *graph.CSR, removed []bool) float64 {
	return float64(c.LargestComponentMasked(ws, removed)) / float64(c.NumNodes())
}

// lccAcc reports the largest-component fraction; masked evaluation is
// the unit of every attack/failure sweep.
type lccAcc struct {
	val Value
}

func (a *lccAcc) Run(ctx context.Context, src *Source, _ int) error {
	if err := errs.Ctx(ctx); err != nil {
		return err
	}
	c := src.CSR()
	n := c.NumNodes()
	if n == 0 {
		return nil
	}
	ws := graph.GetWorkspace(n)
	defer ws.Release()
	a.val = Value{Scalar: lccFrac(ws, c, make([]bool, n))}
	return nil
}

func (a *lccAcc) EvaluateMasked(ws *graph.Workspace, c *graph.CSR, removed []bool) float64 {
	return lccFrac(ws, c, removed)
}

func (a *lccAcc) Finalize() Value { return a.val }

// resilienceAcc measures how gracefully connectivity degrades under
// random node removal: the area under the curve of (largest component
// fraction) vs (fraction removed), estimated over `trials` random
// removal orders at `steps` removal fractions. 1.0 would mean the graph
// never fragments; lower is less resilient. Each trial incrementally
// extends one removal mask and re-measures through the shared
// masked-LCC kernel — no subgraph copies — and trials run in parallel.
type resilienceAcc struct {
	steps, trials int
	seed          int64
	val           Value
}

func (a *resilienceAcc) Run(ctx context.Context, src *Source, workers int) error {
	c := src.CSR()
	n := c.NumNodes()
	if n == 0 {
		return nil
	}
	perTrial := make([]float64, a.trials)
	err := par.ForEachErr(workers, a.trials, func(trial int) error {
		if err := errs.Ctx(ctx); err != nil {
			return err
		}
		r := rng.New(rng.Derive(a.seed, trial))
		perm := rng.Shuffle(r, n)
		ws := graph.GetWorkspace(n)
		defer ws.Release()
		removed := make([]bool, n)
		prev := 0
		sum := 0.0
		for s := 1; s <= a.steps; s++ {
			frac := float64(s) / float64(a.steps+1)
			k := int(frac * float64(n))
			for ; prev < k; prev++ {
				removed[perm[prev]] = true
			}
			sum += lccFrac(ws, c, removed)
		}
		perTrial[trial] = sum
		return nil
	})
	if err != nil {
		return err
	}
	total := 0.0
	for _, s := range perTrial {
		total += s
	}
	a.val = Value{Scalar: total / float64(a.steps*a.trials)}
	return nil
}

func (a *resilienceAcc) Finalize() Value { return a.val }

// distortionAcc measures how well the graph's own spanning structure
// preserves graph distances: following [30], the average, over edges of
// a minimum spanning tree, of the tree distance between the edge's
// endpoints. A tree has distortion 1; meshes with much redundancy have
// higher distortion. Needs CapGraph for the MST and edge list.
type distortionAcc struct {
	sample int
	seed   int64
	val    Value
}

func (a *distortionAcc) Run(ctx context.Context, src *Source, workers int) error {
	g := src.Graph()
	m := g.NumEdges()
	n := g.NumNodes()
	if m == 0 || n == 0 {
		return nil
	}
	// Build MST as its own graph.
	mstIDs, _ := g.KruskalMST()
	tree := graph.New(n)
	for i := 0; i < n; i++ {
		tree.AddNode(*g.Node(i))
	}
	for _, id := range mstIDs {
		e := g.Edge(id)
		tree.AddEdge(graph.Edge{U: e.U, V: e.V, Weight: e.Weight})
	}
	// Sample non-tree edges (tree edges have distortion exactly 1).
	edges := make([]int, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, i)
	}
	if a.sample > 0 && a.sample < m {
		r := rng.New(a.seed)
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		edges = edges[:a.sample]
	}
	// Group queries by source to share BFS runs.
	bySrc := map[int][]int{}
	for _, id := range edges {
		e := g.Edge(id)
		bySrc[e.U] = append(bySrc[e.U], e.V)
	}
	srcs := make([]int, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)
	tc := tree.Freeze()
	type partial struct {
		total float64
		count int
	}
	perSrc := make([]partial, len(srcs))
	// Split the budget between the per-source fan-out and each tree
	// traversal's bottom-up shards; IntraWorkers clamps the inner width
	// to 1 below the engagement threshold, so small trees stay serial.
	nw, inner := par.Split(workers, len(srcs))
	inner = tc.IntraWorkers(inner)
	wss := make([]*graph.Workspace, nw)
	for w := range wss {
		wss[w] = graph.GetWorkspace(n)
		defer wss[w].Release()
	}
	err := par.ForEachWorkerErr(nw, len(srcs), func(w, si int) error {
		if err := errs.Ctx(ctx); err != nil {
			return err
		}
		ws := wss[w]
		tc.BFSParallel(ws, srcs[si], inner)
		p := partial{}
		for _, v := range bySrc[srcs[si]] {
			if ws.Hop[v] > 0 {
				p.total += float64(ws.Hop[v])
				p.count++
			}
		}
		perSrc[si] = p
		return nil
	})
	if err != nil {
		return err
	}
	total := 0.0
	count := 0
	for _, p := range perSrc {
		total += p.total
		count += p.count
	}
	if count == 0 {
		return nil
	}
	a.val = Value{Scalar: total / float64(count)}
	return nil
}

func (a *distortionAcc) Finalize() Value { return a.val }

// hierarchyAcc classifies how tree-like / layered a rooted topology is:
// the mean depth of all nodes below the root divided by log2(n), so a
// balanced binary tree scores ~1, a star ~1/log2(n), and a path
// ~n/(2 log2 n). Root is the maximum-betweenness node when root < 0.
type hierarchyAcc struct {
	root int
	val  Value
}

func (a *hierarchyAcc) Run(ctx context.Context, src *Source, _ int) error {
	if err := errs.Ctx(ctx); err != nil {
		return err
	}
	g := src.Graph()
	n := g.NumNodes()
	if n < 2 {
		return nil
	}
	root := a.root
	if root >= n {
		return errs.BadParamf("metricreg: hierarchy-depth root %d out of range (n=%d)", root, n)
	}
	if root < 0 {
		bc := g.Betweenness()
		root = 0
		for i, b := range bc {
			if b > bc[root] {
				root = i
			}
		}
	}
	dist, _ := g.BFS(root)
	total, count := 0, 0
	for _, d := range dist {
		if d > 0 {
			total += d
			count++
		}
	}
	if count == 0 {
		return nil
	}
	a.val = Value{Scalar: (float64(total) / float64(count)) / math.Log2(float64(n))}
	return nil
}

func (a *hierarchyAcc) Finalize() Value { return a.val }

// spectralAcc estimates the second-smallest eigenvalue of the
// normalized Laplacian (the algebraic connectivity proxy) via power
// iteration with deflation of the known top eigenvector. Larger gap ⇒
// better expansion / harder to cut. Reports 0 for disconnected or
// trivial topologies (CapConnected: the connectivity bit is computed
// once on the source and shared).
type spectralAcc struct {
	iters int
	val   Value
}

func (a *spectralAcc) Run(ctx context.Context, src *Source, _ int) error {
	if !src.Connected() {
		return nil
	}
	c := src.CSR()
	n := c.NumNodes()
	if n < 2 {
		return nil
	}
	iters := a.iters
	if iters <= 0 {
		iters = 200
	}
	// We find the second-largest eigenvalue mu of the normalized adjacency
	// walk matrix N = D^-1/2 A D^-1/2 by power iteration with deflation of
	// the known top eigenvector v1(i) = sqrt(deg_i). Then lambda2 = 1 - mu.
	invSqrtDeg := make([]float64, n)
	v1 := make([]float64, n)
	norm := 0.0
	for i := 0; i < n; i++ {
		d := float64(c.Degree(i))
		v1[i] = math.Sqrt(d)
		if d > 0 {
			invSqrtDeg[i] = 1 / math.Sqrt(d)
		}
		norm += v1[i] * v1[i]
	}
	norm = math.Sqrt(norm)
	for i := range v1 {
		v1[i] /= norm
	}
	// Deterministic pseudo-random start vector.
	x := make([]float64, n)
	r := rng.New(12345)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	var mu float64
	for it := 0; it < iters; it++ {
		if err := errs.Ctx(ctx); err != nil {
			return err
		}
		// Deflate: x ← x - (v1·x) v1.
		dot := 0.0
		for i := range x {
			dot += x[i] * v1[i]
		}
		for i := range x {
			x[i] -= dot * v1[i]
		}
		// y = (N + I)/2 * x  — shift to make all eigenvalues non-negative,
		// preserving order. (N's spectrum lies in [-1, 1].)
		for i := range y {
			y[i] = 0
		}
		for u := 0; u < n; u++ {
			if invSqrtDeg[u] == 0 {
				continue
			}
			xu := x[u]
			c.Neighbors(u, func(v int, _ int, _ float64) {
				y[v] += xu * invSqrtDeg[u] * invSqrtDeg[v]
			})
		}
		for i := range y {
			y[i] = (y[i] + x[i]) / 2
		}
		// Rayleigh quotient for (N+I)/2, then undo the shift.
		num, den := 0.0, 0.0
		for i := range y {
			num += y[i] * x[i]
			den += x[i] * x[i]
		}
		if den == 0 {
			return nil
		}
		shifted := num / den
		mu = 2*shifted - 1
		// Normalize and continue.
		ynorm := 0.0
		for i := range y {
			ynorm += y[i] * y[i]
		}
		ynorm = math.Sqrt(ynorm)
		if ynorm == 0 {
			return nil
		}
		for i := range y {
			x[i] = y[i] / ynorm
		}
	}
	lambda2 := 1 - mu
	if lambda2 < 0 {
		lambda2 = 0
	}
	a.val = Value{Scalar: lambda2}
	return nil
}

func (a *spectralAcc) Finalize() Value { return a.val }

// clusteringAcc computes the average local clustering coefficient: for
// each node with degree >= 2, the fraction of neighbour pairs that are
// themselves adjacent, averaged over such nodes. Parallel edges are
// collapsed for the purpose of counting distinct neighbours. Runs
// CSR-only.
type clusteringAcc struct {
	val Value
}

func (a *clusteringAcc) Run(ctx context.Context, src *Source, _ int) error {
	if err := errs.Ctx(ctx); err != nil {
		return err
	}
	c := src.CSR()
	n := c.NumNodes()
	if n == 0 {
		return nil
	}
	// Build deduplicated neighbour sets once.
	nbrs := make([]map[int]bool, n)
	for u := 0; u < n; u++ {
		set := make(map[int]bool)
		c.Neighbors(u, func(v, _ int, _ float64) {
			set[v] = true
		})
		nbrs[u] = set
	}
	total := 0.0
	counted := 0
	for u := 0; u < n; u++ {
		deg := len(nbrs[u])
		if deg < 2 {
			continue
		}
		links := 0
		// Count edges among neighbours.
		neighbors := make([]int, 0, deg)
		for v := range nbrs[u] {
			neighbors = append(neighbors, v)
		}
		for i := 0; i < len(neighbors); i++ {
			for j := i + 1; j < len(neighbors); j++ {
				if nbrs[neighbors[i]][neighbors[j]] {
					links++
				}
			}
		}
		total += 2 * float64(links) / (float64(deg) * float64(deg-1))
		counted++
	}
	if counted == 0 {
		return nil
	}
	a.val = Value{Scalar: total / float64(counted)}
	return nil
}

func (a *clusteringAcc) Finalize() Value { return a.val }

// assortativityAcc computes the Pearson correlation of degrees at edge
// endpoints (Newman's r); 0 where undefined (fewer than 2 edges or zero
// variance). Needs CapGraph for the edge list — the summation order
// over whole edges is part of the pinned numerical contract.
type assortativityAcc struct {
	val Value
}

func (a *assortativityAcc) Run(ctx context.Context, src *Source, _ int) error {
	if err := errs.Ctx(ctx); err != nil {
		return err
	}
	g := src.Graph()
	m := g.NumEdges()
	if m < 2 {
		return nil
	}
	deg := g.Degrees()
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	for _, e := range g.Edges() {
		// Each undirected edge contributes both orientations so the
		// statistic is symmetric.
		x, y := float64(deg[e.U]), float64(deg[e.V])
		sumXY += 2 * x * y
		sumX += x + y
		sumY += x + y
		sumX2 += x*x + y*y
		sumY2 += x*x + y*y
	}
	n := float64(2 * m)
	cov := sumXY/n - (sumX/n)*(sumY/n)
	varX := sumX2/n - (sumX/n)*(sumX/n)
	varY := sumY2/n - (sumY/n)*(sumY/n)
	if varX <= 0 || varY <= 0 {
		return nil
	}
	a.val = Value{Scalar: cov / math.Sqrt(varX*varY)}
	return nil
}

func (a *assortativityAcc) Finalize() Value { return a.val }

// degreeAcc computes degree-sequence statistics straight off the CSR
// row index. mean-degree additionally supports masked evaluation: the
// mean surviving degree counting only edges between surviving nodes.
type degStat int

const (
	degMean degStat = iota
	degMax
	degTopFrac
	degCV
)

type degreeAcc struct {
	stat degStat
	val  Value
}

func (a *degreeAcc) Run(ctx context.Context, src *Source, _ int) error {
	if err := errs.Ctx(ctx); err != nil {
		return err
	}
	c := src.CSR()
	n := c.NumNodes()
	if n == 0 {
		return nil
	}
	sum, max := 0, 0
	for i := 0; i < n; i++ {
		d := c.Degree(i)
		sum += d
		if d > max {
			max = d
		}
	}
	switch a.stat {
	case degMean:
		a.val = Value{Scalar: float64(sum) / float64(n)}
	case degMax:
		a.val = Value{Scalar: float64(max)}
	case degTopFrac:
		if n > 1 {
			a.val = Value{Scalar: float64(max) / float64(n-1)}
		}
	case degCV:
		// Matches stats.Summarize: mean over n, sample variance over n-1.
		mean := float64(sum) / float64(n)
		ss := 0.0
		for i := 0; i < n; i++ {
			d := float64(c.Degree(i)) - mean
			ss += d * d
		}
		variance := 0.0
		if n > 1 {
			variance = ss / float64(n-1)
		}
		if mean > 0 {
			a.val = Value{Scalar: math.Sqrt(variance) / mean}
		}
	}
	return nil
}

func (a *degreeAcc) EvaluateMasked(ws *graph.Workspace, c *graph.CSR, removed []bool) float64 {
	alive, halves := 0, 0
	for u := 0; u < c.NumNodes(); u++ {
		if removed[u] {
			continue
		}
		alive++
		c.Neighbors(u, func(v, _ int, _ float64) {
			if !removed[v] {
				halves++
			}
		})
	}
	if alive == 0 {
		return 0
	}
	return float64(halves) / float64(alive)
}

func (a *degreeAcc) Finalize() Value { return a.val }

// sizeAcc reports the snapshot's node or edge count.
type sizeAcc struct {
	edges bool
	val   Value
}

func (a *sizeAcc) Run(ctx context.Context, src *Source, _ int) error {
	if err := errs.Ctx(ctx); err != nil {
		return err
	}
	if a.edges {
		a.val = Value{Scalar: float64(src.CSR().NumEdges())}
	} else {
		a.val = Value{Scalar: float64(src.CSR().NumNodes())}
	}
	return nil
}

func (a *sizeAcc) Finalize() Value { return a.val }
