package graph

// MaxFlow computes the maximum flow (= minimum cut, by LP duality) from
// src to dst over the graph's edge capacities, treating each undirected
// edge as usable in both directions up to its Capacity. Dinic's
// algorithm: O(V^2 E), far more than fast enough for the backbone
// survivability analyses this repo runs it on.
//
// Edges with non-positive capacity are ignored. Returns 0 when src == dst.
func (g *Graph) MaxFlow(src, dst int) float64 {
	n := g.NumNodes()
	if src < 0 || dst < 0 || src >= n || dst >= n || src == dst {
		return 0
	}
	// Build residual arcs: for an undirected edge with capacity c, two
	// arcs of capacity c each (standard undirected reduction).
	type arc struct {
		to  int
		cap float64
		rev int // index of reverse arc in adj[to]
	}
	adj := make([][]arc, n)
	addArc := func(u, v int, c float64) {
		adj[u] = append(adj[u], arc{to: v, cap: c, rev: len(adj[v])})
		adj[v] = append(adj[v], arc{to: u, cap: c, rev: len(adj[u]) - 1})
	}
	for _, e := range g.edges {
		if e.Capacity > 0 {
			addArc(e.U, e.V, e.Capacity)
		}
	}

	level := make([]int, n)
	iter := make([]int, n)
	queue := make([]int, 0, n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		queue = queue[:0]
		level[src] = 0
		queue = append(queue, src)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range adj[u] {
				if a.cap > 1e-12 && level[a.to] == -1 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		return level[dst] >= 0
	}

	var dfs func(u int, f float64) float64
	dfs = func(u int, f float64) float64 {
		if u == dst {
			return f
		}
		for ; iter[u] < len(adj[u]); iter[u]++ {
			a := &adj[u][iter[u]]
			if a.cap > 1e-12 && level[a.to] == level[u]+1 {
				got := f
				if a.cap < got {
					got = a.cap
				}
				pushed := dfs(a.to, got)
				if pushed > 0 {
					a.cap -= pushed
					adj[a.to][a.rev].cap += pushed
					return pushed
				}
			}
		}
		return 0
	}

	const inf = 1e300
	total := 0.0
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(src, inf)
			if f <= 0 {
				break
			}
			total += f
		}
	}
	return total
}

// MinCutValue is an alias for MaxFlow that reads better at call sites
// doing survivability analysis.
func (g *Graph) MinCutValue(src, dst int) float64 { return g.MaxFlow(src, dst) }
