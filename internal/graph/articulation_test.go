package graph

import (
	"math"
	"sort"
	"testing"
)

func TestArticulationPointsPath(t *testing.T) {
	g := pathGraph(5)
	pts := g.ArticulationPoints()
	want := []int{1, 2, 3}
	if len(pts) != len(want) {
		t.Fatalf("articulation points = %v, want %v", pts, want)
	}
	sort.Ints(pts)
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("articulation points = %v, want %v", pts, want)
		}
	}
}

func TestArticulationPointsCycleNone(t *testing.T) {
	if pts := cycleGraph(6).ArticulationPoints(); len(pts) != 0 {
		t.Fatalf("cycle has cut vertices: %v", pts)
	}
}

func TestArticulationPointsStarHub(t *testing.T) {
	pts := starGraph(8).ArticulationPoints()
	if len(pts) != 1 || pts[0] != 0 {
		t.Fatalf("star cut vertices = %v, want [0]", pts)
	}
}

func TestArticulationPointsDumbbell(t *testing.T) {
	// Two triangles joined via relay node 3: only the two junction nodes
	// and the relay are cuts.
	g := New(7)
	for i := 0; i < 7; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(Edge{U: 0, V: 1})
	g.AddEdge(Edge{U: 1, V: 2})
	g.AddEdge(Edge{U: 2, V: 0})
	g.AddEdge(Edge{U: 2, V: 3})
	g.AddEdge(Edge{U: 3, V: 4})
	g.AddEdge(Edge{U: 4, V: 5})
	g.AddEdge(Edge{U: 5, V: 6})
	g.AddEdge(Edge{U: 6, V: 4})
	pts := g.ArticulationPoints()
	sort.Ints(pts)
	want := []int{2, 3, 4}
	if len(pts) != len(want) {
		t.Fatalf("cut vertices = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("cut vertices = %v, want %v", pts, want)
		}
	}
}

func TestArticulationPointsMatchBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomConnectedGraph(t, seed, 25, 15)
		fast := map[int]bool{}
		for _, v := range g.ArticulationPoints() {
			fast[v] = true
		}
		comps := func(gg *Graph) int {
			_, sizes := gg.ConnectedComponents()
			return len(sizes)
		}
		orig := comps(g)
		for v := 0; v < g.NumNodes(); v++ {
			sub, _ := g.RemoveNodes([]int{v})
			isCut := comps(sub) > orig // removal split the graph
			if isCut != fast[v] {
				t.Fatalf("seed %d node %d: brute force cut=%v, fast=%v", seed, v, isCut, fast[v])
			}
		}
	}
}

func TestApproxWeightedDiameterTreeExact(t *testing.T) {
	// On a path with unit weights the double sweep is exact.
	g := pathGraph(30)
	if d := g.ApproxWeightedDiameter(7); math.Abs(d-29) > 1e-12 {
		t.Fatalf("path diameter estimate = %v, want 29", d)
	}
}

func TestApproxWeightedDiameterLowerBound(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomConnectedGraph(t, seed, 60, 80)
		est := g.ApproxWeightedDiameter(0)
		// Exact diameter by all-pairs Dijkstra.
		exact := 0.0
		for v := 0; v < g.NumNodes(); v++ {
			dist, _, _ := g.Dijkstra(v)
			for _, d := range dist {
				if d != Inf && d > exact {
					exact = d
				}
			}
		}
		if est > exact+1e-9 {
			t.Fatalf("estimate %v exceeds exact %v", est, exact)
		}
		if est < exact/2-1e-9 {
			t.Fatalf("estimate %v below the double-sweep guarantee (exact %v)", est, exact)
		}
	}
}

func TestApproxWeightedDiameterEmpty(t *testing.T) {
	if (&Graph{}).ApproxWeightedDiameter(0) != 0 {
		t.Fatal("empty graph diameter should be 0")
	}
}
