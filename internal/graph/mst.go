package graph

import (
	"container/heap"
	"sort"
)

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns n singleton sets {0}..{n-1}.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y and reports whether a merge happened.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// KruskalMST returns the edge indices of a minimum spanning forest of g by
// weight, and the total weight. For a connected graph this is a spanning
// tree with exactly n-1 edges.
func (g *Graph) KruskalMST() (edgeIDs []int, total float64) {
	order := make([]int, g.NumEdges())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return g.edges[order[a]].Weight < g.edges[order[b]].Weight
	})
	uf := NewUnionFind(g.NumNodes())
	for _, id := range order {
		e := g.edges[id]
		if uf.Union(e.U, e.V) {
			edgeIDs = append(edgeIDs, id)
			total += e.Weight
		}
	}
	return edgeIDs, total
}

// PrimMST returns a minimum spanning forest via Prim's algorithm with a
// binary heap, as edge indices plus total weight. Matches KruskalMST's
// weight on any graph (tie-broken arbitrarily).
func (g *Graph) PrimMST() (edgeIDs []int, total float64) {
	n := g.NumNodes()
	inTree := make([]bool, n)
	bestEdge := make([]int, n)
	bestW := make([]float64, n)
	for i := range bestEdge {
		bestEdge[i] = -1
		bestW[i] = Inf
	}
	pq := &distHeap{}
	for start := 0; start < n; start++ {
		if inTree[start] {
			continue
		}
		bestW[start] = 0
		heap.Push(pq, distItem{node: start, dist: 0})
		for pq.Len() > 0 {
			item := heap.Pop(pq).(distItem)
			u := item.node
			if inTree[u] || item.dist > bestW[u] {
				continue
			}
			inTree[u] = true
			if bestEdge[u] >= 0 {
				edgeIDs = append(edgeIDs, bestEdge[u])
				total += g.edges[bestEdge[u]].Weight
			}
			for _, h := range g.adj[u] {
				w := g.edges[h.edge].Weight
				if !inTree[h.to] && w < bestW[h.to] {
					bestW[h.to] = w
					bestEdge[h.to] = h.edge
					heap.Push(pq, distItem{node: h.to, dist: w})
				}
			}
		}
	}
	return edgeIDs, total
}

// EuclideanMST builds the MST of a complete Euclidean graph over the
// node coordinates without materializing all O(n^2) edges: dense Prim in
// O(n^2) time, O(n) space. It returns the (u, v) pairs of the tree.
func EuclideanMST(xs, ys []float64) [][2]int {
	n := len(xs)
	if n != len(ys) {
		panic("graph: EuclideanMST coordinate length mismatch")
	}
	if n == 0 {
		return nil
	}
	inTree := make([]bool, n)
	bestTo := make([]int, n)
	bestD := make([]float64, n)
	for i := range bestD {
		bestD[i] = Inf
		bestTo[i] = -1
	}
	bestD[0] = 0
	out := make([][2]int, 0, n-1)
	for iter := 0; iter < n; iter++ {
		u := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (u == -1 || bestD[v] < bestD[u]) {
				u = v
			}
		}
		inTree[u] = true
		if bestTo[u] >= 0 {
			out = append(out, [2]int{bestTo[u], u})
		}
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			d := dx*dx + dy*dy
			if d < bestD[v] {
				bestD[v] = d
				bestTo[v] = u
			}
		}
	}
	return out
}
