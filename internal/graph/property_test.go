package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomGraphFromSeed builds a connected weighted graph deterministically
// from a seed, for property tests.
func randomGraphFromSeed(seed int64, n, extra int) *Graph {
	r := rng.New(seed)
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(Node{X: r.Float64(), Y: r.Float64()})
	}
	perm := rng.Shuffle(r, n)
	for i := 1; i < n; i++ {
		g.AddEdge(Edge{U: perm[i], V: perm[r.Intn(i)], Weight: r.Float64() + 0.01})
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(Edge{U: u, V: v, Weight: r.Float64() + 0.01})
		}
	}
	return g
}

func TestPropertyDijkstraTriangle(t *testing.T) {
	// d(s,v) <= d(s,u) + w(u,v) for every edge (u,v).
	err := quick.Check(func(seed int64) bool {
		g := randomGraphFromSeed(seed, 60, 120)
		dist, _, _ := g.Dijkstra(0)
		for _, e := range g.Edges() {
			if dist[e.V] > dist[e.U]+e.Weight+1e-9 {
				return false
			}
			if dist[e.U] > dist[e.V]+e.Weight+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDijkstraSymmetry(t *testing.T) {
	// On an undirected graph, d(a,b) == d(b,a).
	err := quick.Check(func(seed int64) bool {
		g := randomGraphFromSeed(seed, 40, 60)
		d0, _, _ := g.Dijkstra(0)
		for v := 1; v < g.NumNodes(); v++ {
			dv, _, _ := g.Dijkstra(v)
			if math.Abs(d0[v]-dv[0]) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMSTWeightLEQAnySpanningSubset(t *testing.T) {
	// MST weight <= total weight of any connected spanning subgraph.
	err := quick.Check(func(seed int64) bool {
		g := randomGraphFromSeed(seed, 30, 60)
		_, mst := g.KruskalMST()
		return mst <= g.TotalWeight()+1e-9
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBetweennessNonNegativeAndBounded(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		g := randomGraphFromSeed(seed, 30, 40)
		bc := g.Betweenness()
		n := float64(g.NumNodes())
		bound := (n - 1) * (n - 2) / 2
		for _, b := range bc {
			if b < -1e-9 || b > bound+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBetweennessSumPath(t *testing.T) {
	// On a path of n nodes, total betweenness equals the number of
	// intermediate-node pair crossings: sum over pairs (i,j) of
	// (j - i - 1).
	for n := 3; n <= 12; n++ {
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode(Node{})
		}
		for i := 0; i+1 < n; i++ {
			g.AddEdge(Edge{U: i, V: i + 1, Weight: 1})
		}
		bc := g.Betweenness()
		total := 0.0
		for _, b := range bc {
			total += b
		}
		want := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want += float64(j - i - 1)
			}
		}
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("n=%d: total betweenness %v, want %v", n, total, want)
		}
	}
}

func TestPropertyKCoreMonotoneUnderEdgeAddition(t *testing.T) {
	// Adding an edge never decreases any node's core number.
	err := quick.Check(func(seed int64) bool {
		g := randomGraphFromSeed(seed, 25, 20)
		before := g.KCore()
		r := rng.New(seed + 1)
		u, v := r.Intn(25), r.Intn(25)
		if u == v {
			return true
		}
		g.AddEdge(Edge{U: u, V: v, Weight: 1})
		after := g.KCore()
		for i := range before {
			if after[i] < before[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBridgesVanishOnCycleClosure(t *testing.T) {
	// A path has n-1 bridges; closing it into a cycle leaves zero.
	for n := 3; n <= 20; n++ {
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode(Node{})
		}
		for i := 0; i+1 < n; i++ {
			g.AddEdge(Edge{U: i, V: i + 1, Weight: 1})
		}
		if len(g.BridgeEdges()) != n-1 {
			t.Fatalf("path n=%d: wrong bridge count", n)
		}
		g.AddEdge(Edge{U: n - 1, V: 0, Weight: 1})
		if len(g.BridgeEdges()) != 0 {
			t.Fatalf("cycle n=%d: bridges remain", n)
		}
	}
}

func TestPropertyComponentsPartition(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		n := 30
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode(Node{})
		}
		for i := 0; i < 25; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(Edge{U: u, V: v, Weight: 1})
			}
		}
		label, sizes := g.ConnectedComponents()
		total := 0
		for _, s := range sizes {
			if s <= 0 {
				return false
			}
			total += s
		}
		if total != n {
			return false
		}
		// Every edge joins same-labelled nodes.
		for _, e := range g.Edges() {
			if label[e.U] != label[e.V] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPathToSelf(t *testing.T) {
	g := randomGraphFromSeed(1, 10, 10)
	_, parent, _ := g.Dijkstra(3)
	path := PathTo(parent, 3, 3)
	if len(path) != 1 || path[0] != 3 {
		t.Fatalf("self path = %v", path)
	}
}

func TestInducedSubgraphFromSorted(t *testing.T) {
	g := randomGraphFromSeed(2, 12, 20)
	sub, orig := g.InducedSubgraphFromSorted([]int{0, 3, 5, 9})
	if sub.NumNodes() != 4 || len(orig) != 4 {
		t.Fatalf("subgraph size %d", sub.NumNodes())
	}
	// Edge count matches a manual count.
	want := 0
	keep := map[int]bool{0: true, 3: true, 5: true, 9: true}
	for _, e := range g.Edges() {
		if keep[e.U] && keep[e.V] {
			want++
		}
	}
	if sub.NumEdges() != want {
		t.Fatalf("subgraph edges %d, want %d", sub.NumEdges(), want)
	}
}
