package graph

import (
	"slices"
	"testing"
)

var reorderModes = []struct {
	name string
	mode ReorderMode
}{
	{"degree", ReorderDegree},
	{"rcm", ReorderRCM},
}

// TestReorderPermutationValid checks the structural invariants of a
// reordered snapshot: perm/inv are inverse bijections, the permuted
// mirror holds exactly the original rows with neighbours mapped to
// internal ids and still sorted by original id, and the public surface
// (Degree, Neighbors) is untouched.
func TestReorderPermutationValid(t *testing.T) {
	g := randomTestGraph(120, 400, 7)
	plain := g.Freeze()
	for _, rm := range reorderModes {
		c := g.FreezeWithOptions(FreezeOptions{Reorder: rm.mode})
		if c.Reordered() != rm.mode {
			t.Fatalf("%s: Reordered() = %v", rm.name, c.Reordered())
		}
		n := c.NumNodes()
		seen := make([]bool, n)
		for o := 0; o < n; o++ {
			i := c.perm[o]
			if c.inv[i] != int32(o) {
				t.Fatalf("%s: inv[perm[%d]] = %d", rm.name, o, c.inv[i])
			}
			if seen[i] {
				t.Fatalf("%s: internal id %d assigned twice", rm.name, i)
			}
			seen[i] = true
		}
		if c.bfsNbr != nil {
			t.Fatalf("%s: plain mirror not dropped", rm.name)
		}
		for i := 0; i < n; i++ {
			o := int(c.inv[i])
			if got, want := int(c.permRowStart[i+1]-c.permRowStart[i]), c.Degree(o); got != want {
				t.Fatalf("%s: permuted row %d has %d entries, degree(%d) = %d", rm.name, i, got, o, want)
			}
			// Mapping the permuted row back to original ids must give the
			// original sorted row.
			row := c.permNbr[c.permRowStart[i]:c.permRowStart[i+1]]
			orig := make([]int32, len(row))
			for k, v := range row {
				orig[k] = c.inv[v]
			}
			want := plain.bfsNbr[plain.rowStart[o]:plain.rowStart[o+1]]
			if !slices.Equal(orig, want) {
				t.Fatalf("%s: permuted row %d (orig %d) = %v, want %v", rm.name, i, o, orig, want)
			}
		}
		// Public surface identical to the plain snapshot.
		for u := 0; u < n; u++ {
			if c.Degree(u) != plain.Degree(u) {
				t.Fatalf("%s: Degree(%d) changed", rm.name, u)
			}
			var got, want []int32
			c.Neighbors(u, func(v, _ int, _ float64) { got = append(got, int32(v)) })
			plain.Neighbors(u, func(v, _ int, _ float64) { want = append(want, int32(v)) })
			if !slices.Equal(got, want) {
				t.Fatalf("%s: Neighbors(%d) order changed", rm.name, u)
			}
		}
	}
}

// TestReorderDegreeDescending pins the ReorderDegree layout: internal id
// order is (degree desc, original id asc).
func TestReorderDegreeDescending(t *testing.T) {
	g := randomTestGraph(200, 600, 9)
	c := g.FreezeWithOptions(FreezeOptions{Reorder: ReorderDegree})
	for i := 1; i < c.NumNodes(); i++ {
		a, b := c.inv[i-1], c.inv[i]
		da, db := c.Degree(int(a)), c.Degree(int(b))
		if da < db || (da == db && a > b) {
			t.Fatalf("internal order violated at %d: (deg %d, id %d) before (deg %d, id %d)", i, da, a, db, b)
		}
	}
}

// TestReorderedBFSParity pins the reordering identity guarantee: every
// BFS kernel on a reordered snapshot — default thresholds, pure
// top-down, forced bottom-up, and the parallel bottom-up at several
// worker counts — produces Hop/Parent arrays and a bottom-up level count
// bit-identical to the unreordered snapshot's.
func TestReorderedBFSParity(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g := randomTestGraph(300, 700, seed)
		plain := g.Freeze()
		ref := NewWorkspace(plain.NumNodes())
		ws := NewWorkspace(plain.NumNodes())
		for _, rm := range reorderModes {
			c := g.FreezeWithOptions(FreezeOptions{Reorder: rm.mode})
			for src := 0; src < c.NumNodes(); src += 13 {
				plain.BFS(ref, src)
				refLevels := ref.BFSBottomUpLevels
				c.BFS(ws, src)
				checkBFSEqual(t, rm.name+"/default", c.NumNodes(), ref, ws)
				if ws.BFSBottomUpLevels != refLevels {
					t.Fatalf("%s src %d: %d bottom-up levels, plain %d", rm.name, src, ws.BFSBottomUpLevels, refLevels)
				}
				plain.BFSTopDown(ref, src)
				c.BFSTopDown(ws, src)
				checkBFSEqual(t, rm.name+"/top-down", c.NumNodes(), ref, ws)
				c.bfs(ws, src, forceBottomUp, forceBottomUp, 1)
				checkBFSEqual(t, rm.name+"/bottom-up", c.NumNodes(), ref, ws)
				for _, workers := range []int{2, 8} {
					c.bfs(ws, src, forceBottomUp, forceBottomUp, workers)
					checkBFSEqual(t, rm.name+"/parallel", c.NumNodes(), ref, ws)
				}
			}
		}
	}
}

// TestParallelBottomUpParity pins the sharded parallel bottom-up level
// bit-identical to the serial kernel across worker counts, on an
// unreordered snapshot with the bottom-up regime forced so every level
// exercises the parallel path.
func TestParallelBottomUpParity(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g := randomTestGraph(400, 900, seed)
		c := g.Freeze()
		ref := NewWorkspace(c.NumNodes())
		ws := NewWorkspace(c.NumNodes())
		for src := 0; src < c.NumNodes(); src += 13 {
			c.bfs(ref, src, forceBottomUp, forceBottomUp, 1)
			if ref.BFSBottomUpLevels == 0 {
				t.Fatalf("seed %d src %d: forced regime ran no bottom-up level", seed, src)
			}
			for _, workers := range []int{2, 4, 8} {
				c.bfs(ws, src, forceBottomUp, forceBottomUp, workers)
				checkBFSEqual(t, "parallel", c.NumNodes(), ref, ws)
				if ws.BFSBottomUpLevels != ref.BFSBottomUpLevels {
					t.Fatalf("seed %d src %d workers %d: %d bottom-up levels, serial %d",
						seed, src, workers, ws.BFSBottomUpLevels, ref.BFSBottomUpLevels)
				}
			}
			c.BFSParallel(ws, src, 4)
			c.BFS(ref, src)
			checkBFSEqual(t, "exported-parallel", c.NumNodes(), ref, ws)
		}
	}
}
