package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomTestGraph builds a connected-ish weighted graph with some parallel
// edges, exercising every CSR code path.
func randomTestGraph(n, extraEdges int, seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(Node{X: r.Float64(), Y: r.Float64()})
	}
	// Random spanning tree keeps most of the graph connected.
	for i := 1; i < n; i++ {
		j := r.Intn(i)
		g.AddEdge(Edge{U: i, V: j, Weight: 0.1 + r.Float64(), Cable: -1})
	}
	for k := 0; k < extraEdges; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(Edge{U: u, V: v, Weight: 0.1 + r.Float64(), Cable: -1})
	}
	return g
}

func TestCSRDijkstraMatchesGraph(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := randomTestGraph(120, 200, seed)
		c := g.Freeze()
		ws := NewWorkspace(g.NumNodes())
		for src := 0; src < g.NumNodes(); src += 7 {
			dist, _, _ := g.Dijkstra(src)
			c.Dijkstra(ws, src)
			for v := range dist {
				if dist[v] != ws.Dist[v] {
					t.Fatalf("seed %d src %d: dist[%d] = %v (graph) vs %v (csr)", seed, src, v, dist[v], ws.Dist[v])
				}
				// Parents can differ on equal-weight ties, but must form a
				// consistent shortest-path tree.
				p, pe := ws.Parent[v], ws.ParentEdge[v]
				if v == src || math.IsInf(ws.Dist[v], 1) {
					if p != -1 || pe != -1 {
						t.Fatalf("src/unreachable node %d has parent %d edge %d", v, p, pe)
					}
					continue
				}
				e := g.Edge(int(pe))
				if e.Other(int(p)) != v {
					t.Fatalf("parent edge %d does not connect %d to %d", pe, p, v)
				}
				if got := ws.Dist[p] + e.Weight; math.Abs(got-ws.Dist[v]) > 1e-12 {
					t.Fatalf("tree inconsistency at %d: parent dist %v + w %v != %v", v, ws.Dist[p], e.Weight, ws.Dist[v])
				}
			}
		}
	}
}

func TestCSRBFSMatchesGraph(t *testing.T) {
	g := randomTestGraph(150, 100, 4)
	c := g.Freeze()
	ws := NewWorkspace(g.NumNodes())
	for src := 0; src < g.NumNodes(); src += 11 {
		dist, _ := g.BFS(src)
		c.BFS(ws, src)
		for v, d := range dist {
			if int32(d) != ws.Hop[v] {
				t.Fatalf("src %d: hop[%d] = %d (graph) vs %d (csr)", src, v, d, ws.Hop[v])
			}
		}
	}
}

func TestCSREccentricityMatchesGraph(t *testing.T) {
	g := randomTestGraph(80, 60, 5)
	c := g.Freeze()
	ws := NewWorkspace(g.NumNodes())
	for src := 0; src < g.NumNodes(); src += 9 {
		if got, want := c.Eccentricity(ws, src), g.Eccentricity(src); got != want {
			t.Fatalf("src %d: hop eccentricity %d vs %d", src, got, want)
		}
		if got, want := c.WeightedEccentricity(ws, src), g.WeightedEccentricity(src); got != want {
			t.Fatalf("src %d: weighted eccentricity %v vs %v", src, got, want)
		}
	}
}

func TestLargestComponentMaskedMatchesRemoveNodes(t *testing.T) {
	g := randomTestGraph(100, 40, 6)
	c := g.Freeze()
	ws := NewWorkspace(g.NumNodes())
	r := rand.New(rand.NewSource(7))
	removed := make([]bool, g.NumNodes())
	var removedIDs []int
	// Incrementally remove nodes, comparing the masked kernel against the
	// materialized subgraph at each step.
	for len(removedIDs) < 90 {
		u := r.Intn(g.NumNodes())
		if removed[u] {
			continue
		}
		removed[u] = true
		removedIDs = append(removedIDs, u)
		sub, _ := g.RemoveNodes(removedIDs)
		want := 0
		if sub.NumNodes() > 0 {
			want = sub.LargestComponentSize()
		}
		if got := c.LargestComponentMasked(ws, removed); got != want {
			t.Fatalf("after removing %d nodes: masked LCC %d vs subgraph LCC %d", len(removedIDs), got, want)
		}
	}
	// Everything removed: empty mask result.
	for u := range removed {
		removed[u] = true
	}
	if got := c.LargestComponentMasked(ws, removed); got != 0 {
		t.Fatalf("all-removed LCC = %d, want 0", got)
	}
}

func TestLargestComponentEdgeMaskedMatchesSubgraph(t *testing.T) {
	g := randomTestGraph(80, 30, 9)
	c := g.Freeze()
	ws := NewWorkspace(g.NumNodes())
	r := rand.New(rand.NewSource(11))
	removedEdge := make([]bool, g.NumEdges())
	removedCount := 0
	// Incrementally remove edges, comparing the edge-masked kernel
	// against a materialized copy without those edges at each step.
	for removedCount < g.NumEdges() {
		e := r.Intn(g.NumEdges())
		if removedEdge[e] {
			continue
		}
		removedEdge[e] = true
		removedCount++
		sub := New(g.NumNodes())
		for i := 0; i < g.NumNodes(); i++ {
			sub.AddNode(*g.Node(i))
		}
		for i, edge := range g.Edges() {
			if !removedEdge[i] {
				sub.AddEdge(edge)
			}
		}
		if got, want := c.LargestComponentEdgeMasked(ws, removedEdge), sub.LargestComponentSize(); got != want {
			t.Fatalf("after removing %d edges: edge-masked LCC %d vs subgraph LCC %d", removedCount, got, want)
		}
	}
	// A short (or nil) mask treats the tail as present.
	if got, want := c.LargestComponentEdgeMasked(ws, nil), g.LargestComponentSize(); got != want {
		t.Fatalf("nil edge mask LCC = %d, want %d", got, want)
	}
}

func TestCSREmptyGraph(t *testing.T) {
	g := New(0)
	c := g.Freeze()
	if c.NumNodes() != 0 || c.NumEdges() != 0 {
		t.Fatalf("empty CSR has %d nodes %d edges", c.NumNodes(), c.NumEdges())
	}
	ws := NewWorkspace(0)
	c.Dijkstra(ws, 0)
	c.BFS(ws, 0)
	if got := c.LargestComponentMasked(ws, nil); got != 0 {
		t.Fatalf("empty LCC = %d", got)
	}
}

func TestWorkspacePoolReuse(t *testing.T) {
	g := randomTestGraph(60, 30, 8)
	c := g.Freeze()
	ws := GetWorkspace(g.NumNodes())
	c.Dijkstra(ws, 0)
	d0 := ws.Dist[5]
	ws.Release()
	ws2 := GetWorkspace(g.NumNodes())
	c.Dijkstra(ws2, 0)
	if ws2.Dist[5] != d0 {
		t.Fatalf("pooled workspace result differs: %v vs %v", ws2.Dist[5], d0)
	}
	// Growing to a larger graph must re-reserve cleanly.
	big := randomTestGraph(500, 100, 9)
	bc := big.Freeze()
	bc.BFS(ws2, 0)
	reach := 0
	for _, h := range ws2.Hop[:big.NumNodes()] {
		if h >= 0 {
			reach++
		}
	}
	if reach != big.NumNodes() {
		t.Fatalf("BFS on grown workspace reached %d/%d nodes", reach, big.NumNodes())
	}
	ws2.Release()
}

func TestWorkspaceEpochWraparound(t *testing.T) {
	g := randomTestGraph(20, 10, 10)
	c := g.Freeze()
	ws := NewWorkspace(g.NumNodes())
	ws.epoch = ^uint32(0) - 1 // force a wraparound within two calls
	removed := make([]bool, g.NumNodes())
	a := c.LargestComponentMasked(ws, removed)
	b := c.LargestComponentMasked(ws, removed)
	d := c.LargestComponentMasked(ws, removed)
	if a != b || b != d {
		t.Fatalf("LCC unstable across epoch wraparound: %d %d %d", a, b, d)
	}
}

func TestHasEdgeBoundsChecked(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(Edge{U: 0, V: 1, Weight: 1})
	cases := []struct{ u, v int }{{-1, 0}, {0, -1}, {3, 0}, {0, 3}, {-5, 99}}
	for _, tc := range cases {
		if g.HasEdge(tc.u, tc.v) {
			t.Fatalf("HasEdge(%d,%d) = true for out-of-range ids", tc.u, tc.v)
		}
		if got := g.FindEdge(tc.u, tc.v); got != -1 {
			t.Fatalf("FindEdge(%d,%d) = %d, want -1", tc.u, tc.v, got)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge misses an existing edge")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("HasEdge reports a missing edge")
	}
	if g.FindEdge(1, 0) != 0 {
		t.Fatalf("FindEdge(1,0) = %d, want 0", g.FindEdge(1, 0))
	}
}

func TestCSRDijkstraNegativeWeightPanics(t *testing.T) {
	g := New(2)
	g.AddNode(Node{})
	g.AddNode(Node{})
	g.AddEdge(Edge{U: 0, V: 1, Weight: -1})
	c := g.Freeze()
	ws := NewWorkspace(2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	c.Dijkstra(ws, 0)
}

func TestLargestComponentMixedMaskedMatchesSubgraph(t *testing.T) {
	g := randomTestGraph(90, 50, 13)
	c := g.Freeze()
	ws := NewWorkspace(g.NumNodes())
	r := rand.New(rand.NewSource(17))
	removedNode := make([]bool, g.NumNodes())
	removedEdge := make([]bool, g.NumEdges())
	var removedIDs []int
	// Alternately remove nodes and edges, comparing the combined-mask
	// kernel against a materialized subgraph at each step: surviving
	// nodes, surviving edges between them.
	for step := 0; step < 60; step++ {
		if step%2 == 0 {
			removedEdge[r.Intn(g.NumEdges())] = true
		} else {
			u := r.Intn(g.NumNodes())
			if !removedNode[u] {
				removedNode[u] = true
				removedIDs = append(removedIDs, u)
			}
		}
		sub := New(g.NumNodes())
		id := make([]int, g.NumNodes())
		for i := 0; i < g.NumNodes(); i++ {
			id[i] = -1
			if !removedNode[i] {
				id[i] = sub.AddNode(*g.Node(i))
			}
		}
		for i, edge := range g.Edges() {
			if !removedEdge[i] && id[edge.U] >= 0 && id[edge.V] >= 0 {
				sub.AddEdge(Edge{U: id[edge.U], V: id[edge.V], Weight: edge.Weight, Cable: -1})
			}
		}
		want := 0
		if sub.NumNodes() > 0 {
			want = sub.LargestComponentSize()
		}
		if got := c.LargestComponentMixedMasked(ws, removedNode, removedEdge); got != want {
			t.Fatalf("step %d: mixed-masked LCC %d vs subgraph LCC %d", step, got, want)
		}
		// The combined kernel must agree with the single-mask kernels when
		// one mask is nil.
		if got, want := c.LargestComponentMixedMasked(ws, removedNode, nil), c.LargestComponentMasked(ws, removedNode); got != want {
			t.Fatalf("step %d: nil edge mask: %d vs node-masked %d", step, got, want)
		}
		if got, want := c.LargestComponentMixedMasked(ws, nil, removedEdge), c.LargestComponentEdgeMasked(ws, removedEdge); got != want {
			t.Fatalf("step %d: nil node mask: %d vs edge-masked %d", step, got, want)
		}
	}
	if got, want := c.LargestComponentMixedMasked(ws, nil, nil), g.LargestComponentSize(); got != want {
		t.Fatalf("nil masks LCC = %d, want %d", got, want)
	}
}
