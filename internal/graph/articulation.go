package graph

// ArticulationPoints returns the ids of all cut vertices — nodes whose
// removal disconnects their component — via an iterative low-link DFS.
// The robustness harness uses them to explain why targeted attacks on
// tree-like HOT topologies are so effective: almost every internal node
// of a tree is an articulation point.
func (g *Graph) ArticulationPoints() []int {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	isCut := make([]bool, n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0

	type frame struct {
		u, parent int
		nextIdx   int
		children  int
	}
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{u: s, parent: -1}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.nextIdx < len(g.adj[f.u]) {
				h := g.adj[f.u][f.nextIdx]
				f.nextIdx++
				if h.to == f.parent {
					continue
				}
				if disc[h.to] == -1 {
					f.children++
					disc[h.to] = timer
					low[h.to] = timer
					timer++
					stack = append(stack, frame{u: h.to, parent: f.u})
				} else if disc[h.to] < low[f.u] {
					low[f.u] = disc[h.to]
				}
				continue
			}
			// Post-order.
			done := *f
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[done.u] < low[p.u] {
					low[p.u] = low[done.u]
				}
				// Non-root p is a cut vertex if some child cannot reach
				// above p.
				if p.parent != -1 && low[done.u] >= disc[p.u] {
					isCut[p.u] = true
				}
			}
			// Root rule: root is a cut vertex iff it has >= 2 DFS children.
			if done.parent == -1 && done.children >= 2 {
				isCut[done.u] = true
			}
		}
	}
	var out []int
	for v, c := range isCut {
		if c {
			out = append(out, v)
		}
	}
	return out
}

// ApproxWeightedDiameter estimates the weighted diameter with the
// double-sweep heuristic: Dijkstra from `start`, then from the farthest
// node found. The result is a lower bound on the true diameter and exact
// on trees.
func (g *Graph) ApproxWeightedDiameter(start int) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	dist, _, _ := g.Dijkstra(start)
	far, best := start, 0.0
	for v, d := range dist {
		if d != Inf && d > best {
			far, best = v, d
		}
	}
	dist2, _, _ := g.Dijkstra(far)
	best2 := 0.0
	for _, d := range dist2 {
		if d != Inf && d > best2 {
			best2 = d
		}
	}
	return best2
}
