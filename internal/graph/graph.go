// Package graph provides the undirected weighted graph substrate shared by
// every topology model in this repository: adjacency storage with node and
// edge attributes, traversals, shortest paths, minimum spanning trees,
// centrality, and structural predicates (tree, connected, bi-connected).
//
// Graphs are node-indexed: nodes are dense integers [0, N). This matches
// how the generators work (nodes arrive incrementally and never leave) and
// keeps the algorithms allocation-light.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeKind annotates a node's role in an ISP topology. Kinds are advisory:
// algorithms in this package ignore them, but the ISP and peering models
// use them to express hierarchy.
type NodeKind uint8

// Node kinds, from the top of the ISP hierarchy down.
const (
	KindUnknown  NodeKind = iota
	KindCore              // backbone (WAN) router
	KindPOP               // point of presence / metro gateway
	KindConc              // concentrator / aggregation router (MAN)
	KindCustomer          // customer access node (LAN)
	KindPeering           // inter-ISP peering point
)

// String returns a short human-readable name for the kind.
func (k NodeKind) String() string {
	switch k {
	case KindCore:
		return "core"
	case KindPOP:
		return "pop"
	case KindConc:
		return "conc"
	case KindCustomer:
		return "customer"
	case KindPeering:
		return "peering"
	default:
		return "unknown"
	}
}

// Node carries per-node annotation. X, Y are planar coordinates when the
// graph is geographic (all generators in this repo are); Capacity is an
// abstract processing capacity used by the routing model.
type Node struct {
	Kind     NodeKind
	X, Y     float64
	Capacity float64
	Label    string
}

// Edge is one undirected edge. Weight is the routing metric (usually
// Euclidean length), Capacity the provisioned bandwidth, and Cable an
// index into an external cable catalog (-1 when not applicable).
type Edge struct {
	U, V     int
	Weight   float64
	Capacity float64
	Cable    int
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge (%d,%d)", x, e.U, e.V))
}

// halfEdge is the adjacency entry: the neighbour and the edge index.
type halfEdge struct {
	to   int
	edge int
}

// Graph is an undirected weighted graph with dense integer nodes.
// The zero value is an empty graph ready to use.
type Graph struct {
	nodes []Node
	edges []Edge
	adj   [][]halfEdge
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		nodes: make([]Node, 0, n),
		adj:   make([][]halfEdge, 0, n),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes: append([]Node(nil), g.nodes...),
		edges: append([]Edge(nil), g.edges...),
		adj:   make([][]halfEdge, len(g.adj)),
	}
	for i, a := range g.adj {
		c.adj[i] = append([]halfEdge(nil), a...)
	}
	return c
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a node and returns its id.
func (g *Graph) AddNode(n Node) int {
	g.nodes = append(g.nodes, n)
	g.adj = append(g.adj, nil)
	return len(g.nodes) - 1
}

// Node returns a pointer to node u's annotation for in-place updates.
func (g *Graph) Node(u int) *Node { return &g.nodes[u] }

// AddEdge inserts an undirected edge and returns its index. Self-loops are
// rejected; parallel edges are permitted (the buy-at-bulk model installs
// multiple cables between the same endpoints).
func (g *Graph) AddEdge(e Edge) int {
	if e.U == e.V {
		panic(fmt.Sprintf("graph: self-loop on node %d", e.U))
	}
	if e.U < 0 || e.U >= len(g.nodes) || e.V < 0 || e.V >= len(g.nodes) {
		panic(fmt.Sprintf("graph: edge (%d,%d) references missing node", e.U, e.V))
	}
	id := len(g.edges)
	g.edges = append(g.edges, e)
	g.adj[e.U] = append(g.adj[e.U], halfEdge{to: e.V, edge: id})
	g.adj[e.V] = append(g.adj[e.V], halfEdge{to: e.U, edge: id})
	return id
}

// Edge returns a pointer to edge i for in-place updates.
func (g *Graph) Edge(i int) *Edge { return &g.edges[i] }

// Edges returns the edge slice. Callers must not append; mutating weights
// or capacities in place is allowed.
func (g *Graph) Edges() []Edge { return g.edges }

// Degree returns the number of incident edges of u (parallel edges count
// separately).
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Degrees returns the degree sequence indexed by node.
func (g *Graph) Degrees() []int {
	d := make([]int, len(g.nodes))
	for i := range d {
		d[i] = len(g.adj[i])
	}
	return d
}

// MaxDegree returns the largest node degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for i := range g.adj {
		if len(g.adj[i]) > max {
			max = len(g.adj[i])
		}
	}
	return max
}

// Neighbors calls fn for each incident edge of u with the neighbour id and
// edge index. Iteration order is insertion order.
func (g *Graph) Neighbors(u int, fn func(v, edgeID int)) {
	for _, h := range g.adj[u] {
		fn(h.to, h.edge)
	}
}

// HasEdge reports whether any edge connects u and v. Out-of-range ids
// report false.
func (g *Graph) HasEdge(u, v int) bool { return g.findEdge(u, v) >= 0 }

// FindEdge returns the index of some edge between u and v, or -1.
// Out-of-range ids report -1.
func (g *Graph) FindEdge(u, v int) int { return g.findEdge(u, v) }

// findEdge is the shared bounds-checked adjacency scan under HasEdge and
// FindEdge, walking the shorter of the two lists.
func (g *Graph) findEdge(u, v int) int {
	if !g.boundedIndex(u) || !g.boundedIndex(v) {
		return -1
	}
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, h := range g.adj[u] {
		if h.to == v {
			return h.edge
		}
	}
	return -1
}

// TotalWeight returns the sum of edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for i := range g.edges {
		s += g.edges[i].Weight
	}
	return s
}

// NodesOfKind returns the ids of all nodes with the given kind, ascending.
func (g *Graph) NodesOfKind(k NodeKind) []int {
	var out []int
	for i := range g.nodes {
		if g.nodes[i].Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// InducedSubgraph returns the subgraph on the given nodes (deduplicated)
// plus a mapping from new ids to original ids. Edges with both endpoints
// in the set are kept.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	keep := make(map[int]bool, len(nodes))
	for _, u := range nodes {
		keep[u] = true
	}
	orig := make([]int, 0, len(keep))
	for u := range keep {
		orig = append(orig, u)
	}
	sort.Ints(orig)
	newID := make(map[int]int, len(orig))
	sub := New(len(orig))
	for i, u := range orig {
		newID[u] = i
		sub.AddNode(g.nodes[u])
	}
	for _, e := range g.edges {
		if keep[e.U] && keep[e.V] {
			ne := e
			ne.U, ne.V = newID[e.U], newID[e.V]
			sub.AddEdge(ne)
		}
	}
	return sub, orig
}

// RemoveNodes returns a copy of g with the given nodes (and their incident
// edges) deleted, plus the mapping from new ids to original ids. Used by
// the robustness harness, which removes nodes in failure/attack sweeps.
func (g *Graph) RemoveNodes(removed []int) (*Graph, []int) {
	drop := make(map[int]bool, len(removed))
	for _, u := range removed {
		drop[u] = true
	}
	keep := make([]int, 0, len(g.nodes)-len(drop))
	for u := range g.nodes {
		if !drop[u] {
			keep = append(keep, u)
		}
	}
	return g.InducedSubgraphFromSorted(keep)
}

// InducedSubgraphFromSorted is InducedSubgraph for an already-sorted,
// duplicate-free node list, skipping the dedup pass.
func (g *Graph) InducedSubgraphFromSorted(nodes []int) (*Graph, []int) {
	newID := make([]int, len(g.nodes))
	for i := range newID {
		newID[i] = -1
	}
	sub := New(len(nodes))
	for i, u := range nodes {
		newID[u] = i
		sub.AddNode(g.nodes[u])
	}
	for _, e := range g.edges {
		if newID[e.U] >= 0 && newID[e.V] >= 0 {
			ne := e
			ne.U, ne.V = newID[e.U], newID[e.V]
			sub.AddEdge(ne)
		}
	}
	return sub, append([]int(nil), nodes...)
}

// EuclideanWeights sets every edge's weight to the Euclidean distance
// between its endpoints' coordinates.
func (g *Graph) EuclideanWeights() {
	for i := range g.edges {
		e := &g.edges[i]
		dx := g.nodes[e.U].X - g.nodes[e.V].X
		dy := g.nodes[e.U].Y - g.nodes[e.V].Y
		e.Weight = math.Hypot(dx, dy)
	}
}
