package graph

// Betweenness computes exact node betweenness centrality on the unweighted
// graph using Brandes' algorithm. The returned values are unnormalized
// pair-dependency sums (each unordered pair counted once).
func (g *Graph) Betweenness() []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	// Reusable buffers across sources.
	sigma := make([]float64, n)
	dist := make([]int, n)
	delta := make([]float64, n)
	preds := make([][]int, n)
	stack := make([]int, 0, n)
	queue := make([]int, 0, n)

	for s := 0; s < n; s++ {
		for i := 0; i < n; i++ {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		stack = stack[:0]
		queue = queue[:0]
		sigma[s] = 1
		dist[s] = 0
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			stack = append(stack, u)
			for _, h := range g.adj[u] {
				v := h.to
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	// Each unordered pair was counted twice (once per endpoint as source).
	for i := range bc {
		bc[i] /= 2
	}
	return bc
}

// KCore returns each node's core number: the largest k such that the node
// belongs to a subgraph in which every node has degree >= k.
func (g *Graph) KCore() []int {
	n := g.NumNodes()
	deg := g.Degrees()
	core := make([]int, n)
	// Bucket sort nodes by degree (Batagelj–Zaveršnik).
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	bin := make([]int, maxDeg+1)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		count := bin[d]
		bin[d] = start
		start += count
	}
	pos := make([]int, n)
	vert := make([]int, n)
	for v, d := range deg {
		pos[v] = bin[d]
		vert[pos[v]] = v
		bin[d]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	curDeg := append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = curDeg[v]
		for _, h := range g.adj[v] {
			u := h.to
			if curDeg[u] > curDeg[v] {
				du := curDeg[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				bin[du]++
				curDeg[u]--
			}
		}
	}
	return core
}

// BridgeEdges returns the indices of all bridge edges (edges whose removal
// disconnects their component) via Tarjan's low-link DFS, iterative to
// avoid stack overflow on long path graphs.
func (g *Graph) BridgeEdges() []int {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var bridges []int
	timer := 0

	type frame struct {
		u, parentEdge int
		nextIdx       int
	}
	for s := 0; s < n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{u: s, parentEdge: -1}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.nextIdx < len(g.adj[f.u]) {
				h := g.adj[f.u][f.nextIdx]
				f.nextIdx++
				if h.edge == f.parentEdge {
					continue // don't traverse the tree edge back (parallel edges still processed)
				}
				if disc[h.to] == -1 {
					disc[h.to] = timer
					low[h.to] = timer
					timer++
					stack = append(stack, frame{u: h.to, parentEdge: h.edge})
				} else if disc[h.to] < low[f.u] {
					low[f.u] = disc[h.to]
				}
				continue
			}
			// Post-order: propagate low-link to parent.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[f.u] < low[p.u] {
					low[p.u] = low[f.u]
				}
				if low[f.u] > disc[p.u] {
					bridges = append(bridges, f.parentEdge)
				}
			}
		}
	}
	return bridges
}

// IsTwoEdgeConnected reports whether the graph is connected and has no
// bridges.
func (g *Graph) IsTwoEdgeConnected() bool {
	if g.NumNodes() < 2 {
		return false
	}
	return g.IsConnected() && len(g.BridgeEdges()) == 0
}
