package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMaxFlowSingleEdge(t *testing.T) {
	g := New(2)
	g.AddNode(Node{})
	g.AddNode(Node{})
	g.AddEdge(Edge{U: 0, V: 1, Weight: 1, Capacity: 7})
	if f := g.MaxFlow(0, 1); f != 7 {
		t.Fatalf("flow = %v, want 7", f)
	}
}

func TestMaxFlowSeriesBottleneck(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(Edge{U: 0, V: 1, Weight: 1, Capacity: 10})
	g.AddEdge(Edge{U: 1, V: 2, Weight: 1, Capacity: 3})
	if f := g.MaxFlow(0, 2); f != 3 {
		t.Fatalf("flow = %v, want 3 (bottleneck)", f)
	}
}

func TestMaxFlowParallelPathsAdd(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(Edge{U: 0, V: 1, Weight: 1, Capacity: 4})
	g.AddEdge(Edge{U: 1, V: 3, Weight: 1, Capacity: 4})
	g.AddEdge(Edge{U: 0, V: 2, Weight: 1, Capacity: 5})
	g.AddEdge(Edge{U: 2, V: 3, Weight: 1, Capacity: 2})
	if f := g.MaxFlow(0, 3); f != 6 {
		t.Fatalf("flow = %v, want 6 (4 + 2)", f)
	}
}

func TestMaxFlowClassicNetwork(t *testing.T) {
	// Classic CLRS-style example adapted to undirected edges.
	g := New(6)
	for i := 0; i < 6; i++ {
		g.AddNode(Node{})
	}
	add := func(u, v int, c float64) { g.AddEdge(Edge{U: u, V: v, Weight: 1, Capacity: c}) }
	add(0, 1, 16)
	add(0, 2, 13)
	add(1, 3, 12)
	add(2, 1, 4)
	add(2, 4, 14)
	add(3, 2, 9)
	add(3, 5, 20)
	add(4, 3, 7)
	add(4, 5, 4)
	f := g.MaxFlow(0, 5)
	// Undirected version: cut {3-5, 4-5} = 24 vs source side 16+13=29 vs
	// {1-3,4-3,4-5}=23... verify against brute-force min cut below
	// rather than a hand value.
	want := bruteMinCut(g, 0, 5)
	if math.Abs(f-want) > 1e-9 {
		t.Fatalf("flow = %v, brute min cut = %v", f, want)
	}
}

// bruteMinCut enumerates all src/dst-separating bipartitions (graphs
// small enough only) and returns the cheapest crossing capacity.
func bruteMinCut(g *Graph, src, dst int) float64 {
	n := g.NumNodes()
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<src) == 0 || mask&(1<<dst) != 0 {
			continue
		}
		cut := 0.0
		for _, e := range g.Edges() {
			inU := mask&(1<<e.U) != 0
			inV := mask&(1<<e.V) != 0
			if inU != inV && e.Capacity > 0 {
				cut += e.Capacity
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

func TestMaxFlowMatchesBruteMinCutRandom(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		r := rng.New(seed)
		n := 8
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode(Node{})
		}
		for i := 0; i < 14; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.AddEdge(Edge{U: u, V: v, Weight: 1, Capacity: float64(1 + r.Intn(9))})
			}
		}
		f := g.MaxFlow(0, n-1)
		want := bruteMinCut(g, 0, n-1)
		if math.IsInf(want, 1) {
			want = 0 // disconnected: brute force found no finite cut only if no edges at all
		}
		if math.Abs(f-want) > 1e-9 {
			t.Fatalf("seed %d: flow %v != brute min cut %v", seed, f, want)
		}
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New(2)
	g.AddNode(Node{})
	g.AddNode(Node{})
	if f := g.MaxFlow(0, 1); f != 0 {
		t.Fatalf("disconnected flow = %v, want 0", f)
	}
}

func TestMaxFlowDegenerateArgs(t *testing.T) {
	g := pathGraph(3)
	if g.MaxFlow(0, 0) != 0 {
		t.Fatal("src == dst should be 0")
	}
	if g.MaxFlow(-1, 2) != 0 || g.MaxFlow(0, 99) != 0 {
		t.Fatal("out-of-range nodes should be 0")
	}
}

func TestMaxFlowIgnoresZeroCapacity(t *testing.T) {
	g := New(2)
	g.AddNode(Node{})
	g.AddNode(Node{})
	g.AddEdge(Edge{U: 0, V: 1, Weight: 1, Capacity: 0})
	if f := g.MaxFlow(0, 1); f != 0 {
		t.Fatalf("zero-capacity flow = %v, want 0", f)
	}
}

func TestMinCutValueAlias(t *testing.T) {
	g := pathGraph(4)
	for i := range g.Edges() {
		g.Edge(i).Capacity = 2
	}
	if g.MinCutValue(0, 3) != 2 {
		t.Fatal("MinCutValue should equal MaxFlow")
	}
}
