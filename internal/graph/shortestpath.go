package graph

import (
	"container/heap"
	"math"
)

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

// Dijkstra computes single-source shortest paths by edge weight from src.
// It returns per-node distance (Inf if unreachable), the parent node on
// a shortest path tree (-1 for src/unreachable), and the parent edge index
// (-1 likewise). Negative edge weights panic.
func (g *Graph) Dijkstra(src int) (dist []float64, parent []int, parentEdge []int) {
	n := g.NumNodes()
	dist = make([]float64, n)
	parent = make([]int, n)
	parentEdge = make([]int, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
		parentEdge[i] = -1
	}
	if n == 0 {
		return dist, parent, parentEdge
	}
	dist[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		u := item.node
		if item.dist > dist[u] {
			continue // stale entry
		}
		for _, h := range g.adj[u] {
			w := g.edges[h.edge].Weight
			if w < 0 {
				panic("graph: Dijkstra requires non-negative edge weights")
			}
			nd := dist[u] + w
			if nd < dist[h.to] {
				dist[h.to] = nd
				parent[h.to] = u
				parentEdge[h.to] = h.edge
				heap.Push(pq, distItem{node: h.to, dist: nd})
			}
		}
	}
	return dist, parent, parentEdge
}

// PathTo reconstructs the node sequence src..dst from a Dijkstra/BFS
// parent array. It returns nil when dst is unreachable (parent chain does
// not terminate at a -1-parent root equal to src).
func PathTo(parent []int, src, dst int) []int {
	if dst < 0 || dst >= len(parent) {
		return nil
	}
	var rev []int
	for u := dst; u != -1; u = parent[u] {
		rev = append(rev, u)
		if u == src {
			// reverse and return
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev
		}
		if len(rev) > len(parent) {
			return nil // defensive: cycle in parent array
		}
	}
	return nil
}

// ShortestPathDAGEdges returns the edge ids on the path from src to dst
// given Dijkstra's parentEdge array, in src→dst order, or nil if
// unreachable.
func ShortestPathDAGEdges(parent, parentEdge []int, src, dst int) []int {
	nodes := PathTo(parent, src, dst)
	if nodes == nil {
		return nil
	}
	edges := make([]int, 0, len(nodes)-1)
	for _, u := range nodes[1:] {
		edges = append(edges, parentEdge[u])
	}
	return edges
}

// WeightedEccentricity returns the max finite Dijkstra distance from src.
func (g *Graph) WeightedEccentricity(src int) float64 {
	dist, _, _ := g.Dijkstra(src)
	max := 0.0
	for _, d := range dist {
		if !math.IsInf(d, 1) && d > max {
			max = d
		}
	}
	return max
}

// AverageWeightedDistance returns the mean weighted shortest-path distance
// over connected ordered pairs, from one freeze and n pooled-workspace
// shortest-path sweeps — no per-source allocation.
func (g *Graph) AverageWeightedDistance() (float64, int) {
	c := g.Freeze()
	n := c.NumNodes()
	ws := GetWorkspace(n)
	defer ws.Release()
	total := 0.0
	pairs := 0
	for u := 0; u < n; u++ {
		c.Dijkstra(ws, u)
		for v, d := range ws.Dist[:n] {
			if v != u && !math.IsInf(d, 1) {
				total += d
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return total / float64(pairs), pairs
}

type distItem struct {
	node int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
