package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// pathGraph builds 0-1-2-...-(n-1) with unit weights.
func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(Node{})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(Edge{U: i, V: i + 1, Weight: 1})
	}
	return g
}

// starGraph builds a hub-and-spoke graph with node 0 as hub.
func starGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(Node{})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(Edge{U: 0, V: i, Weight: 1})
	}
	return g
}

// cycleGraph builds a ring of n nodes.
func cycleGraph(n int) *Graph {
	g := pathGraph(n)
	if n > 2 {
		g.AddEdge(Edge{U: n - 1, V: 0, Weight: 1})
	}
	return g
}

func randomConnectedGraph(t *testing.T, seed int64, n, extraEdges int) *Graph {
	t.Helper()
	r := rng.New(seed)
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(Node{X: r.Float64(), Y: r.Float64()})
	}
	// Random spanning tree first.
	perm := rng.Shuffle(r, n)
	for i := 1; i < n; i++ {
		u := perm[i]
		v := perm[r.Intn(i)]
		g.AddEdge(Edge{U: u, V: v, Weight: r.Float64() + 0.01})
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.AddEdge(Edge{U: u, V: v, Weight: r.Float64() + 0.01})
		}
	}
	return g
}

func TestAddNodeEdgeBasics(t *testing.T) {
	g := New(0)
	a := g.AddNode(Node{Label: "a"})
	b := g.AddNode(Node{Label: "b"})
	if a != 0 || b != 1 {
		t.Fatalf("node ids = %d,%d", a, b)
	}
	id := g.AddEdge(Edge{U: a, V: b, Weight: 2.5})
	if id != 0 {
		t.Fatalf("edge id = %d", id)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts = %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatal("degrees wrong after AddEdge")
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.FindEdge(a, b) != 0 {
		t.Fatal("FindEdge failed")
	}
	if g.FindEdge(0, 5) != -1 {
		t.Fatal("FindEdge out of range should be -1")
	}
	if g.TotalWeight() != 2.5 {
		t.Fatalf("TotalWeight = %v", g.TotalWeight())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	g := New(1)
	g.AddNode(Node{})
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop should panic")
		}
	}()
	g.AddEdge(Edge{U: 0, V: 0})
}

func TestParallelEdgesAllowed(t *testing.T) {
	g := New(2)
	g.AddNode(Node{})
	g.AddNode(Node{})
	g.AddEdge(Edge{U: 0, V: 1, Weight: 1})
	g.AddEdge(Edge{U: 0, V: 1, Weight: 2})
	if g.NumEdges() != 2 {
		t.Fatal("parallel edges must be allowed")
	}
	if g.Degree(0) != 2 {
		t.Fatal("parallel edges count in degree")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other endpoint wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint should panic")
		}
	}()
	e.Other(5)
}

func TestCloneIndependent(t *testing.T) {
	g := pathGraph(5)
	c := g.Clone()
	c.AddNode(Node{})
	c.AddEdge(Edge{U: 0, V: 5})
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatal("Clone mutated original")
	}
	c.Edge(0).Weight = 99
	if g.Edge(0).Weight == 99 {
		t.Fatal("Clone shares edge storage")
	}
}

func TestBFSDistances(t *testing.T) {
	g := pathGraph(5)
	dist, parent := g.BFS(0)
	for i := 0; i < 5; i++ {
		if dist[i] != i {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
	if parent[0] != -1 || parent[4] != 3 {
		t.Fatal("BFS parents wrong")
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := New(3)
	g.AddNode(Node{})
	g.AddNode(Node{})
	g.AddNode(Node{})
	g.AddEdge(Edge{U: 0, V: 1})
	dist, _ := g.BFS(0)
	if dist[2] != -1 {
		t.Fatal("unreachable node should have dist -1")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	for i := 0; i < 6; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(Edge{U: 0, V: 1})
	g.AddEdge(Edge{U: 2, V: 3})
	g.AddEdge(Edge{U: 3, V: 4})
	label, sizes := g.ConnectedComponents()
	if len(sizes) != 3 {
		t.Fatalf("got %d components, want 3", len(sizes))
	}
	if label[0] != label[1] || label[2] != label[3] || label[3] != label[4] {
		t.Fatal("component labels wrong")
	}
	if label[5] == label[0] || label[5] == label[2] {
		t.Fatal("isolated node merged into a component")
	}
	if g.LargestComponentSize() != 3 {
		t.Fatalf("LargestComponentSize = %d, want 3", g.LargestComponentSize())
	}
}

func TestIsTreeForest(t *testing.T) {
	if !pathGraph(5).IsTree() {
		t.Fatal("path is a tree")
	}
	if !starGraph(8).IsTree() {
		t.Fatal("star is a tree")
	}
	if cycleGraph(4).IsTree() {
		t.Fatal("cycle is not a tree")
	}
	if !pathGraph(5).IsForest() {
		t.Fatal("tree is a forest")
	}
	// Two disjoint paths: forest but not tree.
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(Edge{U: 0, V: 1})
	g.AddEdge(Edge{U: 2, V: 3})
	if g.IsTree() {
		t.Fatal("disconnected graph is not a tree")
	}
	if !g.IsForest() {
		t.Fatal("disjoint paths form a forest")
	}
	if cycleGraph(5).IsForest() {
		t.Fatal("cycle is not a forest")
	}
	if (&Graph{}).IsTree() {
		t.Fatal("empty graph is not a tree")
	}
}

func TestHopDiameterAndEccentricity(t *testing.T) {
	g := pathGraph(7)
	if d := g.HopDiameter(); d != 6 {
		t.Fatalf("path diameter = %d, want 6", d)
	}
	if e := g.Eccentricity(3); e != 3 {
		t.Fatalf("center eccentricity = %d, want 3", e)
	}
	if d := starGraph(10).HopDiameter(); d != 2 {
		t.Fatalf("star diameter = %d, want 2", d)
	}
}

func TestAverageHopDistance(t *testing.T) {
	g := pathGraph(3) // pairs: (0,1)=1 (0,2)=2 (1,2)=1, ordered doubles
	avg, pairs := g.AverageHopDistance()
	if pairs != 6 {
		t.Fatalf("pairs = %d, want 6", pairs)
	}
	if math.Abs(avg-8.0/6.0) > 1e-12 {
		t.Fatalf("avg = %v, want %v", avg, 8.0/6.0)
	}
}

func TestLeaves(t *testing.T) {
	g := starGraph(5)
	leaves := g.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("star has %d leaves, want 4", len(leaves))
	}
}

func TestDijkstraSimple(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(Edge{U: 0, V: 1, Weight: 1})
	g.AddEdge(Edge{U: 1, V: 2, Weight: 1})
	g.AddEdge(Edge{U: 0, V: 2, Weight: 5})
	g.AddEdge(Edge{U: 2, V: 3, Weight: 1})
	dist, parent, parentEdge := g.Dijkstra(0)
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %v, want 2 (via node 1)", dist[2])
	}
	if dist[3] != 3 {
		t.Fatalf("dist[3] = %v, want 3", dist[3])
	}
	path := PathTo(parent, 0, 3)
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	edges := ShortestPathDAGEdges(parent, parentEdge, 0, 3)
	if len(edges) != 3 {
		t.Fatalf("path edges = %v", edges)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(2)
	g.AddNode(Node{})
	g.AddNode(Node{})
	dist, parent, _ := g.Dijkstra(0)
	if !math.IsInf(dist[1], 1) {
		t.Fatal("unreachable distance should be +Inf")
	}
	if PathTo(parent, 0, 1) != nil {
		t.Fatal("path to unreachable node should be nil")
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	g := randomConnectedGraph(t, 42, 200, 300)
	for i := range g.Edges() {
		g.Edge(i).Weight = 1
	}
	hop, _ := g.BFS(0)
	dist, _, _ := g.Dijkstra(0)
	for v := range hop {
		if float64(hop[v]) != dist[v] {
			t.Fatalf("node %d: BFS=%d Dijkstra=%v", v, hop[v], dist[v])
		}
	}
}

func TestDijkstraNegativeWeightPanics(t *testing.T) {
	g := New(2)
	g.AddNode(Node{})
	g.AddNode(Node{})
	g.AddEdge(Edge{U: 0, V: 1, Weight: -1})
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight should panic")
		}
	}()
	g.Dijkstra(0)
}

func TestMSTAgreement(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomConnectedGraph(t, seed, 100, 200)
		_, wk := g.KruskalMST()
		_, wp := g.PrimMST()
		if math.Abs(wk-wp) > 1e-9 {
			t.Fatalf("seed %d: Kruskal %v != Prim %v", seed, wk, wp)
		}
	}
}

func TestMSTIsSpanningTree(t *testing.T) {
	g := randomConnectedGraph(t, 7, 80, 160)
	ids, _ := g.KruskalMST()
	if len(ids) != g.NumNodes()-1 {
		t.Fatalf("MST has %d edges, want %d", len(ids), g.NumNodes()-1)
	}
	uf := NewUnionFind(g.NumNodes())
	for _, id := range ids {
		e := g.Edge(id)
		if !uf.Union(e.U, e.V) {
			t.Fatal("MST contains a cycle")
		}
	}
	if uf.Sets() != 1 {
		t.Fatal("MST does not span")
	}
}

func TestMSTMinimalityOnSmallGraphs(t *testing.T) {
	// Brute-force check on tiny random graphs: every spanning tree costs
	// at least the MST.
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 5
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode(Node{})
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.AddEdge(Edge{U: u, V: v, Weight: float64(r.Intn(10) + 1)})
			}
		}
		_, best := g.KruskalMST()
		m := g.NumEdges()
		// Enumerate all edge subsets of size n-1.
		var rec func(start int, chosen []int)
		minCost := math.Inf(1)
		rec = func(start int, chosen []int) {
			if len(chosen) == n-1 {
				uf := NewUnionFind(n)
				cost := 0.0
				for _, id := range chosen {
					e := g.Edge(id)
					if !uf.Union(e.U, e.V) {
						return
					}
					cost += e.Weight
				}
				if uf.Sets() == 1 && cost < minCost {
					minCost = cost
				}
				return
			}
			for i := start; i < m; i++ {
				rec(i+1, append(chosen, i))
			}
		}
		rec(0, nil)
		if math.Abs(best-minCost) > 1e-9 {
			t.Fatalf("trial %d: Kruskal %v, brute force %v", trial, best, minCost)
		}
	}
}

func TestEuclideanMST(t *testing.T) {
	r := rng.New(3)
	n := 60
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	pairs := EuclideanMST(xs, ys)
	if len(pairs) != n-1 {
		t.Fatalf("EuclideanMST returned %d edges, want %d", len(pairs), n-1)
	}
	// Compare weight against Kruskal on the complete graph.
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(Node{X: xs[i], Y: ys[i]})
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(Edge{U: u, V: v, Weight: math.Hypot(xs[u]-xs[v], ys[u]-ys[v])})
		}
	}
	_, want := g.KruskalMST()
	got := 0.0
	for _, p := range pairs {
		got += math.Hypot(xs[p[0]]-xs[p[1]], ys[p[0]]-ys[p[1]])
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("EuclideanMST weight %v, Kruskal %v", got, want)
	}
}

func TestUnionFindProperties(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		const n = 32
		uf := NewUnionFind(n)
		naive := make([]int, n)
		for i := range naive {
			naive[i] = i
		}
		naiveFind := func(x int) int {
			for naive[x] != x {
				x = naive[x]
			}
			return x
		}
		for _, op := range ops {
			a, b := int(op)%n, int(op>>8)%n
			uf.Union(a, b)
			ra, rb := naiveFind(a), naiveFind(b)
			if ra != rb {
				naive[ra] = rb
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Connected(i, j) != (naiveFind(i) == naiveFind(j)) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBetweennessStar(t *testing.T) {
	g := starGraph(6) // hub 0, 5 spokes
	bc := g.Betweenness()
	// Hub lies on all C(5,2)=10 spoke pairs.
	if math.Abs(bc[0]-10) > 1e-9 {
		t.Fatalf("hub betweenness = %v, want 10", bc[0])
	}
	for i := 1; i < 6; i++ {
		if bc[i] != 0 {
			t.Fatalf("spoke %d betweenness = %v, want 0", i, bc[i])
		}
	}
}

func TestBetweennessPath(t *testing.T) {
	g := pathGraph(5)
	bc := g.Betweenness()
	// Middle node 2 is on pairs (0,3),(0,4),(1,3),(1,4) = 4.
	if math.Abs(bc[2]-4) > 1e-9 {
		t.Fatalf("middle betweenness = %v, want 4", bc[2])
	}
	if bc[0] != 0 || bc[4] != 0 {
		t.Fatal("endpoints should have zero betweenness")
	}
}

func TestKCore(t *testing.T) {
	// Triangle with a pendant: triangle nodes are 2-core, pendant 1-core.
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(Edge{U: 0, V: 1})
	g.AddEdge(Edge{U: 1, V: 2})
	g.AddEdge(Edge{U: 2, V: 0})
	g.AddEdge(Edge{U: 2, V: 3})
	core := g.KCore()
	want := []int{2, 2, 2, 1}
	for i := range want {
		if core[i] != want[i] {
			t.Fatalf("core = %v, want %v", core, want)
		}
	}
}

func TestKCoreTree(t *testing.T) {
	core := pathGraph(10).KCore()
	for i, c := range core {
		if c != 1 {
			t.Fatalf("tree node %d core = %d, want 1", i, c)
		}
	}
}

func TestBridges(t *testing.T) {
	// Two triangles joined by one bridge edge.
	g := New(6)
	for i := 0; i < 6; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(Edge{U: 0, V: 1})
	g.AddEdge(Edge{U: 1, V: 2})
	g.AddEdge(Edge{U: 2, V: 0})
	bridgeID := g.AddEdge(Edge{U: 2, V: 3})
	g.AddEdge(Edge{U: 3, V: 4})
	g.AddEdge(Edge{U: 4, V: 5})
	g.AddEdge(Edge{U: 5, V: 3})
	bridges := g.BridgeEdges()
	if len(bridges) != 1 || bridges[0] != bridgeID {
		t.Fatalf("bridges = %v, want [%d]", bridges, bridgeID)
	}
}

func TestBridgesTreeAllBridges(t *testing.T) {
	g := pathGraph(10)
	if len(g.BridgeEdges()) != 9 {
		t.Fatal("every edge of a tree is a bridge")
	}
}

func TestBridgesParallelEdgesNotBridges(t *testing.T) {
	g := New(2)
	g.AddNode(Node{})
	g.AddNode(Node{})
	g.AddEdge(Edge{U: 0, V: 1})
	g.AddEdge(Edge{U: 0, V: 1})
	if len(g.BridgeEdges()) != 0 {
		t.Fatal("parallel edges are not bridges")
	}
}

func TestTwoEdgeConnected(t *testing.T) {
	if !cycleGraph(5).IsTwoEdgeConnected() {
		t.Fatal("cycle is 2-edge-connected")
	}
	if pathGraph(5).IsTwoEdgeConnected() {
		t.Fatal("path is not 2-edge-connected")
	}
	if (&Graph{}).IsTwoEdgeConnected() {
		t.Fatal("empty graph is not 2-edge-connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycleGraph(6)
	sub, orig := g.InducedSubgraph([]int{0, 1, 2, 2}) // dup is deduped
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3", sub.NumNodes())
	}
	if sub.NumEdges() != 2 { // 0-1, 1-2 survive; 5-0 and 2-3 cut
		t.Fatalf("subgraph edges = %d, want 2", sub.NumEdges())
	}
	if len(orig) != 3 || orig[0] != 0 || orig[2] != 2 {
		t.Fatalf("orig mapping = %v", orig)
	}
}

func TestRemoveNodes(t *testing.T) {
	g := starGraph(6)
	sub, _ := g.RemoveNodes([]int{0}) // remove hub
	if sub.NumNodes() != 5 || sub.NumEdges() != 0 {
		t.Fatalf("after hub removal: %d nodes %d edges", sub.NumNodes(), sub.NumEdges())
	}
}

func TestNodesOfKind(t *testing.T) {
	g := New(3)
	g.AddNode(Node{Kind: KindCore})
	g.AddNode(Node{Kind: KindCustomer})
	g.AddNode(Node{Kind: KindCore})
	cores := g.NodesOfKind(KindCore)
	if len(cores) != 2 || cores[0] != 0 || cores[1] != 2 {
		t.Fatalf("cores = %v", cores)
	}
}

func TestNodeKindString(t *testing.T) {
	kinds := []NodeKind{KindUnknown, KindCore, KindPOP, KindConc, KindCustomer, KindPeering}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad/duplicate string %q", k, s)
		}
		seen[s] = true
	}
}

func TestEuclideanWeights(t *testing.T) {
	g := New(2)
	g.AddNode(Node{X: 0, Y: 0})
	g.AddNode(Node{X: 3, Y: 4})
	g.AddEdge(Edge{U: 0, V: 1})
	g.EuclideanWeights()
	if g.Edge(0).Weight != 5 {
		t.Fatalf("weight = %v, want 5", g.Edge(0).Weight)
	}
}

func TestDegreesAndMaxDegree(t *testing.T) {
	g := starGraph(7)
	d := g.Degrees()
	if d[0] != 6 {
		t.Fatalf("hub degree = %d", d[0])
	}
	if g.MaxDegree() != 6 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
}
