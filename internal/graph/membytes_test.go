package graph

import "testing"

func TestCSRMemBytesExact(t *testing.T) {
	for _, n := range []int{2, 10, 100} {
		c := pathGraph(n).Freeze()
		m := int64(n - 1)
		// rowStart: 4(n+1); nbr+edgeID+bfsNbr: 3 * 4 * 2m; weight: 8 * 2m.
		want := 4*int64(n+1) + 40*m
		if got := c.MemBytes(); got != want {
			t.Errorf("n=%d: CSR.MemBytes = %d, want %d", n, got, want)
		}
	}
}

func TestGraphMemBytesGrows(t *testing.T) {
	small, big := pathGraph(10), pathGraph(1000)
	sb, bb := small.MemBytes(), big.MemBytes()
	if sb <= 0 {
		t.Fatalf("small graph MemBytes = %d, want > 0", sb)
	}
	if bb <= sb {
		t.Fatalf("1000-node graph (%d B) not larger than 10-node graph (%d B)", bb, sb)
	}
	// Labels are charged too.
	labeled := pathGraph(10)
	labeled.Node(0).Label = "a-rather-long-node-label"
	if labeled.MemBytes() <= sb {
		t.Fatal("label bytes not charged")
	}
}
