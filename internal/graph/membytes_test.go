package graph

import (
	"runtime"
	"testing"
)

func TestCSRMemBytesExact(t *testing.T) {
	for _, n := range []int{2, 10, 100} {
		c := pathGraph(n).Freeze()
		m := int64(n - 1)
		// rowStart: 4(n+1); nbr+edgeID+bfsNbr: 3 * 4 * 2m; weight: 8 * 2m.
		want := 4*int64(n+1) + 40*m
		if got := c.MemBytes(); got != want {
			t.Errorf("n=%d: CSR.MemBytes = %d, want %d", n, got, want)
		}
		// Reordered: bfsNbr (8m) is dropped, permNbr (8m) replaces it,
		// and perm+inv (8n) plus permRowStart (4(n+1)) are new.
		r := pathGraph(n).FreezeWithOptions(FreezeOptions{Reorder: ReorderDegree})
		want = 8*int64(n+1) + 8*int64(n) + 40*m
		if got := r.MemBytes(); got != want {
			t.Errorf("n=%d: reordered CSR.MemBytes = %d, want %d", n, got, want)
		}
	}
}

// TestCSRMemBytesMeasured is the regression test keeping the estimator
// honest against the allocator: freezing a large snapshot must grow the
// heap by about what MemBytes claims, for both the plain and the
// reordered layout. Size-class rounding and incidental runtime
// allocation make exact equality impossible, so the check is a band.
func TestCSRMemBytesMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement is slow and GC-sensitive")
	}
	measure := func(freeze func() *CSR) (grown int64, claimed int64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		c := freeze()
		runtime.GC()
		runtime.ReadMemStats(&after)
		return int64(after.HeapAlloc) - int64(before.HeapAlloc), c.MemBytes()
	}
	g := pathGraph(200000)
	for _, tc := range []struct {
		name   string
		freeze func() *CSR
	}{
		{"plain", func() *CSR { return g.Freeze() }},
		{"reordered", func() *CSR { return g.FreezeWithOptions(FreezeOptions{Reorder: ReorderRCM}) }},
	} {
		grown, claimed := measure(tc.freeze)
		if grown < claimed*8/10 || grown > claimed*12/10 {
			t.Errorf("%s: heap grew %d B for a snapshot claiming %d B (outside ±20%%)", tc.name, grown, claimed)
		}
	}
}

func TestGraphMemBytesGrows(t *testing.T) {
	small, big := pathGraph(10), pathGraph(1000)
	sb, bb := small.MemBytes(), big.MemBytes()
	if sb <= 0 {
		t.Fatalf("small graph MemBytes = %d, want > 0", sb)
	}
	if bb <= sb {
		t.Fatalf("1000-node graph (%d B) not larger than 10-node graph (%d B)", bb, sb)
	}
	// Labels are charged too.
	labeled := pathGraph(10)
	labeled.Node(0).Label = "a-rather-long-node-label"
	if labeled.MemBytes() <= sb {
		t.Fatal("label bytes not charged")
	}
}
