package graph

import "sync"

// Workspace owns every scratch buffer a traversal kernel needs: weighted
// and hop distances, shortest-path-tree parents, the Dijkstra heap and
// distance buckets, the BFS queue and dense bitset frontiers, and an
// epoch-stamped visited array. One Workspace serves one goroutine at a
// time; a sync.Pool (GetWorkspace / Release) recycles them so
// multi-source sweeps run allocation-free after warmup.
//
// The exported slices hold kernel outputs. After CSR.Dijkstra: Dist,
// Parent, ParentEdge. After CSR.BFS: Hop, Parent. Their contents are valid
// until the next kernel call on the same Workspace.
type Workspace struct {
	// Dist is the weighted distance per node (Inf when unreachable).
	Dist []float64
	// Hop is the BFS hop distance per node (-1 when unreachable).
	Hop []int32
	// Parent is the shortest-path-tree parent per node (-1 for the
	// source and unreachable nodes).
	Parent []int32
	// ParentEdge is the edge id into the parent (-1 likewise).
	ParentEdge []int32
	// BFSBottomUpLevels reports how many levels of the last CSR.BFS ran
	// bottom-up — a diagnostic for tests and benchmarks of the
	// direction-optimizing kernel; 0 after a pure top-down traversal.
	BFSBottomUpLevels int

	heapNode []int32
	heapDist []float64
	queue    []int32
	visited  []uint32
	epoch    uint32

	// front/next are the dense bitset frontiers of the
	// direction-optimizing BFS, one bit per node.
	front []uint64
	next  []uint64

	// permHop/permParent are the internal-id-space traversal arrays used
	// when the snapshot carries a cache reordering (FreezeWithOptions):
	// the kernel traverses the permuted mirror into these, then scatters
	// back to Hop/Parent in original ids at the boundary. Reserved lazily
	// so unreordered traversals pay nothing.
	permHop    []int32
	permParent []int32

	// shardNF/shardMF hold the per-shard frontier counters of a parallel
	// bottom-up BFS level; they are summed in shard order after the
	// fan-out so the direction-switch decisions stay deterministic.
	shardNF []int32
	shardMF []int64

	// relax holds the parallel bucketed Dijkstra's per-worker deferred
	// relaxation buffers; relaxShardW/Lo/Hi record, per frontier shard,
	// which worker's buffer holds its candidates and the segment bounds,
	// so the serial merge replays the shards in order whatever the
	// dynamic shard-to-worker assignment was.
	relax        []relaxBuf
	relaxShardW  []int32
	relaxShardLo []int32
	relaxShardHi []int32

	// bktNext/bktPrev/bktOf plus bktHead form the bucketed Dijkstra's
	// circular monotone priority queue as intrusive doubly-linked lists:
	// each node is in at most one bucket (bktOf[v] = slot, or -1 when
	// dequeued), so the structure is bounded by n and never grows during
	// a traversal — distance improvements move the node between lists
	// instead of appending duplicate entries.
	bktNext []int32
	bktPrev []int32
	bktOf   []int32
	bktHead [nBuckets]int32
}

// NewWorkspace returns a Workspace sized for n-node graphs.
func NewWorkspace(n int) *Workspace {
	ws := &Workspace{}
	ws.Reserve(n)
	return ws
}

// Reserve grows the buffers to hold n nodes. Shrinking never happens, so
// a pooled Workspace converges to the largest graph it has served. Every
// buffer's capacity is checked independently: a caller that grew only
// some buffers (or a future partial-growth path) can never leave another
// kernel with a short one.
func (ws *Workspace) Reserve(n int) {
	if cap(ws.Dist) < n {
		ws.Dist = make([]float64, n)
	}
	ws.Dist = ws.Dist[:n]
	if cap(ws.Hop) < n {
		ws.Hop = make([]int32, n)
	}
	ws.Hop = ws.Hop[:n]
	if cap(ws.Parent) < n {
		ws.Parent = make([]int32, n)
	}
	ws.Parent = ws.Parent[:n]
	if cap(ws.ParentEdge) < n {
		ws.ParentEdge = make([]int32, n)
	}
	ws.ParentEdge = ws.ParentEdge[:n]
	if cap(ws.visited) < n {
		// Fresh visited stamps must not collide with a stale epoch.
		ws.visited = make([]uint32, n)
		ws.epoch = 0
	}
	ws.visited = ws.visited[:cap(ws.visited)]
	if cap(ws.queue) < n {
		ws.queue = make([]int32, 0, n)
	}
	if cap(ws.heapNode) < n {
		ws.heapNode = make([]int32, 0, n)
	}
	if cap(ws.heapDist) < n {
		ws.heapDist = make([]float64, 0, n)
	}
	words := (n + 63) / 64
	if cap(ws.front) < words {
		ws.front = make([]uint64, words)
	}
	ws.front = ws.front[:cap(ws.front)]
	if cap(ws.next) < words {
		ws.next = make([]uint64, words)
	}
	ws.next = ws.next[:cap(ws.next)]
	if cap(ws.bktNext) < n {
		ws.bktNext = make([]int32, n)
	}
	ws.bktNext = ws.bktNext[:n]
	if cap(ws.bktPrev) < n {
		ws.bktPrev = make([]int32, n)
	}
	ws.bktPrev = ws.bktPrev[:n]
	if cap(ws.bktOf) < n {
		ws.bktOf = make([]int32, n)
	}
	ws.bktOf = ws.bktOf[:n]
}

// reservePerm grows the permuted-traversal arrays to n nodes. Split out
// of Reserve so only reordered snapshots carry the extra 8n bytes.
func (ws *Workspace) reservePerm(n int) {
	if cap(ws.permHop) < n {
		ws.permHop = make([]int32, n)
	}
	ws.permHop = ws.permHop[:n]
	if cap(ws.permParent) < n {
		ws.permParent = make([]int32, n)
	}
	ws.permParent = ws.permParent[:n]
}

// relaxBuf is one worker's candidate buffer of the parallel bucketed
// Dijkstra scan phase: the settled endpoint, the half-edge index into
// the CSR arrays (v and the edge id are recovered from it at merge
// time), and the tentative distance.
type relaxBuf struct {
	u []int32
	j []int32
	d []float64
}

// reserveRelax grows the per-worker relaxation buffer set to k workers.
// The buffers themselves grow by append and are retained across calls,
// so a pooled Workspace settles to zero steady-state allocation.
func (ws *Workspace) reserveRelax(k int) {
	if cap(ws.relax) < k {
		nb := make([]relaxBuf, k)
		copy(nb, ws.relax)
		ws.relax = nb
	}
	ws.relax = ws.relax[:cap(ws.relax)]
}

// reserveRelaxShards grows the shard segment bookkeeping to k shards.
func (ws *Workspace) reserveRelaxShards(k int) {
	if cap(ws.relaxShardW) < k {
		ws.relaxShardW = make([]int32, k)
	}
	ws.relaxShardW = ws.relaxShardW[:k]
	if cap(ws.relaxShardLo) < k {
		ws.relaxShardLo = make([]int32, k)
	}
	ws.relaxShardLo = ws.relaxShardLo[:k]
	if cap(ws.relaxShardHi) < k {
		ws.relaxShardHi = make([]int32, k)
	}
	ws.relaxShardHi = ws.relaxShardHi[:k]
}

// reserveShards grows the parallel bottom-up counter arrays to k shards.
func (ws *Workspace) reserveShards(k int) {
	if cap(ws.shardNF) < k {
		ws.shardNF = make([]int32, k)
	}
	ws.shardNF = ws.shardNF[:k]
	if cap(ws.shardMF) < k {
		ws.shardMF = make([]int64, k)
	}
	ws.shardMF = ws.shardMF[:k]
}

// nextEpoch bumps the visited stamp, clearing the visited array only on
// the rare wraparound.
func (ws *Workspace) nextEpoch() uint32 {
	ws.epoch++
	if ws.epoch == 0 { // wrapped: stale stamps could collide, reset
		for i := range ws.visited {
			ws.visited[i] = 0
		}
		ws.epoch = 1
	}
	return ws.epoch
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace takes a Workspace from the shared pool, grown to n nodes.
// Pair with Release.
func GetWorkspace(n int) *Workspace {
	ws := wsPool.Get().(*Workspace)
	ws.Reserve(n)
	return ws
}

// Release returns ws to the pool. The caller must not touch ws (or any
// of its exported slices) afterwards.
func (ws *Workspace) Release() { wsPool.Put(ws) }
