package graph

import "sync"

// Workspace owns every scratch buffer a traversal kernel needs: weighted
// and hop distances, shortest-path-tree parents, the Dijkstra heap, the
// BFS queue, and an epoch-stamped visited array. One Workspace serves one
// goroutine at a time; a sync.Pool (GetWorkspace / Release) recycles them
// so multi-source sweeps run allocation-free after warmup.
//
// The exported slices hold kernel outputs. After CSR.Dijkstra: Dist,
// Parent, ParentEdge. After CSR.BFS: Hop, Parent. Their contents are valid
// until the next kernel call on the same Workspace.
type Workspace struct {
	// Dist is the weighted distance per node (Inf when unreachable).
	Dist []float64
	// Hop is the BFS hop distance per node (-1 when unreachable).
	Hop []int32
	// Parent is the shortest-path-tree parent per node (-1 for the
	// source and unreachable nodes).
	Parent []int32
	// ParentEdge is the edge id into the parent (-1 likewise).
	ParentEdge []int32

	heapNode []int32
	heapDist []float64
	queue    []int32
	visited  []uint32
	epoch    uint32
}

// NewWorkspace returns a Workspace sized for n-node graphs.
func NewWorkspace(n int) *Workspace {
	ws := &Workspace{}
	ws.Reserve(n)
	return ws
}

// Reserve grows the buffers to hold n nodes. Shrinking never happens, so
// a pooled Workspace converges to the largest graph it has served.
func (ws *Workspace) Reserve(n int) {
	if cap(ws.Dist) < n {
		ws.Dist = make([]float64, n)
		ws.Hop = make([]int32, n)
		ws.Parent = make([]int32, n)
		ws.ParentEdge = make([]int32, n)
		ws.visited = make([]uint32, n)
		ws.epoch = 0
		if cap(ws.queue) < n {
			ws.queue = make([]int32, 0, n)
		}
		if cap(ws.heapNode) < n {
			ws.heapNode = make([]int32, 0, n)
			ws.heapDist = make([]float64, 0, n)
		}
		return
	}
	ws.Dist = ws.Dist[:n]
	ws.Hop = ws.Hop[:n]
	ws.Parent = ws.Parent[:n]
	ws.ParentEdge = ws.ParentEdge[:n]
	ws.visited = ws.visited[:cap(ws.visited)]
}

// nextEpoch bumps the visited stamp, clearing the visited array only on
// the rare wraparound.
func (ws *Workspace) nextEpoch() uint32 {
	ws.epoch++
	if ws.epoch == 0 { // wrapped: stale stamps could collide, reset
		for i := range ws.visited {
			ws.visited[i] = 0
		}
		ws.epoch = 1
	}
	return ws.epoch
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace takes a Workspace from the shared pool, grown to n nodes.
// Pair with Release.
func GetWorkspace(n int) *Workspace {
	ws := wsPool.Get().(*Workspace)
	ws.Reserve(n)
	return ws
}

// Release returns ws to the pool. The caller must not touch ws (or any
// of its exported slices) afterwards.
func (ws *Workspace) Release() { wsPool.Put(ws) }
