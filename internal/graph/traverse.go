package graph

// BFS runs a breadth-first search from src and returns the hop distance to
// every node (-1 for unreachable) and the BFS parent of each node (-1 for
// src and unreachable nodes).
func (g *Graph) BFS(src int) (dist []int, parent []int) {
	n := g.NumNodes()
	dist = make([]int, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	if n == 0 {
		return dist, parent
	}
	queue := make([]int, 0, n)
	dist[src] = 0
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[u] {
			if dist[h.to] == -1 {
				dist[h.to] = dist[u] + 1
				parent[h.to] = u
				queue = append(queue, h.to)
			}
		}
	}
	return dist, parent
}

// ConnectedComponents labels each node with a component id in [0, k) and
// returns the labels together with the component sizes.
func (g *Graph) ConnectedComponents() (label []int, sizes []int) {
	n := g.NumNodes()
	label = make([]int, n)
	for i := range label {
		label[i] = -1
	}
	var queue []int
	for s := 0; s < n; s++ {
		if label[s] != -1 {
			continue
		}
		id := len(sizes)
		sizes = append(sizes, 0)
		label[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			sizes[id]++
			for _, h := range g.adj[u] {
				if label[h.to] == -1 {
					label[h.to] = id
					queue = append(queue, h.to)
				}
			}
		}
	}
	return label, sizes
}

// LargestComponentSize returns the size of the largest connected
// component, or 0 for the empty graph.
func (g *Graph) LargestComponentSize() int {
	_, sizes := g.ConnectedComponents()
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected.
func (g *Graph) IsConnected() bool {
	if g.NumNodes() == 0 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// IsTree reports whether the graph is a single tree: connected with
// exactly n-1 edges.
func (g *Graph) IsTree() bool {
	n := g.NumNodes()
	if n == 0 {
		return false
	}
	return g.NumEdges() == n-1 && g.IsConnected()
}

// IsForest reports whether the graph is acyclic (a disjoint union of
// trees). It counts edges per component: a component with c nodes is a
// tree iff it has exactly c-1 edges.
func (g *Graph) IsForest() bool {
	label, sizes := g.ConnectedComponents()
	edgeCount := make([]int, len(sizes))
	for _, e := range g.edges {
		edgeCount[label[e.U]]++
	}
	for id, sz := range sizes {
		if edgeCount[id] != sz-1 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum hop distance from src to any reachable
// node. It runs on a freshly frozen snapshot with a pooled workspace; for
// many-source loops freeze once and call CSR.Eccentricity directly.
func (g *Graph) Eccentricity(src int) int {
	c := g.Freeze()
	ws := GetWorkspace(c.NumNodes())
	defer ws.Release()
	return c.Eccentricity(ws, src)
}

// HopDiameter returns the largest hop eccentricity across nodes, computed
// exactly: one freeze, then n pooled-workspace BFS sweeps — O(n * (n + m))
// time with O(n) scratch, no per-source allocation. Disconnected pairs
// are ignored. Returns 0 for graphs with < 2 nodes.
func (g *Graph) HopDiameter() int {
	c := g.Freeze()
	ws := GetWorkspace(c.NumNodes())
	defer ws.Release()
	max := 0
	for u := 0; u < c.NumNodes(); u++ {
		if e := c.Eccentricity(ws, u); e > max {
			max = e
		}
	}
	return max
}

// AverageHopDistance returns the mean hop distance over all connected
// ordered pairs, and the number of such pairs, from one freeze and n
// pooled-workspace BFS sweeps. Returns (0, 0) when no two nodes are
// connected.
func (g *Graph) AverageHopDistance() (float64, int) {
	c := g.Freeze()
	n := c.NumNodes()
	ws := GetWorkspace(n)
	defer ws.Release()
	total := 0
	pairs := 0
	for u := 0; u < n; u++ {
		c.BFS(ws, u)
		for v, d := range ws.Hop[:n] {
			if v != u && d > 0 {
				total += int(d)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return float64(total) / float64(pairs), pairs
}

// TreeDepths returns, for a tree rooted at root, each node's depth. It is
// BFS distance; callers should ensure the graph is a tree if they need
// tree semantics.
func (g *Graph) TreeDepths(root int) []int {
	dist, _ := g.BFS(root)
	return dist
}

// Leaves returns the ids of all degree-1 nodes.
func (g *Graph) Leaves() []int {
	var out []int
	for u := range g.adj {
		if len(g.adj[u]) == 1 {
			out = append(out, u)
		}
	}
	return out
}
