package graph

import (
	"math"
	"testing"
)

// Verbatim copies of the pre-kernelization traversal helpers (one
// allocating BFS/Dijkstra per source, no CSR, no workspace pooling).
// The exported methods now freeze once and sweep pooled kernels; these
// references pin their results.

func legacyEccentricity(g *Graph, src int) int {
	dist, _ := g.BFS(src)
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return max
}

func legacyHopDiameter(g *Graph) int {
	max := 0
	for u := 0; u < g.NumNodes(); u++ {
		if e := legacyEccentricity(g, u); e > max {
			max = e
		}
	}
	return max
}

func legacyAverageHopDistance(g *Graph) (float64, int) {
	total := 0
	pairs := 0
	for u := 0; u < g.NumNodes(); u++ {
		dist, _ := g.BFS(u)
		for v, d := range dist {
			if v != u && d > 0 {
				total += d
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return float64(total) / float64(pairs), pairs
}

func legacyAverageWeightedDistance(g *Graph) (float64, int) {
	total := 0.0
	pairs := 0
	for u := 0; u < g.NumNodes(); u++ {
		dist, _, _ := g.Dijkstra(u)
		for v, d := range dist {
			if v != u && !math.IsInf(d, 1) {
				total += d
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return total / float64(pairs), pairs
}

// TestKernelizedTraversalsMatchLegacy pins the freeze-once pooled
// implementations of Eccentricity, HopDiameter, AverageHopDistance and
// AverageWeightedDistance to the original per-source allocating
// versions, on connected, disconnected, and degenerate graphs.
func TestKernelizedTraversalsMatchLegacy(t *testing.T) {
	graphs := map[string]*Graph{
		"connected":    randomTestGraph(90, 150, 21),
		"empty":        New(0),
		"single":       New(1),
		"disconnected": New(9),
	}
	graphs["single"].AddNode(Node{})
	dg := graphs["disconnected"]
	for i := 0; i < 9; i++ {
		dg.AddNode(Node{})
	}
	// Two components of different diameters plus an isolated node.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}} {
		dg.AddEdge(Edge{U: e[0], V: e[1], Weight: float64(e[0]) + 0.5, Cable: -1})
	}

	for name, g := range graphs {
		if got, want := g.HopDiameter(), legacyHopDiameter(g); got != want {
			t.Fatalf("%s: HopDiameter = %d, legacy %d", name, got, want)
		}
		gotAvg, gotPairs := g.AverageHopDistance()
		wantAvg, wantPairs := legacyAverageHopDistance(g)
		if gotAvg != wantAvg || gotPairs != wantPairs {
			t.Fatalf("%s: AverageHopDistance = (%v, %d), legacy (%v, %d)", name, gotAvg, gotPairs, wantAvg, wantPairs)
		}
		gotW, gotWP := g.AverageWeightedDistance()
		wantW, wantWP := legacyAverageWeightedDistance(g)
		if gotW != wantW || gotWP != wantWP {
			t.Fatalf("%s: AverageWeightedDistance = (%v, %d), legacy (%v, %d)", name, gotW, gotWP, wantW, wantWP)
		}
		for src := 0; src < g.NumNodes(); src++ {
			if got, want := g.Eccentricity(src), legacyEccentricity(g, src); got != want {
				t.Fatalf("%s: Eccentricity(%d) = %d, legacy %d", name, src, got, want)
			}
		}
	}
}
