package graph

import (
	"slices"
	"sort"
)

// ReorderMode selects the cache-conscious internal permutation a
// FreezeWithOptions snapshot applies to its BFS traversal mirror.
type ReorderMode uint8

const (
	// ReorderNone keeps the original node order (Freeze's behaviour).
	ReorderNone ReorderMode = iota
	// ReorderDegree orders nodes by descending degree (ties by ascending
	// id). Bottom-up BFS scans the hottest rows most, so packing them
	// together front-loads the cache-resident part of the mirror.
	ReorderDegree
	// ReorderRCM applies reverse Cuthill-McKee: a BFS from a minimum-
	// degree node visiting neighbours in (degree asc, id asc) order,
	// reversed. Minimizes bandwidth, clustering each row's neighbours
	// near the row itself.
	ReorderRCM
)

// FreezeOptions configures Graph.FreezeWithOptions.
type FreezeOptions struct {
	// Reorder selects the traversal-mirror permutation. Regardless of
	// mode, the snapshot's public surface is byte-identical to Freeze's:
	// Neighbors, Degree, Parent/Dist/Hop, every metric, and every
	// tie-break contract see original node ids only. The permutation
	// exists purely so the BFS kernels walk a cache-friendlier layout.
	Reorder ReorderMode
}

// FreezeWithOptions is Freeze with an optional cache-conscious reordering
// of the BFS traversal mirror. With Reorder != ReorderNone the snapshot
// stores an internal permutation plus its inverse and a permuted mirror
// whose rows remain sorted by original neighbour id; the BFS kernels
// traverse internal ids and scatter results back at the boundary, so all
// outputs are bit-identical to the unreordered snapshot's (pinned by
// parity tests). Dijkstra and the component kernels read the original-
// order arrays either way. The plain sorted mirror is dropped on
// reordered snapshots — the permuted mirror replaces it — so the memory
// footprint grows only by the two n-sized permutation arrays and one
// row-offset array (see CSR.MemBytes).
func (g *Graph) FreezeWithOptions(opt FreezeOptions) *CSR {
	mode := opt.Reorder
	if mode != ReorderDegree && mode != ReorderRCM {
		mode = ReorderNone // unknown modes fall back to a plain snapshot
	}
	// A reordered snapshot never materializes the plain sorted mirror:
	// the permuted mirror below is derived straight from nbr, so peak
	// memory during Freeze stays one mirror, not two.
	c := g.freezeBase(mode == ReorderNone)
	if mode == ReorderNone || c.n == 0 {
		return c
	}
	var inv []int32 // internal -> original
	switch mode {
	case ReorderDegree:
		inv = c.degreeOrder()
	case ReorderRCM:
		inv = c.rcmOrder()
	}
	perm := make([]int32, c.n) // original -> internal
	for i, o := range inv {
		perm[o] = int32(i)
	}
	c.perm, c.inv, c.reorder = perm, inv, mode

	// Build the permuted mirror: row of internal node i = row of
	// original node inv[i], neighbours mapped to internal ids. Each row
	// is copied from nbr in original ids, sorted, then mapped through
	// perm in place — the sort happens before the mapping, so each
	// permuted row ends up sorted by ORIGINAL neighbour id, exactly the
	// order the bottom-up smallest-id claim needs.
	c.permRowStart = make([]int32, c.n+1)
	c.permNbr = make([]int32, len(c.nbr))
	pos := int32(0)
	for i := 0; i < c.n; i++ {
		c.permRowStart[i] = pos
		o := inv[i]
		lo, hi := c.rowStart[o], c.rowStart[o+1]
		row := c.permNbr[pos : pos+(hi-lo)]
		copy(row, c.nbr[lo:hi])
		slices.Sort(row)
		for k := range row {
			row[k] = perm[row[k]]
		}
		pos += hi - lo
	}
	c.permRowStart[c.n] = pos
	return c
}

// Reordered reports the snapshot's traversal reordering mode.
func (c *CSR) Reordered() ReorderMode { return c.reorder }

// degreeOrder returns original ids sorted by (degree desc, id asc) — the
// internal -> original map of the ReorderDegree permutation.
func (c *CSR) degreeOrder() []int32 {
	inv := make([]int32, c.n)
	for i := range inv {
		inv[i] = int32(i)
	}
	sort.Slice(inv, func(a, b int) bool {
		da, db := c.Degree(int(inv[a])), c.Degree(int(inv[b]))
		if da != db {
			return da > db
		}
		return inv[a] < inv[b]
	})
	return inv
}

// rcmOrder returns the reverse Cuthill-McKee visit order (internal ->
// original map of the ReorderRCM permutation): per component, BFS from
// the unvisited (degree asc, id asc)-minimal node, enqueueing each
// node's unvisited neighbours in (degree asc, id asc) order; the full
// visit sequence is then reversed.
func (c *CSR) rcmOrder() []int32 {
	// Global (degree asc, id asc) ranking doubles as the component-start
	// picker: the first still-unvisited entry starts the next component.
	byDeg := make([]int32, c.n)
	for i := range byDeg {
		byDeg[i] = int32(i)
	}
	sort.Slice(byDeg, func(a, b int) bool {
		da, db := c.Degree(int(byDeg[a])), c.Degree(int(byDeg[b]))
		if da != db {
			return da < db
		}
		return byDeg[a] < byDeg[b]
	})
	visited := make([]bool, c.n)
	order := make([]int32, 0, c.n)
	var row []int32
	nextStart := 0
	for len(order) < c.n {
		for visited[byDeg[nextStart]] {
			nextStart++
		}
		s := byDeg[nextStart]
		visited[s] = true
		order = append(order, s)
		for head := len(order) - 1; head < len(order); head++ {
			u := order[head]
			row = row[:0]
			for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
				if v := c.nbr[j]; !visited[v] {
					visited[v] = true // also dedupes parallel edges
					row = append(row, v)
				}
			}
			sort.Slice(row, func(a, b int) bool {
				da, db := c.Degree(int(row[a])), c.Degree(int(row[b]))
				if da != db {
					return da < db
				}
				return row[a] < row[b]
			})
			order = append(order, row...)
		}
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
