package graph

import (
	"encoding/binary"
	"math"
	"math/rand"
	"slices"
	"strings"
	"testing"
)

// forceBottomUp are bfs switching parameters that push the traversal
// bottom-up at the first level and keep it there: a huge alpha makes
// mf*alpha > mu immediately, and the same huge beta keeps nf*beta >= n.
const forceBottomUp = 1 << 20

// weightedTestGraph builds graphs across the weight regimes that select
// between the bucketed and heap Dijkstra kernels.
func weightedTestGraph(n, extraEdges int, seed int64, weight func(r *rand.Rand) float64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(Node{X: r.Float64(), Y: r.Float64()})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(Edge{U: i, V: r.Intn(i), Weight: weight(r), Cable: -1})
	}
	for k := 0; k < extraEdges; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(Edge{U: u, V: v, Weight: weight(r), Cable: -1})
	}
	return g
}

func checkBFSEqual(t *testing.T, label string, n int, ref, got *Workspace) {
	t.Helper()
	for v := 0; v < n; v++ {
		if ref.Hop[v] != got.Hop[v] {
			t.Fatalf("%s: hop[%d] = %d, reference %d", label, v, got.Hop[v], ref.Hop[v])
		}
		if ref.Parent[v] != got.Parent[v] {
			t.Fatalf("%s: parent[%d] = %d, reference %d (hop %d)", label, v, got.Parent[v], ref.Parent[v], ref.Hop[v])
		}
	}
}

// TestBFSDirectionSwitchingParity pins every switching regime of the
// direction-optimizing BFS — pure top-down, forced all-bottom-up, an
// aggressive mixed schedule, and the default thresholds — bit-for-bit to
// the reference kernel, on every source of several random graphs.
func TestBFSDirectionSwitchingParity(t *testing.T) {
	regimes := []struct {
		name        string
		alpha, beta int
		wantBottom  bool
	}{
		{"bottom-up", forceBottomUp, forceBottomUp, true},
		{"mixed", 2, 4, true},
		{"default", bfsAlpha, bfsBeta, false}, // bottom-up engagement depends on shape
	}
	for _, seed := range []int64{1, 2} {
		g := randomTestGraph(300, 700, seed)
		c := g.Freeze()
		ref := NewWorkspace(c.NumNodes())
		ws := NewWorkspace(c.NumNodes())
		for src := 0; src < c.NumNodes(); src += 13 {
			c.BFSTopDown(ref, src)
			if ref.BFSBottomUpLevels != 0 {
				t.Fatalf("BFSTopDown reports %d bottom-up levels", ref.BFSBottomUpLevels)
			}
			for _, reg := range regimes {
				c.bfs(ws, src, reg.alpha, reg.beta, 1)
				if reg.wantBottom && ws.BFSBottomUpLevels == 0 {
					t.Fatalf("seed %d src %d regime %s: no bottom-up level ran", seed, src, reg.name)
				}
				checkBFSEqual(t, reg.name, c.NumNodes(), ref, ws)
			}
			c.BFS(ws, src)
			checkBFSEqual(t, "exported", c.NumNodes(), ref, ws)
		}
	}
}

// TestBFSParentMinIDContract checks the documented tie-break directly:
// Parent[v] must be the smallest-id neighbour one hop closer to the
// source, independent of which kernel or direction produced it.
func TestBFSParentMinIDContract(t *testing.T) {
	g := randomTestGraph(200, 500, 3)
	c := g.Freeze()
	n := c.NumNodes()
	ws := NewWorkspace(n)
	for _, kernel := range []struct {
		name string
		run  func(src int)
	}{
		{"top-down", func(src int) { c.BFSTopDown(ws, src) }},
		{"bottom-up", func(src int) { c.bfs(ws, src, forceBottomUp, forceBottomUp, 1) }},
		{"dir-opt", func(src int) { c.BFS(ws, src) }},
	} {
		for src := 0; src < n; src += 17 {
			kernel.run(src)
			for v := 0; v < n; v++ {
				if ws.Hop[v] <= 0 {
					continue
				}
				want := int32(-1)
				c.Neighbors(v, func(u, _ int, _ float64) {
					if ws.Hop[u] == ws.Hop[v]-1 && (want < 0 || int32(u) < want) {
						want = int32(u)
					}
				})
				if ws.Parent[v] != want {
					t.Fatalf("%s src %d: parent[%d] = %d, want min-id %d", kernel.name, src, v, ws.Parent[v], want)
				}
			}
		}
	}
}

// TestDijkstraBucketMatchesHeap pins the bucketed kernel bit-for-bit to
// the heap reference — distances, parents, and parent edges — across
// weight regimes that stress bucket binning: generic uniform, unit
// weights (all entries land in one bucket edge), a few exact zero
// weights (same-bucket re-relaxation), tiny weights against one huge
// outlier (everything bins into bucket 0), and heavy parallel edges
// (edge-id tie-breaks).
func TestDijkstraBucketMatchesHeap(t *testing.T) {
	regimes := []struct {
		name   string
		weight func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return 0.1 + r.Float64() }},
		{"unit", func(*rand.Rand) float64 { return 1 }},
		{"sparse-zeros", func(r *rand.Rand) float64 {
			if r.Intn(4) == 0 {
				return 0
			}
			return r.Float64()
		}},
		{"huge-outlier", func(r *rand.Rand) float64 {
			if r.Intn(64) == 0 {
				return 1e9
			}
			return 1e-6 * (1 + r.Float64())
		}},
	}
	for _, reg := range regimes {
		for _, seed := range []int64{1, 2} {
			g := weightedTestGraph(150, 400, seed, reg.weight)
			// Parallel edges with distinct weights and ids between the same
			// endpoints, to exercise the (parent, edge) tie-break.
			r := rand.New(rand.NewSource(seed + 100))
			for k := 0; k < 60; k++ {
				u, v := r.Intn(150), r.Intn(150)
				if u == v {
					continue
				}
				g.AddEdge(Edge{U: u, V: v, Weight: reg.weight(r), Cable: -1})
			}
			c := g.Freeze()
			if !c.bucketOK {
				t.Fatalf("regime %s: expected bucketOK snapshot", reg.name)
			}
			ref := NewWorkspace(c.NumNodes())
			ws := NewWorkspace(c.NumNodes())
			for src := 0; src < c.NumNodes(); src += 11 {
				c.DijkstraHeap(ref, src)
				c.dijkstraBucket(ws, src)
				for v := 0; v < c.NumNodes(); v++ {
					if ref.Dist[v] != ws.Dist[v] {
						t.Fatalf("regime %s seed %d src %d: dist[%d] = %v bucket vs %v heap", reg.name, seed, src, v, ws.Dist[v], ref.Dist[v])
					}
					if ref.Parent[v] != ws.Parent[v] || ref.ParentEdge[v] != ws.ParentEdge[v] {
						t.Fatalf("regime %s seed %d src %d: tree at %d = (%d,%d) bucket vs (%d,%d) heap",
							reg.name, seed, src, v, ws.Parent[v], ws.ParentEdge[v], ref.Parent[v], ref.ParentEdge[v])
					}
				}
			}
		}
	}
}

// TestDijkstraParallelMatchesSerial forces every bucket window through
// the parallel scan/merge machinery (minFrontier 1) at worker widths
// 2/3/8 and pins dist/parent/parentEdge bit-for-bit to the serial
// bucketed kernel across the same weight regimes that stress bucket
// binning, plus the heap reference.
func TestDijkstraParallelMatchesSerial(t *testing.T) {
	regimes := []struct {
		name   string
		weight func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return 0.1 + r.Float64() }},
		{"unit", func(*rand.Rand) float64 { return 1 }},
		{"sparse-zeros", func(r *rand.Rand) float64 {
			if r.Intn(4) == 0 {
				return 0
			}
			return r.Float64()
		}},
		{"huge-outlier", func(r *rand.Rand) float64 {
			if r.Intn(64) == 0 {
				return 1e9
			}
			return 1e-6 * (1 + r.Float64())
		}},
	}
	for _, reg := range regimes {
		for _, seed := range []int64{1, 2} {
			g := weightedTestGraph(150, 400, seed, reg.weight)
			r := rand.New(rand.NewSource(seed + 100))
			for k := 0; k < 60; k++ {
				u, v := r.Intn(150), r.Intn(150)
				if u == v {
					continue
				}
				g.AddEdge(Edge{U: u, V: v, Weight: reg.weight(r), Cable: -1})
			}
			c := g.Freeze()
			n := c.NumNodes()
			ref := NewWorkspace(n)
			ws := NewWorkspace(n)
			for src := 0; src < n; src += 11 {
				c.dijkstraBucket(ref, src)
				for _, workers := range []int{2, 3, 8} {
					c.dijkstraBucketParallel(ws, src, workers, 1)
					for v := 0; v < n; v++ {
						if ref.Dist[v] != ws.Dist[v] {
							t.Fatalf("regime %s seed %d src %d w%d: dist[%d] = %v parallel vs %v serial",
								reg.name, seed, src, workers, v, ws.Dist[v], ref.Dist[v])
						}
						if ref.Parent[v] != ws.Parent[v] || ref.ParentEdge[v] != ws.ParentEdge[v] {
							t.Fatalf("regime %s seed %d src %d w%d: tree at %d = (%d,%d) parallel vs (%d,%d) serial",
								reg.name, seed, src, workers, v, ws.Parent[v], ws.ParentEdge[v], ref.Parent[v], ref.ParentEdge[v])
						}
					}
				}
			}
		}
	}
}

// TestDijkstraParallelSmallShapes runs the parallel entry point over
// degenerate shapes — empty, single node, disconnected pair — and on a
// heap-fallback snapshot (all-zero weights), at forced widths.
func TestDijkstraParallelSmallShapes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5} {
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode(Node{})
		}
		if n >= 4 {
			g.AddEdge(Edge{U: 0, V: 1, Weight: 1, Cable: -1})
			g.AddEdge(Edge{U: 2, V: 3, Weight: 0.5, Cable: -1})
		}
		c := g.Freeze()
		ws := NewWorkspace(n)
		ref := NewWorkspace(n)
		for src := 0; src < n; src++ {
			c.DijkstraHeap(ref, src)
			for _, workers := range []int{1, 2, 8} {
				c.DijkstraParallel(ws, src, workers)
				for v := 0; v < n; v++ {
					if ws.Dist[v] != ref.Dist[v] || ws.Parent[v] != ref.Parent[v] {
						t.Fatalf("n=%d src=%d w%d: node %d = (%v,%d) vs heap (%v,%d)",
							n, src, workers, v, ws.Dist[v], ws.Parent[v], ref.Dist[v], ref.Parent[v])
					}
				}
			}
		}
	}
	// All-zero weights disqualify bucketing: DijkstraParallel must fall
	// back to the (serial) heap kernel and still match it.
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(Node{})
	}
	g.AddEdge(Edge{U: 0, V: 1, Weight: 0, Cable: -1})
	g.AddEdge(Edge{U: 1, V: 2, Weight: 0, Cable: -1})
	c := g.Freeze()
	if c.bucketOK {
		t.Fatal("all-zero snapshot unexpectedly bucketOK")
	}
	ws := NewWorkspace(3)
	ref := NewWorkspace(3)
	c.DijkstraHeap(ref, 0)
	c.DijkstraParallel(ws, 0, 4)
	for v := 0; v < 3; v++ {
		if ws.Dist[v] != ref.Dist[v] {
			t.Fatalf("zero-weight fallback: dist[%d] = %v vs heap %v", v, ws.Dist[v], ref.Dist[v])
		}
	}
}

// TestDijkstraBucketGate pins the Freeze-time bucketOK classification:
// snapshots whose weights cannot be binned (all zero, an infinite
// weight, a NaN, a negative weight, or no edges at all) must fall back
// to the heap kernel, and Dijkstra must still terminate on them.
func TestDijkstraBucketGate(t *testing.T) {
	mk := func(ws ...float64) *CSR {
		g := New(len(ws) + 1)
		for i := 0; i <= len(ws); i++ {
			g.AddNode(Node{})
		}
		for i, w := range ws {
			g.AddEdge(Edge{U: i, V: i + 1, Weight: w, Cable: -1})
		}
		return g.Freeze()
	}
	cases := []struct {
		name string
		c    *CSR
		ok   bool
	}{
		{"positive", mk(1, 2, 0.5), true},
		{"with-zero", mk(0, 1), true},
		{"all-zero", mk(0, 0), false},
		{"edgeless", mk(), false},
		{"inf", mk(1, math.Inf(1)), false},
		{"nan", mk(1, math.NaN()), false},
		{"negative", mk(1, -1), false},
		// maxW/bucketSpan underflows to 0 for a subnormal this small —
		// found by FuzzDijkstraBucketGate: the bucket index would be
		// nd/0 = +Inf. A tiny but normal maxW still bins fine.
		{"subnormal", mk(5e-324), false},
		{"tiny-normal", mk(1e-300), true},
	}
	for _, tc := range cases {
		if tc.c.bucketOK != tc.ok {
			t.Fatalf("%s: bucketOK = %v, want %v", tc.name, tc.c.bucketOK, tc.ok)
		}
	}
	// The fallback still terminates and matches the heap on the
	// non-negative disqualified shapes. ("negative" is excluded: the
	// heap kernel's panic on negative weights is its own contract.)
	for _, tc := range cases {
		if tc.ok || tc.name == "negative" {
			continue
		}
		ws := NewWorkspace(tc.c.NumNodes())
		ref := NewWorkspace(tc.c.NumNodes())
		tc.c.Dijkstra(ws, 0)
		tc.c.DijkstraHeap(ref, 0)
		for v := 0; v < tc.c.NumNodes(); v++ {
			same := ref.Dist[v] == ws.Dist[v] ||
				(math.IsNaN(ref.Dist[v]) && math.IsNaN(ws.Dist[v]))
			if !same {
				t.Fatalf("%s: fallback dist[%d] = %v, heap %v", tc.name, v, ws.Dist[v], ref.Dist[v])
			}
		}
	}
}

// FuzzDijkstraBucketGate drives the Freeze-time bucketOK gate with
// arbitrary weight bit patterns (every 8 fuzz bytes decode to one
// float64, so NaNs, infinities, subnormals, and negative zeros all
// occur naturally). Invariants: Freeze never panics; bucketOK is
// exactly the documented predicate (no NaN, minW >= 0, 0 < maxW < Inf);
// and on every non-negative input the bucketed/parallel kernels
// terminate and match the heap reference bit-for-bit.
func FuzzDijkstraBucketGate(f *testing.F) {
	enc := func(ws ...float64) []byte {
		b := make([]byte, 0, 8*len(ws))
		for _, w := range ws {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(w))
		}
		return b
	}
	f.Add(enc(1, 2, 0.5))
	f.Add(enc(0, 1))
	f.Add(enc(0, 0))
	f.Add(enc())
	f.Add(enc(1, math.Inf(1)))
	f.Add(enc(1, math.NaN()))
	f.Add(enc(1, -1))
	f.Add(enc(math.Copysign(0, -1), 1e-300, 1e300))
	f.Fuzz(func(t *testing.T, data []byte) {
		var weights []float64
		for len(data) >= 8 && len(weights) < 64 {
			weights = append(weights, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
		g := New(len(weights) + 1)
		for i := 0; i <= len(weights); i++ {
			g.AddNode(Node{})
		}
		for i, w := range weights {
			g.AddEdge(Edge{U: i, V: i + 1, Weight: w, Cable: -1})
			if i%3 == 0 && i+2 <= len(weights) {
				g.AddEdge(Edge{U: i, V: i + 2, Weight: w, Cable: -1}) // shortcut edges vary the shape
			}
		}
		c := g.Freeze()

		nan, neg := false, false
		minW, maxW := math.Inf(1), math.Inf(-1)
		for _, w := range c.weight {
			if math.IsNaN(w) {
				nan = true
			}
			if w < 0 {
				neg = true
			}
			minW = math.Min(minW, w)
			maxW = math.Max(maxW, w)
		}
		wantOK := !nan && len(c.weight) > 0 && minW >= 0 && maxW > 0 &&
			!math.IsInf(maxW, 1) && maxW/bucketSpan > 0
		if c.bucketOK != wantOK {
			t.Fatalf("bucketOK = %v, want %v (weights %v)", c.bucketOK, wantOK, weights)
		}
		if nan || neg {
			// The heap fallback's own negative-weight panic is a documented
			// contract, and NaN comparisons make "shortest" ill-defined;
			// the gate's job — classifying them out of the bucket kernel —
			// is verified above.
			return
		}
		n := c.NumNodes()
		ws := NewWorkspace(n)
		ref := NewWorkspace(n)
		for src := 0; src < n; src += 1 + n/4 {
			c.DijkstraHeap(ref, src)
			c.Dijkstra(ws, src)
			for v := 0; v < n; v++ {
				if ws.Dist[v] != ref.Dist[v] || ws.Parent[v] != ref.Parent[v] || ws.ParentEdge[v] != ref.ParentEdge[v] {
					t.Fatalf("Dijkstra src %d node %d: (%v,%d,%d) vs heap (%v,%d,%d)",
						src, v, ws.Dist[v], ws.Parent[v], ws.ParentEdge[v], ref.Dist[v], ref.Parent[v], ref.ParentEdge[v])
				}
			}
			if c.bucketOK {
				c.dijkstraBucketParallel(ws, src, 3, 1)
				for v := 0; v < n; v++ {
					if ws.Dist[v] != ref.Dist[v] || ws.Parent[v] != ref.Parent[v] || ws.ParentEdge[v] != ref.ParentEdge[v] {
						t.Fatalf("parallel src %d node %d: (%v,%d,%d) vs heap (%v,%d,%d)",
							src, v, ws.Dist[v], ws.Parent[v], ws.ParentEdge[v], ref.Dist[v], ref.Parent[v], ref.ParentEdge[v])
					}
				}
			}
		}
	})
}

// TestCheckCSRBoundsPanics pins the documented int32 overflow guard at
// Freeze without materializing a 2^31-node graph.
func TestCheckCSRBoundsPanics(t *testing.T) {
	mustPanic := func(name, wantSub string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: guard did not panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, wantSub) {
				t.Fatalf("%s: panic %v does not mention %q", name, r, wantSub)
			}
		}()
		fn()
	}
	mustPanic("nodes", "nodes exceed", func() { checkCSRBounds(MaxCSRNodes+1, 0) })
	mustPanic("edges", "half-edges) exceed", func() { checkCSRBounds(10, MaxCSRHalfEdges/2+1) })
	checkCSRBounds(MaxCSRNodes, MaxCSRHalfEdges/2) // at the limit: no panic
	checkCSRBounds(0, 0)
}

// TestReserveIndependentCapacities is the regression test for the
// partial-growth hazard: a workspace whose Dist is already large but
// whose other buffers are short must still have every buffer grown.
func TestReserveIndependentCapacities(t *testing.T) {
	ws := &Workspace{Dist: make([]float64, 512)}
	ws.Reserve(512)
	if cap(ws.Hop) < 512 || cap(ws.Parent) < 512 || cap(ws.ParentEdge) < 512 {
		t.Fatalf("output buffers not grown: hop %d parent %d parentEdge %d", cap(ws.Hop), cap(ws.Parent), cap(ws.ParentEdge))
	}
	if cap(ws.queue) < 512 || cap(ws.heapNode) < 512 || cap(ws.heapDist) < 512 {
		t.Fatalf("scratch buffers not grown: queue %d heapNode %d heapDist %d", cap(ws.queue), cap(ws.heapNode), cap(ws.heapDist))
	}
	if len(ws.visited) < 512 {
		t.Fatalf("visited not grown: %d", len(ws.visited))
	}
	words := (512 + 63) / 64
	if len(ws.front) < words || len(ws.next) < words {
		t.Fatalf("bitsets not grown: front %d next %d (want >= %d words)", len(ws.front), len(ws.next), words)
	}
	// A grown-then-regrown workspace keeps epochs safe: stale visited
	// stamps never alias a fresh epoch.
	g := randomTestGraph(40, 20, 12)
	c := g.Freeze()
	removed := make([]bool, 40)
	a := c.LargestComponentMasked(ws, removed)
	ws.Reserve(2048)
	b := c.LargestComponentMasked(ws, removed)
	if a != b {
		t.Fatalf("LCC changed across Reserve growth: %d vs %d", a, b)
	}
}

// TestFreezeBFSNbrSorted checks the sorted BFS adjacency mirror: each
// row ascending, and a permutation of the insertion-ordered row.
func TestFreezeBFSNbrSorted(t *testing.T) {
	g := randomTestGraph(80, 300, 13)
	c := g.Freeze()
	for u := 0; u < c.NumNodes(); u++ {
		row := c.bfsNbr[c.rowStart[u]:c.rowStart[u+1]]
		if !slices.IsSorted(row) {
			t.Fatalf("bfsNbr row %d not sorted: %v", u, row)
		}
		want := append([]int32(nil), c.nbr[c.rowStart[u]:c.rowStart[u+1]]...)
		slices.Sort(want)
		if !slices.Equal(row, want) {
			t.Fatalf("bfsNbr row %d is not a permutation of nbr: %v vs %v", u, row, want)
		}
	}
}

// TestBFSSmallShapes runs every kernel over degenerate shapes — empty,
// single node, disconnected pair — under forced bottom-up parameters.
func TestBFSSmallShapes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5} {
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddNode(Node{})
		}
		if n >= 4 {
			g.AddEdge(Edge{U: 0, V: 1, Weight: 1, Cable: -1})
			g.AddEdge(Edge{U: 2, V: 3, Weight: 1, Cable: -1})
		}
		c := g.Freeze()
		ws := NewWorkspace(n)
		ref := NewWorkspace(n)
		for src := 0; src < n; src++ {
			c.BFSTopDown(ref, src)
			c.bfs(ws, src, forceBottomUp, forceBottomUp, 1)
			checkBFSEqual(t, "small", n, ref, ws)
			c.Dijkstra(ws, src)
			c.DijkstraHeap(ref, src)
			for v := 0; v < n; v++ {
				if ws.Dist[v] != ref.Dist[v] {
					t.Fatalf("n=%d src=%d: dist[%d] = %v vs %v", n, src, v, ws.Dist[v], ref.Dist[v])
				}
			}
		}
	}
}
