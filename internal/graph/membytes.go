package graph

import "unsafe"

// MemBytes estimates the graph's resident heap footprint in bytes: the
// node, edge and adjacency backing arrays (at capacity, which is what
// the allocator actually holds) plus label string storage. Together
// with CSR.MemBytes it is the per-entry charge of the scenario engine's
// byte-budgeted snapshot cache.
func (g *Graph) MemBytes() int64 {
	b := int64(unsafe.Sizeof(Node{}))*int64(cap(g.nodes)) +
		int64(unsafe.Sizeof(Edge{}))*int64(cap(g.edges)) +
		int64(unsafe.Sizeof([]halfEdge(nil)))*int64(cap(g.adj))
	for _, a := range g.adj {
		b += int64(unsafe.Sizeof(halfEdge{})) * int64(cap(a))
	}
	for i := range g.nodes {
		b += int64(len(g.nodes[i].Label))
	}
	return b
}

// MemBytes reports the snapshot's heap footprint in bytes: the int32 CSR
// arrays (rowStart, nbr, edgeID, the sorted bfsNbr mirror, and — on
// reordered snapshots — the permutation, its inverse, and the permuted
// mirror's row offsets and neighbours) plus the float64 weights. Freeze
// allocates every array at its final length, so for a graph of n nodes
// and m edges this is exactly 4(n+1) + 40m unreordered, and
// 8(n+1) + 8n + 40m reordered (the permuted mirror replaces bfsNbr, so
// the mirrors net out and only the permutations and the second offset
// array are new). Pooled per-workspace scratch (including the parallel
// BFS shard counters) is deliberately not charged — it is shared across
// snapshots, not retained per snapshot.
func (c *CSR) MemBytes() int64 {
	const i32, f64 = 4, 8
	n := cap(c.rowStart) + cap(c.nbr) + cap(c.edgeID) + cap(c.bfsNbr) +
		cap(c.perm) + cap(c.inv) + cap(c.permRowStart) + cap(c.permNbr)
	return i32*int64(n) + f64*int64(cap(c.weight))
}
