package graph

import (
	"fmt"
	"math"
	"math/bits"
	"slices"

	"repro/internal/par"
)

// CSR is an immutable compressed-sparse-row snapshot of a Graph: every
// half-edge of node u lives in the contiguous range
// [rowStart[u], rowStart[u+1]), with the neighbour id, the originating
// edge index, and the edge weight stored in parallel flat arrays. The
// layout is cache-friendly (one pointer dereference per traversal instead
// of one per adjacency list) and safe for concurrent use: all traversal
// kernels take a caller-owned Workspace and never mutate the CSR.
//
// Indices are explicit int32: a snapshot holds at most MaxCSRNodes nodes
// and MaxCSRHalfEdges half-edges (directed edge slots), which Freeze
// guards with a documented panic. That bounds a 10^7-node, 3x10^7-edge
// snapshot to ~1 GB and keeps the hot arrays half the width of int64.
//
// Freeze a graph once, then fan any number of Dijkstra/BFS/eccentricity
// calls out across goroutines, each with its own pooled Workspace. This is
// the compute substrate under internal/routing, internal/metrics and
// internal/robust.
//
// Shortest-path-tree determinism contract: for both BFS and Dijkstra,
// whenever several parents are tie-optimal the kernels resolve the tie
// the same documented way — Parent[v] is the smallest-id neighbour u
// achieving the optimal distance to v (and ParentEdge[v] the smallest
// edge id among parallel (u,v) edges on a weight tie). The rule is a
// property of the graph alone, not of traversal order, so the
// direction-optimizing BFS, the bucketed Dijkstra, and the reference
// kernels (BFSTopDown, DijkstraHeap) all produce bit-identical trees.
type CSR struct {
	n        int
	m        int
	rowStart []int32
	nbr      []int32
	edgeID   []int32
	weight   []float64

	// bfsNbr mirrors nbr with each row sorted ascending by neighbour id.
	// The BFS kernels traverse it instead of nbr: the bottom-up step can
	// then claim a node at its first frontier neighbour and still honour
	// the smallest-id parent contract, and the sorted rows scan with
	// fewer cache-line switches on id-clustered generators. nil on
	// reordered snapshots, where permNbr replaces it.
	bfsNbr []int32

	// Cache reordering (FreezeWithOptions with Reorder != ReorderNone):
	// perm maps original -> internal ids, inv maps internal -> original,
	// and permRowStart/permNbr are the BFS mirror in internal id space
	// with each row still sorted ascending by ORIGINAL neighbour id, so
	// the bottom-up first-match claim keeps the smallest-original-id
	// parent contract. All nil when the snapshot is unreordered; only the
	// BFS kernels consult them — Neighbors, Degree, Dijkstra and every
	// metric read the original-order arrays and are byte-identical either
	// way.
	perm         []int32
	inv          []int32
	permRowStart []int32
	permNbr      []int32
	reorder      ReorderMode

	// minW/maxW summarize the weight range (0/0 for edgeless snapshots);
	// bucketOK records whether the bucketed Dijkstra applies: weights
	// all finite, non-negative, not NaN, with maxW > 0.
	minW, maxW float64
	bucketOK   bool
}

// Limits of the int32 CSR index space. One id (^int32(0) territory) is
// kept out of range so sentinel values like -1 never collide.
const (
	MaxCSRNodes     = math.MaxInt32 - 1
	MaxCSRHalfEdges = math.MaxInt32 - 1
)

// checkCSRBounds panics when a graph shape exceeds the int32 CSR index
// space. Kept as a separate function so the guard is testable without
// materializing a 2^31-node graph.
func checkCSRBounds(nodes, edges int) {
	if nodes > MaxCSRNodes {
		panic(fmt.Sprintf("graph: Freeze: %d nodes exceed the int32 CSR index range (max %d)", nodes, MaxCSRNodes))
	}
	if edges > MaxCSRHalfEdges/2 {
		panic(fmt.Sprintf("graph: Freeze: %d edges (%d half-edges) exceed the int32 CSR index range (max %d)", edges, 2*edges, MaxCSRHalfEdges))
	}
}

// Freeze builds a CSR snapshot of g. Later mutations of g (new nodes,
// edges, or weight updates) are not reflected in the snapshot. Graphs
// beyond the int32 index space (MaxCSRNodes nodes or MaxCSRHalfEdges/2
// edges) panic with a documented message.
func (g *Graph) Freeze() *CSR {
	return g.FreezeWithOptions(FreezeOptions{})
}

// freezeBase builds the unreordered snapshot; FreezeWithOptions layers
// the optional traversal reordering on top. sortedMirror=false skips the
// bfsNbr build: the reordered path derives its permuted mirror straight
// from nbr, so materializing bfsNbr there would only raise peak memory
// by a second 2m-int32 array — at the 10^7-node scale that is hundreds
// of megabytes of transient allocation for nothing.
func (g *Graph) freezeBase(sortedMirror bool) *CSR {
	n := len(g.nodes)
	checkCSRBounds(n, len(g.edges))
	c := &CSR{
		n:        n,
		m:        len(g.edges),
		rowStart: make([]int32, n+1),
		nbr:      make([]int32, 2*len(g.edges)),
		edgeID:   make([]int32, 2*len(g.edges)),
		weight:   make([]float64, 2*len(g.edges)),
	}
	pos := int32(0)
	for u := 0; u < n; u++ {
		c.rowStart[u] = pos
		for _, h := range g.adj[u] {
			c.nbr[pos] = int32(h.to)
			c.edgeID[pos] = int32(h.edge)
			c.weight[pos] = g.edges[h.edge].Weight
			pos++
		}
	}
	c.rowStart[n] = pos

	if sortedMirror {
		// Build the mirror row by row — copy then sort each chunk — so
		// the pass streams through one row at a time instead of a
		// whole-array copy followed by a second full sweep.
		c.bfsNbr = make([]int32, len(c.nbr))
		for u := 0; u < n; u++ {
			row := c.bfsNbr[c.rowStart[u]:c.rowStart[u+1]]
			copy(row, c.nbr[c.rowStart[u]:c.rowStart[u+1]])
			slices.Sort(row)
		}
	}

	c.minW, c.maxW = math.Inf(1), math.Inf(-1)
	ok := true
	for _, w := range c.weight {
		if math.IsNaN(w) {
			ok = false
			break
		}
		if w < c.minW {
			c.minW = w
		}
		if w > c.maxW {
			c.maxW = w
		}
	}
	if len(c.weight) == 0 {
		c.minW, c.maxW = 0, 0
	}
	// The last clause guards subnormal maxW: when maxW/bucketSpan
	// underflows to 0 the bucket index nd/delta is +Inf and the int
	// conversion produces garbage, so such snapshots must take the heap
	// kernel like any other unbinnable weight distribution.
	c.bucketOK = ok && c.minW >= 0 && c.maxW > 0 && !math.IsInf(c.maxW, 1) &&
		c.maxW/bucketSpan > 0
	return c
}

// NumNodes returns the snapshot's node count.
func (c *CSR) NumNodes() int { return c.n }

// NumEdges returns the snapshot's edge count.
func (c *CSR) NumEdges() int { return c.m }

// Degree returns the number of half-edges of u in the snapshot.
func (c *CSR) Degree(u int) int { return int(c.rowStart[u+1] - c.rowStart[u]) }

// Neighbors calls fn for each half-edge of u with the neighbour id, edge
// index, and edge weight, in the same insertion order as Graph.Neighbors.
func (c *CSR) Neighbors(u int, fn func(v, edgeID int, w float64)) {
	for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
		fn(int(c.nbr[j]), int(c.edgeID[j]), c.weight[j])
	}
}

// Dijkstra computes single-source shortest paths by edge weight from src
// into ws.Dist (Inf if unreachable), ws.Parent and ws.ParentEdge (-1 for
// src/unreachable), resolving ties by the smallest-id parent contract
// documented on CSR. It allocates nothing once ws has warmed up.
//
// When the snapshot's weights are finite and non-negative the kernel is
// a bucketed (delta-stepping style) monotone priority queue — the
// routing fan-out's uniform-ish Euclidean weights settle in O(m + B)
// with no per-relaxation log factor; otherwise it falls back to
// DijkstraHeap, which preserves the historical lazy panic on reaching a
// negative edge.
//
// On snapshots of at least dijkstraParallelMinNodes nodes the bucketed
// kernel additionally settles large bucket windows in parallel across
// GOMAXPROCS workers (see DijkstraParallel); results are bit-identical
// either way, but the fan-out machinery allocates a little per call, so
// small graphs keep the allocation-free serial path.
func (c *CSR) Dijkstra(ws *Workspace, src int) {
	if !c.bucketOK {
		c.DijkstraHeap(ws, src)
		return
	}
	workers := 1
	if c.n >= dijkstraParallelMinNodes {
		workers = par.Workers(0, c.n)
	}
	if workers > 1 {
		c.dijkstraBucketParallel(ws, src, workers, dijkstraParMinFrontier)
		return
	}
	c.dijkstraBucket(ws, src)
}

// DijkstraParallel is Dijkstra with an explicit worker count for the
// bucketed kernel's window settling (workers <= 0 means GOMAXPROCS),
// engaged regardless of graph size. Each bucket window's frontier is
// sharded across workers, relaxations are recorded in per-worker
// buffers, and the buffers are merged serially in shard order under the
// documented smallest-id/smallest-edge-id tie-break — so dist, parent,
// and parentEdge are bit-identical to the serial bucketed kernel and to
// DijkstraHeap at any worker count. Snapshots whose weights disqualify
// bucketing fall back to the heap kernel, which is serial.
func (c *CSR) DijkstraParallel(ws *Workspace, src, workers int) {
	if !c.bucketOK {
		c.DijkstraHeap(ws, src)
		return
	}
	if workers <= 0 {
		workers = par.Workers(0, c.n)
	}
	if workers > 1 {
		c.dijkstraBucketParallel(ws, src, workers, dijkstraParMinFrontier)
		return
	}
	c.dijkstraBucket(ws, src)
}

// DijkstraHeap is the reference shortest-path kernel: a lazy binary heap
// over ws-owned parallel arrays. It produces bit-identical results to
// the bucketed kernel behind Dijkstra and is kept exported for parity
// tests and for snapshots whose weights disqualify bucketing. Negative
// edge weights panic when reached, matching Graph.Dijkstra.
func (c *CSR) DijkstraHeap(ws *Workspace, src int) {
	ws.Reserve(c.n)
	dist := ws.Dist[:c.n]
	parent := ws.Parent[:c.n]
	parentEdge := ws.ParentEdge[:c.n]
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
		parentEdge[i] = -1
	}
	if c.n == 0 {
		return
	}
	dist[src] = 0
	hn := ws.heapNode[:0]
	hd := ws.heapDist[:0]
	hn, hd = heapPush(hn, hd, int32(src), 0)
	for len(hn) > 0 {
		u, du := hn[0], hd[0]
		hn, hd = heapPop(hn, hd)
		if du > dist[u] {
			continue // stale lazy-heap entry
		}
		for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
			w := c.weight[j]
			if w < 0 {
				panic("graph: Dijkstra requires non-negative edge weights")
			}
			v := c.nbr[j]
			if nd := du + w; nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				parentEdge[v] = c.edgeID[j]
				hn, hd = heapPush(hn, hd, v, nd)
			} else if nd == dist[v] && betterParent(u, c.edgeID[j], parent[v], parentEdge[v]) {
				parent[v] = u
				parentEdge[v] = c.edgeID[j]
			}
		}
	}
	ws.heapNode, ws.heapDist = hn, hd
}

// bucketSpan is the number of delta-width buckets spanning [0, maxW]:
// the bucket width is maxW/bucketSpan, so one relaxation can jump at
// most bucketSpan+1 buckets ahead and a circular array of
// nBuckets = bucketSpan+2 slots always separates live windows.
const (
	bucketSpan = 64
	nBuckets   = bucketSpan + 2
)

// dijkstraBucket is the bucketed monotone-priority-queue kernel behind
// Dijkstra. Tentative distances are binned into delta-width buckets
// processed in increasing order. Buckets are intrusive doubly-linked
// lists over ws-owned arrays, so each node holds at most one live entry:
// a distance improvement moves the node to its new bucket (a decrease-key)
// rather than enqueueing a stale duplicate, and re-relaxation within the
// current window re-inserts an already-dequeued node. The structure is
// therefore bounded by n and allocates nothing after ws.Reserve. Only
// applicable when c.bucketOK.
func (c *CSR) dijkstraBucket(ws *Workspace, src int) {
	ws.Reserve(c.n)
	dist := ws.Dist[:c.n]
	parent := ws.Parent[:c.n]
	parentEdge := ws.ParentEdge[:c.n]
	bNext := ws.bktNext[:c.n]
	bPrev := ws.bktPrev[:c.n]
	bOf := ws.bktOf[:c.n]
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
		parentEdge[i] = -1
		bOf[i] = -1
	}
	if c.n == 0 {
		return
	}
	head := &ws.bktHead
	for i := range head {
		head[i] = -1
	}
	delta := c.maxW / bucketSpan
	dist[src] = 0
	bOf[src] = 0
	bPrev[src] = -1
	bNext[src] = -1
	head[0] = int32(src)
	live := 1
	for k := 0; live > 0; k++ {
		s := k % nBuckets
		for head[s] >= 0 {
			u := head[s]
			head[s] = bNext[u]
			if bNext[u] >= 0 {
				bPrev[bNext[u]] = -1
			}
			bOf[u] = -1
			live--
			du := dist[u]
			for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
				v := c.nbr[j]
				if nd := du + c.weight[j]; nd < dist[v] {
					dist[v] = nd
					parent[v] = u
					parentEdge[v] = c.edgeID[j]
					t := int32(int(nd/delta) % nBuckets)
					if bOf[v] == t {
						continue // queued in the right bucket already
					}
					if bOf[v] >= 0 { // decrease-key: unlink from old bucket
						if bPrev[v] >= 0 {
							bNext[bPrev[v]] = bNext[v]
						} else {
							head[bOf[v]] = bNext[v]
						}
						if bNext[v] >= 0 {
							bPrev[bNext[v]] = bPrev[v]
						}
					} else {
						live++
					}
					bOf[v] = t
					bPrev[v] = -1
					bNext[v] = head[t]
					if head[t] >= 0 {
						bPrev[head[t]] = v
					}
					head[t] = v
				} else if nd == dist[v] && betterParent(u, c.edgeID[j], parent[v], parentEdge[v]) {
					parent[v] = u
					parentEdge[v] = c.edgeID[j]
				}
			}
		}
	}
}

// betterParent applies the smallest-id tie-break: candidate (u, e)
// replaces the current (p, pe) when it is lexicographically smaller.
func betterParent(u, e, p, pe int32) bool {
	return u < p || (u == p && e < pe)
}

// Parallel bucketed Dijkstra tuning. Bucket windows are settled in
// parallel when the drained frontier holds at least
// dijkstraParMinFrontier nodes — below that the fan-out overhead
// outweighs the window's relaxation work and the window runs serially.
// Frontiers are sharded into dijkstraShardSpan-node chunks claimed
// dynamically by the workers. Dijkstra auto-engages the parallel path
// at dijkstraParallelMinNodes nodes (the same threshold as the parallel
// BFS; DijkstraParallel overrides).
const (
	dijkstraParallelMinNodes = bfsParallelMinNodes
	dijkstraShardSpan        = 1024
	dijkstraParMinFrontier   = 4096
)

// bucketState bundles the bucketed kernel's queue bookkeeping so the
// parallel kernel's merge phase and its serial small-window path share
// one relaxation routine. All fields alias Workspace storage.
type bucketState struct {
	dist               []float64
	parent, parentEdge []int32
	bNext, bPrev, bOf  []int32
	head               *[nBuckets]int32
	delta              float64
	live               int
}

// relax applies one candidate edge (u -> v via half-edge j of weight
// sum nd): a strict improvement updates the distance and moves v to its
// new bucket (decrease-key), an equal distance applies the
// smallest-id/smallest-edge-id parent tie-break. The end state after a
// set of relaxations does not depend on their order — improvements are
// strict and the tie-break is a total order — which is what lets the
// parallel kernel merge per-worker buffers without re-sorting.
func (bs *bucketState) relax(u, v, e int32, nd float64) {
	if nd < bs.dist[v] {
		bs.dist[v] = nd
		bs.parent[v] = u
		bs.parentEdge[v] = e
		t := int32(int(nd/bs.delta) % nBuckets)
		if bs.bOf[v] == t {
			return // queued in the right bucket already
		}
		if bs.bOf[v] >= 0 { // decrease-key: unlink from old bucket
			if bs.bPrev[v] >= 0 {
				bs.bNext[bs.bPrev[v]] = bs.bNext[v]
			} else {
				bs.head[bs.bOf[v]] = bs.bNext[v]
			}
			if bs.bNext[v] >= 0 {
				bs.bPrev[bs.bNext[v]] = bs.bPrev[v]
			}
		} else {
			bs.live++
		}
		bs.bOf[v] = t
		bs.bPrev[v] = -1
		bs.bNext[v] = bs.head[t]
		if bs.head[t] >= 0 {
			bs.bPrev[bs.head[t]] = v
		}
		bs.head[t] = v
	} else if nd == bs.dist[v] && betterParent(u, e, bs.parent[v], bs.parentEdge[v]) {
		bs.parent[v] = u
		bs.parentEdge[v] = e
	}
}

// dijkstraBucketParallel is the bucket-level parallel variant of
// dijkstraBucket. Each non-empty window of the current bucket is
// drained into a flat frontier and settled in two phases:
//
//  1. Scan (parallel): the frontier is sharded into dijkstraShardSpan
//     chunks claimed dynamically via par.ForEachWorkerErr. Workers scan
//     their nodes' rows against the pre-window dist/parent arrays —
//     which no one writes during the phase, so the scan is race-free —
//     and append surviving candidates (u, half-edge, tentative dist) to
//     per-worker relaxation buffers, recording each shard's buffer
//     segment.
//  2. Merge (serial): segments are applied in shard order through
//     bucketState.relax. The filter in phase 1 only drops candidates
//     that can never win (nd above the node's current dist, or an
//     equal-dist parent no better than the current one), and relax
//     re-checks every survivor against the live state, so the final
//     dist/parent/parentEdge fixed point — hence every subsequent
//     bucket decision — is identical to the serial kernel's at any
//     worker count and any shard-to-worker assignment.
//
// Windows smaller than minFrontier (dijkstraParMinFrontier from the
// exported entry points; tests pass 1 to force every window through the
// scan/merge machinery) skip the fan-out and settle serially through
// the same relax routine.
func (c *CSR) dijkstraBucketParallel(ws *Workspace, src, workers, minFrontier int) {
	ws.Reserve(c.n)
	ws.reserveRelax(workers)
	bs := &bucketState{
		dist:       ws.Dist[:c.n],
		parent:     ws.Parent[:c.n],
		parentEdge: ws.ParentEdge[:c.n],
		bNext:      ws.bktNext[:c.n],
		bPrev:      ws.bktPrev[:c.n],
		bOf:        ws.bktOf[:c.n],
		head:       &ws.bktHead,
		delta:      c.maxW / bucketSpan,
	}
	for i := range bs.dist {
		bs.dist[i] = Inf
		bs.parent[i] = -1
		bs.parentEdge[i] = -1
		bs.bOf[i] = -1
	}
	if c.n == 0 {
		return
	}
	for i := range bs.head {
		bs.head[i] = -1
	}
	bs.dist[src] = 0
	bs.bOf[src] = 0
	bs.bPrev[src] = -1
	bs.bNext[src] = -1
	bs.head[0] = int32(src)
	bs.live = 1
	frontier := ws.queue[:0]
	for k := 0; bs.live > 0; k++ {
		s := k % nBuckets
		for bs.head[s] >= 0 {
			// Drain the window. Nodes relaxed to a better distance
			// during the settle re-enter a bucket (possibly this one)
			// and are drained again on the next pass.
			frontier = frontier[:0]
			for u := bs.head[s]; u >= 0; u = bs.bNext[u] {
				frontier = append(frontier, u)
				bs.bOf[u] = -1
			}
			bs.head[s] = -1
			bs.live -= len(frontier)
			if len(frontier) < minFrontier {
				for _, u := range frontier {
					du := bs.dist[u]
					for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
						bs.relax(u, c.nbr[j], c.edgeID[j], du+c.weight[j])
					}
				}
				continue
			}
			c.settleWindowParallel(ws, bs, frontier, workers)
		}
	}
	ws.queue = frontier
}

// settleWindowParallel runs the scan/merge phases of one large bucket
// window (see dijkstraBucketParallel).
func (c *CSR) settleWindowParallel(ws *Workspace, bs *bucketState, frontier []int32, workers int) {
	shards := (len(frontier) + dijkstraShardSpan - 1) / dijkstraShardSpan
	ws.reserveRelaxShards(shards)
	for w := range ws.relax[:workers] {
		b := &ws.relax[w]
		b.u = b.u[:0]
		b.j = b.j[:0]
		b.d = b.d[:0]
	}
	dist, parent, parentEdge := bs.dist, bs.parent, bs.parentEdge
	par.ForEachWorkerErr(workers, shards, func(w, sh int) error {
		lo := sh * dijkstraShardSpan
		hi := lo + dijkstraShardSpan
		if hi > len(frontier) {
			hi = len(frontier)
		}
		b := &ws.relax[w]
		ws.relaxShardW[sh] = int32(w)
		ws.relaxShardLo[sh] = int32(len(b.u))
		for _, u := range frontier[lo:hi] {
			du := dist[u]
			for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
				v := c.nbr[j]
				nd := du + c.weight[j]
				if nd < dist[v] || (nd == dist[v] && betterParent(u, c.edgeID[j], parent[v], parentEdge[v])) {
					b.u = append(b.u, u)
					b.j = append(b.j, j)
					b.d = append(b.d, nd)
				}
			}
		}
		ws.relaxShardHi[sh] = int32(len(b.u))
		return nil
	})
	for sh := 0; sh < shards; sh++ {
		b := &ws.relax[ws.relaxShardW[sh]]
		for i := ws.relaxShardLo[sh]; i < ws.relaxShardHi[sh]; i++ {
			j := b.j[i]
			bs.relax(b.u[i], c.nbr[j], c.edgeID[j], b.d[i])
		}
	}
}

// IntraWorkers clamps a per-traversal inner worker width for this
// snapshot: below the parallel auto-engagement threshold (shared by BFS
// and Dijkstra) one traversal is too small for the fan-out overhead to
// pay, so callers composing an outer per-source fan-out with
// intra-traversal parallelism (internal/routing, internal/metricreg)
// get 1 back and stay on the allocation-free serial kernels.
func (c *CSR) IntraWorkers(inner int) int {
	if inner < 1 || c.n < bfsParallelMinNodes {
		return 1
	}
	return inner
}

// Direction-optimizing BFS switching thresholds (Beamer et al.): switch
// top-down -> bottom-up when the frontier's half-edges exceed the
// unexplored half-edges / bfsAlpha, and bottom-up -> top-down when the
// frontier shrinks below n / bfsBeta nodes.
const (
	bfsAlpha = 14
	bfsBeta  = 24
)

// Parallel bottom-up BFS tuning. Levels shard the node range into
// bfsShardSpan-node chunks — a multiple of 64, so every shard owns a
// disjoint range of next-frontier bitset words and workers never touch
// the same word. BFS auto-engages the parallel path at
// bfsParallelMinNodes nodes; below that the fan-out overhead outweighs a
// dense level's work and the serial path is kept (BFSParallel overrides).
const (
	bfsShardSpan        = 4096
	bfsParallelMinNodes = 1 << 18
)

// BFS computes hop distances from src into ws.Hop (-1 if unreachable) and
// BFS parents into ws.Parent (-1 for src/unreachable; otherwise the
// smallest-id neighbour one hop closer, per the CSR tie-break contract).
// Allocation-free once ws has warmed up.
//
// The kernel is direction-optimizing: levels run top-down over a compact
// queue until the frontier grows dense, then bottom-up over the dense
// bitset frontier in ws (each unvisited node scans its own sorted row and
// claims its first in-frontier neighbour), switching back when the
// frontier thins. On low-diameter power-law graphs the bottom-up levels
// examine a small fraction of the edges a top-down sweep would.
//
// On snapshots of at least bfsParallelMinNodes nodes the bottom-up levels
// additionally run parallel across GOMAXPROCS workers (see BFSParallel);
// results are bit-identical either way, but the parallel fan-out
// machinery allocates a little per call, so small graphs keep the
// allocation-free serial path.
func (c *CSR) BFS(ws *Workspace, src int) {
	workers := 1
	if c.n >= bfsParallelMinNodes {
		workers = par.Workers(0, c.n)
	}
	c.bfs(ws, src, bfsAlpha, bfsBeta, workers)
}

// BFSParallel is BFS with an explicit worker count for the bottom-up
// levels (workers <= 0 means GOMAXPROCS), engaged regardless of graph
// size. Each unvisited node independently scans its own sorted row and
// claims its smallest-id in-frontier neighbour, so node outcomes do not
// depend on scheduling and the result is bit-identical to BFS with
// workers == 1. Top-down levels stay serial — they are a small fraction
// of traversal work on the graphs where parallelism pays.
func (c *CSR) BFSParallel(ws *Workspace, src, workers int) {
	if workers <= 0 {
		workers = par.Workers(0, c.n)
	}
	c.bfs(ws, src, bfsAlpha, bfsBeta, workers)
}

// BFSTopDown is the reference BFS kernel: plain level-synchronous
// top-down traversal with no direction switching. It produces
// bit-identical results to BFS and is kept exported for parity tests and
// benchmarks.
func (c *CSR) BFSTopDown(ws *Workspace, src int) {
	c.bfs(ws, src, 0, 0, 1)
}

// bfs is the shared level-synchronous traversal; alpha <= 0 disables
// direction switching (pure top-down), workers > 1 parallelizes the
// bottom-up levels. On reordered snapshots the traversal runs over the
// permuted mirror in internal id space and scatters Hop/Parent back to
// original ids at the end; parent values are stored as original ids
// throughout, so tie-breaks compare the same numbers as the unreordered
// kernel and the outputs are bit-identical.
func (c *CSR) bfs(ws *Workspace, src int, alpha, beta, workers int) {
	ws.Reserve(c.n)
	rowStart, nbrs := c.rowStart, c.bfsNbr
	hop := ws.Hop[:c.n]
	parent := ws.Parent[:c.n]
	permuted := c.perm != nil
	if permuted {
		rowStart, nbrs = c.permRowStart, c.permNbr
		ws.reservePerm(c.n)
		hop = ws.permHop[:c.n]
		parent = ws.permParent[:c.n]
	}
	for i := range hop {
		hop[i] = -1
		parent[i] = -1
	}
	ws.BFSBottomUpLevels = 0
	if c.n == 0 {
		return
	}
	isrc := src
	if permuted {
		isrc = int(c.perm[src])
	}
	hop[isrc] = 0
	queue := ws.queue[:0]
	queue = append(queue, int32(isrc))
	lo, hi := 0, 1
	nf := 1                                      // nodes in the current frontier
	mf := int(rowStart[isrc+1] - rowStart[isrc]) // half-edges out of the current frontier
	mu := len(nbrs) - mf                         // half-edges out of still-unvisited nodes
	bottomUp := false
	words := (c.n + 63) / 64
	front := ws.front[:words]
	next := ws.next[:words]
	for level := int32(0); nf > 0; level++ {
		if alpha > 0 {
			if !bottomUp && mf*alpha > mu {
				// Densify: materialize the queue level as a bitset.
				for i := range front {
					front[i] = 0
				}
				for _, u := range queue[lo:hi] {
					front[u>>6] |= 1 << (uint(u) & 63)
				}
				bottomUp = true
			} else if bottomUp && nf*beta < c.n {
				// Sparsify: rebuild the queue from the bitset, ascending.
				queue = queue[:0]
				for wi, w := range front {
					for w != 0 {
						queue = append(queue, int32(wi<<6+bits.TrailingZeros64(w)))
						w &= w - 1
					}
				}
				lo, hi = 0, len(queue)
				bottomUp = false
			}
		}
		nfNext, mfNext := 0, 0
		if bottomUp {
			ws.BFSBottomUpLevels++
			for i := range next {
				next[i] = 0
			}
			if workers > 1 {
				nfNext, mfNext = c.bottomUpParallel(ws, rowStart, nbrs, hop, parent, front, next, level, workers)
			} else {
				snf, smf := c.bottomUpRange(rowStart, nbrs, hop, parent, front, next, level, 0, c.n)
				nfNext, mfNext = int(snf), int(smf)
			}
			front, next = next, front
		} else {
			for i := lo; i < hi; i++ {
				u := queue[i]
				pu := u
				if permuted {
					pu = c.inv[u]
				}
				for j := rowStart[u]; j < rowStart[u+1]; j++ {
					v := nbrs[j]
					if hop[v] < 0 {
						hop[v] = level + 1
						parent[v] = pu
						queue = append(queue, v)
						mfNext += int(rowStart[v+1] - rowStart[v])
					} else if hop[v] == level+1 && pu < parent[v] {
						parent[v] = pu
					}
				}
			}
			lo, hi = hi, len(queue)
			nfNext = hi - lo
		}
		nf, mf = nfNext, mfNext
		mu -= mf
	}
	ws.queue = queue
	if permuted {
		// Scatter internal-space hops/parents back to original ids.
		// Parents already hold original ids.
		outHop := ws.Hop[:c.n]
		outParent := ws.Parent[:c.n]
		for v, o := range c.inv {
			outHop[o] = hop[v]
			outParent[o] = parent[v]
		}
	}
}

// bottomUpRange runs one bottom-up level over nodes [vlo, vhi): every
// still-unvisited node scans its sorted row and claims its first (hence
// smallest-original-id) in-frontier neighbour. The outcome per node
// depends only on front and the row — never on other nodes of the level
// — which is what makes the sharded parallel variant bit-identical.
// Returns the nodes and out-half-edges added to the next frontier.
func (c *CSR) bottomUpRange(rowStart, nbrs []int32, hop, parent []int32, front, next []uint64, level int32, vlo, vhi int) (int32, int64) {
	permuted := c.perm != nil
	var nf int32
	var mf int64
	for v := vlo; v < vhi; v++ {
		if hop[v] >= 0 {
			continue
		}
		for j := rowStart[v]; j < rowStart[v+1]; j++ {
			u := nbrs[j]
			if front[u>>6]&(1<<(uint(u)&63)) != 0 {
				// Sorted row: the first in-frontier neighbour is
				// the smallest-id one, honouring the contract.
				hop[v] = level + 1
				if permuted {
					parent[v] = c.inv[u]
				} else {
					parent[v] = u
				}
				next[v>>6] |= 1 << (uint(v) & 63)
				nf++
				mf += int64(rowStart[v+1] - rowStart[v])
				break
			}
		}
	}
	return nf, mf
}

// bottomUpParallel fans one bottom-up level out over word-aligned
// bfsShardSpan-node shards. Shards write disjoint hop/parent entries and
// disjoint next-bitset words (the span is a multiple of 64) while front
// is read-only, so there are no write conflicts; per-shard frontier
// counters are summed in shard order, keeping the level's results and
// the direction-switch inputs bit-identical to the serial loop.
func (c *CSR) bottomUpParallel(ws *Workspace, rowStart, nbrs []int32, hop, parent []int32, front, next []uint64, level int32, workers int) (int, int) {
	shards := (c.n + bfsShardSpan - 1) / bfsShardSpan
	ws.reserveShards(shards)
	snf := ws.shardNF[:shards]
	smf := ws.shardMF[:shards]
	par.ForEachWorkerErr(workers, shards, func(_, s int) error {
		vlo := s * bfsShardSpan
		vhi := vlo + bfsShardSpan
		if vhi > c.n {
			vhi = c.n
		}
		snf[s], smf[s] = c.bottomUpRange(rowStart, nbrs, hop, parent, front, next, level, vlo, vhi)
		return nil
	})
	nf, mf := 0, 0
	for s := range snf {
		nf += int(snf[s])
		mf += int(smf[s])
	}
	return nf, mf
}

// Eccentricity returns the maximum finite hop distance from src.
func (c *CSR) Eccentricity(ws *Workspace, src int) int {
	c.BFS(ws, src)
	max := int32(0)
	for _, d := range ws.Hop[:c.n] {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// WeightedEccentricity returns the maximum finite weighted distance from
// src.
func (c *CSR) WeightedEccentricity(ws *Workspace, src int) float64 {
	c.Dijkstra(ws, src)
	max := 0.0
	for _, d := range ws.Dist[:c.n] {
		if d > max && d < Inf {
			max = d
		}
	}
	return max
}

// LargestComponentMasked returns the size of the largest connected
// component of the snapshot restricted to nodes with removed[u] == false.
// It is the kernel under the robustness failure/attack sweeps: instead of
// materializing a RemoveNodes copy per removal fraction, callers flip
// bits in one removed mask and re-measure. Visited bookkeeping uses ws
// epochs, so repeated calls do not re-clear an O(n) array.
func (c *CSR) LargestComponentMasked(ws *Workspace, removed []bool) int {
	ws.Reserve(c.n)
	epoch := ws.nextEpoch()
	visited := ws.visited
	best := 0
	for s := 0; s < c.n; s++ {
		if removed[s] || visited[s] == epoch {
			continue
		}
		visited[s] = epoch
		queue := ws.queue[:0]
		queue = append(queue, int32(s))
		size := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			size++
			for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
				v := c.nbr[j]
				if visited[v] != epoch && !removed[v] {
					visited[v] = epoch
					queue = append(queue, v)
				}
			}
		}
		ws.queue = queue
		if size > best {
			best = size
		}
	}
	return best
}

// LargestComponentMixedMasked returns the size of the largest connected
// component of the snapshot with nodes whose removedNode[u] is true and
// edges whose removedEdge[edgeID] is true both treated as absent — the
// combined-mask kernel under failure/repair timelines, which interleave
// node and edge outages in one schedule. Either mask may be shorter than
// its id space (the missing tail is present) or nil.
func (c *CSR) LargestComponentMixedMasked(ws *Workspace, removedNode, removedEdge []bool) int {
	ws.Reserve(c.n)
	epoch := ws.nextEpoch()
	visited := ws.visited
	best := 0
	for s := 0; s < c.n; s++ {
		if visited[s] == epoch || (s < len(removedNode) && removedNode[s]) {
			continue
		}
		visited[s] = epoch
		queue := ws.queue[:0]
		queue = append(queue, int32(s))
		size := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			size++
			for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
				if e := int(c.edgeID[j]); e < len(removedEdge) && removedEdge[e] {
					continue
				}
				v := c.nbr[j]
				if visited[v] != epoch && !(int(v) < len(removedNode) && removedNode[v]) {
					visited[v] = epoch
					queue = append(queue, v)
				}
			}
		}
		ws.queue = queue
		if size > best {
			best = size
		}
	}
	return best
}

// LargestComponentEdgeMasked returns the size of the largest connected
// component of the snapshot with edges whose removedEdge[edgeID] is true
// treated as absent (all nodes stay present). It is the edge-removal
// analogue of LargestComponentMasked, under edge-targeted robustness
// sweeps. A removedEdge slice shorter than the edge count treats the
// missing tail as present.
func (c *CSR) LargestComponentEdgeMasked(ws *Workspace, removedEdge []bool) int {
	ws.Reserve(c.n)
	epoch := ws.nextEpoch()
	visited := ws.visited
	best := 0
	for s := 0; s < c.n; s++ {
		if visited[s] == epoch {
			continue
		}
		visited[s] = epoch
		queue := ws.queue[:0]
		queue = append(queue, int32(s))
		size := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			size++
			for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
				if e := int(c.edgeID[j]); e < len(removedEdge) && removedEdge[e] {
					continue
				}
				v := c.nbr[j]
				if visited[v] != epoch {
					visited[v] = epoch
					queue = append(queue, v)
				}
			}
		}
		ws.queue = queue
		if size > best {
			best = size
		}
	}
	return best
}

// boundedIndex reports whether u is a valid node id in the adjacency
// structure. HasEdge and FindEdge share it so both are safe on
// out-of-range ids.
func (g *Graph) boundedIndex(u int) bool { return u >= 0 && u < len(g.adj) }

// lazy binary heap over parallel (node, dist) arrays — no interface
// boxing, no container/heap, so Dijkstra stays allocation-free.

func heapPush(hn []int32, hd []float64, node int32, d float64) ([]int32, []float64) {
	hn = append(hn, node)
	hd = append(hd, d)
	i := len(hn) - 1
	for i > 0 {
		p := (i - 1) / 2
		if hd[p] <= hd[i] {
			break
		}
		hn[p], hn[i] = hn[i], hn[p]
		hd[p], hd[i] = hd[i], hd[p]
		i = p
	}
	return hn, hd
}

func heapPop(hn []int32, hd []float64) ([]int32, []float64) {
	last := len(hn) - 1
	hn[0], hd[0] = hn[last], hd[last]
	hn, hd = hn[:last], hd[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(hn) && hd[l] < hd[small] {
			small = l
		}
		if r < len(hn) && hd[r] < hd[small] {
			small = r
		}
		if small == i {
			break
		}
		hn[i], hn[small] = hn[small], hn[i]
		hd[i], hd[small] = hd[small], hd[i]
		i = small
	}
	return hn, hd
}
