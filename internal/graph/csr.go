package graph

// CSR is an immutable compressed-sparse-row snapshot of a Graph: every
// half-edge of node u lives in the contiguous range
// [rowStart[u], rowStart[u+1]), with the neighbour id, the originating
// edge index, and the edge weight stored in parallel flat arrays. The
// layout is cache-friendly (one pointer dereference per traversal instead
// of one per adjacency list) and safe for concurrent use: all traversal
// kernels take a caller-owned Workspace and never mutate the CSR.
//
// Freeze a graph once, then fan any number of Dijkstra/BFS/eccentricity
// calls out across goroutines, each with its own pooled Workspace. This is
// the compute substrate under internal/routing, internal/metrics and
// internal/robust.
type CSR struct {
	n        int
	m        int
	rowStart []int32
	nbr      []int32
	edgeID   []int32
	weight   []float64
}

// Freeze builds a CSR snapshot of g. Later mutations of g (new nodes,
// edges, or weight updates) are not reflected in the snapshot.
func (g *Graph) Freeze() *CSR {
	n := len(g.nodes)
	c := &CSR{
		n:        n,
		m:        len(g.edges),
		rowStart: make([]int32, n+1),
		nbr:      make([]int32, 2*len(g.edges)),
		edgeID:   make([]int32, 2*len(g.edges)),
		weight:   make([]float64, 2*len(g.edges)),
	}
	pos := int32(0)
	for u := 0; u < n; u++ {
		c.rowStart[u] = pos
		for _, h := range g.adj[u] {
			c.nbr[pos] = int32(h.to)
			c.edgeID[pos] = int32(h.edge)
			c.weight[pos] = g.edges[h.edge].Weight
			pos++
		}
	}
	c.rowStart[n] = pos
	return c
}

// NumNodes returns the snapshot's node count.
func (c *CSR) NumNodes() int { return c.n }

// NumEdges returns the snapshot's edge count.
func (c *CSR) NumEdges() int { return c.m }

// Degree returns the number of half-edges of u in the snapshot.
func (c *CSR) Degree(u int) int { return int(c.rowStart[u+1] - c.rowStart[u]) }

// Neighbors calls fn for each half-edge of u with the neighbour id, edge
// index, and edge weight, in the same insertion order as Graph.Neighbors.
func (c *CSR) Neighbors(u int, fn func(v, edgeID int, w float64)) {
	for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
		fn(int(c.nbr[j]), int(c.edgeID[j]), c.weight[j])
	}
}

// Dijkstra computes single-source shortest paths by edge weight from src
// into ws.Dist (Inf if unreachable), ws.Parent and ws.ParentEdge (-1 for
// src/unreachable). It allocates nothing once ws has warmed up; the heap
// is a lazy binary heap over ws-owned parallel arrays. Negative edge
// weights panic, matching Graph.Dijkstra.
func (c *CSR) Dijkstra(ws *Workspace, src int) {
	ws.Reserve(c.n)
	dist := ws.Dist[:c.n]
	parent := ws.Parent[:c.n]
	parentEdge := ws.ParentEdge[:c.n]
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
		parentEdge[i] = -1
	}
	if c.n == 0 {
		return
	}
	dist[src] = 0
	hn := ws.heapNode[:0]
	hd := ws.heapDist[:0]
	hn, hd = heapPush(hn, hd, int32(src), 0)
	for len(hn) > 0 {
		u, du := hn[0], hd[0]
		hn, hd = heapPop(hn, hd)
		if du > dist[u] {
			continue // stale lazy-heap entry
		}
		for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
			w := c.weight[j]
			if w < 0 {
				panic("graph: Dijkstra requires non-negative edge weights")
			}
			v := c.nbr[j]
			if nd := du + w; nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				parentEdge[v] = c.edgeID[j]
				hn, hd = heapPush(hn, hd, v, nd)
			}
		}
	}
	ws.heapNode, ws.heapDist = hn, hd
}

// BFS computes hop distances from src into ws.Hop (-1 if unreachable) and
// BFS parents into ws.Parent (-1 for src/unreachable). Allocation-free
// once ws has warmed up.
func (c *CSR) BFS(ws *Workspace, src int) {
	ws.Reserve(c.n)
	hop := ws.Hop[:c.n]
	parent := ws.Parent[:c.n]
	for i := range hop {
		hop[i] = -1
		parent[i] = -1
	}
	if c.n == 0 {
		return
	}
	queue := ws.queue[:0]
	hop[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
			v := c.nbr[j]
			if hop[v] == -1 {
				hop[v] = hop[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	ws.queue = queue
}

// Eccentricity returns the maximum finite hop distance from src.
func (c *CSR) Eccentricity(ws *Workspace, src int) int {
	c.BFS(ws, src)
	max := int32(0)
	for _, d := range ws.Hop[:c.n] {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// WeightedEccentricity returns the maximum finite weighted distance from
// src.
func (c *CSR) WeightedEccentricity(ws *Workspace, src int) float64 {
	c.Dijkstra(ws, src)
	max := 0.0
	for _, d := range ws.Dist[:c.n] {
		if d > max && d < Inf {
			max = d
		}
	}
	return max
}

// LargestComponentMasked returns the size of the largest connected
// component of the snapshot restricted to nodes with removed[u] == false.
// It is the kernel under the robustness failure/attack sweeps: instead of
// materializing a RemoveNodes copy per removal fraction, callers flip
// bits in one removed mask and re-measure. Visited bookkeeping uses ws
// epochs, so repeated calls do not re-clear an O(n) array.
func (c *CSR) LargestComponentMasked(ws *Workspace, removed []bool) int {
	ws.Reserve(c.n)
	epoch := ws.nextEpoch()
	visited := ws.visited
	best := 0
	for s := 0; s < c.n; s++ {
		if removed[s] || visited[s] == epoch {
			continue
		}
		visited[s] = epoch
		queue := ws.queue[:0]
		queue = append(queue, int32(s))
		size := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			size++
			for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
				v := c.nbr[j]
				if visited[v] != epoch && !removed[v] {
					visited[v] = epoch
					queue = append(queue, v)
				}
			}
		}
		ws.queue = queue
		if size > best {
			best = size
		}
	}
	return best
}

// LargestComponentEdgeMasked returns the size of the largest connected
// component of the snapshot with edges whose removedEdge[edgeID] is true
// treated as absent (all nodes stay present). It is the edge-removal
// analogue of LargestComponentMasked, under edge-targeted robustness
// sweeps. A removedEdge slice shorter than the edge count treats the
// missing tail as present.
func (c *CSR) LargestComponentEdgeMasked(ws *Workspace, removedEdge []bool) int {
	ws.Reserve(c.n)
	epoch := ws.nextEpoch()
	visited := ws.visited
	best := 0
	for s := 0; s < c.n; s++ {
		if visited[s] == epoch {
			continue
		}
		visited[s] = epoch
		queue := ws.queue[:0]
		queue = append(queue, int32(s))
		size := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			size++
			for j := c.rowStart[u]; j < c.rowStart[u+1]; j++ {
				if e := int(c.edgeID[j]); e < len(removedEdge) && removedEdge[e] {
					continue
				}
				v := c.nbr[j]
				if visited[v] != epoch {
					visited[v] = epoch
					queue = append(queue, v)
				}
			}
		}
		ws.queue = queue
		if size > best {
			best = size
		}
	}
	return best
}

// boundedIndex reports whether u is a valid node id in the adjacency
// structure. HasEdge and FindEdge share it so both are safe on
// out-of-range ids.
func (g *Graph) boundedIndex(u int) bool { return u >= 0 && u < len(g.adj) }

// lazy binary heap over parallel (node, dist) arrays — no interface
// boxing, no container/heap, so Dijkstra stays allocation-free.

func heapPush(hn []int32, hd []float64, node int32, d float64) ([]int32, []float64) {
	hn = append(hn, node)
	hd = append(hd, d)
	i := len(hn) - 1
	for i > 0 {
		p := (i - 1) / 2
		if hd[p] <= hd[i] {
			break
		}
		hn[p], hn[i] = hn[i], hn[p]
		hd[p], hd[i] = hd[i], hd[p]
		i = p
	}
	return hn, hd
}

func heapPop(hn []int32, hd []float64) ([]int32, []float64) {
	last := len(hn) - 1
	hn[0], hd[0] = hn[last], hd[last]
	hn, hd = hn[:last], hd[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(hn) && hd[l] < hd[small] {
			small = l
		}
		if r < len(hn) && hd[r] < hd[small] {
			small = r
		}
		if small == i {
			break
		}
		hn[i], hn[small] = hn[small], hn[i]
		hd[i], hd[small] = hd[small], hd[i]
		i = small
	}
	return hn, hd
}
