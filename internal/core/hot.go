package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/errs"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rng"
)

// GrowthState is the read-only view of the network an objective term or
// constraint sees when a new node arrives.
type GrowthState struct {
	Graph *graph.Graph
	// Hops holds tree hop distance to the root for every existing node.
	Hops []float64
	// Root is the root's location.
	Root geom.Point
	// Arrival is the index the new node will receive.
	Arrival int
}

// ObjectiveTerm contributes one weighted component of the attachment cost
// for connecting the arriving point to candidate node j. Lower is better.
type ObjectiveTerm interface {
	// Cost evaluates the term for attaching `p` to candidate `j`.
	Cost(s *GrowthState, p geom.Point, j int) float64
	// Name identifies the term in reports.
	Name() string
}

// Constraint filters attachment candidates; infeasible candidates are
// never selected.
type Constraint interface {
	// Feasible reports whether the arriving point may attach to j.
	Feasible(s *GrowthState, p geom.Point, j int) bool
	// Name identifies the constraint in reports.
	Name() string
}

// DistanceTerm is the last-mile cost: Weight * Euclidean distance.
// It models per-mile cable installation cost (the paper's §2.1 economic
// driver).
type DistanceTerm struct{ Weight float64 }

// Cost implements ObjectiveTerm.
func (t DistanceTerm) Cost(s *GrowthState, p geom.Point, j int) float64 {
	nj := s.Graph.Node(j)
	return t.Weight * p.Dist(geom.Point{X: nj.X, Y: nj.Y})
}

// Name implements ObjectiveTerm.
func (t DistanceTerm) Name() string { return "distance" }

// CentralityTerm is the performance cost: Weight * hop distance from the
// candidate to the root, penalizing attachment far from the network core
// (the paper's performance driver).
type CentralityTerm struct{ Weight float64 }

// Cost implements ObjectiveTerm.
func (t CentralityTerm) Cost(s *GrowthState, _ geom.Point, j int) float64 {
	return t.Weight * s.Hops[j]
}

// Name implements ObjectiveTerm.
func (t CentralityTerm) Name() string { return "centrality" }

// LoadTerm penalizes attaching to already-busy nodes: Weight * degree(j).
// It models congestion / router utilization cost and acts as a soft port
// constraint.
type LoadTerm struct{ Weight float64 }

// Cost implements ObjectiveTerm.
func (t LoadTerm) Cost(s *GrowthState, _ geom.Point, j int) float64 {
	return t.Weight * float64(s.Graph.Degree(j))
}

// Name implements ObjectiveTerm.
func (t LoadTerm) Name() string { return "load" }

// RootDistTerm penalizes candidates geographically far from the root,
// a geometric centrality alternative.
type RootDistTerm struct{ Weight float64 }

// Cost implements ObjectiveTerm.
func (t RootDistTerm) Cost(s *GrowthState, _ geom.Point, j int) float64 {
	nj := s.Graph.Node(j)
	return t.Weight * geom.Point{X: nj.X, Y: nj.Y}.Dist(s.Root)
}

// Name implements ObjectiveTerm.
func (t RootDistTerm) Name() string { return "root-dist" }

// MaxDegreeConstraint is the hard router port limit the paper's §2.1
// names as the canonical technology constraint.
type MaxDegreeConstraint struct{ Max int }

// Feasible implements Constraint.
func (c MaxDegreeConstraint) Feasible(s *GrowthState, _ geom.Point, j int) bool {
	return s.Graph.Degree(j) < c.Max
}

// Name implements Constraint.
func (c MaxDegreeConstraint) Name() string { return fmt.Sprintf("max-degree(%d)", c.Max) }

// MaxLengthConstraint forbids links longer than Max (models reach limits
// of the underlying Level-2 technology, §2.1/§2.4).
type MaxLengthConstraint struct{ Max float64 }

// Feasible implements Constraint.
func (c MaxLengthConstraint) Feasible(s *GrowthState, p geom.Point, j int) bool {
	nj := s.Graph.Node(j)
	return p.Dist(geom.Point{X: nj.X, Y: nj.Y}) <= c.Max
}

// Name implements Constraint.
func (c MaxLengthConstraint) Name() string { return fmt.Sprintf("max-length(%g)", c.Max) }

// HOTConfig parameterizes the generalized optimization-driven growth.
type HOTConfig struct {
	N           int
	Seed        int64
	Region      geom.Rect // zero value = unit square
	Terms       []ObjectiveTerm
	Constraints []Constraint
	// LinksPerArrival is how many (distinct, feasible) attachment targets
	// each arriving node connects to; 1 grows a tree, 2+ grows a
	// redundantly-connected graph. Arrivals connect to as many as exist.
	LinksPerArrival int
	// Arrivals optionally fixes the arrival locations (paper §2.1:
	// customers are not uniform — they concentrate in the big cities).
	// When non-nil it must hold at least N-1 points; arrival i uses
	// Arrivals[i-1] and Region is ignored for placement.
	Arrivals []geom.Point
	// Search selects the candidate-scan implementation; see GrowthSearch.
	// The grid index requires every term and constraint to be one of the
	// built-in types with non-negative weight (so regional cost lower
	// bounds exist); other configurations keep the exhaustive scan.
	// Either way the grown graph is bit-identical.
	Search GrowthSearch
}

// Validate reports a configuration error (wrapping errs.ErrBadParam), or
// nil.
func (c *HOTConfig) Validate() error {
	if c.N < 1 {
		return errs.BadParamf("core: HOT N = %d, need >= 1", c.N)
	}
	if len(c.Terms) == 0 {
		return errs.BadParamf("core: HOT needs at least one objective term")
	}
	if c.LinksPerArrival < 0 {
		return errs.BadParamf("core: LinksPerArrival = %d, need >= 0", c.LinksPerArrival)
	}
	if c.Arrivals != nil && len(c.Arrivals) < c.N-1 {
		return errs.BadParamf("core: Arrivals holds %d points, need >= N-1 = %d", len(c.Arrivals), c.N-1)
	}
	if c.Search > SearchGrid {
		return errs.BadParamf("core: unknown GrowthSearch %d", c.Search)
	}
	return nil
}

// searchPlan is the grid index's view of a term/constraint set: the
// summed weight multiplying candidate distance, the summed weight per
// bounded stat, the tightest length cap, and whether every component is
// one of the built-in types the index can lower-bound.
type searchPlan struct {
	ok     bool
	distW  float64
	statW  [numStat]float64
	track  [numStat]bool
	maxLen float64
}

// planHOT classifies a HOT term/constraint set for the grid index.
// Negative weights invert a term's monotonicity (regional minimums stop
// lower-bounding the cost contribution), so they disqualify the index.
func planHOT(terms []ObjectiveTerm, cons []Constraint) searchPlan {
	pl := searchPlan{ok: true, maxLen: math.Inf(1)}
	addStat := func(s int, w float64) bool {
		if w < 0 {
			return false
		}
		pl.statW[s] += w
		pl.track[s] = true
		return true
	}
	for _, t := range terms {
		ok := false
		switch tt := t.(type) {
		case DistanceTerm:
			if tt.Weight >= 0 {
				pl.distW += tt.Weight
				ok = true
			}
		case CentralityTerm:
			ok = addStat(statHops, tt.Weight)
		case LoadTerm:
			ok = addStat(statDeg, tt.Weight)
		case RootDistTerm:
			ok = addStat(statRootDist, tt.Weight)
		}
		if !ok {
			pl.ok = false
			return pl
		}
	}
	for _, c := range cons {
		switch cc := c.(type) {
		case MaxDegreeConstraint:
			// Checked per candidate by the shared feasibility closure.
		case MaxLengthConstraint:
			if cc.Max < pl.maxLen {
				pl.maxLen = cc.Max
			}
		default:
			pl.ok = false
			return pl
		}
	}
	return pl
}

// GrowHOT runs the generalized incremental optimization growth: each
// arriving node attaches to the LinksPerArrival feasible existing nodes
// with the lowest total objective cost (ties resolved toward the
// smallest candidate id; links are added in ascending (cost, id) order).
// With LinksPerArrival == 1 and Terms = {DistanceTerm{alpha},
// CentralityTerm{1}} this reduces exactly to the FKP model.
//
// If no candidate is feasible for an arrival, the constraint set is
// ignored for that arrival and the best unconstrained candidate is used;
// Stats.ConstraintViolations counts such arrivals. (A real ISP must
// connect the customer somehow — it deploys a bigger router.)
//
// The candidate scan is O(n) per arrival by reference; eligible
// configurations on SearchAuto/SearchGrid run the uniform-grid index
// instead (~O(log n) per arrival in practice), which is pinned
// bit-identical by the growth parity tests.
func GrowHOT(cfg HOTConfig) (*graph.Graph, *GrowthStats, error) {
	return GrowHOTContext(context.Background(), cfg)
}

// GrowHOTContext is GrowHOT with cancellation: the growth loop checks
// ctx at every arrival and returns an errs.ErrCanceled-wrapping error
// when the context is done.
func GrowHOTContext(ctx context.Context, cfg HOTConfig) (*graph.Graph, *GrowthStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	region := cfg.Region
	if region == (geom.Rect{}) {
		region = geom.UnitSquare
	}
	links := cfg.LinksPerArrival
	if links == 0 {
		links = 1
	}
	r := rng.New(cfg.Seed)
	g := graph.New(cfg.N)
	rootPt := region.Center()
	g.AddNode(graph.Node{Kind: graph.KindCore, X: rootPt.X, Y: rootPt.Y})

	st := &GrowthState{
		Graph: g,
		Hops:  make([]float64, 1, cfg.N),
		Root:  rootPt,
	}
	stats := &GrowthStats{TermNames: termNames(cfg.Terms)}

	plan := planHOT(cfg.Terms, cfg.Constraints)
	useGrid := false
	switch cfg.Search {
	case SearchGrid:
		useGrid = plan.ok
	case SearchExhaustive:
	default:
		useGrid = plan.ok && cfg.N >= gridMinNodes
	}
	var ix *growthIndex
	if useGrid {
		ix = newGrowthIndex(growthBound(region, cfg.Arrivals, rootPt), cfg.N, plan.track)
		vals := [numStat]float64{statRootDist: 0}
		ix.add(0, rootPt, &vals)
	}

	// Both search paths funnel every surviving candidate through the same
	// two closures (defined once, reading the per-arrival vars), so the
	// cost arithmetic compiles once and the selections are bit-identical.
	var p geom.Point
	best := candList{k: links}
	costOf := func(j int) float64 {
		cost := 0.0
		for _, t := range cfg.Terms {
			cost += t.Cost(st, p, j)
		}
		return cost
	}
	evalFeasible := func(j int) {
		for _, c := range cfg.Constraints {
			if !c.Feasible(st, p, j) {
				return
			}
		}
		best.consider(j, costOf(j))
	}
	evalAny := func(j int) { best.consider(j, costOf(j)) }
	evalFeasible32 := func(j int32) { evalFeasible(int(j)) }
	evalAny32 := func(j int32) { evalAny(int(j)) }
	noLen := math.Inf(1)

	for i := 1; i < cfg.N; i++ {
		if err := errs.Ctx(ctx); err != nil {
			return nil, nil, fmt.Errorf("core: HOT at arrival %d: %w", i, err)
		}
		if cfg.Arrivals != nil {
			p = cfg.Arrivals[i-1]
		} else {
			p = region.RandomPoint(r)
		}
		st.Arrival = i
		best.reset()
		if ix != nil {
			ix.search(p, plan.distW, &plan.statW, plan.maxLen, best.full, best.worstCost, evalFeasible32)
			if best.empty() {
				stats.ConstraintViolations++
				ix.search(p, plan.distW, &plan.statW, noLen, best.full, best.worstCost, evalAny32)
			}
		} else {
			for j := 0; j < i; j++ {
				evalFeasible(j)
			}
			if best.empty() {
				stats.ConstraintViolations++
				for j := 0; j < i; j++ {
					evalAny(j)
				}
			}
		}
		id := g.AddNode(graph.Node{Kind: graph.KindCustomer, X: p.X, Y: p.Y})
		minHops := 0.0
		for k, c := range best.c {
			nj := g.Node(c.j)
			w := p.Dist(geom.Point{X: nj.X, Y: nj.Y})
			g.AddEdge(graph.Edge{U: c.j, V: id, Weight: w})
			stats.TotalLinkLength += w
			h := st.Hops[c.j] + 1
			if k == 0 || h < minHops {
				minHops = h
			}
		}
		st.Hops = append(st.Hops, minHops)
		if ix != nil {
			vals := [numStat]float64{
				statHops:     minHops,
				statRootDist: p.Dist(rootPt),
				statDeg:      float64(g.Degree(id)),
			}
			ix.add(int32(id), p, &vals)
		}
	}
	return g, stats, nil
}

// GrowthStats reports aggregate facts about a GrowHOT run.
type GrowthStats struct {
	TermNames            []string
	TotalLinkLength      float64
	ConstraintViolations int
}

func termNames(terms []ObjectiveTerm) []string {
	out := make([]string, len(terms))
	for i, t := range terms {
		out[i] = t.Name()
	}
	return out
}
