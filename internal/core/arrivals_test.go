package core

import (
	"testing"

	"repro/internal/geom"
)

func TestGrowHOTFixedArrivals(t *testing.T) {
	// Three co-located clusters of arrivals: the growth should track them.
	var arrivals []geom.Point
	centers := []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.1}, {X: 0.5, Y: 0.9}}
	for i := 0; i < 99; i++ {
		c := centers[i%3]
		arrivals = append(arrivals, geom.Point{X: c.X + float64(i)*1e-4, Y: c.Y})
	}
	g, _, err := GrowHOT(HOTConfig{
		N:        100,
		Seed:     1,
		Terms:    []ObjectiveTerm{DistanceTerm{Weight: 100}, CentralityTerm{Weight: 1}},
		Arrivals: arrivals,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Every non-root node sits exactly at its prescribed arrival point.
	for i := 1; i < 100; i++ {
		nd := g.Node(i)
		if nd.X != arrivals[i-1].X || nd.Y != arrivals[i-1].Y {
			t.Fatalf("node %d not at prescribed arrival", i)
		}
	}
}

func TestGrowHOTArrivalsTooShort(t *testing.T) {
	_, _, err := GrowHOT(HOTConfig{
		N:        10,
		Terms:    []ObjectiveTerm{DistanceTerm{Weight: 1}},
		Arrivals: make([]geom.Point, 3),
	})
	if err == nil {
		t.Fatal("short arrivals slice should fail validation")
	}
}

func TestGrowHOTArrivalsDeterministicVsUniform(t *testing.T) {
	// With Arrivals given, the RNG is untouched for placement, so two
	// runs with different seeds but same arrivals and pure-distance
	// objective must agree.
	arrivals := make([]geom.Point, 49)
	for i := range arrivals {
		arrivals[i] = geom.Point{X: float64(i+1) / 51.0, Y: 0.3}
	}
	a, _, err := GrowHOT(HOTConfig{
		N: 50, Seed: 1, Arrivals: arrivals,
		Terms: []ObjectiveTerm{DistanceTerm{Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GrowHOT(HOTConfig{
		N: 50, Seed: 99, Arrivals: arrivals,
		Terms: []ObjectiveTerm{DistanceTerm{Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(i).U != b.Edge(i).U || a.Edge(i).V != b.Edge(i).V {
			t.Fatal("fixed arrivals should make growth seed-independent")
		}
	}
}
