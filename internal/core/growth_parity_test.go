package core

import (
	"errors"
	"testing"

	"repro/internal/errs"
	"repro/internal/geom"
	"repro/internal/graph"
)

// checkSameGraph pins two grown graphs bit-for-bit: node coordinates and
// kinds, and the full edge list in insertion order with exact float
// weights. This is the identity the grid index must preserve — same RNG
// stream, same trees, same tie-breaks.
func checkSameGraph(t *testing.T, label string, ref, got *graph.Graph) {
	t.Helper()
	if ref.NumNodes() != got.NumNodes() || ref.NumEdges() != got.NumEdges() {
		t.Fatalf("%s: shape %d nodes / %d edges, reference %d / %d",
			label, got.NumNodes(), got.NumEdges(), ref.NumNodes(), ref.NumEdges())
	}
	for i := 0; i < ref.NumNodes(); i++ {
		a, b := ref.Node(i), got.Node(i)
		if a.X != b.X || a.Y != b.Y || a.Kind != b.Kind {
			t.Fatalf("%s: node %d = (%v,%v), reference (%v,%v)", label, i, b.X, b.Y, a.X, a.Y)
		}
	}
	for i := 0; i < ref.NumEdges(); i++ {
		a, b := ref.Edge(i), got.Edge(i)
		if a.U != b.U || a.V != b.V || a.Weight != b.Weight {
			t.Fatalf("%s: edge %d = (%d,%d,%v), reference (%d,%d,%v)",
				label, i, b.U, b.V, b.Weight, a.U, a.V, a.Weight)
		}
	}
}

// TestFKPGridMatchesExhaustive pins the grid-index FKP growth
// bit-identical to the exhaustive scan for every centrality mode, with
// and without a binding MaxDegree cap, across seeds. N is far below the
// SearchAuto threshold, so the two Search values genuinely select the
// two implementations.
func TestFKPGridMatchesExhaustive(t *testing.T) {
	root := geom.Point{X: 0.9, Y: 0.1}
	for _, mode := range []CentralityMode{HopsToRoot, DistToRoot, AvgHops} {
		for _, maxDeg := range []int{0, 3} {
			for _, seed := range []int64{1, 2, 3} {
				cfg := FKPConfig{N: 220, Alpha: 8, Seed: seed, Centrality: mode, MaxDegree: maxDeg, RootAt: &root}
				cfg.Search = SearchExhaustive
				ref, err := FKP(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Search = SearchGrid
				got, err := FKP(cfg)
				if err != nil {
					t.Fatal(err)
				}
				label := mode.String()
				checkSameGraph(t, label, ref, got)
			}
		}
	}
	// The star regime (tiny alpha): centrality dominates distance, the
	// worst case for purely geometric pruning — the stale-min stat
	// bounds must keep the result identical.
	for _, alpha := range []float64{0.1, 0.5} {
		cfg := FKPConfig{N: 220, Alpha: alpha, Seed: 5}
		cfg.Search = SearchExhaustive
		ref, _ := FKP(cfg)
		cfg.Search = SearchGrid
		got, _ := FKP(cfg)
		checkSameGraph(t, "star-regime", ref, got)
	}
}

// TestFKPGridInfeasibleMatches pins the infeasible path: a MaxDegree so
// tight no candidate is ever feasible must produce the same
// errs.ErrInfeasible from both scan implementations.
func TestFKPGridInfeasibleMatches(t *testing.T) {
	cfg := FKPConfig{N: 5, Alpha: 1, Seed: 1, MaxDegree: 1}
	cfg.Search = SearchExhaustive
	_, errRef := FKP(cfg)
	cfg.Search = SearchGrid
	_, errGrid := FKP(cfg)
	if errRef == nil || errGrid == nil {
		t.Fatalf("expected infeasible errors, got %v / %v", errRef, errGrid)
	}
	if !errors.Is(errRef, errs.ErrInfeasible) || !errors.Is(errGrid, errs.ErrInfeasible) {
		t.Fatalf("errors not ErrInfeasible: %v / %v", errRef, errGrid)
	}
}

// TestGrowHOTGridMatchesExhaustive pins grid-index HOT growth
// bit-identical to the exhaustive scan across term mixes, multi-link
// arrivals, constraints, fixed arrival locations outside the region, and
// the constraint-violation fallback.
func TestGrowHOTGridMatchesExhaustive(t *testing.T) {
	cases := []struct {
		name string
		cfg  HOTConfig
	}{
		{"fkp-like", HOTConfig{
			N: 220, Seed: 1,
			Terms: []ObjectiveTerm{DistanceTerm{8}, CentralityTerm{1}},
		}},
		{"multilink", HOTConfig{
			N: 220, Seed: 2, LinksPerArrival: 3,
			Terms: []ObjectiveTerm{DistanceTerm{8}, CentralityTerm{1}},
		}},
		{"load-and-rootdist", HOTConfig{
			N: 220, Seed: 3, LinksPerArrival: 2,
			Terms: []ObjectiveTerm{DistanceTerm{2}, LoadTerm{0.5}, RootDistTerm{1.5}},
		}},
		{"centrality-only", HOTConfig{
			// No distance term at all: geometric pruning contributes
			// nothing and the stat bounds carry the whole search.
			N: 160, Seed: 4,
			Terms: []ObjectiveTerm{CentralityTerm{1}, LoadTerm{0.25}},
		}},
		{"degree-capped", HOTConfig{
			N: 220, Seed: 5, LinksPerArrival: 2,
			Terms:       []ObjectiveTerm{DistanceTerm{8}, CentralityTerm{1}},
			Constraints: []Constraint{MaxDegreeConstraint{4}},
		}},
		{"length-capped-with-fallback", HOTConfig{
			// A tight length cap forces the unconstrained fallback on
			// many arrivals, exercising the second search pass.
			N: 220, Seed: 6,
			Terms:       []ObjectiveTerm{DistanceTerm{8}, CentralityTerm{1}},
			Constraints: []Constraint{MaxLengthConstraint{0.05}},
		}},
		{"both-constraints", HOTConfig{
			N: 220, Seed: 7, LinksPerArrival: 2,
			Terms:       []ObjectiveTerm{DistanceTerm{4}, CentralityTerm{1}, LoadTerm{0.1}},
			Constraints: []Constraint{MaxDegreeConstraint{5}, MaxLengthConstraint{0.3}},
		}},
	}
	// One case with fixed arrivals straddling the region boundary: the
	// index's bounding rect must cover them.
	arr := make([]geom.Point, 219)
	for i := range arr {
		arr[i] = geom.Point{X: -0.5 + 2*float64(i)/float64(len(arr)), Y: float64(i%7) / 4}
	}
	cases = append(cases, struct {
		name string
		cfg  HOTConfig
	}{"fixed-arrivals", HOTConfig{
		N: 220, Seed: 8, Arrivals: arr,
		Terms: []ObjectiveTerm{DistanceTerm{8}, CentralityTerm{1}},
	}})

	for _, tc := range cases {
		cfg := tc.cfg
		cfg.Search = SearchExhaustive
		ref, refStats, err := GrowHOT(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		cfg.Search = SearchGrid
		got, gotStats, err := GrowHOT(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		checkSameGraph(t, tc.name, ref, got)
		if refStats.TotalLinkLength != gotStats.TotalLinkLength ||
			refStats.ConstraintViolations != gotStats.ConstraintViolations {
			t.Fatalf("%s: stats (%v, %d), reference (%v, %d)", tc.name,
				gotStats.TotalLinkLength, gotStats.ConstraintViolations,
				refStats.TotalLinkLength, refStats.ConstraintViolations)
		}
	}
}

// TestGrowHOTGridIneligibleFallsBack pins the eligibility gate: a custom
// term the index cannot lower-bound must silently keep the exhaustive
// scan (identical output) even under SearchGrid, as must a negative
// weight, which breaks the cost monotonicity the bounds rely on.
func TestGrowHOTGridIneligibleFallsBack(t *testing.T) {
	for _, terms := range [][]ObjectiveTerm{
		{DistanceTerm{8}, customTerm{}},
		{DistanceTerm{8}, CentralityTerm{-1}},
	} {
		cfg := HOTConfig{N: 120, Seed: 9, Terms: terms}
		cfg.Search = SearchExhaustive
		ref, _, err := GrowHOT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Search = SearchGrid
		got, _, err := GrowHOT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkSameGraph(t, "ineligible", ref, got)
	}
}

type customTerm struct{}

func (customTerm) Cost(s *GrowthState, p geom.Point, j int) float64 {
	// Deliberately not expressible as a tracked stat: depends on parity.
	return float64(j % 2)
}
func (customTerm) Name() string { return "custom" }

// TestGrowthSearchValidate pins the new config validation.
func TestGrowthSearchValidate(t *testing.T) {
	h := HOTConfig{N: 5, Terms: []ObjectiveTerm{DistanceTerm{1}}, Search: GrowthSearch(99)}
	if err := h.Validate(); err == nil {
		t.Fatal("HOT: unknown GrowthSearch accepted")
	}
	f := FKPConfig{N: 5, Search: GrowthSearch(99)}
	if err := f.Validate(); err == nil {
		t.Fatal("FKP: unknown GrowthSearch accepted")
	}
}

// TestGrowHOTAutoMatchesForced pins SearchAuto at a size above the
// engagement threshold against both forced implementations — the
// three-way bit-identity users actually rely on.
func TestGrowHOTAutoMatchesForced(t *testing.T) {
	if testing.Short() {
		t.Skip("grows three 1500-node topologies")
	}
	base := HOTConfig{
		N: 1500, Seed: 10, LinksPerArrival: 2,
		Terms:       []ObjectiveTerm{DistanceTerm{8}, CentralityTerm{1}},
		Constraints: []Constraint{MaxDegreeConstraint{6}},
	}
	run := func(s GrowthSearch) *graph.Graph {
		cfg := base
		cfg.Search = s
		g, _, err := GrowHOT(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	ref := run(SearchExhaustive)
	checkSameGraph(t, "auto", ref, run(SearchAuto))
	checkSameGraph(t, "grid", ref, run(SearchGrid))
}
