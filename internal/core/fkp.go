// Package core implements the paper's primary contribution: topology
// generation as incremental (heuristic) optimization, in two layers.
//
// First, the concrete Fabrikant–Koutsoupias–Papadimitriou (FKP) model the
// paper's §3.1 leans on: nodes arrive uniformly at random in a region and
// each attaches to the existing node minimizing
//
//	alpha * dist(i, j) + centrality(j)
//
// a tradeoff between last-mile connection cost and the attachment
// target's "centrality" (its proximity, in hops, to the network core).
// Sweeping alpha moves the output through the claimed spectrum: a star
// for tiny alpha, power-law-degree trees for intermediate alpha, and
// exponential-degree, MST-like trees for large alpha.
//
// Second, a generalized HOT growth framework (hot.go) with pluggable
// objective terms and feasibility constraints, used for the ablations and
// for generating the router-port-constrained variants the paper's §2.1
// discusses.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/errs"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rng"
)

// CentralityMode selects the centrality term used by the FKP objective.
type CentralityMode int

// Supported centrality definitions. The FKP paper uses hop distance to the
// root; Euclidean distance to the root is the natural geometric variant
// they also discuss. Both are exposed for the E1 ablation.
const (
	// HopsToRoot counts tree hops to node 0 (FKP's primary definition).
	HopsToRoot CentralityMode = iota
	// DistToRoot uses Euclidean distance from the candidate to node 0.
	DistToRoot
	// AvgHops uses the exact average hop distance from the candidate to
	// every current node, maintained incrementally (O(n) per arrival).
	AvgHops
)

// String names the centrality mode.
func (m CentralityMode) String() string {
	switch m {
	case HopsToRoot:
		return "hops-to-root"
	case DistToRoot:
		return "dist-to-root"
	case AvgHops:
		return "avg-hops"
	default:
		return fmt.Sprintf("CentralityMode(%d)", int(m))
	}
}

// FKPConfig parameterizes the FKP growth model.
type FKPConfig struct {
	N          int            // number of nodes (>= 1)
	Alpha      float64        // tradeoff weight on distance (>= 0)
	Seed       int64          // RNG seed
	Region     geom.Rect      // placement region; zero value = unit square
	Centrality CentralityMode // centrality definition
	MaxDegree  int            // router port cap; 0 = unconstrained
	RootAt     *geom.Point    // fixed root placement; nil = region center
	// Search selects the candidate-scan implementation; see GrowthSearch.
	// Every FKP configuration is grid-eligible, and the grown tree is
	// bit-identical either way.
	Search GrowthSearch
}

func (c *FKPConfig) withDefaults() FKPConfig {
	out := *c
	if out.Region == (geom.Rect{}) {
		out.Region = geom.UnitSquare
	}
	return out
}

// Validate reports a configuration error (wrapping errs.ErrBadParam), or
// nil.
func (c *FKPConfig) Validate() error {
	if c.N < 1 {
		return errs.BadParamf("core: FKP N = %d, need >= 1", c.N)
	}
	if c.Alpha < 0 {
		return errs.BadParamf("core: FKP Alpha = %v, need >= 0", c.Alpha)
	}
	if c.MaxDegree < 0 {
		return errs.BadParamf("core: FKP MaxDegree = %d, need >= 0", c.MaxDegree)
	}
	if c.Search > SearchGrid {
		return errs.BadParamf("core: unknown GrowthSearch %d", c.Search)
	}
	return nil
}

// FKP grows a tree per the FKP model and returns it. Node 0 is the root.
// The result is always a spanning tree of the arrived nodes (each arrival
// adds exactly one edge), with edge weights set to Euclidean length.
func FKP(cfg FKPConfig) (*graph.Graph, error) {
	return FKPContext(context.Background(), cfg)
}

// FKPContext is FKP with cancellation: the growth loop checks ctx at
// every arrival and returns an errs.ErrCanceled-wrapping error when the
// context is done.
func FKPContext(ctx context.Context, cfg FKPConfig) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	r := rng.New(c.Seed)
	g := graph.New(c.N)

	rootPt := c.Region.Center()
	if c.RootAt != nil {
		rootPt = *c.RootAt
	}
	g.AddNode(graph.Node{Kind: graph.KindCore, X: rootPt.X, Y: rootPt.Y})

	// Incremental centrality state.
	hops := make([]float64, 1, c.N) // tree hop count to root
	hops[0] = 0
	sumHops := make([]float64, 1, c.N) // for AvgHops: sum of hop dists to all current nodes
	sumHops[0] = 0

	// Grid index setup: the FKP objective is Alpha * distance + a
	// centrality stat the index tracks directly, so every configuration
	// is eligible. The stat weight is 1 except in AvgHops mode, where
	// the stored stat is the raw pairwise hop sum and the per-arrival
	// weight 1/i turns its regional minimums into valid bounds on
	// sumHops[j]/i.
	useGrid := false
	switch c.Search {
	case SearchGrid:
		useGrid = true
	case SearchExhaustive:
	default:
		useGrid = c.N >= gridMinNodes
	}
	var track [numStat]bool
	var statW [numStat]float64
	centStat := statHops
	switch c.Centrality {
	case DistToRoot:
		centStat = statRootDist
	case AvgHops:
		centStat = statSumHops
	}
	track[centStat] = true
	var ix *growthIndex
	if useGrid {
		ix = newGrowthIndex(growthBound(c.Region, nil, rootPt), c.N, track)
		vals := [numStat]float64{}
		ix.add(0, rootPt, &vals)
	}

	// Shared by both search paths so the cost arithmetic compiles once
	// and the arg-min (ties to the smaller id, exactly the exhaustive
	// loop's first-wins rule) is bit-identical.
	var p geom.Point
	arrival := 0
	best := candList{k: 1}
	eval := func(j int) {
		if c.MaxDegree > 0 && g.Degree(j) >= c.MaxDegree {
			return
		}
		nj := g.Node(j)
		d := p.Dist(geom.Point{X: nj.X, Y: nj.Y})
		var cent float64
		switch c.Centrality {
		case HopsToRoot:
			cent = hops[j]
		case DistToRoot:
			cent = geom.Point{X: nj.X, Y: nj.Y}.Dist(rootPt)
		case AvgHops:
			cent = sumHops[j] / float64(arrival)
		}
		best.consider(j, c.Alpha*d+cent)
	}
	eval32 := func(j int32) { eval(int(j)) }
	noLen := math.Inf(1)

	for i := 1; i < c.N; i++ {
		if err := errs.Ctx(ctx); err != nil {
			return nil, fmt.Errorf("core: FKP at arrival %d: %w", i, err)
		}
		p = c.Region.RandomPoint(r)
		arrival = i
		best.reset()
		if ix != nil {
			if c.Centrality == AvgHops {
				statW[statSumHops] = 1 / float64(i)
			} else {
				statW[centStat] = 1
			}
			ix.search(p, c.Alpha, &statW, noLen, best.full, best.worstCost, eval32)
		} else {
			for j := 0; j < i; j++ {
				eval(j)
			}
		}
		if best.empty() {
			return nil, errs.Infeasiblef("core: no feasible attachment for node %d (MaxDegree=%d too tight)", i, c.MaxDegree)
		}
		bestJ := best.c[0].j
		id := g.AddNode(graph.Node{Kind: graph.KindCustomer, X: p.X, Y: p.Y})
		w := p.Dist(geom.Point{X: g.Node(bestJ).X, Y: g.Node(bestJ).Y})
		g.AddEdge(graph.Edge{U: bestJ, V: id, Weight: w})

		hops = append(hops, hops[bestJ]+1)
		if c.Centrality == AvgHops {
			// New node's hop distance to existing node v is
			// hopdist(bestJ, v) + 1. Maintaining exact pairwise sums
			// incrementally requires the per-node vector; recompute the
			// new node's sum via BFS (O(n) amortized, acceptable).
			dist, _ := g.BFS(id)
			s := 0.0
			for v := 0; v < id; v++ {
				s += float64(dist[v])
				sumHops[v] += float64(dist[v])
			}
			sumHops = append(sumHops, s)
		} else {
			sumHops = append(sumHops, 0)
		}
		if ix != nil {
			vals := [numStat]float64{
				statHops:     hops[id],
				statRootDist: p.Dist(rootPt),
				statSumHops:  sumHops[id],
			}
			ix.add(int32(id), p, &vals)
		}
	}
	return g, nil
}

// AlphaRegime names the FKP parameter regimes from the original paper, so
// experiment code can request "the alpha that should produce X".
type AlphaRegime int

// The three regimes proved by Fabrikant et al.
const (
	RegimeStar        AlphaRegime = iota // alpha below ~sqrt(2): root dominates
	RegimePowerLaw                       // 4 <= alpha <= o(sqrt(n))
	RegimeExponential                    // alpha >= ~sqrt(n): distance dominates
)

// RegimeAlpha returns a representative alpha for the given regime at size n.
func RegimeAlpha(reg AlphaRegime, n int) float64 {
	switch reg {
	case RegimeStar:
		return 0.5
	case RegimePowerLaw:
		return 8
	default:
		return 4 * math.Sqrt(float64(n))
	}
}
