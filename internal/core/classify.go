package core

import (
	"repro/internal/graph"
	"repro/internal/stats"
)

// TopologyClass is the coarse structural classification the FKP theory
// predicts as alpha sweeps (§3.1 of the paper).
type TopologyClass int

// The classes the E1 experiment distinguishes.
const (
	ClassOther TopologyClass = iota
	ClassStar                // one hub adjacent to (almost) every node
	ClassPowerLawTree
	ClassExponentialTree
)

// String names the class.
func (c TopologyClass) String() string {
	switch c {
	case ClassStar:
		return "star"
	case ClassPowerLawTree:
		return "power-law tree"
	case ClassExponentialTree:
		return "exponential tree"
	default:
		return "other"
	}
}

// StarThreshold is the fraction of all possible spokes the top hub must
// own for the topology to be called a star.
const StarThreshold = 0.5

// Classify assigns a TopologyClass to g using the degree-tail classifier.
// A graph whose top hub touches >= StarThreshold of the other nodes is a
// star; otherwise trees are split by their degree-tail kind. Non-trees
// are classified by tail only (reported as Other when undetermined).
func Classify(g *graph.Graph) TopologyClass {
	ds := stats.AnalyzeDegrees(g)
	if ds.TopDegreeFrac >= StarThreshold {
		return ClassStar
	}
	switch ds.Classification.Kind {
	case stats.TailPowerLaw:
		if g.IsTree() {
			return ClassPowerLawTree
		}
	case stats.TailExponential:
		if g.IsTree() {
			return ClassExponentialTree
		}
	}
	return ClassOther
}
