package core
