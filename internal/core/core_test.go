package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/stats"
)

func TestFKPValidate(t *testing.T) {
	bad := []FKPConfig{
		{N: 0, Alpha: 1},
		{N: 10, Alpha: -1},
		{N: 10, Alpha: 1, MaxDegree: -2},
	}
	for i, cfg := range bad {
		if _, err := FKP(cfg); err == nil {
			t.Fatalf("config %d should have failed validation", i)
		}
	}
}

func TestFKPProducesSpanningTree(t *testing.T) {
	for _, mode := range []CentralityMode{HopsToRoot, DistToRoot} {
		g, err := FKP(FKPConfig{N: 300, Alpha: 10, Seed: 1, Centrality: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsTree() {
			t.Fatalf("FKP output (mode %v) is not a tree", mode)
		}
		if g.NumNodes() != 300 {
			t.Fatalf("got %d nodes", g.NumNodes())
		}
	}
}

func TestFKPAvgHopsMode(t *testing.T) {
	g, err := FKP(FKPConfig{N: 120, Alpha: 5, Seed: 2, Centrality: AvgHops})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTree() {
		t.Fatal("AvgHops FKP output is not a tree")
	}
}

func TestFKPSmallAlphaIsStar(t *testing.T) {
	// Alpha below 1/sqrt(2): every node prefers the root regardless of
	// distance (max distance gain < centrality cost of leaving the root).
	g, err := FKP(FKPConfig{N: 500, Alpha: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(g); got != ClassStar {
		t.Fatalf("alpha=0.3 classified as %v, want star", got)
	}
	if g.Degree(0) != 499 {
		t.Fatalf("root degree = %d, want 499 (perfect star)", g.Degree(0))
	}
}

func TestFKPLargeAlphaIsNotStar(t *testing.T) {
	n := 1000
	g, err := FKP(FKPConfig{N: n, Alpha: RegimeAlpha(RegimeExponential, n), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ds := stats.AnalyzeDegrees(g)
	if ds.TopDegreeFrac > 0.1 {
		t.Fatalf("large-alpha FKP still hub-dominated: top frac %v", ds.TopDegreeFrac)
	}
	if ds.MaxDegree > 20 {
		t.Fatalf("large-alpha FKP max degree = %d, expected small", ds.MaxDegree)
	}
}

func TestFKPIntermediateAlphaSkewed(t *testing.T) {
	// Intermediate regime: a few big hubs, many leaves — max degree far
	// above the large-alpha regime but not a star.
	n := 1500
	gMid, err := FKP(FKPConfig{N: n, Alpha: RegimeAlpha(RegimePowerLaw, n), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gBig, err := FKP(FKPConfig{N: n, Alpha: RegimeAlpha(RegimeExponential, n), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	midMax := gMid.MaxDegree()
	bigMax := gBig.MaxDegree()
	if midMax <= 2*bigMax {
		t.Fatalf("intermediate alpha max degree %d not >> exponential regime %d", midMax, bigMax)
	}
	if frac := float64(midMax) / float64(n-1); frac >= StarThreshold {
		t.Fatalf("intermediate alpha degenerated into a star (frac %v)", frac)
	}
}

func TestFKPDeterministic(t *testing.T) {
	a, err := FKP(FKPConfig{N: 200, Alpha: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FKP(FKPConfig{N: 200, Alpha: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge count")
	}
	for i := 0; i < a.NumEdges(); i++ {
		ea, eb := a.Edge(i), b.Edge(i)
		if ea.U != eb.U || ea.V != eb.V || ea.Weight != eb.Weight {
			t.Fatalf("edge %d differs between identical runs", i)
		}
	}
}

func TestFKPMaxDegreeRespected(t *testing.T) {
	g, err := FKP(FKPConfig{N: 400, Alpha: 0.3, Seed: 8, MaxDegree: 16})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 16 {
		t.Fatalf("max degree %d exceeds cap 16", g.MaxDegree())
	}
	if !g.IsTree() {
		t.Fatal("degree-capped FKP should still be a tree")
	}
}

func TestFKPRootPlacement(t *testing.T) {
	at := geom.Point{X: 0.1, Y: 0.9}
	g, err := FKP(FKPConfig{N: 10, Alpha: 1, Seed: 9, RootAt: &at})
	if err != nil {
		t.Fatal(err)
	}
	if g.Node(0).X != 0.1 || g.Node(0).Y != 0.9 {
		t.Fatal("RootAt ignored")
	}
}

func TestFKPSingleNode(t *testing.T) {
	g, err := FKP(FKPConfig{N: 1, Alpha: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatal("N=1 should give a single node, no edges")
	}
}

func TestFKPEdgeWeightsEuclidean(t *testing.T) {
	g, err := FKP(FKPConfig{N: 50, Alpha: 5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		u, v := g.Node(e.U), g.Node(e.V)
		want := geom.Point{X: u.X, Y: u.Y}.Dist(geom.Point{X: v.X, Y: v.Y})
		if math.Abs(e.Weight-want) > 1e-12 {
			t.Fatalf("edge weight %v, want Euclidean %v", e.Weight, want)
		}
	}
}

func TestGrowHOTEquivalentToFKP(t *testing.T) {
	// With the FKP-equivalent configuration, GrowHOT must produce the
	// identical topology for the same seed.
	alpha := 7.0
	gf, err := FKP(FKPConfig{N: 150, Alpha: alpha, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	gh, _, err := GrowHOT(HOTConfig{
		N:     150,
		Seed:  11,
		Terms: []ObjectiveTerm{DistanceTerm{alpha}, CentralityTerm{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gf.NumEdges() != gh.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", gf.NumEdges(), gh.NumEdges())
	}
	for i := 0; i < gf.NumEdges(); i++ {
		a, b := gf.Edge(i), gh.Edge(i)
		if a.U != b.U || a.V != b.V {
			t.Fatalf("edge %d: FKP (%d,%d) vs HOT (%d,%d)", i, a.U, a.V, b.U, b.V)
		}
	}
}

func TestGrowHOTValidate(t *testing.T) {
	if _, _, err := GrowHOT(HOTConfig{N: 0}); err == nil {
		t.Fatal("N=0 should fail")
	}
	if _, _, err := GrowHOT(HOTConfig{N: 5}); err == nil {
		t.Fatal("no terms should fail")
	}
	if _, _, err := GrowHOT(HOTConfig{N: 5, Terms: []ObjectiveTerm{DistanceTerm{1}}, LinksPerArrival: -1}); err == nil {
		t.Fatal("negative links should fail")
	}
}

func TestGrowHOTMultiLink(t *testing.T) {
	g, _, err := GrowHOT(HOTConfig{
		N:               200,
		Seed:            12,
		Terms:           []ObjectiveTerm{DistanceTerm{5}, CentralityTerm{1}},
		LinksPerArrival: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// First arrival can only make 1 link (one node exists); the rest 2.
	wantEdges := 1 + (200-2)*2
	if g.NumEdges() != wantEdges {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if g.IsTree() {
		t.Fatal("multi-link growth should not be a tree")
	}
	if !g.IsConnected() {
		t.Fatal("growth output must be connected")
	}
}

func TestGrowHOTDegreeConstraint(t *testing.T) {
	g, st, err := GrowHOT(HOTConfig{
		N:           300,
		Seed:        13,
		Terms:       []ObjectiveTerm{CentralityTerm{1}}, // prefers root always
		Constraints: []Constraint{MaxDegreeConstraint{Max: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() > 4 {
		t.Fatalf("constraint violated: max degree %d", g.MaxDegree())
	}
	if st.ConstraintViolations != 0 {
		t.Fatalf("unexpected fallback arrivals: %d", st.ConstraintViolations)
	}
}

func TestGrowHOTInfeasibleFallsBack(t *testing.T) {
	// Impossible length cap: every arrival falls back to unconstrained.
	g, st, err := GrowHOT(HOTConfig{
		N:           50,
		Seed:        14,
		Terms:       []ObjectiveTerm{DistanceTerm{1}},
		Constraints: []Constraint{MaxLengthConstraint{Max: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("fallback must keep the graph connected")
	}
	if st.ConstraintViolations != 49 {
		t.Fatalf("violations = %d, want 49", st.ConstraintViolations)
	}
}

func TestGrowHOTLoadTermSpreadsDegree(t *testing.T) {
	// Pure centrality gives a star; adding load must spread attachments.
	star, _, err := GrowHOT(HOTConfig{
		N:     200,
		Seed:  15,
		Terms: []ObjectiveTerm{CentralityTerm{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	spread, _, err := GrowHOT(HOTConfig{
		N:     200,
		Seed:  15,
		Terms: []ObjectiveTerm{CentralityTerm{1}, LoadTerm{10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if spread.MaxDegree() >= star.MaxDegree() {
		t.Fatalf("load term did not reduce hub degree: %d vs %d",
			spread.MaxDegree(), star.MaxDegree())
	}
}

func TestObjectiveTermNames(t *testing.T) {
	terms := []ObjectiveTerm{DistanceTerm{1}, CentralityTerm{1}, LoadTerm{1}, RootDistTerm{1}}
	seen := map[string]bool{}
	for _, tm := range terms {
		n := tm.Name()
		if n == "" || seen[n] {
			t.Fatalf("bad/duplicate term name %q", n)
		}
		seen[n] = true
	}
	if (MaxDegreeConstraint{3}).Name() == "" || (MaxLengthConstraint{1}).Name() == "" {
		t.Fatal("constraint names empty")
	}
}

func TestClassifyStarDirect(t *testing.T) {
	g := graph.New(10)
	for i := 0; i < 10; i++ {
		g.AddNode(graph.Node{})
	}
	for i := 1; i < 10; i++ {
		g.AddEdge(graph.Edge{U: 0, V: i})
	}
	if got := Classify(g); got != ClassStar {
		t.Fatalf("star classified as %v", got)
	}
}

func TestClassifyStrings(t *testing.T) {
	for _, c := range []TopologyClass{ClassOther, ClassStar, ClassPowerLawTree, ClassExponentialTree} {
		if c.String() == "" {
			t.Fatalf("class %d has empty string", c)
		}
	}
	if CentralityMode(99).String() == "" {
		t.Fatal("unknown centrality mode should still print")
	}
}

func TestRegimeAlphaOrdering(t *testing.T) {
	n := 1000
	a1 := RegimeAlpha(RegimeStar, n)
	a2 := RegimeAlpha(RegimePowerLaw, n)
	a3 := RegimeAlpha(RegimeExponential, n)
	if !(a1 < a2 && a2 < a3) {
		t.Fatalf("regime alphas not ordered: %v %v %v", a1, a2, a3)
	}
}
