package core

import (
	"math"

	"repro/internal/geom"
)

// GrowthSearch selects the candidate-scan implementation of the
// optimization growth loops (GrowHOT, FKP).
type GrowthSearch uint8

const (
	// SearchAuto (the zero value) uses the grid index when the
	// configuration is eligible and large enough to amortize it, and the
	// exhaustive scan otherwise. Results are identical either way.
	SearchAuto GrowthSearch = iota
	// SearchExhaustive forces the O(n) per-arrival reference scan.
	SearchExhaustive
	// SearchGrid forces the grid index where eligible (ineligible
	// configurations — custom terms or constraints the index cannot
	// bound — silently keep the exhaustive scan).
	SearchGrid
)

// gridMinNodes is the SearchAuto engagement threshold: below it the
// exhaustive scan wins on constant factors.
const gridMinNodes = 1024

// The candidate stats the growth index maintains lower bounds for. Each
// is either immutable once a node arrives (its tree hop count, its
// distance to the root) or monotone non-decreasing over the run (degree,
// pairwise hop sum) — so a min recorded at insertion time remains a
// valid lower bound on the stat's current value forever.
const (
	statHops     = iota // tree hop distance to root (immutable)
	statRootDist        // Euclidean distance to root (immutable)
	statDeg             // degree at insertion (monotone under growth)
	statSumHops         // sum of hop distances to all nodes (monotone)
	numStat
)

// candList keeps the k lexicographically smallest (cost, id) candidates
// seen so far, sorted ascending. The ordering is canonical — independent
// of enumeration order — which is what lets the grid index's ring
// enumeration reproduce the exhaustive scan's selection bit-for-bit,
// ties included.
type candList struct {
	k int
	c []cand
}

type cand struct {
	j    int
	cost float64
}

func (b *candList) reset()             { b.c = b.c[:0] }
func (b *candList) empty() bool        { return len(b.c) == 0 }
func (b *candList) full() bool         { return len(b.c) >= b.k }
func (b *candList) worstCost() float64 { return b.c[len(b.c)-1].cost }

// consider inserts (j, cost) if it is among the k smallest in (cost, j)
// order.
func (b *candList) consider(j int, cost float64) {
	if len(b.c) >= b.k {
		w := b.c[len(b.c)-1]
		if cost > w.cost || (cost == w.cost && j > w.j) {
			return
		}
		b.c = b.c[:len(b.c)-1]
	}
	i := len(b.c)
	b.c = append(b.c, cand{j, cost})
	for i > 0 && (b.c[i-1].cost > cost || (b.c[i-1].cost == cost && b.c[i-1].j > j)) {
		b.c[i], b.c[i-1] = b.c[i-1], b.c[i]
		i--
	}
}

// growthIndex is the spatial index behind the O(n log n) growth path: a
// uniform grid over the growth region holding every arrived node,
// annotated with stale-min stats per fine cell, per coarse block of
// gridBlock x gridBlock cells, and globally. A query enumerates coarse
// blocks in expanding Chebyshev rings around the arrival and prunes any
// ring / block / cell whose cost lower bound (distance weight times the
// exact point-to-rect distance, plus each stat weight times the region's
// stat min) strictly exceeds the current k-th best cost. Pruning is
// strict-only and the kept-candidate ordering is canonical, so the
// selected attachments — including every tie-break — match the
// exhaustive scan bit-for-bit.
type growthIndex struct {
	grid      *geom.Grid
	blk       int // cells per coarse block side
	bnx, bny  int
	track     [numStat]bool
	cellMin   [numStat][]float64
	blockMin  [numStat][]float64
	globalMin [numStat]float64
}

// gridBlock is the coarse-block side in fine cells: ring enumeration and
// first-level pruning run at block granularity, so the per-ring overhead
// is 1/64th of cell granularity while empty regions still prune early.
const gridBlock = 8

// newGrowthIndex builds an empty index over rect sized for `expected`
// nodes, tracking lower bounds for the stats in track. rect must contain
// every point that will be inserted (bound the region, the fixed
// arrivals, and the root).
func newGrowthIndex(rect geom.Rect, expected int, track [numStat]bool) *growthIndex {
	ix := &growthIndex{grid: geom.NewGrid(rect, expected), blk: gridBlock, track: track}
	nx, ny := ix.grid.Dims()
	ix.bnx = (nx + ix.blk - 1) / ix.blk
	ix.bny = (ny + ix.blk - 1) / ix.blk
	for s := 0; s < numStat; s++ {
		ix.globalMin[s] = math.Inf(1)
		if !track[s] {
			continue
		}
		ix.cellMin[s] = make([]float64, nx*ny)
		for i := range ix.cellMin[s] {
			ix.cellMin[s][i] = math.Inf(1)
		}
		ix.blockMin[s] = make([]float64, ix.bnx*ix.bny)
		for i := range ix.blockMin[s] {
			ix.blockMin[s][i] = math.Inf(1)
		}
	}
	return ix
}

// add inserts node id at p with its current stat values. Insertion-time
// values stay valid lower bounds (see the stat constants).
func (ix *growthIndex) add(id int32, p geom.Point, vals *[numStat]float64) {
	cx, cy := ix.grid.CellAt(p)
	ci := ix.grid.CellIndex(cx, cy)
	bi := (cy/ix.blk)*ix.bnx + cx/ix.blk
	ix.grid.Add(id, p)
	for s := 0; s < numStat; s++ {
		if !ix.track[s] {
			continue
		}
		v := vals[s]
		if v < ix.cellMin[s][ci] {
			ix.cellMin[s][ci] = v
		}
		if v < ix.blockMin[s][bi] {
			ix.blockMin[s][bi] = v
		}
		if v < ix.globalMin[s] {
			ix.globalMin[s] = v
		}
	}
}

// search enumerates candidates for an arrival at p, calling eval exactly
// once for every stored id it cannot prove is outside the k best. eval
// must apply feasibility, compute the exact cost, and update the
// caller's candList; full/worst expose that list's state back to the
// pruning. distW scales the distance lower bounds (the summed weight on
// candidate distance in the objective), statW scales the per-stat mins,
// and maxLen caps candidate distance (pass +Inf when no length
// constraint applies in this pass): regions provably beyond maxLen are
// skipped even while the list is short, because a length constraint
// makes their candidates infeasible outright.
//
// Soundness of every prune is strict inequality against a true lower
// bound, so candidates tied with the current k-th best are always still
// evaluated and the final list is exactly the exhaustive scan's.
func (ix *growthIndex) search(p geom.Point, distW float64, statW *[numStat]float64, maxLen float64, full func() bool, worst func() float64, eval func(j int32)) {
	g := ix.grid
	nx, ny := g.Dims()
	pcx, pcy := g.CellAt(p)
	pbx, pby := pcx/ix.blk, pcy/ix.blk
	maxRing := maxOf(pbx, ix.bnx-1-pbx, pby, ix.bny-1-pby)
	statFloor := 0.0
	for s := 0; s < numStat; s++ {
		if statW[s] != 0 && ix.track[s] && !math.IsInf(ix.globalMin[s], 1) {
			statFloor += statW[s] * ix.globalMin[s]
		}
	}
	for k := 0; k <= maxRing; k++ {
		if k > 0 {
			// All candidates at block rings >= k lie outside the band of
			// blocks within Chebyshev distance k-1 of p's block, hence at
			// least the band margin away from p.
			band := k - 1
			ringD := g.ComplementDistLB(p,
				(pbx-band)*ix.blk, (pby-band)*ix.blk,
				(pbx+band)*ix.blk+ix.blk-1, (pby+band)*ix.blk+ix.blk-1)
			if ringD > maxLen {
				return
			}
			if full() && distW*ringD+statFloor > worst() {
				return
			}
		}
		ix.forEachRingBlock(pbx, pby, k, func(bx, by int) {
			cx0, cy0 := bx*ix.blk, by*ix.blk
			cx1, cy1 := minOf(cx0+ix.blk-1, nx-1), minOf(cy0+ix.blk-1, ny-1)
			d := g.RangeDistLB(p, cx0, cy0, cx1, cy1)
			if d > maxLen {
				return
			}
			isFull := full()
			if isFull && distW*d+ix.statFloorAt(statW, ix.blockMin[:], by*ix.bnx+bx) > worst() {
				return
			}
			for cy := cy0; cy <= cy1; cy++ {
				for cx := cx0; cx <= cx1; cx++ {
					ci := g.CellIndex(cx, cy)
					ids := g.CellIDs(ci)
					if len(ids) == 0 {
						continue
					}
					cd := g.CellDistLB(p, cx, cy)
					if cd > maxLen {
						continue
					}
					if full() && distW*cd+ix.statFloorAt(statW, ix.cellMin[:], ci) > worst() {
						continue
					}
					for _, id := range ids {
						eval(id)
					}
				}
			}
		})
	}
}

// statFloorAt sums the weighted stat minimums of one region (cell or
// block); +Inf mins (region holds no tracked value yet) propagate so an
// empty region prunes immediately once the list is full.
func (ix *growthIndex) statFloorAt(statW *[numStat]float64, mins [][]float64, i int) float64 {
	f := 0.0
	for s := 0; s < numStat; s++ {
		if statW[s] != 0 && mins[s] != nil {
			f += statW[s] * mins[s][i]
		}
	}
	return f
}

// forEachRingBlock visits the in-range coarse blocks at exactly Chebyshev
// distance k from (pbx, pby).
func (ix *growthIndex) forEachRingBlock(pbx, pby, k int, fn func(bx, by int)) {
	if k == 0 {
		if pbx >= 0 && pbx < ix.bnx && pby >= 0 && pby < ix.bny {
			fn(pbx, pby)
		}
		return
	}
	for _, by := range [2]int{pby - k, pby + k} {
		if by < 0 || by >= ix.bny {
			continue
		}
		for bx := maxOf(pbx-k, 0); bx <= minOf(pbx+k, ix.bnx-1); bx++ {
			fn(bx, by)
		}
	}
	for _, bx := range [2]int{pbx - k, pbx + k} {
		if bx < 0 || bx >= ix.bnx {
			continue
		}
		for by := maxOf(pby-k+1, 0); by <= minOf(pby+k-1, ix.bny-1); by++ {
			fn(bx, by)
		}
	}
}

// growthBound returns a rectangle covering every point a growth run can
// insert: the placement region, any fixed arrival locations, and the
// root. The grid's lower-bound contract requires all inserted points
// inside its rect.
func growthBound(region geom.Rect, arrivals []geom.Point, root geom.Point) geom.Rect {
	r := region
	grow := func(p geom.Point) {
		r.MinX = math.Min(r.MinX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	grow(root)
	for _, p := range arrivals {
		grow(p)
	}
	return r
}

func minOf(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxOf(vs ...int) int {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
