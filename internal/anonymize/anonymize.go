// Package anonymize addresses the paper's §5 research-agenda question:
// "Is it possible to accurately, yet anonymously characterize an ISP
// topology?" It offers transformations a provider could apply before
// sharing a topology: identity scrubbing (labels, id permutation),
// geographic coarsening (grid snapping plus jitter), and a structural
// summary that preserves exactly the aggregate statistics researchers
// need while revealing nothing node-level.
package anonymize

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Options configure Scrub.
type Options struct {
	Seed int64
	// PermuteIDs relabels nodes by a random permutation.
	PermuteIDs bool
	// StripLabels removes node labels (city names, provider tags).
	StripLabels bool
	// CoarsenGrid > 0 snaps coordinates to a CoarsenGrid x CoarsenGrid
	// grid over the topology's bounding box, hiding exact sites.
	CoarsenGrid int
	// StripKinds removes the node role annotations.
	StripKinds bool
}

// Scrub returns an anonymized copy of g. The underlying connectivity
// (the unlabeled graph up to isomorphism) is preserved exactly, so every
// structural metric is unchanged; identities, exact locations, and roles
// are removed per the options.
func Scrub(g *graph.Graph, opts Options) *graph.Graph {
	n := g.NumNodes()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if opts.PermuteIDs {
		perm = rng.Shuffle(rng.New(opts.Seed), n)
	}
	// Bounding box for coarsening.
	var minX, minY, maxX, maxY float64
	if n > 0 {
		n0 := g.Node(0)
		minX, minY, maxX, maxY = n0.X, n0.Y, n0.X, n0.Y
		for v := 1; v < n; v++ {
			nd := g.Node(v)
			if nd.X < minX {
				minX = nd.X
			}
			if nd.Y < minY {
				minY = nd.Y
			}
			if nd.X > maxX {
				maxX = nd.X
			}
			if nd.Y > maxY {
				maxY = nd.Y
			}
		}
	}
	snap := func(v, lo, hi float64) float64 {
		if opts.CoarsenGrid <= 0 || hi <= lo {
			return v
		}
		k := float64(opts.CoarsenGrid)
		cell := (v - lo) / (hi - lo) * k
		idx := float64(int(cell))
		if idx >= k {
			idx = k - 1
		}
		return lo + (idx+0.5)/k*(hi-lo)
	}

	out := graph.New(n)
	// perm[old] = position in shuffle output; build inverse placement:
	// new id of old node v is pos[v].
	pos := make([]int, n)
	for newID, oldID := range perm {
		pos[oldID] = newID
	}
	// Add nodes in new-id order.
	ordered := make([]graph.Node, n)
	for old := 0; old < n; old++ {
		nd := *g.Node(old)
		if opts.StripLabels {
			nd.Label = ""
		}
		if opts.StripKinds {
			nd.Kind = graph.KindUnknown
		}
		nd.X = snap(nd.X, minX, maxX)
		nd.Y = snap(nd.Y, minY, maxY)
		ordered[pos[old]] = nd
	}
	for _, nd := range ordered {
		out.AddNode(nd)
	}
	for _, e := range g.Edges() {
		ne := e
		ne.U, ne.V = pos[e.U], pos[e.V]
		out.AddEdge(ne)
	}
	return out
}

// Summary is the aggregate characterization a provider can publish
// instead of (or alongside) a scrubbed graph: nothing in it identifies a
// node, yet it pins down the statistics the paper's validation agenda
// (§5) asks about.
type Summary struct {
	Nodes, Edges  int
	MeanDegree    float64
	MaxDegree     int
	DegreeCCDF    []stats.CCDFPoint
	TailKind      string
	PowerLawAlpha float64
	ExpLambda     float64
	Clustering    float64
	Assortativity float64
	Profile       metrics.Profile
}

// Summarize computes the aggregate characterization of g.
func Summarize(g *graph.Graph, seed int64) Summary {
	ds := stats.AnalyzeDegrees(g)
	return Summary{
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		MeanDegree:    ds.MeanDegree,
		MaxDegree:     ds.MaxDegree,
		DegreeCCDF:    stats.DegreeCCDF(ds.Degrees),
		TailKind:      ds.Classification.Kind.String(),
		PowerLawAlpha: ds.Classification.PowerLaw.Alpha,
		ExpLambda:     ds.Classification.Exponential.Lambda,
		Clustering:    stats.ClusteringCoefficient(g),
		Assortativity: stats.DegreeAssortativity(g),
		Profile:       metrics.ComputeProfile(g, seed),
	}
}

// String renders the summary in a compact human-readable block.
func (s Summary) String() string {
	return fmt.Sprintf(
		"nodes=%d edges=%d meanDeg=%.3f maxDeg=%d tail=%s(alpha=%.2f,lambda=%.3f) clust=%.4f assort=%.4f expansion@3=%.4f resilience=%.4f distortion=%.3f",
		s.Nodes, s.Edges, s.MeanDegree, s.MaxDegree, s.TailKind,
		s.PowerLawAlpha, s.ExpLambda, s.Clustering, s.Assortativity,
		s.Profile.ExpansionAt3, s.Profile.Resilience, s.Profile.Distortion)
}
