package anonymize

import (
	"math"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
)

func sample(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(300, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		g.Node(v).Label = "router-x"
		g.Node(v).Kind = graph.KindCore
	}
	return g
}

func TestScrubPreservesStructure(t *testing.T) {
	g := sample(t)
	out := Scrub(g, Options{Seed: 2, PermuteIDs: true, StripLabels: true})
	if out.NumNodes() != g.NumNodes() || out.NumEdges() != g.NumEdges() {
		t.Fatal("scrub changed graph size")
	}
	// Degree multiset must be identical.
	a := g.Degrees()
	b := out.Degrees()
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("degree multiset changed")
		}
	}
	// Clustering is isomorphism-invariant (up to float summation order,
	// which the id permutation changes).
	ca := stats.ClusteringCoefficient(g)
	cb := stats.ClusteringCoefficient(out)
	if math.Abs(ca-cb) > 1e-9 {
		t.Fatalf("clustering changed: %v vs %v", ca, cb)
	}
}

func TestScrubRemovesLabels(t *testing.T) {
	g := sample(t)
	out := Scrub(g, Options{Seed: 3, StripLabels: true})
	for v := 0; v < out.NumNodes(); v++ {
		if out.Node(v).Label != "" {
			t.Fatal("label survived scrub")
		}
	}
	// Original untouched.
	if g.Node(0).Label == "" {
		t.Fatal("scrub mutated input graph")
	}
}

func TestScrubStripKinds(t *testing.T) {
	g := sample(t)
	out := Scrub(g, Options{Seed: 4, StripKinds: true})
	for v := 0; v < out.NumNodes(); v++ {
		if out.Node(v).Kind != graph.KindUnknown {
			t.Fatal("kind survived scrub")
		}
	}
}

func TestScrubPermutes(t *testing.T) {
	g := sample(t)
	// Tag nodes with distinct labels to detect the permutation.
	for v := 0; v < g.NumNodes(); v++ {
		g.Node(v).Label = string(rune('a' + v%26))
	}
	out := Scrub(g, Options{Seed: 5, PermuteIDs: true})
	moved := 0
	for v := 0; v < g.NumNodes(); v++ {
		if out.Node(v).Label != g.Node(v).Label {
			moved++
		}
	}
	if moved < g.NumNodes()/2 {
		t.Fatalf("permutation barely moved anything: %d", moved)
	}
}

func TestScrubCoarsensCoordinates(t *testing.T) {
	g := sample(t)
	out := Scrub(g, Options{Seed: 6, CoarsenGrid: 4})
	// At most 16 distinct (x,y) cells.
	seen := map[[2]float64]bool{}
	for v := 0; v < out.NumNodes(); v++ {
		nd := out.Node(v)
		seen[[2]float64{nd.X, nd.Y}] = true
	}
	if len(seen) > 16 {
		t.Fatalf("coarsening left %d distinct positions, want <= 16", len(seen))
	}
}

func TestScrubNoOptionsIsCopy(t *testing.T) {
	g := sample(t)
	out := Scrub(g, Options{})
	for v := 0; v < g.NumNodes(); v++ {
		a, b := g.Node(v), out.Node(v)
		if a.X != b.X || a.Y != b.Y || a.Label != b.Label || a.Kind != b.Kind {
			t.Fatal("no-op scrub altered a node")
		}
	}
}

func TestSummarizeInvariantUnderScrub(t *testing.T) {
	g := sample(t)
	s1 := Summarize(g, 9)
	s2 := Summarize(Scrub(g, Options{Seed: 7, PermuteIDs: true, StripLabels: true, StripKinds: true}), 9)
	if s1.Nodes != s2.Nodes || s1.Edges != s2.Edges || s1.MaxDegree != s2.MaxDegree {
		t.Fatal("scrub changed structural summary")
	}
	if s1.TailKind != s2.TailKind {
		t.Fatalf("tail classification changed: %s vs %s", s1.TailKind, s2.TailKind)
	}
	if math.Abs(s1.Clustering-s2.Clustering) > 1e-9 {
		t.Fatal("clustering changed")
	}
	if s1.String() == "" {
		t.Fatal("summary string empty")
	}
}

func TestScrubEmptyGraph(t *testing.T) {
	out := Scrub(graph.New(0), Options{Seed: 1, PermuteIDs: true, CoarsenGrid: 8})
	if out.NumNodes() != 0 {
		t.Fatal("empty graph scrub should stay empty")
	}
}
