package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Variance-2.5) > 1e-12 {
		t.Fatalf("variance = %v, want 2.5", s.Variance)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 {
		t.Fatalf("median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram([]int{1, 1, 2, 3, 3, 3})
	want := []int{0, 2, 1, 3}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
}

func TestDegreeCCDFMonotone(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		deg := make([]int, len(raw))
		for i, v := range raw {
			deg[i] = int(v) % 50
		}
		ccdf := DegreeCCDF(deg)
		if len(ccdf) == 0 {
			return false
		}
		prevFrac := 1.1
		prevVal := -1
		for _, p := range ccdf {
			if p.Frac > prevFrac || p.Value <= prevVal {
				return false
			}
			if p.Frac <= 0 || p.Frac > 1 {
				return false
			}
			prevFrac = p.Frac
			prevVal = p.Value
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDegreeCCDFStartsAtOne(t *testing.T) {
	ccdf := DegreeCCDF([]int{2, 3, 3, 7})
	if ccdf[0].Value != 2 || ccdf[0].Frac != 1 {
		t.Fatalf("first CCDF point = %+v, want {2 1}", ccdf[0])
	}
	last := ccdf[len(ccdf)-1]
	if last.Value != 7 || math.Abs(last.Frac-0.25) > 1e-12 {
		t.Fatalf("last CCDF point = %+v, want {7 0.25}", last)
	}
}

func TestDegreeCCDFEmpty(t *testing.T) {
	if DegreeCCDF(nil) != nil {
		t.Fatal("empty input should give nil CCDF")
	}
}

// samplePowerLaw draws n samples from a discrete power law with the given
// alpha on support [xmin, 10000] by inverse transform on the truncated
// zeta weights.
func samplePowerLaw(seed int64, n, xmin int, alpha float64) []int {
	const maxK = 10000
	weights := make([]float64, maxK-xmin+1)
	total := 0.0
	for k := xmin; k <= maxK; k++ {
		w := math.Pow(float64(k), -alpha)
		weights[k-xmin] = w
		total += w
	}
	cdf := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	r := rng.New(seed)
	out := make([]int, n)
	for i := range out {
		u := r.Float64()
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = xmin + lo
	}
	return out
}

// sampleGeometric draws n samples from a shifted geometric distribution on
// {xmin, xmin+1, ...} with decay exp(-lambda).
func sampleGeometric(seed int64, n, xmin int, lambda float64) []int {
	r := rng.New(seed)
	q := math.Exp(-lambda)
	out := make([]int, n)
	for i := range out {
		// Inverse transform for geometric: k = floor(ln(U)/ln(q)).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		out[i] = xmin + int(math.Log(u)/math.Log(q))
	}
	return out
}

func TestFitPowerLawRecoversAlpha(t *testing.T) {
	deg := samplePowerLaw(1, 20000, 2, 2.5)
	// The MLE uses the standard continuous approximation, which together
	// with the truncated sampler biases alpha slightly low; 0.2 tolerance.
	fit := FitPowerLaw(deg, 2)
	if math.Abs(fit.Alpha-2.5) > 0.2 {
		t.Fatalf("recovered alpha = %v, want ~2.5", fit.Alpha)
	}
	if fit.NTail != 20000 {
		t.Fatalf("NTail = %d", fit.NTail)
	}
}

func TestFitExponentialRecoversLambda(t *testing.T) {
	deg := sampleGeometric(2, 20000, 1, 0.7)
	fit := FitExponential(deg, 1)
	if math.Abs(fit.Lambda-0.7) > 0.05 {
		t.Fatalf("recovered lambda = %v, want ~0.7", fit.Lambda)
	}
}

func TestClassifyTailPowerLaw(t *testing.T) {
	deg := samplePowerLaw(3, 5000, 1, 2.2)
	c := ClassifyTail(deg)
	if c.Kind != TailPowerLaw {
		t.Fatalf("power-law sample classified as %v (llr=%v)", c.Kind, c.LogLikRatio)
	}
}

func TestClassifyTailExponential(t *testing.T) {
	deg := sampleGeometric(4, 5000, 1, 0.5)
	c := ClassifyTail(deg)
	if c.Kind != TailExponential {
		t.Fatalf("geometric sample classified as %v (llr=%v)", c.Kind, c.LogLikRatio)
	}
}

func TestClassifyTailSmallSampleUndetermined(t *testing.T) {
	c := ClassifyTail([]int{1, 2, 3})
	if c.Kind != TailUndetermined {
		t.Fatalf("tiny sample classified as %v", c.Kind)
	}
}

func TestClassifyTailDegenerate(t *testing.T) {
	deg := make([]int, 100)
	for i := range deg {
		deg[i] = 5
	}
	c := ClassifyTail(deg)
	// All-equal degrees: either undetermined or exponential is acceptable;
	// must not be power law.
	if c.Kind == TailPowerLaw {
		t.Fatal("constant degrees classified as power law")
	}
}

func TestFitPowerLawTinyTail(t *testing.T) {
	fit := FitPowerLaw([]int{5}, 1)
	if fit.NTail != 1 || fit.Alpha != 0 {
		t.Fatalf("tiny tail fit = %+v", fit)
	}
}

func TestFitPowerLawAutoPrefersTrueXMin(t *testing.T) {
	// Power law starting at 4 with noise below.
	deg := samplePowerLaw(5, 8000, 4, 2.3)
	deg = append(deg, 1, 1, 1, 2, 2, 3, 3, 3, 2, 1, 2, 3, 1, 2, 3)
	fit := FitPowerLawAuto(deg, 0)
	if fit.XMin < 2 || fit.XMin > 8 {
		t.Fatalf("auto xmin = %d, want near 4", fit.XMin)
	}
	if math.Abs(fit.Alpha-2.3) > 0.25 {
		t.Fatalf("auto alpha = %v, want ~2.3", fit.Alpha)
	}
}

func TestTailKindString(t *testing.T) {
	if TailPowerLaw.String() != "power-law" || TailExponential.String() != "exponential" || TailUndetermined.String() != "undetermined" {
		t.Fatal("TailKind strings wrong")
	}
}

func TestKSDistanceBounds(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		deg := samplePowerLaw(seed, 200, 1, 2.0)
		fit := FitPowerLaw(deg, 1)
		return fit.KS >= 0 && fit.KS <= 1
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
