// Package stats provides the statistical machinery the experiments use to
// characterize topologies: degree distributions and their CCDFs, discrete
// power-law and exponential tail fits with a likelihood-based classifier,
// clustering coefficients, and assortativity.
//
// The tail classifier is the load-bearing piece: the paper's claims are of
// the form "the resulting node degree distributions can be either
// exponential or of the power-law type" (FKP, §3.1) and "yields tree
// topologies with exponential node degree distributions" (§4.2). We decide
// between the two by maximum likelihood on the degree tail, following the
// approach popularized by Clauset, Shalizi & Newman (discrete power law
// MLE + KS distance) with a log-likelihood comparison against a geometric
// (discrete exponential) alternative.
package stats

import (
	"math"
	"sort"
)

// Summary holds basic moments of a sample.
type Summary struct {
	N              int
	Mean, Variance float64
	Min, Max       float64
	Median         float64
}

// Summarize computes summary statistics of xs. Zero value for empty input.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Variance = ss / float64(s.N-1)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if s.N%2 == 1 {
		s.Median = sorted[s.N/2]
	} else {
		s.Median = (sorted[s.N/2-1] + sorted[s.N/2]) / 2
	}
	return s
}

// DegreeHistogram counts occurrences of each degree value. Index k holds
// the number of nodes with degree k.
func DegreeHistogram(degrees []int) []int {
	max := 0
	for _, d := range degrees {
		if d > max {
			max = d
		}
	}
	h := make([]int, max+1)
	for _, d := range degrees {
		h[d]++
	}
	return h
}

// CCDFPoint is one point of a complementary CDF: the fraction of samples
// with value >= Value.
type CCDFPoint struct {
	Value int
	Frac  float64
}

// DegreeCCDF returns P(D >= k) for each distinct degree k present,
// ascending in k. The fractions are non-increasing and start at 1 when the
// minimum degree is included.
func DegreeCCDF(degrees []int) []CCDFPoint {
	if len(degrees) == 0 {
		return nil
	}
	h := DegreeHistogram(degrees)
	n := float64(len(degrees))
	var out []CCDFPoint
	remaining := float64(len(degrees))
	for k := 0; k < len(h); k++ {
		if h[k] > 0 {
			out = append(out, CCDFPoint{Value: k, Frac: remaining / n})
		}
		remaining -= float64(h[k])
	}
	return out
}

// TailKind classifies a degree tail.
type TailKind int

// Tail classifications reported by ClassifyTail.
const (
	TailUndetermined TailKind = iota
	TailPowerLaw
	TailExponential
)

// String names the tail kind.
func (k TailKind) String() string {
	switch k {
	case TailPowerLaw:
		return "power-law"
	case TailExponential:
		return "exponential"
	default:
		return "undetermined"
	}
}

// PowerLawFit is the result of a discrete power-law MLE on a degree tail.
type PowerLawFit struct {
	Alpha float64 // exponent of p(k) ~ k^-alpha for k >= XMin
	XMin  int     // tail start
	KS    float64 // Kolmogorov–Smirnov distance of tail fit
	NTail int     // number of samples in the tail
}

// FitPowerLaw fits a discrete power law to the tail of the degree sample
// for a fixed xmin, using the standard MLE approximation
// alpha = 1 + n / sum(ln(k / (xmin - 0.5))). Returns a zero fit when fewer
// than 2 tail samples exist.
func FitPowerLaw(degrees []int, xmin int) PowerLawFit {
	if xmin < 1 {
		xmin = 1
	}
	var tail []int
	for _, d := range degrees {
		if d >= xmin {
			tail = append(tail, d)
		}
	}
	if len(tail) < 2 {
		return PowerLawFit{XMin: xmin, NTail: len(tail)}
	}
	s := 0.0
	for _, d := range tail {
		s += math.Log(float64(d) / (float64(xmin) - 0.5))
	}
	alpha := 1 + float64(len(tail))/s
	fit := PowerLawFit{Alpha: alpha, XMin: xmin, NTail: len(tail)}
	fit.KS = ksDistancePowerLaw(tail, xmin, alpha)
	return fit
}

// FitPowerLawAuto selects xmin in [1, maxXMin] minimizing the KS distance
// (Clauset-style) and returns the corresponding fit. maxXMin <= 0 uses a
// default that keeps at least 10 samples in the tail.
func FitPowerLawAuto(degrees []int, maxXMin int) PowerLawFit {
	if len(degrees) == 0 {
		return PowerLawFit{}
	}
	maxDeg := 0
	for _, d := range degrees {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxXMin <= 0 || maxXMin > maxDeg {
		maxXMin = maxDeg
	}
	best := PowerLawFit{KS: math.Inf(1)}
	for xmin := 1; xmin <= maxXMin; xmin++ {
		f := FitPowerLaw(degrees, xmin)
		if f.NTail < 10 {
			break // tails only shrink as xmin grows
		}
		if !hasTwoDistinctAtLeast(degrees, xmin) {
			continue // single-support-point tail fits anything perfectly
		}
		if f.KS < best.KS {
			best = f
		}
	}
	if math.IsInf(best.KS, 1) {
		return FitPowerLaw(degrees, 1)
	}
	return best
}

// ksDistancePowerLaw computes the KS distance between the empirical tail
// CDF and the fitted discrete power law (normalized over observed support
// range, a standard practical approximation using the Hurwitz zeta
// truncated at a generous cap).
func ksDistancePowerLaw(tail []int, xmin int, alpha float64) float64 {
	maxDeg := 0
	for _, d := range tail {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Model CDF over [xmin, maxDeg] (truncated zeta normalization).
	weights := make([]float64, maxDeg-xmin+1)
	total := 0.0
	for k := xmin; k <= maxDeg; k++ {
		w := math.Pow(float64(k), -alpha)
		weights[k-xmin] = w
		total += w
	}
	modelCDF := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		modelCDF[i] = acc
	}
	// Empirical CDF.
	counts := make([]int, maxDeg-xmin+1)
	for _, d := range tail {
		counts[d-xmin]++
	}
	n := float64(len(tail))
	ks := 0.0
	accEmp := 0.0
	for i := range counts {
		accEmp += float64(counts[i]) / n
		if d := math.Abs(accEmp - modelCDF[i]); d > ks {
			ks = d
		}
	}
	return ks
}

// ExponentialFit is the result of a geometric (discrete exponential) MLE
// on a degree tail: P(k) ~ exp(-lambda * k) for k >= XMin.
type ExponentialFit struct {
	Lambda float64
	XMin   int
	KS     float64
	NTail  int
}

// FitExponential fits a geometric tail by MLE. For the shifted geometric
// with support {xmin, xmin+1, ...}, the MLE is
// lambda = ln(1 + 1/(mean(k) - xmin)).
func FitExponential(degrees []int, xmin int) ExponentialFit {
	if xmin < 1 {
		xmin = 1
	}
	var tail []int
	for _, d := range degrees {
		if d >= xmin {
			tail = append(tail, d)
		}
	}
	if len(tail) < 2 {
		return ExponentialFit{XMin: xmin, NTail: len(tail)}
	}
	mean := 0.0
	for _, d := range tail {
		mean += float64(d)
	}
	mean /= float64(len(tail))
	excess := mean - float64(xmin)
	if excess <= 0 {
		// Degenerate: all mass at xmin.
		return ExponentialFit{Lambda: math.Inf(1), XMin: xmin, NTail: len(tail)}
	}
	lambda := math.Log(1 + 1/excess)
	fit := ExponentialFit{Lambda: lambda, XMin: xmin, NTail: len(tail)}
	fit.KS = ksDistanceGeometric(tail, xmin, lambda)
	return fit
}

func ksDistanceGeometric(tail []int, xmin int, lambda float64) float64 {
	maxDeg := 0
	for _, d := range tail {
		if d > maxDeg {
			maxDeg = d
		}
	}
	q := math.Exp(-lambda)
	counts := make([]int, maxDeg-xmin+1)
	for _, d := range tail {
		counts[d-xmin]++
	}
	n := float64(len(tail))
	ks := 0.0
	accEmp := 0.0
	// Geometric CDF on shifted support: P(K <= k) = 1 - q^(k-xmin+1).
	for i := range counts {
		accEmp += float64(counts[i]) / n
		model := 1 - math.Pow(q, float64(i+1))
		if d := math.Abs(accEmp - model); d > ks {
			ks = d
		}
	}
	return ks
}

// TailClassification is the outcome of comparing power-law and exponential
// fits on the same tail.
type TailClassification struct {
	Kind        TailKind
	PowerLaw    PowerLawFit
	Exponential ExponentialFit
	// LogLikRatio is sum log pPL - sum log pExp over the common tail.
	// Positive favours the power law.
	LogLikRatio float64
}

// FitExponentialAuto selects xmin in [1, maxXMin] minimizing the KS
// distance of the geometric tail fit (the same scan FitPowerLawAuto uses
// for the power law) and returns the corresponding fit.
func FitExponentialAuto(degrees []int, maxXMin int) ExponentialFit {
	if len(degrees) == 0 {
		return ExponentialFit{}
	}
	maxDeg := 0
	for _, d := range degrees {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxXMin <= 0 || maxXMin > maxDeg {
		maxXMin = maxDeg
	}
	best := ExponentialFit{KS: math.Inf(1)}
	for xmin := 1; xmin <= maxXMin; xmin++ {
		f := FitExponential(degrees, xmin)
		if f.NTail < 10 {
			break // tails only shrink as xmin grows
		}
		if math.IsInf(f.Lambda, 1) || !hasTwoDistinctAtLeast(degrees, xmin) {
			continue // degenerate point mass
		}
		if f.KS < best.KS {
			best = f
		}
	}
	if math.IsInf(best.KS, 1) {
		return FitExponential(degrees, 1)
	}
	return best
}

// ClassifyTail decides whether the degree distribution looks more like a
// power law or an exponential (geometric). Both models get the same
// treatment: a Clauset-style xmin scan minimizing the KS distance of
// their own tail fit; the model whose best fit tracks the data more
// closely (smaller KS) wins. This symmetric rule is robust where a
// one-sided Clauset comparison is not — a deep, tiny tail can locally
// prefer a power law even when the whole distribution is near-perfectly
// geometric, and a support floor (e.g. min degree 2 in BA graphs) ruins
// full-support likelihood comparisons.
//
// LogLikRatio reports the total log-likelihood difference of the two
// models fit at the common support floor (the minimum observed degree),
// positive favouring the power law; it is diagnostic output, not the
// decision criterion. Small or degenerate samples are TailUndetermined.
func ClassifyTail(degrees []int) TailClassification {
	pl := FitPowerLawAuto(degrees, 0)
	exp := FitExponentialAuto(degrees, 0)
	out := TailClassification{PowerLaw: pl, Exponential: exp}
	if pl.NTail < 10 || exp.NTail < 10 {
		out.Kind = TailUndetermined
		return out
	}
	// Diagnostic likelihood ratio at the common support floor.
	minDeg, maxDeg := degrees[0], degrees[0]
	for _, d := range degrees {
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	if minDeg < 1 {
		minDeg = 1
	}
	plFloor := FitPowerLaw(degrees, minDeg)
	expFloor := FitExponential(degrees, minDeg)
	if plFloor.NTail >= 10 && !math.IsInf(expFloor.Lambda, 1) && plFloor.Alpha > 1 {
		zPL, zExp := 0.0, 0.0
		for k := minDeg; k <= maxDeg; k++ {
			zPL += math.Pow(float64(k), -plFloor.Alpha)
			zExp += math.Exp(-expFloor.Lambda * float64(k-minDeg))
		}
		for _, d := range degrees {
			if d < minDeg {
				continue
			}
			lpPL := -plFloor.Alpha*math.Log(float64(d)) - math.Log(zPL)
			lpExp := -expFloor.Lambda*float64(d-minDeg) - math.Log(zExp)
			out.LogLikRatio += lpPL - lpExp
		}
	}
	if math.IsInf(exp.Lambda, 1) {
		// Degenerate point mass: certainly not a power law.
		out.Kind = TailExponential
		return out
	}
	if pl.KS < exp.KS {
		out.Kind = TailPowerLaw
	} else {
		out.Kind = TailExponential
	}
	return out
}

// hasTwoDistinctAtLeast reports whether the sample restricted to values
// >= xmin contains at least two distinct values — i.e. a tail a
// distribution fit can actually be tested on.
func hasTwoDistinctAtLeast(degrees []int, xmin int) bool {
	first := -1
	for _, d := range degrees {
		if d < xmin {
			continue
		}
		if first == -1 {
			first = d
		} else if d != first {
			return true
		}
	}
	return false
}
