package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFitExponentialAutoRecovers(t *testing.T) {
	deg := sampleGeometric(11, 10000, 1, 0.4)
	fit := FitExponentialAuto(deg, 0)
	if fit.NTail < 10 {
		t.Fatalf("auto fit tail too small: %d", fit.NTail)
	}
	if math.Abs(fit.Lambda-0.4) > 0.08 {
		t.Fatalf("auto lambda = %v, want ~0.4", fit.Lambda)
	}
	if fit.KS > 0.05 {
		t.Fatalf("auto KS = %v, too large for a true geometric", fit.KS)
	}
}

func TestFitExponentialAutoEmpty(t *testing.T) {
	fit := FitExponentialAuto(nil, 0)
	if fit.NTail != 0 {
		t.Fatalf("empty input fit = %+v", fit)
	}
}

func TestFitExponentialAutoDegenerate(t *testing.T) {
	deg := make([]int, 50)
	for i := range deg {
		deg[i] = 3
	}
	fit := FitExponentialAuto(deg, 0)
	// Every scanned xmin is degenerate (single support point), so the
	// fallback xmin=1 fit is returned; it must still be well-formed.
	if fit.XMin != 1 || fit.NTail != 50 {
		t.Fatalf("degenerate fallback fit = %+v, want xmin=1 over all samples", fit)
	}
	if math.IsNaN(fit.Lambda) {
		t.Fatal("fallback lambda is NaN")
	}
}

func TestHasTwoDistinctAtLeast(t *testing.T) {
	if hasTwoDistinctAtLeast([]int{5, 5, 5}, 1) {
		t.Fatal("all-equal should be false")
	}
	if !hasTwoDistinctAtLeast([]int{5, 6}, 1) {
		t.Fatal("two values should be true")
	}
	if hasTwoDistinctAtLeast([]int{1, 2, 9}, 9) {
		t.Fatal("single value above xmin should be false")
	}
	if hasTwoDistinctAtLeast(nil, 1) {
		t.Fatal("empty should be false")
	}
}

func TestClassifyTailMixtureRobustness(t *testing.T) {
	// A geometric bulk plus a handful of outliers must not flip the
	// verdict to power law: this is the exact failure mode the symmetric
	// KS rule was introduced for.
	deg := sampleGeometric(12, 5000, 1, 0.6)
	deg = append(deg, 40, 45, 50) // 3 freak hubs out of 5000
	c := ClassifyTail(deg)
	if c.Kind != TailExponential {
		t.Fatalf("geometric + 3 outliers classified %v", c.Kind)
	}
}

func TestClassifyTailSupportFloorTwo(t *testing.T) {
	// Power law with support starting at 2 (BA-like): the full-support
	// comparison would fail here; the symmetric rule must not.
	deg := samplePowerLaw(13, 5000, 2, 2.6)
	c := ClassifyTail(deg)
	if c.Kind != TailPowerLaw {
		t.Fatalf("floor-2 power law classified %v", c.Kind)
	}
}

func TestClassifyTailReportsBothFits(t *testing.T) {
	deg := sampleGeometric(14, 2000, 1, 0.5)
	c := ClassifyTail(deg)
	if c.Exponential.NTail == 0 || c.PowerLaw.NTail == 0 {
		t.Fatal("classification must report both fits")
	}
	if c.LogLikRatio == 0 {
		t.Fatal("log-likelihood ratio should be reported")
	}
}

func TestClassifyTailDeterministic(t *testing.T) {
	r := rng.New(15)
	deg := make([]int, 500)
	for i := range deg {
		deg[i] = 1 + r.Intn(20)
	}
	a := ClassifyTail(deg)
	b := ClassifyTail(deg)
	if a.Kind != b.Kind || a.LogLikRatio != b.LogLikRatio {
		t.Fatal("classification not deterministic")
	}
}
