package stats

import (
	"math"

	"repro/internal/graph"
)

// ClusteringCoefficient returns the average local clustering coefficient:
// for each node with degree >= 2, the fraction of neighbour pairs that are
// themselves adjacent, averaged over such nodes. Returns 0 when no node
// has degree >= 2. Parallel edges are collapsed for the purpose of
// counting distinct neighbours.
func ClusteringCoefficient(g *graph.Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	// Build deduplicated neighbour sets once.
	nbrs := make([]map[int]bool, n)
	for u := 0; u < n; u++ {
		set := make(map[int]bool)
		g.Neighbors(u, func(v, _ int) {
			set[v] = true
		})
		nbrs[u] = set
	}
	total := 0.0
	counted := 0
	for u := 0; u < n; u++ {
		deg := len(nbrs[u])
		if deg < 2 {
			continue
		}
		links := 0
		// Count edges among neighbours.
		neighbors := make([]int, 0, deg)
		for v := range nbrs[u] {
			neighbors = append(neighbors, v)
		}
		for i := 0; i < len(neighbors); i++ {
			for j := i + 1; j < len(neighbors); j++ {
				if nbrs[neighbors[i]][neighbors[j]] {
					links++
				}
			}
		}
		total += 2 * float64(links) / (float64(deg) * float64(deg-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// DegreeAssortativity returns the Pearson correlation of degrees at edge
// endpoints (Newman's r). Returns 0 for graphs where it is undefined
// (fewer than 2 edges or zero variance).
func DegreeAssortativity(g *graph.Graph) float64 {
	m := g.NumEdges()
	if m < 2 {
		return 0
	}
	deg := g.Degrees()
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	for _, e := range g.Edges() {
		// Each undirected edge contributes both orientations so the
		// statistic is symmetric.
		x, y := float64(deg[e.U]), float64(deg[e.V])
		sumXY += 2 * x * y
		sumX += x + y
		sumY += x + y
		sumX2 += x*x + y*y
		sumY2 += x*x + y*y
	}
	n := float64(2 * m)
	cov := sumXY/n - (sumX/n)*(sumY/n)
	varX := sumX2/n - (sumX/n)*(sumX/n)
	varY := sumY2/n - (sumY/n)*(sumY/n)
	if varX <= 0 || varY <= 0 {
		return 0
	}
	return cov / math.Sqrt(varX*varY)
}

// GraphDegreeStats bundles the degree-tail characterization of a graph.
type GraphDegreeStats struct {
	Degrees        []int
	MaxDegree      int
	MeanDegree     float64
	Classification TailClassification
	TopDegreeFrac  float64 // max degree / (n-1): 1.0 means a perfect star hub
}

// AnalyzeDegrees computes the degree-tail statistics of g.
func AnalyzeDegrees(g *graph.Graph) GraphDegreeStats {
	deg := g.Degrees()
	out := GraphDegreeStats{Degrees: deg}
	if len(deg) == 0 {
		return out
	}
	sum := 0
	for _, d := range deg {
		sum += d
		if d > out.MaxDegree {
			out.MaxDegree = d
		}
	}
	out.MeanDegree = float64(sum) / float64(len(deg))
	if len(deg) > 1 {
		out.TopDegreeFrac = float64(out.MaxDegree) / float64(len(deg)-1)
	}
	out.Classification = ClassifyTail(deg)
	return out
}
