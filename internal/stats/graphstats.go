package stats

import (
	"repro/internal/graph"
	"repro/internal/metricreg"
)

// ClusteringCoefficient returns the average local clustering coefficient:
// for each node with degree >= 2, the fraction of neighbour pairs that are
// themselves adjacent, averaged over such nodes. Returns 0 when no node
// has degree >= 2. Parallel edges are collapsed for the purpose of
// counting distinct neighbours.
//
// Thin composition over the metric registry: the implementation is the
// registered "clustering" metric (internal/metricreg), so scenario
// metric sets and this free function share one code path.
func ClusteringCoefficient(g *graph.Graph) float64 {
	return metricreg.Scalar("clustering", g)
}

// DegreeAssortativity returns the Pearson correlation of degrees at edge
// endpoints (Newman's r). Returns 0 for graphs where it is undefined
// (fewer than 2 edges or zero variance). It is the registered
// "assortativity" metric of internal/metricreg.
func DegreeAssortativity(g *graph.Graph) float64 {
	return metricreg.Scalar("assortativity", g)
}

// GraphDegreeStats bundles the degree-tail characterization of a graph.
type GraphDegreeStats struct {
	Degrees        []int
	MaxDegree      int
	MeanDegree     float64
	Classification TailClassification
	TopDegreeFrac  float64 // max degree / (n-1): 1.0 means a perfect star hub
}

// AnalyzeDegrees computes the degree-tail statistics of g.
func AnalyzeDegrees(g *graph.Graph) GraphDegreeStats {
	deg := g.Degrees()
	out := GraphDegreeStats{Degrees: deg}
	if len(deg) == 0 {
		return out
	}
	sum := 0
	for _, d := range deg {
		sum += d
		if d > out.MaxDegree {
			out.MaxDegree = d
		}
	}
	out.MeanDegree = float64(sum) / float64(len(deg))
	if len(deg) > 1 {
		out.TopDegreeFrac = float64(out.MaxDegree) / float64(len(deg)-1)
	}
	out.Classification = ClassifyTail(deg)
	return out
}
