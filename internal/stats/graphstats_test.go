package stats

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func completeGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
		}
	}
	return g
}

func star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.Edge{U: 0, V: i, Weight: 1})
	}
	return g
}

func TestClusteringCompleteGraph(t *testing.T) {
	if c := ClusteringCoefficient(completeGraph(6)); math.Abs(c-1) > 1e-12 {
		t.Fatalf("complete graph clustering = %v, want 1", c)
	}
}

func TestClusteringStar(t *testing.T) {
	if c := ClusteringCoefficient(star(8)); c != 0 {
		t.Fatalf("star clustering = %v, want 0", c)
	}
}

func TestClusteringTriangleWithPendant(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1})
	g.AddEdge(graph.Edge{U: 1, V: 2})
	g.AddEdge(graph.Edge{U: 2, V: 0})
	g.AddEdge(graph.Edge{U: 2, V: 3})
	// Node 0: 1; node 1: 1; node 2: deg 3 with 1 of 3 pairs linked = 1/3;
	// node 3: degree 1, excluded. Average = (1 + 1 + 1/3)/3.
	want := (1.0 + 1.0 + 1.0/3.0) / 3.0
	if c := ClusteringCoefficient(g); math.Abs(c-want) > 1e-12 {
		t.Fatalf("clustering = %v, want %v", c, want)
	}
}

func TestClusteringEmptyAndTiny(t *testing.T) {
	if c := ClusteringCoefficient(graph.New(0)); c != 0 {
		t.Fatal("empty graph clustering should be 0")
	}
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	g.AddEdge(graph.Edge{U: 0, V: 1})
	if c := ClusteringCoefficient(g); c != 0 {
		t.Fatal("single-edge graph clustering should be 0")
	}
}

func TestAssortativityStarNegative(t *testing.T) {
	// Stars are maximally disassortative: r = -1.
	r := DegreeAssortativity(star(10))
	if math.Abs(r+1) > 1e-9 {
		t.Fatalf("star assortativity = %v, want -1", r)
	}
}

func TestAssortativityRegularUndefined(t *testing.T) {
	// In a cycle all degrees equal: zero variance → report 0.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddNode(graph.Node{})
	}
	for i := 0; i < 5; i++ {
		g.AddEdge(graph.Edge{U: i, V: (i + 1) % 5})
	}
	if r := DegreeAssortativity(g); r != 0 {
		t.Fatalf("regular graph assortativity = %v, want 0", r)
	}
}

func TestAssortativityBounds(t *testing.T) {
	g := completeGraph(5)
	g.AddNode(graph.Node{})
	g.AddEdge(graph.Edge{U: 0, V: 5})
	r := DegreeAssortativity(g)
	if r < -1-1e-9 || r > 1+1e-9 {
		t.Fatalf("assortativity %v out of [-1,1]", r)
	}
}

func TestAnalyzeDegreesStar(t *testing.T) {
	s := AnalyzeDegrees(star(100))
	if s.MaxDegree != 99 {
		t.Fatalf("MaxDegree = %d", s.MaxDegree)
	}
	if math.Abs(s.TopDegreeFrac-1) > 1e-12 {
		t.Fatalf("TopDegreeFrac = %v, want 1 for a star", s.TopDegreeFrac)
	}
	wantMean := 2 * 99.0 / 100.0
	if math.Abs(s.MeanDegree-wantMean) > 1e-12 {
		t.Fatalf("MeanDegree = %v, want %v", s.MeanDegree, wantMean)
	}
}

func TestAnalyzeDegreesEmpty(t *testing.T) {
	s := AnalyzeDegrees(graph.New(0))
	if s.MaxDegree != 0 || s.TopDegreeFrac != 0 {
		t.Fatalf("empty analysis = %+v", s)
	}
}
