package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/attackreg"
	"repro/internal/errs"
	"repro/internal/metricreg"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/robust"
	"repro/internal/trafficreg"
)

// GenerateSpec names a registered generator and its parameters.
type GenerateSpec struct {
	Model  string `json:"model"`
	Params Params `json:"params,omitempty"`
}

// MetricSelection names one registry metric with optional parameters
// (internal/metricreg).
type MetricSelection = metricreg.Selection

// MeasureSpec selects measurement families. An empty spec ({}) measures
// the full profile.
type MeasureSpec struct {
	// Profile computes the [30]-style comparison profile (expansion,
	// resilience, distortion, hierarchy depth, spectral gap).
	Profile bool `json:"profile,omitempty"`
	// Degrees computes degree statistics and the power-law vs
	// exponential tail classification.
	Degrees bool `json:"degrees,omitempty"`
	// Metrics names an arbitrary metric set from the metric registry
	// (with optional per-metric params), evaluated as one fused
	// schedule on the shared frozen snapshot. Run `topostats -list`
	// for the available names.
	Metrics []MetricSelection `json:"metrics,omitempty"`
}

// wantProfile reports whether the spec implies the default profile
// family: asked for explicitly, or nothing else selected.
func (m *MeasureSpec) wantProfile() bool {
	return m.Profile || (!m.Degrees && len(m.Metrics) == 0)
}

// RouteSpec evaluates the topology under a random traffic matrix.
type RouteSpec struct {
	// Demands is the number of random source/destination pairs.
	Demands int `json:"demands"`
	// Volume is the offered volume per demand (default 1).
	Volume float64 `json:"volume,omitempty"`
	// Mode is "shortest" (default), "capacitated", or "maxmin".
	Mode string `json:"mode,omitempty"`
}

// TrafficSpec evaluates the topology under a registry demand model
// (internal/trafficreg): the highest-degree nodes become traffic sites,
// the named model generates the site-to-site demand matrix, and the
// resulting demands are routed and allocated max-min fairly with
// volume ceilings. The CapTraffic metric set (throughput,
// max-utilization, jain, delivered-frac) summarizes the allocation.
type TrafficSpec struct {
	// Model is a traffic-registry name — run `toposcenario -list` for
	// the full set; e.g. "gravity" (default), "uniform", "zipf-hotspot",
	// "bimodal", "single-epicenter".
	Model string `json:"model,omitempty"`
	// Params are the model's parameters (e.g. gravity {"exponent": 2}),
	// validated against its declared specs.
	Params Params `json:"params,omitempty"`
	// Sites is how many top-degree nodes exchange traffic (default 16;
	// clamped to the node count).
	Sites int `json:"sites,omitempty"`
	// Capacity is substituted for every edge without provisioned
	// capacity before allocating, so generated-but-unprovisioned
	// topologies are evaluated as unit-capacity networks (default 1;
	// negative keeps raw zero capacities).
	Capacity float64 `json:"capacity,omitempty"`
}

// AttackSpec runs a robustness sweep through the attack registry
// (internal/attackreg).
type AttackSpec struct {
	// Strategy is an attack-registry name — run `topoattack -list` for
	// the full set; e.g. "random-failure" (default), "degree",
	// "adaptive-degree", "betweenness", "geographic", "preferential",
	// "random-edge", "bottleneck-edge". Legacy aliases ("random",
	// "degree-attack", ...) keep validating.
	Strategy string `json:"strategy,omitempty"`
	// Params are the attack's parameters (e.g. geographic epicenter
	// {"x": 0.2, "y": 0.8}), validated against its declared specs.
	Params Params `json:"params,omitempty"`
	// Fracs are the removal fractions in [0, 1] (default 0.05, 0.1,
	// 0.2); 1 removes the whole schedule.
	Fracs []float64 `json:"fracs,omitempty"`
	// Trials averages randomized attacks (default 3; deterministic
	// attacks always use one pass).
	Trials int `json:"trials,omitempty"`
}

// Scenario is one declarative unit of work: generate a topology, then
// optionally measure, route, and attack it, replicated over seeds. The
// value round-trips through JSON; running the unmarshaled copy produces
// byte-identical output.
type Scenario struct {
	Name     string       `json:"name,omitempty"`
	Generate GenerateSpec `json:"generate"`
	Measure  *MeasureSpec `json:"measure,omitempty"`
	Route    *RouteSpec   `json:"route,omitempty"`
	Traffic  *TrafficSpec `json:"traffic,omitempty"`
	Attack   *AttackSpec  `json:"attack,omitempty"`
	// Seeds are explicit per-replication seeds; Reps pads beyond them
	// with seeds derived from the last explicit one (or, with no Seeds,
	// from the generator's "seed" parameter). One replication with the
	// generator's seed runs when both are empty.
	Seeds []int64 `json:"seeds,omitempty"`
	Reps  int     `json:"reps,omitempty"`
}

// NumReps is the replication count implied by Seeds and Reps.
func (s *Scenario) NumReps() int {
	n := s.Reps
	if len(s.Seeds) > n {
		n = len(s.Seeds)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SeedFor returns replication rep's seed: the explicit Seeds entry when
// one exists, otherwise a deterministic derivation from the last
// explicit seed. Without any Seeds, the base is the generator's "seed"
// parameter (default 1), and replication 0 uses it verbatim — so a
// spec that only says params{"seed": 42} runs exactly the topology
// `topogen -seed 42` generates.
func (s *Scenario) SeedFor(rep int) int64 {
	if rep < len(s.Seeds) {
		return s.Seeds[rep]
	}
	base := int64(1)
	if len(s.Seeds) > 0 {
		base = s.Seeds[len(s.Seeds)-1]
	} else {
		if v, ok := s.Generate.Params["seed"]; ok {
			base = int64(v)
		}
		if rep == 0 {
			return base
		}
	}
	return rng.Derive(base, rep)
}

// Validate checks the scenario against a registry: the model must
// resolve, its params must validate, and every stage spec must be
// well-formed. Errors wrap errs.ErrBadParam.
func (s *Scenario) Validate(reg *Registry) error {
	_, _, err := s.prepare(reg)
	return err
}

// prepare is Validate plus the execution inputs: the resolved generator
// and its complete parameter set. The engine runs exactly what
// validation checked.
func (s *Scenario) prepare(reg *Registry) (Generator, Params, error) {
	g, err := reg.Lookup(s.Generate.Model)
	if err != nil {
		return nil, nil, err
	}
	resolved, err := Resolve(g, s.Generate.Params)
	if err != nil {
		return nil, nil, err
	}
	if err := s.checkStages(); err != nil {
		return nil, nil, err
	}
	return g, resolved, nil
}

func (s *Scenario) checkStages() error {
	if m := s.Measure; m != nil && len(m.Metrics) > 0 {
		seen := map[string]bool{}
		for _, sel := range m.Metrics {
			mt, err := metricreg.Lookup(sel.Name)
			if err != nil {
				return err
			}
			if seen[sel.Name] {
				return errs.BadParamf("scenario %q: duplicate metric %q", s.describe(), sel.Name)
			}
			seen[sel.Name] = true
			// The measure stage's source never carries a demand set, so
			// a traffic-capable metric there could only fail per-rep at
			// runtime; reject it up front.
			if mt.Caps()&metricreg.CapTraffic != 0 {
				return errs.BadParamf("scenario %q: metric %q needs a demand set — use the traffic stage, not measure.metrics", s.describe(), sel.Name)
			}
			if _, err := metricreg.Resolve(mt, sel.Params); err != nil {
				return err
			}
		}
	}
	if s.Route != nil {
		if s.Route.Demands < 1 {
			return errs.BadParamf("scenario %q: route stage needs demands >= 1", s.describe())
		}
		switch s.Route.Mode {
		case "", "shortest", "capacitated", "maxmin":
		default:
			return errs.BadParamf("scenario %q: unknown route mode %q", s.describe(), s.Route.Mode)
		}
		if s.Route.Volume < 0 {
			return errs.BadParamf("scenario %q: negative route volume", s.describe())
		}
	}
	if s.Traffic != nil {
		dm, err := trafficreg.Lookup(s.Traffic.Model)
		if err != nil {
			return err
		}
		if _, err := trafficreg.Resolve(dm, s.Traffic.Params); err != nil {
			return err
		}
		if s.Traffic.Sites < 0 || s.Traffic.Sites == 1 {
			return errs.BadParamf("scenario %q: traffic stage needs sites >= 2 (or 0 for the default)", s.describe())
		}
		if math.IsNaN(s.Traffic.Capacity) || math.IsInf(s.Traffic.Capacity, 0) {
			return errs.BadParamf("scenario %q: traffic capacity %v", s.describe(), s.Traffic.Capacity)
		}
	}
	if s.Attack != nil {
		atk, err := attackreg.Lookup(s.Attack.Strategy)
		if err != nil {
			return err
		}
		if _, err := attackreg.Resolve(atk, s.Attack.Params); err != nil {
			return err
		}
		for _, f := range s.Attack.Fracs {
			if f < 0 || f > 1 {
				return errs.BadParamf("scenario %q: attack fraction %v out of [0,1]", s.describe(), f)
			}
		}
		if s.Attack.Trials < 0 {
			return errs.BadParamf("scenario %q: negative attack trials", s.describe())
		}
	}
	if s.Reps < 0 {
		return errs.BadParamf("scenario %q: negative reps", s.describe())
	}
	return nil
}

func (s *Scenario) describe() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Generate.Model
}

// identityKey is the cache key of one generated topology: the model, the
// fully-resolved parameter set in sorted-name order, and the effective
// seed. Two scenarios that generate the same topology — whatever their
// measure/route/attack stages — share one frozen snapshot.
func identityKey(model string, resolved Params, seed int64) string {
	names := make([]string, 0, len(resolved))
	for name := range resolved {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(model)
	for _, name := range names {
		if name == "seed" {
			continue
		}
		b.WriteByte('|')
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(resolved[name], 'g', -1, 64))
	}
	fmt.Fprintf(&b, "|seed=%d", seed)
	return b.String()
}

// ParseSpec decodes a scenario spec document: a single Scenario object,
// a JSON array of them, or {"scenarios": [...]}. Unknown fields are
// rejected so typos in stage names fail loudly instead of silently
// skipping work.
func ParseSpec(data []byte) ([]Scenario, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, errs.BadParamf("scenario: empty spec")
	}
	strict := func(raw []byte, v any) error {
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		return dec.Decode(v)
	}
	if strings.HasPrefix(trimmed, "[") {
		var out []Scenario
		if err := strict(data, &out); err != nil {
			return nil, errs.BadParamf("scenario: parse spec array: %v", err)
		}
		return out, nil
	}
	var batch struct {
		Scenarios []Scenario `json:"scenarios"`
	}
	if err := strict(data, &batch); err == nil && len(batch.Scenarios) > 0 {
		return batch.Scenarios, nil
	}
	var one Scenario
	if err := strict(data, &one); err != nil {
		return nil, errs.BadParamf("scenario: parse spec: %v", err)
	}
	return []Scenario{one}, nil
}

// DegreeSummary is the measure stage's degree-family output.
type DegreeSummary struct {
	MeanDegree float64 `json:"mean_degree"`
	MaxDegree  int     `json:"max_degree"`
	Tail       string  `json:"tail"`
}

// RouteSummary is the route stage's output.
type RouteSummary struct {
	Mode           string  `json:"mode"`
	Delivered      float64 `json:"delivered"`
	Dropped        float64 `json:"dropped"`
	MaxUtilization float64 `json:"max_utilization"`
	AvgHops        float64 `json:"avg_hops"`
	// Jain is the fairness index; only the maxmin mode fills it.
	Jain float64 `json:"jain,omitempty"`
}

// TrafficSummary is the traffic stage's output: the CapTraffic metric
// set evaluated on the registry-generated demand set.
type TrafficSummary struct {
	// Model is the canonical demand-model name that generated the
	// demands.
	Model string `json:"model"`
	// Sites and Demands describe the generated demand set: top-degree
	// traffic sites and positive-volume site pairs.
	Sites   int `json:"sites"`
	Demands int `json:"demands"`
	// Offered is the total offered volume; Throughput the volume-aware
	// max-min fair allocation's total rate; DeliveredFrac their ratio.
	Offered       float64 `json:"offered"`
	Throughput    float64 `json:"throughput"`
	DeliveredFrac float64 `json:"delivered_frac"`
	// MaxUtilization is max load/capacity under shortest-path routing
	// of the full offered volumes (-1 when a loaded edge has no
	// capacity).
	MaxUtilization float64 `json:"max_utilization"`
	// Jain is the fairness index over the allocated rates.
	Jain float64 `json:"jain"`
}

// RepResult is one replication's output.
type RepResult struct {
	Seed    int64                      `json:"seed"`
	Nodes   int                        `json:"nodes"`
	Edges   int                        `json:"edges"`
	Profile *metrics.Profile           `json:"profile,omitempty"`
	Degrees *DegreeSummary             `json:"degrees,omitempty"`
	Metrics map[string]metricreg.Value `json:"metrics,omitempty"`
	Route   *RouteSummary              `json:"route,omitempty"`
	Traffic *TrafficSummary            `json:"traffic,omitempty"`
	Attack  []robust.SweepPoint        `json:"attack,omitempty"`
}

// Result is one scenario's full output: a RepResult per replication, in
// replication order regardless of worker count.
type Result struct {
	Scenario Scenario    `json:"scenario"`
	Reps     []RepResult `json:"reps"`
	// Partial marks a result cut short by cancellation or error: Reps
	// then holds only the contiguous prefix of replications that
	// completed. Complete runs never set it, so its absence in JSON is
	// the completeness marker.
	Partial bool `json:"partial,omitempty"`
}

// Format renders the result as an aligned text table whose bytes are
// identical for any Engine worker count.
func (r *Result) Format() string {
	var b strings.Builder
	partial := ""
	if r.Partial {
		partial = ", PARTIAL"
	}
	fmt.Fprintf(&b, "scenario %s (model=%s, reps=%d%s)\n",
		r.Scenario.describe(), r.Scenario.Generate.Model, len(r.Reps), partial)
	header := []string{"rep", "seed", "nodes", "edges"}
	if r.Scenario.Measure != nil {
		m := r.Scenario.Measure
		if m.wantProfile() {
			header = append(header, "exp@3", "resil", "distort", "hier", "gap")
		}
		if m.Degrees {
			header = append(header, "meandeg", "maxdeg", "tail")
		}
		for _, sel := range m.Metrics {
			header = append(header, sel.Name)
		}
	}
	if r.Scenario.Route != nil {
		header = append(header, "mode", "delivered", "dropped", "maxutil", "avghops", "jain")
	}
	if r.Scenario.Traffic != nil {
		header = append(header, "tmodel", "tsites", "tput", "tdeliv", "tmaxutil", "tjain")
	}
	if r.Scenario.Attack != nil {
		header = append(header, "lcc@fracs")
	}
	rows := make([][]string, 0, len(r.Reps))
	for i, rep := range r.Reps {
		row := []string{
			strconv.Itoa(i),
			strconv.FormatInt(rep.Seed, 10),
			strconv.Itoa(rep.Nodes),
			strconv.Itoa(rep.Edges),
		}
		if rep.Profile != nil {
			row = append(row,
				f4(rep.Profile.ExpansionAt3), f4(rep.Profile.Resilience),
				f4(rep.Profile.Distortion), f4(rep.Profile.HierarchyDepth),
				f4(rep.Profile.SpectralGap))
		}
		if rep.Degrees != nil {
			row = append(row, f4(rep.Degrees.MeanDegree),
				strconv.Itoa(rep.Degrees.MaxDegree), rep.Degrees.Tail)
		}
		if r.Scenario.Measure != nil {
			for _, sel := range r.Scenario.Measure.Metrics {
				row = append(row, f4(rep.Metrics[sel.Name].Scalar))
			}
		}
		if rep.Route != nil {
			row = append(row, rep.Route.Mode,
				f4(rep.Route.Delivered), f4(rep.Route.Dropped),
				f4(rep.Route.MaxUtilization), f4(rep.Route.AvgHops),
				f4(rep.Route.Jain))
		}
		if rep.Traffic != nil {
			row = append(row, rep.Traffic.Model,
				strconv.Itoa(rep.Traffic.Sites),
				f4(rep.Traffic.Throughput), f4(rep.Traffic.DeliveredFrac),
				f4(rep.Traffic.MaxUtilization), f4(rep.Traffic.Jain))
		}
		if rep.Attack != nil {
			cells := make([]string, len(rep.Attack))
			for k, pt := range rep.Attack {
				cells[k] = fmt.Sprintf("%g:%s", pt.FracRemoved, f4(pt.LCCFrac))
			}
			row = append(row, strings.Join(cells, " "))
		}
		rows = append(rows, row)
	}
	writeAligned(&b, header, rows)
	return b.String()
}

func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func writeAligned(b *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}
