package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/attackreg"
	"repro/internal/errs"
	"repro/internal/metricreg"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/robust"
	"repro/internal/trafficreg"
)

// GenerateSpec names a registered generator and its parameters.
type GenerateSpec struct {
	Model  string `json:"model"`
	Params Params `json:"params,omitempty"`
}

// MetricSelection names one registry metric with optional parameters
// (internal/metricreg).
type MetricSelection = metricreg.Selection

// MeasureSpec selects measurement families. An empty spec ({}) measures
// the full profile.
type MeasureSpec struct {
	// Profile computes the [30]-style comparison profile (expansion,
	// resilience, distortion, hierarchy depth, spectral gap).
	Profile bool `json:"profile,omitempty"`
	// Degrees computes degree statistics and the power-law vs
	// exponential tail classification.
	Degrees bool `json:"degrees,omitempty"`
	// Metrics names an arbitrary metric set from the metric registry
	// (with optional per-metric params), evaluated as one fused
	// schedule on the shared frozen snapshot. Run `topostats -list`
	// for the available names.
	Metrics []MetricSelection `json:"metrics,omitempty"`
}

// wantProfile reports whether the spec implies the default profile
// family: asked for explicitly, or nothing else selected.
func (m *MeasureSpec) wantProfile() bool {
	return m.Profile || (!m.Degrees && len(m.Metrics) == 0)
}

// RouteSpec evaluates the topology under a random traffic matrix.
type RouteSpec struct {
	// Demands is the number of random source/destination pairs.
	Demands int `json:"demands"`
	// Volume is the offered volume per demand (default 1).
	Volume float64 `json:"volume,omitempty"`
	// Mode is "shortest" (default), "capacitated", or "maxmin".
	Mode string `json:"mode,omitempty"`
}

// TrafficSpec evaluates the topology under a registry demand model
// (internal/trafficreg): the highest-degree nodes become traffic sites,
// the named model generates the site-to-site demand matrix, and the
// resulting demands are routed and allocated max-min fairly with
// volume ceilings. The CapTraffic metric set (throughput,
// max-utilization, jain, delivered-frac) summarizes the allocation.
type TrafficSpec struct {
	// Model is a traffic-registry name — run `toposcenario -list` for
	// the full set; e.g. "gravity" (default), "uniform", "zipf-hotspot",
	// "bimodal", "single-epicenter".
	Model string `json:"model,omitempty"`
	// Params are the model's parameters (e.g. gravity {"exponent": 2}),
	// validated against its declared specs.
	Params Params `json:"params,omitempty"`
	// Sites is how many top-degree nodes exchange traffic (default 16;
	// clamped to the node count).
	Sites int `json:"sites,omitempty"`
	// Capacity is substituted for every edge without provisioned
	// capacity before allocating, so generated-but-unprovisioned
	// topologies are evaluated as unit-capacity networks (default 1;
	// negative keeps raw zero capacities).
	Capacity float64 `json:"capacity,omitempty"`
}

// TimelineEventSpec is one ordered event of a timeline. The event
// vocabulary:
//
//   - "fail-node" (node): the node and its incident edges go down.
//   - "fail-edge" (edge): one edge goes down; endpoints stay up.
//   - "repair" (node or edge): the failed item comes back. Repairing a
//     node restores its incident edges except those individually failed
//     or attached to a failed neighbor.
//   - "capacity-set" (edge, capacity): the edge's provisioned capacity
//     changes; connectivity is untouched and the traffic metric set is
//     re-evaluated.
//   - "demand-switch" (model, params): the traffic demand model
//     switches (e.g. bimodal peak → offpeak) and the traffic metric set
//     is re-evaluated.
//
// Failing an already-failed item or repairing a present one is a no-op
// row (the previous values repeat). At/Step optionally timestamp the
// event — at-time (fractional) or at-step (integer) scheduling; an
// event carries at most one of them, and the annotated sequence must be
// non-decreasing, so a shuffled schedule fails validation instead of
// silently replaying out of order.
type TimelineEventSpec struct {
	Event string `json:"event"`
	// Node / Edge target the event (per the vocabulary above). Edge ids
	// follow generation order, as reported by export and `topostats`.
	Node *int `json:"node,omitempty"`
	Edge *int `json:"edge,omitempty"`
	// At is the at-time annotation, Step the at-step one.
	At   *float64 `json:"at,omitempty"`
	Step *int     `json:"step,omitempty"`
	// Capacity is the new capacity for "capacity-set" (> 0, finite).
	Capacity *float64 `json:"capacity,omitempty"`
	// Model/Params name the demand model for "demand-switch".
	Model  string `json:"model,omitempty"`
	Params Params `json:"params,omitempty"`
}

// connectivity maps the event to its robust-engine op, when it has one
// (traffic events return ok == false). Valid only after validation —
// required target fields are known present.
func (ev *TimelineEventSpec) connectivity() (op robust.TimelineOp, id int, ok bool) {
	switch ev.Event {
	case "fail-node":
		return robust.OpFailNode, *ev.Node, true
	case "fail-edge":
		return robust.OpFailEdge, *ev.Edge, true
	case "repair":
		if ev.Node != nil {
			return robust.OpRepairNode, *ev.Node, true
		}
		return robust.OpRepairEdge, *ev.Edge, true
	}
	return 0, 0, false
}

// maxTimelineEvents bounds the expanded (repeat-unrolled) schedule so a
// hostile spec cannot make one replication allocate without bound.
const maxTimelineEvents = 1 << 20

// TimelineSpec replays an ordered failure/repair/traffic event schedule
// against the generated topology — the temporal stage. Connectivity
// events run through the epoch-based reverse union-find engine
// (internal/robust), so a whole outage-and-recovery trajectory costs
// one near-linear pass per monotone epoch instead of a full traversal
// per event; capacity-set/demand-switch events re-evaluate the
// CapTraffic metric set with the current capacities and demand model.
// Traffic rows evaluate the intact (provisioned) topology — failures
// feed the connectivity metrics, capacity/demand events the traffic
// ones. Each replication emits one TimelinePoint per event, in order.
type TimelineSpec struct {
	// Events is the ordered schedule (at least one event).
	Events []TimelineEventSpec `json:"events"`
	// Repeat replays the whole schedule N times back-to-back without
	// resetting state — newtest-style stress mode; periodic fail/repair
	// cycles model recurring outages (default 1).
	Repeat int `json:"repeat,omitempty"`
	// Metrics is the connectivity metric set traced per event (default
	// {"lcc"}; must be CapMasked). Timelines with edge-targeted events
	// support only {"lcc"}.
	Metrics []string `json:"metrics,omitempty"`
	// Mode selects the connectivity evaluation path: "auto" (default),
	// "epoch", or "masked" — the parity tests pin the two bit-identical.
	Mode string `json:"mode,omitempty"`
}

// AttackSpec runs a robustness sweep through the attack registry
// (internal/attackreg).
type AttackSpec struct {
	// Strategy is an attack-registry name — run `topoattack -list` for
	// the full set; e.g. "random-failure" (default), "degree",
	// "adaptive-degree", "betweenness", "geographic", "preferential",
	// "random-edge", "bottleneck-edge". Legacy aliases ("random",
	// "degree-attack", ...) keep validating.
	Strategy string `json:"strategy,omitempty"`
	// Params are the attack's parameters (e.g. geographic epicenter
	// {"x": 0.2, "y": 0.8}), validated against its declared specs.
	Params Params `json:"params,omitempty"`
	// Fracs are the removal fractions in [0, 1] (default 0.05, 0.1,
	// 0.2); 1 removes the whole schedule.
	Fracs []float64 `json:"fracs,omitempty"`
	// Trials averages randomized attacks (default 3; deterministic
	// attacks always use one pass).
	Trials int `json:"trials,omitempty"`
}

// Scenario is one declarative unit of work: generate a topology, then
// optionally measure, route, and attack it, replicated over seeds. The
// value round-trips through JSON; running the unmarshaled copy produces
// byte-identical output.
type Scenario struct {
	Name     string        `json:"name,omitempty"`
	Generate GenerateSpec  `json:"generate"`
	Measure  *MeasureSpec  `json:"measure,omitempty"`
	Route    *RouteSpec    `json:"route,omitempty"`
	Traffic  *TrafficSpec  `json:"traffic,omitempty"`
	Attack   *AttackSpec   `json:"attack,omitempty"`
	Timeline *TimelineSpec `json:"timeline,omitempty"`
	// Seeds are explicit per-replication seeds; Reps pads beyond them
	// with seeds derived from the last explicit one (or, with no Seeds,
	// from the generator's "seed" parameter). One replication with the
	// generator's seed runs when both are empty.
	Seeds []int64 `json:"seeds,omitempty"`
	Reps  int     `json:"reps,omitempty"`
}

// NumReps is the replication count implied by Seeds and Reps.
func (s *Scenario) NumReps() int {
	n := s.Reps
	if len(s.Seeds) > n {
		n = len(s.Seeds)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SeedFor returns replication rep's seed: the explicit Seeds entry when
// one exists, otherwise a deterministic derivation from the last
// explicit seed. Without any Seeds, the base is the generator's "seed"
// parameter (default 1), and replication 0 uses it verbatim — so a
// spec that only says params{"seed": 42} runs exactly the topology
// `topogen -seed 42` generates.
func (s *Scenario) SeedFor(rep int) int64 {
	if rep < len(s.Seeds) {
		return s.Seeds[rep]
	}
	base := int64(1)
	if len(s.Seeds) > 0 {
		base = s.Seeds[len(s.Seeds)-1]
	} else {
		if v, ok := s.Generate.Params["seed"]; ok {
			base = int64(v)
		}
		if rep == 0 {
			return base
		}
	}
	return rng.Derive(base, rep)
}

// Validate checks the scenario against a registry: the model must
// resolve, its params must validate, and every stage spec must be
// well-formed. Errors wrap errs.ErrBadParam.
func (s *Scenario) Validate(reg *Registry) error {
	_, _, err := s.prepare(reg)
	return err
}

// prepare is Validate plus the execution inputs: the resolved generator
// and its complete parameter set. The engine runs exactly what
// validation checked.
func (s *Scenario) prepare(reg *Registry) (Generator, Params, error) {
	g, err := reg.Lookup(s.Generate.Model)
	if err != nil {
		return nil, nil, err
	}
	resolved, err := Resolve(g, s.Generate.Params)
	if err != nil {
		return nil, nil, err
	}
	if err := s.checkStages(); err != nil {
		return nil, nil, err
	}
	return g, resolved, nil
}

func (s *Scenario) checkStages() error {
	if m := s.Measure; m != nil && len(m.Metrics) > 0 {
		seen := map[string]bool{}
		for _, sel := range m.Metrics {
			mt, err := metricreg.Lookup(sel.Name)
			if err != nil {
				return err
			}
			if seen[sel.Name] {
				return errs.BadParamf("scenario %q: duplicate metric %q", s.describe(), sel.Name)
			}
			seen[sel.Name] = true
			// The measure stage's source never carries a demand set, so
			// a traffic-capable metric there could only fail per-rep at
			// runtime; reject it up front.
			if mt.Caps()&metricreg.CapTraffic != 0 {
				return errs.BadParamf("scenario %q: metric %q needs a demand set — use the traffic stage, not measure.metrics", s.describe(), sel.Name)
			}
			if _, err := metricreg.Resolve(mt, sel.Params); err != nil {
				return err
			}
		}
	}
	if s.Route != nil {
		if s.Route.Demands < 1 {
			return errs.BadParamf("scenario %q: route stage needs demands >= 1", s.describe())
		}
		switch s.Route.Mode {
		case "", "shortest", "capacitated", "maxmin":
		default:
			return errs.BadParamf("scenario %q: unknown route mode %q", s.describe(), s.Route.Mode)
		}
		if s.Route.Volume < 0 {
			return errs.BadParamf("scenario %q: negative route volume", s.describe())
		}
	}
	if s.Traffic != nil {
		dm, err := trafficreg.Lookup(s.Traffic.Model)
		if err != nil {
			return err
		}
		if _, err := trafficreg.Resolve(dm, s.Traffic.Params); err != nil {
			return err
		}
		if s.Traffic.Sites < 0 || s.Traffic.Sites == 1 {
			return errs.BadParamf("scenario %q: traffic stage needs sites >= 2 (or 0 for the default)", s.describe())
		}
		if math.IsNaN(s.Traffic.Capacity) || math.IsInf(s.Traffic.Capacity, 0) {
			return errs.BadParamf("scenario %q: traffic capacity %v", s.describe(), s.Traffic.Capacity)
		}
	}
	if s.Attack != nil {
		atk, err := attackreg.Lookup(s.Attack.Strategy)
		if err != nil {
			return err
		}
		if _, err := attackreg.Resolve(atk, s.Attack.Params); err != nil {
			return err
		}
		if err := robust.ValidateFracs(s.Attack.Fracs); err != nil {
			return errs.BadParamf("scenario %q: %v", s.describe(), err)
		}
		if s.Attack.Trials < 0 {
			return errs.BadParamf("scenario %q: negative attack trials", s.describe())
		}
	}
	if tl := s.Timeline; tl != nil {
		if err := s.checkTimeline(tl); err != nil {
			return err
		}
	}
	if s.Reps < 0 {
		return errs.BadParamf("scenario %q: negative reps", s.describe())
	}
	return nil
}

// checkTimeline validates the timeline stage statically: event
// vocabulary, required/forbidden target fields, monotone at/step
// annotations, resolvable demand models, a CapMasked metric set, and a
// bounded expanded schedule. Node/edge ids are range-checked per
// replication at replay time (the topology size is not known until
// generation). Errors wrap errs.ErrBadParam.
func (s *Scenario) checkTimeline(tl *TimelineSpec) error {
	bad := func(format string, args ...any) error {
		return errs.BadParamf("scenario %q: timeline: "+format, append([]any{s.describe()}, args...)...)
	}
	if len(tl.Events) == 0 {
		return bad("needs at least one event")
	}
	if tl.Repeat < 0 {
		return bad("negative repeat %d", tl.Repeat)
	}
	repeat := tl.Repeat
	if repeat < 1 {
		repeat = 1
	}
	if total := len(tl.Events) * repeat; total > maxTimelineEvents {
		return bad("expanded schedule has %d events (max %d)", total, maxTimelineEvents)
	}
	if _, err := robust.ParseTimelineMode(tl.Mode); err != nil {
		return bad("%v", err)
	}
	hasEdgeEvents := false
	var prevAt *float64
	var prevStep *int
	for i, ev := range tl.Events {
		where := func(format string, args ...any) error {
			return bad("event %d (%s): "+format, append([]any{i, ev.Event}, args...)...)
		}
		needNode, needEdge, needCapacity := false, false, false
		switch ev.Event {
		case "fail-node":
			needNode = true
		case "fail-edge":
			needEdge = true
		case "repair":
			if (ev.Node == nil) == (ev.Edge == nil) {
				return where("needs exactly one of node or edge")
			}
			needNode, needEdge = ev.Node != nil, ev.Edge != nil
		case "capacity-set":
			needEdge, needCapacity = true, true
		case "demand-switch":
			// Model may be empty — the registry's "" alias is gravity,
			// matching TrafficSpec.
		default:
			return bad("event %d: unknown event %q", i, ev.Event)
		}
		if needNode != (ev.Node != nil) {
			return where("node field mismatch")
		}
		if needEdge != (ev.Edge != nil) {
			return where("edge field mismatch")
		}
		if needCapacity != (ev.Capacity != nil) {
			return where("capacity field mismatch")
		}
		if ev.Event != "demand-switch" && (ev.Model != "" || len(ev.Params) > 0) {
			return where("model/params apply only to demand-switch")
		}
		if ev.Node != nil && *ev.Node < 0 {
			return where("negative node %d", *ev.Node)
		}
		if ev.Edge != nil && *ev.Edge < 0 {
			return where("negative edge %d", *ev.Edge)
		}
		if ev.Capacity != nil && !(*ev.Capacity > 0 && !math.IsInf(*ev.Capacity, 0)) {
			// Zero is rejected too: the traffic stage substitutes its
			// default for non-positive capacities, so "set to 0" would
			// silently evaluate as "set to the default".
			return where("capacity must be positive and finite, got %v", *ev.Capacity)
		}
		if ev.Event == "demand-switch" {
			dm, err := trafficreg.Lookup(ev.Model)
			if err != nil {
				return where("%v", err)
			}
			if _, err := trafficreg.Resolve(dm, ev.Params); err != nil {
				return where("%v", err)
			}
		}
		if ev.Event == "fail-edge" || (ev.Event == "repair" && ev.Edge != nil) {
			hasEdgeEvents = true
		}
		if ev.At != nil && ev.Step != nil {
			return where("carries both at and step")
		}
		if ev.At != nil {
			if math.IsNaN(*ev.At) || math.IsInf(*ev.At, 0) {
				return where("at %v is not a finite time", *ev.At)
			}
			if prevAt != nil && *ev.At < *prevAt {
				return where("at %v precedes earlier event at %v", *ev.At, *prevAt)
			}
			prevAt = ev.At
		}
		if ev.Step != nil {
			if *ev.Step < 0 {
				return where("negative step %d", *ev.Step)
			}
			if prevStep != nil && *ev.Step < *prevStep {
				return where("step %d precedes earlier event step %d", *ev.Step, *prevStep)
			}
			prevStep = ev.Step
		}
	}
	if len(tl.Metrics) > 0 {
		seen := map[string]bool{}
		for _, name := range tl.Metrics {
			if seen[name] {
				return bad("duplicate metric %q", name)
			}
			seen[name] = true
		}
		if _, err := metricreg.ResolveMasked(tl.Metrics, 0); err != nil {
			return bad("%v", err)
		}
		if hasEdgeEvents && !(len(tl.Metrics) == 1 && tl.Metrics[0] == "lcc") {
			return bad("edge-targeted events trace only the \"lcc\" metric, got %v", tl.Metrics)
		}
	}
	return nil
}

func (s *Scenario) describe() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Generate.Model
}

// identityKey is the cache key of one generated topology: the model, the
// fully-resolved parameter set in sorted-name order, and the effective
// seed. Two scenarios that generate the same topology — whatever their
// measure/route/attack stages — share one frozen snapshot.
func identityKey(model string, resolved Params, seed int64) string {
	names := make([]string, 0, len(resolved))
	for name := range resolved {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(model)
	for _, name := range names {
		if name == "seed" {
			continue
		}
		b.WriteByte('|')
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(resolved[name], 'g', -1, 64))
	}
	fmt.Fprintf(&b, "|seed=%d", seed)
	return b.String()
}

// ParseSpec decodes a scenario spec document: a single Scenario object,
// a JSON array of them, or {"scenarios": [...]}. Unknown fields are
// rejected so typos in stage names fail loudly instead of silently
// skipping work.
func ParseSpec(data []byte) ([]Scenario, error) {
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, errs.BadParamf("scenario: empty spec")
	}
	strict := func(raw []byte, v any) error {
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		return dec.Decode(v)
	}
	if strings.HasPrefix(trimmed, "[") {
		var out []Scenario
		if err := strict(data, &out); err != nil {
			return nil, errs.BadParamf("scenario: parse spec array: %v", err)
		}
		return out, nil
	}
	var batch struct {
		Scenarios []Scenario `json:"scenarios"`
	}
	if err := strict(data, &batch); err == nil && len(batch.Scenarios) > 0 {
		return batch.Scenarios, nil
	}
	var one Scenario
	if err := strict(data, &one); err != nil {
		return nil, errs.BadParamf("scenario: parse spec: %v", err)
	}
	return []Scenario{one}, nil
}

// DegreeSummary is the measure stage's degree-family output.
type DegreeSummary struct {
	MeanDegree float64 `json:"mean_degree"`
	MaxDegree  int     `json:"max_degree"`
	Tail       string  `json:"tail"`
}

// RouteSummary is the route stage's output.
type RouteSummary struct {
	Mode           string  `json:"mode"`
	Delivered      float64 `json:"delivered"`
	Dropped        float64 `json:"dropped"`
	MaxUtilization float64 `json:"max_utilization"`
	AvgHops        float64 `json:"avg_hops"`
	// Jain is the fairness index; only the maxmin mode fills it.
	Jain float64 `json:"jain,omitempty"`
}

// TrafficSummary is the traffic stage's output: the CapTraffic metric
// set evaluated on the registry-generated demand set.
type TrafficSummary struct {
	// Model is the canonical demand-model name that generated the
	// demands.
	Model string `json:"model"`
	// Sites and Demands describe the generated demand set: top-degree
	// traffic sites and positive-volume site pairs.
	Sites   int `json:"sites"`
	Demands int `json:"demands"`
	// Offered is the total offered volume; Throughput the volume-aware
	// max-min fair allocation's total rate; DeliveredFrac their ratio.
	Offered       float64 `json:"offered"`
	Throughput    float64 `json:"throughput"`
	DeliveredFrac float64 `json:"delivered_frac"`
	// MaxUtilization is max load/capacity under shortest-path routing
	// of the full offered volumes (-1 when a loaded edge has no
	// capacity).
	MaxUtilization float64 `json:"max_utilization"`
	// Jain is the fairness index over the allocated rates.
	Jain float64 `json:"jain"`
}

// TimelinePoint is one timeline event's output row: the connectivity
// metric set after the event, plus — on capacity-set/demand-switch
// events — the re-evaluated traffic summary.
type TimelinePoint struct {
	// Index is the event's position in the expanded (repeat-unrolled)
	// schedule.
	Index int `json:"index"`
	// Event is the spec's event name; Node/Edge echo its target.
	Event string `json:"event"`
	Node  *int   `json:"node,omitempty"`
	Edge  *int   `json:"edge,omitempty"`
	// Time echoes the event's at (or step) annotation when it has one.
	Time *float64 `json:"time,omitempty"`
	// Metrics holds the connectivity metric set evaluated on the
	// post-event failure state (traffic events repeat the pre-event
	// values — they do not change connectivity).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Traffic is the CapTraffic summary under the current capacities
	// and demand model, present on capacity-set/demand-switch rows.
	Traffic *TrafficSummary `json:"traffic,omitempty"`
}

// RepResult is one replication's output.
type RepResult struct {
	Seed     int64                      `json:"seed"`
	Nodes    int                        `json:"nodes"`
	Edges    int                        `json:"edges"`
	Profile  *metrics.Profile           `json:"profile,omitempty"`
	Degrees  *DegreeSummary             `json:"degrees,omitempty"`
	Metrics  map[string]metricreg.Value `json:"metrics,omitempty"`
	Route    *RouteSummary              `json:"route,omitempty"`
	Traffic  *TrafficSummary            `json:"traffic,omitempty"`
	Attack   []robust.SweepPoint        `json:"attack,omitempty"`
	Timeline []TimelinePoint            `json:"timeline,omitempty"`
}

// Result is one scenario's full output: a RepResult per replication, in
// replication order regardless of worker count.
type Result struct {
	Scenario Scenario    `json:"scenario"`
	Reps     []RepResult `json:"reps"`
	// Partial marks a result cut short by cancellation or error: Reps
	// then holds only the contiguous prefix of replications that
	// completed. Complete runs never set it, so its absence in JSON is
	// the completeness marker.
	Partial bool `json:"partial,omitempty"`
}

// Format renders the result as an aligned text table whose bytes are
// identical for any Engine worker count.
func (r *Result) Format() string {
	var b strings.Builder
	partial := ""
	if r.Partial {
		partial = ", PARTIAL"
	}
	fmt.Fprintf(&b, "scenario %s (model=%s, reps=%d%s)\n",
		r.Scenario.describe(), r.Scenario.Generate.Model, len(r.Reps), partial)
	header := []string{"rep", "seed", "nodes", "edges"}
	if r.Scenario.Measure != nil {
		m := r.Scenario.Measure
		if m.wantProfile() {
			header = append(header, "exp@3", "resil", "distort", "hier", "gap")
		}
		if m.Degrees {
			header = append(header, "meandeg", "maxdeg", "tail")
		}
		for _, sel := range m.Metrics {
			header = append(header, sel.Name)
		}
	}
	if r.Scenario.Route != nil {
		header = append(header, "mode", "delivered", "dropped", "maxutil", "avghops", "jain")
	}
	if r.Scenario.Traffic != nil {
		header = append(header, "tmodel", "tsites", "tput", "tdeliv", "tmaxutil", "tjain")
	}
	if r.Scenario.Attack != nil {
		header = append(header, "lcc@fracs")
	}
	tlPrimary := "lcc"
	if tl := r.Scenario.Timeline; tl != nil {
		if len(tl.Metrics) > 0 {
			tlPrimary = tl.Metrics[0]
		}
		header = append(header, "timeline("+tlPrimary+")")
	}
	rows := make([][]string, 0, len(r.Reps))
	for i, rep := range r.Reps {
		row := []string{
			strconv.Itoa(i),
			strconv.FormatInt(rep.Seed, 10),
			strconv.Itoa(rep.Nodes),
			strconv.Itoa(rep.Edges),
		}
		if rep.Profile != nil {
			row = append(row,
				f4(rep.Profile.ExpansionAt3), f4(rep.Profile.Resilience),
				f4(rep.Profile.Distortion), f4(rep.Profile.HierarchyDepth),
				f4(rep.Profile.SpectralGap))
		}
		if rep.Degrees != nil {
			row = append(row, f4(rep.Degrees.MeanDegree),
				strconv.Itoa(rep.Degrees.MaxDegree), rep.Degrees.Tail)
		}
		if r.Scenario.Measure != nil {
			for _, sel := range r.Scenario.Measure.Metrics {
				row = append(row, f4(rep.Metrics[sel.Name].Scalar))
			}
		}
		if rep.Route != nil {
			row = append(row, rep.Route.Mode,
				f4(rep.Route.Delivered), f4(rep.Route.Dropped),
				f4(rep.Route.MaxUtilization), f4(rep.Route.AvgHops),
				f4(rep.Route.Jain))
		}
		if rep.Traffic != nil {
			row = append(row, rep.Traffic.Model,
				strconv.Itoa(rep.Traffic.Sites),
				f4(rep.Traffic.Throughput), f4(rep.Traffic.DeliveredFrac),
				f4(rep.Traffic.MaxUtilization), f4(rep.Traffic.Jain))
		}
		if rep.Attack != nil {
			cells := make([]string, len(rep.Attack))
			for k, pt := range rep.Attack {
				cells[k] = fmt.Sprintf("%g:%s", pt.FracRemoved, f4(pt.LCCFrac))
			}
			row = append(row, strings.Join(cells, " "))
		}
		if rep.Timeline != nil {
			cells := make([]string, len(rep.Timeline))
			for k, pt := range rep.Timeline {
				val := f4(pt.Metrics[tlPrimary])
				if pt.Traffic != nil {
					val = "tput:" + f4(pt.Traffic.Throughput)
				}
				cells[k] = fmt.Sprintf("%d:%s=%s", pt.Index, pt.Event, val)
			}
			row = append(row, strings.Join(cells, " "))
		}
		rows = append(rows, row)
	}
	writeAligned(&b, header, rows)
	// The trailer mirrors the batch-level "# PARTIAL:" line the CLI
	// emits, so a single scenario's table carries the marker on its own
	// — a cancelled run rendered in isolation is never mistaken for a
	// complete one.
	if r.Partial {
		fmt.Fprintf(&b, "# PARTIAL: %d of %d reps\n", len(r.Reps), r.Scenario.NumReps())
	}
	return b.String()
}

func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func writeAligned(b *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}
