package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/errs"
)

func ip(v int) *int         { return &v }
func fp(v float64) *float64 { return &v }

// timelineScenario is the full-vocabulary temporal scenario: node and
// edge failures with repairs interleaved with a capacity change and a
// peak → offpeak demand switch, on top of a seeded traffic stage.
func timelineScenario(mode string) Scenario {
	return Scenario{
		Name:     "tl-" + mode,
		Generate: GenerateSpec{Model: "ba", Params: Params{"n": 80, "m": 2}},
		Traffic:  &TrafficSpec{Model: "bimodal", Sites: 10},
		Timeline: &TimelineSpec{
			Mode: mode,
			Events: []TimelineEventSpec{
				{Event: "fail-node", Node: ip(3), At: fp(0.5)},
				{Event: "fail-node", Node: ip(7), At: fp(1)},
				{Event: "fail-edge", Edge: ip(5), At: fp(1)},
				{Event: "repair", Node: ip(3), At: fp(2.5)},
				{Event: "capacity-set", Edge: ip(2), Capacity: fp(2.5)},
				{Event: "demand-switch", Model: "bimodal", Params: Params{"peak": 0.25, "offpeak": 1}},
				{Event: "repair", Edge: ip(5)},
				{Event: "repair", Node: ip(7)},
			},
		},
		Seeds: []int64{1, 2},
	}
}

// TestTimelineStage runs the full-vocabulary scenario and checks each
// point's shape: ordered indices, connectivity metrics on every row,
// traffic summaries exactly on the capacity-set/demand-switch rows, and
// time annotations echoed through.
func TestTimelineStage(t *testing.T) {
	res, err := NewEngine(nil).Run(context.Background(), timelineScenario(""), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reps) != 2 {
		t.Fatalf("%d reps, want 2", len(res.Reps))
	}
	for ri, rep := range res.Reps {
		pts := rep.Timeline
		if len(pts) != 8 {
			t.Fatalf("rep %d: %d points, want 8", ri, len(pts))
		}
		for i, pt := range pts {
			if pt.Index != i {
				t.Fatalf("rep %d point %d has index %d", ri, i, pt.Index)
			}
			if _, ok := pt.Metrics["lcc"]; !ok {
				t.Fatalf("rep %d point %d missing lcc metric", ri, i)
			}
			isTraffic := pt.Event == "capacity-set" || pt.Event == "demand-switch"
			if isTraffic != (pt.Traffic != nil) {
				t.Fatalf("rep %d point %d (%s): traffic summary presence = %v", ri, i, pt.Event, pt.Traffic != nil)
			}
		}
		if got := *pts[0].Time; got != 0.5 {
			t.Fatalf("rep %d: point 0 time %v, want 0.5", ri, got)
		}
		if pts[6].Time != nil {
			t.Fatalf("rep %d: unannotated point carries time %v", ri, *pts[6].Time)
		}
		// The intact topology is restored by the tail repairs, so the
		// final connectivity row matches an untouched graph: lcc = 1 for
		// a connected BA topology.
		if got := pts[7].Metrics["lcc"]; got != 1 {
			t.Fatalf("rep %d: final lcc %v, want 1", ri, got)
		}
		// The demand switch inverts peak/offpeak, so its traffic row must
		// differ from the capacity-set row evaluated under the initial
		// model.
		if pts[4].Traffic.Throughput == pts[5].Traffic.Throughput {
			t.Fatalf("rep %d: demand switch left throughput unchanged (%v)", ri, pts[5].Traffic.Throughput)
		}
		if pts[5].Traffic.Model != "bimodal" {
			t.Fatalf("rep %d: traffic row model %q", ri, pts[5].Traffic.Model)
		}
	}
	// The formatted table carries the timeline column.
	text := res.Format()
	if !strings.Contains(text, "timeline(lcc)") || !strings.Contains(text, "4:capacity-set=tput:") {
		t.Fatalf("formatted output missing timeline column:\n%s", text)
	}
}

// TestTimelineModeParity is the acceptance criterion at the scenario
// layer: the epoch and masked paths must render byte-identical results,
// at Workers=1 and Workers=8 (run under -race in CI).
func TestTimelineModeParity(t *testing.T) {
	outputs := map[string]string{}
	for _, mode := range []string{"epoch", "masked"} {
		sc := timelineScenario(mode)
		sc.Name = "tl" // identical name so the rendered tables align
		for _, workers := range []int{1, 8} {
			res, err := NewEngine(nil).Run(context.Background(), sc, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", mode, workers, err)
			}
			outputs[mode+"/"+string(rune('0'+workers))] = res.Format()
		}
	}
	want := outputs["epoch/1"]
	for key, got := range outputs {
		if got != want {
			t.Fatalf("output diverged at %s:\n--- epoch/1 ---\n%s\n--- %s ---\n%s", key, want, key, got)
		}
	}
}

// TestTimelineRepeat pins repeat semantics: the schedule replays
// back-to-back without state reset, and two runs of the same repeated
// scenario are byte-identical.
func TestTimelineRepeat(t *testing.T) {
	sc := Scenario{
		Generate: GenerateSpec{Model: "ba", Params: Params{"n": 60, "m": 2}},
		Timeline: &TimelineSpec{
			Repeat: 2,
			Events: []TimelineEventSpec{
				{Event: "fail-node", Node: ip(5)},
				{Event: "fail-node", Node: ip(9)},
				{Event: "repair", Node: ip(5)},
				{Event: "repair", Node: ip(9)},
			},
		},
		Reps: 1,
	}
	run := func() *Result {
		t.Helper()
		res, err := NewEngine(nil).Run(context.Background(), sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	pts := a.Reps[0].Timeline
	if len(pts) != 8 {
		t.Fatalf("%d points, want 8 (4 events x repeat 2)", len(pts))
	}
	// Both cycles end fully repaired, and the second cycle retraces the
	// first because state carries over into an identical configuration.
	for i := 0; i < 4; i++ {
		if pts[i].Metrics["lcc"] != pts[i+4].Metrics["lcc"] {
			t.Fatalf("cycle divergence at event %d: %v vs %v", i, pts[i].Metrics["lcc"], pts[i+4].Metrics["lcc"])
		}
	}
	if af, bf := a.Format(), b.Format(); af != bf {
		t.Fatalf("repeat scenario not deterministic:\n%s\nvs\n%s", af, bf)
	}
}

// TestTimelineRejectsBadSpecs covers the static validation surface.
func TestTimelineRejectsBadSpecs(t *testing.T) {
	tl := func(spec TimelineSpec) Scenario {
		return Scenario{Generate: GenerateSpec{Model: "ba", Params: Params{"n": 40}}, Timeline: &spec}
	}
	cases := []Scenario{
		tl(TimelineSpec{}), // no events
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "melt-down", Node: ip(1)}}}),
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node"}}}),                                     // missing node
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(1), Edge: ip(1)}}}),           // stray edge
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-edge", Node: ip(1)}}}),                        // wrong target
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "repair"}}}),                                        // no target
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "repair", Node: ip(1), Edge: ip(2)}}}),              // both targets
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(-1)}}}),                       // negative id
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "capacity-set", Edge: ip(1)}}}),                     // missing capacity
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "capacity-set", Edge: ip(1), Capacity: fp(0)}}}),    // zero capacity
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "capacity-set", Edge: ip(1), Capacity: fp(-2)}}}),   // negative
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(1), Capacity: fp(1)}}}),       // stray capacity
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(1), Model: "gravity"}}}),      // stray model
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "demand-switch", Model: "teleport"}}}),              // unknown model
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "demand-switch", Params: Params{"bogus": 1}}}}),     // bad params
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(1), At: fp(1), Step: ip(1)}}}), // both clocks
		tl(TimelineSpec{Events: []TimelineEventSpec{ // at sequence decreases
			{Event: "fail-node", Node: ip(1), At: fp(2)},
			{Event: "fail-node", Node: ip(2), At: fp(1)},
		}}),
		tl(TimelineSpec{Events: []TimelineEventSpec{ // step sequence decreases
			{Event: "fail-node", Node: ip(1), Step: ip(2)},
			{Event: "fail-node", Node: ip(2), Step: ip(1)},
		}}),
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(1), Step: ip(-1)}}}),
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(1)}}, Repeat: -1}),
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(1)}}, Repeat: maxTimelineEvents + 1}),
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(1)}}, Mode: "psychic"}),
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(1)}}, Metrics: []string{"lcc", "lcc"}}),
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(1)}}, Metrics: []string{"spectral-gap"}}), // not CapMasked
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-edge", Edge: ip(1)}}, Metrics: []string{"lcc", "mean-degree"}}), // edge events beyond lcc
		// Runtime range failures: ids past the generated topology.
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-node", Node: ip(40)}}}),
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "fail-edge", Edge: ip(1 << 29)}}}),
		tl(TimelineSpec{Events: []TimelineEventSpec{{Event: "capacity-set", Edge: ip(1 << 29), Capacity: fp(1)}}}),
	}
	for i, sc := range cases {
		_, err := NewEngine(nil).RunBatch(context.Background(), []Scenario{sc}, Options{})
		if !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("case %d gave %v, want ErrBadParam", i, err)
		}
	}
}

// TestSingleScenarioPartialTrailer pins that a lone Result rendered by
// Format carries the PARTIAL trailer — the single-scenario surface must
// not be mistakable for a complete run.
func TestSingleScenarioPartialTrailer(t *testing.T) {
	sc := timelineScenario("")
	complete, err := NewEngine(nil).Run(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(complete.Format(), "PARTIAL") {
		t.Fatalf("complete run rendered PARTIAL:\n%s", complete.Format())
	}
	partial := &Result{Scenario: sc, Reps: complete.Reps[:1], Partial: true}
	text := partial.Format()
	if !strings.Contains(text, "# PARTIAL: 1 of 2 reps") {
		t.Fatalf("partial run missing trailer:\n%s", text)
	}
}

// FuzzTimelineSpec pushes arbitrary event lists through JSON parse,
// validation, and replay on a tiny topology: any outcome is fine except
// a panic or an error that is not ErrBadParam/ErrCanceled.
func FuzzTimelineSpec(f *testing.F) {
	seedSpecs := []string{
		`{"events":[{"event":"fail-node","node":2}]}`,
		`{"events":[{"event":"fail-edge","edge":0},{"event":"repair","edge":0}],"repeat":3}`,
		`{"events":[{"event":"capacity-set","edge":1,"capacity":2.0},{"event":"demand-switch","model":"bimodal"}]}`,
		`{"events":[{"event":"fail-node","node":1,"at":0.5},{"event":"repair","node":1,"at":1.5}],"mode":"epoch"}`,
		`{"events":[{"event":"fail-node","node":9999}]}`,
		`{"events":[{"event":"repair"}],"metrics":["lcc","mean-degree"]}`,
	}
	for _, s := range seedSpecs {
		f.Add([]byte(s))
	}
	eng := NewEngine(nil)
	f.Fuzz(func(t *testing.T, data []byte) {
		var tl TimelineSpec
		if err := json.Unmarshal(data, &tl); err != nil {
			return
		}
		sc := Scenario{
			Generate: GenerateSpec{Model: "ba", Params: Params{"n": 12, "m": 1}},
			Timeline: &tl,
			Reps:     1,
		}
		_, err := eng.Run(context.Background(), sc, Options{})
		if err != nil && !errors.Is(err, errs.ErrBadParam) && !errors.Is(err, errs.ErrCanceled) {
			t.Fatalf("spec %s: unexpected error class: %v", data, err)
		}
	})
}
