package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/graph"
)

// testEntry builds a completed entry around a freshly generated BA
// graph; every call with the same n yields the same byte footprint.
func testEntry(t *testing.T, key string, n int) (*topoEntry, int64) {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Freeze()
	return &topoEntry{key: key, ready: make(chan struct{}), g: g, c: c},
		g.MemBytes() + c.MemBytes()
}

// TestSnapCacheEvictionOrderIsLRU pins the eviction order the old
// map-iteration cache could not guarantee: with A, B, C resident and A
// recently touched, inserting D evicts exactly B (the least recently
// used), then a further insert evicts C — never A or the newcomers.
func TestSnapCacheEvictionOrderIsLRU(t *testing.T) {
	_, entryBytes := testEntry(t, "probe", 40)
	sc := newSnapCache(3 * entryBytes)
	insert := func(key string) {
		ent, leader := sc.lookup(key)
		if !leader {
			t.Fatalf("insert %q: expected leadership, got a cached entry", key)
		}
		full, _ := testEntry(t, key, 40)
		ent.g, ent.c = full.g, full.c
		sc.finish(ent)
	}
	resident := func(key string) bool {
		sc.mu.Lock()
		defer sc.mu.Unlock()
		_, ok := sc.resident[key]
		return ok
	}
	insert("A")
	insert("B")
	insert("C")
	if _, leader := sc.lookup("A"); leader {
		t.Fatal("A not resident after insert")
	}
	// LRU order is now A, C, B (most to least recent).
	insert("D")
	if resident("B") {
		t.Fatal("eviction skipped B, the least recently used entry")
	}
	for _, want := range []string{"A", "C", "D"} {
		if !resident(want) {
			t.Fatalf("%s evicted out of LRU order", want)
		}
	}
	insert("E")
	if resident("C") {
		t.Fatal("second eviction skipped C")
	}
	for _, want := range []string{"A", "D", "E"} {
		if !resident(want) {
			t.Fatalf("%s evicted out of LRU order on second eviction", want)
		}
	}
	st := sc.stats()
	if st.Evictions != 2 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 2 evictions and 3 entries", st)
	}
	if st.BytesUsed != 3*entryBytes {
		t.Fatalf("BytesUsed = %d, want %d", st.BytesUsed, 3*entryBytes)
	}
}

// TestSnapCacheNeverRetainsFailedOrInFlight: an in-flight entry is
// invisible to eviction and never resident, and an errored/canceled
// generation is dropped so the next lookup retries.
func TestSnapCacheNeverRetainsFailedOrInFlight(t *testing.T) {
	sc := newSnapCache(1 << 30)
	ent, leader := sc.lookup("x")
	if !leader {
		t.Fatal("first lookup must lead")
	}
	st := sc.stats()
	if st.InFlight != 1 || st.Entries != 0 || st.Misses != 1 {
		t.Fatalf("in-flight stats = %+v", st)
	}
	// A concurrent caller coalesces onto the same entry.
	ent2, leader2 := sc.lookup("x")
	if leader2 || ent2 != ent {
		t.Fatal("second lookup did not coalesce onto the in-flight entry")
	}
	if st := sc.stats(); st.Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", st.Coalesced)
	}
	// Tightening the budget to zero while the generation is in flight
	// must not touch it.
	sc.setBudget(0)
	sc.setBudget(1 << 30)
	// The generation fails: the entry is never retained.
	ent.err = errors.New("boom")
	sc.finish(ent)
	select {
	case <-ent.ready:
	default:
		t.Fatal("finish did not wake waiters")
	}
	st = sc.stats()
	if st.Failures != 1 || st.Entries != 0 || st.InFlight != 0 || st.BytesUsed != 0 {
		t.Fatalf("post-failure stats = %+v", st)
	}
	// The next lookup leads again (the failure was not cached)...
	ent3, leader3 := sc.lookup("x")
	if !leader3 {
		t.Fatal("failed entry was retained")
	}
	// ...and a successful retry is retained normally.
	full, _ := testEntry(t, "x", 30)
	ent3.g, ent3.c = full.g, full.c
	sc.finish(ent3)
	if st := sc.stats(); st.Entries != 1 || st.BytesUsed <= 0 {
		t.Fatalf("post-retry stats = %+v", st)
	}
	if _, leader := sc.lookup("x"); leader {
		t.Fatal("successful retry not resident")
	}
	if st := sc.stats(); st.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", st.Hits)
	}
}

// TestSnapCacheOversizeNeverRetained: a snapshot bigger than the whole
// budget is served but not cached (budget 0 disables retention).
func TestSnapCacheOversizeNeverRetained(t *testing.T) {
	sc := newSnapCache(0)
	ent, leader := sc.lookup("big")
	if !leader {
		t.Fatal("first lookup must lead")
	}
	full, _ := testEntry(t, "big", 30)
	ent.g, ent.c = full.g, full.c
	sc.finish(ent)
	st := sc.stats()
	if st.Entries != 0 || st.BytesUsed != 0 || st.Evictions != 1 {
		t.Fatalf("oversize stats = %+v", st)
	}
	if _, leader := sc.lookup("big"); !leader {
		t.Fatal("oversize entry was retained despite a zero budget")
	}
}

// TestEngineCacheBudgetEviction drives eviction through the Engine
// surface: a budget sized for one snapshot forces regeneration when
// identities alternate, and a raised budget restores hit behavior.
func TestEngineCacheBudgetEviction(t *testing.T) {
	var calls atomic.Int64
	reg := NewRegistry()
	if err := reg.Register(&FuncGenerator{
		GenName:   "counted",
		GenParams: []ParamSpec{{Name: "n", Kind: Int, Default: 50}, seedSpec},
		Fn: func(ctx context.Context, p Params) (*graph.Graph, error) {
			calls.Add(1)
			return gen.BarabasiAlbert(p.Int("n"), 2, p.Seed())
		},
	}); err != nil {
		t.Fatal(err)
	}
	g, err := gen.BarabasiAlbert(50, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	oneEntry := g.MemBytes() + g.Freeze().MemBytes()

	e := NewEngine(reg)
	e.SetCacheBudget(oneEntry + oneEntry/2) // holds exactly one snapshot
	runSeed := func(seed int64) {
		t.Helper()
		sc := Scenario{
			Generate: GenerateSpec{Model: "counted"},
			Measure:  &MeasureSpec{Degrees: true},
			Seeds:    []int64{seed},
		}
		if _, err := e.Run(context.Background(), sc, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	runSeed(1) // miss
	runSeed(2) // miss, evicts seed 1
	runSeed(1) // regenerated: a third call
	if got := calls.Load(); got != 3 {
		t.Fatalf("generator ran %d times under a one-entry budget, want 3", got)
	}
	st := e.CacheStats()
	if st.Evictions < 2 || st.Hits != 0 {
		t.Fatalf("stats after thrashing = %+v", st)
	}
	e.SetCacheBudget(DefaultCacheBudget)
	runSeed(1) // last insert of the thrash: still resident, a hit
	if got := calls.Load(); got != 3 {
		t.Fatalf("generator ran %d times, want 3 (seed 1 was resident)", got)
	}
	runSeed(2) // evicted during the thrash: regenerated
	if got := calls.Load(); got != 4 {
		t.Fatalf("generator ran %d times, want 4 (seed 2 was evicted)", got)
	}
	runSeed(1)
	if got := calls.Load(); got != 4 {
		t.Fatalf("generator reran a resident identity (%d calls)", got)
	}
	if st := e.CacheStats(); st.Hits != 2 {
		t.Fatalf("Hits = %d, want 2", st.Hits)
	}
}

// TestConcurrentSharedEngineSingleGeneration is the -race satellite:
// many goroutines hammer one shared Engine with overlapping topology
// identities via both Run and RunBatch; each identity generates exactly
// once and every concurrent result is byte-identical to the serial
// reference.
func TestConcurrentSharedEngineSingleGeneration(t *testing.T) {
	var calls atomic.Int64
	reg := NewRegistry()
	if err := reg.Register(&FuncGenerator{
		GenName:   "counted",
		GenParams: []ParamSpec{{Name: "n", Kind: Int, Default: 60}, seedSpec},
		Fn: func(ctx context.Context, p Params) (*graph.Graph, error) {
			calls.Add(1)
			return gen.BarabasiAlbert(p.Int("n"), 2, p.Seed())
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Three batch variants over two topology sizes and three seeds:
	// 2 x 3 = 6 distinct identities, heavily overlapping across
	// variants.
	variants := [][]Scenario{
		{
			{Generate: GenerateSpec{Model: "counted", Params: Params{"n": 60}},
				Measure: &MeasureSpec{Degrees: true}, Seeds: []int64{1, 2, 3}},
			{Generate: GenerateSpec{Model: "counted", Params: Params{"n": 80}},
				Measure: &MeasureSpec{Degrees: true}, Seeds: []int64{1, 2}},
		},
		{
			{Generate: GenerateSpec{Model: "counted", Params: Params{"n": 60}},
				Route: &RouteSpec{Demands: 10}, Seeds: []int64{2, 3}},
		},
		{
			{Generate: GenerateSpec{Model: "counted", Params: Params{"n": 80}},
				Attack: &AttackSpec{Strategy: "degree", Fracs: []float64{0.1}}, Seeds: []int64{1, 2, 3}},
		},
	}
	const distinctIdentities = 6 // n in {60, 80} x seeds {1, 2, 3}

	// Serial references on fresh engines.
	refs := make([]string, len(variants))
	for i, scs := range variants {
		res, err := NewEngine(reg).RunBatch(context.Background(), scs, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = formatAll(res)
	}
	runRes, err := NewEngine(reg).Run(context.Background(), variants[0][0], Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	runRef := runRes.Format()
	calls.Store(0)

	shared := NewEngine(reg)
	const goroutines = 18
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		v := i % len(variants)
		useRun := v == 0 && i%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			if useRun {
				// Exercise the single-scenario Run path too.
				res, err := shared.Run(context.Background(), variants[0][0], Options{Workers: 2})
				if err != nil {
					errCh <- err
					return
				}
				if got := res.Format(); got != runRef {
					errCh <- fmt.Errorf("Run output diverged from serial reference:\n--- got ---\n%s\n--- want ---\n%s", got, runRef)
				}
				return
			}
			res, err := shared.RunBatch(context.Background(), variants[v], Options{Workers: 4})
			if err != nil {
				errCh <- err
				return
			}
			if got := formatAll(res); got != refs[v] {
				errCh <- fmt.Errorf("variant %d output diverged from serial reference:\n--- got ---\n%s\n--- want ---\n%s", v, got, refs[v])
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := calls.Load(); got != distinctIdentities {
		t.Fatalf("generator ran %d times across %d concurrent batches, want %d (one per identity)",
			got, goroutines, distinctIdentities)
	}
	st := shared.CacheStats()
	if st.Misses != distinctIdentities {
		t.Fatalf("Misses = %d, want %d", st.Misses, distinctIdentities)
	}
	if st.Hits+st.Coalesced == 0 {
		t.Fatal("no hits or coalesced lookups across overlapping concurrent batches")
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after all batches returned", st.InFlight)
	}
}

// TestRunBatchPartialResultsOnCancel pins the partial-results contract:
// a canceled batch returns the contiguous completed prefix per scenario
// with Partial set, alongside the ErrCanceled-wrapping error.
func TestRunBatchPartialResultsOnCancel(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(&FuncGenerator{
		GenName:   "fast",
		GenParams: []ParamSpec{seedSpec},
		Fn: func(ctx context.Context, p Params) (*graph.Graph, error) {
			g, err := gen.BarabasiAlbert(40, 2, p.Seed())
			return g, err
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&FuncGenerator{
		GenName:   "block",
		GenParams: []ParamSpec{seedSpec},
		Fn: func(ctx context.Context, p Params) (*graph.Graph, error) {
			<-ctx.Done()
			return nil, errs.Ctx(ctx)
		},
	}); err != nil {
		t.Fatal(err)
	}
	scs := []Scenario{
		{Generate: GenerateSpec{Model: "fast"}, Measure: &MeasureSpec{Degrees: true}, Seeds: []int64{1, 2}},
		{Generate: GenerateSpec{Model: "block"}, Measure: &MeasureSpec{Degrees: true}, Seeds: []int64{9}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var progress atomic.Int64
	fastDone := make(chan struct{})
	// Cancel only once both fast units completed, so the partial prefix
	// below is deterministic; the blocking generator holds the batch
	// open until then.
	go func() {
		<-fastDone
		cancel()
	}()
	res, err := NewEngine(reg).RunBatch(ctx, scs, Options{
		Workers: 4,
		Progress: func(si, rep int, rr RepResult) {
			if rr.Nodes != 40 {
				t.Errorf("progress unit (%d, %d) carries %d nodes, want 40", si, rep, rr.Nodes)
			}
			if progress.Add(1) == 2 {
				close(fastDone)
			}
		},
	})
	if !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("canceled batch gave %v, want ErrCanceled", err)
	}
	if len(res) != 2 {
		t.Fatalf("partial results length = %d, want 2", len(res))
	}
	if !res[0].Partial || !res[1].Partial {
		t.Fatalf("partial results not marked: %v %v", res[0].Partial, res[1].Partial)
	}
	if len(res[0].Reps) != 2 {
		t.Fatalf("fast scenario kept %d reps, want the 2 completed ones", len(res[0].Reps))
	}
	if len(res[1].Reps) != 0 {
		t.Fatalf("blocked scenario kept %d reps, want 0", len(res[1].Reps))
	}
	if got := res[0].Format(); !strings.Contains(got, "PARTIAL") {
		t.Fatalf("formatted partial table missing the PARTIAL marker:\n%s", got)
	}
}
