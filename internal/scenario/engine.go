package scenario

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/metricreg"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/robust"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/trafficreg"
)

// Options tune an Engine batch run.
type Options struct {
	// Workers bounds the goroutines fanning (scenario, replication)
	// units out (<= 0 means GOMAXPROCS). All reductions happen in unit
	// order, so output is byte-identical for any value.
	Workers int
}

// Engine executes scenarios over a registry on the CSR kernel. It
// caches frozen snapshots keyed by topology identity (model + resolved
// params + seed), so scenarios that measure, route and attack the same
// topology generate and freeze it once. The zero value is not usable;
// call NewEngine.
type Engine struct {
	reg *Registry

	mu    sync.Mutex
	cache map[string]*topoEntry
	// cacheLimit bounds the snapshot cache (default 128 entries).
	cacheLimit int
}

type topoEntry struct {
	ready chan struct{}
	g     *graph.Graph
	c     *graph.CSR
	err   error
}

// NewEngine returns an engine over the given registry (nil means
// Default()).
func NewEngine(reg *Registry) *Engine {
	if reg == nil {
		reg = Default()
	}
	return &Engine{reg: reg, cache: map[string]*topoEntry{}, cacheLimit: 128}
}

// Registry returns the registry this engine resolves models in.
func (e *Engine) Registry() *Registry { return e.reg }

// snapshot returns the generated topology and its frozen CSR for one
// (generate-spec, seed) identity, generating at most once per identity
// even under concurrent replications. Failed generations (including
// cancellations) are not cached, so a later run with a live context
// retries.
func (e *Engine) snapshot(ctx context.Context, gen Generator, resolved Params, seed int64) (*graph.Graph, *graph.CSR, error) {
	key := identityKey(gen.Name(), resolved, seed)
	e.mu.Lock()
	ent, ok := e.cache[key]
	if !ok {
		ent = &topoEntry{ready: make(chan struct{})}
		if len(e.cache) >= e.cacheLimit {
			// Evict an arbitrary completed entry; the cache only affects
			// performance, never results.
			for k, old := range e.cache {
				select {
				case <-old.ready:
					delete(e.cache, k)
				default:
					continue
				}
				break
			}
		}
		e.cache[key] = ent
		e.mu.Unlock()

		p := resolved.Clone()
		p["seed"] = float64(seed)
		g, err := gen.Generate(ctx, p)
		if err != nil {
			ent.err = err
		} else {
			ent.g, ent.c = g, g.Freeze()
		}
		close(ent.ready)
		if err != nil {
			e.mu.Lock()
			delete(e.cache, key)
			e.mu.Unlock()
		}
		return ent.g, ent.c, ent.err
	}
	e.mu.Unlock()
	select {
	case <-ent.ready:
		return ent.g, ent.c, ent.err
	case <-ctx.Done():
		return nil, nil, fmt.Errorf("scenario: waiting for topology: %w", errs.Ctx(ctx))
	}
}

// Run executes one scenario with the given worker bound applied to its
// replications.
func (e *Engine) Run(ctx context.Context, sc Scenario, opt Options) (*Result, error) {
	out, err := e.RunBatch(ctx, []Scenario{sc}, opt)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// RunBatch executes scenarios concurrently: every (scenario,
// replication) unit fans out across the worker pool and results are
// reduced in unit order, so the returned slice — and each Result's
// Format output — is byte-identical for any Options.Workers. The
// context is checked before each unit and inside every stage; the first
// (lowest-unit) error aborts the batch, with cancellation surfacing as
// an errs.ErrCanceled-wrapping error.
func (e *Engine) RunBatch(ctx context.Context, scs []Scenario, opt Options) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type unitRef struct {
		si, rep int
	}
	var units []unitRef
	results := make([]*Result, len(scs))
	resolved := make([]Params, len(scs))
	gens := make([]Generator, len(scs))
	for si := range scs {
		sc := &scs[si]
		g, p, err := sc.prepare(e.reg)
		if err != nil {
			return nil, err
		}
		gens[si], resolved[si] = g, p
		results[si] = &Result{Scenario: scs[si], Reps: make([]RepResult, sc.NumReps())}
		for rep := 0; rep < sc.NumReps(); rep++ {
			units = append(units, unitRef{si, rep})
		}
	}
	err := par.ForEachErr(opt.Workers, len(units), func(u int) error {
		if err := errs.Ctx(ctx); err != nil {
			return fmt.Errorf("scenario: unit %d: %w", u, err)
		}
		ref := units[u]
		rr, err := e.runRep(ctx, &scs[ref.si], gens[ref.si], resolved[ref.si], ref.rep)
		if err != nil {
			return fmt.Errorf("scenario %s rep %d: %w", scs[ref.si].describe(), ref.rep, err)
		}
		results[ref.si].Reps[ref.rep] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runRep executes one replication: generate (or hit the snapshot
// cache), then the enabled measure/route/attack stages, all on the
// shared frozen CSR.
func (e *Engine) runRep(ctx context.Context, sc *Scenario, gen Generator, resolved Params, rep int) (RepResult, error) {
	seed := sc.SeedFor(rep)
	g, c, err := e.snapshot(ctx, gen, resolved, seed)
	if err != nil {
		return RepResult{}, err
	}
	rr := RepResult{Seed: seed, Nodes: g.NumNodes(), Edges: g.NumEdges()}

	if m := sc.Measure; m != nil {
		if m.wantProfile() {
			prof, err := metrics.ProfileContext(ctx, g, c, seed, 1)
			if err != nil {
				return RepResult{}, err
			}
			rr.Profile = &prof
		}
		if m.Degrees {
			if err := errs.Ctx(ctx); err != nil {
				return RepResult{}, err
			}
			ds := stats.AnalyzeDegrees(g)
			rr.Degrees = &DegreeSummary{
				MeanDegree: ds.MeanDegree,
				MaxDegree:  ds.MaxDegree,
				Tail:       ds.Classification.Kind.String(),
			}
		}
		if len(m.Metrics) > 0 {
			vals, err := metricreg.Default().Evaluate(ctx, metricreg.NewSource(g, c), m.Metrics,
				metricreg.Options{Workers: 1, Seed: seed})
			if err != nil {
				return RepResult{}, err
			}
			rr.Metrics = vals
		}
	}

	if rt := sc.Route; rt != nil {
		sum, err := e.route(ctx, g, c, rt, seed)
		if err != nil {
			return RepResult{}, err
		}
		rr.Route = sum
	}

	if ts := sc.Traffic; ts != nil {
		sum, err := e.traffic(ctx, g, c, ts, seed)
		if err != nil {
			return RepResult{}, err
		}
		rr.Traffic = sum
	}

	if at := sc.Attack; at != nil {
		fracs := at.Fracs
		if len(fracs) == 0 {
			fracs = []float64{0.05, 0.1, 0.2}
		}
		trials := at.Trials
		if trials <= 0 {
			trials = 3
		}
		// The registry-driven sweep engine in its default auto mode: the
		// LCC curve rides the incremental reverse union-find path.
		curves, err := robust.RunSweepContext(ctx, g, c, robust.SweepSpec{
			Attack:  at.Strategy,
			Params:  at.Params,
			Fracs:   fracs,
			Trials:  trials,
			Workers: 1,
		}, seed)
		if err != nil {
			return RepResult{}, err
		}
		pts := make([]robust.SweepPoint, len(fracs))
		for i, f := range fracs {
			pts[i] = robust.SweepPoint{FracRemoved: f, LCCFrac: curves[0].Values[i]}
		}
		rr.Attack = pts
	}
	return rr, nil
}

func (e *Engine) route(ctx context.Context, g *graph.Graph, c *graph.CSR, rt *RouteSpec, seed int64) (*RouteSummary, error) {
	demands := randomDemands(g.NumNodes(), rt.Demands, rt.Volume, seed)
	mode := rt.Mode
	if mode == "" {
		mode = "shortest"
	}
	sum := &RouteSummary{Mode: mode}
	switch mode {
	case "shortest":
		res, err := routing.RouteShortestPathsContext(ctx, g, c, demands)
		if err != nil {
			return nil, err
		}
		sum.Delivered, sum.Dropped = res.Delivered, res.Dropped
		sum.MaxUtilization, sum.AvgHops = finite(res.MaxUtilization), res.AvgHops
	case "capacitated":
		res, err := routing.RouteCapacitatedContext(ctx, g, c, demands)
		if err != nil {
			return nil, err
		}
		sum.Delivered, sum.Dropped = res.Delivered, res.Dropped
		sum.MaxUtilization, sum.AvgHops = finite(res.MaxUtilization), res.AvgHops
	case "maxmin":
		res, err := routing.MaxMinFairContext(ctx, g, c, demands)
		if err != nil {
			return nil, err
		}
		sum.Delivered = res.Throughput
		sum.Jain = res.JainIndex
	default:
		return nil, errs.BadParamf("scenario: unknown route mode %q", mode)
	}
	return sum, nil
}

// trafficMetricSet is the CapTraffic metric set the traffic stage
// evaluates on the registry-generated demands.
func trafficMetricSet() []metricreg.Selection {
	return []metricreg.Selection{
		{Name: "throughput"}, {Name: "max-utilization"},
		{Name: "jain"}, {Name: "delivered-frac"},
	}
}

// traffic runs the registry-driven route/allocate stage: the named
// demand model generates site-to-site demands over the topology's
// top-degree sites, and the CapTraffic metrics summarize the
// volume-aware allocation. One fused evaluation per replication on the
// shared frozen snapshot.
func (e *Engine) traffic(ctx context.Context, g *graph.Graph, c *graph.CSR, ts *TrafficSpec, seed int64) (*TrafficSummary, error) {
	sites := ts.Sites
	if sites <= 0 {
		sites = 16
	}
	// Unprovisioned edges count as one capacity unit (or ts.Capacity)
	// so generated topologies allocate instead of starving; edge weights
	// are untouched, so the shared frozen snapshot stays valid for path
	// pinning.
	defCap := ts.Capacity
	if defCap == 0 {
		defCap = 1
	}
	eval, demands, sites, err := trafficreg.PrepareGraphTraffic(ctx, g,
		trafficreg.Selection{Name: ts.Model, Params: ts.Params}, sites, defCap, seed)
	if err != nil {
		return nil, err
	}
	src := metricreg.NewSource(eval, c)
	src.SetTraffic(demands)
	vals, err := metricreg.Default().Evaluate(ctx, src, trafficMetricSet(),
		metricreg.Options{Workers: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	offered := 0.0
	for _, d := range demands {
		offered += d.Volume
	}
	return &TrafficSummary{
		Model:          trafficreg.Canonical(ts.Model),
		Sites:          sites,
		Demands:        len(demands),
		Offered:        offered,
		Throughput:     vals["throughput"].Scalar,
		DeliveredFrac:  vals["delivered-frac"].Scalar,
		MaxUtilization: vals["max-utilization"].Scalar,
		Jain:           vals["jain"].Scalar,
	}, nil
}

// finite clamps +Inf utilization (zero-capacity edges) to -1 so result
// tables and JSON stay well-formed.
func finite(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return -1
	}
	return v
}

// randomDemands draws count random distinct-endpoint demands,
// deterministically from seed.
func randomDemands(n, count int, volume float64, seed int64) []routing.Demand {
	if n < 2 || count < 1 {
		return nil
	}
	if volume <= 0 {
		volume = 1
	}
	r := rng.New(rng.Derive(seed, 7001))
	out := make([]routing.Demand, 0, count)
	for len(out) < count {
		s, d := r.Intn(n), r.Intn(n)
		if s == d {
			continue
		}
		out = append(out, routing.Demand{Src: s, Dst: d, Volume: volume})
	}
	return out
}
