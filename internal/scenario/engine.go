package scenario

import (
	"context"
	"fmt"
	"math"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/metricreg"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/robust"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/trafficreg"
)

// Options tune an Engine batch run.
type Options struct {
	// Workers bounds the goroutines fanning (scenario, replication)
	// units out (<= 0 means GOMAXPROCS). All reductions happen in unit
	// order, so output is byte-identical for any value.
	Workers int
	// Progress, when non-nil, is called once per completed (scenario,
	// replication) unit with a copy of its result. Units complete in
	// scheduling order, not unit order, and calls may arrive from
	// several worker goroutines concurrently — the callback must be
	// safe for concurrent use. The scenario index refers to the slice
	// passed to RunBatch. The scenario service uses this to stream
	// incremental per-rep results while a job runs.
	Progress func(scenario, rep int, rr RepResult)
}

// Engine executes scenarios over a registry on the CSR kernel. It
// caches frozen snapshots keyed by topology identity (model + resolved
// params + seed) in a byte-budgeted LRU (see CacheStats), so scenarios
// that measure, route and attack the same topology generate and freeze
// it once — including across concurrent batches: the cache has
// singleflight semantics, so any number of concurrent callers of one
// identity amortize a single generation. The zero value is not usable;
// call NewEngine. An Engine is safe for concurrent use and is designed
// to be shared — the scenario service hosts one Engine for all jobs.
type Engine struct {
	reg   *Registry
	cache *snapCache
}

// NewEngine returns an engine over the given registry (nil means
// Default()) with the default snapshot-cache budget
// (DefaultCacheBudget).
func NewEngine(reg *Registry) *Engine {
	if reg == nil {
		reg = Default()
	}
	return &Engine{reg: reg, cache: newSnapCache(DefaultCacheBudget)}
}

// Registry returns the registry this engine resolves models in.
func (e *Engine) Registry() *Registry { return e.reg }

// SetCacheBudget bounds the snapshot cache's estimated resident
// footprint in bytes (Graph + CSR, via their MemBytes estimators),
// evicting immediately if the new budget is tighter than what is
// resident. A budget <= 0 disables retention entirely while keeping the
// singleflight generation sharing.
func (e *Engine) SetCacheBudget(bytes int64) { e.cache.setBudget(bytes) }

// CacheStats returns a point-in-time snapshot of the cache counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.stats() }

// snapshot returns the generated topology and its frozen CSR for one
// (generate-spec, seed) identity, generating at most once per identity
// even under concurrent replications. Failed generations (including
// cancellations) are never retained, so a later run with a live context
// retries.
func (e *Engine) snapshot(ctx context.Context, gen Generator, resolved Params, seed int64) (*graph.Graph, *graph.CSR, error) {
	key := identityKey(gen.Name(), resolved, seed)
	ent, leader := e.cache.lookup(key)
	if leader {
		p := resolved.Clone()
		p["seed"] = float64(seed)
		g, err := gen.Generate(ctx, p)
		if err != nil {
			ent.err = err
		} else {
			ent.g, ent.c = g, g.Freeze()
		}
		e.cache.finish(ent)
		return ent.g, ent.c, ent.err
	}
	select {
	case <-ent.ready:
		return ent.g, ent.c, ent.err
	case <-ctx.Done():
		return nil, nil, fmt.Errorf("scenario: waiting for topology: %w", errs.Ctx(ctx))
	}
}

// Run executes one scenario with the given worker bound applied to its
// replications. Like RunBatch, a started-then-failed run returns its
// Partial result alongside the error — the single-scenario surface
// keeps the completed replication prefix instead of dropping it.
func (e *Engine) Run(ctx context.Context, sc Scenario, opt Options) (*Result, error) {
	out, err := e.RunBatch(ctx, []Scenario{sc}, opt)
	if err != nil {
		if len(out) == 1 {
			return out[0], err
		}
		return nil, err
	}
	return out[0], nil
}

// RunBatch executes scenarios concurrently: every (scenario,
// replication) unit fans out across the worker pool and results are
// reduced in unit order, so the returned slice — and each Result's
// Format output — is byte-identical for any Options.Workers. The
// context is checked before each unit and inside every stage; the first
// (lowest-unit) error aborts the batch, with cancellation surfacing as
// an errs.ErrCanceled-wrapping error.
//
// When a started batch fails (cancellation included), the returned
// slice still carries the partial output alongside the error: each
// Result is marked Partial and its Reps trimmed to the contiguous
// prefix of replications that completed, so a cut-short run is
// distinguishable from a complete one. Errors before any unit runs
// (spec validation) return a nil slice.
func (e *Engine) RunBatch(ctx context.Context, scs []Scenario, opt Options) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type unitRef struct {
		si, rep int
	}
	var units []unitRef
	results := make([]*Result, len(scs))
	resolved := make([]Params, len(scs))
	gens := make([]Generator, len(scs))
	for si := range scs {
		sc := &scs[si]
		g, p, err := sc.prepare(e.reg)
		if err != nil {
			return nil, err
		}
		gens[si], resolved[si] = g, p
		results[si] = &Result{Scenario: scs[si], Reps: make([]RepResult, sc.NumReps())}
		for rep := 0; rep < sc.NumReps(); rep++ {
			units = append(units, unitRef{si, rep})
		}
	}
	// done is written by at most one worker per index and read only
	// after the fan-out fully returns.
	done := make([]bool, len(units))
	err := par.ForEachErr(opt.Workers, len(units), func(u int) error {
		if err := errs.Ctx(ctx); err != nil {
			return fmt.Errorf("scenario: unit %d: %w", u, err)
		}
		ref := units[u]
		rr, err := e.runRep(ctx, &scs[ref.si], gens[ref.si], resolved[ref.si], ref.rep)
		if err != nil {
			return fmt.Errorf("scenario %s rep %d: %w", scs[ref.si].describe(), ref.rep, err)
		}
		results[ref.si].Reps[ref.rep] = rr
		done[u] = true
		if opt.Progress != nil {
			opt.Progress(ref.si, ref.rep, rr)
		}
		return nil
	})
	if err != nil {
		// Units were appended per scenario, so scenario si owns the
		// contiguous block of NumReps() units starting at its offset.
		u := 0
		for si := range results {
			reps := len(results[si].Reps)
			k := 0
			for k < reps && done[u+k] {
				k++
			}
			results[si].Reps = results[si].Reps[:k]
			results[si].Partial = true
			u += reps
		}
		return results, err
	}
	return results, nil
}

// runRep executes one replication: generate (or hit the snapshot
// cache), then the enabled measure/route/attack stages, all on the
// shared frozen CSR.
func (e *Engine) runRep(ctx context.Context, sc *Scenario, gen Generator, resolved Params, rep int) (RepResult, error) {
	seed := sc.SeedFor(rep)
	g, c, err := e.snapshot(ctx, gen, resolved, seed)
	if err != nil {
		return RepResult{}, err
	}
	rr := RepResult{Seed: seed, Nodes: g.NumNodes(), Edges: g.NumEdges()}

	if m := sc.Measure; m != nil {
		if m.wantProfile() {
			prof, err := metrics.ProfileContext(ctx, g, c, seed, 1)
			if err != nil {
				return RepResult{}, err
			}
			rr.Profile = &prof
		}
		if m.Degrees {
			if err := errs.Ctx(ctx); err != nil {
				return RepResult{}, err
			}
			ds := stats.AnalyzeDegrees(g)
			rr.Degrees = &DegreeSummary{
				MeanDegree: ds.MeanDegree,
				MaxDegree:  ds.MaxDegree,
				Tail:       ds.Classification.Kind.String(),
			}
		}
		if len(m.Metrics) > 0 {
			vals, err := metricreg.Default().Evaluate(ctx, metricreg.NewSource(g, c), m.Metrics,
				metricreg.Options{Workers: 1, Seed: seed})
			if err != nil {
				return RepResult{}, err
			}
			rr.Metrics = vals
		}
	}

	if rt := sc.Route; rt != nil {
		sum, err := e.route(ctx, g, c, rt, seed)
		if err != nil {
			return RepResult{}, err
		}
		rr.Route = sum
	}

	if ts := sc.Traffic; ts != nil {
		sum, err := e.traffic(ctx, g, c, ts, seed)
		if err != nil {
			return RepResult{}, err
		}
		rr.Traffic = sum
	}

	if at := sc.Attack; at != nil {
		fracs := at.Fracs
		if len(fracs) == 0 {
			fracs = []float64{0.05, 0.1, 0.2}
		}
		trials := at.Trials
		if trials <= 0 {
			trials = 3
		}
		// The registry-driven sweep engine in its default auto mode: the
		// LCC curve rides the incremental reverse union-find path.
		curves, err := robust.RunSweepContext(ctx, g, c, robust.SweepSpec{
			Attack:  at.Strategy,
			Params:  at.Params,
			Fracs:   fracs,
			Trials:  trials,
			Workers: 1,
		}, seed)
		if err != nil {
			return RepResult{}, err
		}
		pts := make([]robust.SweepPoint, len(fracs))
		for i, f := range fracs {
			pts[i] = robust.SweepPoint{FracRemoved: f, LCCFrac: curves[0].Values[i]}
		}
		rr.Attack = pts
	}

	if tl := sc.Timeline; tl != nil {
		pts, err := e.timeline(ctx, g, c, sc, tl, seed)
		if err != nil {
			return RepResult{}, err
		}
		rr.Timeline = pts
	}
	return rr, nil
}

// timeline executes the temporal stage for one replication: the
// repeat-unrolled event schedule's connectivity events run through the
// epoch-based engine in one call (mode-selectable for the parity
// tests), and each capacity-set/demand-switch event re-evaluates the
// CapTraffic set with the capacities and demand model current at that
// point. The scenario's Traffic stage, when present, seeds the initial
// demand model, site count, and default capacity; without one the
// defaults match a bare TrafficSpec (gravity, 16 sites, unit capacity).
func (e *Engine) timeline(ctx context.Context, g *graph.Graph, c *graph.CSR, sc *Scenario, tl *TimelineSpec, seed int64) ([]TimelinePoint, error) {
	repeat := tl.Repeat
	if repeat < 1 {
		repeat = 1
	}
	total := len(tl.Events) * repeat
	mode, err := robust.ParseTimelineMode(tl.Mode)
	if err != nil {
		return nil, err
	}
	metricNames := tl.Metrics
	if len(metricNames) == 0 {
		metricNames = []string{"lcc"}
	}

	// One pass splits the expanded schedule: connectivity events feed
	// the robust engine as a single timeline, prefix[i] maps expanded
	// event i to its row in the returned trajectory (row 0 = intact).
	conn := make([]robust.TimelineEvent, 0, total)
	prefix := make([]int, total)
	for i := 0; i < total; i++ {
		ev := &tl.Events[i%len(tl.Events)]
		if op, id, ok := ev.connectivity(); ok {
			conn = append(conn, robust.TimelineEvent{Op: op, ID: id})
		}
		prefix[i] = len(conn)
	}
	curves, err := robust.RunTimelineContext(ctx, c, conn, metricNames, mode, seed)
	if err != nil {
		return nil, err
	}

	// Traffic state, mutated as capacity-set/demand-switch events land.
	sel := trafficreg.Selection{}
	sites, defCap := 16, 1.0
	if ts := sc.Traffic; ts != nil {
		sel = trafficreg.Selection{Name: ts.Model, Params: ts.Params}
		if ts.Sites > 0 {
			sites = ts.Sites
		}
		if ts.Capacity != 0 {
			defCap = ts.Capacity
		}
	}
	trafficG, cloned := g, false

	pts := make([]TimelinePoint, total)
	for i := 0; i < total; i++ {
		ev := &tl.Events[i%len(tl.Events)]
		pt := TimelinePoint{Index: i, Event: ev.Event, Node: ev.Node, Edge: ev.Edge}
		if ev.At != nil {
			t := *ev.At
			pt.Time = &t
		} else if ev.Step != nil {
			t := float64(*ev.Step)
			pt.Time = &t
		}
		pt.Metrics = make(map[string]float64, len(curves))
		for mi := range curves {
			pt.Metrics[curves[mi].Name] = curves[mi].Values[prefix[i]]
		}
		switch ev.Event {
		case "capacity-set":
			eid := *ev.Edge
			if eid >= g.NumEdges() {
				return nil, errs.BadParamf("scenario: timeline event %d: edge %d out of [0,%d)", i, eid, g.NumEdges())
			}
			// The first capacity change clones the shared snapshot's
			// graph; the CSR stays valid (capacities are not frozen into
			// it) so path pinning reuses it.
			if !cloned {
				trafficG, cloned = g.Clone(), true
			}
			trafficG.Edge(eid).Capacity = *ev.Capacity
		case "demand-switch":
			sel = trafficreg.Selection{Name: ev.Model, Params: ev.Params}
		default:
			pts[i] = pt
			continue
		}
		sum, err := trafficSummary(ctx, trafficG, c, sel, sites, defCap, seed)
		if err != nil {
			return nil, err
		}
		pt.Traffic = sum
		pts[i] = pt
	}
	return pts, nil
}

func (e *Engine) route(ctx context.Context, g *graph.Graph, c *graph.CSR, rt *RouteSpec, seed int64) (*RouteSummary, error) {
	demands := randomDemands(g.NumNodes(), rt.Demands, rt.Volume, seed)
	mode := rt.Mode
	if mode == "" {
		mode = "shortest"
	}
	sum := &RouteSummary{Mode: mode}
	switch mode {
	case "shortest":
		res, err := routing.RouteShortestPathsContext(ctx, g, c, demands)
		if err != nil {
			return nil, err
		}
		sum.Delivered, sum.Dropped = res.Delivered, res.Dropped
		sum.MaxUtilization, sum.AvgHops = finite(res.MaxUtilization), res.AvgHops
	case "capacitated":
		res, err := routing.RouteCapacitatedContext(ctx, g, c, demands)
		if err != nil {
			return nil, err
		}
		sum.Delivered, sum.Dropped = res.Delivered, res.Dropped
		sum.MaxUtilization, sum.AvgHops = finite(res.MaxUtilization), res.AvgHops
	case "maxmin":
		res, err := routing.MaxMinFairContext(ctx, g, c, demands)
		if err != nil {
			return nil, err
		}
		sum.Delivered = res.Throughput
		sum.Jain = res.JainIndex
	default:
		return nil, errs.BadParamf("scenario: unknown route mode %q", mode)
	}
	return sum, nil
}

// trafficMetricSet is the CapTraffic metric set the traffic stage
// evaluates on the registry-generated demands.
func trafficMetricSet() []metricreg.Selection {
	return []metricreg.Selection{
		{Name: "throughput"}, {Name: "max-utilization"},
		{Name: "jain"}, {Name: "delivered-frac"},
	}
}

// traffic runs the registry-driven route/allocate stage: the named
// demand model generates site-to-site demands over the topology's
// top-degree sites, and the CapTraffic metrics summarize the
// volume-aware allocation. One fused evaluation per replication on the
// shared frozen snapshot.
func (e *Engine) traffic(ctx context.Context, g *graph.Graph, c *graph.CSR, ts *TrafficSpec, seed int64) (*TrafficSummary, error) {
	sites := ts.Sites
	if sites <= 0 {
		sites = 16
	}
	// Unprovisioned edges count as one capacity unit (or ts.Capacity)
	// so generated topologies allocate instead of starving; edge weights
	// are untouched, so the shared frozen snapshot stays valid for path
	// pinning.
	defCap := ts.Capacity
	if defCap == 0 {
		defCap = 1
	}
	return trafficSummary(ctx, g, c, trafficreg.Selection{Name: ts.Model, Params: ts.Params}, sites, defCap, seed)
}

// trafficSummary evaluates one demand model over the topology's site
// geography and summarizes the CapTraffic metric set — the shared back
// half of the traffic stage and every timeline traffic row.
func trafficSummary(ctx context.Context, g *graph.Graph, c *graph.CSR, sel trafficreg.Selection, sites int, defCap float64, seed int64) (*TrafficSummary, error) {
	eval, demands, sites, err := trafficreg.PrepareGraphTraffic(ctx, g, sel, sites, defCap, seed)
	if err != nil {
		return nil, err
	}
	src := metricreg.NewSource(eval, c)
	src.SetTraffic(demands)
	vals, err := metricreg.Default().Evaluate(ctx, src, trafficMetricSet(),
		metricreg.Options{Workers: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	offered := 0.0
	for _, d := range demands {
		offered += d.Volume
	}
	return &TrafficSummary{
		Model:          trafficreg.Canonical(sel.Name),
		Sites:          sites,
		Demands:        len(demands),
		Offered:        offered,
		Throughput:     vals["throughput"].Scalar,
		DeliveredFrac:  vals["delivered-frac"].Scalar,
		MaxUtilization: vals["max-utilization"].Scalar,
		Jain:           vals["jain"].Scalar,
	}, nil
}

// finite clamps +Inf utilization (zero-capacity edges) to -1 so result
// tables and JSON stay well-formed.
func finite(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return -1
	}
	return v
}

// randomDemands draws count random distinct-endpoint demands,
// deterministically from seed.
func randomDemands(n, count int, volume float64, seed int64) []routing.Demand {
	if n < 2 || count < 1 {
		return nil
	}
	if volume <= 0 {
		volume = 1
	}
	r := rng.New(rng.Derive(seed, 7001))
	out := make([]routing.Demand, 0, count)
	for len(out) < count {
		s, d := r.Intn(n), r.Intn(n)
		if s == d {
			continue
		}
		out = append(out, routing.Demand{Src: s, Dst: d, Volume: volume})
	}
	return out
}
