// Package scenario is the repository's registry-driven pipeline API: the
// paper's argument is that topology work should be *scenario-driven* —
// optimization-designed topologies compared against descriptive
// baselines under one metric/routing/robustness harness — and this
// package makes that a first-class, name-addressable operation.
//
// Three pieces compose:
//
//   - A Generator registry: every topology model in the repository
//     (fkp, hot, mmp, ring, ba, glp, er-gnp, er-gnm, waxman,
//     transitstub, rgg, configmodel, inet, isp, internet) registered by
//     name with typed, validated, JSON-serializable parameters.
//   - A declarative Scenario spec (scenario.go): generate + measure +
//     route + attack stages plus seeds/reps, round-tripping through
//     JSON.
//   - An Engine (engine.go) that executes scenarios on the CSR kernel
//     with cancellation, a frozen-snapshot cache keyed by scenario
//     identity, and ordered reductions so batch output is byte-identical
//     at any worker count.
package scenario

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/params"
)

// ParamKind is the declared type of one generator parameter (the shared
// internal/params machinery, also under the metric registry).
type ParamKind = params.Kind

// Parameter kinds. Values travel as JSON numbers (float64); Int-kind
// parameters additionally require an integral value.
const (
	Int   = params.Int
	Float = params.Float
)

// ParamSpec declares one named generator parameter: its kind, default,
// and optional closed bounds. Specs are JSON-serializable so tooling can
// enumerate a generator's interface.
type ParamSpec = params.Spec

// Params carries generator arguments by name. Values are float64 — the
// JSON number type — so a Params map round-trips through JSON verbatim;
// Int-kind parameters are validated to hold integral values.
type Params = params.Params

// Generator is one registered topology model: a name, a typed parameter
// interface, and a context-aware generation function.
type Generator interface {
	// Name is the registry key (e.g. "fkp", "waxman").
	Name() string
	// Params declares the accepted parameters with kinds, defaults and
	// bounds.
	Params() []ParamSpec
	// Generate builds a topology. The given Params have been resolved
	// against the declared specs (defaults filled, unknown names
	// rejected, kinds and bounds checked). Implementations check ctx at
	// iteration boundaries and return an errs.ErrCanceled-wrapping error
	// once it is done.
	Generate(ctx context.Context, p Params) (*graph.Graph, error)
}

// Resolve validates user-supplied params against the generator's specs
// and returns a complete parameter set with defaults filled in. Unknown
// names, non-integral Int values and out-of-bounds values are rejected
// with errs.ErrBadParam-wrapping errors.
func Resolve(g Generator, p Params) (Params, error) {
	return params.Resolve(fmt.Sprintf("scenario: generator %q", g.Name()), g.Params(), p)
}

// Registry maps generator names to Generators. The zero value is ready
// to use; Default() holds every built-in model.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]Generator
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a generator, rejecting duplicate or empty names.
func (r *Registry) Register(g Generator) error {
	name := g.Name()
	if name == "" {
		return errs.BadParamf("scenario: generator with empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = map[string]Generator{}
	}
	if _, dup := r.byName[name]; dup {
		return errs.BadParamf("scenario: generator %q already registered", name)
	}
	r.byName[name] = g
	return nil
}

// Lookup resolves a generator by name, wrapping errs.ErrBadParam for
// unknown names.
func (r *Registry) Lookup(name string) (Generator, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.byName[name]
	if !ok {
		return nil, errs.BadParamf("scenario: unknown model %q (have %v)", name, r.namesLocked())
	}
	return g, nil
}

// Names lists every registered generator name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.namesLocked()
}

func (r *Registry) namesLocked() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry holding every built-in
// generator (and anything added through Register).
func Default() *Registry { return defaultRegistry }

// Register adds a generator to the default registry.
func Register(g Generator) error { return defaultRegistry.Register(g) }

// Lookup resolves a name in the default registry.
func Lookup(name string) (Generator, error) { return defaultRegistry.Lookup(name) }

// Names lists the default registry, sorted.
func Names() []string { return defaultRegistry.Names() }

// FuncGenerator adapts a plain function plus a spec list into a
// Generator; it is how every built-in model is registered and the
// easiest way to add external ones.
type FuncGenerator struct {
	GenName   string
	GenParams []ParamSpec
	Fn        func(ctx context.Context, p Params) (*graph.Graph, error)
}

// Name implements Generator.
func (f *FuncGenerator) Name() string { return f.GenName }

// Params implements Generator.
func (f *FuncGenerator) Params() []ParamSpec {
	out := make([]ParamSpec, len(f.GenParams))
	copy(out, f.GenParams)
	return out
}

// Generate implements Generator.
func (f *FuncGenerator) Generate(ctx context.Context, p Params) (*graph.Graph, error) {
	return f.Fn(ctx, p)
}

// FormatModels writes a human-readable listing of every registered
// model and its parameters (sorted by name), prefixing each parameter
// line with paramPrefix — CLIs share this for their -list flags.
func (r *Registry) FormatModels(w io.Writer, paramPrefix string) {
	for _, name := range r.Names() {
		g, err := r.Lookup(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%s\n", name)
		specs := g.Params()
		sort.Slice(specs, func(a, b int) bool { return specs[a].Name < specs[b].Name })
		for _, s := range specs {
			fmt.Fprintf(w, "  %s%s=<%s>  (default %g)  %s\n", paramPrefix, s.Name, s.Kind, s.Default, s.Help)
		}
	}
}

// GenerateByName resolves name in the registry, validates params, and
// generates — the one-call path CLIs use.
func (r *Registry) GenerateByName(ctx context.Context, name string, p Params) (*graph.Graph, error) {
	g, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	resolved, err := Resolve(g, p)
	if err != nil {
		return nil, err
	}
	return g.Generate(ctx, resolved)
}
