package scenario

import (
	"context"
	"fmt"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/isp"
	"repro/internal/peering"
	"repro/internal/traffic"
)

// bound returns a *float64 for ParamSpec Min/Max literals.
func bound(v float64) *float64 { return &v }

// seedSpec is the seed parameter every built-in generator declares.
var seedSpec = ParamSpec{Name: "seed", Kind: Int, Default: 1, Help: "random seed"}

func mustRegister(name string, specs []ParamSpec, fn func(ctx context.Context, p Params) (*graph.Graph, error)) {
	g := &FuncGenerator{GenName: name, GenParams: append(specs, seedSpec), Fn: fn}
	if err := Register(g); err != nil {
		panic(err)
	}
}

func init() {
	mustRegister("fkp", []ParamSpec{
		{Name: "n", Kind: Int, Default: 1000, Min: bound(1), Help: "number of nodes"},
		{Name: "alpha", Kind: Float, Default: 8, Min: bound(0), Help: "distance weight"},
		{Name: "ports", Kind: Int, Default: 0, Min: bound(0), Help: "max router degree (0 = unlimited)"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		return core.FKPContext(ctx, core.FKPConfig{
			N: p.Int("n"), Alpha: p.Float("alpha"), Seed: p.Seed(), MaxDegree: p.Int("ports"),
		})
	})

	mustRegister("hot", []ParamSpec{
		{Name: "n", Kind: Int, Default: 1000, Min: bound(1), Help: "number of nodes"},
		{Name: "alpha", Kind: Float, Default: 8, Min: bound(0), Help: "distance weight"},
		{Name: "links", Kind: Int, Default: 1, Min: bound(0), Help: "links per arrival"},
		{Name: "ports", Kind: Int, Default: 0, Min: bound(0), Help: "max router degree (0 = unlimited)"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		cfg := core.HOTConfig{
			N:    p.Int("n"),
			Seed: p.Seed(),
			Terms: []core.ObjectiveTerm{
				core.DistanceTerm{Weight: p.Float("alpha")},
				core.CentralityTerm{Weight: 1},
			},
			LinksPerArrival: p.Int("links"),
		}
		if ports := p.Int("ports"); ports > 0 {
			cfg.Constraints = []core.Constraint{core.MaxDegreeConstraint{Max: ports}}
		}
		g, _, err := core.GrowHOTContext(ctx, cfg)
		return g, err
	})

	mustRegister("mmp", []ParamSpec{
		{Name: "n", Kind: Int, Default: 200, Min: bound(1), Help: "number of customers"},
		{Name: "dmin", Kind: Float, Default: 1, Min: bound(0), Help: "minimum customer demand"},
		{Name: "dmax", Kind: Float, Default: 16, Min: bound(0), Help: "maximum customer demand"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		in, err := access.RandomInstance(access.InstanceConfig{
			N: p.Int("n"), Seed: p.Seed(),
			DemandMin: p.Float("dmin"), DemandMax: p.Float("dmax"), RootAtCenter: true,
		})
		if err != nil {
			return nil, err
		}
		if err := errs.Ctx(ctx); err != nil {
			return nil, fmt.Errorf("scenario: mmp: %w", err)
		}
		net, err := access.MMPIncremental(in, p.Seed())
		if err != nil {
			return nil, err
		}
		return net.Graph, nil
	})

	mustRegister("ring", []ParamSpec{
		{Name: "n", Kind: Int, Default: 200, Min: bound(1), Help: "number of customers"},
		{Name: "ringsize", Kind: Int, Default: 8, Min: bound(2), Help: "max customers per SONET ring"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		in, err := access.RandomInstance(access.InstanceConfig{
			N: p.Int("n"), Seed: p.Seed(), DemandMin: 1, DemandMax: 16, RootAtCenter: true,
		})
		if err != nil {
			return nil, err
		}
		if err := errs.Ctx(ctx); err != nil {
			return nil, fmt.Errorf("scenario: ring: %w", err)
		}
		net, err := access.RingMetro(in, p.Int("ringsize"))
		if err != nil {
			return nil, err
		}
		return net.Graph, nil
	})

	mustRegister("ba", []ParamSpec{
		{Name: "n", Kind: Int, Default: 1000, Min: bound(2), Help: "number of nodes"},
		{Name: "m", Kind: Int, Default: 2, Min: bound(1), Help: "links per new node"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		return gen.BarabasiAlbertContext(ctx, p.Int("n"), p.Int("m"), p.Seed())
	})

	mustRegister("glp", []ParamSpec{
		{Name: "n", Kind: Int, Default: 1000, Min: bound(2), Help: "number of nodes"},
		{Name: "m", Kind: Int, Default: 2, Min: bound(1), Help: "links per growth step"},
		{Name: "p", Kind: Float, Default: 0.3, Min: bound(0), Max: bound(0.999), Help: "internal-link probability"},
		{Name: "beta", Kind: Float, Default: 0.5, Max: bound(0.999), Help: "preference shift (< 1)"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		return gen.GLPContext(ctx, p.Int("n"), p.Int("m"), p.Float("p"), p.Float("beta"), p.Seed())
	})

	mustRegister("er-gnp", []ParamSpec{
		{Name: "n", Kind: Int, Default: 1000, Min: bound(0), Help: "number of nodes"},
		{Name: "p", Kind: Float, Default: 0.01, Min: bound(0), Max: bound(1), Help: "edge probability"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		return gen.ErdosRenyiGNPContext(ctx, p.Int("n"), p.Float("p"), p.Seed())
	})

	mustRegister("er-gnm", []ParamSpec{
		{Name: "n", Kind: Int, Default: 1000, Min: bound(0), Help: "number of nodes"},
		{Name: "m", Kind: Int, Default: 2000, Min: bound(0), Help: "number of edges (clamped to C(n,2))"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		return gen.ErdosRenyiGNMContext(ctx, p.Int("n"), p.Int("m"), p.Seed())
	})

	mustRegister("waxman", []ParamSpec{
		{Name: "n", Kind: Int, Default: 1000, Min: bound(0), Help: "number of nodes"},
		{Name: "alpha", Kind: Float, Default: 0.1, Help: "distance decay scale (> 0)"},
		{Name: "beta", Kind: Float, Default: 0.5, Max: bound(1), Help: "edge probability scale (0, 1]"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		return gen.WaxmanContext(ctx, p.Int("n"), p.Float("alpha"), p.Float("beta"), p.Seed())
	})

	mustRegister("transitstub", []ParamSpec{
		{Name: "domains", Kind: Int, Default: 4, Min: bound(1), Help: "transit domains"},
		{Name: "transitsize", Kind: Int, Default: 4, Min: bound(1), Help: "routers per transit domain"},
		{Name: "stubs", Kind: Int, Default: 3, Min: bound(0), Help: "stub domains per transit router"},
		{Name: "stubsize", Kind: Int, Default: 8, Min: bound(1), Help: "routers per stub domain"},
		{Name: "edgeprob", Kind: Float, Default: 0.3, Min: bound(0), Max: bound(1), Help: "intra-domain extra edge probability"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		return gen.TransitStubContext(ctx, gen.TransitStubConfig{
			TransitDomains:  p.Int("domains"),
			TransitSize:     p.Int("transitsize"),
			StubsPerTransit: p.Int("stubs"),
			StubSize:        p.Int("stubsize"),
			EdgeProb:        p.Float("edgeprob"),
			Seed:            p.Seed(),
		})
	})

	mustRegister("rgg", []ParamSpec{
		{Name: "n", Kind: Int, Default: 1000, Min: bound(0), Help: "number of nodes"},
		{Name: "radius", Kind: Float, Default: 0.1, Min: bound(0), Help: "connection radius"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		return gen.RandomGeometricContext(ctx, p.Int("n"), p.Float("radius"), p.Seed())
	})

	mustRegister("configmodel", []ParamSpec{
		{Name: "n", Kind: Int, Default: 200, Min: bound(1), Help: "number of nodes"},
		{Name: "degree", Kind: Int, Default: 4, Min: bound(0), Help: "target degree of every node"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		degrees := make([]int, p.Int("n"))
		for i := range degrees {
			degrees[i] = p.Int("degree")
		}
		g, _, err := gen.ConfigurationModelContext(ctx, degrees, p.Seed())
		return g, err
	})

	mustRegister("inet", []ParamSpec{
		{Name: "n", Kind: Int, Default: 1000, Min: bound(3), Help: "number of nodes"},
		{Name: "alpha", Kind: Float, Default: 2.1, Help: "power-law degree exponent (> 1)"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		return gen.InetLikeContext(ctx, p.Int("n"), p.Float("alpha"), p.Seed())
	})

	mustRegister("isp", []ParamSpec{
		{Name: "cities", Kind: Int, Default: 25, Min: bound(1), Help: "population centers"},
		{Name: "pops", Kind: Int, Default: 8, Min: bound(1), Help: "points of presence"},
		{Name: "customers", Kind: Int, Default: 2000, Min: bound(0), Help: "customers across the footprint"},
		{Name: "ports", Kind: Int, Default: 0, Min: bound(0), Help: "max router degree in metros (0 = unlimited)"},
		{Name: "price", Kind: Float, Default: 0, Min: bound(0), Help: "per-demand price (> 0 switches to the profit formulation)"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		geo, err := traffic.GenerateGeography(traffic.GeographyConfig{
			NumCities: p.Int("cities"), Seed: p.Seed(), ZipfExponent: 1, MinSeparation: 0.03,
		})
		if err != nil {
			return nil, err
		}
		cfg := isp.Config{
			Geography:             geo,
			NumPOPs:               p.Int("pops"),
			Customers:             p.Int("customers"),
			Seed:                  p.Seed(),
			PerfWeight:            50,
			MaxExtraBackboneLinks: 4,
			MaxPorts:              p.Int("ports"),
			DemandMin:             1,
			DemandMax:             8,
		}
		if price := p.Float("price"); price > 0 {
			cfg.Formulation = isp.ProfitBased
			cfg.PricePerDemand = price
		}
		des, err := isp.BuildContext(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return des.Graph, nil
	})

	mustRegister("internet", []ParamSpec{
		{Name: "cities", Kind: Int, Default: 25, Min: bound(1), Help: "population centers"},
		{Name: "pops", Kind: Int, Default: 5, Min: bound(1), Help: "POPs per provider"},
		{Name: "customers", Kind: Int, Default: 300, Min: bound(0), Help: "customers per provider"},
		{Name: "isps", Kind: Int, Default: 8, Min: bound(1), Help: "number of providers"},
	}, func(ctx context.Context, p Params) (*graph.Graph, error) {
		geo, err := traffic.GenerateGeography(traffic.GeographyConfig{
			NumCities: p.Int("cities"), Seed: p.Seed(), ZipfExponent: 1, MinSeparation: 0.03,
		})
		if err != nil {
			return nil, err
		}
		inet, err := peering.AssembleContext(ctx, peering.Config{
			Geography:        geo,
			NumISPs:          p.Int("isps"),
			Seed:             p.Seed(),
			POPsPerISP:       p.Int("pops"),
			CustomersPerISP:  p.Int("customers"),
			PeeringSetupCost: 1e-7,
		})
		if err != nil {
			return nil, err
		}
		return inet.Router, nil
	})
}
