package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/graph"
)

func testScenarios() []Scenario {
	return []Scenario{
		{
			Name:     "fkp-profile",
			Generate: GenerateSpec{Model: "fkp", Params: Params{"n": 80, "alpha": 8}},
			Measure:  &MeasureSpec{Profile: true, Degrees: true},
			Attack:   &AttackSpec{Strategy: "degree", Fracs: []float64{0.05, 0.2}},
			Seeds:    []int64{1, 2},
		},
		{
			Name:     "waxman-routed",
			Generate: GenerateSpec{Model: "waxman", Params: Params{"n": 70, "alpha": 0.15, "beta": 0.6}},
			Measure: &MeasureSpec{Degrees: true, Metrics: []MetricSelection{
				{Name: "clustering"},
				{Name: "expansion", Params: Params{"maxh": 2, "sources": 20}},
			}},
			Route: &RouteSpec{Demands: 40, Mode: "maxmin"},
			Reps:  3,
		},
		{
			Name:     "ba-attacked",
			Generate: GenerateSpec{Model: "ba", Params: Params{"n": 90, "m": 2}},
			Route:    &RouteSpec{Demands: 30},
			Attack:   &AttackSpec{Strategy: "random", Trials: 2},
			Reps:     2,
		},
		{
			Name:     "ba-traffic",
			Generate: GenerateSpec{Model: "ba", Params: Params{"n": 90, "m": 2}},
			Traffic:  &TrafficSpec{Model: "gravity", Params: Params{"exponent": 0.5}, Sites: 12},
			Reps:     2,
		},
		{
			Name:     "waxman-hotspot-traffic",
			Generate: GenerateSpec{Model: "waxman", Params: Params{"n": 70, "alpha": 0.15, "beta": 0.6}},
			Measure:  &MeasureSpec{Degrees: true},
			Traffic:  &TrafficSpec{Model: "zipf-hotspot", Sites: 10},
			Reps:     2,
		},
		{
			Name:     "ba-timeline",
			Generate: GenerateSpec{Model: "ba", Params: Params{"n": 60, "m": 2}},
			Traffic:  &TrafficSpec{Model: "bimodal", Sites: 8},
			Timeline: &TimelineSpec{
				Events: []TimelineEventSpec{
					{Event: "fail-node", Node: ip(4), At: fp(1)},
					{Event: "fail-edge", Edge: ip(3), At: fp(2)},
					{Event: "capacity-set", Edge: ip(1), Capacity: fp(3)},
					{Event: "demand-switch", Model: "bimodal", Params: Params{"peak": 0.5}},
					{Event: "repair", Node: ip(4)},
					{Event: "repair", Edge: ip(3)},
				},
				Repeat: 2,
			},
			Reps: 2,
		},
	}
}

func formatAll(results []*Result) string {
	out := ""
	for _, r := range results {
		out += r.Format() + "\n"
	}
	return out
}

// TestScenarioJSONRoundTrip asserts the spec is fully declarative:
// marshal → unmarshal → run produces byte-identical output to running
// the original value.
func TestScenarioJSONRoundTrip(t *testing.T) {
	scs := testScenarios()
	data, err := json.Marshal(scs)
	if err != nil {
		t.Fatal(err)
	}
	var back []Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(nil)
	orig, err := e.RunBatch(context.Background(), scs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh engine so the round-tripped run cannot lean on the first
	// run's snapshot cache.
	rt, err := NewEngine(nil).RunBatch(context.Background(), back, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := formatAll(orig), formatAll(rt)
	if a != b {
		t.Fatalf("round-tripped spec ran differently:\n--- original ---\n%s\n--- round-trip ---\n%s", a, b)
	}
}

// TestRunBatchWorkersDeterminism mirrors experiments.TestWorkersDeterminism
// for the scenario engine: byte-identical tables at any worker count.
func TestRunBatchWorkersDeterminism(t *testing.T) {
	scs := testScenarios()
	seq, err := NewEngine(nil).RunBatch(context.Background(), scs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parl, err := NewEngine(nil).RunBatch(context.Background(), scs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := formatAll(seq), formatAll(parl)
	if a != b {
		t.Fatalf("output differs between Workers=1 and Workers=8:\n--- Workers=1 ---\n%s\n--- Workers=8 ---\n%s", a, b)
	}
}

// TestRunBatchCancellation asserts a mid-run cancel surfaces as
// ErrCanceled promptly, long before the batch could finish.
func TestRunBatchCancellation(t *testing.T) {
	// A batch big enough to run for many seconds if not canceled:
	// FKP attachment is O(n^2) with n=20000.
	scs := []Scenario{{
		Generate: GenerateSpec{Model: "fkp", Params: Params{"n": 20000}},
		Measure:  &MeasureSpec{Profile: true},
		Reps:     4,
	}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := NewEngine(nil).RunBatch(ctx, scs, Options{Workers: 4})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, errs.ErrCanceled) {
			t.Fatalf("canceled batch gave %v, want ErrCanceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v, want prompt return", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled batch did not return")
	}
}

// TestSnapshotCacheSharesTopologies asserts scenarios with the same
// generate identity (model + params + seed) generate exactly once.
func TestSnapshotCacheSharesTopologies(t *testing.T) {
	var calls atomic.Int64
	reg := NewRegistry()
	err := reg.Register(&FuncGenerator{
		GenName: "counted",
		GenParams: []ParamSpec{
			{Name: "n", Kind: Int, Default: 50},
			seedSpec,
		},
		Fn: func(ctx context.Context, p Params) (*graph.Graph, error) {
			calls.Add(1)
			return gen.BarabasiAlbert(p.Int("n"), 2, p.Seed())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	scs := []Scenario{
		{Generate: GenerateSpec{Model: "counted"}, Measure: &MeasureSpec{Degrees: true}, Reps: 3},
		{Generate: GenerateSpec{Model: "counted"}, Route: &RouteSpec{Demands: 10}, Reps: 3},
		{Generate: GenerateSpec{Model: "counted"}, Attack: &AttackSpec{}, Reps: 3},
	}
	// All nine replications share three seeds (SeedFor defaults are
	// identical across scenarios), so three generations suffice.
	if _, err := NewEngine(reg).RunBatch(context.Background(), scs, Options{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("generator ran %d times, want 3 (one per distinct seed)", got)
	}
}

func TestRunBatchRejectsBadSpecs(t *testing.T) {
	cases := []Scenario{
		{Generate: GenerateSpec{Model: "nope"}},
		{Generate: GenerateSpec{Model: "fkp", Params: Params{"bogus": 1}}},
		{Generate: GenerateSpec{Model: "fkp"}, Route: &RouteSpec{Demands: 0}},
		{Generate: GenerateSpec{Model: "fkp"}, Route: &RouteSpec{Demands: 5, Mode: "teleport"}},
		{Generate: GenerateSpec{Model: "fkp"}, Attack: &AttackSpec{Strategy: "nuclear"}},
		{Generate: GenerateSpec{Model: "fkp"}, Attack: &AttackSpec{Fracs: []float64{1.5}}},
		{Generate: GenerateSpec{Model: "fkp"}, Attack: &AttackSpec{Strategy: "geographic", Params: Params{"bogus": 1}}},
		{Generate: GenerateSpec{Model: "fkp"}, Attack: &AttackSpec{Strategy: "preferential", Params: Params{"alpha": -3}}},
		{Generate: GenerateSpec{Model: "fkp"}, Measure: &MeasureSpec{Metrics: []MetricSelection{{Name: "nope"}}}},
		{Generate: GenerateSpec{Model: "fkp"}, Measure: &MeasureSpec{Metrics: []MetricSelection{
			{Name: "clustering"}, {Name: "clustering"}}}},
		{Generate: GenerateSpec{Model: "fkp"}, Measure: &MeasureSpec{Metrics: []MetricSelection{
			{Name: "expansion", Params: Params{"maxh": -1}}}}},
		{Generate: GenerateSpec{Model: "fkp"}, Measure: &MeasureSpec{Metrics: []MetricSelection{
			{Name: "throughput"}}}}, // CapTraffic metric outside the traffic stage
		{Generate: GenerateSpec{Model: "fkp"}, Traffic: &TrafficSpec{Model: "teleport"}},
		{Generate: GenerateSpec{Model: "fkp"}, Traffic: &TrafficSpec{Params: Params{"bogus": 1}}},
		{Generate: GenerateSpec{Model: "fkp"}, Traffic: &TrafficSpec{Model: "gravity", Params: Params{"scale": -2}}},
		{Generate: GenerateSpec{Model: "fkp"}, Traffic: &TrafficSpec{Sites: 1}},
		{Generate: GenerateSpec{Model: "fkp"}, Traffic: &TrafficSpec{Sites: -3}},
	}
	for i, sc := range cases {
		_, err := NewEngine(nil).RunBatch(context.Background(), []Scenario{sc}, Options{})
		if !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("case %d gave %v, want ErrBadParam", i, err)
		}
	}
}

// TestMeasureMetricSet runs a named metric set through the Measure
// stage and checks the values land in replication output and the
// formatted table, in selection order.
func TestMeasureMetricSet(t *testing.T) {
	sc := Scenario{
		Name:     "metric-set",
		Generate: GenerateSpec{Model: "ba", Params: Params{"n": 120, "m": 2}},
		Measure: &MeasureSpec{Metrics: []MetricSelection{
			{Name: "mean-degree"},
			{Name: "diameter"},
			{Name: "lcc"},
		}},
	}
	res, err := NewEngine(nil).Run(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Reps[0]
	if rep.Profile != nil {
		t.Fatal("metric-set measure should not imply the default profile")
	}
	if len(rep.Metrics) != 3 {
		t.Fatalf("got %d metric values: %v", len(rep.Metrics), rep.Metrics)
	}
	if rep.Metrics["lcc"].Scalar <= 0 || rep.Metrics["mean-degree"].Scalar <= 0 {
		t.Fatalf("implausible metric values: %v", rep.Metrics)
	}
	out := res.Format()
	for _, col := range []string{"mean-degree", "diameter", "lcc"} {
		if !strings.Contains(out, col) {
			t.Errorf("formatted table missing column %q:\n%s", col, out)
		}
	}
}

// TestTrafficStage runs the registry-driven traffic stage end to end:
// demand models from the traffic registry, spec JSON included, produce
// a plausible allocation summary and the formatted columns.
func TestTrafficStage(t *testing.T) {
	spec := `{
		"name": "hotspot",
		"generate": {"model": "ba", "params": {"n": 100, "m": 2}},
		"traffic": {"model": "zipf-hotspot", "params": {"exponent": 1.5}, "sites": 8}
	}`
	scs, err := ParseSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(nil).Run(context.Background(), scs[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Reps[0].Traffic
	if ts == nil {
		t.Fatal("traffic stage produced no summary")
	}
	if ts.Model != "zipf-hotspot" || ts.Sites != 8 {
		t.Fatalf("summary header = %+v", ts)
	}
	if ts.Demands == 0 || ts.Offered <= 0 {
		t.Fatalf("no demand generated: %+v", ts)
	}
	if ts.Throughput <= 0 || ts.Throughput > ts.Offered+1e-9 {
		t.Fatalf("throughput %v outside (0, offered=%v]", ts.Throughput, ts.Offered)
	}
	if ts.DeliveredFrac <= 0 || ts.DeliveredFrac > 1+1e-9 {
		t.Fatalf("delivered fraction %v outside (0, 1]", ts.DeliveredFrac)
	}
	if ts.Jain <= 0 || ts.Jain > 1+1e-9 {
		t.Fatalf("Jain %v outside (0, 1]", ts.Jain)
	}
	out := res.Format()
	for _, col := range []string{"tmodel", "tput", "tdeliv", "tmaxutil", "tjain", "zipf-hotspot"} {
		if !strings.Contains(out, col) {
			t.Errorf("formatted table missing %q:\n%s", col, out)
		}
	}

	// The default model is gravity, and every other built-in runs too.
	for _, model := range []string{"", "gravity", "uniform", "bimodal", "single-epicenter"} {
		sc := Scenario{
			Generate: GenerateSpec{Model: "ba", Params: Params{"n": 60, "m": 2}},
			Traffic:  &TrafficSpec{Model: model},
		}
		res, err := NewEngine(nil).Run(context.Background(), sc, Options{})
		if err != nil {
			t.Fatalf("model %q: %v", model, err)
		}
		ts := res.Reps[0].Traffic
		if ts.Throughput <= 0 {
			t.Fatalf("model %q: throughput = %v", model, ts.Throughput)
		}
		if model == "" && ts.Model != "gravity" {
			t.Fatalf("empty model canonicalized to %q, want gravity", ts.Model)
		}
	}
}

// TestAttackStageRegistryAttacks runs registry attacks — parameterized
// and edge-targeted ones the legacy Strategy enum never knew — through
// the Attack stage, spec JSON included.
func TestAttackStageRegistryAttacks(t *testing.T) {
	spec := `{
		"name": "localized",
		"generate": {"model": "waxman", "params": {"n": 150}},
		"attack": {"strategy": "geographic", "params": {"x": 0.1, "y": 0.1}, "fracs": [0.1, 0.5, 1]}
	}`
	scs, err := ParseSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine(nil).Run(context.Background(), scs[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	curve := res.Reps[0].Attack
	if len(curve) != 3 {
		t.Fatalf("attack curve = %+v", curve)
	}
	if curve[0].LCCFrac <= 0 || curve[2].LCCFrac != 0 {
		t.Fatalf("geographic attack curve implausible: %+v", curve)
	}
	for _, strategy := range []string{"random-edge", "bottleneck-edge", "preferential"} {
		sc := Scenario{
			Generate: GenerateSpec{Model: "ba", Params: Params{"n": 80, "m": 2}},
			Attack:   &AttackSpec{Strategy: strategy, Fracs: []float64{0.2}},
		}
		res, err := NewEngine(nil).Run(context.Background(), sc, Options{})
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if got := res.Reps[0].Attack[0].LCCFrac; got <= 0 || got > 1 {
			t.Fatalf("%s: LCC@0.2 = %v", strategy, got)
		}
	}
}

func TestParseSpecForms(t *testing.T) {
	single := `{"generate": {"model": "fkp", "params": {"n": 50}}}`
	array := `[{"generate": {"model": "fkp"}}, {"generate": {"model": "ba"}}]`
	batch := `{"scenarios": [{"generate": {"model": "fkp"}}]}`
	if scs, err := ParseSpec([]byte(single)); err != nil || len(scs) != 1 {
		t.Fatalf("single: %v %d", err, len(scs))
	}
	if scs, err := ParseSpec([]byte(array)); err != nil || len(scs) != 2 {
		t.Fatalf("array: %v %d", err, len(scs))
	}
	if scs, err := ParseSpec([]byte(batch)); err != nil || len(scs) != 1 {
		t.Fatalf("batch: %v %d", err, len(scs))
	}
	if _, err := ParseSpec([]byte(`{"generate": {"model": "fkp"}, "typo": 1}`)); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown field gave %v, want ErrBadParam", err)
	}
	if _, err := ParseSpec([]byte("not json")); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("garbage gave %v, want ErrBadParam", err)
	}
}

func TestSeedForSemantics(t *testing.T) {
	sc := Scenario{Seeds: []int64{10, 20}, Reps: 4}
	if sc.NumReps() != 4 {
		t.Fatalf("NumReps = %d, want 4", sc.NumReps())
	}
	if sc.SeedFor(0) != 10 || sc.SeedFor(1) != 20 {
		t.Fatal("explicit seeds not honored")
	}
	if sc.SeedFor(2) == sc.SeedFor(3) {
		t.Fatal("derived seeds collide")
	}
	var zero Scenario
	if zero.NumReps() != 1 {
		t.Fatalf("zero scenario NumReps = %d, want 1", zero.NumReps())
	}
	if zero.SeedFor(0) != 1 {
		t.Fatalf("zero scenario SeedFor(0) = %d, want generator default 1", zero.SeedFor(0))
	}
	// Without explicit Seeds, the generator's "seed" parameter is the
	// base: rep 0 uses it verbatim, later reps derive from it.
	withParam := Scenario{Generate: GenerateSpec{Model: "ba", Params: Params{"seed": 42}}, Reps: 3}
	if withParam.SeedFor(0) != 42 {
		t.Fatalf("params seed ignored: SeedFor(0) = %d, want 42", withParam.SeedFor(0))
	}
	if withParam.SeedFor(1) == 42 || withParam.SeedFor(1) == withParam.SeedFor(2) {
		t.Fatal("derived seeds should differ from the base and each other")
	}
}

// TestParamsSeedHonored asserts a spec that sets generate.params.seed
// runs exactly that topology (the topogen -seed equivalence).
func TestParamsSeedHonored(t *testing.T) {
	sc := Scenario{Generate: GenerateSpec{Model: "ba", Params: Params{"n": 50, "seed": 42}}}
	res, err := NewEngine(nil).Run(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps[0].Seed != 42 {
		t.Fatalf("rep ran with seed %d, want 42", res.Reps[0].Seed)
	}
	want, err := Default().GenerateByName(context.Background(), "ba", Params{"n": 50, "seed": 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reps[0].Edges != want.NumEdges() {
		t.Fatalf("scenario topology differs from direct generation: %d vs %d edges",
			res.Reps[0].Edges, want.NumEdges())
	}
}
