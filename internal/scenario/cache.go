package scenario

import (
	"container/list"
	"sync"

	"repro/internal/graph"
)

// DefaultCacheBudget is the snapshot cache's default byte budget (the
// estimated Graph + CSR footprint of the resident entries, not an entry
// count).
const DefaultCacheBudget int64 = 1 << 30

// CacheStats is a point-in-time snapshot of the engine's topology-cache
// telemetry, exposed by Engine.CacheStats and the scenario service's
// /v1/statusz endpoint.
type CacheStats struct {
	// Hits counts lookups served by a resident completed snapshot,
	// Coalesced counts lookups that joined a generation already in
	// flight (the singleflight path), and Misses counts lookups that
	// had to start a generation.
	Hits      int64 `json:"hits"`
	Coalesced int64 `json:"coalesced"`
	Misses    int64 `json:"misses"`
	// Evictions counts completed snapshots dropped to fit the budget
	// (snapshots larger than the whole budget, which are never
	// retained, included). Failures counts generations that ended in
	// error or cancellation; those entries are never retained either.
	Evictions int64 `json:"evictions"`
	Failures  int64 `json:"failures"`
	// InFlight is the number of generations running right now, Entries
	// the resident completed snapshots, and BytesUsed their estimated
	// footprint against Budget.
	InFlight  int   `json:"in_flight"`
	Entries   int   `json:"entries"`
	BytesUsed int64 `json:"bytes_used"`
	Budget    int64 `json:"budget"`
}

// topoEntry is one generation: in flight until ready is closed, then
// either a frozen snapshot (g, c) or a failure (err).
type topoEntry struct {
	key   string
	ready chan struct{}
	g     *graph.Graph
	c     *graph.CSR
	err   error
	bytes int64
}

// snapCache is the engine's snapshot cache: an LRU of completed frozen
// snapshots under an explicit byte budget, plus a singleflight table of
// in-flight generations so any number of concurrent callers of one
// topology identity amortize a single Generate+Freeze. Eviction walks
// the LRU tail — a deterministic order for a given access history,
// unlike the map-iteration-order eviction it replaced — and only ever
// touches completed entries: an in-flight generation is not resident
// and a failed one is never retained at all.
type snapCache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	lru      *list.List               // of *topoEntry; front = most recently used
	resident map[string]*list.Element // completed entries, by identity key
	inflight map[string]*topoEntry    // running generations

	hits, coalesced, misses, evictions, failures int64
}

func newSnapCache(budget int64) *snapCache {
	return &snapCache{
		budget:   budget,
		lru:      list.New(),
		resident: map[string]*list.Element{},
		inflight: map[string]*topoEntry{},
	}
}

// lookup returns the entry for key and whether the caller is the leader
// that must generate it and then call finish. Non-leaders wait on
// ent.ready (or their context).
func (sc *snapCache) lookup(key string) (ent *topoEntry, leader bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if el, ok := sc.resident[key]; ok {
		sc.lru.MoveToFront(el)
		sc.hits++
		return el.Value.(*topoEntry), false
	}
	if ent, ok := sc.inflight[key]; ok {
		sc.coalesced++
		return ent, false
	}
	ent = &topoEntry{key: key, ready: make(chan struct{})}
	sc.inflight[key] = ent
	sc.misses++
	return ent, true
}

// finish publishes a leader's outcome: waiters wake, a failed (errored
// or canceled) generation is dropped so a later run retries, and a
// successful snapshot is charged to the budget, evicting from the LRU
// tail until it fits. A snapshot bigger than the whole budget is not
// retained at all (so a budget <= 0 disables retention while keeping
// the singleflight sharing).
func (sc *snapCache) finish(ent *topoEntry) {
	close(ent.ready)
	sc.mu.Lock()
	defer sc.mu.Unlock()
	delete(sc.inflight, ent.key)
	if ent.err != nil {
		sc.failures++
		return
	}
	ent.bytes = ent.g.MemBytes() + ent.c.MemBytes()
	if ent.bytes > sc.budget {
		sc.evictions++
		return
	}
	sc.resident[ent.key] = sc.lru.PushFront(ent)
	sc.used += ent.bytes
	sc.evictLocked()
}

func (sc *snapCache) evictLocked() {
	for sc.used > sc.budget {
		el := sc.lru.Back()
		if el == nil {
			return
		}
		old := sc.lru.Remove(el).(*topoEntry)
		delete(sc.resident, old.key)
		sc.used -= old.bytes
		sc.evictions++
	}
}

// setBudget replaces the byte budget, evicting immediately if the new
// one is tighter.
func (sc *snapCache) setBudget(budget int64) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.budget = budget
	sc.evictLocked()
}

func (sc *snapCache) stats() CacheStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return CacheStats{
		Hits:      sc.hits,
		Coalesced: sc.coalesced,
		Misses:    sc.misses,
		Evictions: sc.evictions,
		Failures:  sc.failures,
		InFlight:  len(sc.inflight),
		Entries:   sc.lru.Len(),
		BytesUsed: sc.used,
		Budget:    sc.budget,
	}
}
