package scenario

import (
	"context"
	"errors"
	"testing"

	"repro/internal/errs"
	"repro/internal/graph"
)

// smallParams returns per-model overrides small enough for fast tests.
func smallParams(model string) Params {
	switch model {
	case "transitstub":
		return Params{"domains": 2, "transitsize": 2, "stubs": 1, "stubsize": 3}
	case "isp":
		return Params{"cities": 8, "pops": 3, "customers": 40}
	case "internet":
		return Params{"cities": 8, "pops": 2, "customers": 20, "isps": 2}
	case "configmodel":
		return Params{"n": 30, "degree": 2}
	case "er-gnm":
		return Params{"n": 60, "m": 90}
	case "mmp", "ring":
		return Params{"n": 50}
	default:
		return Params{"n": 60}
	}
}

func TestRegistryHasAllModels(t *testing.T) {
	want := []string{
		"fkp", "hot", "mmp", "ring", "ba", "glp", "er-gnp", "er-gnm",
		"waxman", "transitstub", "rgg", "configmodel", "inet", "isp", "internet",
	}
	names := map[string]bool{}
	for _, n := range Names() {
		names[n] = true
	}
	for _, w := range want {
		if !names[w] {
			t.Errorf("model %q missing from registry (have %v)", w, Names())
		}
	}
	if len(Names()) < 14 {
		t.Fatalf("registry holds %d models, want >= 14", len(Names()))
	}
}

func TestAllGeneratorsGenerate(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g, err := Default().GenerateByName(context.Background(), name, smallParams(name))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if g.NumNodes() == 0 {
				t.Fatalf("%s produced an empty graph", name)
			}
		})
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	for _, name := range []string{"fkp", "ba", "waxman", "isp"} {
		p := smallParams(name)
		a, err := Default().GenerateByName(context.Background(), name, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Default().GenerateByName(context.Background(), name, p)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s not deterministic: %d/%d nodes, %d/%d edges",
				name, a.NumNodes(), b.NumNodes(), a.NumEdges(), b.NumEdges())
		}
	}
}

func TestUnknownModelIsBadParam(t *testing.T) {
	_, err := Default().GenerateByName(context.Background(), "nope", nil)
	if !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown model gave %v, want ErrBadParam", err)
	}
}

func TestUnknownParamIsBadParam(t *testing.T) {
	_, err := Default().GenerateByName(context.Background(), "fkp", Params{"bogus": 1})
	if !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown param gave %v, want ErrBadParam", err)
	}
}

func TestNonIntegralIntParamIsBadParam(t *testing.T) {
	_, err := Default().GenerateByName(context.Background(), "fkp", Params{"n": 10.5})
	if !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("non-integral int gave %v, want ErrBadParam", err)
	}
}

func TestOutOfRangeParamIsBadParam(t *testing.T) {
	_, err := Default().GenerateByName(context.Background(), "er-gnp", Params{"p": 1.5})
	if !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("out-of-range param gave %v, want ErrBadParam", err)
	}
}

func TestResolveFillsDefaults(t *testing.T) {
	g, err := Lookup("fkp")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Resolve(g, Params{"n": 50})
	if err != nil {
		t.Fatal(err)
	}
	if p["n"] != 50 {
		t.Fatalf("override lost: n=%v", p["n"])
	}
	if p["alpha"] != 8 || p["seed"] != 1 {
		t.Fatalf("defaults not filled: %v", p)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	mk := func(name string) Generator {
		return &FuncGenerator{GenName: name, Fn: func(context.Context, Params) (*graph.Graph, error) {
			return graph.New(0), nil
		}}
	}
	if err := r.Register(mk("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(mk("x")); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("duplicate registration gave %v, want ErrBadParam", err)
	}
	if err := r.Register(mk("")); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("empty name gave %v, want ErrBadParam", err)
	}
}

func TestInfeasibleGenerationIsClassified(t *testing.T) {
	// A 1-port cap makes any FKP growth beyond 2 nodes infeasible.
	_, err := Default().GenerateByName(context.Background(), "fkp", Params{"n": 10, "ports": 1})
	if !errors.Is(err, errs.ErrInfeasible) {
		t.Fatalf("over-constrained fkp gave %v, want ErrInfeasible", err)
	}
}
