// Package validate implements the paper's §5 validation agenda: "What
// metrics and measurements will be required to validate or invalidate
// the resulting class of explanatory models?" It provides tools to
// compare a generated topology against a reference (measured) topology
// across the full metric suite, and bootstrap confidence intervals for
// the sampled metrics so differences can be judged against noise.
package validate

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/metricreg"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/stats"
)

// MetricVector is the standardized characterization used for topology
// comparison. All entries are dimensionless or size-normalized so that
// topologies of different sizes can be compared.
type MetricVector struct {
	MeanDegree    float64
	DegreeCV      float64 // coefficient of variation of degrees
	TopDegreeFrac float64
	Clustering    float64
	Assortativity float64
	ExpansionAt3  float64
	Resilience    float64
	Distortion    float64
	HierDepth     float64
	SpectralGap   float64
}

// Names returns the metric names in canonical order.
func (MetricVector) Names() []string {
	return []string{
		"meanDegree", "degreeCV", "topDegreeFrac", "clustering",
		"assortativity", "expansion@3", "resilience", "distortion",
		"hierDepth", "spectralGap",
	}
}

// Values returns the metric values in canonical order.
func (v MetricVector) Values() []float64 {
	return []float64{
		v.MeanDegree, v.DegreeCV, v.TopDegreeFrac, v.Clustering,
		v.Assortativity, v.ExpansionAt3, v.Resilience, v.Distortion,
		v.HierDepth, v.SpectralGap,
	}
}

// Measure computes the metric vector of a topology.
func Measure(g *graph.Graph, seed int64) MetricVector {
	v, _ := measure(context.Background(), g, seed)
	return v
}

// MeasureContext is Measure with validation and cancellation: a nil or
// empty topology wraps errs.ErrBadParam, and a canceled context
// surfaces as an errs.ErrCanceled-wrapping error from the underlying
// metric evaluation.
func MeasureContext(ctx context.Context, g *graph.Graph, seed int64) (MetricVector, error) {
	if g == nil || g.NumNodes() == 0 {
		return MetricVector{}, errs.BadParamf("validate: empty topology")
	}
	return measure(ctx, g, seed)
}

func measure(ctx context.Context, g *graph.Graph, seed int64) (MetricVector, error) {
	// One fused registry evaluation: the profile battery plus the
	// clustering/assortativity statistics share a single Source (one
	// freeze) and one parallel schedule.
	set := append(metrics.ProfileSet(),
		metricreg.Selection{Name: "clustering"},
		metricreg.Selection{Name: "assortativity"})
	vals, err := metricreg.Evaluate(ctx, metricreg.NewSource(g, nil), set,
		metricreg.Options{Seed: seed})
	if err != nil {
		return MetricVector{}, err
	}
	deg := g.Degrees()
	fdeg := make([]float64, len(deg))
	for i, d := range deg {
		fdeg[i] = float64(d)
	}
	sum := stats.Summarize(fdeg)
	cv := 0.0
	if sum.Mean > 0 {
		cv = math.Sqrt(sum.Variance) / sum.Mean
	}
	ds := stats.AnalyzeDegrees(g)
	out := MetricVector{
		MeanDegree:    ds.MeanDegree,
		DegreeCV:      cv,
		TopDegreeFrac: ds.TopDegreeFrac,
		Clustering:    vals["clustering"].Scalar,
		Assortativity: vals["assortativity"].Scalar,
		Resilience:    vals["resilience"].Scalar,
		Distortion:    vals["distortion"].Scalar,
		HierDepth:     vals["hierarchy-depth"].Scalar,
		SpectralGap:   vals["spectral-gap"].Scalar,
	}
	if s := vals["expansion"].Series; len(s) > 3 {
		out.ExpansionAt3 = s[3]
	}
	return out, nil
}

// Comparison is the outcome of comparing a candidate against a
// reference topology.
type Comparison struct {
	Reference, Candidate MetricVector
	// RelDiff[i] = |cand - ref| / max(|ref|, eps), in Names() order.
	RelDiff []float64
	// Distance is the mean relative difference across metrics — a single
	// "how dissimilar" score in [0, inf).
	Distance float64
	// DegreeKS is the Kolmogorov–Smirnov distance between the two degree
	// CCDFs — the descriptive-generator matching target, reported
	// separately so "matches degrees but not structure" is visible.
	DegreeKS float64
}

// Compare measures both graphs and scores their dissimilarity.
func Compare(ref, cand *graph.Graph, seed int64) Comparison {
	c, _ := compare(Measure(ref, seed), Measure(cand, seed), ref, cand)
	return c
}

// CompareContext is Compare with validation and cancellation: either
// topology nil or empty wraps errs.ErrBadParam; a canceled context
// surfaces as errs.ErrCanceled.
func CompareContext(ctx context.Context, ref, cand *graph.Graph, seed int64) (Comparison, error) {
	rv, err := MeasureContext(ctx, ref, seed)
	if err != nil {
		return Comparison{}, fmt.Errorf("validate: reference: %w", err)
	}
	cv, err := MeasureContext(ctx, cand, seed)
	if err != nil {
		return Comparison{}, fmt.Errorf("validate: candidate: %w", err)
	}
	return compare(rv, cv, ref, cand)
}

func compare(rv, cv MetricVector, ref, cand *graph.Graph) (Comparison, error) {
	const eps = 1e-6
	rvs, cvs := rv.Values(), cv.Values()
	out := Comparison{Reference: rv, Candidate: cv, RelDiff: make([]float64, len(rvs))}
	total := 0.0
	for i := range rvs {
		denom := math.Abs(rvs[i])
		if denom < eps {
			denom = eps
		}
		out.RelDiff[i] = math.Abs(cvs[i]-rvs[i]) / denom
		total += out.RelDiff[i]
	}
	out.Distance = total / float64(len(rvs))
	out.DegreeKS = DegreeKS(ref.Degrees(), cand.Degrees())
	return out, nil
}

// Format renders a comparison as an aligned table.
func (c Comparison) Format() string {
	var b strings.Builder
	names := c.Reference.Names()
	rvs, cvs := c.Reference.Values(), c.Candidate.Values()
	fmt.Fprintf(&b, "%-14s %10s %10s %8s\n", "metric", "reference", "candidate", "relDiff")
	for i, n := range names {
		fmt.Fprintf(&b, "%-14s %10.4f %10.4f %8.3f\n", n, rvs[i], cvs[i], c.RelDiff[i])
	}
	fmt.Fprintf(&b, "%-14s %10s %10s %8.3f\n", "distance", "", "", c.Distance)
	fmt.Fprintf(&b, "%-14s %10s %10s %8.3f\n", "degreeKS", "", "", c.DegreeKS)
	return b.String()
}

// DegreeKS returns the KS distance between two empirical degree
// distributions. 0 means identical; 1 means disjoint supports.
func DegreeKS(a, b []int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	maxDeg := 0
	for _, d := range a {
		if d > maxDeg {
			maxDeg = d
		}
	}
	for _, d := range b {
		if d > maxDeg {
			maxDeg = d
		}
	}
	ca := make([]float64, maxDeg+2)
	cb := make([]float64, maxDeg+2)
	for _, d := range a {
		ca[d]++
	}
	for _, d := range b {
		cb[d]++
	}
	ks, accA, accB := 0.0, 0.0, 0.0
	for k := 0; k <= maxDeg; k++ {
		accA += ca[k] / float64(len(a))
		accB += cb[k] / float64(len(b))
		if d := math.Abs(accA - accB); d > ks {
			ks = d
		}
	}
	return ks
}

// Interval is a bootstrap confidence interval.
type Interval struct {
	Mean, Low, High float64
}

// Contains reports whether x lies in [Low, High].
func (iv Interval) Contains(x float64) bool { return x >= iv.Low && x <= iv.High }

// BootstrapMetric estimates a (1-2*alphaTail) CI for a graph metric that
// depends on sampling seeds (expansion, resilience, distortion are
// seed-sampled in this repo) by re-evaluating it under `reps` derived
// seeds and taking empirical quantiles.
func BootstrapMetric(g *graph.Graph, metric func(*graph.Graph, int64) float64, reps int, alphaTail float64, seed int64) Interval {
	if reps < 2 {
		reps = 2
	}
	if alphaTail <= 0 || alphaTail >= 0.5 {
		alphaTail = 0.05
	}
	vals := make([]float64, reps)
	total := 0.0
	for i := range vals {
		vals[i] = metric(g, rng.Derive(seed, i))
		total += vals[i]
	}
	sort.Float64s(vals)
	lo := int(alphaTail * float64(reps))
	hi := reps - 1 - lo
	return Interval{
		Mean: total / float64(reps),
		Low:  vals[lo],
		High: vals[hi],
	}
}

// ResilienceCI is a convenience bootstrap for the resilience metric.
func ResilienceCI(g *graph.Graph, reps int, seed int64) Interval {
	return BootstrapMetric(g, func(g *graph.Graph, s int64) float64 {
		return metrics.Resilience(g, 10, 3, s)
	}, reps, 0.05, seed)
}
