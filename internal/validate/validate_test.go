package validate

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/graph"
)

func ba(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMeasureSane(t *testing.T) {
	g := ba(t, 300, 2, 1)
	v := Measure(g, 1)
	if v.MeanDegree <= 0 || v.MeanDegree > 10 {
		t.Fatalf("mean degree %v implausible", v.MeanDegree)
	}
	if v.DegreeCV <= 0 {
		t.Fatal("degree CV should be positive for BA")
	}
	if len(v.Values()) != len(v.Names()) {
		t.Fatal("Values/Names length mismatch")
	}
}

func TestCompareSelfIsNearZero(t *testing.T) {
	g := ba(t, 300, 2, 2)
	c := Compare(g, g, 7)
	if c.Distance > 1e-9 {
		t.Fatalf("self-comparison distance = %v, want ~0", c.Distance)
	}
	if c.DegreeKS != 0 {
		t.Fatalf("self-comparison degree KS = %v, want 0", c.DegreeKS)
	}
}

func TestCompareDetectsStructureDifference(t *testing.T) {
	// Same degree-ish density, different structure: BA vs ER.
	baG := ba(t, 400, 2, 3)
	erG, err := gen.ErdosRenyiGNM(400, baG.NumEdges(), 3)
	if err != nil {
		t.Fatal(err)
	}
	c := Compare(baG, erG, 7)
	if c.Distance < 0.1 {
		t.Fatalf("BA vs ER distance = %v, expected substantial", c.Distance)
	}
	if c.DegreeKS <= 0 {
		t.Fatal("BA vs ER should differ in degrees too")
	}
}

func TestCompareTwoBASeedsCloserThanBAvsER(t *testing.T) {
	// The paper's validation logic: two instances of the same mechanism
	// should be closer than instances of different mechanisms.
	a := ba(t, 400, 2, 4)
	b := ba(t, 400, 2, 5)
	er, err := gen.ErdosRenyiGNM(400, a.NumEdges(), 4)
	if err != nil {
		t.Fatal(err)
	}
	same := Compare(a, b, 9).Distance
	diff := Compare(a, er, 9).Distance
	if same >= diff {
		t.Fatalf("same-mechanism distance %v not below cross-mechanism %v", same, diff)
	}
}

func TestComparisonFormat(t *testing.T) {
	g := ba(t, 100, 2, 6)
	out := Compare(g, g, 1).Format()
	for _, want := range []string{"metric", "distance", "degreeKS", "clustering"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestDegreeKSBounds(t *testing.T) {
	if ks := DegreeKS(nil, []int{1}); ks != 1 {
		t.Fatalf("empty-vs-nonempty KS = %v, want 1", ks)
	}
	if ks := DegreeKS([]int{1, 2, 3}, []int{1, 2, 3}); ks != 0 {
		t.Fatalf("identical KS = %v, want 0", ks)
	}
	ks := DegreeKS([]int{1, 1, 1}, []int{10, 10, 10})
	if math.Abs(ks-1) > 1e-12 {
		t.Fatalf("disjoint KS = %v, want 1", ks)
	}
}

func TestBootstrapMetricInterval(t *testing.T) {
	g := ba(t, 200, 2, 7)
	iv := ResilienceCI(g, 20, 11)
	if iv.Low > iv.Mean || iv.Mean > iv.High {
		t.Fatalf("interval ordering broken: %+v", iv)
	}
	if iv.Low < 0 || iv.High > 1 {
		t.Fatalf("resilience CI out of [0,1]: %+v", iv)
	}
	if !iv.Contains(iv.Mean) {
		t.Fatal("interval should contain its mean")
	}
}

func TestBootstrapDegenerateParams(t *testing.T) {
	g := ba(t, 100, 1, 8)
	iv := BootstrapMetric(g, func(_ *graph.Graph, _ int64) float64 { return 0.5 }, 1, 2.0, 1)
	if iv.Mean != 0.5 || iv.Low != 0.5 || iv.High != 0.5 {
		t.Fatalf("constant metric CI = %+v", iv)
	}
}

func TestMeasureContextRejectsEmptyTopology(t *testing.T) {
	if _, err := MeasureContext(context.Background(), nil, 1); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("nil graph gave %v, want ErrBadParam", err)
	}
	if _, err := MeasureContext(context.Background(), graph.New(0), 1); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("empty graph gave %v, want ErrBadParam", err)
	}
}

func TestMeasureContextCancellation(t *testing.T) {
	g := ba(t, 200, 2, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MeasureContext(ctx, g, 1); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("canceled measure gave %v, want ErrCanceled", err)
	}
}

func TestCompareContextErrorPaths(t *testing.T) {
	g := ba(t, 100, 2, 10)
	if _, err := CompareContext(context.Background(), nil, g, 1); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("nil reference gave %v, want ErrBadParam", err)
	}
	if _, err := CompareContext(context.Background(), g, graph.New(0), 1); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("empty candidate gave %v, want ErrBadParam", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompareContext(ctx, g, g, 1); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("canceled compare gave %v, want ErrCanceled", err)
	}
	c, err := CompareContext(context.Background(), g, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Distance > 1e-9 {
		t.Fatalf("self-comparison distance = %v", c.Distance)
	}
}

func TestMeasureContextMatchesMeasure(t *testing.T) {
	g := ba(t, 150, 2, 12)
	want := Measure(g, 5)
	got, err := MeasureContext(context.Background(), g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("MeasureContext diverged from Measure:\n%+v\nvs\n%+v", got, want)
	}
}
