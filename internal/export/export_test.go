package export

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func sample() *graph.Graph {
	g := graph.New(3)
	g.AddNode(graph.Node{Kind: graph.KindCore, X: 0.5, Y: 0.5, Label: "root"})
	g.AddNode(graph.Node{Kind: graph.KindCustomer, X: 0.1, Y: 0.2})
	g.AddNode(graph.Node{Kind: graph.KindPOP, X: 0.9, Y: 0.8, Label: "pop-1"})
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 0.5, Capacity: 4, Cable: 1})
	g.AddEdge(graph.Edge{U: 0, V: 2, Weight: 0.5})
	return g
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, sample(), "test"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`graph "test"`, "0 -- 1", "0 -- 2", `label="root"`, `kind="pop"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, s)
		}
	}
}

func TestWriteDOTDefaultName(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, sample(), ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "topology"`) {
		t.Fatal("default name not applied")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g, "rt"); err != nil {
		t.Fatal(err)
	}
	got, name, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "rt" {
		t.Fatalf("name = %q", name)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			got.NumNodes(), g.NumNodes(), got.NumEdges(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		a, b := g.Node(v), got.Node(v)
		if a.Kind != b.Kind || a.X != b.X || a.Y != b.Y || a.Label != b.Label {
			t.Fatalf("node %d mismatch: %+v vs %+v", v, a, b)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i), got.Edge(i)
		if a.U != b.U || a.V != b.V || a.Weight != b.Weight || a.Capacity != b.Capacity {
			t.Fatalf("edge %d mismatch", i)
		}
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	if _, _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON should error")
	}
	// Non-dense node ids.
	if _, _, err := ReadJSON(strings.NewReader(`{"nodes":[{"id":5}],"edges":[]}`)); err == nil {
		t.Fatal("non-dense ids should error")
	}
	// Edge referencing missing node.
	if _, _, err := ReadJSON(strings.NewReader(`{"nodes":[{"id":0}],"edges":[{"u":0,"v":3}]}`)); err == nil {
		t.Fatal("dangling edge should error")
	}
	// Self-loop.
	if _, _, err := ReadJSON(strings.NewReader(`{"nodes":[{"id":0},{"id":1}],"edges":[{"u":0,"v":0}]}`)); err == nil {
		t.Fatal("self-loop should error")
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 3 || got.NumEdges() != 2 {
		t.Fatalf("adjacency round trip: %d nodes %d edges", got.NumNodes(), got.NumEdges())
	}
	if got.Edge(0).Weight != 0.5 {
		t.Fatalf("weight lost: %v", got.Edge(0).Weight)
	}
}

func TestReadAdjacencyComments(t *testing.T) {
	in := "# comment\n\n0 1\n1 2 3.5\n"
	g, err := ReadAdjacency(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Edge(0).Weight != 1 {
		t.Fatal("default weight should be 1")
	}
	if g.Edge(1).Weight != 3.5 {
		t.Fatal("explicit weight lost")
	}
}

func TestReadAdjacencyErrors(t *testing.T) {
	cases := []string{
		"0\n",      // too few fields
		"a b\n",    // non-integer
		"0 zzz\n",  // non-integer
		"0 1 xx\n", // bad weight
		"0 0\n",    // self-loop
		"-1 2\n",   // negative id
	}
	for _, c := range cases {
		if _, err := ReadAdjacency(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q should error", c)
		}
	}
}

func TestParseKindUnknown(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(`{"name":"x","nodes":[{"id":0,"kind":"weird"}],"edges":[]}`)
	g, _, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Node(0).Kind != graph.KindUnknown {
		t.Fatal("unknown kind should map to KindUnknown")
	}
}
