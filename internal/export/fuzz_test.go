package export

import (
	"strings"
	"testing"
)

// FuzzReadJSON: arbitrary bytes on the topology-ingest path must parse
// or fail with an error — never panic, never return a graph alongside
// an error.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"name":"t","nodes":[{"id":0},{"id":1}],"edges":[{"u":0,"v":1,"weight":1}]}`)
	f.Add(`{"name":"x","nodes":[{"id":0}`)
	f.Add(`{"name":"x","nodes":[{"id":0}],"edges":[]} trailing`)
	f.Add(`{"nodes":[{"id":5}],"edges":[]}`)
	f.Add(`{"nodes":[{"id":0}],"edges":[{"u":0,"v":9}]}`)
	f.Add(`[]`)
	f.Add(``)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, data string) {
		g, _, err := ReadJSON(strings.NewReader(data))
		if err != nil && g != nil {
			t.Fatalf("ReadJSON returned both a graph and an error: %v", err)
		}
	})
}

// FuzzReadAdjacency: the plain-text ingest path gets the same
// guarantee.
func FuzzReadAdjacency(f *testing.F) {
	f.Add("0 1 1.0\n1 2 2.0\n")
	f.Add("# comment\n\n0 1\n")
	f.Add("not an edge\n")
	f.Add("0 0\n")
	f.Add("-1 2\n")
	f.Add("0 1 x\n")
	f.Add("999999 1\n")
	f.Fuzz(func(t *testing.T, data string) {
		g, err := ReadAdjacency(strings.NewReader(data))
		if err != nil && g != nil {
			t.Fatalf("ReadAdjacency returned both a graph and an error: %v", err)
		}
	})
}
