// Package export serializes topologies for external tools: Graphviz DOT,
// a JSON document, and a plain adjacency list. The cmd/topogen and
// cmd/topostats binaries speak these formats.
package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// WriteDOT writes an undirected Graphviz representation. Node positions
// are exported as pos attributes (inches, pinned) so neato renders the
// geography faithfully.
func WriteDOT(w io.Writer, g *graph.Graph, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "topology"
	}
	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintf(bw, "  node [shape=point];\n")
	for v := 0; v < g.NumNodes(); v++ {
		n := g.Node(v)
		fmt.Fprintf(bw, "  %d [pos=\"%f,%f!\", kind=%q", v, n.X*10, n.Y*10, n.Kind.String())
		if n.Label != "" {
			fmt.Fprintf(bw, ", label=%q", n.Label)
		}
		fmt.Fprintf(bw, "];\n")
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  %d -- %d [weight=%g];\n", e.U, e.V, e.Weight)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

// jsonTopology is the JSON wire format.
type jsonTopology struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID    int     `json:"id"`
	Kind  string  `json:"kind"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Label string  `json:"label,omitempty"`
}

type jsonEdge struct {
	U        int     `json:"u"`
	V        int     `json:"v"`
	Weight   float64 `json:"weight"`
	Capacity float64 `json:"capacity,omitempty"`
	Cable    int     `json:"cable,omitempty"`
}

// WriteJSON writes the topology as a single JSON document.
func WriteJSON(w io.Writer, g *graph.Graph, name string) error {
	doc := jsonTopology{Name: name}
	for v := 0; v < g.NumNodes(); v++ {
		n := g.Node(v)
		doc.Nodes = append(doc.Nodes, jsonNode{
			ID: v, Kind: n.Kind.String(), X: n.X, Y: n.Y, Label: n.Label,
		})
	}
	for _, e := range g.Edges() {
		doc.Edges = append(doc.Edges, jsonEdge{
			U: e.U, V: e.V, Weight: e.Weight, Capacity: e.Capacity, Cable: e.Cable,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a topology previously written by WriteJSON. Node kinds
// it does not recognize become KindUnknown. Trailing content after the
// document is rejected, so a truncated-then-recovered or concatenated
// file fails loudly instead of yielding a partial topology.
func ReadJSON(r io.Reader) (*graph.Graph, string, error) {
	var doc jsonTopology
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, "", fmt.Errorf("export: decode JSON: %w", err)
	}
	switch _, err := dec.Token(); {
	case err == io.EOF:
	case err != nil:
		return nil, "", fmt.Errorf("export: after topology document: %w", err)
	default:
		return nil, "", fmt.Errorf("export: trailing data after topology document")
	}
	g := graph.New(len(doc.Nodes))
	// IDs must be dense 0..n-1; enforce by sorting and checking.
	sort.Slice(doc.Nodes, func(a, b int) bool { return doc.Nodes[a].ID < doc.Nodes[b].ID })
	for i, n := range doc.Nodes {
		if n.ID != i {
			return nil, "", fmt.Errorf("export: non-dense node id %d at position %d", n.ID, i)
		}
		g.AddNode(graph.Node{
			Kind: parseKind(n.Kind), X: n.X, Y: n.Y, Label: n.Label,
		})
	}
	for i, e := range doc.Edges {
		if e.U < 0 || e.U >= len(doc.Nodes) || e.V < 0 || e.V >= len(doc.Nodes) || e.U == e.V {
			return nil, "", fmt.Errorf("export: bad edge %d (%d,%d)", i, e.U, e.V)
		}
		g.AddEdge(graph.Edge{U: e.U, V: e.V, Weight: e.Weight, Capacity: e.Capacity, Cable: e.Cable})
	}
	return g, doc.Name, nil
}

func parseKind(s string) graph.NodeKind {
	for _, k := range []graph.NodeKind{
		graph.KindCore, graph.KindPOP, graph.KindConc,
		graph.KindCustomer, graph.KindPeering,
	} {
		if k.String() == s {
			return k
		}
	}
	return graph.KindUnknown
}

// WriteAdjacency writes one line per edge: "u v weight".
func WriteAdjacency(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.Weight)
	}
	return bw.Flush()
}

// maxAdjacencyNodeID bounds node ids accepted from adjacency input:
// the node count is inferred from the maximum id, so an absurd id in a
// malformed or hostile file would otherwise force an absurd allocation.
const maxAdjacencyNodeID = 1 << 26

// ReadAdjacency parses the WriteAdjacency format. Node count is inferred
// from the maximum id; nodes get zero annotations. Ids above
// maxAdjacencyNodeID (2^26) are rejected.
func ReadAdjacency(r io.Reader) (*graph.Graph, error) {
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	maxID := -1
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("export: line %d: need at least 'u v'", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("export: line %d: %w", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("export: line %d: %w", line, err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("export: line %d: %w", line, err)
			}
		}
		if u < 0 || v < 0 || u == v {
			return nil, fmt.Errorf("export: line %d: bad edge (%d,%d)", line, u, v)
		}
		if u > maxAdjacencyNodeID || v > maxAdjacencyNodeID {
			return nil, fmt.Errorf("export: line %d: node id beyond %d", line, maxAdjacencyNodeID)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, edge{u, v, w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := graph.New(maxID + 1)
	for i := 0; i <= maxID; i++ {
		g.AddNode(graph.Node{})
	}
	for _, e := range edges {
		g.AddEdge(graph.Edge{U: e.u, V: e.v, Weight: e.w})
	}
	return g, nil
}
