package gen

import (
	"testing"

	"repro/internal/stats"
)

func TestInetLikeConnected(t *testing.T) {
	g, err := InetLike(800, 2.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 800 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("InetLike must patch connectivity")
	}
}

func TestInetLikeHeavyTail(t *testing.T) {
	g, err := InetLike(3000, 2.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := stats.ClassifyTail(g.Degrees())
	if c.Kind != stats.TailPowerLaw {
		t.Fatalf("InetLike degrees classified %v, want power-law", c.Kind)
	}
}

func TestInetLikeErrors(t *testing.T) {
	if _, err := InetLike(2, 2.1, 1); err == nil {
		t.Fatal("tiny n should error")
	}
	if _, err := InetLike(100, 1.0, 1); err == nil {
		t.Fatal("alpha <= 1 should error")
	}
}

func TestInetLikeDeterministic(t *testing.T) {
	a, err := InetLike(300, 2.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := InetLike(300, 2.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("InetLike not deterministic")
	}
}
