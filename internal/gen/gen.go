// Package gen implements the descriptive/degree-based topology generators
// the paper contrasts against (its references [1,7,21,23,33]): Erdős–Rényi
// random graphs, Waxman's geographic random graph, Barabási–Albert
// preferential attachment, GLP (generalized linear preference), a GT-ITM
// style transit-stub hierarchy, and a random geometric graph.
//
// These are the baselines for experiment E7: each matches some observed
// Internet statistics by construction, yet — as the paper argues — they
// are evocative rather than explanatory, and diverge from the HOT outputs
// on the metrics they were not tuned to.
package gen

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/errs"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rng"
)

// ErdosRenyiGNP samples G(n, p): each of the C(n,2) edges present
// independently with probability p.
func ErdosRenyiGNP(n int, p float64, seed int64) (*graph.Graph, error) {
	return ErdosRenyiGNPContext(context.Background(), n, p, seed)
}

// ErdosRenyiGNPContext is ErdosRenyiGNP with cancellation, checked once
// per source row of the pair loop.
func ErdosRenyiGNPContext(ctx context.Context, n int, p float64, seed int64) (*graph.Graph, error) {
	if n < 0 || p < 0 || p > 1 {
		return nil, errs.BadParamf("gen: bad G(n,p) parameters n=%d p=%v", n, p)
	}
	r := rng.New(seed)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{X: r.Float64(), Y: r.Float64()})
	}
	for u := 0; u < n; u++ {
		if err := errs.Ctx(ctx); err != nil {
			return nil, fmt.Errorf("gen: G(n,p): %w", err)
		}
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
			}
		}
	}
	g.EuclideanWeights()
	return g, nil
}

// ErdosRenyiGNM samples G(n, m): exactly m distinct edges uniformly at
// random. m is clamped to C(n,2).
func ErdosRenyiGNM(n, m int, seed int64) (*graph.Graph, error) {
	return ErdosRenyiGNMContext(context.Background(), n, m, seed)
}

// ErdosRenyiGNMContext is ErdosRenyiGNM with cancellation, checked
// periodically while drawing edges.
func ErdosRenyiGNMContext(ctx context.Context, n, m int, seed int64) (*graph.Graph, error) {
	if n < 0 || m < 0 {
		return nil, errs.BadParamf("gen: bad G(n,m) parameters n=%d m=%d", n, m)
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	r := rng.New(seed)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{X: r.Float64(), Y: r.Float64()})
	}
	seen := make(map[[2]int]bool, m)
	for g.NumEdges() < m {
		if g.NumEdges()%1024 == 0 {
			if err := errs.Ctx(ctx); err != nil {
				return nil, fmt.Errorf("gen: G(n,m): %w", err)
			}
		}
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
	}
	g.EuclideanWeights()
	return g, nil
}

// Waxman samples the classic Waxman geographic random graph: nodes are
// uniform in the unit square and edge (u,v) appears with probability
// beta * exp(-d(u,v) / (alpha * L)), L the maximum possible distance.
func Waxman(n int, alpha, beta float64, seed int64) (*graph.Graph, error) {
	return WaxmanContext(context.Background(), n, alpha, beta, seed)
}

// WaxmanContext is Waxman with cancellation, checked once per source row
// of the pair loop.
func WaxmanContext(ctx context.Context, n int, alpha, beta float64, seed int64) (*graph.Graph, error) {
	if n < 0 || alpha <= 0 || beta <= 0 || beta > 1 {
		return nil, errs.BadParamf("gen: bad Waxman parameters n=%d alpha=%v beta=%v", n, alpha, beta)
	}
	r := rng.New(seed)
	g := graph.New(n)
	pts := geom.UnitSquare.RandomPoints(r, n)
	for _, p := range pts {
		g.AddNode(graph.Node{X: p.X, Y: p.Y})
	}
	l := geom.UnitSquare.Diagonal()
	for u := 0; u < n; u++ {
		if err := errs.Ctx(ctx); err != nil {
			return nil, fmt.Errorf("gen: Waxman: %w", err)
		}
		for v := u + 1; v < n; v++ {
			d := pts[u].Dist(pts[v])
			if r.Float64() < beta*math.Exp(-d/(alpha*l)) {
				g.AddEdge(graph.Edge{U: u, V: v, Weight: d})
			}
		}
	}
	return g, nil
}

// BarabasiAlbert grows a preferential-attachment graph: each arriving
// node connects to m existing nodes chosen with probability proportional
// to their current degree. The seed graph is a star on m+1 nodes, so
// every arrival can find m distinct targets.
func BarabasiAlbert(n, m int, seed int64) (*graph.Graph, error) {
	return BarabasiAlbertContext(context.Background(), n, m, seed)
}

// BarabasiAlbertContext is BarabasiAlbert with cancellation, checked at
// every arrival.
func BarabasiAlbertContext(ctx context.Context, n, m int, seed int64) (*graph.Graph, error) {
	if m < 1 || n < m+1 {
		return nil, errs.BadParamf("gen: BA requires m >= 1 and n >= m+1 (n=%d m=%d)", n, m)
	}
	r := rng.New(seed)
	g := graph.New(n)
	for i := 0; i <= m; i++ {
		g.AddNode(graph.Node{X: r.Float64(), Y: r.Float64()})
	}
	// Repeated-endpoint list implements degree-proportional sampling.
	var ends []int
	for i := 1; i <= m; i++ {
		g.AddEdge(graph.Edge{U: 0, V: i, Weight: 1})
		ends = append(ends, 0, i)
	}
	for i := m + 1; i < n; i++ {
		if err := errs.Ctx(ctx); err != nil {
			return nil, fmt.Errorf("gen: BA at arrival %d: %w", i, err)
		}
		id := g.AddNode(graph.Node{X: r.Float64(), Y: r.Float64()})
		seen := map[int]bool{}
		targets := make([]int, 0, m)
		for len(targets) < m {
			t := ends[r.Intn(len(ends))]
			if t != id && !seen[t] {
				seen[t] = true
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			g.AddEdge(graph.Edge{U: t, V: id, Weight: 1})
			ends = append(ends, t, id)
		}
	}
	g.EuclideanWeights()
	return g, nil
}

// GLP grows a Generalized Linear Preference graph (Bu & Towsley, the
// paper's reference [8]): with probability p an arriving step adds m new
// links between existing nodes, otherwise it adds a new node with m
// links; targets are chosen with probability proportional to
// (degree - beta), beta < 1 tuning the preference strength.
func GLP(n, m int, p, beta float64, seed int64) (*graph.Graph, error) {
	return GLPContext(context.Background(), n, m, p, beta, seed)
}

// GLPContext is GLP with cancellation, checked at every growth step.
func GLPContext(ctx context.Context, n, m int, p, beta float64, seed int64) (*graph.Graph, error) {
	if m < 1 || n < m+1 || p < 0 || p >= 1 || beta >= 1 {
		return nil, errs.BadParamf("gen: bad GLP parameters n=%d m=%d p=%v beta=%v", n, m, p, beta)
	}
	r := rng.New(seed)
	g := graph.New(n)
	for i := 0; i <= m; i++ {
		g.AddNode(graph.Node{X: r.Float64(), Y: r.Float64()})
	}
	for i := 1; i <= m; i++ {
		g.AddEdge(graph.Edge{U: 0, V: i, Weight: 1})
	}
	pick := func(exclude int) int {
		// Weight degree-beta; all degrees >= 1 in this growth process, and
		// beta < 1 keeps weights positive.
		nn := g.NumNodes()
		weights := make([]float64, nn)
		for u := 0; u < nn; u++ {
			if u == exclude {
				continue
			}
			weights[u] = float64(g.Degree(u)) - beta
			if weights[u] < 0 {
				weights[u] = 0
			}
		}
		return rng.WeightedChoice(r, weights)
	}
	for g.NumNodes() < n {
		if err := errs.Ctx(ctx); err != nil {
			return nil, fmt.Errorf("gen: GLP: %w", err)
		}
		if r.Float64() < p {
			// Add m internal links.
			for k := 0; k < m; k++ {
				u := pick(-1)
				v := pick(u)
				if u != v && !g.HasEdge(u, v) {
					g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
				}
			}
			continue
		}
		id := g.AddNode(graph.Node{X: r.Float64(), Y: r.Float64()})
		added := map[int]bool{}
		for len(added) < m {
			t := pick(id)
			if t != id && !added[t] {
				added[t] = true
				g.AddEdge(graph.Edge{U: t, V: id, Weight: 1})
			}
		}
	}
	g.EuclideanWeights()
	return g, nil
}

// TransitStubConfig parameterizes the GT-ITM style two-level hierarchy.
type TransitStubConfig struct {
	TransitDomains  int     // number of transit (backbone) domains
	TransitSize     int     // routers per transit domain
	StubsPerTransit int     // stub domains hanging off each transit router
	StubSize        int     // routers per stub domain
	EdgeProb        float64 // intra-domain extra edge probability
	Seed            int64
}

// TransitStub generates a GT-ITM style transit-stub topology ([33]): a
// connected random mesh of transit domains; each transit router sponsors
// StubsPerTransit stub domains; domains are internally connected (random
// spanning tree + extra random edges with EdgeProb).
func TransitStub(cfg TransitStubConfig) (*graph.Graph, error) {
	return TransitStubContext(context.Background(), cfg)
}

// TransitStubContext is TransitStub with cancellation, checked per
// transit router while sponsoring stub domains.
func TransitStubContext(ctx context.Context, cfg TransitStubConfig) (*graph.Graph, error) {
	if cfg.TransitDomains < 1 || cfg.TransitSize < 1 || cfg.StubsPerTransit < 0 || cfg.StubSize < 1 {
		return nil, errs.BadParamf("gen: bad transit-stub config %+v", cfg)
	}
	if cfg.EdgeProb < 0 || cfg.EdgeProb > 1 {
		return nil, errs.BadParamf("gen: bad transit-stub edge probability %v", cfg.EdgeProb)
	}
	r := rng.New(cfg.Seed)
	g := graph.New(0)

	// makeDomain creates a connected random domain at a geographic
	// anchor and returns its node ids.
	makeDomain := func(size int, kind graph.NodeKind, anchor geom.Point, spread float64) []int {
		ids := make([]int, size)
		pts := geom.UnitSquare.GaussianCluster(r, anchor, spread, size)
		for i := 0; i < size; i++ {
			ids[i] = g.AddNode(graph.Node{Kind: kind, X: pts[i].X, Y: pts[i].Y})
		}
		// Random spanning tree.
		perm := rng.Shuffle(r, size)
		for i := 1; i < size; i++ {
			u, v := ids[perm[i]], ids[perm[r.Intn(i)]]
			g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
		}
		// Extra intra-domain edges.
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if !g.HasEdge(ids[i], ids[j]) && r.Float64() < cfg.EdgeProb {
					g.AddEdge(graph.Edge{U: ids[i], V: ids[j], Weight: 1})
				}
			}
		}
		return ids
	}

	// Transit domains.
	transit := make([][]int, cfg.TransitDomains)
	anchors := geom.UnitSquare.RandomPoints(r, cfg.TransitDomains)
	for d := range transit {
		transit[d] = makeDomain(cfg.TransitSize, graph.KindCore, anchors[d], 0.03)
	}
	// Connect transit domains in a random tree plus one redundant link
	// per extra domain pair with EdgeProb.
	for d := 1; d < cfg.TransitDomains; d++ {
		o := r.Intn(d)
		u := transit[d][r.Intn(cfg.TransitSize)]
		v := transit[o][r.Intn(cfg.TransitSize)]
		g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
	}
	// Stub domains per transit router.
	for d := range transit {
		for _, tr := range transit[d] {
			if err := errs.Ctx(ctx); err != nil {
				return nil, fmt.Errorf("gen: transit-stub: %w", err)
			}
			for s := 0; s < cfg.StubsPerTransit; s++ {
				node := g.Node(tr)
				anchor := geom.Point{X: node.X, Y: node.Y}
				stub := makeDomain(cfg.StubSize, graph.KindCustomer, anchor, 0.02)
				gw := stub[r.Intn(len(stub))]
				g.AddEdge(graph.Edge{U: tr, V: gw, Weight: 1})
			}
		}
	}
	g.EuclideanWeights()
	return g, nil
}

// ConfigurationModel samples a simple graph whose degree sequence
// matches the target as closely as possible: stub matching with
// rejection of self-loops and duplicate edges, followed by edge-swap
// repair for leftover stubs. This is the purest "descriptive" generator
// — it matches the degree distribution *exactly* and nothing else —
// which makes it the sharpest instance of the paper's §1 critique.
//
// The sum of degrees must be even (one stub is dropped otherwise, with
// Stats.DroppedStubs reporting it); the realized sequence may differ
// from the target by a few stubs when the sequence is hard to realize
// simply (counted in DroppedStubs).
func ConfigurationModel(degrees []int, seed int64) (*graph.Graph, int, error) {
	return ConfigurationModelContext(context.Background(), degrees, seed)
}

// ConfigurationModelContext is ConfigurationModel with cancellation,
// checked between the matching and repair phases.
func ConfigurationModelContext(ctx context.Context, degrees []int, seed int64) (*graph.Graph, int, error) {
	n := len(degrees)
	if n == 0 {
		return nil, 0, errs.BadParamf("gen: empty degree sequence")
	}
	total := 0
	for i, d := range degrees {
		if d < 0 {
			return nil, 0, errs.BadParamf("gen: negative degree at %d", i)
		}
		if d >= n {
			return nil, 0, errs.BadParamf("gen: degree %d at node %d impossible in a simple graph of %d nodes", d, i, n)
		}
		total += d
	}
	r := rng.New(seed)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{X: r.Float64(), Y: r.Float64()})
	}
	// Stub list.
	stubs := make([]int, 0, total)
	for v, d := range degrees {
		for k := 0; k < d; k++ {
			stubs = append(stubs, v)
		}
	}
	dropped := 0
	if len(stubs)%2 == 1 {
		stubs = stubs[:len(stubs)-1]
		dropped++
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	type pair [2]int
	seen := map[pair]bool{}
	var leftoverA, leftoverB []int
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u > v {
			u, v = v, u
		}
		if u == v || seen[pair{u, v}] {
			leftoverA = append(leftoverA, stubs[i])
			leftoverB = append(leftoverB, stubs[i+1])
			continue
		}
		seen[pair{u, v}] = true
		g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
	}
	if err := errs.Ctx(ctx); err != nil {
		return nil, 0, fmt.Errorf("gen: configuration model: %w", err)
	}
	// Repair leftovers by double edge swaps: pick a random existing edge
	// (x,y) and rewire (u,x),(v,y) when all four edges stay simple.
	for k := range leftoverA {
		u, v := leftoverA[k], leftoverB[k]
		repaired := false
		for attempt := 0; attempt < 200 && g.NumEdges() > 0; attempt++ {
			eid := r.Intn(g.NumEdges())
			e := g.Edge(eid)
			x, y := e.U, e.V
			if r.Intn(2) == 1 {
				x, y = y, x
			}
			a1, b1 := ordered(u, x)
			a2, b2 := ordered(v, y)
			ox0, oy0 := ordered(x, y)
			// The sampled edge must still be present (earlier repairs may
			// have rewired it away), and the rewiring must stay simple.
			if !seen[pair{ox0, oy0}] || u == x || v == y ||
				seen[pair{a1, b1}] || seen[pair{a2, b2}] {
				continue
			}
			// Remove (x,y) logically by marking; the graph has no edge
			// removal, so rebuild below. Track swaps instead.
			ox, oy := ordered(x, y)
			delete(seen, pair{ox, oy})
			seen[pair{a1, b1}] = true
			seen[pair{a2, b2}] = true
			repaired = true
			break
		}
		if !repaired {
			dropped += 2
		}
	}
	// Rebuild the graph from the final edge set (cheaper than tracking
	// removals in-place).
	out := graph.New(n)
	for i := 0; i < n; i++ {
		out.AddNode(*g.Node(i))
	}
	keys := make([]pair, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		out.AddEdge(graph.Edge{U: k[0], V: k[1], Weight: 1})
	}
	out.EuclideanWeights()
	return out, dropped, nil
}

func ordered(a, b int) (int, int) {
	if a > b {
		return b, a
	}
	return a, b
}

// InetLike generates a topology the way Inet (the paper's reference
// [21]) does: draw a degree sequence from a truncated discrete power law
// with exponent alpha and minimum degree 1, realize it with the
// configuration model, then patch connectivity by linking smaller
// components to the largest one (attaching at their highest-degree
// nodes, as Inet's spanning-tree phase effectively does).
func InetLike(n int, alpha float64, seed int64) (*graph.Graph, error) {
	return InetLikeContext(context.Background(), n, alpha, seed)
}

// InetLikeContext is InetLike with cancellation, threaded through the
// underlying configuration-model realization.
func InetLikeContext(ctx context.Context, n int, alpha float64, seed int64) (*graph.Graph, error) {
	if n < 3 {
		return nil, errs.BadParamf("gen: InetLike needs n >= 3 (n=%d)", n)
	}
	if alpha <= 1 {
		return nil, errs.BadParamf("gen: InetLike needs alpha > 1 (alpha=%v)", alpha)
	}
	r := rng.New(seed)
	maxDeg := n / 4
	if maxDeg < 3 {
		maxDeg = 3
	}
	// Truncated zeta CDF over [1, maxDeg].
	weights := make([]float64, maxDeg)
	total := 0.0
	for k := 1; k <= maxDeg; k++ {
		weights[k-1] = math.Pow(float64(k), -alpha)
		total += weights[k-1]
	}
	cdf := make([]float64, maxDeg)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	degrees := make([]int, n)
	sum := 0
	for i := range degrees {
		u := r.Float64()
		lo, hi := 0, maxDeg-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		degrees[i] = lo + 1
		sum += degrees[i]
	}
	if sum%2 == 1 {
		degrees[0]++
	}
	g, _, err := ConfigurationModelContext(ctx, degrees, rng.Derive(seed, 1))
	if err != nil {
		return nil, err
	}
	// Connectivity patch: join every smaller component's max-degree node
	// to the giant component's max-degree node.
	label, sizes := g.ConnectedComponents()
	if len(sizes) > 1 {
		giant := 0
		for id, s := range sizes {
			if s > sizes[giant] {
				giant = id
			}
		}
		maxOf := make([]int, len(sizes))
		for i := range maxOf {
			maxOf[i] = -1
		}
		for v := 0; v < g.NumNodes(); v++ {
			id := label[v]
			if maxOf[id] == -1 || g.Degree(v) > g.Degree(maxOf[id]) {
				maxOf[id] = v
			}
		}
		for id := range sizes {
			if id != giant && maxOf[id] >= 0 {
				g.AddEdge(graph.Edge{U: maxOf[id], V: maxOf[giant], Weight: 1})
			}
		}
		g.EuclideanWeights()
	}
	return g, nil
}

// RandomGeometric connects all pairs of n uniform points within the given
// radius — the simplest "technology reach" null model.
func RandomGeometric(n int, radius float64, seed int64) (*graph.Graph, error) {
	return RandomGeometricContext(context.Background(), n, radius, seed)
}

// RandomGeometricContext is RandomGeometric with cancellation, checked
// once per source node.
func RandomGeometricContext(ctx context.Context, n int, radius float64, seed int64) (*graph.Graph, error) {
	if n < 0 || radius < 0 {
		return nil, errs.BadParamf("gen: bad RGG parameters n=%d radius=%v", n, radius)
	}
	r := rng.New(seed)
	pts := geom.UnitSquare.RandomPoints(r, n)
	g := graph.New(n)
	for _, p := range pts {
		g.AddNode(graph.Node{X: p.X, Y: p.Y})
	}
	tree := geom.NewKDTree(pts)
	for u := 0; u < n; u++ {
		if err := errs.Ctx(ctx); err != nil {
			return nil, fmt.Errorf("gen: RGG: %w", err)
		}
		for _, v := range tree.RangeSearch(pts[u], radius) {
			if v > u {
				g.AddEdge(graph.Edge{U: u, V: v, Weight: pts[u].Dist(pts[v])})
			}
		}
	}
	return g, nil
}
