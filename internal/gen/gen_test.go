package gen

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestGNPEdgeCount(t *testing.T) {
	n, p := 200, 0.05
	g, err := ErdosRenyiGNP(n, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := p * float64(n*(n-1)/2)
	got := float64(g.NumEdges())
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("G(n,p) edges = %v, want ~%v", got, want)
	}
}

func TestGNPExtremes(t *testing.T) {
	g, err := ErdosRenyiGNP(20, 0, 1)
	if err != nil || g.NumEdges() != 0 {
		t.Fatalf("p=0 should give empty graph (err=%v edges=%d)", err, g.NumEdges())
	}
	g, err = ErdosRenyiGNP(20, 1, 1)
	if err != nil || g.NumEdges() != 190 {
		t.Fatalf("p=1 should give complete graph (err=%v edges=%d)", err, g.NumEdges())
	}
	if _, err := ErdosRenyiGNP(10, 1.5, 1); err == nil {
		t.Fatal("p>1 should error")
	}
	if _, err := ErdosRenyiGNP(-1, 0.5, 1); err == nil {
		t.Fatal("n<0 should error")
	}
}

func TestGNMExactEdges(t *testing.T) {
	g, err := ErdosRenyiGNM(50, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 100 {
		t.Fatalf("G(n,m) edges = %d, want 100", g.NumEdges())
	}
	// No duplicate edges.
	seen := map[[2]int]bool{}
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			t.Fatal("duplicate edge in G(n,m)")
		}
		seen[[2]int{u, v}] = true
	}
}

func TestGNMClampsToComplete(t *testing.T) {
	g, err := ErdosRenyiGNM(5, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 10 {
		t.Fatalf("clamped G(n,m) edges = %d, want 10", g.NumEdges())
	}
}

func TestWaxmanDistanceBias(t *testing.T) {
	g, err := Waxman(300, 0.1, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("Waxman produced no edges")
	}
	// Mean edge length must be well below the mean random-pair distance
	// (~0.52 in the unit square) because of the exponential decay.
	total := 0.0
	for _, e := range g.Edges() {
		total += e.Weight
	}
	mean := total / float64(g.NumEdges())
	if mean > 0.4 {
		t.Fatalf("Waxman mean edge length %v shows no distance bias", mean)
	}
}

func TestWaxmanBadParams(t *testing.T) {
	for _, c := range [][3]float64{{-1, 0.1, 0.5}, {10, 0, 0.5}, {10, 0.1, 0}, {10, 0.1, 1.5}} {
		if _, err := Waxman(int(c[0]), c[1], c[2], 1); err == nil {
			t.Fatalf("params %v should error", c)
		}
	}
}

func TestBAEdgeCountAndConnectivity(t *testing.T) {
	n, m := 500, 2
	g, err := BarabasiAlbert(n, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := m + (n-m-1)*m // star seed + m per arrival
	if g.NumEdges() != want {
		t.Fatalf("BA edges = %d, want %d", g.NumEdges(), want)
	}
	if !g.IsConnected() {
		t.Fatal("BA graph must be connected")
	}
}

func TestBAPowerLawTail(t *testing.T) {
	g, err := BarabasiAlbert(3000, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	c := stats.ClassifyTail(g.Degrees())
	if c.Kind != stats.TailPowerLaw {
		t.Fatalf("BA degrees classified as %v, want power-law", c.Kind)
	}
	// BA exponent is 3 asymptotically; accept a broad band.
	if c.PowerLaw.Alpha < 2 || c.PowerLaw.Alpha > 4 {
		t.Fatalf("BA alpha = %v, want in [2,4]", c.PowerLaw.Alpha)
	}
}

func TestBAWithM1IsTree(t *testing.T) {
	g, err := BarabasiAlbert(400, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTree() {
		t.Fatal("BA with m=1 must be a tree")
	}
}

func TestBABadParams(t *testing.T) {
	if _, err := BarabasiAlbert(2, 2, 1); err == nil {
		t.Fatal("n <= m should error")
	}
	if _, err := BarabasiAlbert(10, 0, 1); err == nil {
		t.Fatal("m=0 should error")
	}
}

func TestGLPGrowsToN(t *testing.T) {
	g, err := GLP(400, 1, 0.4, 0.6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 400 {
		t.Fatalf("GLP nodes = %d, want 400", g.NumNodes())
	}
	if !g.IsConnected() {
		t.Fatal("GLP graph must be connected")
	}
}

func TestGLPHeavyTail(t *testing.T) {
	g, err := GLP(2500, 1, 0.3, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	ds := stats.AnalyzeDegrees(g)
	// GLP's defining property: heavier hubs than BA at same m. At least
	// confirm a hub well above the mean.
	if float64(ds.MaxDegree) < 10*ds.MeanDegree {
		t.Fatalf("GLP max degree %d not heavy-tailed (mean %v)", ds.MaxDegree, ds.MeanDegree)
	}
}

func TestGLPBadParams(t *testing.T) {
	bad := []struct {
		n, m    int
		p, beta float64
	}{
		{10, 0, 0.5, 0.5},
		{1, 1, 0.5, 0.5},
		{10, 1, -0.1, 0.5},
		{10, 1, 1.0, 0.5},
		{10, 1, 0.5, 1.0},
	}
	for i, b := range bad {
		if _, err := GLP(b.n, b.m, b.p, b.beta, 1); err == nil {
			t.Fatalf("bad GLP config %d accepted", i)
		}
	}
}

func TestTransitStubStructure(t *testing.T) {
	cfg := TransitStubConfig{
		TransitDomains:  3,
		TransitSize:     4,
		StubsPerTransit: 2,
		StubSize:        5,
		EdgeProb:        0.3,
		Seed:            10,
	}
	g, err := TransitStub(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := 3*4 + 3*4*2*5
	if g.NumNodes() != wantNodes {
		t.Fatalf("transit-stub nodes = %d, want %d", g.NumNodes(), wantNodes)
	}
	if !g.IsConnected() {
		t.Fatal("transit-stub must be connected")
	}
}

func TestTransitStubNoStubs(t *testing.T) {
	g, err := TransitStub(TransitStubConfig{
		TransitDomains: 2, TransitSize: 3, StubsPerTransit: 0, StubSize: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 {
		t.Fatalf("nodes = %d, want 6", g.NumNodes())
	}
}

func TestTransitStubBadConfig(t *testing.T) {
	if _, err := TransitStub(TransitStubConfig{}); err == nil {
		t.Fatal("zero config should error")
	}
	if _, err := TransitStub(TransitStubConfig{TransitDomains: 1, TransitSize: 1, StubSize: 1, EdgeProb: 2}); err == nil {
		t.Fatal("EdgeProb > 1 should error")
	}
}

func TestRandomGeometricRadius(t *testing.T) {
	g, err := RandomGeometric(200, 0.15, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Weight > 0.15+1e-12 {
			t.Fatalf("RGG edge of length %v exceeds radius", e.Weight)
		}
	}
}

func TestRandomGeometricZeroRadius(t *testing.T) {
	g, err := RandomGeometric(50, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatal("zero radius should give no edges")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, _ := BarabasiAlbert(300, 2, 42)
	b, _ := BarabasiAlbert(300, 2, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("BA not deterministic")
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(i).U != b.Edge(i).U || a.Edge(i).V != b.Edge(i).V {
			t.Fatal("BA edge sequence not deterministic")
		}
	}
}
