package gen

import (
	"sort"
	"testing"

	"repro/internal/stats"
)

func TestConfigurationModelMatchesDegrees(t *testing.T) {
	// A realizable regular-ish sequence.
	degrees := make([]int, 100)
	for i := range degrees {
		degrees[i] = 4
	}
	g, dropped, err := ConfigurationModel(degrees, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dropped > 4 {
		t.Fatalf("dropped %d stubs on an easy sequence", dropped)
	}
	got := g.Degrees()
	off := 0
	for i, d := range got {
		if d != degrees[i] {
			off++
		}
	}
	// Repair may leave a handful of nodes off by one.
	if off > 6 {
		t.Fatalf("%d of 100 nodes missed their target degree", off)
	}
}

func TestConfigurationModelSimpleGraph(t *testing.T) {
	degrees := make([]int, 200)
	for i := range degrees {
		degrees[i] = 1 + i%6
	}
	g, _, err := ConfigurationModel(degrees, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for _, e := range g.Edges() {
		if e.U == e.V {
			t.Fatal("self-loop in configuration model output")
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			t.Fatal("duplicate edge in configuration model output")
		}
		seen[[2]int{u, v}] = true
	}
}

func TestConfigurationModelReplicatesBATail(t *testing.T) {
	// The descriptive-generator pipeline the paper criticizes: read off
	// a topology's degree sequence, regenerate "a topology like it".
	ba, err := BarabasiAlbert(1500, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := ConfigurationModel(ba.Degrees(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Degree multisets nearly identical → same tail class.
	a := stats.ClassifyTail(ba.Degrees())
	b := stats.ClassifyTail(g.Degrees())
	if a.Kind != b.Kind {
		t.Fatalf("tail class changed: %v vs %v", a.Kind, b.Kind)
	}
	// But it should NOT reproduce geometric structure such as clustering
	// of a clustered source; for BA both are near zero so just check the
	// degree sort order matches closely.
	da := append([]int(nil), ba.Degrees()...)
	db := append([]int(nil), g.Degrees()...)
	sort.Ints(da)
	sort.Ints(db)
	mismatch := 0
	for i := range da {
		if da[i] != db[i] {
			mismatch++
		}
	}
	if mismatch > len(da)/20 {
		t.Fatalf("sorted degree sequences differ at %d of %d positions", mismatch, len(da))
	}
}

func TestConfigurationModelOddSumHandled(t *testing.T) {
	g, dropped, err := ConfigurationModel([]int{3, 2, 2, 2}, 5) // sum 9, odd
	if err != nil {
		t.Fatal(err)
	}
	if dropped < 1 {
		t.Fatal("odd stub sum must report a dropped stub")
	}
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
}

func TestConfigurationModelErrors(t *testing.T) {
	if _, _, err := ConfigurationModel(nil, 1); err == nil {
		t.Fatal("empty sequence should error")
	}
	if _, _, err := ConfigurationModel([]int{-1, 1}, 1); err == nil {
		t.Fatal("negative degree should error")
	}
	if _, _, err := ConfigurationModel([]int{3, 1, 1, 1}, 1); err != nil {
		t.Fatalf("valid sequence rejected: %v", err)
	}
	if _, _, err := ConfigurationModel([]int{5, 1, 1, 1}, 1); err == nil {
		t.Fatal("degree >= n should error")
	}
}

func TestConfigurationModelDeterministic(t *testing.T) {
	degrees := []int{1, 2, 3, 2, 1, 3, 2, 2}
	a, _, err := ConfigurationModel(degrees, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ConfigurationModel(degrees, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("not deterministic")
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(i).U != b.Edge(i).U || a.Edge(i).V != b.Edge(i).V {
			t.Fatal("edge order not deterministic")
		}
	}
}
