package experiments

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/rng"
	"repro/internal/stats"
)

// E2BuyAtBulk regenerates the §4.2 headline result: the randomized
// buy-at-bulk approximation "yields tree topologies with exponential node
// degree distributions".
func E2BuyAtBulk(opts Options) (*Table, error) {
	n := opts.scale(1200)
	reps := opts.reps(8)
	t := &Table{
		ID:    "E2",
		Title: fmt.Sprintf("Buy-at-bulk access design, %d customers, %d seeds", n, reps),
		Claim: "\"the approximation method in [24] yields tree topologies with exponential node degree distributions\" (§4.2)",
		Header: []string{
			"algorithm", "trees", "tail=exp", "tail=pl", "maxDeg(avg)",
			"lambda(avg)", "KSexp(avg)", "leafFrac(avg)",
		},
	}
	type algo struct {
		name string
		run  func(in *access.Instance, seed int64) (*access.Network, error)
	}
	algos := []algo{
		{"mmp-incremental", access.MMPIncremental},
		{"sample-augment(p=.25)", func(in *access.Instance, seed int64) (*access.Network, error) {
			return access.SampleAndAugment(in, seed, 0.25)
		}},
	}
	// One unit per (algorithm, replication); reduced in order below.
	type repStat struct {
		tree                     bool
		tail                     stats.TailKind
		maxDeg, lambda, ks, leaf float64
	}
	repStats, err := mapUnits(opts, len(algos)*reps, func(u int) (repStat, error) {
		a, rep := algos[u/reps], u%reps
		in, err := access.RandomInstance(access.InstanceConfig{
			N: n, Seed: rng.Derive(opts.Seed, rep),
			DemandMin: 1, DemandMax: 16, RootAtCenter: true,
		})
		if err != nil {
			return repStat{}, err
		}
		net, err := a.run(in, rng.Derive(opts.Seed, 100+rep))
		if err != nil {
			return repStat{}, err
		}
		ds := stats.AnalyzeDegrees(net.Graph)
		fit := stats.FitExponential(net.Graph.Degrees(), 1)
		return repStat{
			tree:   net.Graph.IsTree(),
			tail:   ds.Classification.Kind,
			maxDeg: float64(ds.MaxDegree),
			lambda: fit.Lambda,
			ks:     fit.KS,
			leaf:   float64(len(net.Graph.Leaves())) / float64(net.Graph.NumNodes()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for ai, a := range algos {
		trees, expTail, plTail := 0, 0, 0
		var maxDeg, lambda, ks, leafFrac float64
		for _, rs := range repStats[ai*reps : (ai+1)*reps] {
			if rs.tree {
				trees++
			}
			switch rs.tail {
			case stats.TailExponential:
				expTail++
			case stats.TailPowerLaw:
				plTail++
			}
			maxDeg += rs.maxDeg
			lambda += rs.lambda
			ks += rs.ks
			leafFrac += rs.leaf
		}
		rf := float64(reps)
		t.AddRow(a.name,
			fmt.Sprintf("%d/%d", trees, reps),
			fmt.Sprintf("%d/%d", expTail, reps),
			fmt.Sprintf("%d/%d", plTail, reps),
			f2(maxDeg/rf), f3(lambda/rf), f3(ks/rf), f3(leafFrac/rf))
	}
	t.Notes = append(t.Notes,
		"tail classified by symmetric KS comparison: discrete power-law vs geometric fits, each at its own KS-optimal xmin",
		"the paper reports the same qualitative outcome: trees, exponential degrees, consistent with FKP's large-alpha regime")
	return t, nil
}

// E3CostRatios regenerates the §4.1 economics: with economies of scale,
// the buy-at-bulk heuristics beat both naive extremes, and stay within a
// constant factor of the lower bound ("constant factor bound on the
// quality of the solution independent of problem size").
func E3CostRatios(opts Options) (*Table, error) {
	reps := opts.reps(5)
	t := &Table{
		ID:    "E3",
		Title: fmt.Sprintf("Cost vs lower bound across instance sizes, %d seeds each", reps),
		Claim: "buy-at-bulk economies of scale reward aggregation; the randomized algorithm has a constant-factor guarantee independent of size (§4.1)",
		Header: []string{
			"customers", "mmp/LB", "sa/LB", "mst1/LB", "star/LB", "mmp<min(base)",
		},
	}
	sizes := []int{opts.scale(200), opts.scale(500), opts.scale(1000), opts.scale(2000)}
	// One unit per (instance size, replication); reduced in order below.
	type repStat struct {
		rMMP, rSA, rMST, rStar float64
		win                    bool
	}
	repStats, err := mapUnits(opts, len(sizes)*reps, func(u int) (repStat, error) {
		n, rep := sizes[u/reps], u%reps
		in, err := access.RandomInstance(access.InstanceConfig{
			N: n, Seed: rng.Derive(opts.Seed, n*31+rep),
			DemandMin: 1, DemandMax: 16, RootAtCenter: true,
		})
		if err != nil {
			return repStat{}, err
		}
		lb := access.LowerBound(in)
		mmp, err := access.MMPIncremental(in, rng.Derive(opts.Seed, rep))
		if err != nil {
			return repStat{}, err
		}
		sa, err := access.SampleAndAugment(in, rng.Derive(opts.Seed, rep+50), 0.25)
		if err != nil {
			return repStat{}, err
		}
		mst, err := access.SingleCableMST(in)
		if err != nil {
			return repStat{}, err
		}
		star, err := access.DirectStar(in)
		if err != nil {
			return repStat{}, err
		}
		return repStat{
			rMMP:  mmp.TotalCost() / lb,
			rSA:   sa.TotalCost() / lb,
			rMST:  mst.TotalCost() / lb,
			rStar: star.TotalCost() / lb,
			win:   mmp.TotalCost() < mst.TotalCost() && mmp.TotalCost() < star.TotalCost(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for si, n := range sizes {
		var rMMP, rSA, rMST, rStar float64
		wins := 0
		for _, rs := range repStats[si*reps : (si+1)*reps] {
			rMMP += rs.rMMP
			rSA += rs.rSA
			rMST += rs.rMST
			rStar += rs.rStar
			if rs.win {
				wins++
			}
		}
		rf := float64(reps)
		t.AddRow(d(n), f2(rMMP/rf), f2(rSA/rf), f2(rMST/rf), f2(rStar/rf),
			fmt.Sprintf("%d/%d", wins, reps))
	}
	// Ablation: sample-and-augment stage sampling probability.
	n := opts.scale(800)
	in, err := access.RandomInstance(access.InstanceConfig{
		N: n, Seed: opts.Seed, DemandMin: 1, DemandMax: 16, RootAtCenter: true,
	})
	if err != nil {
		return nil, err
	}
	lb := access.LowerBound(in)
	ps := []float64{0.1, 0.25, 0.5}
	notes, err := mapUnits(opts, len(ps), func(pi int) (string, error) {
		net, err := access.SampleAndAugment(in, opts.Seed, ps[pi])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf(
			"ablation sample-and-augment p=%.2f @ n=%d: cost/LB=%.2f", ps[pi], n, net.TotalCost()/lb), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, notes...)
	return t, nil
}
