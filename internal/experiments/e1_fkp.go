package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
)

// E1FKPSweep regenerates the paper's §3.1 claim (after Fabrikant et al.):
// sweeping the FKP tradeoff weight alpha moves the generated topology
// through star → power-law tree → exponential tree.
func E1FKPSweep(opts Options) (*Table, error) {
	n := opts.scale(3000)
	reps := opts.reps(5)
	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("FKP alpha sweep, n=%d, %d seeds per alpha", n, reps),
		Claim: "\"by changing the relative importance of these two factors ... the resulting topology can exhibit a range of hierarchical structures, from simple star-networks to trees\" and degree distributions \"either exponential or of the power-law type\" (§3.1)",
		Header: []string{
			"alpha", "regime(theory)", "class(majority)", "starFrac",
			"maxDeg", "plAlpha", "tailKind", "treeOK",
		},
	}
	type sweepPoint struct {
		alpha  float64
		regime string
	}
	points := []sweepPoint{
		{0.3, "star (alpha < sqrt(2))"},
		{core.RegimeAlpha(core.RegimeStar, n), "star (alpha < sqrt(2))"},
		{4, "power law (4 <= alpha <= o(sqrt n))"},
		{core.RegimeAlpha(core.RegimePowerLaw, n), "power law (4 <= alpha <= o(sqrt n))"},
		{math.Sqrt(float64(n)), "transition (~sqrt n)"},
		{core.RegimeAlpha(core.RegimeExponential, n), "exponential (alpha >> sqrt n)"},
		{4 * float64(n), "exponential (alpha >> sqrt n)"},
	}
	// One unit per (alpha point, replication), fanned across the worker
	// pool; reduction below walks the ordered slice, so the table is
	// identical for any Workers value.
	type repStat struct {
		isTree   bool
		class    core.TopologyClass
		starFrac float64
		maxDeg   float64
		plAlpha  float64
		tail     stats.TailKind
	}
	repStats, err := mapUnits(opts, len(points)*reps, func(u int) (repStat, error) {
		pt, rep := points[u/reps], u%reps
		g, err := core.FKP(core.FKPConfig{
			N: n, Alpha: pt.alpha, Seed: rng.Derive(opts.Seed, rep),
		})
		if err != nil {
			return repStat{}, err
		}
		ds := stats.AnalyzeDegrees(g)
		return repStat{
			isTree:   g.IsTree(),
			class:    core.Classify(g),
			starFrac: ds.TopDegreeFrac,
			maxDeg:   float64(ds.MaxDegree),
			plAlpha:  ds.Classification.PowerLaw.Alpha,
			tail:     ds.Classification.Kind,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, pt := range points {
		classCount := map[core.TopologyClass]int{}
		var starFrac, maxDeg, plAlpha float64
		tails := map[stats.TailKind]int{}
		allTrees := true
		for _, rs := range repStats[pi*reps : (pi+1)*reps] {
			if !rs.isTree {
				allTrees = false
			}
			classCount[rs.class]++
			starFrac += rs.starFrac
			maxDeg += rs.maxDeg
			plAlpha += rs.plAlpha
			tails[rs.tail]++
		}
		rf := float64(reps)
		t.AddRow(
			f2(pt.alpha), pt.regime,
			majorityClass(classCount).String(),
			f3(starFrac/rf), f2(maxDeg/rf), f2(plAlpha/rf),
			majorityTail(tails).String(),
			fmt.Sprintf("%v", allTrees),
		)
	}
	// Ablation: centrality definition at the power-law alpha.
	modes := []core.CentralityMode{core.HopsToRoot, core.DistToRoot}
	modeNotes, err := mapUnits(opts, len(modes), func(mi int) (string, error) {
		g, err := core.FKP(core.FKPConfig{
			N: n, Alpha: 8, Seed: opts.Seed, Centrality: modes[mi],
		})
		if err != nil {
			return "", err
		}
		ds := stats.AnalyzeDegrees(g)
		return fmt.Sprintf(
			"ablation centrality=%s @ alpha=8: class=%s maxDeg=%d tail=%s",
			modes[mi], core.Classify(g), ds.MaxDegree, ds.Classification.Kind), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, modeNotes...)
	// Ablation: router port cap (technology constraint, §2.1).
	g, err := core.FKP(core.FKPConfig{N: n, Alpha: 0.3, Seed: opts.Seed, MaxDegree: 32})
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"ablation maxDegree=32 @ alpha=0.3 (would-be star): class=%s maxDeg=%d — port limits forbid the star the pure optimization wants",
		core.Classify(g), g.MaxDegree()))
	return t, nil
}

func majorityClass(m map[core.TopologyClass]int) core.TopologyClass {
	best, bestN := core.ClassOther, -1
	for k, v := range m {
		if v > bestN || (v == bestN && k < best) {
			best, bestN = k, v
		}
	}
	return best
}

func majorityTail(m map[stats.TailKind]int) stats.TailKind {
	best, bestN := stats.TailUndetermined, -1
	for k, v := range m {
		if v > bestN || (v == bestN && k < best) {
			best, bestN = k, v
		}
	}
	return best
}
