package experiments

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/graph"
	"repro/internal/isp"
	"repro/internal/metrics"
	"repro/internal/traffic"
)

func standardGeography(opts Options, cities int) (*traffic.Geography, error) {
	return traffic.GenerateGeography(traffic.GeographyConfig{
		NumCities:     cities,
		Seed:          opts.Seed,
		ZipfExponent:  1.0,
		MinSeparation: 0.03,
	})
}

// E4CostVsProfit regenerates the §2.2 dichotomy: "a cost-based
// formulation ... minimizes cost subject to satisfying traffic demand"
// versus "a profit-based formulation [that] seeks to build a network that
// satisfies demand only up to the point of profitability — where marginal
// revenue meets marginal cost".
func E4CostVsProfit(opts Options) (*Table, error) {
	geo, err := standardGeography(opts, 25)
	if err != nil {
		return nil, err
	}
	customers := opts.scale(2000)
	t := &Table{
		ID:    "E4",
		Title: fmt.Sprintf("Cost vs profit formulation, %d offered customers, price sweep", customers),
		Claim: "a profit-based ISP stops building where marginal revenue meets marginal cost, serving fewer customers at low prices (§2.2)",
		Header: []string{
			"formulation", "price", "served", "servedFrac", "demandFrac",
			"accessCost", "revenue", "profit",
		},
	}
	base := isp.Config{
		Geography:             geo,
		NumPOPs:               8,
		Customers:             customers,
		Seed:                  opts.Seed,
		PerfWeight:            50,
		MaxExtraBackboneLinks: 3,
		DemandMin:             1,
		DemandMax:             8,
	}
	// Unit 0 is the cost-based build; the rest sweep the profit price.
	// Each unit builds an independent ISP, so the whole sweep fans out.
	prices := []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.3, 1.0}
	designs, err := mapUnits(opts, 1+len(prices), func(u int) (*isp.Design, error) {
		cfg := base
		if u > 0 {
			cfg.Formulation = isp.ProfitBased
			cfg.PricePerDemand = prices[u-1]
		}
		return isp.Build(cfg)
	})
	if err != nil {
		return nil, err
	}
	cost := designs[0]
	t.AddRow("cost-based", "-", d(cost.CustomersServed),
		f3(float64(cost.CustomersServed)/float64(cost.CustomersOffered)),
		f3(cost.DemandServed/cost.DemandOffered),
		f2(cost.AccessCost), "-", "-")
	for pi, price := range prices {
		des := designs[1+pi]
		t.AddRow("profit-based", f4(price), d(des.CustomersServed),
			f3(float64(des.CustomersServed)/float64(des.CustomersOffered)),
			f3(des.DemandServed/des.DemandOffered),
			f2(des.AccessCost), f2(des.Revenue), f2(des.Profit))
	}
	t.Notes = append(t.Notes,
		"served customers increase monotonically with price; at high prices the profit ISP converges to the cost-based buildout")
	return t, nil
}

// E5NationalISP regenerates the §2.2 hierarchy claim: a national ISP
// decomposes into backbone (WAN), distribution (MAN), and customers
// (LAN), with size/connectivity tracking the number and location of
// customers, concentrated in big cities.
func E5NationalISP(opts Options) (*Table, error) {
	geo, err := standardGeography(opts, 30)
	if err != nil {
		return nil, err
	}
	customers := opts.scale(3000)
	t := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("National ISP, 30 Zipf cities, %d customers", customers),
		Claim: "ISP topology decomposes into WAN/MAN/LAN hierarchy; \"the size, location and connectivity of the ISP will depend largely on the number and location of its customers\" (§2.2)",
		Header: []string{
			"placement", "POPs", "bbLinks", "nodes", "edges",
			"maxDeg", "hierDepth", "distortion", "popShare(top3)",
		},
	}
	for _, placement := range []isp.POPPlacement{isp.TopCities, isp.KMedian} {
		cfg := isp.Config{
			Geography:             geo,
			NumPOPs:               8,
			Customers:             customers,
			Seed:                  opts.Seed,
			Placement:             placement,
			BackboneCostPerLength: 4,
			PerfWeight:            400,
			MaxExtraBackboneLinks: 6,
			DemandMin:             1,
			DemandMax:             8,
			MaxPorts:              64,
		}
		des, err := isp.Build(cfg)
		if err != nil {
			return nil, err
		}
		g := des.Graph
		hd := metrics.HierarchyDepth(g, des.POPs[0])
		dist := metrics.Distortion(g, 2000, opts.Seed)
		// Fraction of customers attached (via access subtree) to the 3
		// biggest POP metros.
		share := topMetroShare(des, 3)
		name := "top-cities"
		if placement == isp.KMedian {
			name = "k-median"
		}
		t.AddRow(name, d(len(des.POPs)), d(len(des.BackboneEdges)),
			d(g.NumNodes()), d(g.NumEdges()), d(g.MaxDegree()),
			f3(hd), f3(dist), f3(share))

		// Provision the WAN for the routed inter-metro demand (footnote
		// 1: topology = connectivity + capacity).
		rep, err := isp.ProvisionBackbone(des, geo, access.DefaultCatalog(), 0)
		if err != nil {
			return nil, err
		}
		thick := 0
		for _, k := range rep.CablePerEdge {
			if k == len(access.DefaultCatalog())-1 {
				thick++
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s backbone provisioning: %d demands routed, %d/%d links on the thickest cable, max utilization %.2f, provision cost %.1f",
			name, rep.Demands, thick, len(des.BackboneEdges), rep.MaxUtilization, rep.ProvisionCost))
	}
	t.Notes = append(t.Notes,
		"popShare(top3): fraction of served customers homed to the 3 most populous POP metros — population concentration drives the topology",
		"distortion > 1 reflects the redundant backbone links on top of the access trees")
	return t, nil
}

// topMetroShare returns the fraction of customers reachable from the
// top-k POPs without traversing backbone edges.
func topMetroShare(des *isp.Design, k int) float64 {
	g := des.Graph
	backbone := map[int]bool{}
	for _, e := range des.BackboneEdges {
		backbone[e] = true
	}
	acc := graph.New(g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		acc.AddNode(*g.Node(i))
	}
	for i, e := range g.Edges() {
		if !backbone[i] {
			acc.AddEdge(e)
		}
	}
	total, top := 0, 0
	for pi, pop := range des.POPs {
		dist, _ := acc.BFS(pop)
		for v, dd := range dist {
			if dd > 0 && acc.Node(v).Kind == graph.KindCustomer {
				total++
				if pi < k {
					top++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}
