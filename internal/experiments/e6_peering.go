package experiments

import (
	"fmt"
	"sort"

	"repro/internal/peering"
	"repro/internal/stats"
)

// E6Peering regenerates the §2.3 programme: model the Internet as
// interconnected ISPs, with peering decided by an optimization over
// shared presence and traffic-exchange gain, and extract the AS graph.
func E6Peering(opts Options) (*Table, error) {
	geo, err := standardGeography(opts, 20)
	if err != nil {
		return nil, err
	}
	nISPs := 10
	custPerISP := opts.scale(300)
	inet, err := peering.Assemble(peering.Config{
		Geography:          geo,
		NumISPs:            nISPs,
		Seed:               opts.Seed,
		POPsPerISP:         6,
		CustomersPerISP:    custPerISP,
		PeeringSetupCost:   1e-7,
		MaxPeeringsPerPair: 2,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E6",
		Title: fmt.Sprintf("Internet assembly: %d ISPs, %d customers each", nISPs, custPerISP),
		Claim: "\"the Internet as a whole is simply a conglomeration of interconnected ISPs\"; peering happens disproportionately in big cities; AS-level connectivity has no per-node technology cap while router links do (§2.1, §2.3)",
		Header: []string{
			"metric", "value",
		},
	}
	t.AddRow("router-level nodes", d(inet.Router.NumNodes()))
	t.AddRow("router-level edges", d(inet.Router.NumEdges()))
	t.AddRow("peering interconnects", d(len(inet.Peerings)))
	t.AddRow("AS nodes", d(inet.AS.NumNodes()))
	t.AddRow("AS edges", d(inet.AS.NumEdges()))
	asDeg := stats.AnalyzeDegrees(inet.AS)
	rtDeg := stats.AnalyzeDegrees(inet.Router)
	t.AddRow("AS max degree / (n-1)", f3(asDeg.TopDegreeFrac))
	t.AddRow("router max degree / (n-1)", f4(rtDeg.TopDegreeFrac))
	t.AddRow("AS mean degree", f2(asDeg.MeanDegree))
	t.AddRow("router mean degree", f2(rtDeg.MeanDegree))

	// Peerings by city population rank.
	counts := map[int]int{}
	for _, p := range inet.Peerings {
		counts[p.CityA]++
	}
	type cityCount struct {
		city, n int
	}
	var cc []cityCount
	for c, n := range counts {
		cc = append(cc, cityCount{c, n})
	}
	sort.Slice(cc, func(a, b int) bool {
		if cc[a].n != cc[b].n {
			return cc[a].n > cc[b].n
		}
		return cc[a].city < cc[b].city
	})
	topShare := 0
	for _, x := range cc {
		if x.city < 5 { // 5 most populous cities
			topShare += x.n
		}
	}
	if len(inet.Peerings) > 0 {
		t.AddRow("peerings in top-5 cities", fmt.Sprintf("%d/%d", topShare, len(inet.Peerings)))
	}
	// Second part: a larger, backbone-only internet with Zipf-skewed ISP
	// sizes plus transit relationships — the §2.3 business structure that
	// makes the AS graph hub-dominated (the Faloutsos-style observation
	// of §3.2 emerging from economics).
	big, err := peering.Assemble(peering.Config{
		Geography:        geo,
		NumISPs:          24,
		Seed:             opts.Seed,
		POPsPerISP:       12,
		CustomersPerISP:  0,
		PeeringSetupCost: 1e-6,
		SizeSkew:         1.0,
	})
	if err != nil {
		return nil, err
	}
	tr, err := peering.AssignTransit(big, peering.TransitConfig{ProvidersPerCustomer: 2})
	if err != nil {
		return nil, err
	}
	tierCount := map[int]int{}
	for _, tier := range tr.Tier {
		tierCount[tier]++
	}
	t.AddRow("-- with transit (24 skewed ISPs) --", "")
	t.AddRow("transit links", d(len(tr.Links)))
	t.AddRow("tier-1 / tier-2 / deeper", fmt.Sprintf("%d / %d / %d",
		tierCount[1], tierCount[2], len(tr.Tier)-tierCount[1]-tierCount[2]))
	asDeg2 := stats.AnalyzeDegrees(tr.ASAll)
	t.AddRow("AS max degree / (n-1)", f3(asDeg2.TopDegreeFrac))
	t.AddRow("AS mean degree", f2(asDeg2.MeanDegree))
	t.AddRow("AS max/mean degree ratio", f2(float64(asDeg2.MaxDegree)/asDeg2.MeanDegree))
	vf, err := peering.ValleyFree(tr)
	if err != nil {
		return nil, err
	}
	t.AddRow("valley-free reachability", f3(vf.ReachableFrac))
	t.AddRow("avg valley-free AS path", f2(vf.AvgHops))

	t.Notes = append(t.Notes,
		"AS degrees are a business-relationship count (unbounded per node); router degrees remain small — the paper's §2.1 asymmetry",
		"peering concentrates in populous cities because that is where footprints overlap and traffic gain beats setup cost",
		"with size-skewed ISPs and transit economics the AS graph becomes hub-dominated without any preferential attachment")
	return t, nil
}
