package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyOpts runs experiments at reduced scale so the integration suite
// stays fast while exercising every code path end to end.
func tinyOpts() Options {
	return Options{Seed: 42, Scale: 0.1, Reps: 2}
}

func TestAllRunnersProduceTables(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tbl, err := r.Run(tinyOpts())
			if err != nil {
				t.Fatalf("%s failed: %v", r.ID, err)
			}
			if tbl.ID != r.ID {
				t.Fatalf("table ID %q != runner ID %q", tbl.ID, r.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", r.ID)
			}
			if tbl.Claim == "" {
				t.Fatalf("%s has no paper claim recorded", r.ID)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("%s row %d has %d cells, header has %d",
						r.ID, i, len(row), len(tbl.Header))
				}
			}
			out := tbl.Format()
			if !strings.Contains(out, r.ID) || !strings.Contains(out, "Claim:") {
				t.Fatalf("%s Format() missing sections:\n%s", r.ID, out)
			}
		})
	}
}

func TestAllRunnersHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if seen[r.ID] {
			t.Fatalf("duplicate runner ID %s", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != 11 {
		t.Fatalf("expected 11 experiments, found %d", len(seen))
	}
}

func TestE1StarRegimeAtTinyAlpha(t *testing.T) {
	tbl, err := E1FKPSweep(Options{Seed: 1, Scale: 0.2, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	// First row is alpha=0.3: must classify as star.
	if !strings.Contains(tbl.Rows[0][2], "star") {
		t.Fatalf("E1 alpha=0.3 row not a star: %v", tbl.Rows[0])
	}
	// Last row (alpha = 4n): trees everywhere.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[7] != "true" {
		t.Fatalf("E1 large-alpha row not all trees: %v", last)
	}
}

func TestE2TreesAlways(t *testing.T) {
	tbl, err := E2BuyAtBulk(Options{Seed: 2, Scale: 0.25, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1] != "3/3" {
			t.Fatalf("E2 algorithm %s produced non-trees: %v", row[0], row)
		}
	}
}

func TestE3MMPWinsAtScale(t *testing.T) {
	tbl, err := E3CostRatios(Options{Seed: 3, Scale: 0.3, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	// On the largest instance size row, MMP should beat both baselines in
	// every seed.
	last := tbl.Rows[len(tbl.Rows)-1]
	if !strings.HasPrefix(last[5], "2/2") {
		t.Fatalf("E3 MMP did not dominate baselines at scale: %v", last)
	}
}

func TestE4ProfitMonotone(t *testing.T) {
	tbl, err := E4CostVsProfit(Options{Seed: 4, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Rows 1.. are profit-based with increasing price; served counts must
	// be non-decreasing.
	prev := -1
	for _, row := range tbl.Rows[1:] {
		served, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad served cell %q", row[2])
		}
		if served < prev {
			t.Fatalf("E4 served not monotone in price: %v", tbl.Rows)
		}
		prev = served
	}
}

func TestE9BreaksTrees(t *testing.T) {
	tbl, err := E9Redundancy(Options{Seed: 5, Scale: 0.2, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	before, after := tbl.Rows[0], tbl.Rows[1]
	if before[1] != "2/2" {
		t.Fatalf("E9 pre-stage not all trees: %v", before)
	}
	if after[2] != "2/2" {
		t.Fatalf("E9 post-stage not all 2-edge-connected: %v", after)
	}
}
