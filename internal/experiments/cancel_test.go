package experiments

import (
	"context"
	"errors"
	"testing"

	"repro/internal/errs"
)

// TestOptionsContextCancellation asserts every experiment that fans
// replications out through mapUnits aborts with an ErrCanceled-wrapping
// error when Options.Context is already done.
func TestOptionsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			_, err := r.Run(Options{Seed: 1, Scale: 0.1, Reps: 2, Context: ctx})
			if err == nil {
				// Experiments whose work happens outside mapUnits may
				// still finish; that is acceptable as long as those that
				// do fail classify correctly.
				t.Skipf("%s completed before observing cancellation", r.ID)
			}
			if !errors.Is(err, errs.ErrCanceled) {
				t.Fatalf("%s gave %v, want ErrCanceled", r.ID, err)
			}
		})
	}
}
