package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// E7GeneratorComparison regenerates the paper's §1 critique of
// descriptive modeling: "any particular choice tends to yield a generated
// topology that matches observations on the chosen metrics but looks very
// dissimilar on others." We generate a HOT topology, then degree-based
// and structural baselines matched on node/edge count, and compare the
// [30]-style metric suite.
func E7GeneratorComparison(opts Options) (*Table, error) {
	n := opts.scale(1000)
	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("HOT vs descriptive generators, n=%d (edges matched where possible)", n),
		Claim: "matching the degree distribution does not match structure: degree-based generators diverge from the optimization-driven topology on expansion, resilience, distortion, and hierarchy (§1, ref [30])",
		Header: []string{
			"generator", "edges", "maxDeg", "tail", "clustering",
			"expansion@3", "resilience", "distortion", "hierDepth", "specGap",
		},
	}
	// HOT reference: FKP in the power-law regime, 2 links per arrival so
	// edge counts are comparable with m=2 degree-based models.
	hot, _, err := core.GrowHOT(core.HOTConfig{
		N:               n,
		Seed:            opts.Seed,
		Terms:           []core.ObjectiveTerm{core.DistanceTerm{Weight: 8}, core.CentralityTerm{Weight: 1}},
		LinksPerArrival: 2,
	})
	if err != nil {
		return nil, err
	}
	m := hot.NumEdges()

	type entry struct {
		name string
		g    *graph.Graph
	}
	entries := []entry{{"hot(fkp,m=2)", hot}}

	if ba, err := gen.BarabasiAlbert(n, 2, opts.Seed); err == nil {
		entries = append(entries, entry{"ba(m=2)", ba})
	} else {
		return nil, err
	}
	if glp, err := gen.GLP(n, 2, 0.3, 0.6, opts.Seed); err == nil {
		entries = append(entries, entry{"glp", glp})
	} else {
		return nil, err
	}
	if er, err := gen.ErdosRenyiGNM(n, m, opts.Seed); err == nil {
		entries = append(entries, entry{"er(gnm)", er})
	} else {
		return nil, err
	}
	if wax, err := gen.Waxman(n, 0.04, 0.35, opts.Seed); err == nil {
		entries = append(entries, entry{"waxman", wax})
	} else {
		return nil, err
	}
	// The sharpest descriptive generator: the HOT topology's own degree
	// sequence re-wired at random (configuration model).
	if cm, _, err := gen.ConfigurationModel(hot.Degrees(), opts.Seed); err == nil {
		entries = append(entries, entry{"config(hot degs)", cm})
	} else {
		return nil, err
	}
	ts, err := gen.TransitStub(gen.TransitStubConfig{
		TransitDomains:  4,
		TransitSize:     4,
		StubsPerTransit: 3,
		StubSize:        max(1, (n-16)/48),
		EdgeProb:        0.3,
		Seed:            opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"transit-stub", ts})

	// Profile every generator concurrently; each profile itself fans its
	// metric families out on the shared frozen snapshot of its graph.
	type profiled struct {
		prof  metrics.Profile
		tail  string
		clust float64
	}
	profs, err := mapUnits(opts, len(entries), func(i int) (profiled, error) {
		g := entries[i].g
		return profiled{
			prof:  metrics.ComputeProfileParallel(g, opts.Seed, opts.Workers),
			tail:  stats.ClassifyTail(g.Degrees()).Kind.String(),
			clust: stats.ClusteringCoefficient(g),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, e := range entries {
		prof := profs[i].prof
		t.AddRow(e.name, d(prof.Edges), d(prof.MaxDegree), profs[i].tail,
			f3(profs[i].clust),
			f3(prof.ExpansionAt3), f3(prof.Resilience),
			f2(prof.Distortion), f2(prof.HierarchyDepth), f3(prof.SpectralGap))
	}
	t.Notes = append(t.Notes,
		"BA matches the HOT degree tail (both heavy) yet differs sharply on expansion/distortion/hierarchy — the paper's core argument against purely descriptive generators",
		"transit-stub imposes hierarchy explicitly but misses the degree tail — the opposite mismatch")
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
