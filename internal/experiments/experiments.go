// Package experiments contains one runner per experiment E1–E9 from
// DESIGN.md. Each runner regenerates one quantitative claim of the paper
// and returns a formatted table; cmd/experiments prints them and
// EXPERIMENTS.md records representative output.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/errs"
	"repro/internal/par"
)

// Options tune experiment scale. Scale 1.0 is the published size; tests
// use smaller scales for speed.
type Options struct {
	Seed  int64
	Scale float64 // 0 < Scale <= 1; 0 defaults to 1
	Reps  int     // Monte Carlo replications; 0 defaults per experiment
	// Workers bounds the goroutines used to fan replications and
	// independent table rows out (<= 0 means GOMAXPROCS). Every
	// experiment reduces per-rep results in a fixed order, so tables are
	// byte-identical for any Workers value.
	Workers int
	// Context, when non-nil, cancels a run between replications: every
	// unit fanned out through mapUnits checks it before starting and the
	// run returns an errs.ErrCanceled-wrapping error once it is done.
	Context context.Context
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) scale(n int) int {
	s := o.Scale
	if s <= 0 || s > 1 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < 10 {
		v = 10
	}
	return v
}

func (o Options) reps(def int) int {
	if o.Reps > 0 {
		return o.Reps
	}
	return def
}

// mapUnits runs fn for every unit index in [0, n) across the option's
// worker pool and returns the results in index order. Each unit must be
// independent and seeded only from its own index; the caller reduces the
// ordered slice sequentially, which keeps every table byte-identical for
// any Workers setting. On failure the lowest-index error is returned.
func mapUnits[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	ctx := o.ctx()
	out := make([]T, n)
	err := par.ForEachErr(o.Workers, n, func(i int) error {
		if err := errs.Ctx(ctx); err != nil {
			return fmt.Errorf("experiments: unit %d: %w", i, err)
		}
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim being regenerated
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "Claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is one experiment entry point.
type Runner struct {
	ID   string
	Name string
	Run  func(Options) (*Table, error)
}

// All returns every experiment in order.
func All() []Runner {
	return []Runner{
		{"E1", "FKP alpha sweep (paper §3.1)", E1FKPSweep},
		{"E2", "Buy-at-bulk access design output shape (paper §4.2)", E2BuyAtBulk},
		{"E3", "Economies of scale / cost ratios (paper §4.1)", E3CostRatios},
		{"E4", "Cost-based vs profit-based formulation (paper §2.2)", E4CostVsProfit},
		{"E5", "National ISP hierarchy (paper §2.2)", E5NationalISP},
		{"E6", "Peering and the AS graph (paper §2.3)", E6Peering},
		{"E7", "Descriptive vs explanatory generators (paper §1)", E7GeneratorComparison},
		{"E8", "Robust yet fragile (paper §3.1)", E8Robustness},
		{"E9", "Path redundancy breaks trees (paper §4, footnote 7)", E9Redundancy},
		{"E10", "Level-2 technology ablation (paper §2.4)", E10Level2Rings},
		{"E11", "Designed vs blind performance (paper §3.1)", E11Performance},
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
