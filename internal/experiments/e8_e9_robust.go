package experiments

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/attackreg"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/robust"
)

// E8Robustness regenerates the HOT "robust yet fragile" signature (§3.1):
// optimization-designed topologies tolerate random failures like (or
// better than) comparably dense random graphs, but targeted attacks on
// their rare, high-degree hubs cause disproportionate damage.
func E8Robustness(opts Options) (*Table, error) {
	n := opts.scale(800)
	trials := opts.reps(10)
	fracs := []float64{0.01, 0.05, 0.1, 0.2}
	t := &Table{
		ID:    "E8",
		Title: fmt.Sprintf("Failure vs attack sweeps (attack registry: %v), n=%d, removal fractions %v", attackreg.Names(), n, fracs),
		Claim: "HOT systems show \"apparently simple and robust external behavior, with the risk of ... potentially catastrophic cascading failures initiated by possibly quite small perturbations\" (§3.1)",
		Header: []string{
			"topology", "LCC@5%fail", "LCC@5%attack", "LCC@5%geo", "attackGap", "criticalFrac(attack)",
		},
	}
	type entry struct {
		name string
		g    *graph.Graph
	}
	var entries []entry
	fkp, err := core.FKP(core.FKPConfig{N: n, Alpha: 8, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"hot-fkp(alpha=8)", fkp})
	in, err := access.RandomInstance(access.InstanceConfig{
		N: n - 1, Seed: opts.Seed, DemandMin: 1, DemandMax: 8, RootAtCenter: true,
	})
	if err != nil {
		return nil, err
	}
	bab, err := access.MMPIncremental(in, opts.Seed)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"buy-at-bulk(mmp)", bab.Graph})
	ba, err := gen.BarabasiAlbert(n, 1, opts.Seed) // tree like the HOT outputs
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"ba(m=1,tree)", ba})
	er, err := gen.ErdosRenyiGNM(n, fkp.NumEdges(), opts.Seed)
	if err != nil {
		return nil, err
	}
	entries = append(entries, entry{"er(same density)", er})

	// Sweep the four topologies concurrently through the attack
	// registry, one frozen snapshot per topology shared by every named
	// attack; each sweep additionally parallelizes its randomized trials
	// internally (and the LCC curves ride the incremental union-find
	// path).
	ctx := opts.ctx()
	type sweeps struct {
		fail, atk, geo, gap, crit float64
	}
	rows, err := mapUnits(opts, len(entries), func(i int) (sweeps, error) {
		g := entries[i].g
		c := g.Freeze()
		at5 := func(attack string, p attackreg.Params, tr int) (float64, error) {
			curves, err := robust.RunSweepContext(ctx, g, c, robust.SweepSpec{
				Attack: attack, Params: p, Fracs: []float64{0.05}, Trials: tr, Workers: opts.Workers,
			}, opts.Seed)
			if err != nil {
				return 0, err
			}
			return curves[0].Values[0], nil
		}
		fail, err := at5("random-failure", nil, trials)
		if err != nil {
			return sweeps{}, err
		}
		atk, err := at5("degree", nil, 1)
		if err != nil {
			return sweeps{}, err
		}
		geo, err := at5("geographic", attackreg.Params{"x": 0.5, "y": 0.5}, 1)
		if err != nil {
			return sweeps{}, err
		}
		gap, err := robust.AttackGapContext(ctx, g, c, "degree", nil, fracs, trials, opts.Seed, opts.Workers)
		if err != nil {
			return sweeps{}, err
		}
		crit, err := robust.CriticalFraction(g, robust.DegreeAttack, 0.1, 25, 1, opts.Seed)
		if err != nil {
			return sweeps{}, err
		}
		return sweeps{fail: fail, atk: atk, geo: geo, gap: gap, crit: crit}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, e := range entries {
		t.AddRow(e.name, f3(rows[i].fail), f3(rows[i].atk), f3(rows[i].geo), f3(rows[i].gap), f3(rows[i].crit))
	}
	t.Notes = append(t.Notes,
		"attackGap: mean over fractions of LCC(random failure) - LCC(degree attack); larger = more hub-fragile",
		"LCC@5%geo: localized (geographic) failure at the map center — between random failure and hub targeting",
		"trees fragment under any removal; the HOT signature is the spread between the failure and attack columns")
	return t, nil
}

// E9Redundancy regenerates footnote 7 of §4: "adding a path redundancy
// requirement breaks the tree structure of the optimal solution."
func E9Redundancy(opts Options) (*Table, error) {
	n := opts.scale(800)
	reps := opts.reps(5)
	t := &Table{
		ID:    "E9",
		Title: fmt.Sprintf("2-edge-connectivity augmentation of buy-at-bulk trees, %d customers, %d seeds", n, reps),
		Claim: "\"adding a path redundancy requirement breaks the tree structure of the optimal solution\" (§4, footnote 7)",
		Header: []string{
			"stage", "tree", "2edge-conn", "edges(avg)", "leaves(avg)", "cost(avg)", "extraCost%",
		},
	}
	// One unit per replication; reduced in rep order below.
	type repStat struct {
		preTree                         bool
		preEdges, preLeaves, preCost    float64
		post2EC                         bool
		postEdges, postLeaves, postCost float64
	}
	repStats, err := mapUnits(opts, reps, func(rep int) (repStat, error) {
		in, err := access.RandomInstance(access.InstanceConfig{
			N: n, Seed: rng.Derive(opts.Seed, rep),
			DemandMin: 1, DemandMax: 8, RootAtCenter: true,
		})
		if err != nil {
			return repStat{}, err
		}
		net, err := access.MMPIncremental(in, rng.Derive(opts.Seed, 100+rep))
		if err != nil {
			return repStat{}, err
		}
		rs := repStat{
			preTree:   net.Graph.IsTree(),
			preEdges:  float64(net.Graph.NumEdges()),
			preLeaves: float64(len(net.Graph.Leaves())),
			preCost:   net.TotalCost(),
		}
		access.AugmentTwoEdgeConnected(in, net)
		rs.post2EC = net.Graph.IsTwoEdgeConnected()
		rs.postEdges = float64(net.Graph.NumEdges())
		rs.postLeaves = float64(len(net.Graph.Leaves()))
		rs.postCost = net.TotalCost()
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	var preEdges, preLeaves, preCost float64
	var postEdges, postLeaves, postCost float64
	preTrees, post2EC := 0, 0
	for _, rs := range repStats {
		if rs.preTree {
			preTrees++
		}
		preEdges += rs.preEdges
		preLeaves += rs.preLeaves
		preCost += rs.preCost
		if rs.post2EC {
			post2EC++
		}
		postEdges += rs.postEdges
		postLeaves += rs.postLeaves
		postCost += rs.postCost
	}
	rf := float64(reps)
	t.AddRow("tree (before)",
		fmt.Sprintf("%d/%d", preTrees, reps), "0/"+d(reps),
		f2(preEdges/rf), f2(preLeaves/rf), f2(preCost/rf), "-")
	t.AddRow("redundant (after)",
		"0/"+d(reps), fmt.Sprintf("%d/%d", post2EC, reps),
		f2(postEdges/rf), f2(postLeaves/rf), f2(postCost/rf),
		f2(100*(postCost-preCost)/preCost))
	t.Notes = append(t.Notes,
		"after augmentation no degree-1 nodes remain and the minimum cut is 2 — the optimal-design tree shape is gone, at a quantified extra cost")
	return t, nil
}
