package experiments

import (
	"strconv"
	"testing"
)

func TestE10RingBreaksTreeAndSurvives(t *testing.T) {
	tbl, err := E10Level2Rings(Options{Seed: 6, Scale: 0.2, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	tree, ring := tbl.Rows[0], tbl.Rows[1]
	if tree[1] != "2/2" {
		t.Fatalf("tree row not all trees: %v", tree)
	}
	if ring[2] != "2/2" {
		t.Fatalf("ring row not all 2-edge-connected: %v", ring)
	}
	// Ring premium must be positive.
	prem, err := strconv.ParseFloat(ring[4], 64)
	if err != nil {
		t.Fatalf("bad premium cell %q", ring[4])
	}
	if prem <= 0 {
		t.Fatalf("ring premium %v should be positive", prem)
	}
	// Ring survives random failure better than the tree.
	treeLCC, _ := strconv.ParseFloat(tree[6], 64)
	ringLCC, _ := strconv.ParseFloat(ring[6], 64)
	if ringLCC <= treeLCC {
		t.Fatalf("ring LCC %v should beat tree %v under failures", ringLCC, treeLCC)
	}
}

func TestE11PlacementCapturesDemand(t *testing.T) {
	tbl, err := E11Performance(Options{Seed: 7, Scale: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("E11 rows = %d, want 4", len(tbl.Rows))
	}
	// Row 0/1: top-cities; row 2/3: random. Captured demand must be
	// higher for top-cities.
	top, err := strconv.ParseFloat(tbl.Rows[0][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := strconv.ParseFloat(tbl.Rows[2][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if top <= rnd {
		t.Fatalf("top-cities captured %v, random %v — placement should matter", top, rnd)
	}
	// Perf backbone should not route longer than cost tree on the same
	// placement.
	perfPath, _ := strconv.ParseFloat(tbl.Rows[0][6], 64)
	treePath, _ := strconv.ParseFloat(tbl.Rows[1][6], 64)
	if perfPath > treePath+1e-9 {
		t.Fatalf("perf backbone path %v longer than cost tree %v", perfPath, treePath)
	}
}

func TestE6TransitSection(t *testing.T) {
	tbl, err := E6Peering(Options{Seed: 8, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	foundTransit := false
	for _, row := range tbl.Rows {
		if row[0] == "transit links" {
			foundTransit = true
			n, err := strconv.Atoi(row[1])
			if err != nil || n <= 0 {
				t.Fatalf("transit links cell %q", row[1])
			}
		}
	}
	if !foundTransit {
		t.Fatal("E6 missing the transit section")
	}
}
