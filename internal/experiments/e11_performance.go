package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/access"
	"repro/internal/isp"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/trafficreg"
)

// E11Performance regenerates the §3.1 characterization "the
// characteristics of HOT systems are high performance": on one fixed
// geography and demand, an ISP designed by the optimization framework
// (population-driven POP placement, cost/performance backbone) captures
// more of the national traffic demand and delivers it at shorter routed
// paths than the same resources deployed blindly.
func E11Performance(opts Options) (*Table, error) {
	geo, err := standardGeography(opts, 25)
	if err != nil {
		return nil, err
	}
	customers := opts.scale(1500)
	t := &Table{
		ID:    "E11",
		Title: fmt.Sprintf("Placement/backbone policy sweep on one geography, %d customers", customers),
		Claim: "\"the characteristics of HOT systems are high performance, highly structured internal complexity, apparently simple and robust external behavior\" (§3.1)",
		Header: []string{
			"placement", "backbone", "bbLinks", "demandCaptured",
			"throughput", "delivFrac", "avgPath", "jain",
		},
	}
	// The national demand matrix comes from the traffic registry's
	// canonical gravity model (numerically identical to the former
	// hardcoded GravityConfig{Scale: 1, Exponent: 1}).
	dm, err := trafficreg.GenerateDemand(context.Background(), geo, trafficreg.Selection{}, opts.Seed)
	if err != nil {
		return nil, err
	}
	totalDemand := dm.Total()

	type policy struct {
		placeName string
		random    bool
		bbName    string
		perf      bool
	}
	policies := []policy{
		{"top-cities", false, "perf-mesh", true},
		{"top-cities", false, "cost-tree", false},
		{"random", true, "perf-mesh", true},
		{"random", true, "cost-tree", false},
	}
	// Each policy designs, provisions, and routes an independent ISP, so
	// the whole sweep fans out across the worker pool; rows are emitted
	// in policy order.
	rows, err := mapUnits(opts, len(policies), func(pi int) ([]string, error) {
		p := policies[pi]
		subGeo, cityOf := placementGeography(geo, 8, p.random, opts.Seed)
		cfg := isp.Config{
			Geography:             subGeo,
			NumPOPs:               8,
			Customers:             customers,
			Seed:                  opts.Seed,
			BackboneCostPerLength: 4,
			DemandMin:             1,
			DemandMax:             8,
		}
		if p.perf {
			cfg.PerfWeight = 400
			cfg.MaxExtraBackboneLinks = 6
		}
		des, err := isp.Build(cfg)
		if err != nil {
			return nil, err
		}
		// Remap POP cities to the full geography so all policies are
		// scored against the same national demand matrix.
		remapPOPCities(des, subGeo, cityOf)

		captured := 0.0
		var demands []routing.Demand
		for i := 0; i < len(des.POPs); i++ {
			for j := i + 1; j < len(des.POPs); j++ {
				v := dm[des.POPCity[i]][des.POPCity[j]]
				if v > 0 {
					captured += v
					demands = append(demands, routing.Demand{
						Src: des.POPs[i], Dst: des.POPs[j], Volume: v,
					})
				}
			}
		}
		if _, err := isp.ProvisionBackbone(des, geo, access.DefaultCatalog(), 0); err != nil {
			return nil, err
		}
		mm, err := routing.MaxMinFair(des.Graph, demands)
		if err != nil {
			return nil, err
		}
		sp, err := routing.RouteShortestPaths(des.Graph, demands)
		if err != nil {
			return nil, err
		}
		delivFrac := 0.0
		if captured > 0 {
			delivFrac = mm.Throughput / captured
		}
		return []string{p.placeName, p.bbName, d(len(des.BackboneEdges)),
			f3(captured / totalDemand), f3(mm.Throughput), f3(delivFrac),
			f3(sp.AvgPathWeight), f3(mm.JainIndex)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"demandCaptured: fraction of the national gravity demand whose endpoints both have a POP — population-driven placement captures the big-city traffic",
		"delivFrac: max-min fair throughput over captured demand after backbone provisioning; avgPath: demand-weighted routed path length",
		"performance is the by-product of optimizing placement and backbone against the true demand — the paper's central thesis")
	return t, nil
}

// placementGeography returns a sub-geography of k cities (top-k by
// population, or k uniform-random cities) plus the mapping from
// sub-geography city index to original city index.
func placementGeography(geo *traffic.Geography, k int, random bool, seed int64) (*traffic.Geography, []int) {
	n := len(geo.Cities)
	if k > n {
		k = n
	}
	idx := make([]int, 0, k)
	if random {
		perm := rng.Shuffle(rng.New(rng.Derive(seed, 555)), n)
		idx = append(idx, perm[:k]...)
		sort.Ints(idx)
	} else {
		for i := 0; i < k; i++ {
			idx = append(idx, i) // cities are sorted by population
		}
	}
	sub := &traffic.Geography{Region: geo.Region}
	for _, ci := range idx {
		sub.Cities = append(sub.Cities, geo.Cities[ci])
	}
	// isp.Build expects population-sorted cities; the sub-geography
	// preserves sortedness because idx is ascending and geo is sorted.
	cityOf := make([]int, len(sub.Cities))
	// After sub construction cities keep geo's order, so position p in
	// sub corresponds to idx[p].
	copy(cityOf, idx)
	return sub, cityOf
}

// remapPOPCities rewrites des.POPCity from sub-geography indices to the
// original geography's indices, matching POPs by location.
func remapPOPCities(des *isp.Design, sub *traffic.Geography, cityOf []int) {
	for i, pid := range des.POPs {
		nd := des.Graph.Node(pid)
		best, bestD := 0, math.Inf(1)
		for si, c := range sub.Cities {
			dx, dy := c.Loc.X-nd.X, c.Loc.Y-nd.Y
			if d := dx*dx + dy*dy; d < bestD {
				best, bestD = si, d
			}
		}
		des.POPCity[i] = cityOf[best]
	}
}
