package experiments

import "testing"

// TestWorkersDeterminism asserts the tentpole contract of the parallel
// harness: every experiment's formatted table is byte-identical whether
// replications run on one goroutine or eight. Run under -race this also
// exercises every parallel fan-out path for data races.
func TestWorkersDeterminism(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			seq := Options{Seed: 42, Scale: 0.1, Reps: 2, Workers: 1}
			parl := seq
			parl.Workers = 8
			tblSeq, err := r.Run(seq)
			if err != nil {
				t.Fatalf("%s Workers=1 failed: %v", r.ID, err)
			}
			tblPar, err := r.Run(parl)
			if err != nil {
				t.Fatalf("%s Workers=8 failed: %v", r.ID, err)
			}
			a, b := tblSeq.Format(), tblPar.Format()
			if a != b {
				t.Fatalf("%s output differs between Workers=1 and Workers=8:\n--- Workers=1 ---\n%s\n--- Workers=8 ---\n%s", r.ID, a, b)
			}
		})
	}
}
