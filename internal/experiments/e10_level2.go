package experiments

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/rng"
	"repro/internal/robust"
)

// E10Level2Rings regenerates the §2.4 question — "how important the
// careful incorporation of Level-2 technologies and economics is" — by
// solving the same access instances under point-to-point cables (MMP
// tree) and under a SONET-style ring technology, and quantifying what
// the Level-2 constraint does to cost, topology shape, and
// survivability. IP-level measurements see only the ring's cycle edges;
// the tree the pure cost optimization would have built never exists.
func E10Level2Rings(opts Options) (*Table, error) {
	n := opts.scale(800)
	reps := opts.reps(5)
	ringSize := 8
	t := &Table{
		ID:    "E10",
		Title: fmt.Sprintf("Level-2 technology ablation: tree vs SONET rings (size %d), %d customers, %d seeds", ringSize, n, reps),
		Claim: "Level-2 technologies (Sonet, ATM, WDM) \"may seriously constrain the interconnectivity of ISP topologies\" (§2.1), and their careful incorporation matters (§2.4)",
		Header: []string{
			"design", "tree", "2edge-conn", "cost(avg)", "premium%",
			"maxDeg(avg)", "LCC@10%fail",
		},
	}
	// One unit per replication; reduced in rep order below.
	type repStat struct {
		treeCost, ringCost float64
		treeDeg, ringDeg   float64
		treeLCC, ringLCC   float64
		treeIsTree         bool
		ring2EC            bool
	}
	repStats, err := mapUnits(opts, reps, func(rep int) (repStat, error) {
		in, err := access.RandomInstance(access.InstanceConfig{
			N: n, Seed: rng.Derive(opts.Seed, rep),
			DemandMin: 1, DemandMax: 8, RootAtCenter: true,
		})
		if err != nil {
			return repStat{}, err
		}
		rep2, err := access.CompareRingVsTree(in, rng.Derive(opts.Seed, 100+rep), ringSize)
		if err != nil {
			return repStat{}, err
		}
		rs := repStat{
			treeCost:   rep2.TreeCost,
			ringCost:   rep2.RingCost,
			treeDeg:    float64(rep2.TreeMaxDegree),
			ringDeg:    float64(rep2.RingMaxDegree),
			treeIsTree: rep2.TreeIsTree,
			ring2EC:    rep2.Ring2EdgeConn,
		}
		// Survivability under 10% random failure.
		tree, err := access.MMPIncremental(in, rng.Derive(opts.Seed, 100+rep))
		if err != nil {
			return repStat{}, err
		}
		ring, err := access.RingMetro(in, ringSize)
		if err != nil {
			return repStat{}, err
		}
		tc, err := robust.Sweep(tree.Graph, robust.RandomFailure, []float64{0.1}, 3, opts.Seed)
		if err != nil {
			return repStat{}, err
		}
		rc, err := robust.Sweep(ring.Graph, robust.RandomFailure, []float64{0.1}, 3, opts.Seed)
		if err != nil {
			return repStat{}, err
		}
		rs.treeLCC = tc[0].LCCFrac
		rs.ringLCC = rc[0].LCCFrac
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	var treeCost, ringCost, treeDeg, ringDeg, treeLCC, ringLCC float64
	treeIsTree, ring2EC := 0, 0
	for _, rs := range repStats {
		treeCost += rs.treeCost
		ringCost += rs.ringCost
		treeDeg += rs.treeDeg
		ringDeg += rs.ringDeg
		treeLCC += rs.treeLCC
		ringLCC += rs.ringLCC
		if rs.treeIsTree {
			treeIsTree++
		}
		if rs.ring2EC {
			ring2EC++
		}
	}
	rf := float64(reps)
	t.AddRow("p2p cables (mmp tree)",
		fmt.Sprintf("%d/%d", treeIsTree, reps), "0/"+d(reps),
		f2(treeCost/rf), "-", f2(treeDeg/rf), f3(treeLCC/rf))
	t.AddRow(fmt.Sprintf("sonet rings (<=%d)", ringSize),
		"0/"+d(reps), fmt.Sprintf("%d/%d", ring2EC, reps),
		f2(ringCost/rf), f2(100*(ringCost-treeCost)/treeCost),
		f2(ringDeg/rf), f3(ringLCC/rf))
	t.Notes = append(t.Notes,
		"the ring technology forbids the cost-optimal tree: protection capacity raises cost, but the surviving-component curve under failures improves",
		"router-level (IP) measurements of the ring network would never reveal the tree the unconstrained optimization wanted — the §2.4 caveat")
	return t, nil
}
