package isp

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/traffic"
)

func testGeo(t *testing.T, cities int, seed int64) *traffic.Geography {
	t.Helper()
	g, err := traffic.GenerateGeography(traffic.GeographyConfig{
		NumCities: cities, Seed: seed, ZipfExponent: 1.0, MinSeparation: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func baseConfig(t *testing.T, seed int64) Config {
	return Config{
		Geography:             testGeo(t, 20, seed),
		NumPOPs:               6,
		Customers:             400,
		Seed:                  seed,
		PerfWeight:            50,
		MaxExtraBackboneLinks: 4,
		DemandMin:             1,
		DemandMax:             6,
	}
}

func TestBuildCostBased(t *testing.T) {
	d, err := Build(baseConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.POPs) != 6 {
		t.Fatalf("POPs = %d", len(d.POPs))
	}
	if d.CustomersServed != 400 || d.CustomersOffered != 400 {
		t.Fatalf("cost-based must serve everyone: %d/%d", d.CustomersServed, d.CustomersOffered)
	}
	if !d.Graph.IsConnected() {
		t.Fatal("ISP graph must be connected")
	}
	if d.TotalCost() <= 0 {
		t.Fatal("total cost must be positive")
	}
	if d.AccessCost <= 0 || d.BackboneCost <= 0 {
		t.Fatal("both cost components must be positive")
	}
}

func TestBuildHierarchyKinds(t *testing.T) {
	d, err := Build(baseConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	pops := d.Graph.NodesOfKind(graph.KindPOP)
	custs := d.Graph.NodesOfKind(graph.KindCustomer)
	if len(pops) != 6 {
		t.Fatalf("POP nodes = %d", len(pops))
	}
	if len(custs) != 400 {
		t.Fatalf("customer nodes = %d", len(custs))
	}
}

func TestBackboneMeshAndRedundancy(t *testing.T) {
	cfg := baseConfig(t, 3)
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// MST over 6 POPs has 5 edges; augmentation may add up to 4.
	if len(d.BackboneEdges) < 5 {
		t.Fatalf("backbone edges = %d, want >= 5", len(d.BackboneEdges))
	}
	if len(d.BackboneEdges) > 9 {
		t.Fatalf("backbone edges = %d, exceeds budget", len(d.BackboneEdges))
	}
	// Higher perf weight must never yield fewer backbone links.
	cfg2 := cfg
	cfg2.PerfWeight = 5000
	d2, err := Build(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.BackboneEdges) < len(d.BackboneEdges) {
		t.Fatalf("more perf weight gave fewer links: %d vs %d",
			len(d2.BackboneEdges), len(d.BackboneEdges))
	}
}

func TestNoPerfWeightMeansTreeBackbone(t *testing.T) {
	cfg := baseConfig(t, 4)
	cfg.PerfWeight = 0
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.BackboneEdges) != len(d.POPs)-1 {
		t.Fatalf("pure-cost backbone should be a tree: %d edges for %d POPs",
			len(d.BackboneEdges), len(d.POPs))
	}
}

func TestProfitBasedServesSubset(t *testing.T) {
	cfg := baseConfig(t, 5)
	cfg.Formulation = ProfitBased
	cfg.PricePerDemand = 0.05 // low price: many customers unprofitable
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.CustomersServed >= d.CustomersOffered {
		t.Fatalf("low price should exclude some customers: %d/%d",
			d.CustomersServed, d.CustomersOffered)
	}
	if d.CustomersServed == 0 {
		t.Fatal("some customers near POPs should still be profitable")
	}
}

func TestProfitIncreasingInPrice(t *testing.T) {
	cfg := baseConfig(t, 6)
	cfg.Formulation = ProfitBased
	served := make([]int, 0, 3)
	for _, price := range []float64{0.05, 0.3, 3.0} {
		c := cfg
		c.PricePerDemand = price
		d, err := Build(c)
		if err != nil {
			t.Fatal(err)
		}
		served = append(served, d.CustomersServed)
	}
	if !(served[0] <= served[1] && served[1] <= served[2]) {
		t.Fatalf("served customers not monotone in price: %v", served)
	}
}

func TestProfitAccountedOnlyInProfitMode(t *testing.T) {
	d, err := Build(baseConfig(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if d.Revenue != 0 || d.Profit != 0 {
		t.Fatal("cost-based design should not report revenue")
	}
}

func TestMaxPortsRespectedInMetros(t *testing.T) {
	cfg := baseConfig(t, 8)
	cfg.MaxPorts = 8
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range d.Graph.NodesOfKind(graph.KindCustomer) {
		if d.Graph.Degree(u) > 8 {
			t.Fatalf("customer node %d exceeds port cap: %d", u, d.Graph.Degree(u))
		}
	}
}

func TestKMedianPlacement(t *testing.T) {
	cfg := baseConfig(t, 9)
	cfg.Placement = KMedian
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.POPs) != cfg.NumPOPs {
		t.Fatalf("k-median placed %d POPs", len(d.POPs))
	}
	seen := map[int]bool{}
	for _, ci := range d.POPCity {
		if seen[ci] {
			t.Fatal("duplicate POP city")
		}
		seen[ci] = true
	}
}

func TestTopCitiesGetPOPs(t *testing.T) {
	d, err := Build(baseConfig(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	// TopCities placement: POP cities are exactly indices 0..5.
	for i, ci := range d.POPCity {
		if ci != i {
			t.Fatalf("POP %d placed at city %d, want %d", i, ci, i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
	geo := testGeo(t, 5, 11)
	if _, err := Build(Config{Geography: geo, NumPOPs: 0}); err == nil {
		t.Fatal("0 POPs should error")
	}
	if _, err := Build(Config{Geography: geo, NumPOPs: 2, Customers: -1}); err == nil {
		t.Fatal("negative customers should error")
	}
	if _, err := Build(Config{Geography: geo, NumPOPs: 2, Formulation: ProfitBased}); err == nil {
		t.Fatal("profit formulation without price should error")
	}
}

func TestNumPOPsClamped(t *testing.T) {
	geo := testGeo(t, 4, 12)
	d, err := Build(Config{Geography: geo, NumPOPs: 10, Customers: 50, Seed: 1, DemandMin: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.POPs) != 4 {
		t.Fatalf("POPs = %d, want clamped to 4", len(d.POPs))
	}
}

func TestSinglePOP(t *testing.T) {
	geo := testGeo(t, 3, 13)
	d, err := Build(Config{Geography: geo, NumPOPs: 1, Customers: 100, Seed: 2, DemandMin: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.BackboneEdges) != 0 {
		t.Fatal("single POP needs no backbone")
	}
	if !d.Graph.IsConnected() {
		t.Fatal("single-POP ISP must still be connected")
	}
}

func TestDeterministicBuild(t *testing.T) {
	a, err := Build(baseConfig(t, 14))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(baseConfig(t, 14))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCost() != b.TotalCost() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("Build not deterministic for fixed seed")
	}
}

func TestCustomerConcentrationFollowsPopulation(t *testing.T) {
	// §2.1: "most customers reside in the big cities". The biggest POP
	// city must serve more customers than the smallest POP city.
	d, err := Build(baseConfig(t, 15))
	if err != nil {
		t.Fatal(err)
	}
	// Count customers per POP component: remove backbone edges and find
	// which POP each customer connects through. Simpler: BFS from each
	// POP in the access-only subgraph.
	counts := make([]int, len(d.POPs))
	// Build access-only graph: exclude backbone edge ids.
	backbone := map[int]bool{}
	for _, e := range d.BackboneEdges {
		backbone[e] = true
	}
	acc := graph.New(d.Graph.NumNodes())
	for i := 0; i < d.Graph.NumNodes(); i++ {
		acc.AddNode(*d.Graph.Node(i))
	}
	for i, e := range d.Graph.Edges() {
		if !backbone[i] {
			acc.AddEdge(e)
		}
	}
	for pi, pop := range d.POPs {
		dist, _ := acc.BFS(pop)
		for v, dd := range dist {
			if dd > 0 && acc.Node(v).Kind == graph.KindCustomer {
				counts[pi]++
			}
		}
	}
	if counts[0] <= counts[len(counts)-1] {
		t.Fatalf("biggest city POP serves %d, smallest %d — expected concentration",
			counts[0], counts[len(counts)-1])
	}
}
