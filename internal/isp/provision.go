package isp

import (
	"context"
	"fmt"

	"repro/internal/access"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/trafficreg"
)

// BackboneReport describes the provisioning of the WAN after routing the
// inter-metro demand over it.
type BackboneReport struct {
	// Demands actually routed (one per POP pair with positive gravity
	// demand).
	Demands int
	// LoadPerEdge[i] is the routed traffic on BackboneEdges[i], in
	// cable-capacity units.
	LoadPerEdge []float64
	// CablePerEdge / CountPerEdge is the chosen configuration.
	CablePerEdge []int
	CountPerEdge []int
	// ProvisionCost is the cable cost (install per length plus usage per
	// flow-length) across backbone links.
	ProvisionCost float64
	// MaxUtilization is max(load/capacity) after provisioning; <= 1 by
	// construction since every link gets enough parallel cables.
	MaxUtilization float64
	// AvgPathWeight is the demand-weighted mean backbone path length.
	AvgPathWeight float64
}

// ProvisionBackbone routes the inter-metro demand between the design's
// POP metros over the built topology and installs the cheapest adequate
// cable configuration on every backbone link, using the canonical
// gravity demand model with its defaults (the paper's §2.2 input).
//
// demandScale converts demand units into cable-capacity units; <= 0
// picks the scale that puts the busiest link at one top-tier cable.
func ProvisionBackbone(des *Design, geo *traffic.Geography, cat access.Catalog, demandScale float64) (*BackboneReport, error) {
	return ProvisionBackboneContext(context.Background(), des, geo, cat, demandScale, trafficreg.Selection{}, 0)
}

// ProvisionBackboneContext is ProvisionBackbone under any registered
// demand model (internal/trafficreg; the zero Selection is gravity with
// its defaults), with cancellation — the "resource capacity" half of
// topology the paper's footnote 1 insists on (topology = connectivity +
// capacity annotations) is provisioned against a first-class,
// parameterized traffic input instead of a hardcoded one. Backbone edge
// capacities and cable kinds in the design graph are updated in place.
// seed feeds seed-dependent demand models; pass the Config.Seed the
// design was built with so capacities are sized for the same matrix
// that drove the backbone augmentation (built-ins ignore it).
func ProvisionBackboneContext(ctx context.Context, des *Design, geo *traffic.Geography, cat access.Catalog, demandScale float64, model trafficreg.Selection, seed int64) (*BackboneReport, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if len(des.BackboneEdges) == 0 {
		return &BackboneReport{}, nil
	}
	if geo == nil {
		return nil, fmt.Errorf("isp: missing geography")
	}
	dm, err := trafficreg.GenerateDemand(ctx, geo, model, seed)
	if err != nil {
		return nil, fmt.Errorf("isp: provision demand: %w", err)
	}
	var demands []routing.Demand
	for i := 0; i < len(des.POPs); i++ {
		for j := i + 1; j < len(des.POPs); j++ {
			v := dm[des.POPCity[i]][des.POPCity[j]]
			if v > 0 {
				demands = append(demands, routing.Demand{
					Src: des.POPs[i], Dst: des.POPs[j], Volume: v,
				})
			}
		}
	}
	res, err := routing.RouteShortestPaths(des.Graph, demands)
	if err != nil {
		return nil, err
	}
	if demandScale <= 0 {
		maxLoad := 0.0
		for _, eid := range des.BackboneEdges {
			if res.Load[eid] > maxLoad {
				maxLoad = res.Load[eid]
			}
		}
		if maxLoad > 0 {
			demandScale = cat[len(cat)-1].Capacity / maxLoad
		} else {
			demandScale = 1
		}
	}
	rep := &BackboneReport{
		Demands:       len(demands),
		LoadPerEdge:   make([]float64, len(des.BackboneEdges)),
		CablePerEdge:  make([]int, len(des.BackboneEdges)),
		CountPerEdge:  make([]int, len(des.BackboneEdges)),
		AvgPathWeight: res.AvgPathWeight,
	}
	for k, eid := range des.BackboneEdges {
		load := res.Load[eid] * demandScale
		kind, count, _ := cat.BestCableConfig(load)
		e := des.Graph.Edge(eid)
		e.Cable = kind
		e.Capacity = float64(count) * cat[kind].Capacity
		rep.LoadPerEdge[k] = load
		rep.CablePerEdge[k] = kind
		rep.CountPerEdge[k] = count
		rep.ProvisionCost += (float64(count)*cat[kind].Install + cat[kind].Usage*load) * e.Weight
		if e.Capacity > 0 {
			if u := load / e.Capacity; u > rep.MaxUtilization {
				rep.MaxUtilization = u
			}
		}
	}
	return rep, nil
}
