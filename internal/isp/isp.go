// Package isp assembles a full "realistic, but fictitious" single-ISP
// router-level topology the way the paper's §2.2 describes: the network
// decomposes into a backbone (WAN) over points of presence, metro
// distribution networks (MAN) built by buy-at-bulk access design, and
// customers (LAN attachment points); the buildout is driven by population
// centers and a cost- or profit-based optimization formulation.
package isp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/errs"

	"repro/internal/access"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/trafficreg"
)

// Formulation selects the paper's §2.2 economic objective.
type Formulation int

// The two formulations of §2.2.
const (
	// CostBased builds a network that minimizes cost subject to serving
	// every customer ("minimize cost subject to satisfying demand").
	CostBased Formulation = iota
	// ProfitBased serves customers only while they are profitable:
	// buildout stops "where marginal revenue meets marginal cost".
	ProfitBased
)

// String names the formulation.
func (f Formulation) String() string {
	if f == ProfitBased {
		return "profit-based"
	}
	return "cost-based"
}

// POPPlacement selects how POP cities are chosen (the E5 ablation).
type POPPlacement int

// POP placement strategies.
const (
	// TopCities puts POPs in the most populous cities.
	TopCities POPPlacement = iota
	// KMedian places POPs by population-weighted k-means over city
	// locations, then snaps each center to its nearest city.
	KMedian
)

// Config parameterizes the ISP designer.
type Config struct {
	Geography *traffic.Geography
	NumPOPs   int
	Customers int // total customer count across the footprint
	Seed      int64
	Catalog   access.Catalog // nil = access.DefaultCatalog()

	Placement POPPlacement

	// Backbone economics: installing a backbone link costs
	// BackboneCostPerLength per unit length; PerfWeight prices one unit
	// of demand-weighted average path length. The designer starts from a
	// POP MST and greedily adds the link with the best perf-gain minus
	// cost, while positive (up to MaxExtraBackboneLinks).
	BackboneCostPerLength float64
	PerfWeight            float64
	MaxExtraBackboneLinks int

	// MaxPorts caps router degree in metro access trees (technology
	// constraint, §2.1). 0 = unconstrained.
	MaxPorts int

	// MetroRingSize >= 2 builds each metro as SONET-style protected
	// rings of at most that many customers (§2.4 Level-2 technology)
	// instead of buy-at-bulk trees. Incompatible with the profit
	// formulation (ring admission is all-or-nothing).
	MetroRingSize int

	Formulation Formulation
	// PricePerDemand is revenue per unit of customer demand (profit
	// formulation only).
	PricePerDemand float64

	// Demand names the registered traffic model (internal/trafficreg)
	// whose inter-metro demand drives the backbone cost/performance
	// augmentation. The zero Selection is gravity with its defaults —
	// the paper's §2.2 canonical input.
	Demand trafficreg.Selection

	// MetroSpread is the Gaussian scatter of customers around their city
	// center (default 0.03).
	MetroSpread float64
	// DemandMin/DemandMax/DemandShape parameterize per-customer demand
	// (bounded Pareto; constant DemandMin if DemandMax <= DemandMin).
	DemandMin, DemandMax, DemandShape float64
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Geography == nil || len(out.Geography.Cities) == 0 {
		return out, fmt.Errorf("isp: missing geography")
	}
	if out.NumPOPs < 1 {
		return out, fmt.Errorf("isp: need at least one POP")
	}
	if out.NumPOPs > len(out.Geography.Cities) {
		out.NumPOPs = len(out.Geography.Cities)
	}
	if out.Customers < 0 {
		return out, fmt.Errorf("isp: negative customer count")
	}
	if out.Catalog == nil {
		out.Catalog = access.DefaultCatalog()
	}
	if err := out.Catalog.Validate(); err != nil {
		return out, err
	}
	if out.BackboneCostPerLength <= 0 {
		out.BackboneCostPerLength = 20
	}
	if out.MetroSpread <= 0 {
		out.MetroSpread = 0.03
	}
	if out.DemandMin <= 0 {
		out.DemandMin = 1
	}
	if out.Formulation == ProfitBased && out.PricePerDemand <= 0 {
		return out, fmt.Errorf("isp: profit formulation needs a positive price")
	}
	if out.MetroRingSize == 1 || out.MetroRingSize < 0 {
		return out, fmt.Errorf("isp: MetroRingSize must be 0 (trees) or >= 2")
	}
	if out.MetroRingSize >= 2 && out.Formulation == ProfitBased {
		return out, fmt.Errorf("isp: metro rings are incompatible with the profit formulation")
	}
	// Validate the demand model up front so a bad selection fails before
	// any buildout.
	dm, err := trafficreg.Lookup(out.Demand.Name)
	if err != nil {
		return out, err
	}
	if _, err := trafficreg.Resolve(dm, out.Demand.Params); err != nil {
		return out, err
	}
	return out, nil
}

// Design is a fully built ISP.
type Design struct {
	Graph *graph.Graph
	// POPs holds the node ids of the POP routers; POPCity[i] is the city
	// index (in Geography.Cities) POP i serves.
	POPs    []int
	POPCity []int
	// BackboneEdges are edge indices of WAN links.
	BackboneEdges []int

	// Costs: metro access install+usage, plus backbone install.
	AccessCost   float64
	BackboneCost float64

	// Offered vs served customers and demand (differ only under the
	// profit formulation).
	CustomersOffered int
	CustomersServed  int
	DemandOffered    float64
	DemandServed     float64

	// Profit-formulation accounting.
	Revenue float64
	Profit  float64
}

// TotalCost is access plus backbone cost.
func (d *Design) TotalCost() float64 { return d.AccessCost + d.BackboneCost }

// Build designs the ISP.
func Build(cfg Config) (*Design, error) {
	return BuildContext(context.Background(), cfg)
}

// BuildContext is Build with cancellation: the context is checked
// between design stages and before each metro buildout, returning an
// errs.ErrCanceled-wrapping error when it is done.
func BuildContext(ctx context.Context, cfg Config) (*Design, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	geo := c.Geography
	des := &Design{Graph: graph.New(0)}

	// --- 1. POP placement -------------------------------------------------
	popCities := placePOPs(&c)
	des.POPCity = popCities

	for _, ci := range popCities {
		city := geo.Cities[ci]
		id := des.Graph.AddNode(graph.Node{
			Kind:  graph.KindPOP,
			X:     city.Loc.X,
			Y:     city.Loc.Y,
			Label: city.Name,
		})
		des.POPs = append(des.POPs, id)
	}

	// --- 2. Backbone design -----------------------------------------------
	if err := errs.Ctx(ctx); err != nil {
		return nil, fmt.Errorf("isp: before backbone design: %w", err)
	}
	if err := buildBackbone(ctx, &c, des); err != nil {
		return nil, err
	}

	// --- 3. Metro access networks ------------------------------------------
	if err := buildMetros(ctx, &c, des); err != nil {
		return nil, err
	}
	return des, nil
}

// placePOPs returns the chosen city indices.
func placePOPs(c *Config) []int {
	geo := c.Geography
	if c.Placement == TopCities || c.NumPOPs >= len(geo.Cities) {
		// Cities are sorted by population descending.
		out := make([]int, c.NumPOPs)
		for i := range out {
			out[i] = i
		}
		return out
	}
	pts := make([]geom.Point, len(geo.Cities))
	ws := make([]float64, len(geo.Cities))
	for i, city := range geo.Cities {
		pts[i] = city.Loc
		ws[i] = city.Population
	}
	centers := access.KMeans(pts, ws, c.NumPOPs, c.Seed, 40)
	used := map[int]bool{}
	out := make([]int, 0, len(centers))
	for _, ctr := range centers {
		best, bestD := -1, math.Inf(1)
		for i, city := range geo.Cities {
			if used[i] {
				continue
			}
			if d := city.Loc.Dist2(ctr); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			used[best] = true
			out = append(out, best)
		}
	}
	sort.Ints(out)
	return out
}

// buildBackbone connects POPs: MST first (cost-minimal spanning), then
// greedy cost/performance augmentation against the configured demand
// model's inter-POP traffic.
func buildBackbone(ctx context.Context, c *Config, des *Design) error {
	g := des.Graph
	k := len(des.POPs)
	if k == 1 {
		return nil
	}
	xs := make([]float64, k)
	ys := make([]float64, k)
	for i, id := range des.POPs {
		xs[i] = g.Node(id).X
		ys[i] = g.Node(id).Y
	}
	addBackbone := func(i, j int) int {
		d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
		eid := g.AddEdge(graph.Edge{
			U: des.POPs[i], V: des.POPs[j], Weight: d,
			Capacity: c.Catalog[len(c.Catalog)-1].Capacity,
			Cable:    len(c.Catalog) - 1,
		})
		des.BackboneEdges = append(des.BackboneEdges, eid)
		des.BackboneCost += c.BackboneCostPerLength * d
		return eid
	}
	inTree := map[[2]int]bool{}
	for _, pr := range graph.EuclideanMST(xs, ys) {
		addBackbone(pr[0], pr[1])
		a, b := pr[0], pr[1]
		if a > b {
			a, b = b, a
		}
		inTree[[2]int{a, b}] = true
	}
	if c.MaxExtraBackboneLinks <= 0 || c.PerfWeight <= 0 {
		return nil
	}
	// Inter-POP demand via the configured registry model restricted to
	// POP cities.
	dm, err := trafficreg.GenerateDemand(ctx, c.Geography, c.Demand, c.Seed)
	if err != nil {
		return fmt.Errorf("isp: backbone demand: %w", err)
	}
	var demands []routing.Demand
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			v := dm[des.POPCity[i]][des.POPCity[j]]
			if v > 0 {
				demands = append(demands, routing.Demand{Src: des.POPs[i], Dst: des.POPs[j], Volume: v})
			}
		}
	}
	if len(demands) == 0 {
		return nil
	}
	avgPath := func() (float64, error) {
		res, err := routing.RouteShortestPaths(g, demands)
		if err != nil {
			return 0, err
		}
		return res.AvgPathWeight, nil
	}
	cur, err := avgPath()
	if err != nil {
		return err
	}
	for added := 0; added < c.MaxExtraBackboneLinks; added++ {
		bestI, bestJ, bestGain := -1, -1, 0.0
		var bestNew float64
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if inTree[[2]int{i, j}] {
					continue
				}
				d := math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
				// Tentatively add, measure, remove by rebuilding? Graph has
				// no edge removal; evaluate on a clone.
				clone := g.Clone()
				clone.AddEdge(graph.Edge{U: des.POPs[i], V: des.POPs[j], Weight: d})
				res, err := routing.RouteShortestPaths(clone, demands)
				if err != nil {
					return err
				}
				gain := c.PerfWeight*(cur-res.AvgPathWeight) - c.BackboneCostPerLength*d
				if gain > bestGain {
					bestI, bestJ, bestGain = i, j, gain
					bestNew = res.AvgPathWeight
				}
			}
		}
		if bestI < 0 {
			break // no profitable augmentation remains
		}
		addBackbone(bestI, bestJ)
		inTree[[2]int{bestI, bestJ}] = true
		cur = bestNew
	}
	return nil
}

// buildMetros runs buy-at-bulk access design per POP metro and merges the
// results into the design graph.
func buildMetros(ctx context.Context, c *Config, des *Design) error {
	geo := c.Geography
	g := des.Graph
	// Distribute customers over POP cities by population share.
	popGeo := &traffic.Geography{Region: geo.Region}
	for _, ci := range des.POPCity {
		popGeo.Cities = append(popGeo.Cities, geo.Cities[ci])
	}
	alloc := traffic.AllocateCustomers(popGeo, c.Customers)

	deltaBulk := c.Catalog[len(c.Catalog)-1].Usage
	sigmaThin := c.Catalog[0].Install

	for pi, popID := range des.POPs {
		if err := errs.Ctx(ctx); err != nil {
			return fmt.Errorf("isp: metro %d: %w", pi, err)
		}
		nCust := alloc[pi]
		if nCust == 0 {
			continue
		}
		seed := rng.Derive(c.Seed, 1000+pi)
		r := rng.New(seed)
		popNode := g.Node(popID)
		popLoc := geom.Point{X: popNode.X, Y: popNode.Y}
		pts := geo.Region.GaussianCluster(r, popLoc, c.MetroSpread, nCust)

		if c.MetroRingSize >= 2 {
			buildRingMetro(c, des, popID, popLoc, pts, r)
			continue
		}

		// Incremental cost-distance attachment (same rule as
		// access.MMPIncremental) directly into the shared graph, with an
		// optional port cap and — under the profit formulation — an
		// admission test "marginal revenue >= marginal cost".
		attached := []int{popID}
		usageToRoot := map[int]float64{popID: 0}
		for _, p := range pts {
			dem := c.DemandMin
			if c.DemandMax > c.DemandMin {
				shape := c.DemandShape
				if shape <= 0 {
					shape = 1.2
				}
				dem = rng.BoundedPareto(r, c.DemandMin, c.DemandMax, shape)
			}
			des.CustomersOffered++
			des.DemandOffered += dem

			bestJ, bestCost := -1, math.Inf(1)
			for _, j := range attached {
				if c.MaxPorts > 0 && g.Degree(j) >= c.MaxPorts {
					continue
				}
				nj := g.Node(j)
				d := p.Dist(geom.Point{X: nj.X, Y: nj.Y})
				cost := sigmaThin*d + (usageToRoot[j]+deltaBulk*d)*dem
				if cost < bestCost {
					bestJ, bestCost = j, cost
				}
			}
			if bestJ < 0 {
				// All ports exhausted: fall back to the POP itself.
				bestJ = popID
				d := p.Dist(popLoc)
				bestCost = sigmaThin*d + deltaBulk*d*dem
			}
			if c.Formulation == ProfitBased {
				rev := c.PricePerDemand * dem
				if rev < bestCost {
					continue // unprofitable: do not build
				}
				des.Revenue += rev
			}
			nj := g.Node(bestJ)
			d := p.Dist(geom.Point{X: nj.X, Y: nj.Y})
			id := g.AddNode(graph.Node{Kind: graph.KindCustomer, X: p.X, Y: p.Y, Capacity: dem})
			g.AddEdge(graph.Edge{U: bestJ, V: id, Weight: d, Cable: -1})
			attached = append(attached, id)
			usageToRoot[id] = usageToRoot[bestJ] + deltaBulk*d
			des.AccessCost += bestCost
			des.CustomersServed++
			des.DemandServed += dem
		}
	}
	if c.Formulation == ProfitBased {
		des.Profit = des.Revenue - des.TotalCost()
	}
	return nil
}

// buildRingMetro wires one metro as angular-sweep SONET rings through the
// POP (§2.4), mirroring access.RingMetro inside the shared design graph.
func buildRingMetro(c *Config, des *Design, popID int, popLoc geom.Point, pts []geom.Point, r *rand.Rand) {
	g := des.Graph
	demands := make([]float64, len(pts))
	for i := range demands {
		demands[i] = c.DemandMin
		if c.DemandMax > c.DemandMin {
			shape := c.DemandShape
			if shape <= 0 {
				shape = 1.2
			}
			demands[i] = rng.BoundedPareto(r, c.DemandMin, c.DemandMax, shape)
		}
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return math.Atan2(pts[order[a]].Y-popLoc.Y, pts[order[a]].X-popLoc.X) <
			math.Atan2(pts[order[b]].Y-popLoc.Y, pts[order[b]].X-popLoc.X)
	})
	addEdge := func(u, v int, ringDemand float64) {
		nu, nv := g.Node(u), g.Node(v)
		d := geom.Point{X: nu.X, Y: nu.Y}.Dist(geom.Point{X: nv.X, Y: nv.Y})
		kind, count, unit := c.Catalog.BestCableConfig(ringDemand)
		g.AddEdge(graph.Edge{
			U: u, V: v, Weight: d,
			Capacity: float64(count) * c.Catalog[kind].Capacity,
			Cable:    kind,
		})
		des.AccessCost += unit * d
	}
	for start := 0; start < len(order); start += c.MetroRingSize {
		end := start + c.MetroRingSize
		if end > len(order) {
			end = len(order)
		}
		members := order[start:end]
		ringDemand := 0.0
		for _, ci := range members {
			ringDemand += demands[ci]
		}
		prev := popID
		for _, ci := range members {
			id := g.AddNode(graph.Node{
				Kind: graph.KindCustomer,
				X:    pts[ci].X, Y: pts[ci].Y,
				Capacity: demands[ci],
			})
			addEdge(prev, id, ringDemand)
			prev = id
			des.CustomersOffered++
			des.CustomersServed++
			des.DemandOffered += demands[ci]
			des.DemandServed += demands[ci]
		}
		addEdge(prev, popID, ringDemand)
	}
}
