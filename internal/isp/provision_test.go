package isp

import (
	"context"
	"errors"
	"testing"

	"repro/internal/access"
	"repro/internal/errs"
	"repro/internal/trafficreg"
)

func TestProvisionBackboneBasics(t *testing.T) {
	d, err := Build(baseConfig(t, 41))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ProvisionBackbone(d, testGeo(t, 20, 41), access.DefaultCatalog(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Demands == 0 {
		t.Fatal("no demands routed")
	}
	if len(rep.LoadPerEdge) != len(d.BackboneEdges) {
		t.Fatal("per-edge arrays mismatched")
	}
	if rep.ProvisionCost <= 0 {
		t.Fatal("provisioning should cost something")
	}
	if rep.MaxUtilization > 1+1e-9 {
		t.Fatalf("utilization %v exceeds 1 after provisioning", rep.MaxUtilization)
	}
	// Capacities were written back onto the backbone edges.
	for _, eid := range d.BackboneEdges {
		if d.Graph.Edge(eid).Capacity <= 0 {
			t.Fatal("backbone edge left unprovisioned")
		}
	}
}

func TestProvisionBackboneCapacityCoversLoad(t *testing.T) {
	d, err := Build(baseConfig(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ProvisionBackbone(d, testGeo(t, 20, 42), access.DefaultCatalog(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cat := access.DefaultCatalog()
	for k := range rep.LoadPerEdge {
		cap := float64(rep.CountPerEdge[k]) * cat[rep.CablePerEdge[k]].Capacity
		if rep.LoadPerEdge[k] > cap+1e-9 {
			t.Fatalf("edge %d: load %v exceeds cable capacity %v",
				k, rep.LoadPerEdge[k], cap)
		}
	}
}

func TestProvisionBackboneSinglePOP(t *testing.T) {
	geo := testGeo(t, 3, 43)
	d, err := Build(Config{Geography: geo, NumPOPs: 1, Customers: 20, Seed: 1, DemandMin: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ProvisionBackbone(d, geo, access.DefaultCatalog(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Demands != 0 || rep.ProvisionCost != 0 {
		t.Fatalf("single-POP provisioning should be empty: %+v", rep)
	}
}

func TestProvisionBackboneErrors(t *testing.T) {
	d, err := Build(baseConfig(t, 44))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProvisionBackbone(d, nil, access.DefaultCatalog(), 0); err == nil {
		t.Fatal("nil geography should error")
	}
	if _, err := ProvisionBackbone(d, testGeo(t, 20, 44), access.Catalog{}, 0); err == nil {
		t.Fatal("empty catalog should error")
	}
}

// TestProvisionBackboneDemandModels provisions the same design under
// different registry demand models: the default (zero Selection) must
// equal explicit gravity defaults exactly, other models must provision
// successfully with different loads, and a bad selection must fail as
// ErrBadParam before touching the design.
func TestProvisionBackboneDemandModels(t *testing.T) {
	geo := testGeo(t, 20, 46)
	buildOne := func() *Design {
		t.Helper()
		d, err := Build(baseConfig(t, 46))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ctx := context.Background()
	def, err := ProvisionBackbone(buildOne(), geo, access.DefaultCatalog(), 0)
	if err != nil {
		t.Fatal(err)
	}
	grav, err := ProvisionBackboneContext(ctx, buildOne(), geo, access.DefaultCatalog(), 0,
		trafficreg.Selection{Name: "gravity"}, 46)
	if err != nil {
		t.Fatal(err)
	}
	for k := range def.LoadPerEdge {
		if def.LoadPerEdge[k] != grav.LoadPerEdge[k] {
			t.Fatalf("zero Selection differs from explicit gravity at edge %d: %v vs %v",
				k, def.LoadPerEdge[k], grav.LoadPerEdge[k])
		}
	}
	uni, err := ProvisionBackboneContext(ctx, buildOne(), geo, access.DefaultCatalog(), 0,
		trafficreg.Selection{Name: "uniform"}, 46)
	if err != nil {
		t.Fatal(err)
	}
	if uni.Demands == 0 || uni.MaxUtilization > 1+1e-9 {
		t.Fatalf("uniform-demand provisioning implausible: %+v", uni)
	}
	if _, err := ProvisionBackboneContext(ctx, buildOne(), geo, access.DefaultCatalog(), 0,
		trafficreg.Selection{Name: "nope"}, 46); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown demand model gave %v, want ErrBadParam", err)
	}
}

func TestProvisionBackboneExplicitScale(t *testing.T) {
	d, err := Build(baseConfig(t, 45))
	if err != nil {
		t.Fatal(err)
	}
	geo := testGeo(t, 20, 45)
	small, err := ProvisionBackbone(d, geo, access.DefaultCatalog(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(baseConfig(t, 45))
	if err != nil {
		t.Fatal(err)
	}
	big, err := ProvisionBackbone(d2, geo, access.DefaultCatalog(), 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if big.ProvisionCost <= small.ProvisionCost {
		t.Fatalf("more demand should cost more: %v vs %v",
			big.ProvisionCost, small.ProvisionCost)
	}
}
