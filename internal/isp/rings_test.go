package isp

import (
	"testing"

	"repro/internal/graph"
)

func TestMetroRingsBuild(t *testing.T) {
	cfg := baseConfig(t, 51)
	cfg.MetroRingSize = 6
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.CustomersServed != 400 {
		t.Fatalf("served = %d", d.CustomersServed)
	}
	if !d.Graph.IsConnected() {
		t.Fatal("ring ISP must be connected")
	}
	// No customer leaves: every customer sits on a ring.
	for _, u := range d.Graph.NodesOfKind(graph.KindCustomer) {
		if d.Graph.Degree(u) < 2 {
			t.Fatalf("customer %d has degree %d, want >= 2 on a ring", u, d.Graph.Degree(u))
		}
	}
}

func TestMetroRingsCostMoreThanTrees(t *testing.T) {
	cfg := baseConfig(t, 52)
	tree, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MetroRingSize = 8
	ring, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ring.AccessCost <= tree.AccessCost {
		t.Fatalf("ring access %v should cost more than tree %v",
			ring.AccessCost, tree.AccessCost)
	}
}

func TestMetroRingsValidation(t *testing.T) {
	cfg := baseConfig(t, 53)
	cfg.MetroRingSize = 1
	if _, err := Build(cfg); err == nil {
		t.Fatal("ring size 1 should error")
	}
	cfg = baseConfig(t, 53)
	cfg.MetroRingSize = 4
	cfg.Formulation = ProfitBased
	cfg.PricePerDemand = 1
	if _, err := Build(cfg); err == nil {
		t.Fatal("rings + profit formulation should error")
	}
}

func TestMetroRingsSurviveSingleCut(t *testing.T) {
	// Removing any single access edge must not disconnect a ring metro's
	// customers from the backbone; only the backbone tree edges (if the
	// perf optimizer bought no redundancy) are bridges.
	cfg := baseConfig(t, 54)
	cfg.MetroRingSize = 5
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	backbone := map[int]bool{}
	for _, e := range d.BackboneEdges {
		backbone[e] = true
	}
	for _, b := range d.Graph.BridgeEdges() {
		if !backbone[b] {
			t.Fatalf("access edge %d is a bridge in a ring metro", b)
		}
	}
}
