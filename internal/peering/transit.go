package peering

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// TransitLink is a customer-provider relationship between two ISPs: the
// customer buys global reachability from the provider, interconnecting
// at the named cities' POP routers.
type TransitLink struct {
	Customer, Provider int // ISP indices
	CustomerCity       int // city of the customer-side router
	ProviderCity       int // city of the provider-side router
	RouterCustomer     int // node id within the customer's graph
	RouterProvider     int // node id within the provider's graph
}

// TransitConfig parameterizes AssignTransit.
type TransitConfig struct {
	// ProvidersPerCustomer is how many upstreams each non-tier-1 ISP
	// buys (default 1; 2 models multihoming).
	ProvidersPerCustomer int
	// Tier1Count is how many of the largest ISPs form the provider-free
	// top tier (default: a quarter of the ISPs, at least 2).
	Tier1Count int
}

// TransitResult is the customer-provider structure layered onto an
// assembled Internet.
type TransitResult struct {
	Links []TransitLink
	// Tier[i] is 1 for tier-1 ISPs, 2 for their direct customers, etc.
	Tier []int
	// ASAll is the AS graph including both peering and transit edges;
	// transit edges carry Cable == 1, peering edges Cable == 0.
	ASAll *graph.Graph
}

// AssignTransit layers customer-provider (transit) relationships onto an
// assembled Internet, per the paper's §2.3 observation that inter-ISP
// structure reflects business relationships beyond settlement-free
// peering. Size is measured by POP footprint; every ISP outside the top
// tier buys transit from the nearest larger ISPs (shared cities
// preferred — that is where interconnection is cheap, §2.1).
//
// The returned AS graph contains one node per ISP and an edge per
// related pair. With skewed ISP sizes, its degree distribution becomes
// hub-dominated: the Faloutsos-style heavy tail emerges from economics
// rather than from preferential attachment.
func AssignTransit(inet *Internet, cfg TransitConfig) (*TransitResult, error) {
	n := len(inet.ISPs)
	if n == 0 {
		return nil, fmt.Errorf("peering: empty internet")
	}
	per := cfg.ProvidersPerCustomer
	if per <= 0 {
		per = 1
	}
	tier1 := cfg.Tier1Count
	if tier1 <= 0 {
		tier1 = n / 4
		if tier1 < 2 {
			tier1 = 2
		}
	}
	if tier1 > n {
		tier1 = n
	}

	// Rank ISPs by footprint size (POP count, then total city count as a
	// proxy for population served).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	size := func(i int) int { return len(inet.ISPs[i].Design.POPs) }
	sort.SliceStable(order, func(a, b int) bool { return size(order[a]) > size(order[b]) })
	rank := make([]int, n)
	for pos, i := range order {
		rank[i] = pos
	}

	res := &TransitResult{Tier: make([]int, n)}
	for _, i := range order[:tier1] {
		res.Tier[i] = 1
	}

	// Each non-tier-1 ISP selects providers among strictly higher-ranked
	// ISPs, preferring shared cities then geographic proximity of POPs.
	for _, i := range order[tier1:] {
		type cand struct {
			j      int
			shared bool
			dist   float64
			ci, cj int // interconnection cities
			ri, rj int // routers
		}
		var cands []cand
		for _, j := range order {
			if rank[j] >= rank[i] {
				break // order is sorted by rank; stop at own rank
			}
			best := cand{j: j, dist: math.Inf(1)}
			di := inet.ISPs[i].Design
			dj := inet.ISPs[j].Design
			for pi, ci := range di.POPCity {
				for pj, cj := range dj.POPCity {
					if ci == cj {
						best = cand{j: j, shared: true, dist: 0, ci: ci, cj: cj,
							ri: di.POPs[pi], rj: dj.POPs[pj]}
					} else if !best.shared {
						ni := di.Graph.Node(di.POPs[pi])
						nj := dj.Graph.Node(dj.POPs[pj])
						dx, dy := ni.X-nj.X, ni.Y-nj.Y
						if d := math.Hypot(dx, dy); d < best.dist {
							best = cand{j: j, dist: d, ci: ci, cj: cj,
								ri: di.POPs[pi], rj: dj.POPs[pj]}
						}
					}
					if best.shared {
						break
					}
				}
				if best.shared {
					break
				}
			}
			if !math.IsInf(best.dist, 1) {
				cands = append(cands, best)
			}
		}
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].shared != cands[b].shared {
				return cands[a].shared
			}
			if cands[a].dist != cands[b].dist {
				return cands[a].dist < cands[b].dist
			}
			// Tie-break toward the larger provider.
			return rank[cands[a].j] < rank[cands[b].j]
		})
		tier := 0
		for k := 0; k < per && k < len(cands); k++ {
			c := cands[k]
			res.Links = append(res.Links, TransitLink{
				Customer: i, Provider: c.j,
				CustomerCity: c.ci, ProviderCity: c.cj,
				RouterCustomer: c.ri, RouterProvider: c.rj,
			})
			if t := res.Tier[c.j] + 1; tier == 0 || t < tier {
				tier = t
			}
		}
		if tier == 0 {
			tier = 1 // no larger ISP reachable: de facto top tier
		}
		res.Tier[i] = tier
	}

	// AS graph with both relationship kinds. Transit edges are added
	// first: when a pair both peers and has a transit contract, the
	// contract dominates (the customer gets full transit, not just
	// peer-cone routes).
	as := graph.New(n)
	for _, ispInst := range inet.ISPs {
		as.AddNode(graph.Node{Kind: graph.KindPeering, Label: ispInst.Name})
	}
	seen := map[[2]int]bool{}
	addEdge := func(a, b, kind int) {
		if a > b {
			a, b = b, a
		}
		if a == b || seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		as.AddEdge(graph.Edge{U: a, V: b, Weight: 1, Cable: kind})
	}
	for _, l := range res.Links {
		addEdge(l.Customer, l.Provider, 1)
	}
	// Tier-1 full mesh: the default-free zone is a settlement-free
	// clique by definition — providers without providers must peer with
	// each other or the internet partitions.
	for _, a := range order[:tier1] {
		for _, b := range order[:tier1] {
			if a < b {
				addEdge(a, b, 0)
			}
		}
	}
	for _, p := range inet.Peerings {
		addEdge(p.A, p.B, 0)
	}
	res.ASAll = as
	return res, nil
}
