package peering

import (
	"fmt"
)

// Valley-free routing (Gao–Rexford): a BGP path may climb
// customer→provider edges, cross at most one peer–peer edge, and then
// descend provider→customer edges — never a "valley" (down then up) and
// never two lateral peer hops. The paper's abstract names "the dynamics
// of routing protocols" as a target application of realistic topologies;
// this is the policy model that makes AS-level reachability different
// from plain graph connectivity.

// vfPhase is the walk state in the valley-free automaton.
type vfPhase uint8

const (
	vfUp   vfPhase = iota // still climbing customer→provider edges
	vfPeer                // crossed the single allowed peer edge
	vfDown                // descending provider→customer edges
)

// ValleyFreeResult reports policy-constrained reachability over an AS
// relationship graph.
type ValleyFreeResult struct {
	// Reachable[i][j] reports whether i can reach j by a valley-free
	// path (true on the diagonal).
	Reachable [][]bool
	// Hops[i][j] is the minimum valley-free AS path length (-1 when
	// unreachable).
	Hops [][]int
	// ReachableFrac is the fraction of ordered pairs (i != j) that are
	// reachable.
	ReachableFrac float64
	// AvgHops is the mean path length over reachable ordered pairs.
	AvgHops float64
}

// ValleyFree computes policy reachability for a transit result: edges
// with Cable == 1 in ASAll are customer-provider (transit) links (the
// customer is the lower-tier endpoint recorded in Links), edges with
// Cable == 0 are settlement-free peering.
func ValleyFree(tr *TransitResult) (*ValleyFreeResult, error) {
	if tr == nil || tr.ASAll == nil {
		return nil, fmt.Errorf("peering: nil transit result")
	}
	n := tr.ASAll.NumNodes()
	// Relationship lookup: provider[c][p] = true when p is c's provider.
	isProvider := make([]map[int]bool, n)
	for i := range isProvider {
		isProvider[i] = map[int]bool{}
	}
	for _, l := range tr.Links {
		isProvider[l.Customer][l.Provider] = true
	}

	res := &ValleyFreeResult{
		Reachable: make([][]bool, n),
		Hops:      make([][]int, n),
	}
	reachPairs, hopTotal := 0, 0
	for s := 0; s < n; s++ {
		res.Reachable[s] = make([]bool, n)
		res.Hops[s] = make([]int, n)
		for j := range res.Hops[s] {
			res.Hops[s][j] = -1
		}
		res.Reachable[s][s] = true
		res.Hops[s][s] = 0

		// BFS over (node, phase) states.
		type state struct {
			node  int
			phase vfPhase
		}
		seen := map[state]bool{{s, vfUp}: true}
		frontier := []state{{s, vfUp}}
		dist := 0
		for len(frontier) > 0 {
			dist++
			var next []state
			for _, st := range frontier {
				tr.ASAll.Neighbors(st.node, func(v, eid int) {
					e := tr.ASAll.Edge(eid)
					var nextPhases []vfPhase
					if e.Cable == 1 {
						// Transit edge: direction matters.
						if isProvider[st.node][v] {
							// climbing to a provider: only while in Up.
							if st.phase == vfUp {
								nextPhases = append(nextPhases, vfUp)
							}
						} else {
							// descending to a customer: always allowed,
							// locks the walk into Down.
							nextPhases = append(nextPhases, vfDown)
						}
					} else {
						// Peer edge: once, only before descending.
						if st.phase == vfUp {
							nextPhases = append(nextPhases, vfPeer)
						}
					}
					for _, ph := range nextPhases {
						ns := state{v, ph}
						if !seen[ns] {
							seen[ns] = true
							next = append(next, ns)
							if !res.Reachable[s][v] {
								res.Reachable[s][v] = true
								res.Hops[s][v] = dist
							}
						}
					}
				})
			}
			frontier = next
		}
		for j := 0; j < n; j++ {
			if j != s && res.Reachable[s][j] {
				reachPairs++
				hopTotal += res.Hops[s][j]
			}
		}
	}
	if n > 1 {
		res.ReachableFrac = float64(reachPairs) / float64(n*(n-1))
	}
	if reachPairs > 0 {
		res.AvgHops = float64(hopTotal) / float64(reachPairs)
	}
	return res, nil
}
