package peering

import (
	"testing"

	"repro/internal/graph"
)

// buildManualTransit constructs a TransitResult by hand: AS graph with
// labelled relationship edges.
func buildManualTransit(nAS int, transits [][2]int, peers [][2]int) *TransitResult {
	as := graph.New(nAS)
	for i := 0; i < nAS; i++ {
		as.AddNode(graph.Node{Kind: graph.KindPeering})
	}
	tr := &TransitResult{ASAll: as, Tier: make([]int, nAS)}
	for _, t := range transits { // t[0] = customer, t[1] = provider
		as.AddEdge(graph.Edge{U: t[0], V: t[1], Weight: 1, Cable: 1})
		tr.Links = append(tr.Links, TransitLink{Customer: t[0], Provider: t[1]})
	}
	for _, p := range peers {
		as.AddEdge(graph.Edge{U: p[0], V: p[1], Weight: 1, Cable: 0})
	}
	return tr
}

func TestValleyFreeUpDownPath(t *testing.T) {
	// 0 and 1 are customers of provider 2: 0 -> 2 -> 1 is valley-free.
	tr := buildManualTransit(3, [][2]int{{0, 2}, {1, 2}}, nil)
	res, err := ValleyFree(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable[0][1] || res.Hops[0][1] != 2 {
		t.Fatalf("0->1 should be reachable in 2 hops: %v %d", res.Reachable[0][1], res.Hops[0][1])
	}
	if res.ReachableFrac != 1 {
		t.Fatalf("full reachability expected, got %v", res.ReachableFrac)
	}
}

func TestValleyFreeBlocksValley(t *testing.T) {
	// Chain: 1 is provider of 0; 1 is customer of 2; 3 is customer of 2.
	// 0 -> 1 -> 2 -> 3 climbs then descends: valley-free, OK.
	// But: 0 and 4 both customers of 1 only; 4 -> 1 -> 0 is up-down OK.
	// The forbidden case: 1 and 3 are providers of nobody shared; a path
	// 1 -> 0 -> ... cannot climb again after descending to 0.
	tr := buildManualTransit(5,
		[][2]int{{0, 1}, {1, 2}, {3, 2}, {4, 1}},
		nil)
	res, err := ValleyFree(tr)
	if err != nil {
		t.Fatal(err)
	}
	// 4 -> 1 -> 2 -> 3: up, up, down — fine.
	if !res.Reachable[4][3] {
		t.Fatal("4 should reach 3 via providers")
	}
	// Everything reaches everything here because the tree is fully
	// provider-connected; verify hop counts reflect up-then-down.
	if res.Hops[0][3] != 3 {
		t.Fatalf("0->3 hops = %d, want 3 (0-1-2-3)", res.Hops[0][3])
	}
}

func TestValleyFreeSinglePeerHop(t *testing.T) {
	// Two provider trees joined only by a peer edge between the roots:
	// leaves of one tree reach leaves of the other through the single
	// peer crossing.
	tr := buildManualTransit(6,
		[][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}},
		[][2]int{{2, 5}})
	res, err := ValleyFree(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable[0][3] {
		t.Fatal("0 should reach 3 via the peer bridge")
	}
	if res.Hops[0][3] != 5 {
		t.Fatalf("0->3 hops = %d, want 5 (0-1-2~5-4-3)", res.Hops[0][3])
	}
}

func TestValleyFreeTwoPeerHopsForbidden(t *testing.T) {
	// Three stub ASes connected in a peer chain 0~1~2: 0 cannot reach 2
	// (two lateral hops), though 0 reaches 1.
	tr := buildManualTransit(3, nil, [][2]int{{0, 1}, {1, 2}})
	res, err := ValleyFree(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable[0][1] {
		t.Fatal("0 should reach its peer 1")
	}
	if res.Reachable[0][2] {
		t.Fatal("0 must not reach 2 across two peer hops")
	}
}

func TestValleyFreeNoExportThroughCustomer(t *testing.T) {
	// 1 is customer of both 0 and 2 (multihomed stub). 0 must NOT reach
	// 2 through 1 (a customer does not transit its providers): the path
	// 0 -> 1 is a descent, after which climbing 1 -> 2 is a valley.
	tr := buildManualTransit(3, [][2]int{{1, 0}, {1, 2}}, nil)
	res, err := ValleyFree(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable[0][2] {
		t.Fatal("providers must not reach each other through a shared customer")
	}
	if !res.Reachable[0][1] || !res.Reachable[1][2] {
		t.Fatal("direct customer relationships must work both ways")
	}
}

func TestValleyFreeOnAssembledInternet(t *testing.T) {
	inet := skewedInternet(t, 61, 12)
	tr, err := AssignTransit(inet, TransitConfig{ProvidersPerCustomer: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValleyFree(tr)
	if err != nil {
		t.Fatal(err)
	}
	// With tier-1s densely peered (cheap setup) and everyone buying
	// transit upward, reachability should be (near-)complete.
	if res.ReachableFrac < 0.95 {
		t.Fatalf("assembled internet valley-free reachability = %v, want >= 0.95", res.ReachableFrac)
	}
	if res.AvgHops <= 1 {
		t.Fatalf("avg AS path length = %v, implausibly short", res.AvgHops)
	}
}

func TestValleyFreeNilInput(t *testing.T) {
	if _, err := ValleyFree(nil); err == nil {
		t.Fatal("nil input should error")
	}
}
