package peering

import (
	"errors"
	"testing"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/traffic"
	"repro/internal/trafficreg"
)

func testGeo(t *testing.T, seed int64) *traffic.Geography {
	t.Helper()
	g, err := traffic.GenerateGeography(traffic.GeographyConfig{
		NumCities: 15, Seed: seed, ZipfExponent: 1.0, MinSeparation: 0.04,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func baseCfg(t *testing.T, seed int64) Config {
	return Config{
		Geography:        testGeo(t, seed),
		NumISPs:          6,
		Seed:             seed,
		POPsPerISP:       5,
		CustomersPerISP:  60,
		PeeringSetupCost: 1e-9,
	}
}

func TestAssembleBasics(t *testing.T) {
	inet, err := Assemble(baseCfg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(inet.ISPs) != 6 {
		t.Fatalf("ISPs = %d", len(inet.ISPs))
	}
	if inet.AS.NumNodes() != 6 {
		t.Fatalf("AS nodes = %d", inet.AS.NumNodes())
	}
	if inet.Router.NumNodes() == 0 {
		t.Fatal("empty router graph")
	}
	// Router graph contains every ISP's nodes.
	total := 0
	for _, ispInst := range inet.ISPs {
		total += ispInst.Design.Graph.NumNodes()
	}
	if inet.Router.NumNodes() != total {
		t.Fatalf("router nodes = %d, want %d", inet.Router.NumNodes(), total)
	}
}

// TestAssembleDemandModels assembles the internet under registry demand
// models: the zero Selection reproduces explicit gravity defaults
// bit-for-bit, another model still assembles, and a bad selection fails
// as ErrBadParam.
func TestAssembleDemandModels(t *testing.T) {
	def, err := Assemble(baseCfg(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(t, 9)
	cfg.Demand = trafficreg.Selection{Name: "gravity"}
	grav, err := Assemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(grav.Peerings) != len(def.Peerings) {
		t.Fatalf("explicit gravity peerings %d != default %d", len(grav.Peerings), len(def.Peerings))
	}
	for i := range def.Peerings {
		if def.Peerings[i] != grav.Peerings[i] {
			t.Fatalf("peering %d differs: %+v vs %+v", i, def.Peerings[i], grav.Peerings[i])
		}
	}
	cfg = baseCfg(t, 9)
	cfg.Demand = trafficreg.Selection{Name: "zipf-hotspot", Params: trafficreg.Params{"exponent": 2}}
	hot, err := Assemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot.ISPs) != 6 || hot.Router.NumNodes() == 0 {
		t.Fatalf("hotspot-demand assembly implausible: %d ISPs", len(hot.ISPs))
	}
	cfg = baseCfg(t, 9)
	cfg.Demand = trafficreg.Selection{Name: "nope"}
	if _, err := Assemble(cfg); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("unknown demand model gave %v, want ErrBadParam", err)
	}
}

func TestPeeringsAtSharedCitiesOnly(t *testing.T) {
	inet, err := Assemble(baseCfg(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range inet.Peerings {
		a := inet.ISPs[p.A].Design
		b := inet.ISPs[p.B].Design
		inA, inB := false, false
		for _, c := range a.POPCity {
			if c == p.CityA {
				inA = true
			}
		}
		for _, c := range b.POPCity {
			if c == p.CityA {
				inB = true
			}
		}
		if !inA || !inB {
			t.Fatalf("peering at city %d not shared by both ISPs", p.CityA)
		}
	}
}

func TestASEdgesMatchPeerings(t *testing.T) {
	inet, err := Assemble(baseCfg(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[[2]int]bool{}
	for _, p := range inet.Peerings {
		pairs[[2]int{p.A, p.B}] = true
	}
	if inet.AS.NumEdges() != len(pairs) {
		t.Fatalf("AS edges = %d, distinct peered pairs = %d", inet.AS.NumEdges(), len(pairs))
	}
}

func TestHighSetupCostSuppressesPeering(t *testing.T) {
	cfg := baseCfg(t, 4)
	cheap, err := Assemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PeeringSetupCost = 1e12
	pricey, err := Assemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pricey.Peerings) >= len(cheap.Peerings) && len(cheap.Peerings) > 0 {
		t.Fatalf("setup cost did not suppress peering: %d vs %d",
			len(pricey.Peerings), len(cheap.Peerings))
	}
}

func TestBigCitiesHostMorePeerings(t *testing.T) {
	// §2.1: "most national or global ISPs peer for interconnection in the
	// big cities". City 0 is the biggest; its peering count should be at
	// least that of the smallest city.
	inet, err := Assemble(baseCfg(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(inet.Peerings) == 0 {
		t.Skip("no peerings formed on this seed")
	}
	counts := map[int]int{}
	for _, p := range inet.Peerings {
		counts[p.CityA]++
	}
	nCities := len(inet.ISPs[0].Design.POPCity) // not meaningful; use geography
	_ = nCities
	big := counts[0]
	small := counts[14]
	if big < small {
		t.Fatalf("big city peerings %d < small city %d", big, small)
	}
}

func TestMaxPeeringsPerPair(t *testing.T) {
	cfg := baseCfg(t, 6)
	cfg.MaxPeeringsPerPair = 1
	inet, err := Assemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := map[[2]int]int{}
	for _, p := range inet.Peerings {
		count[[2]int{p.A, p.B}]++
		if count[[2]int{p.A, p.B}] > 1 {
			t.Fatal("pair peered more than MaxPeeringsPerPair")
		}
	}
}

func TestRouterGraphHasPeeringEdges(t *testing.T) {
	inet, err := Assemble(baseCfg(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	intra := 0
	for _, ispInst := range inet.ISPs {
		intra += ispInst.Design.Graph.NumEdges()
	}
	if inet.Router.NumEdges() != intra+len(inet.Peerings) {
		t.Fatalf("router edges = %d, want %d intra + %d peering",
			inet.Router.NumEdges(), intra, len(inet.Peerings))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Assemble(Config{}); err == nil {
		t.Fatal("empty config should error")
	}
	geo := testGeo(t, 8)
	if _, err := Assemble(Config{Geography: geo, NumISPs: 0, POPsPerISP: 2}); err == nil {
		t.Fatal("0 ISPs should error")
	}
	if _, err := Assemble(Config{Geography: geo, NumISPs: 2, POPsPerISP: 0}); err == nil {
		t.Fatal("0 POPs should error")
	}
}

func TestRouterOffsetsIndexISPs(t *testing.T) {
	inet, err := Assemble(baseCfg(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range inet.ISPs {
		off := inet.RouterOffset[i]
		n0 := inet.Router.Node(off)
		if n0.Kind != graph.KindPOP {
			t.Fatalf("ISP %d offset node kind = %v, want pop (designs start with POPs)", i, n0.Kind)
		}
	}
}

func TestDeterministicAssembly(t *testing.T) {
	a, err := Assemble(baseCfg(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assemble(baseCfg(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Peerings) != len(b.Peerings) || a.Router.NumEdges() != b.Router.NumEdges() {
		t.Fatal("assembly not deterministic")
	}
}
