package peering

import (
	"testing"
)

func skewedInternet(t *testing.T, seed int64, nISPs int) *Internet {
	t.Helper()
	inet, err := Assemble(Config{
		Geography:        testGeo(t, seed),
		NumISPs:          nISPs,
		Seed:             seed,
		POPsPerISP:       10,
		CustomersPerISP:  0,
		PeeringSetupCost: 1e-6,
		SizeSkew:         1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inet
}

func TestAssignTransitBasics(t *testing.T) {
	inet := skewedInternet(t, 31, 12)
	res, err := AssignTransit(inet, TransitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tier) != 12 {
		t.Fatalf("tiers = %d", len(res.Tier))
	}
	// Default tier-1 count: 12/4 = 3.
	tier1 := 0
	for _, tr := range res.Tier {
		if tr < 1 {
			t.Fatalf("tier %d < 1", tr)
		}
		if tr == 1 {
			tier1++
		}
	}
	if tier1 < 3 {
		t.Fatalf("tier-1 count = %d, want >= 3", tier1)
	}
	// Every non-tier-1 ISP has at least one provider link.
	hasProvider := map[int]bool{}
	for _, l := range res.Links {
		hasProvider[l.Customer] = true
	}
	for i, tr := range res.Tier {
		if tr > 1 && !hasProvider[i] {
			t.Fatalf("ISP %d at tier %d has no provider", i, tr)
		}
	}
}

func TestTransitFlowsDownhill(t *testing.T) {
	inet := skewedInternet(t, 32, 10)
	res, err := AssignTransit(inet, TransitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	size := func(i int) int { return len(inet.ISPs[i].Design.POPs) }
	for _, l := range res.Links {
		if size(l.Provider) < size(l.Customer) {
			t.Fatalf("provider %d (size %d) smaller than customer %d (size %d)",
				l.Provider, size(l.Provider), l.Customer, size(l.Customer))
		}
	}
}

func TestTransitASGraphConnectedAndKinds(t *testing.T) {
	inet := skewedInternet(t, 33, 12)
	res, err := AssignTransit(inet, TransitConfig{ProvidersPerCustomer: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ASAll.NumNodes() != 12 {
		t.Fatalf("AS nodes = %d", res.ASAll.NumNodes())
	}
	// With tier-1 clique-ish peering and everyone buying transit, the AS
	// graph should be connected.
	if !res.ASAll.IsConnected() {
		t.Fatal("AS graph with transit should be connected")
	}
	kinds := map[int]int{}
	for _, e := range res.ASAll.Edges() {
		kinds[e.Cable]++
	}
	if kinds[1] == 0 {
		t.Fatal("no transit edges recorded in the AS graph")
	}
}

func TestTransitSkewMakesHubs(t *testing.T) {
	// The §3.2 connection: skewed ISP sizes + transit economics make a
	// hub-dominated AS graph. Suppress peering entirely (prohibitive
	// setup cost) so the business hierarchy alone shapes degrees.
	inet, err := Assemble(Config{
		Geography:        testGeo(t, 34),
		NumISPs:          16,
		Seed:             34,
		POPsPerISP:       10,
		CustomersPerISP:  0,
		PeeringSetupCost: 1e12,
		SizeSkew:         1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := AssignTransit(inet, TransitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	deg := res.ASAll.Degrees()
	max, sum := 0, 0
	for _, d := range deg {
		sum += d
		if d > max {
			max = d
		}
	}
	mean := float64(sum) / float64(len(deg))
	if float64(max) < 2*mean {
		t.Fatalf("AS graph not hub-dominated: max %d vs mean %.1f", max, mean)
	}
}

func TestAssignTransitEmpty(t *testing.T) {
	if _, err := AssignTransit(&Internet{}, TransitConfig{}); err == nil {
		t.Fatal("empty internet should error")
	}
}

func TestAssignTransitDeterministic(t *testing.T) {
	inet := skewedInternet(t, 35, 10)
	a, err := AssignTransit(inet, TransitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssignTransit(inet, TransitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Links) != len(b.Links) {
		t.Fatal("transit assignment not deterministic")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatal("transit link order not deterministic")
		}
	}
}

func TestSizeSkewProducesHeterogeneousISPs(t *testing.T) {
	inet := skewedInternet(t, 36, 10)
	big := len(inet.ISPs[0].Design.POPs)
	small := len(inet.ISPs[9].Design.POPs)
	if big <= small {
		t.Fatalf("size skew ineffective: first %d, last %d", big, small)
	}
	if small < 2 {
		t.Fatalf("minimum ISP size violated: %d", small)
	}
}
