// Package peering assembles an Internet from individual ISPs, per the
// paper's §2.3: "the Internet as a whole is simply a conglomeration of
// interconnected ISPs". It decides where competing ISPs peer (an
// optimization over shared presence and traffic-exchange gain), wires the
// router-level interconnections, and extracts the AS-level graph.
package peering

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/isp"
	"repro/internal/rng"
	"repro/internal/traffic"
	"repro/internal/trafficreg"
)

// ISPInstance is one provider in the internet model.
type ISPInstance struct {
	Name   string
	Design *isp.Design
}

// PeeringLink is one inter-ISP connection at a shared city.
type PeeringLink struct {
	A, B      int // ISP indices
	CityA     int // POP city index within A's geography (shared geography)
	RouterA   int // node id in A's graph
	RouterB   int // node id in B's graph
	Gain      float64
	SetupCost float64
}

// Config parameterizes internet assembly.
type Config struct {
	Geography *traffic.Geography
	NumISPs   int
	Seed      int64
	// POPsPerISP and CustomersPerISP size each provider; customers can be
	// zero for backbone-only studies.
	POPsPerISP      int
	CustomersPerISP int
	// PeeringSetupCost is the fixed cost of establishing one peering
	// interconnect; a pair of ISPs peers at a city only when the
	// estimated traffic-exchange gain exceeds it.
	PeeringSetupCost float64
	// MaxPeeringsPerPair caps interconnects between one pair of ISPs.
	MaxPeeringsPerPair int
	// SizeSkew > 0 makes provider footprints heterogeneous: ISP i gets
	// max(2, round(POPsPerISP * (i+1)^-SizeSkew)) POPs, a Zipf-like size
	// distribution across providers. 0 keeps all ISPs the same size.
	SizeSkew float64
	// Demand names the registered traffic model (internal/trafficreg)
	// whose city-to-city demand scores peering candidates and drives
	// each member ISP's backbone augmentation. The zero Selection is
	// gravity with its defaults — the paper's §2.2 canonical input.
	Demand trafficreg.Selection
}

// Internet is the assembled multi-ISP topology.
type Internet struct {
	ISPs     []ISPInstance
	Peerings []PeeringLink
	// Router is the merged router-level graph; RouterOffset[i] is where
	// ISP i's nodes start within it.
	Router       *graph.Graph
	RouterOffset []int
	// AS is the AS-level graph: one node per ISP, an edge per peered
	// pair (§1: a link between two ASs indicates at least one
	// router-level connection).
	AS *graph.Graph
}

// Assemble builds the internet model.
func Assemble(cfg Config) (*Internet, error) {
	return AssembleContext(context.Background(), cfg)
}

// AssembleContext is Assemble with cancellation: the context is checked
// before each member ISP buildout (the dominant cost) and threaded into
// the single-ISP designer, returning an errs.ErrCanceled-wrapping error
// when it is done.
func AssembleContext(ctx context.Context, cfg Config) (*Internet, error) {
	if cfg.Geography == nil || len(cfg.Geography.Cities) == 0 {
		return nil, errs.BadParamf("peering: missing geography")
	}
	if cfg.NumISPs < 1 {
		return nil, errs.BadParamf("peering: need at least one ISP")
	}
	if cfg.POPsPerISP < 1 {
		return nil, errs.BadParamf("peering: need at least one POP per ISP")
	}
	setup := cfg.PeeringSetupCost
	if setup <= 0 {
		setup = 1e-6
	}
	maxPer := cfg.MaxPeeringsPerPair
	if maxPer <= 0 {
		maxPer = 2
	}

	inet := &Internet{}
	// --- Build each ISP with its own footprint ----------------------------
	for i := 0; i < cfg.NumISPs; i++ {
		if err := errs.Ctx(ctx); err != nil {
			return nil, fmt.Errorf("peering: ISP %d: %w", i, err)
		}
		seed := rng.Derive(cfg.Seed, i)
		pops := cfg.POPsPerISP
		if cfg.SizeSkew > 0 {
			pops = int(math.Round(float64(cfg.POPsPerISP) * math.Pow(float64(i+1), -cfg.SizeSkew)))
			if pops < 2 {
				pops = 2
			}
		}
		// Each ISP picks POP cities with a bias toward big cities but
		// with provider-specific randomness: weighted sampling without
		// replacement by population.
		des, err := buildMemberISP(ctx, cfg, pops, seed)
		if err != nil {
			return nil, fmt.Errorf("peering: ISP %d: %w", i, err)
		}
		inet.ISPs = append(inet.ISPs, ISPInstance{
			Name:   fmt.Sprintf("isp-%02d", i),
			Design: des,
		})
	}

	// --- Decide peerings ---------------------------------------------------
	// Two ISPs peer at a shared POP city when the configured demand
	// model's traffic between their footprints routed through that city
	// justifies the setup cost.
	dm, err := trafficreg.GenerateDemand(ctx, cfg.Geography, cfg.Demand, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("peering: demand: %w", err)
	}
	for a := 0; a < cfg.NumISPs; a++ {
		for b := a + 1; b < cfg.NumISPs; b++ {
			shared := sharedCities(inet.ISPs[a].Design, inet.ISPs[b].Design)
			if len(shared) == 0 {
				continue
			}
			type scored struct {
				city int
				gain float64
			}
			var cands []scored
			for _, city := range shared {
				// Traffic exchange gain proxy: demand between this city
				// and every city in the other ISP's footprint.
				gain := 0.0
				for _, cb := range inet.ISPs[b].Design.POPCity {
					if cb != city {
						gain += dm[city][cb]
					}
				}
				for _, ca := range inet.ISPs[a].Design.POPCity {
					if ca != city {
						gain += dm[city][ca]
					}
				}
				cands = append(cands, scored{city, gain})
			}
			sort.Slice(cands, func(x, y int) bool {
				if cands[x].gain != cands[y].gain {
					return cands[x].gain > cands[y].gain
				}
				return cands[x].city < cands[y].city
			})
			for k, cand := range cands {
				if k >= maxPer || cand.gain < setup {
					break
				}
				ra := popRouterAtCity(inet.ISPs[a].Design, cand.city)
				rb := popRouterAtCity(inet.ISPs[b].Design, cand.city)
				inet.Peerings = append(inet.Peerings, PeeringLink{
					A: a, B: b, CityA: cand.city,
					RouterA: ra, RouterB: rb,
					Gain: cand.gain, SetupCost: setup,
				})
			}
		}
	}

	inet.buildMergedGraphs(cfg)
	return inet, nil
}

// buildMemberISP constructs one provider: POPs sampled by population
// weight (the big cities attract every provider — §2.1), metro access as
// in the single-ISP designer.
func buildMemberISP(ctx context.Context, cfg Config, k int, seed int64) (*isp.Design, error) {
	geo := cfg.Geography
	r := rng.New(seed)
	if k > len(geo.Cities) {
		k = len(geo.Cities)
	}
	// Weighted sampling of POP cities without replacement.
	weights := make([]float64, len(geo.Cities))
	for i, c := range geo.Cities {
		weights[i] = c.Population
	}
	chosen := map[int]bool{}
	for len(chosen) < k {
		idx := rng.WeightedChoice(r, weights)
		if !chosen[idx] {
			chosen[idx] = true
			weights[idx] = 0
		}
	}
	// The isp designer picks top cities; emulate arbitrary footprints by
	// building a sub-geography of only the chosen cities, remembering the
	// original indices in order.
	cities := make([]int, 0, k)
	for idx := range chosen {
		cities = append(cities, idx)
	}
	sort.Ints(cities)
	sub := &traffic.Geography{Region: geo.Region}
	for _, ci := range cities {
		sub.Cities = append(sub.Cities, geo.Cities[ci])
	}
	des, err := isp.BuildContext(ctx, isp.Config{
		Geography:             sub,
		NumPOPs:               k,
		Customers:             cfg.CustomersPerISP,
		Seed:                  seed,
		PerfWeight:            30,
		MaxExtraBackboneLinks: 2,
		DemandMin:             1,
		Demand:                cfg.Demand,
	})
	if err != nil {
		return nil, err
	}
	// Remap POPCity back to the full geography's city indices. The
	// sub-geography re-sorts by population; match POPs to original
	// indices by location.
	for i, pid := range des.POPs {
		n := des.Graph.Node(pid)
		best, bestD := -1, math.Inf(1)
		for _, ci := range cities {
			c := geo.Cities[ci]
			dx, dy := c.Loc.X-n.X, c.Loc.Y-n.Y
			if d := dx*dx + dy*dy; d < bestD {
				best, bestD = ci, d
			}
		}
		des.POPCity[i] = best
	}
	return des, nil
}

func sharedCities(a, b *isp.Design) []int {
	inA := map[int]bool{}
	for _, c := range a.POPCity {
		inA[c] = true
	}
	var out []int
	for _, c := range b.POPCity {
		if inA[c] {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

func popRouterAtCity(d *isp.Design, city int) int {
	for i, c := range d.POPCity {
		if c == city {
			return d.POPs[i]
		}
	}
	return -1
}

// buildMergedGraphs constructs the router-level union graph and the AS
// graph.
func (inet *Internet) buildMergedGraphs(cfg Config) {
	router := graph.New(0)
	offsets := make([]int, len(inet.ISPs))
	for i, ispInst := range inet.ISPs {
		offsets[i] = router.NumNodes()
		g := ispInst.Design.Graph
		for v := 0; v < g.NumNodes(); v++ {
			n := *g.Node(v)
			n.Label = fmt.Sprintf("%s/%s", ispInst.Name, n.Label)
			router.AddNode(n)
		}
		for _, e := range g.Edges() {
			ne := e
			ne.U += offsets[i]
			ne.V += offsets[i]
			router.AddEdge(ne)
		}
	}
	asGraph := graph.New(len(inet.ISPs))
	for _, ispInst := range inet.ISPs {
		asGraph.AddNode(graph.Node{Kind: graph.KindPeering, Label: ispInst.Name})
	}
	asSeen := map[[2]int]bool{}
	for _, p := range inet.Peerings {
		if p.RouterA < 0 || p.RouterB < 0 {
			continue
		}
		u := p.RouterA + offsets[p.A]
		v := p.RouterB + offsets[p.B]
		nu, nv := router.Node(u), router.Node(v)
		dx, dy := nu.X-nv.X, nu.Y-nv.Y
		router.AddEdge(graph.Edge{U: u, V: v, Weight: math.Hypot(dx, dy) + 1e-9, Cable: -1})
		key := [2]int{p.A, p.B}
		if !asSeen[key] {
			asSeen[key] = true
			asGraph.AddEdge(graph.Edge{U: p.A, V: p.B, Weight: 1})
		}
	}
	inet.Router = router
	inet.RouterOffset = offsets
	inet.AS = asGraph
}
