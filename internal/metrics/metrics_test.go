package metrics

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.Edge{U: i, V: i + 1, Weight: 1})
	}
	return g
}

func star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.Edge{U: 0, V: i, Weight: 1})
	}
	return g
}

func complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
		}
	}
	return g
}

func randomGraph(seed int64, n int, p float64) *graph.Graph {
	r := rng.New(seed)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(graph.Node{})
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				g.AddEdge(graph.Edge{U: u, V: v, Weight: 1})
			}
		}
	}
	return g
}

func TestExpansionCompleteReachesAllAtOneHop(t *testing.T) {
	exp := Expansion(complete(20), 2, 0, 1)
	if math.Abs(exp[1]-1) > 1e-12 {
		t.Fatalf("complete graph expansion at h=1 is %v, want 1", exp[1])
	}
}

func TestExpansionPathSlow(t *testing.T) {
	n := 100
	exp := Expansion(path(n), 3, 0, 1)
	// On a long path, a ball of radius 3 holds at most 7 of 100 nodes.
	if exp[3] > 7.0/float64(n)+1e-9 {
		t.Fatalf("path expansion at h=3 is %v, too high", exp[3])
	}
	// Monotone in h.
	for h := 1; h < len(exp); h++ {
		if exp[h] < exp[h-1] {
			t.Fatal("expansion must be non-decreasing in h")
		}
	}
}

func TestExpansionStarFast(t *testing.T) {
	exp := Expansion(star(50), 2, 0, 1)
	if math.Abs(exp[2]-1) > 1e-12 {
		t.Fatalf("star expansion at h=2 = %v, want 1", exp[2])
	}
}

func TestExpansionEmpty(t *testing.T) {
	if Expansion(graph.New(0), 3, 0, 1) != nil {
		t.Fatal("empty graph expansion should be nil")
	}
}

func TestResilienceOrdering(t *testing.T) {
	// A complete graph must be more resilient than a star of the same n.
	rc := Resilience(complete(40), 8, 3, 7)
	rs := Resilience(star(40), 8, 3, 7)
	if rc <= rs {
		t.Fatalf("complete resilience %v should exceed star %v", rc, rs)
	}
	if rc <= 0 || rc > 1 {
		t.Fatalf("resilience %v out of (0,1]", rc)
	}
}

func TestResilienceStarVsPath(t *testing.T) {
	// A star dies when the hub dies; a path degrades more gradually in
	// expectation under random removal — but early hub loss is only 1/n
	// likely, so star should actually beat path. Just check both in range.
	rs := Resilience(star(30), 8, 5, 3)
	rp := Resilience(path(30), 8, 5, 3)
	for _, v := range []float64{rs, rp} {
		if v <= 0 || v > 1 {
			t.Fatalf("resilience %v out of range", v)
		}
	}
}

func TestDistortionTreeIsOne(t *testing.T) {
	if d := Distortion(path(30), 0, 1); math.Abs(d-1) > 1e-12 {
		t.Fatalf("tree distortion = %v, want 1", d)
	}
	if d := Distortion(star(30), 0, 1); math.Abs(d-1) > 1e-12 {
		t.Fatalf("star distortion = %v, want 1", d)
	}
}

func TestDistortionMeshAboveOne(t *testing.T) {
	d := Distortion(complete(15), 0, 1)
	if d <= 1 {
		t.Fatalf("complete graph distortion = %v, want > 1", d)
	}
}

func TestDistortionEmpty(t *testing.T) {
	if Distortion(graph.New(0), 0, 1) != 0 {
		t.Fatal("empty graph distortion should be 0")
	}
}

func TestHierarchyDepthStarVsPath(t *testing.T) {
	hs := HierarchyDepth(star(64), 0)
	hp := HierarchyDepth(path(64), 0)
	if hs >= hp {
		t.Fatalf("star depth %v should be below path depth %v", hs, hp)
	}
	// Star rooted at hub: all depths 1 → 1/log2(64) = 1/6.
	if math.Abs(hs-1.0/6.0) > 1e-9 {
		t.Fatalf("star hierarchy depth = %v, want %v", hs, 1.0/6.0)
	}
}

func TestHierarchyDepthAutoRoot(t *testing.T) {
	// With root=-1 the max-betweenness node is used; for a path that is
	// the middle, halving the mean depth vs rooting at an end.
	h := HierarchyDepth(path(33), -1)
	hEnd := HierarchyDepth(path(33), 0)
	if h >= hEnd {
		t.Fatalf("auto-rooted depth %v should be below end-rooted %v", h, hEnd)
	}
}

func TestHierarchyDepthTrivial(t *testing.T) {
	if HierarchyDepth(graph.New(0), -1) != 0 {
		t.Fatal("empty hierarchy depth should be 0")
	}
	g := graph.New(1)
	g.AddNode(graph.Node{})
	if HierarchyDepth(g, 0) != 0 {
		t.Fatal("single-node hierarchy depth should be 0")
	}
}

func TestSpectralGapOrdering(t *testing.T) {
	// Complete graph has the largest possible gap; a path has a tiny one.
	gc := SpectralGap(complete(20), 300)
	gp := SpectralGap(path(20), 300)
	if gc <= gp {
		t.Fatalf("complete gap %v should exceed path gap %v", gc, gp)
	}
	if gp <= 0 {
		t.Fatalf("path gap %v should be positive", gp)
	}
}

func TestSpectralGapCompleteKnown(t *testing.T) {
	// Normalized Laplacian of K_n has lambda_2 = n/(n-1).
	n := 12
	got := SpectralGap(complete(n), 500)
	want := float64(n) / float64(n-1)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("K_%d spectral gap = %v, want ~%v", n, got, want)
	}
}

func TestSpectralGapDisconnected(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1})
	g.AddEdge(graph.Edge{U: 2, V: 3})
	if SpectralGap(g, 100) != 0 {
		t.Fatal("disconnected graph should report zero gap")
	}
}

func TestComputeProfileSane(t *testing.T) {
	g := randomGraph(5, 120, 0.05)
	p := ComputeProfile(g, 11)
	if p.Nodes != 120 {
		t.Fatalf("profile nodes = %d", p.Nodes)
	}
	if p.ExpansionAt3 < 0 || p.ExpansionAt3 > 1 {
		t.Fatalf("expansion@3 = %v", p.ExpansionAt3)
	}
	if p.Resilience < 0 || p.Resilience > 1 {
		t.Fatalf("resilience = %v", p.Resilience)
	}
}

func TestProfileDeterministic(t *testing.T) {
	g := randomGraph(6, 80, 0.08)
	a := ComputeProfile(g, 3)
	b := ComputeProfile(g, 3)
	if a != b {
		t.Fatalf("profile not deterministic: %+v vs %+v", a, b)
	}
}
