// Package metrics implements the topology comparison metrics the paper
// points to (reference [30], Tangmunarunkit et al., "Network topology
// generators: Degree-based vs. structural"): expansion, resilience, and
// distortion, plus hierarchy depth and a spectral characterization.
//
// These metrics are what experiment E7 uses to demonstrate the paper's
// §1 claim: a generator tuned to match one metric (the degree
// distribution) can still "look very dissimilar on others."
//
// ComputeProfile freezes the graph into one shared CSR snapshot
// (internal/graph) and evaluates the metric families concurrently, each
// on pooled workspaces; every reduction is performed in a fixed order,
// so results are identical for any worker count. ProfileContext is the
// cancellable variant used by the scenario engine: it accepts a
// caller-provided frozen snapshot (so cached topologies are never
// re-frozen) and checks its context at iteration boundaries, returning
// an errs.ErrCanceled-wrapping error when the context is done.
package metrics

import (
	"context"
	"math"
	"sort"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
)

// Expansion measures how rapidly BFS balls grow: the average, over sample
// source nodes, of the fraction of nodes reachable within h hops, for each
// h up to maxH. High expansion ⇒ the graph "spreads" quickly (low
// diameter); trees expand slowly, well-connected meshes fast.
//
// sampleSources bounds the number of BFS sources (all nodes if <= 0 or
// larger than n); sources are chosen deterministically from seed.
func Expansion(g *graph.Graph, maxH, sampleSources int, seed int64) []float64 {
	out, _ := expansionCSR(context.Background(), g.Freeze(), maxH, sampleSources, seed, 0)
	return out
}

func expansionCSR(ctx context.Context, c *graph.CSR, maxH, sampleSources int, seed int64, workers int) ([]float64, error) {
	n := c.NumNodes()
	if n == 0 || maxH <= 0 {
		return nil, nil
	}
	sources := chooseSources(n, sampleSources, seed)
	// One hop-histogram row per source, filled in parallel (disjoint
	// writes), then reduced in source order for determinism.
	counts := make([][]int, len(sources))
	err := par.ForEachErr(workers, len(sources), func(si int) error {
		if err := errs.Ctx(ctx); err != nil {
			return err
		}
		ws := graph.GetWorkspace(n)
		defer ws.Release()
		c.BFS(ws, sources[si])
		row := make([]int, maxH+1)
		for _, d := range ws.Hop[:n] {
			if d >= 0 && int(d) <= maxH {
				row[d]++
			}
		}
		counts[si] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, maxH+1)
	for _, row := range counts {
		acc := 0
		for h := 0; h <= maxH; h++ {
			acc += row[h]
			out[h] += float64(acc) / float64(n)
		}
	}
	for h := range out {
		out[h] /= float64(len(sources))
	}
	return out, nil
}

// Resilience measures how gracefully connectivity degrades under random
// node removal: it returns the area under the curve of (largest component
// fraction) vs (fraction removed), estimated over `trials` random removal
// orders at `steps` removal fractions. 1.0 would mean the graph never
// fragments; lower is less resilient.
//
// Each trial incrementally extends one removal mask and re-measures the
// largest component on the shared snapshot — no subgraph copies — and
// trials run in parallel.
func Resilience(g *graph.Graph, steps, trials int, seed int64) float64 {
	out, _ := resilienceCSR(context.Background(), g.Freeze(), steps, trials, seed, 0)
	return out
}

func resilienceCSR(ctx context.Context, c *graph.CSR, steps, trials int, seed int64, workers int) (float64, error) {
	n := c.NumNodes()
	if n == 0 || steps <= 0 || trials <= 0 {
		return 0, nil
	}
	perTrial := make([]float64, trials)
	err := par.ForEachErr(workers, trials, func(trial int) error {
		if err := errs.Ctx(ctx); err != nil {
			return err
		}
		r := rng.New(rng.Derive(seed, trial))
		perm := rng.Shuffle(r, n)
		ws := graph.GetWorkspace(n)
		defer ws.Release()
		removed := make([]bool, n)
		prev := 0
		sum := 0.0
		for s := 1; s <= steps; s++ {
			frac := float64(s) / float64(steps+1)
			k := int(frac * float64(n))
			for ; prev < k; prev++ {
				removed[perm[prev]] = true
			}
			sum += float64(c.LargestComponentMasked(ws, removed)) / float64(n)
		}
		perTrial[trial] = sum
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, s := range perTrial {
		total += s
	}
	return total / float64(steps*trials), nil
}

// Distortion measures how well the graph's own spanning structure
// preserves graph distances: following [30], it is the average, over
// edges of a minimum spanning tree of the graph, of the tree distance
// between the edge's endpoints — equivalently how much the tree "stretches"
// adjacent pairs. A tree has distortion 1; meshes with much redundancy
// have higher distortion.
//
// Implementation: build an MST T (by edge weight; falls back to hop count
// when weights are zero), then average over all *graph* edges (u,v) the
// hop distance between u and v in T, with the per-source tree BFS runs
// fanned out across the worker pool.
func Distortion(g *graph.Graph, sampleEdges int, seed int64) float64 {
	out, _ := distortion(context.Background(), g, sampleEdges, seed, 0)
	return out
}

func distortion(ctx context.Context, g *graph.Graph, sampleEdges int, seed int64, workers int) (float64, error) {
	m := g.NumEdges()
	n := g.NumNodes()
	if m == 0 || n == 0 {
		return 0, nil
	}
	// Build MST as its own graph.
	mstIDs, _ := g.KruskalMST()
	tree := graph.New(n)
	for i := 0; i < n; i++ {
		tree.AddNode(*g.Node(i))
	}
	for _, id := range mstIDs {
		e := g.Edge(id)
		tree.AddEdge(graph.Edge{U: e.U, V: e.V, Weight: e.Weight})
	}
	// Sample non-tree edges (tree edges have distortion exactly 1).
	edges := make([]int, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, i)
	}
	if sampleEdges > 0 && sampleEdges < m {
		r := rng.New(seed)
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		edges = edges[:sampleEdges]
	}
	// Group queries by source to share BFS runs.
	bySrc := map[int][]int{}
	for _, id := range edges {
		e := g.Edge(id)
		bySrc[e.U] = append(bySrc[e.U], e.V)
	}
	srcs := make([]int, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)
	tc := tree.Freeze()
	type partial struct {
		total float64
		count int
	}
	perSrc := make([]partial, len(srcs))
	err := par.ForEachErr(workers, len(srcs), func(si int) error {
		if err := errs.Ctx(ctx); err != nil {
			return err
		}
		ws := graph.GetWorkspace(n)
		defer ws.Release()
		tc.BFS(ws, srcs[si])
		p := partial{}
		for _, v := range bySrc[srcs[si]] {
			if ws.Hop[v] > 0 {
				p.total += float64(ws.Hop[v])
				p.count++
			}
		}
		perSrc[si] = p
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	count := 0
	for _, p := range perSrc {
		total += p.total
		count += p.count
	}
	if count == 0 {
		return 0, nil
	}
	return total / float64(count), nil
}

// HierarchyDepth classifies how tree-like / layered a rooted topology is:
// the mean depth of all nodes below the root divided by log2(n), so a
// balanced binary tree scores ~1, a star ~1/log2(n), and a path ~n/(2
// log2 n). Root is the node with maximum betweenness when root < 0.
func HierarchyDepth(g *graph.Graph, root int) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	if root < 0 {
		bc := g.Betweenness()
		root = 0
		for i, b := range bc {
			if b > bc[root] {
				root = i
			}
		}
	}
	dist, _ := g.BFS(root)
	total, count := 0, 0
	for _, d := range dist {
		if d > 0 {
			total += d
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return (float64(total) / float64(count)) / math.Log2(float64(n))
}

// SpectralGap estimates the second-smallest eigenvalue of the normalized
// Laplacian (the algebraic connectivity proxy) via inverse power iteration
// on the deflated matrix. Larger gap ⇒ better expansion / harder to cut.
// Returns 0 for disconnected or trivial graphs.
func SpectralGap(g *graph.Graph, iters int) float64 {
	if !g.IsConnected() {
		return 0
	}
	out, _ := spectralGapCSR(context.Background(), g.Freeze(), iters)
	return out
}

// spectralGapCSR assumes the snapshot is of a connected graph.
func spectralGapCSR(ctx context.Context, c *graph.CSR, iters int) (float64, error) {
	n := c.NumNodes()
	if n < 2 {
		return 0, nil
	}
	if iters <= 0 {
		iters = 200
	}
	// We find the second-largest eigenvalue mu of the normalized adjacency
	// walk matrix N = D^-1/2 A D^-1/2 by power iteration with deflation of
	// the known top eigenvector v1(i) = sqrt(deg_i). Then lambda2 = 1 - mu.
	invSqrtDeg := make([]float64, n)
	v1 := make([]float64, n)
	norm := 0.0
	for i := 0; i < n; i++ {
		d := float64(c.Degree(i))
		v1[i] = math.Sqrt(d)
		if d > 0 {
			invSqrtDeg[i] = 1 / math.Sqrt(d)
		}
		norm += v1[i] * v1[i]
	}
	norm = math.Sqrt(norm)
	for i := range v1 {
		v1[i] /= norm
	}
	// Deterministic pseudo-random start vector.
	x := make([]float64, n)
	r := rng.New(12345)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	var mu float64
	for it := 0; it < iters; it++ {
		if err := errs.Ctx(ctx); err != nil {
			return 0, err
		}
		// Deflate: x ← x - (v1·x) v1.
		dot := 0.0
		for i := range x {
			dot += x[i] * v1[i]
		}
		for i := range x {
			x[i] -= dot * v1[i]
		}
		// y = (N + I)/2 * x  — shift to make all eigenvalues non-negative,
		// preserving order. (N's spectrum lies in [-1, 1].)
		for i := range y {
			y[i] = 0
		}
		for u := 0; u < n; u++ {
			if invSqrtDeg[u] == 0 {
				continue
			}
			xu := x[u]
			c.Neighbors(u, func(v int, _ int, _ float64) {
				y[v] += xu * invSqrtDeg[u] * invSqrtDeg[v]
			})
		}
		for i := range y {
			y[i] = (y[i] + x[i]) / 2
		}
		// Rayleigh quotient for (N+I)/2, then undo the shift.
		num, den := 0.0, 0.0
		for i := range y {
			num += y[i] * x[i]
			den += x[i] * x[i]
		}
		if den == 0 {
			return 0, nil
		}
		shifted := num / den
		mu = 2*shifted - 1
		// Normalize and continue.
		ynorm := 0.0
		for i := range y {
			ynorm += y[i] * y[i]
		}
		ynorm = math.Sqrt(ynorm)
		if ynorm == 0 {
			return 0, nil
		}
		for i := range y {
			x[i] = y[i] / ynorm
		}
	}
	lambda2 := 1 - mu
	if lambda2 < 0 {
		lambda2 = 0
	}
	return lambda2, nil
}

// Profile bundles the comparison metrics for one topology, as used by
// experiment E7.
type Profile struct {
	Nodes, Edges   int
	MaxDegree      int
	ExpansionAt3   float64 // fraction of graph within 3 hops (averaged)
	Resilience     float64
	Distortion     float64
	HierarchyDepth float64
	SpectralGap    float64
}

// ComputeProfile evaluates the full metric suite with deterministic
// sampling budgets suitable for graphs up to a few thousand nodes, using
// every available core. Equivalent to ComputeProfileParallel(g, seed, 0).
func ComputeProfile(g *graph.Graph, seed int64) Profile {
	return ComputeProfileParallel(g, seed, 0)
}

// ComputeProfileParallel is ComputeProfile with an explicit worker count
// (<= 0 means GOMAXPROCS). The graph is frozen once and the metric
// families run concurrently on the shared snapshot; results are
// identical for any worker count. workers bounds each fan-out level
// (the family group and each family's internal sweep) rather than the
// total goroutine count — excess goroutines are cheap and the Go
// scheduler time-shares them, so workers=1 is the meaningful sequential
// baseline and larger values trade precision of the bound for scaling.
func ComputeProfileParallel(g *graph.Graph, seed int64, workers int) Profile {
	p, _ := ProfileContext(context.Background(), g, nil, seed, workers)
	return p
}

// ProfileContext is ComputeProfileParallel with cancellation and an
// optional pre-frozen snapshot: pass the CSR from an earlier Freeze of g
// to skip re-freezing (nil freezes internally). Every metric family
// checks ctx at its iteration boundaries; the first (lowest family
// index) cancellation or failure is returned.
func ProfileContext(ctx context.Context, g *graph.Graph, c *graph.CSR, seed int64, workers int) (Profile, error) {
	p := Profile{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		MaxDegree: g.MaxDegree(),
	}
	if c == nil {
		c = g.Freeze()
	}
	connected := g.IsConnected()
	famErr := make([]error, 5)
	par.Do(workers,
		func() {
			exp, err := expansionCSR(ctx, c, 3, 50, seed, workers)
			if err != nil {
				famErr[0] = err
				return
			}
			if len(exp) > 3 {
				p.ExpansionAt3 = exp[3]
			}
		},
		func() { p.Resilience, famErr[1] = resilienceCSR(ctx, c, 10, 3, seed, workers) },
		func() { p.Distortion, famErr[2] = distortion(ctx, g, 2000, seed, workers) },
		func() {
			if famErr[3] = errs.Ctx(ctx); famErr[3] == nil {
				p.HierarchyDepth = HierarchyDepth(g, -1)
			}
		},
		func() {
			if connected {
				p.SpectralGap, famErr[4] = spectralGapCSR(ctx, c, 150)
			}
		},
	)
	for _, err := range famErr {
		if err != nil {
			return Profile{}, err
		}
	}
	return p, nil
}

func chooseSources(n, k int, seed int64) []int {
	if k <= 0 || k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	r := rng.New(seed)
	return rng.Shuffle(r, n)[:k]
}
