// Package metrics implements the topology comparison metrics the paper
// points to (reference [30], Tangmunarunkit et al., "Network topology
// generators: Degree-based vs. structural"): expansion, resilience, and
// distortion, plus hierarchy depth and a spectral characterization.
//
// These metrics are what experiment E7 uses to demonstrate the paper's
// §1 claim: a generator tuned to match one metric (the degree
// distribution) can still "look very dissimilar on others."
//
// Since the metric-registry refactor this package is a thin composition
// over internal/metricreg: every metric here is registered by name
// ("expansion", "resilience", "distortion", "hierarchy-depth",
// "spectral-gap", ...), and ComputeProfile evaluates the whole suite as
// one fused metric set — shared frozen CSR, shared BFS sweeps, pooled
// workspaces, reductions in fixed order so results are identical for
// any worker count. The free functions below keep their historical
// signatures and exact numerical behavior (pinned by the golden parity
// test); ProfileContext is the cancellable variant the scenario engine
// uses, accepting a caller-provided frozen snapshot so cached
// topologies are never re-frozen.
package metrics

import (
	"context"

	"repro/internal/graph"
	"repro/internal/metricreg"
	"repro/internal/params"
)

// Expansion measures how rapidly BFS balls grow: the average, over sample
// source nodes, of the fraction of nodes reachable within h hops, for each
// h up to maxH. High expansion ⇒ the graph "spreads" quickly (low
// diameter); trees expand slowly, well-connected meshes fast.
//
// sampleSources bounds the number of BFS sources (all nodes if <= 0 or
// larger than n); sources are chosen deterministically from seed.
func Expansion(g *graph.Graph, maxH, sampleSources int, seed int64) []float64 {
	if g.NumNodes() == 0 || maxH <= 0 {
		return nil
	}
	vals, err := evalOne(context.Background(), g, nil, seed, 0, metricreg.Selection{
		Name:   "expansion",
		Params: params.Params{"maxh": float64(maxH), "sources": float64(sampleSources)},
	})
	if err != nil {
		return nil
	}
	return vals.Series
}

// Resilience measures how gracefully connectivity degrades under random
// node removal: it returns the area under the curve of (largest component
// fraction) vs (fraction removed), estimated over `trials` random removal
// orders at `steps` removal fractions. 1.0 would mean the graph never
// fragments; lower is less resilient.
//
// Each trial incrementally extends one removal mask and re-measures the
// largest component on the shared snapshot — no subgraph copies — and
// trials run in parallel.
func Resilience(g *graph.Graph, steps, trials int, seed int64) float64 {
	if g.NumNodes() == 0 || steps <= 0 || trials <= 0 {
		return 0
	}
	vals, err := evalOne(context.Background(), g, nil, seed, 0, metricreg.Selection{
		Name:   "resilience",
		Params: params.Params{"steps": float64(steps), "trials": float64(trials)},
	})
	if err != nil {
		return 0
	}
	return vals.Scalar
}

// Distortion measures how well the graph's own spanning structure
// preserves graph distances: following [30], it is the average, over
// edges of a minimum spanning tree of the graph, of the tree distance
// between the edge's endpoints — equivalently how much the tree "stretches"
// adjacent pairs. A tree has distortion 1; meshes with much redundancy
// have higher distortion.
func Distortion(g *graph.Graph, sampleEdges int, seed int64) float64 {
	vals, err := evalOne(context.Background(), g, nil, seed, 0, metricreg.Selection{
		Name:   "distortion",
		Params: params.Params{"sample": float64(sampleEdges)},
	})
	if err != nil {
		return 0
	}
	return vals.Scalar
}

// HierarchyDepth classifies how tree-like / layered a rooted topology is:
// the mean depth of all nodes below the root divided by log2(n), so a
// balanced binary tree scores ~1, a star ~1/log2(n), and a path ~n/(2
// log2 n). Root is the node with maximum betweenness when root < 0.
func HierarchyDepth(g *graph.Graph, root int) float64 {
	if root < -1 {
		root = -1
	}
	vals, err := evalOne(context.Background(), g, nil, 0, 0, metricreg.Selection{
		Name:   "hierarchy-depth",
		Params: params.Params{"root": float64(root)},
	})
	if err != nil {
		return 0
	}
	return vals.Scalar
}

// SpectralGap estimates the second-smallest eigenvalue of the normalized
// Laplacian (the algebraic connectivity proxy) via inverse power iteration
// on the deflated matrix. Larger gap ⇒ better expansion / harder to cut.
// Returns 0 for disconnected or trivial graphs.
func SpectralGap(g *graph.Graph, iters int) float64 {
	vals, err := evalOne(context.Background(), g, nil, 0, 0, metricreg.Selection{
		Name:   "spectral-gap",
		Params: params.Params{"iters": float64(iters)},
	})
	if err != nil {
		return 0
	}
	return vals.Scalar
}

// evalOne runs a single-metric set through the default registry.
func evalOne(ctx context.Context, g *graph.Graph, c *graph.CSR, seed int64, workers int, sel metricreg.Selection) (metricreg.Value, error) {
	vals, err := metricreg.Evaluate(ctx, metricreg.NewSource(g, c), []metricreg.Selection{sel},
		metricreg.Options{Workers: workers, Seed: seed})
	if err != nil {
		return metricreg.Value{}, err
	}
	return vals[sel.Name], nil
}

// Profile bundles the comparison metrics for one topology, as used by
// experiment E7.
type Profile struct {
	Nodes, Edges   int
	MaxDegree      int
	ExpansionAt3   float64 // fraction of graph within 3 hops (averaged)
	Resilience     float64
	Distortion     float64
	HierarchyDepth float64
	SpectralGap    float64
}

// ProfileSet is the metric set ComputeProfile evaluates: the [30]-style
// comparison battery with deterministic sampling budgets suitable for
// graphs up to a few thousand nodes. Callers composing their own sets
// (scenario Measure stages, cmd/topostats -metrics) can start from it.
func ProfileSet() []metricreg.Selection {
	return []metricreg.Selection{
		{Name: "expansion", Params: params.Params{"maxh": 3, "sources": 50}},
		{Name: "resilience", Params: params.Params{"steps": 10, "trials": 3}},
		{Name: "distortion", Params: params.Params{"sample": 2000}},
		{Name: "hierarchy-depth"},
		{Name: "spectral-gap", Params: params.Params{"iters": 150}},
	}
}

// ComputeProfile evaluates the full metric suite with deterministic
// sampling budgets suitable for graphs up to a few thousand nodes, using
// every available core. Equivalent to ComputeProfileParallel(g, seed, 0).
func ComputeProfile(g *graph.Graph, seed int64) Profile {
	return ComputeProfileParallel(g, seed, 0)
}

// ComputeProfileParallel is ComputeProfile with an explicit worker count
// (<= 0 means GOMAXPROCS). The graph is frozen once and the metric set
// is evaluated as one fused schedule on the shared snapshot; results
// are identical for any worker count. workers bounds each fan-out level
// (the task group and each task's internal sweep) rather than the total
// goroutine count — excess goroutines are cheap and the Go scheduler
// time-shares them, so workers=1 is the meaningful sequential baseline
// and larger values trade precision of the bound for scaling.
func ComputeProfileParallel(g *graph.Graph, seed int64, workers int) Profile {
	p, _ := ProfileContext(context.Background(), g, nil, seed, workers)
	return p
}

// ProfileContext is ComputeProfileParallel with cancellation and an
// optional pre-frozen snapshot: pass the CSR from an earlier Freeze of g
// to skip re-freezing (nil freezes internally). Every metric checks ctx
// at its iteration boundaries; the first (lowest task index)
// cancellation or failure is returned.
func ProfileContext(ctx context.Context, g *graph.Graph, c *graph.CSR, seed int64, workers int) (Profile, error) {
	vals, err := metricreg.Evaluate(ctx, metricreg.NewSource(g, c), ProfileSet(),
		metricreg.Options{Workers: workers, Seed: seed})
	if err != nil {
		return Profile{}, err
	}
	p := Profile{
		Nodes:          g.NumNodes(),
		Edges:          g.NumEdges(),
		MaxDegree:      g.MaxDegree(),
		Resilience:     vals["resilience"].Scalar,
		Distortion:     vals["distortion"].Scalar,
		HierarchyDepth: vals["hierarchy-depth"].Scalar,
		SpectralGap:    vals["spectral-gap"].Scalar,
	}
	if s := vals["expansion"].Series; len(s) > 3 {
		p.ExpansionAt3 = s[3]
	}
	return p, nil
}
