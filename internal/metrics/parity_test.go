package metrics

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// This file pins the metric-registry refactor to the pre-registry
// numbers: legacyComputeProfile below is the verbatim pre-refactor
// implementation (PR 1's ComputeProfile, sequential form), and the
// parity test demands exact (==) equality against the registry path
// for several generator models and seeds. If a registry metric ever
// reorders a floating-point reduction, this fails loudly.

func legacyExpansion(c *graph.CSR, maxH, sampleSources int, seed int64) []float64 {
	n := c.NumNodes()
	if n == 0 || maxH <= 0 {
		return nil
	}
	sources := legacyChooseSources(n, sampleSources, seed)
	counts := make([][]int, len(sources))
	for si := range sources {
		ws := graph.GetWorkspace(n)
		c.BFS(ws, sources[si])
		row := make([]int, maxH+1)
		for _, d := range ws.Hop[:n] {
			if d >= 0 && int(d) <= maxH {
				row[d]++
			}
		}
		counts[si] = row
		ws.Release()
	}
	out := make([]float64, maxH+1)
	for _, row := range counts {
		acc := 0
		for h := 0; h <= maxH; h++ {
			acc += row[h]
			out[h] += float64(acc) / float64(n)
		}
	}
	for h := range out {
		out[h] /= float64(len(sources))
	}
	return out
}

func legacyResilience(c *graph.CSR, steps, trials int, seed int64) float64 {
	n := c.NumNodes()
	if n == 0 || steps <= 0 || trials <= 0 {
		return 0
	}
	perTrial := make([]float64, trials)
	for trial := 0; trial < trials; trial++ {
		r := rng.New(rng.Derive(seed, trial))
		perm := rng.Shuffle(r, n)
		ws := graph.GetWorkspace(n)
		removed := make([]bool, n)
		prev := 0
		sum := 0.0
		for s := 1; s <= steps; s++ {
			frac := float64(s) / float64(steps+1)
			k := int(frac * float64(n))
			for ; prev < k; prev++ {
				removed[perm[prev]] = true
			}
			sum += float64(c.LargestComponentMasked(ws, removed)) / float64(n)
		}
		perTrial[trial] = sum
		ws.Release()
	}
	total := 0.0
	for _, s := range perTrial {
		total += s
	}
	return total / float64(steps*trials)
}

func legacyDistortion(g *graph.Graph, sampleEdges int, seed int64) float64 {
	m := g.NumEdges()
	n := g.NumNodes()
	if m == 0 || n == 0 {
		return 0
	}
	mstIDs, _ := g.KruskalMST()
	tree := graph.New(n)
	for i := 0; i < n; i++ {
		tree.AddNode(*g.Node(i))
	}
	for _, id := range mstIDs {
		e := g.Edge(id)
		tree.AddEdge(graph.Edge{U: e.U, V: e.V, Weight: e.Weight})
	}
	edges := make([]int, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, i)
	}
	if sampleEdges > 0 && sampleEdges < m {
		r := rng.New(seed)
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		edges = edges[:sampleEdges]
	}
	bySrc := map[int][]int{}
	for _, id := range edges {
		e := g.Edge(id)
		bySrc[e.U] = append(bySrc[e.U], e.V)
	}
	srcs := make([]int, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)
	tc := tree.Freeze()
	total := 0.0
	count := 0
	for _, s := range srcs {
		ws := graph.GetWorkspace(n)
		tc.BFS(ws, s)
		for _, v := range bySrc[s] {
			if ws.Hop[v] > 0 {
				total += float64(ws.Hop[v])
				count++
			}
		}
		ws.Release()
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func legacyHierarchyDepth(g *graph.Graph, root int) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	if root < 0 {
		bc := g.Betweenness()
		root = 0
		for i, b := range bc {
			if b > bc[root] {
				root = i
			}
		}
	}
	dist, _ := g.BFS(root)
	total, count := 0, 0
	for _, d := range dist {
		if d > 0 {
			total += d
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return (float64(total) / float64(count)) / math.Log2(float64(n))
}

func legacySpectralGap(c *graph.CSR, iters int) float64 {
	n := c.NumNodes()
	if n < 2 {
		return 0
	}
	if iters <= 0 {
		iters = 200
	}
	invSqrtDeg := make([]float64, n)
	v1 := make([]float64, n)
	norm := 0.0
	for i := 0; i < n; i++ {
		d := float64(c.Degree(i))
		v1[i] = math.Sqrt(d)
		if d > 0 {
			invSqrtDeg[i] = 1 / math.Sqrt(d)
		}
		norm += v1[i] * v1[i]
	}
	norm = math.Sqrt(norm)
	for i := range v1 {
		v1[i] /= norm
	}
	x := make([]float64, n)
	r := rng.New(12345)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	y := make([]float64, n)
	var mu float64
	for it := 0; it < iters; it++ {
		dot := 0.0
		for i := range x {
			dot += x[i] * v1[i]
		}
		for i := range x {
			x[i] -= dot * v1[i]
		}
		for i := range y {
			y[i] = 0
		}
		for u := 0; u < n; u++ {
			if invSqrtDeg[u] == 0 {
				continue
			}
			xu := x[u]
			c.Neighbors(u, func(v int, _ int, _ float64) {
				y[v] += xu * invSqrtDeg[u] * invSqrtDeg[v]
			})
		}
		for i := range y {
			y[i] = (y[i] + x[i]) / 2
		}
		num, den := 0.0, 0.0
		for i := range y {
			num += y[i] * x[i]
			den += x[i] * x[i]
		}
		if den == 0 {
			return 0
		}
		shifted := num / den
		mu = 2*shifted - 1
		ynorm := 0.0
		for i := range y {
			ynorm += y[i] * y[i]
		}
		ynorm = math.Sqrt(ynorm)
		if ynorm == 0 {
			return 0
		}
		for i := range y {
			x[i] = y[i] / ynorm
		}
	}
	lambda2 := 1 - mu
	if lambda2 < 0 {
		lambda2 = 0
	}
	return lambda2
}

func legacyChooseSources(n, k int, seed int64) []int {
	if k <= 0 || k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	r := rng.New(seed)
	return rng.Shuffle(r, n)[:k]
}

func legacyComputeProfile(g *graph.Graph, seed int64) Profile {
	p := Profile{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		MaxDegree: g.MaxDegree(),
	}
	c := g.Freeze()
	if exp := legacyExpansion(c, 3, 50, seed); len(exp) > 3 {
		p.ExpansionAt3 = exp[3]
	}
	p.Resilience = legacyResilience(c, 10, 3, seed)
	p.Distortion = legacyDistortion(g, 2000, seed)
	p.HierarchyDepth = legacyHierarchyDepth(g, -1)
	if g.IsConnected() {
		p.SpectralGap = legacySpectralGap(c, 150)
	}
	return p
}

func parityGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	out := map[string]*graph.Graph{}
	for _, seed := range []int64{1, 7} {
		ba, err := gen.BarabasiAlbert(300, 2, seed)
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("ba/%d", seed)] = ba
		er, err := gen.ErdosRenyiGNM(300, 600, seed)
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("er-gnm/%d", seed)] = er
		wx, err := gen.Waxman(250, 0.15, 0.5, seed)
		if err != nil {
			t.Fatal(err)
		}
		out[fmt.Sprintf("waxman/%d", seed)] = wx
	}
	return out
}

// TestProfileRegistryParity is the golden old-vs-new gate of the
// metric-registry refactor: for three generator models and two seeds
// each, the registry-evaluated profile must be numerically identical —
// bit-for-bit — to the pre-refactor implementation.
func TestProfileRegistryParity(t *testing.T) {
	for name, g := range parityGraphs(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			want := legacyComputeProfile(g, 42)
			got := ComputeProfile(g, 42)
			if got != want {
				t.Fatalf("registry profile diverged from legacy:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestFreeFunctionRegistryParity pins the individual free functions to
// their legacy values too (they now route through the registry).
func TestFreeFunctionRegistryParity(t *testing.T) {
	g, err := gen.BarabasiAlbert(250, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Freeze()
	gotExp := Expansion(g, 4, 30, 9)
	wantExp := legacyExpansion(c, 4, 30, 9)
	if len(gotExp) != len(wantExp) {
		t.Fatalf("expansion length %d vs %d", len(gotExp), len(wantExp))
	}
	for i := range gotExp {
		if gotExp[i] != wantExp[i] {
			t.Fatalf("expansion[%d] = %v, legacy %v", i, gotExp[i], wantExp[i])
		}
	}
	if got, want := Resilience(g, 8, 2, 5), legacyResilience(c, 8, 2, 5); got != want {
		t.Fatalf("resilience %v, legacy %v", got, want)
	}
	if got, want := Distortion(g, 500, 5), legacyDistortion(g, 500, 5); got != want {
		t.Fatalf("distortion %v, legacy %v", got, want)
	}
	if got, want := HierarchyDepth(g, -1), legacyHierarchyDepth(g, -1); got != want {
		t.Fatalf("hierarchy depth %v, legacy %v", got, want)
	}
	if got, want := SpectralGap(g, 100), legacySpectralGap(c, 100); got != want {
		t.Fatalf("spectral gap %v, legacy %v", got, want)
	}
}
