package routing

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestMaxMinFairSingleBottleneckSplit(t *testing.T) {
	// Two flows share one capacity-6 edge: each gets 3.
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 6})
	g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 100})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 1, Volume: 100},
		{Src: 0, Dst: 2, Volume: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rate[0]-3) > 1e-9 || math.Abs(res.Rate[1]-3) > 1e-9 {
		t.Fatalf("rates = %v, want [3 3]", res.Rate)
	}
	if math.Abs(res.JainIndex-1) > 1e-9 {
		t.Fatalf("Jain index = %v, want 1 for equal rates", res.JainIndex)
	}
}

func TestMaxMinFairUnevenBottlenecks(t *testing.T) {
	// Flow A crosses a tight edge (cap 2); flow B rides a fat separate
	// path (cap 10). Max-min: A = 2, B = 10.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 2})
	g.AddEdge(graph.Edge{U: 2, V: 3, Weight: 1, Capacity: 10})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 1, Volume: 100},
		{Src: 2, Dst: 3, Volume: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rate[0]-2) > 1e-9 || math.Abs(res.Rate[1]-10) > 1e-9 {
		t.Fatalf("rates = %v, want [2 10]", res.Rate)
	}
	if res.Throughput != 12 {
		t.Fatalf("throughput = %v, want 12", res.Throughput)
	}
}

func TestMaxMinFairWaterFilling(t *testing.T) {
	// Classic 3-flow example: flows A (0→2) and B (1→2) share edge
	// (1,2) of cap 6 with A also crossing (0,1) of cap 2.
	//   A: 0-1-2 (bottleneck 0-1 at 2)
	//   B: 1-2 gets the leftover 6-2 = 4.
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 2})
	g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 6})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 2, Volume: 100}, // A
		{Src: 1, Dst: 2, Volume: 100}, // B
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rate[0]-2) > 1e-9 {
		t.Fatalf("flow A rate = %v, want 2", res.Rate[0])
	}
	if math.Abs(res.Rate[1]-4) > 1e-9 {
		t.Fatalf("flow B rate = %v, want 4 (leftover after A freezes)", res.Rate[1])
	}
}

func TestMaxMinFairRespectsOfferedVolume(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 100})
	res, err := MaxMinFair(g, []Demand{{Src: 0, Dst: 1, Volume: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate[0] != 5 {
		t.Fatalf("rate = %v, want capped at offered 5", res.Rate[0])
	}
}

func TestMaxMinFairUnroutableFlow(t *testing.T) {
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 4})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 1, Volume: 10},
		{Src: 0, Dst: 2, Volume: 10}, // unreachable
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate[1] != 0 {
		t.Fatalf("unroutable flow got rate %v", res.Rate[1])
	}
	if res.Rate[0] != 4 {
		t.Fatalf("routable flow rate = %v, want 4", res.Rate[0])
	}
}

func TestMaxMinFairNoCapacityExceeded(t *testing.T) {
	// Property: per-edge allocated load never exceeds capacity.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 3})
	g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 5})
	g.AddEdge(graph.Edge{U: 2, V: 3, Weight: 1, Capacity: 2})
	g.AddEdge(graph.Edge{U: 3, V: 4, Weight: 1, Capacity: 9})
	demands := []Demand{
		{Src: 0, Dst: 4, Volume: 100},
		{Src: 1, Dst: 3, Volume: 100},
		{Src: 0, Dst: 2, Volume: 100},
		{Src: 2, Dst: 4, Volume: 100},
	}
	res, err := MaxMinFair(g, demands)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute loads along shortest paths (the path graph is unique).
	load := make([]float64, g.NumEdges())
	for i, d := range demands {
		lo, hi := d.Src, d.Dst
		if lo > hi {
			lo, hi = hi, lo
		}
		for e := lo; e < hi; e++ {
			load[e] += res.Rate[i]
		}
	}
	for e, l := range load {
		if l > g.Edge(e).Capacity+1e-9 {
			t.Fatalf("edge %d overloaded: %v > %v", e, l, g.Edge(e).Capacity)
		}
	}
	if res.BottleneckEdges == 0 {
		t.Fatal("no bottlenecks found on a saturated instance")
	}
}

func TestMaxMinFairValidation(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	if _, err := MaxMinFair(g, []Demand{{Src: 0, Dst: 0, Volume: 1}}); err == nil {
		t.Fatal("self demand should error")
	}
}
