package routing

import (
	"context"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestMaxMinFairSingleBottleneckSplit(t *testing.T) {
	// Two flows share one capacity-6 edge: each gets 3.
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 6})
	g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 100})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 1, Volume: 100},
		{Src: 0, Dst: 2, Volume: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rate[0]-3) > 1e-9 || math.Abs(res.Rate[1]-3) > 1e-9 {
		t.Fatalf("rates = %v, want [3 3]", res.Rate)
	}
	if math.Abs(res.JainIndex-1) > 1e-9 {
		t.Fatalf("Jain index = %v, want 1 for equal rates", res.JainIndex)
	}
}

func TestMaxMinFairUnevenBottlenecks(t *testing.T) {
	// Flow A crosses a tight edge (cap 2); flow B rides a fat separate
	// path (cap 10). Max-min: A = 2, B = 10.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 2})
	g.AddEdge(graph.Edge{U: 2, V: 3, Weight: 1, Capacity: 10})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 1, Volume: 100},
		{Src: 2, Dst: 3, Volume: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rate[0]-2) > 1e-9 || math.Abs(res.Rate[1]-10) > 1e-9 {
		t.Fatalf("rates = %v, want [2 10]", res.Rate)
	}
	if res.Throughput != 12 {
		t.Fatalf("throughput = %v, want 12", res.Throughput)
	}
}

func TestMaxMinFairWaterFilling(t *testing.T) {
	// Classic 3-flow example: flows A (0→2) and B (1→2) share edge
	// (1,2) of cap 6 with A also crossing (0,1) of cap 2.
	//   A: 0-1-2 (bottleneck 0-1 at 2)
	//   B: 1-2 gets the leftover 6-2 = 4.
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 2})
	g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 6})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 2, Volume: 100}, // A
		{Src: 1, Dst: 2, Volume: 100}, // B
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rate[0]-2) > 1e-9 {
		t.Fatalf("flow A rate = %v, want 2", res.Rate[0])
	}
	if math.Abs(res.Rate[1]-4) > 1e-9 {
		t.Fatalf("flow B rate = %v, want 4 (leftover after A freezes)", res.Rate[1])
	}
}

func TestMaxMinFairRespectsOfferedVolume(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 100})
	res, err := MaxMinFair(g, []Demand{{Src: 0, Dst: 1, Volume: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate[0] != 5 {
		t.Fatalf("rate = %v, want capped at offered 5", res.Rate[0])
	}
}

func TestMaxMinFairUnroutableFlow(t *testing.T) {
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 4})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 1, Volume: 10},
		{Src: 0, Dst: 2, Volume: 10}, // unreachable
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate[1] != 0 {
		t.Fatalf("unroutable flow got rate %v", res.Rate[1])
	}
	if res.Rate[0] != 4 {
		t.Fatalf("routable flow rate = %v, want 4", res.Rate[0])
	}
}

func TestMaxMinFairNoCapacityExceeded(t *testing.T) {
	// Property: per-edge allocated load never exceeds capacity.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 3})
	g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 5})
	g.AddEdge(graph.Edge{U: 2, V: 3, Weight: 1, Capacity: 2})
	g.AddEdge(graph.Edge{U: 3, V: 4, Weight: 1, Capacity: 9})
	demands := []Demand{
		{Src: 0, Dst: 4, Volume: 100},
		{Src: 1, Dst: 3, Volume: 100},
		{Src: 0, Dst: 2, Volume: 100},
		{Src: 2, Dst: 4, Volume: 100},
	}
	res, err := MaxMinFair(g, demands)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute loads along shortest paths (the path graph is unique).
	load := make([]float64, g.NumEdges())
	for i, d := range demands {
		lo, hi := d.Src, d.Dst
		if lo > hi {
			lo, hi = hi, lo
		}
		for e := lo; e < hi; e++ {
			load[e] += res.Rate[i]
		}
	}
	for e, l := range load {
		if l > g.Edge(e).Capacity+1e-9 {
			t.Fatalf("edge %d overloaded: %v > %v", e, l, g.Edge(e).Capacity)
		}
	}
	if res.BottleneckEdges == 0 {
		t.Fatal("no bottlenecks found on a saturated instance")
	}
}

func TestMaxMinFairValidation(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	if _, err := MaxMinFair(g, []Demand{{Src: 0, Dst: 0, Volume: 1}}); err == nil {
		t.Fatal("self demand should error")
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 1})
	if _, err := MaxMinFair(g, []Demand{{Src: 0, Dst: 1, Volume: math.NaN()}}); err == nil {
		t.Fatal("NaN volume should error (it would freeze at rate NaN)")
	}
}

// TestMaxMinFairVolumeFreesCapacity is the hand-computed case where the
// volume-aware allocator strictly beats the legacy post-hoc cap: two
// flows share a capacity-6 edge, but flow A only offers volume 1.
// Volume-aware filling freezes A at 1 and lets B rise to the leftover
// 5; the legacy allocator split 3/3 and then capped A to 1, wasting the
// 2 units A never consumed.
func TestMaxMinFairVolumeFreesCapacity(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New(3)
		for i := 0; i < 3; i++ {
			g.AddNode(graph.Node{})
		}
		g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 6})
		g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 100})
		return g
	}
	demands := []Demand{
		{Src: 0, Dst: 1, Volume: 1},   // A: ceiling below its fair share
		{Src: 0, Dst: 2, Volume: 100}, // B: effectively elastic
	}
	res, err := MaxMinFair(build(), demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Rate[0]-1) > 1e-9 || math.Abs(res.Rate[1]-5) > 1e-9 {
		t.Fatalf("rates = %v, want [1 5]", res.Rate)
	}
	if math.Abs(res.Throughput-6) > 1e-9 {
		t.Fatalf("throughput = %v, want 6 (the full bottleneck)", res.Throughput)
	}
	old, err := maxMinFairLegacy(build(), demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(old.Throughput-4) > 1e-9 {
		t.Fatalf("legacy throughput = %v, want 4 (3/3 split capped to 1/3)", old.Throughput)
	}
	if res.Throughput <= old.Throughput {
		t.Fatalf("volume-aware throughput %v not strictly above legacy %v", res.Throughput, old.Throughput)
	}
}

// TestMaxMinFairJainOverAllocatedRates pins the JainIndex semantics:
// the index is computed over the routable demands' final allocated
// rates (the volume-aware fair shares), so a flow frozen at an offered
// volume below the common fair share lowers it below 1.
func TestMaxMinFairJainOverAllocatedRates(t *testing.T) {
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 6})
	g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 100})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 1, Volume: 1},
		{Src: 0, Dst: 2, Volume: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rates are [1 5]: Jain = (1+5)^2 / (2 * (1 + 25)) = 36/52.
	want := 36.0 / 52.0
	if math.Abs(res.JainIndex-want) > 1e-9 {
		t.Fatalf("Jain index = %v, want %v over allocated rates [1 5]", res.JainIndex, want)
	}
}

// TestMaxMinFairVolumeAwareParity proves the legacy post-hoc-capped
// allocation is a lower bound on the volume-aware one, flow by flow, on
// randomized demand sets over three topology models and two seeds each.
func TestMaxMinFairVolumeAwareParity(t *testing.T) {
	models := []struct {
		name string
		gen  func(seed int64) (*graph.Graph, error)
	}{
		{"ba", func(seed int64) (*graph.Graph, error) { return gen.BarabasiAlbert(300, 2, seed) }},
		{"er-gnm", func(seed int64) (*graph.Graph, error) { return gen.ErdosRenyiGNM(300, 700, seed) }},
		{"waxman", func(seed int64) (*graph.Graph, error) { return gen.Waxman(300, 0.15, 0.6, seed) }},
	}
	for _, m := range models {
		for _, seed := range []int64{1, 2} {
			g, err := m.gen(seed)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(rng.Derive(seed, 99))
			for i := range g.Edges() {
				g.Edge(i).Capacity = 1 + 9*r.Float64()
			}
			n := g.NumNodes()
			demands := make([]Demand, 0, 150)
			for len(demands) < 150 {
				s, d := r.Intn(n), r.Intn(n)
				if s == d {
					continue
				}
				demands = append(demands, Demand{Src: s, Dst: d, Volume: 0.1 + 4*r.Float64()})
			}
			vol, err := MaxMinFair(g, demands)
			if err != nil {
				t.Fatal(err)
			}
			old, err := maxMinFairLegacy(g, demands)
			if err != nil {
				t.Fatal(err)
			}
			if vol.Throughput < old.Throughput-1e-9 {
				t.Errorf("%s seed %d: volume-aware throughput %v below legacy capped %v",
					m.name, seed, vol.Throughput, old.Throughput)
			}
			// No pointwise claim: redistribution is not monotone per flow
			// (capacity freed at one volume ceiling raises sharers, which
			// can consume third-party bottlenecks earlier). Each flow is
			// still bounded by its offered volume.
			for i := range demands {
				if vol.Rate[i] > demands[i].Volume+1e-9 {
					t.Errorf("%s seed %d: flow %d rate %v exceeds offered volume %v",
						m.name, seed, i, vol.Rate[i], demands[i].Volume)
				}
			}
		}
	}
}

// TestRouteAndAllocateMatchesSeparateCalls pins the one-pinning-pass
// combined evaluation to the two standalone entry points.
func TestRouteAndAllocateMatchesSeparateCalls(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := range g.Edges() {
		g.Edge(i).Capacity = 1 + 4*r.Float64()
	}
	var demands []Demand
	for len(demands) < 80 {
		s, d := r.Intn(200), r.Intn(200)
		if s == d {
			continue
		}
		demands = append(demands, Demand{Src: s, Dst: d, Volume: 0.1 + 2*r.Float64()})
	}
	sp, mm, err := RouteAndAllocateContext(context.Background(), g, nil, demands)
	if err != nil {
		t.Fatal(err)
	}
	wantSP, err := RouteShortestPaths(g, demands)
	if err != nil {
		t.Fatal(err)
	}
	wantMM, err := MaxMinFair(g, demands)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Delivered != wantSP.Delivered || sp.MaxUtilization != wantSP.MaxUtilization ||
		sp.AvgHops != wantSP.AvgHops || sp.AvgPathWeight != wantSP.AvgPathWeight {
		t.Fatalf("combined shortest-path result %+v != standalone %+v", sp, wantSP)
	}
	if mm.Throughput != wantMM.Throughput || mm.JainIndex != wantMM.JainIndex {
		t.Fatalf("combined allocation %+v != standalone %+v", mm, wantMM)
	}
	for i := range demands {
		if mm.Rate[i] != wantMM.Rate[i] {
			t.Fatalf("flow %d rate %v != standalone %v", i, mm.Rate[i], wantMM.Rate[i])
		}
	}
}

// TestMaxMinFairNoCapacityExceededVolumes re-checks the capacity
// invariant when volumes bind: per-edge allocated load never exceeds
// capacity on a path graph where unique shortest paths are known.
func TestMaxMinFairNoCapacityExceededVolumes(t *testing.T) {
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 3})
	g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 5})
	g.AddEdge(graph.Edge{U: 2, V: 3, Weight: 1, Capacity: 2})
	g.AddEdge(graph.Edge{U: 3, V: 4, Weight: 1, Capacity: 9})
	demands := []Demand{
		{Src: 0, Dst: 4, Volume: 0.5},
		{Src: 1, Dst: 3, Volume: 1.5},
		{Src: 0, Dst: 2, Volume: 4},
		{Src: 2, Dst: 4, Volume: 8},
	}
	res, err := MaxMinFair(g, demands)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]float64, g.NumEdges())
	for i, d := range demands {
		lo, hi := d.Src, d.Dst
		if lo > hi {
			lo, hi = hi, lo
		}
		for e := lo; e < hi; e++ {
			load[e] += res.Rate[i]
		}
	}
	for e, l := range load {
		if l > g.Edge(e).Capacity+1e-9 {
			t.Fatalf("edge %d overloaded: %v > %v", e, l, g.Edge(e).Capacity)
		}
	}
}

// --- MaxMinFairContext edge cases (old and new behavior) ----------------

func TestMaxMinFairZeroCapacityEdge(t *testing.T) {
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 0})
	g.AddEdge(graph.Edge{U: 1, V: 2, Weight: 1, Capacity: 10})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 2, Volume: 5}, // crosses the dead edge: rate 0
		{Src: 1, Dst: 2, Volume: 5}, // unaffected: full bottleneck after A freezes at 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate[0] != 0 {
		t.Fatalf("flow across zero-capacity edge got rate %v, want 0", res.Rate[0])
	}
	if math.Abs(res.Rate[1]-5) > 1e-9 {
		t.Fatalf("independent flow rate = %v, want its full volume 5", res.Rate[1])
	}
}

func TestMaxMinFairZeroVolumeDemand(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 10})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 1, Volume: 0},
		{Src: 0, Dst: 1, Volume: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate[0] != 0 {
		t.Fatalf("zero-volume demand got rate %v", res.Rate[0])
	}
	if math.Abs(res.Rate[1]-3) > 1e-9 || math.Abs(res.Throughput-3) > 1e-9 {
		t.Fatalf("rates = %v throughput = %v, want [0 3] and 3", res.Rate, res.Throughput)
	}
	// The zero-volume demand never routed, so Jain covers only the
	// single routable flow: exactly 1.
	if math.Abs(res.JainIndex-1) > 1e-9 {
		t.Fatalf("Jain = %v, want 1 over the single routable flow", res.JainIndex)
	}
}

func TestMaxMinFairAllUnroutable(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 5})
	g.AddEdge(graph.Edge{U: 2, V: 3, Weight: 1, Capacity: 5})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 2, Volume: 1},
		{Src: 1, Dst: 3, Volume: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != 0 || res.JainIndex != 0 || res.BottleneckEdges != 0 {
		t.Fatalf("all-unroutable result = %+v, want all-zero", res)
	}
	for i, r := range res.Rate {
		if r != 0 {
			t.Fatalf("unroutable flow %d got rate %v", i, r)
		}
	}
}

// TestMaxMinFairSharedEdgeWaterfillingExact asserts the exact
// water-filling levels on one saturated shared edge with heterogeneous
// volumes, computed by hand: capacity 12 split across offered volumes
// [2, 5, 100] freezes at levels 2 (volume), 5 (volume), then the last
// flow takes the remaining 12-2-5 = 5.
func TestMaxMinFairSharedEdgeWaterfillingExact(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 12})
	res, err := MaxMinFair(g, []Demand{
		{Src: 0, Dst: 1, Volume: 2},
		{Src: 0, Dst: 1, Volume: 5},
		{Src: 0, Dst: 1, Volume: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 5, 5}
	for i, w := range want {
		if math.Abs(res.Rate[i]-w) > 1e-9 {
			t.Fatalf("rates = %v, want %v", res.Rate, want)
		}
	}
	if math.Abs(res.Throughput-12) > 1e-9 {
		t.Fatalf("throughput = %v, want the full capacity 12", res.Throughput)
	}
	if res.BottleneckEdges != 1 {
		t.Fatalf("BottleneckEdges = %d, want 1", res.BottleneckEdges)
	}
}
