package routing

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// maxMinBenchInstance is a 400-node BA backbone with mixed volumes, a
// third of them below their likely fair share so the volume-aware
// redistribution rounds actually run.
func maxMinBenchInstance(b *testing.B) (*graph.Graph, []Demand) {
	b.Helper()
	g, err := gen.BarabasiAlbert(400, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := range g.Edges() {
		g.Edge(i).Capacity = 10
	}
	demands := make([]Demand, 0, 200)
	for i := 0; i < 200; i++ {
		vol := 5.0
		if i%3 == 0 {
			vol = 0.05
		}
		demands = append(demands, Demand{Src: i, Dst: 399 - i, Volume: vol})
	}
	return g, demands
}

func BenchmarkMaxMinFairVolumeAware(b *testing.B) {
	g, demands := maxMinBenchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxMinFair(g, demands); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxMinFairLegacyCapped(b *testing.B) {
	g, demands := maxMinBenchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxMinFairLegacy(g, demands); err != nil {
			b.Fatal(err)
		}
	}
}
