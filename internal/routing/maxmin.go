package routing

import (
	"context"
	"math"
	"sort"

	"repro/internal/graph"
)

// MaxMinResult is the outcome of max-min fair rate allocation.
type MaxMinResult struct {
	// Rate[i] is the allocated rate of demands[i] (0 for unroutable).
	Rate []float64
	// Throughput is the sum of allocated rates.
	Throughput float64
	// JainIndex is Jain's fairness index over the routable demands'
	// allocated rates — the volume-aware fair shares, i.e. each flow's
	// final rate min(fair share, offered Volume): 1.0 = perfectly
	// equal, 1/k = maximally unfair. Flows frozen at their offered
	// volume below the common fair share therefore lower the index.
	JainIndex float64
	// BottleneckEdges is the number of edges that are saturated.
	BottleneckEdges int
}

// MaxMinFair computes the volume-aware max-min fair ("water-filling")
// rate allocation for the demand set, with each demand pinned to its
// shortest path and rates constrained by edge capacities and by each
// flow's offered Volume. Demands are elastic up to their volume
// (TCP-like with a finite backlog): the paper's performance analyses
// care about what throughput the topology's provisioning actually
// supports under the offered demand, not just whether volumes fit.
//
// Path pinning fans sources out across the worker pool on a frozen CSR
// snapshot; the filling loop itself is sequential and fully
// deterministic (bottleneck ties break to the lowest edge id).
//
// Algorithm: progressive filling with volume ceilings. All unfrozen
// flows rise together at one water level; each round raises the level
// to the nearest of (a) the smallest equal share saturating an edge and
// (b) the smallest unfrozen offered volume. A flow freezes at
// min(fair share, Volume) — and a flow frozen at its volume stops
// charging the edges it crosses, so its unconsumed capacity is
// redistributed to the still-rising flows in later rounds. O(E * F) in
// the worst case.
func MaxMinFair(g *graph.Graph, demands []Demand) (*MaxMinResult, error) {
	return MaxMinFairContext(context.Background(), g, nil, demands)
}

// MaxMinFairContext is MaxMinFair with cancellation and an optional
// pre-frozen snapshot (nil freezes internally). Cancellation is checked
// during the parallel path-pinning phase; the filling loop itself is
// bounded by the flow count and runs to completion.
func MaxMinFairContext(ctx context.Context, g *graph.Graph, c *graph.CSR, demands []Demand) (*MaxMinResult, error) {
	if err := checkDemands(g, demands); err != nil {
		return nil, err
	}
	// Pin each demand to its shortest path (edge id list), in parallel
	// over distinct sources.
	if c == nil {
		c = g.Freeze()
	}
	ps, err := pinPaths(ctx, c, demands, true)
	if err != nil {
		return nil, err
	}
	return maxminFromPaths(g, demands, ps), nil
}

// maxminFromPaths runs the volume-aware progressive filling over an
// already-pinned path set — the sequential, fully deterministic half of
// the allocator.
func maxminFromPaths(g *graph.Graph, demands []Demand, ps *pathSet) *MaxMinResult {
	nd := len(demands)
	res := &MaxMinResult{Rate: make([]float64, nd)}
	flowEdges := ps.edges

	// edgeFlows[e] = indices of flows crossing edge e; live[e] counts the
	// not-yet-frozen ones. usedEdges lists loaded edges ascending so the
	// bottleneck scan is deterministic.
	m := g.NumEdges()
	edgeFlows := make([][]int32, m)
	for i, es := range flowEdges {
		for _, e := range es {
			edgeFlows[e] = append(edgeFlows[e], int32(i))
		}
	}
	usedEdges := make([]int, 0, m)
	live := make([]int, m)
	remaining := make([]float64, m)
	for e := 0; e < m; e++ {
		if len(edgeFlows[e]) == 0 {
			continue
		}
		usedEdges = append(usedEdges, e)
		live[e] = len(edgeFlows[e])
		remaining[e] = g.Edge(e).Capacity
	}
	frozen := make([]bool, nd)
	active := 0
	for i, es := range flowEdges {
		if len(es) > 0 {
			active++
		} else {
			frozen[i] = true
		}
	}

	freeze := func(i int32, rate float64) {
		frozen[i] = true
		active--
		res.Rate[i] = rate
		for _, e := range flowEdges[i] {
			live[e]--
		}
	}

	// Routable flows ordered by (Volume asc, index asc): the cursor
	// walks it once across all rounds, so finding the nearest volume
	// ceiling and freezing the flows that reached it are amortized O(F)
	// total instead of an O(F) rescan per round.
	byVolume := make([]int32, 0, nd)
	for i := range demands {
		if !frozen[i] {
			byVolume = append(byVolume, int32(i))
		}
	}
	sort.Slice(byVolume, func(a, b int) bool {
		va, vb := demands[byVolume[a]].Volume, demands[byVolume[b]].Volume
		if va != vb {
			return va < vb
		}
		return byVolume[a] < byVolume[b]
	})
	cursor := 0

	// level is the common rate of every still-rising flow.
	level := 0.0
	// freezeCeilings freezes every still-rising flow whose offered
	// volume the level has reached, in (Volume, index) order.
	freezeCeilings := func() {
		for cursor < len(byVolume) {
			i := byVolume[cursor]
			if frozen[i] {
				cursor++
				continue
			}
			if demands[i].Volume > level {
				break
			}
			freeze(i, demands[i].Volume)
			cursor++
		}
	}
	for active > 0 {
		// The tightest edge: min over edges of remaining / unfrozen,
		// ties to the lowest edge id. Every active flow crosses at least
		// one live edge, so a bottleneck candidate always exists.
		bestEdge, bestRise := -1, math.Inf(1)
		for _, e := range usedEdges {
			if live[e] == 0 {
				continue
			}
			rise := remaining[e] / float64(live[e])
			if rise < bestRise {
				bestEdge, bestRise = e, rise
			}
		}
		if bestEdge == -1 {
			break
		}
		if bestRise < 0 {
			bestRise = 0
		}
		// The nearest volume ceiling among the rising flows (the cursor
		// skips flows an edge saturation froze early).
		for cursor < len(byVolume) && frozen[byVolume[cursor]] {
			cursor++
		}
		minVol := math.Inf(1)
		if cursor < len(byVolume) {
			minVol = demands[byVolume[cursor]].Volume
		}
		volRise := minVol - level

		if volRise < bestRise {
			// Volume ceilings freeze first: the cheapest flows stop at
			// their offered volume, charging only what they consume, and
			// the loop re-scans for the next bottleneck with their
			// capacity left on the table.
			for _, e := range usedEdges {
				if live[e] > 0 {
					remaining[e] -= volRise * float64(live[e])
					if remaining[e] < 0 {
						remaining[e] = 0
					}
				}
			}
			level = minVol // exact, so the ceiling freeze cannot miss
			freezeCeilings()
			continue
		}

		// Edge saturation: freeze every rising flow on the bottleneck at
		// the level, after charging the rise to all live edges.
		for _, e := range usedEdges {
			if live[e] > 0 {
				remaining[e] -= bestRise * float64(live[e])
				if remaining[e] < 0 {
					remaining[e] = 0
				}
			}
		}
		level += bestRise
		res.BottleneckEdges++
		for _, i := range edgeFlows[bestEdge] {
			if !frozen[i] {
				freeze(i, level)
			}
		}
		// Volume ceilings met exactly at this level freeze too (their
		// rate equals the level either way).
		freezeCeilings()
	}

	sum, sumSq := 0.0, 0.0
	routable := 0
	for i := range demands {
		res.Throughput += res.Rate[i]
		if len(flowEdges[i]) > 0 {
			routable++
			sum += res.Rate[i]
			sumSq += res.Rate[i] * res.Rate[i]
		}
	}
	if routable > 0 && sumSq > 0 {
		res.JainIndex = sum * sum / (float64(routable) * sumSq)
	}
	return res
}
