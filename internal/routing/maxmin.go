package routing

import (
	"context"
	"math"

	"repro/internal/graph"
)

// MaxMinResult is the outcome of max-min fair rate allocation.
type MaxMinResult struct {
	// Rate[i] is the allocated rate of demands[i] (0 for unroutable).
	Rate []float64
	// Throughput is the sum of allocated rates.
	Throughput float64
	// JainIndex is Jain's fairness index over the routable demands'
	// rates: 1.0 = perfectly equal, 1/k = maximally unfair.
	JainIndex float64
	// BottleneckEdges is the number of edges that are saturated.
	BottleneckEdges int
}

// MaxMinFair computes the classic max-min fair ("water-filling") rate
// allocation for the demand set, with each demand pinned to its shortest
// path and rates constrained by edge capacities. Demands are treated as
// elastic flows (TCP-like): the paper's performance analyses care about
// what throughput the topology's provisioning actually supports, not
// just whether demand volumes fit.
//
// Path pinning fans sources out across the worker pool on a frozen CSR
// snapshot; the filling loop itself is sequential and fully
// deterministic (bottleneck ties break to the lowest edge id).
//
// Algorithm: progressive filling. Repeatedly find the edge whose equal
// share among its unfrozen flows is smallest, freeze those flows at that
// share, remove the capacity, and continue. O(E * F) in the worst case.
func MaxMinFair(g *graph.Graph, demands []Demand) (*MaxMinResult, error) {
	return MaxMinFairContext(context.Background(), g, nil, demands)
}

// MaxMinFairContext is MaxMinFair with cancellation and an optional
// pre-frozen snapshot (nil freezes internally). Cancellation is checked
// during the parallel path-pinning phase; the filling loop itself is
// bounded by the flow count and runs to completion.
func MaxMinFairContext(ctx context.Context, g *graph.Graph, c *graph.CSR, demands []Demand) (*MaxMinResult, error) {
	if err := checkDemands(g, demands); err != nil {
		return nil, err
	}
	nd := len(demands)
	res := &MaxMinResult{Rate: make([]float64, nd)}

	// Pin each demand to its shortest path (edge id list), in parallel
	// over distinct sources.
	if c == nil {
		c = g.Freeze()
	}
	ps, err := pinPaths(ctx, c, demands, true)
	if err != nil {
		return nil, err
	}
	flowEdges := ps.edges

	// edgeFlows[e] = indices of flows crossing edge e; live[e] counts the
	// not-yet-frozen ones. usedEdges lists loaded edges ascending so the
	// bottleneck scan is deterministic.
	m := g.NumEdges()
	edgeFlows := make([][]int32, m)
	for i, es := range flowEdges {
		for _, e := range es {
			edgeFlows[e] = append(edgeFlows[e], int32(i))
		}
	}
	usedEdges := make([]int, 0, m)
	live := make([]int, m)
	remaining := make([]float64, m)
	for e := 0; e < m; e++ {
		if len(edgeFlows[e]) == 0 {
			continue
		}
		usedEdges = append(usedEdges, e)
		live[e] = len(edgeFlows[e])
		remaining[e] = g.Edge(e).Capacity
	}
	frozen := make([]bool, nd)
	active := 0
	for i, es := range flowEdges {
		if len(es) > 0 {
			active++
		} else {
			frozen[i] = true
		}
	}

	for active > 0 {
		// Find the tightest edge: min over edges of remaining / unfrozen.
		bestEdge, bestShare := -1, math.Inf(1)
		for _, e := range usedEdges {
			if live[e] == 0 {
				continue
			}
			share := remaining[e] / float64(live[e])
			if share < bestShare {
				bestEdge, bestShare = e, share
			}
		}
		if bestEdge == -1 {
			break
		}
		if bestShare < 0 {
			bestShare = 0
		}
		// Freeze every unfrozen flow on the bottleneck at the share, and
		// charge that rate to every edge those flows traverse.
		res.BottleneckEdges++
		for _, i := range edgeFlows[bestEdge] {
			if frozen[i] {
				continue
			}
			frozen[i] = true
			active--
			res.Rate[i] = bestShare
			for _, e := range flowEdges[i] {
				live[e]--
				remaining[e] -= bestShare
				if remaining[e] < 0 {
					remaining[e] = 0
				}
			}
		}
	}

	// Cap rates at offered volume (a flow never sends more than its
	// demand); redistributing the slack is a refinement real allocators
	// do — progressive filling with demand caps — but the uncapped rate
	// is the fair share, so capping is conservative and keeps the
	// invariant rate <= fair share.
	sum, sumSq := 0.0, 0.0
	routable := 0
	for i, d := range demands {
		if res.Rate[i] > d.Volume {
			res.Rate[i] = d.Volume
		}
		res.Throughput += res.Rate[i]
		if len(flowEdges[i]) > 0 {
			routable++
			sum += res.Rate[i]
			sumSq += res.Rate[i] * res.Rate[i]
		}
	}
	if routable > 0 && sumSq > 0 {
		res.JainIndex = sum * sum / (float64(routable) * sumSq)
	}
	return res, nil
}
