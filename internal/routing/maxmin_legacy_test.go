package routing

import (
	"context"
	"math"

	"repro/internal/graph"
)

// maxMinFairLegacy is the pre-volume-aware allocator, kept verbatim as
// the parity baseline: progressive filling that ignores each flow's
// offered Volume — charging the full fair share to every edge a flow
// crosses even when the flow cannot use it — followed by a post-hoc cap
// at the volume. The capped result is feasible but conservative, so it
// lower-bounds the volume-aware allocation (pinned by the parity test).
func maxMinFairLegacy(g *graph.Graph, demands []Demand) (*MaxMinResult, error) {
	if err := checkDemands(g, demands); err != nil {
		return nil, err
	}
	nd := len(demands)
	res := &MaxMinResult{Rate: make([]float64, nd)}

	c := g.Freeze()
	ps, err := pinPaths(context.Background(), c, demands, true)
	if err != nil {
		return nil, err
	}
	flowEdges := ps.edges

	m := g.NumEdges()
	edgeFlows := make([][]int32, m)
	for i, es := range flowEdges {
		for _, e := range es {
			edgeFlows[e] = append(edgeFlows[e], int32(i))
		}
	}
	usedEdges := make([]int, 0, m)
	live := make([]int, m)
	remaining := make([]float64, m)
	for e := 0; e < m; e++ {
		if len(edgeFlows[e]) == 0 {
			continue
		}
		usedEdges = append(usedEdges, e)
		live[e] = len(edgeFlows[e])
		remaining[e] = g.Edge(e).Capacity
	}
	frozen := make([]bool, nd)
	active := 0
	for i, es := range flowEdges {
		if len(es) > 0 {
			active++
		} else {
			frozen[i] = true
		}
	}

	for active > 0 {
		bestEdge, bestShare := -1, math.Inf(1)
		for _, e := range usedEdges {
			if live[e] == 0 {
				continue
			}
			share := remaining[e] / float64(live[e])
			if share < bestShare {
				bestEdge, bestShare = e, share
			}
		}
		if bestEdge == -1 {
			break
		}
		if bestShare < 0 {
			bestShare = 0
		}
		res.BottleneckEdges++
		for _, i := range edgeFlows[bestEdge] {
			if frozen[i] {
				continue
			}
			frozen[i] = true
			active--
			res.Rate[i] = bestShare
			for _, e := range flowEdges[i] {
				live[e]--
				remaining[e] -= bestShare
				if remaining[e] < 0 {
					remaining[e] = 0
				}
			}
		}
	}

	sum, sumSq := 0.0, 0.0
	routable := 0
	for i, d := range demands {
		if res.Rate[i] > d.Volume {
			res.Rate[i] = d.Volume
		}
		res.Throughput += res.Rate[i]
		if len(flowEdges[i]) > 0 {
			routable++
			sum += res.Rate[i]
			sumSq += res.Rate[i] * res.Rate[i]
		}
	}
	if routable > 0 && sumSq > 0 {
		res.JainIndex = sum * sum / (float64(routable) * sumSq)
	}
	return res, nil
}
