// Package routing evaluates a topology's performance under a traffic
// demand: shortest-path routing, per-link loads, utilization against
// provisioned capacities, and delivered throughput. It is the
// "performance" half of the paper's cost/performance tradeoff, used by
// the ISP designer (internal/isp) and by experiments E4, E5 and E8.
//
// All multi-source entry points freeze the graph into a CSR snapshot
// once and fan the per-source shortest-path computations out across a
// worker pool with pooled workspaces (internal/graph); per-demand
// results are written to disjoint slots and reduced in demand order, so
// output is byte-identical for any worker count.
package routing

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/par"
)

// Demand is one traffic requirement between two nodes of the graph.
type Demand struct {
	Src, Dst int
	Volume   float64
}

// Result reports what happened when a demand set was routed.
type Result struct {
	// Load[i] is the traffic crossing edge i.
	Load []float64
	// Delivered is the demand volume that found a path (and, in
	// capacitated mode, fit within capacity).
	Delivered float64
	// Dropped is the demand volume that could not be carried.
	Dropped float64
	// MaxUtilization is max over edges of Load/Capacity; +Inf if any
	// loaded edge has zero capacity, 0 if no edges.
	MaxUtilization float64
	// AvgPathWeight is the demand-weighted average path length (by edge
	// weight) of delivered traffic.
	AvgPathWeight float64
	// AvgHops is the demand-weighted average hop count of delivered
	// traffic.
	AvgHops float64
}

// pathSet is the pinned shortest path of every demand: the path weight
// (Inf when unroutable or the demand has no volume) and, when requested,
// the edge ids of the path in dst→src order.
type pathSet struct {
	dist  []float64
	edges [][]int32
}

// pinPaths computes every positive-volume demand's shortest path on the
// frozen snapshot. Distinct sources are distributed across the worker
// pool; each source's Dijkstra runs on a pooled workspace and writes only
// its own demands' slots, so the result does not depend on scheduling.
func pinPaths(ctx context.Context, c *graph.CSR, demands []Demand, needEdges bool) (*pathSet, error) {
	ps := &pathSet{dist: make([]float64, len(demands))}
	for i := range ps.dist {
		ps.dist[i] = math.Inf(1)
	}
	if needEdges {
		ps.edges = make([][]int32, len(demands))
	}
	bySrc := map[int][]int{}
	for i, d := range demands {
		if d.Volume <= 0 {
			continue
		}
		bySrc[d.Src] = append(bySrc[d.Src], i)
	}
	srcs := make([]int, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	// Output does not depend on processing order (per-demand writes are
	// disjoint); sorting just keeps the dispatch order stable for
	// debugging and costs O(S log S) against S Dijkstra runs.
	sort.Ints(srcs)
	// One pooled workspace per worker, reserved up front: the per-source
	// loop then allocates nothing, however many sources fan out. The
	// GOMAXPROCS budget is split between the source fan-out and each
	// traversal's intra-source shards, so few large sources still use
	// the whole machine without the two levels oversubscribing it.
	workers, inner := par.Split(0, len(srcs))
	inner = c.IntraWorkers(inner)
	wss := make([]*graph.Workspace, workers)
	for w := range wss {
		wss[w] = graph.GetWorkspace(c.NumNodes())
		defer wss[w].Release()
	}
	err := par.ForEachWorkerErr(workers, len(srcs), func(w, si int) error {
		if err := errs.Ctx(ctx); err != nil {
			return fmt.Errorf("routing: pin paths: %w", err)
		}
		s := srcs[si]
		ws := wss[w]
		c.DijkstraParallel(ws, s, inner)
		for _, i := range bySrc[s] {
			dst := demands[i].Dst
			if math.IsInf(ws.Dist[dst], 1) {
				continue
			}
			ps.dist[i] = ws.Dist[dst]
			if !needEdges {
				continue
			}
			var path []int32
			for v := int32(dst); v != int32(s); v = ws.Parent[v] {
				path = append(path, ws.ParentEdge[v])
			}
			ps.edges[i] = path
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ps, nil
}

// RouteShortestPaths routes every demand on the (weight-)shortest path,
// ignoring capacities: loads may exceed capacity, and the resulting
// utilization says how well the topology was provisioned. Demands whose
// endpoints are disconnected are dropped.
//
// Shortest-path trees are computed once per distinct source, in parallel
// across sources.
func RouteShortestPaths(g *graph.Graph, demands []Demand) (*Result, error) {
	return RouteShortestPathsContext(context.Background(), g, nil, demands)
}

// RouteShortestPathsContext is RouteShortestPaths with cancellation and
// an optional pre-frozen snapshot (nil freezes internally). The
// per-source fan-out checks ctx before each shortest-path tree.
func RouteShortestPathsContext(ctx context.Context, g *graph.Graph, c *graph.CSR, demands []Demand) (*Result, error) {
	if err := checkDemands(g, demands); err != nil {
		return nil, err
	}
	if c == nil {
		c = g.Freeze()
	}
	ps, err := pinPaths(ctx, c, demands, true)
	if err != nil {
		return nil, err
	}
	return shortestFromPaths(g, demands, ps), nil
}

// shortestFromPaths accumulates the shortest-path routing result from
// an already-pinned path set.
func shortestFromPaths(g *graph.Graph, demands []Demand, ps *pathSet) *Result {
	res := &Result{Load: make([]float64, g.NumEdges())}
	var totalW, totalHops float64
	for i, d := range demands {
		if d.Volume <= 0 {
			continue
		}
		path := ps.edges[i]
		if path == nil {
			res.Dropped += d.Volume
			continue
		}
		for _, e := range path {
			res.Load[e] += d.Volume
		}
		res.Delivered += d.Volume
		totalW += d.Volume * ps.dist[i]
		totalHops += d.Volume * float64(len(path))
	}
	if res.Delivered > 0 {
		res.AvgPathWeight = totalW / res.Delivered
		res.AvgHops = totalHops / res.Delivered
	}
	res.MaxUtilization = maxUtilization(g, res.Load)
	return res
}

// RouteAndAllocateContext pins each positive-volume demand's shortest
// path once on the snapshot and evaluates both views of the pinned
// paths: the uncapacitated shortest-path routing of the full offered
// volumes (how well the provisioning matches the load) and the
// volume-aware max-min fair allocation (what throughput it actually
// delivers). Results are identical to calling RouteShortestPathsContext
// and MaxMinFairContext separately, at one parallel path-pinning pass
// instead of two — the traffic-metric evaluation path.
func RouteAndAllocateContext(ctx context.Context, g *graph.Graph, c *graph.CSR, demands []Demand) (*Result, *MaxMinResult, error) {
	if err := checkDemands(g, demands); err != nil {
		return nil, nil, err
	}
	if c == nil {
		c = g.Freeze()
	}
	ps, err := pinPaths(ctx, c, demands, true)
	if err != nil {
		return nil, nil, err
	}
	return shortestFromPaths(g, demands, ps), maxminFromPaths(g, demands, ps), nil
}

// RouteCapacitated routes demands in the given order on shortest paths,
// admitting each demand only up to the remaining bottleneck capacity
// along its path (partial delivery allowed). It is a greedy online
// admission model: earlier demands grab capacity first — inherently
// sequential, so only the per-source shortest-path trees are kernelized.
func RouteCapacitated(g *graph.Graph, demands []Demand) (*Result, error) {
	return RouteCapacitatedContext(context.Background(), g, nil, demands)
}

// RouteCapacitatedContext is RouteCapacitated with cancellation and an
// optional pre-frozen snapshot (nil freezes internally). The admission
// loop checks ctx once per demand.
func RouteCapacitatedContext(ctx context.Context, g *graph.Graph, c *graph.CSR, demands []Demand) (*Result, error) {
	if err := checkDemands(g, demands); err != nil {
		return nil, err
	}
	res := &Result{Load: make([]float64, g.NumEdges())}
	remaining := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		remaining[i] = e.Capacity
	}
	if c == nil {
		c = g.Freeze()
	}
	ws := graph.GetWorkspace(c.NumNodes())
	defer ws.Release()
	var totalW, totalHops float64
	// Cache SP trees per source; demands often share sources.
	type spt struct {
		dist       []float64
		parent     []int32
		parentEdge []int32
	}
	cache := map[int]spt{}
	for _, d := range demands {
		if err := errs.Ctx(ctx); err != nil {
			return nil, fmt.Errorf("routing: capacitated admission: %w", err)
		}
		if d.Volume <= 0 {
			continue
		}
		tr, ok := cache[d.Src]
		if !ok {
			c.Dijkstra(ws, d.Src)
			tr = spt{
				dist:       append([]float64(nil), ws.Dist...),
				parent:     append([]int32(nil), ws.Parent...),
				parentEdge: append([]int32(nil), ws.ParentEdge...),
			}
			cache[d.Src] = tr
		}
		if math.IsInf(tr.dist[d.Dst], 1) {
			res.Dropped += d.Volume
			continue
		}
		// Bottleneck along path.
		admit := d.Volume
		hops := 0
		for v := int32(d.Dst); v != int32(d.Src); v = tr.parent[v] {
			if r := remaining[tr.parentEdge[v]]; r < admit {
				admit = r
			}
			hops++
		}
		if admit < 0 {
			admit = 0
		}
		for v := int32(d.Dst); v != int32(d.Src); v = tr.parent[v] {
			remaining[tr.parentEdge[v]] -= admit
			res.Load[tr.parentEdge[v]] += admit
		}
		res.Delivered += admit
		res.Dropped += d.Volume - admit
		if admit > 0 {
			totalW += admit * tr.dist[d.Dst]
			totalHops += admit * float64(hops)
		}
	}
	if res.Delivered > 0 {
		res.AvgPathWeight = totalW / res.Delivered
		res.AvgHops = totalHops / res.Delivered
	}
	res.MaxUtilization = maxUtilization(g, res.Load)
	return res, nil
}

// PathStretch returns the demand-weighted mean ratio of routed path
// weight to straight-line (Euclidean) distance between endpoints, a
// geographic efficiency measure. Demands between co-located or
// disconnected endpoints are skipped.
func PathStretch(g *graph.Graph, demands []Demand) float64 {
	ps, err := pinPaths(context.Background(), g.Freeze(), demands, false)
	if err != nil {
		return 0
	}
	totalVol := 0.0
	total := 0.0
	for i, d := range demands {
		if d.Volume <= 0 || math.IsInf(ps.dist[i], 1) {
			continue
		}
		ns, nd := g.Node(d.Src), g.Node(d.Dst)
		straight := math.Hypot(ns.X-nd.X, ns.Y-nd.Y)
		if straight == 0 {
			continue
		}
		total += d.Volume * ps.dist[i] / straight
		totalVol += d.Volume
	}
	if totalVol == 0 {
		return 0
	}
	return total / totalVol
}

func maxUtilization(g *graph.Graph, load []float64) float64 {
	max := 0.0
	for i, l := range load {
		if l <= 0 {
			continue
		}
		cap := g.Edge(i).Capacity
		if cap <= 0 {
			return math.Inf(1)
		}
		if u := l / cap; u > max {
			max = u
		}
	}
	return max
}

func checkDemands(g *graph.Graph, demands []Demand) error {
	n := g.NumNodes()
	for i, d := range demands {
		if d.Src < 0 || d.Src >= n || d.Dst < 0 || d.Dst >= n {
			return errs.BadParamf("routing: demand %d references missing node (%d->%d, n=%d)", i, d.Src, d.Dst, n)
		}
		if d.Src == d.Dst {
			return errs.BadParamf("routing: demand %d is a self-loop at node %d", i, d.Src)
		}
		// NaN must be rejected here: a NaN ceiling would freeze at rate
		// NaN in the volume-aware filling (every comparison against it
		// is false), poisoning Throughput and JainIndex.
		if d.Volume < 0 || math.IsNaN(d.Volume) {
			return errs.BadParamf("routing: demand %d has invalid volume %v", i, d.Volume)
		}
	}
	return nil
}
