// Package routing evaluates a topology's performance under a traffic
// demand: shortest-path routing, per-link loads, utilization against
// provisioned capacities, and delivered throughput. It is the
// "performance" half of the paper's cost/performance tradeoff, used by
// the ISP designer (internal/isp) and by experiments E4, E5 and E8.
package routing

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Demand is one traffic requirement between two nodes of the graph.
type Demand struct {
	Src, Dst int
	Volume   float64
}

// Result reports what happened when a demand set was routed.
type Result struct {
	// Load[i] is the traffic crossing edge i.
	Load []float64
	// Delivered is the demand volume that found a path (and, in
	// capacitated mode, fit within capacity).
	Delivered float64
	// Dropped is the demand volume that could not be carried.
	Dropped float64
	// MaxUtilization is max over edges of Load/Capacity; +Inf if any
	// loaded edge has zero capacity, 0 if no edges.
	MaxUtilization float64
	// AvgPathWeight is the demand-weighted average path length (by edge
	// weight) of delivered traffic.
	AvgPathWeight float64
	// AvgHops is the demand-weighted average hop count of delivered
	// traffic.
	AvgHops float64
}

// RouteShortestPaths routes every demand on the (weight-)shortest path,
// ignoring capacities: loads may exceed capacity, and the resulting
// utilization says how well the topology was provisioned. Demands whose
// endpoints are disconnected are dropped.
//
// Shortest-path trees are computed per distinct source, so grouping
// demands by source keeps this O(S * m log n) for S distinct sources.
func RouteShortestPaths(g *graph.Graph, demands []Demand) (*Result, error) {
	if err := checkDemands(g, demands); err != nil {
		return nil, err
	}
	res := &Result{Load: make([]float64, g.NumEdges())}
	bySrc := map[int][]Demand{}
	for _, d := range demands {
		bySrc[d.Src] = append(bySrc[d.Src], d)
	}
	srcs := make([]int, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)
	var totalW, totalHops float64
	for _, s := range srcs {
		dist, parent, parentEdge := g.Dijkstra(s)
		for _, d := range bySrc[s] {
			if d.Volume <= 0 {
				continue
			}
			if math.IsInf(dist[d.Dst], 1) {
				res.Dropped += d.Volume
				continue
			}
			hops := 0
			for v := d.Dst; v != s; v = parent[v] {
				res.Load[parentEdge[v]] += d.Volume
				hops++
			}
			res.Delivered += d.Volume
			totalW += d.Volume * dist[d.Dst]
			totalHops += d.Volume * float64(hops)
		}
	}
	if res.Delivered > 0 {
		res.AvgPathWeight = totalW / res.Delivered
		res.AvgHops = totalHops / res.Delivered
	}
	res.MaxUtilization = maxUtilization(g, res.Load)
	return res, nil
}

// RouteCapacitated routes demands in the given order on shortest paths,
// admitting each demand only up to the remaining bottleneck capacity
// along its path (partial delivery allowed). It is a greedy online
// admission model: earlier demands grab capacity first.
func RouteCapacitated(g *graph.Graph, demands []Demand) (*Result, error) {
	if err := checkDemands(g, demands); err != nil {
		return nil, err
	}
	res := &Result{Load: make([]float64, g.NumEdges())}
	remaining := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		remaining[i] = e.Capacity
	}
	var totalW, totalHops float64
	// Cache SP trees per source; demands often share sources.
	type spt struct {
		dist       []float64
		parent     []int
		parentEdge []int
	}
	cache := map[int]spt{}
	for _, d := range demands {
		if d.Volume <= 0 {
			continue
		}
		tr, ok := cache[d.Src]
		if !ok {
			dist, parent, parentEdge := g.Dijkstra(d.Src)
			tr = spt{dist, parent, parentEdge}
			cache[d.Src] = tr
		}
		if math.IsInf(tr.dist[d.Dst], 1) {
			res.Dropped += d.Volume
			continue
		}
		// Bottleneck along path.
		admit := d.Volume
		hops := 0
		for v := d.Dst; v != d.Src; v = tr.parent[v] {
			if r := remaining[tr.parentEdge[v]]; r < admit {
				admit = r
			}
			hops++
		}
		if admit < 0 {
			admit = 0
		}
		for v := d.Dst; v != d.Src; v = tr.parent[v] {
			remaining[tr.parentEdge[v]] -= admit
			res.Load[tr.parentEdge[v]] += admit
		}
		res.Delivered += admit
		res.Dropped += d.Volume - admit
		if admit > 0 {
			totalW += admit * tr.dist[d.Dst]
			totalHops += admit * float64(hops)
		}
	}
	if res.Delivered > 0 {
		res.AvgPathWeight = totalW / res.Delivered
		res.AvgHops = totalHops / res.Delivered
	}
	res.MaxUtilization = maxUtilization(g, res.Load)
	return res, nil
}

// PathStretch returns the demand-weighted mean ratio of routed path
// weight to straight-line (Euclidean) distance between endpoints, a
// geographic efficiency measure. Demands between co-located or
// disconnected endpoints are skipped.
func PathStretch(g *graph.Graph, demands []Demand) float64 {
	totalVol := 0.0
	total := 0.0
	bySrc := map[int][]Demand{}
	for _, d := range demands {
		bySrc[d.Src] = append(bySrc[d.Src], d)
	}
	srcs := make([]int, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)
	for _, s := range srcs {
		dist, _, _ := g.Dijkstra(s)
		ns := g.Node(s)
		for _, d := range bySrc[s] {
			nd := g.Node(d.Dst)
			straight := math.Hypot(ns.X-nd.X, ns.Y-nd.Y)
			if straight == 0 || math.IsInf(dist[d.Dst], 1) || d.Volume <= 0 {
				continue
			}
			total += d.Volume * dist[d.Dst] / straight
			totalVol += d.Volume
		}
	}
	if totalVol == 0 {
		return 0
	}
	return total / totalVol
}

func maxUtilization(g *graph.Graph, load []float64) float64 {
	max := 0.0
	for i, l := range load {
		if l <= 0 {
			continue
		}
		cap := g.Edge(i).Capacity
		if cap <= 0 {
			return math.Inf(1)
		}
		if u := l / cap; u > max {
			max = u
		}
	}
	return max
}

func checkDemands(g *graph.Graph, demands []Demand) error {
	n := g.NumNodes()
	for i, d := range demands {
		if d.Src < 0 || d.Src >= n || d.Dst < 0 || d.Dst >= n {
			return fmt.Errorf("routing: demand %d references missing node (%d->%d, n=%d)", i, d.Src, d.Dst, n)
		}
		if d.Src == d.Dst {
			return fmt.Errorf("routing: demand %d is a self-loop at node %d", i, d.Src)
		}
		if d.Volume < 0 {
			return fmt.Errorf("routing: demand %d has negative volume", i)
		}
	}
	return nil
}
