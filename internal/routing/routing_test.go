package routing

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// diamond builds a 4-node graph with two parallel 2-hop routes of
// different weights between node 0 and node 3.
//
//	0 --1-- 1 --1-- 3     (short route, capacity 5 per edge)
//	0 --2-- 2 --2-- 3     (long route, capacity 100 per edge)
func diamond() *graph.Graph {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(graph.Node{})
	}
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 5})
	g.AddEdge(graph.Edge{U: 1, V: 3, Weight: 1, Capacity: 5})
	g.AddEdge(graph.Edge{U: 0, V: 2, Weight: 2, Capacity: 100})
	g.AddEdge(graph.Edge{U: 2, V: 3, Weight: 2, Capacity: 100})
	return g
}

func TestRouteShortestPathsPicksShortRoute(t *testing.T) {
	g := diamond()
	res, err := RouteShortestPaths(g, []Demand{{Src: 0, Dst: 3, Volume: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 10 || res.Dropped != 0 {
		t.Fatalf("delivered %v dropped %v", res.Delivered, res.Dropped)
	}
	if res.Load[0] != 10 || res.Load[1] != 10 {
		t.Fatalf("short route loads = %v", res.Load)
	}
	if res.Load[2] != 0 || res.Load[3] != 0 {
		t.Fatal("long route should carry nothing")
	}
	if res.AvgPathWeight != 2 || res.AvgHops != 2 {
		t.Fatalf("path weight %v hops %v, want 2/2", res.AvgPathWeight, res.AvgHops)
	}
	// 10 over capacity 5 ⇒ utilization 2.
	if res.MaxUtilization != 2 {
		t.Fatalf("max utilization = %v, want 2", res.MaxUtilization)
	}
}

func TestRouteShortestPathsDisconnected(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	res, err := RouteShortestPaths(g, []Demand{{Src: 0, Dst: 1, Volume: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Dropped != 3 {
		t.Fatalf("delivered %v dropped %v", res.Delivered, res.Dropped)
	}
}

func TestRouteShortestPathsZeroCapacityUtilization(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 0})
	res, err := RouteShortestPaths(g, []Demand{{Src: 0, Dst: 1, Volume: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.MaxUtilization, 1) {
		t.Fatal("loaded zero-capacity edge should give +Inf utilization")
	}
}

func TestRouteCapacitatedAdmitsUpToBottleneck(t *testing.T) {
	g := diamond()
	res, err := RouteCapacitated(g, []Demand{{Src: 0, Dst: 3, Volume: 10}})
	if err != nil {
		t.Fatal(err)
	}
	// Shortest route bottleneck is 5; remainder is dropped (greedy, no
	// rerouting).
	if res.Delivered != 5 || res.Dropped != 5 {
		t.Fatalf("delivered %v dropped %v, want 5/5", res.Delivered, res.Dropped)
	}
	if res.MaxUtilization > 1+1e-9 {
		t.Fatalf("capacitated routing exceeded capacity: %v", res.MaxUtilization)
	}
}

func TestRouteCapacitatedOrderMatters(t *testing.T) {
	g := diamond()
	demands := []Demand{
		{Src: 0, Dst: 3, Volume: 5},
		{Src: 0, Dst: 1, Volume: 5},
	}
	res, err := RouteCapacitated(g, demands)
	if err != nil {
		t.Fatal(err)
	}
	// First demand fills 0-1; second gets nothing on that edge.
	if res.Delivered != 5 {
		t.Fatalf("delivered %v, want 5", res.Delivered)
	}
}

func TestRouteCapacitatedPartialDelivery(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{})
	g.AddNode(graph.Node{})
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1, Capacity: 3})
	res, err := RouteCapacitated(g, []Demand{{Src: 0, Dst: 1, Volume: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 3 || res.Dropped != 7 {
		t.Fatalf("delivered %v dropped %v", res.Delivered, res.Dropped)
	}
}

func TestDemandValidation(t *testing.T) {
	g := diamond()
	cases := [][]Demand{
		{{Src: -1, Dst: 1, Volume: 1}},
		{{Src: 0, Dst: 9, Volume: 1}},
		{{Src: 2, Dst: 2, Volume: 1}},
		{{Src: 0, Dst: 1, Volume: -1}},
	}
	for i, ds := range cases {
		if _, err := RouteShortestPaths(g, ds); err == nil {
			t.Fatalf("case %d should error", i)
		}
		if _, err := RouteCapacitated(g, ds); err == nil {
			t.Fatalf("capacitated case %d should error", i)
		}
	}
}

func TestZeroVolumeIgnored(t *testing.T) {
	g := diamond()
	res, err := RouteShortestPaths(g, []Demand{{Src: 0, Dst: 3, Volume: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 || res.Dropped != 0 {
		t.Fatal("zero-volume demand should be a no-op")
	}
}

func TestPathStretch(t *testing.T) {
	// Straight line 0-(0,0) to 1-(1,0) but routed via detour node at
	// (0.5, 0.5): path weight ~1.414, straight 1.0.
	g := graph.New(3)
	g.AddNode(graph.Node{X: 0, Y: 0})
	g.AddNode(graph.Node{X: 1, Y: 0})
	g.AddNode(graph.Node{X: 0.5, Y: 0.5})
	g.AddEdge(graph.Edge{U: 0, V: 2})
	g.AddEdge(graph.Edge{U: 2, V: 1})
	g.EuclideanWeights()
	s := PathStretch(g, []Demand{{Src: 0, Dst: 1, Volume: 1}})
	want := math.Sqrt2
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("stretch = %v, want %v", s, want)
	}
}

func TestPathStretchSkipsDegenerate(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Node{X: 0.5, Y: 0.5})
	g.AddNode(graph.Node{X: 0.5, Y: 0.5}) // co-located
	g.AddEdge(graph.Edge{U: 0, V: 1, Weight: 1})
	if s := PathStretch(g, []Demand{{Src: 0, Dst: 1, Volume: 1}}); s != 0 {
		t.Fatalf("degenerate stretch = %v, want 0", s)
	}
}

func TestMultiSourceLoadsAccumulate(t *testing.T) {
	g := diamond()
	res, err := RouteShortestPaths(g, []Demand{
		{Src: 0, Dst: 3, Volume: 2},
		{Src: 3, Dst: 0, Volume: 3},
		{Src: 1, Dst: 0, Volume: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 6 {
		t.Fatalf("delivered = %v", res.Delivered)
	}
	// Edge 0 (0-1) carries 2 + 3 + 1 = 6.
	if res.Load[0] != 6 {
		t.Fatalf("edge 0 load = %v, want 6", res.Load[0])
	}
}
