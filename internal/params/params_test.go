package params

import (
	"errors"
	"math"
	"testing"

	"repro/internal/errs"
)

func specs() []Spec {
	one := 1.0
	ten := 10.0
	return []Spec{
		{Name: "n", Kind: Int, Default: 5, Min: &one, Max: &ten},
		{Name: "alpha", Kind: Float, Default: 0.5},
	}
}

func TestResolveDefaultsAndOverrides(t *testing.T) {
	out, err := Resolve("test", specs(), Params{"n": 7})
	if err != nil {
		t.Fatal(err)
	}
	if out.Int("n") != 7 || out.Float("alpha") != 0.5 {
		t.Fatalf("resolved %v", out)
	}
	// Input map is not mutated; output is independent.
	in := Params{"alpha": 2.5}
	out, err = Resolve("test", specs(), in)
	if err != nil {
		t.Fatal(err)
	}
	out["alpha"] = 9
	if in["alpha"] != 2.5 {
		t.Fatal("Resolve aliased its input")
	}
}

func TestResolveRejections(t *testing.T) {
	cases := []Params{
		{"bogus": 1},           // unknown name
		{"n": 2.5},             // non-integral int
		{"n": 0},               // below min
		{"n": 11},              // above max
		{"alpha": math.NaN()},  // NaN
		{"alpha": math.Inf(1)}, // Inf
		{"n": math.Inf(-1)},    // -Inf
	}
	for _, p := range cases {
		if _, err := Resolve("test", specs(), p); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("Resolve(%v) gave %v, want ErrBadParam", p, err)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	var p Params
	c := p.Clone()
	c["x"] = 1 // nil receiver clones to a writable map
	if len(c) != 1 {
		t.Fatal("clone of nil not writable")
	}
	p = Params{"a": 1}
	c = p.Clone()
	c["a"] = 2
	if p["a"] != 1 {
		t.Fatal("Clone aliased its receiver")
	}
}

func TestSeed(t *testing.T) {
	if (Params{"seed": 42}).Seed() != 42 {
		t.Fatal("Seed read failed")
	}
}

func TestParseKV(t *testing.T) {
	name, v, err := ParseKV("alpha=2.5")
	if err != nil || name != "alpha" || v != 2.5 {
		t.Fatalf("ParseKV = %q %v %v", name, v, err)
	}
	for _, bad := range []string{"alpha", "=1", "alpha=x", "", "alpha="} {
		if _, _, err := ParseKV(bad); !errors.Is(err, errs.ErrBadParam) {
			t.Errorf("ParseKV(%q) gave %v, want ErrBadParam", bad, err)
		}
	}
}

func TestParseKVs(t *testing.T) {
	p, err := ParseKVs([]string{"a=1", "b=2", "a=3"})
	if err != nil {
		t.Fatal(err)
	}
	if p["a"] != 3 || p["b"] != 2 {
		t.Fatalf("ParseKVs = %v", p)
	}
	if _, err := ParseKVs([]string{"a=1", "junk"}); !errors.Is(err, errs.ErrBadParam) {
		t.Fatalf("ParseKVs with junk gave %v", err)
	}
}

func TestNamesSorted(t *testing.T) {
	if got := Names(specs()); got != "alpha, n" {
		t.Fatalf("Names = %q", got)
	}
}
